package hashjoin

// Row-table build/probe benchmark for the v2 hash table: how much the
// concurrent CAS-publish build buys over a serial build as workers
// grow, and how much a cached BuildSide buys a query that would
// otherwise rebuild the table. BenchmarkTableBuild writes
// BENCH_table.json:
//
//	go test -run=^$ -bench BenchmarkTableBuild -benchtime=1x .

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"hashjoin/internal/native"
)

const (
	tableBenchNBuild = 60000
	tableBenchTuple  = 40
)

var (
	tableBenchOnce sync.Once
	tableBenchEnv  *Env
	tableBenchW    *Workload
)

func tableBenchSetup(tb testing.TB) {
	tableBenchOnce.Do(func() {
		tableBenchEnv = NewEnv(WithSmallHierarchy(), WithCapacity(256<<20))
		w, err := tableBenchEnv.GenerateWorkload(context.Background(), tableBenchNBuild, 2*tableBenchNBuild, tableBenchTuple, 17)
		if err != nil {
			tb.Fatalf("workload: %v", err)
		}
		tableBenchW = w
	})
}

// timeSerialBuild times one single-goroutine BuildSerial over the
// workload's build relation, the baseline every concurrent point is
// normalized against.
func timeSerialBuild(entries []native.Entry, data []byte, width int) time.Duration {
	t := &native.RowTable{}
	t.Reset(len(entries), width, 0)
	start := time.Now()
	t.BuildSerial(data, entries, native.Group, native.DefaultG, native.DefaultD)
	return time.Since(start)
}

// timeConcurrentBuild times one BuildRows (serialize + CAS publish)
// at the given worker count.
func timeConcurrentBuild(tb testing.TB, entries []native.Entry, data []byte, width, workers int) time.Duration {
	start := time.Now()
	bs, err := native.BuildRows(data, entries, width, native.BuildConfig{
		Scheme: native.Group, Workers: workers,
	})
	elapsed := time.Since(start)
	if err != nil || bs.NRows() != len(entries) {
		tb.Fatalf("BuildRows(workers=%d) = (%v, %v)", workers, bs, err)
	}
	return elapsed
}

// runTableQuery runs one streaming native join, optionally probing a
// cached BuildSide instead of rebuilding, and validates the output.
func runTableQuery(tb testing.TB, b *BuildSide) time.Duration {
	opts := []PipelineOption{WithEngine(EngineNative), WithPipelineScheme(Group)}
	if b != nil {
		opts = append(opts, WithBuildSide(b))
	}
	res, err := tableBenchEnv.RunPipeline(tableBenchW.Build, tableBenchW.Probe, opts...)
	if err != nil {
		tb.Fatalf("query (cached=%v): %v", b != nil, err)
	}
	if res.NOutput != tableBenchW.ExpectedMatches || res.KeySum != tableBenchW.KeySum {
		tb.Fatalf("query (cached=%v) = (%d, %d), want (%d, %d)",
			b != nil, res.NOutput, res.KeySum, tableBenchW.ExpectedMatches, tableBenchW.KeySum)
	}
	return res.Elapsed
}

// tableBuildPoint is one worker count in BENCH_table.json.
type tableBuildPoint struct {
	Workers int     `json:"workers"`
	BuildMs float64 `json:"build_ms"`
	// Speedup over the serial single-goroutine build.
	Speedup float64 `json:"speedup"`
}

// tableTrajectory is the BENCH_table.json document.
type tableTrajectory struct {
	NBuild      int     `json:"n_build"`
	NProbe      int     `json:"n_probe"`
	TupleSize   int     `json:"tuple_size"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	PrefetchASM bool    `json:"prefetch_asm"`
	SerialMs    float64 `json:"serial_build_ms"`
	// Concurrent two-phase build (serialize ranges, CAS publish) at
	// rising worker counts.
	BuildPoints []tableBuildPoint `json:"build_points"`
	// One full streaming query that rebuilds the table, vs the same
	// query probing a resident BuildSide.
	ProbeRebuildMs float64 `json:"probe_rebuild_ms"`
	ProbeCachedMs  float64 `json:"probe_cached_ms"`
	CachedSpeedup  float64 `json:"cached_speedup"`
}

// BenchmarkTableBuild sweeps the concurrent build over 1, 2, 4 workers
// against a serial baseline, compares a rebuild-per-query join with a
// cached-BuildSide join, and emits BENCH_table.json. Reps interleave
// across the sweep so host drift lands on every level alike.
func BenchmarkTableBuild(b *testing.B) {
	tableBenchSetup(b)
	rel := tableBenchW.Build.rel
	data := rel.Arena().Data()
	width := rel.Schema.FixedWidth()
	entries := native.Flatten(rel, nil)
	workerLevels := []int{1, 2, 4}

	cached, err := tableBenchEnv.PrepareBuildSide(context.Background(), tableBenchW.Build)
	if err != nil {
		b.Fatalf("PrepareBuildSide: %v", err)
	}

	// Untimed warmup of every measured path.
	timeSerialBuild(entries, data, width)
	timeConcurrentBuild(b, entries, data, width, workerLevels[len(workerLevels)-1])
	runTableQuery(b, nil)
	runTableQuery(b, cached)

	const reps = 5
	serial := make([]time.Duration, 0, reps)
	builds := make([][]time.Duration, len(workerLevels))
	rebuild := make([]time.Duration, 0, reps)
	probeCached := make([]time.Duration, 0, reps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial, rebuild, probeCached = serial[:0], rebuild[:0], probeCached[:0]
		for j := range builds {
			builds[j] = builds[j][:0]
		}
		for rep := 0; rep < reps; rep++ {
			serial = append(serial, timeSerialBuild(entries, data, width))
			for j, wkr := range workerLevels {
				builds[j] = append(builds[j], timeConcurrentBuild(b, entries, data, width, wkr))
			}
			rebuild = append(rebuild, runTableQuery(b, nil))
			probeCached = append(probeCached, runTableQuery(b, cached))
		}
	}
	b.StopTimer()

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	traj := tableTrajectory{
		NBuild:         tableBenchNBuild,
		NProbe:         2 * tableBenchNBuild,
		TupleSize:      tableBenchTuple,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		PrefetchASM:    NativeHasPrefetch(),
		SerialMs:       ms(medianDuration(serial)),
		ProbeRebuildMs: ms(medianDuration(rebuild)),
		ProbeCachedMs:  ms(medianDuration(probeCached)),
	}
	traj.CachedSpeedup = traj.ProbeRebuildMs / traj.ProbeCachedMs
	for j, wkr := range workerLevels {
		bms := ms(medianDuration(builds[j]))
		traj.BuildPoints = append(traj.BuildPoints, tableBuildPoint{
			Workers: wkr,
			BuildMs: bms,
			Speedup: traj.SerialMs / bms,
		})
	}
	b.ReportMetric(traj.BuildPoints[len(traj.BuildPoints)-1].Speedup, "build-speedup@4workers")
	b.ReportMetric(traj.CachedSpeedup, "cached-probe-speedup")

	if doc, err := json.MarshalIndent(traj, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_table.json", append(doc, '\n'), 0o644); err != nil {
			b.Logf("BENCH_table.json not written: %v", err)
		}
	}
}
