package hashjoin

// Pipeline benchmarks: the full Scan -> HashJoin -> HashAggregate
// operator pipeline on the native engine — the paper's join schemes
// composed with a downstream prefetched aggregation, running on real
// hardware. The workload is the pivot configuration at 200k build
// tuples (400k probe), streamed through one resident hash table
// (fanout 1) so batch handoff, not partitioning, is what is measured.
//
// BenchmarkPipelineSpeedup additionally writes BENCH_pipeline.json, a
// machine-readable trajectory point (end-to-end pipeline wall clock per
// scheme plus speedups over baseline):
//
//	go test -run=^$ -bench 'BenchmarkPipeline' -benchtime=3x .

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"hashjoin/internal/workload"
)

var pipelineBenchSpec = workload.Spec{
	NBuild:          200_000,
	TupleSize:       100,
	MatchesPerBuild: 2,
	PctMatched:      100,
	Seed:            42,
}

var (
	pipelineBenchOnce  sync.Once
	pipelineBenchEnv   *Env
	pipelineBenchBuild *Relation
	pipelineBenchProbe *Relation
	pipelineBenchPair  *workload.Pair
)

// pipelineBenchRelations generates the benchmark workload once. Each
// pipeline run stages scratch (join output ring, aggregation rows) in
// the Env's arena; RunPipeline's scope reclaims it, so repetitions
// never exhaust the arena.
func pipelineBenchRelations(tb testing.TB) (*Relation, *Relation, *workload.Pair) {
	pipelineBenchOnce.Do(func() {
		spec := pipelineBenchSpec
		pipelineBenchEnv = NewEnv(WithSmallHierarchy(),
			WithCapacity(workload.ArenaBytesFor(spec)*2))
		pipelineBenchPair = workload.Generate(pipelineBenchEnv.mem.A, spec)
		pipelineBenchBuild = &Relation{rel: pipelineBenchPair.Build, env: pipelineBenchEnv}
		pipelineBenchProbe = &Relation{rel: pipelineBenchPair.Probe, env: pipelineBenchEnv}
		// Untimed warmup: populate arena pages and operator scratch.
		runPipelineBenchOnce(tb, Baseline, 1)
	})
	return pipelineBenchBuild, pipelineBenchProbe, pipelineBenchPair
}

// runPipelineBenchOnce runs one validated pipeline, returning the
// elapsed wall clock. Per-run arena scratch is reclaimed by
// RunPipeline's own scope — the manual Truncate this helper used to do
// is now the engine's job (pinned by TestRunPipelineArenaStable).
func runPipelineBenchOnce(tb testing.TB, scheme Scheme, fanout int) time.Duration {
	res, err := pipelineBenchEnv.RunPipeline(pipelineBenchBuild, pipelineBenchProbe,
		WithEngine(EngineNative), WithPipelineScheme(scheme),
		WithAggregation(4, pipelineBenchSpec.NBuild), WithPipelineFanout(fanout))
	if err != nil {
		tb.Fatalf("scheme %v: %v", scheme, err)
	}
	if res.NOutput != pipelineBenchPair.ExpectedMatches || res.KeySum != pipelineBenchPair.KeySum {
		tb.Fatalf("scheme %v: wrong result (%d, %d), want (%d, %d)",
			scheme, res.NOutput, res.KeySum,
			pipelineBenchPair.ExpectedMatches, pipelineBenchPair.KeySum)
	}
	return res.Elapsed
}

func benchmarkPipeline(b *testing.B, scheme Scheme) {
	_, probe, _ := pipelineBenchRelations(b)
	b.ReportAllocs()
	b.ResetTimer()
	var last time.Duration
	for i := 0; i < b.N; i++ {
		last = runPipelineBenchOnce(b, scheme, 1)
	}
	b.StopTimer()
	b.ReportMetric(float64(probe.Len())/last.Seconds()/1e6, "Mprobe/s")
}

func BenchmarkPipelineBaseline(b *testing.B)  { benchmarkPipeline(b, Baseline) }
func BenchmarkPipelineGroup(b *testing.B)     { benchmarkPipeline(b, Group) }
func BenchmarkPipelinePipelined(b *testing.B) { benchmarkPipeline(b, Pipelined) }

// BenchmarkPipelineMorsel runs the same pipeline with the join radix-
// partitioned and morsel-parallel, its workers feeding output batches
// into the downstream aggregation.
func BenchmarkPipelineMorsel(b *testing.B) {
	pipelineBenchRelations(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPipelineBenchOnce(b, Group, 64)
	}
}

// pipelineTrajectory is the BENCH_pipeline.json document.
type pipelineTrajectory struct {
	NBuild      int  `json:"n_build"`
	NProbe      int  `json:"n_probe"`
	TupleSize   int  `json:"tuple_size"`
	Fanout      int  `json:"fanout"`
	GOMAXPROCS  int  `json:"gomaxprocs"`
	PrefetchASM bool `json:"prefetch_asm"`
	// Budget governor state: the configured memory budget (0 when
	// unbudgeted, as here) and the deepest recursive re-partitioning any
	// pair needed to fit it.
	MemBudget      int `json:"mem_budget"`
	RecursionDepth int `json:"recursion_depth"`
	// End-to-end pipeline wall clocks (scan, join, and aggregation —
	// unlike BENCH_native.json's join-phase-only times), medians over
	// interleaved repetitions.
	BaselineMs  float64 `json:"baseline_ms"`
	GroupMs     float64 `json:"group_ms"`
	PipelinedMs float64 `json:"pipelined_ms"`
	// Speedups are baseline elapsed over scheme elapsed.
	GroupSpeedup     float64 `json:"group_speedup"`
	PipelinedSpeedup float64 `json:"pipelined_speedup"`
}

// BenchmarkPipelineSpeedup measures all three schemes end to end,
// reports the pipeline wall-clock speedups of Group and Pipelined over
// Baseline, and emits BENCH_pipeline.json. Repetitions interleave the
// schemes so host drift lands on all of them alike, and per-scheme
// medians are compared (see BenchmarkNativeSpeedup for why medians).
func BenchmarkPipelineSpeedup(b *testing.B) {
	pipelineBenchRelations(b)
	const reps = 9
	var base, grp, pipe time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bs, gs, ps []time.Duration
		for rep := 0; rep < reps; rep++ {
			bs = append(bs, runPipelineBenchOnce(b, Baseline, 1))
			gs = append(gs, runPipelineBenchOnce(b, Group, 1))
			ps = append(ps, runPipelineBenchOnce(b, Pipelined, 1))
		}
		base, grp, pipe = medianDuration(bs), medianDuration(gs), medianDuration(ps)
	}
	b.StopTimer()

	traj := pipelineTrajectory{
		NBuild:           pipelineBenchBuild.Len(),
		NProbe:           pipelineBenchProbe.Len(),
		TupleSize:        pipelineBenchSpec.TupleSize,
		Fanout:           1,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		PrefetchASM:      NativeHasPrefetch(),
		BaselineMs:       float64(base.Microseconds()) / 1e3,
		GroupMs:          float64(grp.Microseconds()) / 1e3,
		PipelinedMs:      float64(pipe.Microseconds()) / 1e3,
		GroupSpeedup:     base.Seconds() / grp.Seconds(),
		PipelinedSpeedup: base.Seconds() / pipe.Seconds(),
	}
	b.ReportMetric(traj.GroupSpeedup, "group-speedup")
	b.ReportMetric(traj.PipelinedSpeedup, "pipelined-speedup")

	if doc, err := json.MarshalIndent(traj, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_pipeline.json", append(doc, '\n'), 0o644); err != nil {
			b.Logf("BENCH_pipeline.json not written: %v", err)
		}
	}
}
