package hashjoin_test

import (
	"fmt"

	"hashjoin"
)

// ExampleEnv_Join demonstrates the basic join flow: build two relations,
// join with group prefetching, and inspect the result.
func ExampleEnv_Join() {
	env := hashjoin.NewEnv(hashjoin.WithSmallHierarchy(), hashjoin.WithCapacity(32<<20))
	users := env.NewRelation(64)
	events := env.NewRelation(32)
	for i := uint32(1); i <= 100; i++ {
		users.Append(i, []byte("user-payload"))
		events.Append(i, []byte("click"))
		events.Append(i, []byte("view"))
	}
	res, err := env.Join(users, events, hashjoin.WithScheme(hashjoin.Group))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.NOutput, "matches across", res.NPartitions, "partition")
	// Output: 200 matches across 1 partition
}

// ExampleEnv_Join_grace shows the full GRACE pipeline: a memory budget
// forces I/O partitioning before the in-memory joins.
func ExampleEnv_Join_grace() {
	env := hashjoin.NewEnv(hashjoin.WithSmallHierarchy(), hashjoin.WithCapacity(64<<20))
	build := env.NewRelation(100)
	probe := env.NewRelation(100)
	for i := uint32(1); i <= 4000; i++ {
		build.Append(i*2654435761|1, nil)
		probe.Append(i*2654435761|1, nil)
	}
	res, err := env.Join(build, probe,
		hashjoin.WithScheme(hashjoin.Pipelined),
		hashjoin.WithMemBudget(128<<10))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.NOutput, "matches,", res.NPartitions > 1, "= partitioned")
	// Output: 4000 matches, true = partitioned
}

// ExampleEnv_Aggregate groups tuples by key, counting and summing.
func ExampleEnv_Aggregate() {
	env := hashjoin.NewEnv(hashjoin.WithSmallHierarchy(), hashjoin.WithCapacity(32<<20))
	sales := env.NewRelation(16)
	for day := 0; day < 3; day++ {
		sales.Append(42, []byte{10, 0, 0, 0}) // amount 10 for customer 42
	}
	groups, _ := env.Aggregate(sales, 4, hashjoin.WithScheme(hashjoin.Group))
	for _, g := range groups {
		fmt.Printf("customer %d: %d purchases, %d total\n", g.Key, g.Count, g.Sum)
	}
	// Output: customer 42: 3 purchases, 30 total
}

// ExampleOptimalParamsFor derives the paper's tuned parameters from the
// analytical model (Theorems 1 and 2).
func ExampleOptimalParamsFor() {
	p := hashjoin.OptimalParamsFor(150, 10)
	fmt.Println(p.G >= 10 && p.G <= 25, p.D >= 1)
	// Output: true true
}
