module hashjoin

go 1.22
