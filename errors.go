package hashjoin

// The package's error taxonomy, re-exported from the internal layers so
// callers can classify failures at the Env boundary with errors.Is /
// errors.As without importing internal packages. Every error an Env or
// NativeJoiner method returns matches exactly one of the sentinel
// classes below (or none, for plain configuration errors), and the
// typed errors carry the diagnosis: what was exhausted, which pair was
// over budget, how much work a cancelled join completed, or which spill
// page was corrupt.
//
// Cancellation composes with the standard library: a join cancelled
// through a context matches both ErrCancelled and the context's own
// context.Canceled / context.DeadlineExceeded.

import (
	"context"
	"errors"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/native"
	"hashjoin/internal/sched"
	"hashjoin/internal/spill"
)

// Sentinel classes for errors.Is.
var (
	// ErrOutOfMemory classifies arena exhaustion — the Env's capacity or
	// a WithArenaBudget ceiling. The concrete error is an *OOMError with
	// a usage breakdown.
	ErrOutOfMemory = arena.ErrOutOfMemory

	// ErrOverBudget classifies a partition pair that no partitioning
	// could bring under the memory budget, under WithNativeNoSpill /
	// WithPipelineNoSpill. The concrete error is a *BudgetError.
	ErrOverBudget = native.ErrOverBudget

	// ErrCancelled classifies a join stopped by its context. The
	// concrete error is a *CancelError carrying partial progress.
	ErrCancelled = native.ErrCancelled

	// ErrCorruptSpill classifies a spill page that failed checksum or
	// header verification on the way back from disk. The concrete error
	// is a *CorruptPageError locating the damage. (A corrupt page is
	// normally rebuilt in place; the error only escapes when the rebuild
	// attempt also fails.)
	ErrCorruptSpill = spill.ErrCorrupt

	// ErrSpillUnavailable classifies a query shed because every
	// configured spill directory was unhealthy and in-memory degradation
	// had no hash bits left. Retryable: the spill tier re-probes failed
	// directories and recovers on its own. The concrete error is a
	// *SpillUnavailableError.
	ErrSpillUnavailable = spill.ErrSpillUnavailable

	// ErrAdmission classifies a query a service-mode Env declined to
	// run: shed for size, a full queue, a queue timeout, or a draining
	// Env. The concrete error is a *AdmissionError carrying the reason;
	// a queue-timeout shed also matches context.DeadlineExceeded.
	ErrAdmission = sched.ErrAdmission
)

// Typed errors for errors.As.
type (
	// OOMError reports arena exhaustion with a usage breakdown.
	OOMError = arena.OOMError

	// BudgetError reports the irreducible over-budget partition pair.
	BudgetError = native.BudgetError

	// CancelError reports a cancelled join: the cause (typically
	// context.Canceled or context.DeadlineExceeded), how many partition
	// pairs had completed, and how long the join ran.
	CancelError = native.CancelError

	// CorruptPageError reports the file, page index, and byte offset of
	// a spill page that failed verification.
	CorruptPageError = spill.CorruptPageError

	// SpillUnavailableError reports the out-of-core tier down: which
	// directories were configured and the last per-directory failure.
	SpillUnavailableError = spill.SpillUnavailableError

	// AdmissionError reports a query shed by a service-mode Env: the
	// tenant, the Reason, the planned and grantable footprints, and how
	// long the query waited before rejection.
	AdmissionError = sched.AdmissionError

	// AdmissionReason enumerates why an admission was rejected.
	AdmissionReason = sched.Reason
)

// Admission rejection reasons (AdmissionError.Reason).
const (
	// AdmissionTooLarge: the planned footprint exceeds what the arena
	// could ever grant; waiting would not help.
	AdmissionTooLarge = sched.TooLarge
	// AdmissionQueueFull: the bounded admission queue was at capacity.
	AdmissionQueueFull = sched.QueueFull
	// AdmissionTimeout: the query's context expired, or the service's
	// queue timeout elapsed, while waiting for admission.
	AdmissionTimeout = sched.Timeout
	// AdmissionDraining: the Env is shutting down and admits nothing new.
	AdmissionDraining = sched.Draining
)

// wrapCancel normalizes a cancellation-class error crossing the public
// boundary into a *CancelError, so callers see one cancellation type no
// matter which layer noticed the context first. Errors that already are
// a *CancelError (the native morsel path builds them with pair-level
// progress) and errors of other classes pass through unchanged.
func wrapCancel(err error, elapsed time.Duration) error {
	if err == nil {
		return nil
	}
	var ce *CancelError
	if errors.As(err, &ce) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &CancelError{Cause: err, Elapsed: elapsed}
	}
	return err
}
