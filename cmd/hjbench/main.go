// Command hjbench regenerates the paper's tables and figures under the
// cycle simulator, and — with -engine native — benchmarks the same join
// schemes on the host hardware, reporting wall-clock speedups of group
// and software-pipelined prefetching over the baseline the same way the
// simulator reports cycle speedups. With -pipeline it benchmarks the
// full Scan -> HashJoin -> HashAggregate operator pipeline instead of
// the monolithic join, on either engine — the same shared plan hjquery
// runs.
//
// Usage:
//
//	hjbench -list
//	hjbench -fig fig10a [-scale small|full|tiny] [-csv]
//	hjbench -all [-scale small]
//	hjbench -engine native [-build 500000] [-tuple 100] [-schemes baseline,group,pipelined]
//	hjbench -pipeline -engine native [-build 200000] [-schemes baseline,group,pipelined]
//
// Full scale reproduces the paper's exact setup (1 MB L2, 50 MB join
// memory) and takes minutes per figure; small scale preserves the 50:1
// memory:cache ratio at an eighth of the size and runs in seconds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/cli"
	"hashjoin/internal/core"
	"hashjoin/internal/engine"
	"hashjoin/internal/exp"
	"hashjoin/internal/native"
	"hashjoin/internal/plan"
	"hashjoin/internal/spill"
	"hashjoin/internal/workload"
)

const prog = "hjbench"

func main() {
	var (
		engineArg = flag.String("engine", "sim", "execution engine: sim (reproduce figures) or native (host-hardware benchmark)")
		pipeMode  = flag.Bool("pipeline", false, "benchmark the full scan-join-aggregate operator pipeline instead of the monolithic join")
		fig       = flag.String("fig", "", "experiment id to run (see -list)")
		all       = flag.Bool("all", false, "run every experiment")
		list      = flag.Bool("list", false, "list experiment ids")
		scale     = flag.String("scale", "small", "scale: tiny, small, or full")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		nBuild    = flag.Int("build", 500000, "native/pipeline: build relation tuple count")
		tuple     = flag.Int("tuple", 100, "native/pipeline: tuple size in bytes")
		matches   = flag.Int("matches", 2, "native/pipeline: probe tuples per build tuple")
		skew      = flag.Int("skew", 0, "native/pipeline: repeat each build key this many times (0/1 = unique keys); high skew defeats partitioning and exercises the spill tier")
		schemes   = flag.String("schemes", "baseline,group,pipelined", "native/pipeline: comma-separated schemes to compare")
		fanout    = flag.Int("fanout", 1, "native/pipeline: partition fan-out (1 = single pair, the paper's join-phase setup)")
		workers   = flag.Int("workers", 0, "native: morsel workers (0 = all CPUs)")
		memBudget = flag.Int("mem-budget", 0, "native/pipeline: resident build-side budget in bytes (0 = unbudgeted); oversized pairs re-partition recursively, irreducible pairs spill to disk")
		spillDir  = flag.String("spill-dir", "", "native/pipeline: parent directory for the out-of-core spill area (default: OS temp dir)")
		spillWork = flag.Int("spill-workers", 0, "native/pipeline: write-behind workers for the spill tier (0 = default)")
		noSpill   = flag.Bool("no-spill", false, "native/pipeline: disable the spill tier; an irreducible over-budget pair fails instead")
		hybrid    = flag.Bool("hybrid", false, "native/pipeline: adaptive hybrid hash join — keep the partition pairs that fit -mem-budget resident and spill only the overflow, splitting skewed victims by key-code frequency")
		joinType  = flag.String("join-type", "inner", "pipeline: join semantics: inner, left-outer, right-outer, semi, or anti")
		strat     = flag.String("strategy", "auto", "pipeline: join strategy: auto (cost-based planner), nested-loop, stream, or partitioned")
		matchRate = flag.Float64("match-rate", 0, "pipeline: fraction of probe tuples with a build match in (0, 1]; overrides -matches and feeds the planner")
		zipfS     = flag.Float64("zipf", 0, "native/pipeline: Zipf skew parameter s for build keys (0 = uniform keys); probe keys stay uniform over the same universe")
		zipfKeys  = flag.Int("zipf-keys", 0, "native/pipeline: distinct-key universe for -zipf (0 = default 256)")
		reps      = flag.Int("reps", 3, "native/pipeline: repetitions per scheme (medians reported)")
		seed      = flag.Int64("seed", 42, "native/pipeline: workload seed")
		timeout   = flag.Duration("timeout", 0, "native/pipeline: abort the benchmark after this long (0 = no limit); a timed-out run exits with code 4")
	)
	flag.Parse()

	backend, err := cli.ParseEngine(*engineArg)
	if err != nil {
		cli.Fatalf(prog, "%v", err)
	}
	if *spillWork < 0 {
		cli.Fatalf(prog, "negative -spill-workers %d", *spillWork)
	}
	if *timeout < 0 {
		cli.Fatalf(prog, "negative -timeout %v", *timeout)
	}
	ctx := context.Context(nil) // nil: no deadline
	if *timeout > 0 {
		c, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		ctx = c
	}
	if *hybrid && *memBudget <= 0 {
		cli.Fatalf(prog, "-hybrid requires a positive -mem-budget")
	}
	jt, err := plan.ParseJoinType(*joinType)
	if err != nil {
		cli.Fatalf(prog, "%v", err)
	}
	strategy, err := plan.ParseStrategy(*strat)
	if err != nil {
		cli.Fatalf(prog, "%v", err)
	}
	if *matchRate < 0 || *matchRate > 1 {
		cli.Fatalf(prog, "-match-rate %v outside (0, 1]", *matchRate)
	}
	if !*pipeMode && (jt != plan.Inner || strategy != plan.Auto || *matchRate != 0) {
		cli.Fatalf(prog, "-join-type, -strategy, and -match-rate need -pipeline (the monolithic join benchmarks the inner join only)")
	}
	sp := spillOpts{dir: *spillDir, workers: *spillWork, off: *noSpill, hybrid: *hybrid}
	spec := workload.Spec{
		NBuild:          *nBuild,
		TupleSize:       *tuple,
		MatchesPerBuild: *matches,
		PctMatched:      100,
		Skew:            *skew,
		ZipfS:           *zipfS,
		ZipfKeys:        *zipfKeys,
		MatchRate:       *matchRate,
		Seed:            *seed,
	}

	if *pipeMode {
		runPipeline(ctx, backend, spec, *schemes, jt, strategy, *fanout, *workers, *memBudget, sp, *reps)
		return
	}
	if backend == engine.Native {
		runNative(ctx, spec, *schemes, *fanout, *workers, *memBudget, sp, *reps)
		return
	}

	if *list {
		for _, e := range exp.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	sc, ok := exp.ByName(*scale)
	if !ok {
		cli.Fatalf(prog, "unknown scale %q (accepted: tiny, small, full)", *scale)
	}

	switch {
	case *all:
		for _, e := range exp.Experiments() {
			runOne(e, sc, *csv)
		}
	case *fig != "":
		e, ok := exp.Lookup(strings.ToLower(*fig))
		if !ok {
			cli.Fatalf(prog, "unknown experiment %q; try -list", *fig)
		}
		runOne(e, sc, *csv)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// spillOpts carries the out-of-core tier's flags into the native runs.
type spillOpts struct {
	dir     string
	workers int
	off     bool
	hybrid  bool
}

// arenaHeadroom over-approximates the spill tier's page-pool claim on
// the arena (zero when the tier cannot engage), mirroring the cli
// package's scratch estimate for the monolithic-join path.
func (s spillOpts) arenaHeadroom(memBudget int) uint64 {
	if memBudget <= 0 || s.off {
		return 0
	}
	sw := s.workers
	if sw < 1 {
		sw = spill.DefaultWorkers
	}
	chunk := memBudget/spill.DefaultPageSize + 1
	if chunk > 256 {
		chunk = 256
	}
	return uint64(chunk+3*sw+4)*uint64(spill.DefaultPageSize) + (64 << 10)
}

// runPipeline benchmarks the shared operator pipeline per scheme on the
// selected engine. Each run uses a fresh arena (same seed, identical
// workload bytes); native repetitions interleave the schemes so host
// drift lands on all of them alike, and medians are compared. The
// simulator is deterministic, so one rep suffices there.
func runPipeline(ctx context.Context, backend engine.Backend, spec workload.Spec, schemeList string, jt plan.JoinType, strategy plan.Strategy, fanout, workers, memBudget int, sp spillOpts, reps int) {
	parsed, err := cli.ParseSchemeList(schemeList)
	if err != nil {
		cli.Fatalf(prog, "%v", err)
	}
	if backend == engine.Sim || reps < 1 {
		reps = 1
	}
	fanout = cli.NormalizeFanout(fanout)

	fmt.Printf("pipeline benchmark (%v engine): scan -> %v join -> aggregate, %d build tuples, %d B each, fanout %d",
		backend, jt, spec.NBuild, spec.TupleSize, fanout)
	if memBudget > 0 {
		fmt.Printf(", budget %d B", memBudget)
	}
	fmt.Println()

	var explained bool
	run := func(scheme core.Scheme) cli.PipelineResult {
		p := &cli.Pipeline{
			Engine: backend, Spec: spec, Scheme: scheme,
			Params: core.DefaultParams(), Fanout: fanout, Workers: workers,
			MemBudget: memBudget,
			SpillDir:  sp.dir, SpillWorkers: sp.workers, NoSpill: sp.off,
			Hybrid:   sp.hybrid,
			JoinType: jt, Strategy: strategy,
			Ctx: ctx,
		}
		if backend == engine.Native {
			p.Params = core.Params{} // native defaults
		}
		if err := p.Validate(); err != nil {
			cli.Fatalf(prog, "%v", err)
		}
		res, err := p.Run()
		if err != nil {
			cli.DiePipeline(prog, fmt.Errorf("scheme %v: %w", scheme, err))
		}
		if res.Plan != nil && !explained {
			explained = true
			fmt.Printf("strategy: %s\n", res.Plan.Explain())
		}
		return res
	}

	results := make([][]cli.PipelineResult, len(parsed))
	for r := 0; r < reps; r++ {
		for i, s := range parsed {
			results[i] = append(results[i], run(s))
		}
	}

	if backend == engine.Sim {
		var base uint64
		fmt.Printf("%-10s %14s %10s\n", "scheme", "Mcycles", "speedup")
		for i, s := range parsed {
			cycles := results[i][0].Stats.Total()
			speedup := "1.00x"
			if base == 0 {
				base = cycles
			} else {
				speedup = fmt.Sprintf("%.2fx", float64(base)/float64(cycles))
			}
			fmt.Printf("%-10v %14.2f %10s\n", s, float64(cycles)/1e6, speedup)
		}
		return
	}
	var base time.Duration
	fmt.Printf("%-10s %12s %10s %12s\n", "scheme", "total", "speedup", "Mprobe/s")
	for i, s := range parsed {
		med := medianElapsed(results[i])
		speedup := "1.00x"
		if base == 0 {
			base = med
		} else {
			speedup = fmt.Sprintf("%.2fx", base.Seconds()/med.Seconds())
		}
		nProbe := spec.NBuild * spec.MatchesPerBuild
		fmt.Printf("%-10v %10.2fms %10s %12.1f\n", s, med.Seconds()*1e3,
			speedup, float64(nProbe)/med.Seconds()/1e6)
	}
	if memBudget > 0 && len(results) > 0 && len(results[0]) > 0 {
		r := results[0][0]
		fmt.Printf("(budget governor: join fanout %d, recursion depth %d)\n",
			r.JoinFanout, r.JoinRecursionDepth)
		if r.SpilledPartitions > 0 {
			fmt.Printf("(spill: %d pair(s), %d B written, %d B read, stalls write %v read %v)\n",
				r.SpilledPartitions, r.SpillBytesWritten, r.SpillBytesRead,
				r.SpillWriteStall, r.SpillReadStall)
		}
		if sp.hybrid {
			fmt.Printf("(hybrid: %d resident pair(s), %d demoted, %d B demoted)\n",
				r.ResidentPartitions, r.DemotedPartitions, r.BytesDemoted)
		}
	}
	fmt.Printf("(speedup = first scheme's elapsed / scheme's elapsed; medians of %d interleaved reps; all results validated)\n", reps)
}

func medianElapsed(rs []cli.PipelineResult) time.Duration {
	sorted := make([]time.Duration, len(rs))
	for i, r := range rs {
		sorted[i] = r.Elapsed
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// runNative benchmarks the requested schemes as monolithic native joins
// and prints a wall-clock speedup table.
func runNative(ctx context.Context, spec workload.Spec, schemeList string, fanout, workers, memBudget int, sp spillOpts, reps int) {
	parsed, err := cli.ParseSchemeList(schemeList)
	if err != nil {
		cli.Fatalf(prog, "%v", err)
	}
	schemes := make([]native.Scheme, len(parsed))
	for i, s := range parsed {
		schemes[i] = cli.NativeScheme(s)
	}
	if reps < 1 {
		reps = 1
	}

	a := arena.New(workload.ArenaBytesFor(spec) + sp.arenaHeadroom(memBudget))
	pair := workload.Generate(a, spec)
	fmt.Printf("native join benchmark: %d build x %d probe tuples, %d B each, fanout %d, prefetch asm %v\n",
		pair.Build.NTuples, pair.Probe.NTuples, spec.TupleSize, fanout, native.HavePrefetch)

	// One resident Joiner serves every measurement, so all schemes run
	// on the same recycled memory; an untimed warmup join pays the
	// one-time page-population cost. Repetitions interleave the schemes
	// (scheme A rep 1, scheme B rep 1, ..., scheme A rep 2, ...) so slow
	// host drift lands on all schemes alike rather than on whichever ran
	// last, and the per-scheme medians are compared — on shared or
	// virtualized CPUs the rep spread is asymmetric (occasional big slow
	// outliers), which destabilizes a best-of comparison but not the
	// median.
	jn := native.NewJoiner()
	jcfg := native.Config{
		Fanout: fanout, Workers: workers,
		SpillDir: sp.dir, SpillWorkers: sp.workers, NoSpill: sp.off,
		Hybrid: sp.hybrid,
		Ctx:    ctx,
	}
	if memBudget > 0 {
		jcfg.MemBudget = memBudget
		if fanout == 1 {
			jcfg.Fanout = 0 // let the budget derive the fan-out
		}
	}
	// Spill pool pages are per-Join scratch; reclaim them between reps so
	// repeated budgeted runs don't accumulate arena usage.
	joinMark := a.Used()
	run := func(s native.Scheme) native.Result {
		a.Truncate(joinMark)
		jcfg.Scheme = s
		res, err := jn.Join(pair.Build, pair.Probe, jcfg)
		if err != nil {
			cli.DiePipeline(prog, fmt.Errorf("scheme %v: %w", s, err))
		}
		if res.NOutput != pair.ExpectedMatches || res.KeySum != pair.KeySum {
			cli.Dief(prog, "scheme %v: result mismatch: (%d, %d) vs (%d, %d) expected",
				s, res.NOutput, res.KeySum, pair.ExpectedMatches, pair.KeySum)
		}
		return res
	}
	run(schemes[0]) // warmup: populate scratch pages, untimed
	results := make([][]native.Result, len(schemes))
	for r := 0; r < reps; r++ {
		for i, s := range schemes {
			results[i] = append(results[i], run(s))
		}
	}

	var baseline time.Duration
	fmt.Printf("%-10s %12s %12s %12s %10s %12s\n",
		"scheme", "partition", "join", "total", "speedup", "Mprobe/s")
	for i, s := range schemes {
		b := medianResult(results[i])
		speedup := "1.00x"
		if baseline == 0 {
			baseline = b.Elapsed
		} else {
			speedup = fmt.Sprintf("%.2fx", baseline.Seconds()/b.Elapsed.Seconds())
		}
		fmt.Printf("%-10v %10.2fms %10.2fms %10.2fms %10s %12.1f\n",
			s, secsMS(b.PartitionTime), secsMS(b.JoinTime), secsMS(b.Elapsed),
			speedup, float64(pair.Probe.NTuples)/b.JoinTime.Seconds()/1e6)
	}
	if memBudget > 0 {
		b := results[0][0]
		fmt.Printf("(budget governor: %d B budget, %d partitions, recursion depth %d)\n",
			memBudget, b.NPartitions, b.RecursionDepth)
		if b.SpilledPartitions > 0 {
			fmt.Printf("(spill: %d pair(s), %d B written, %d B read, stalls write %v read %v)\n",
				b.SpilledPartitions, b.SpillBytesWritten, b.SpillBytesRead,
				b.SpillWriteStall, b.SpillReadStall)
		}
		if sp.hybrid {
			fmt.Printf("(hybrid: %d resident pair(s), %d spilled, %d demoted, %d B demoted)\n",
				b.Hybrid.ResidentPairs, b.Hybrid.SpilledPairs, b.Hybrid.DemotedPairs, b.Hybrid.BytesDemoted)
		}
	}
	fmt.Printf("(speedup = first scheme's elapsed / scheme's elapsed; medians of %d interleaved reps; all results validated)\n", reps)
}

func secsMS(d time.Duration) float64 { return d.Seconds() * 1e3 }

// medianResult returns the run with the median Elapsed.
func medianResult(rs []native.Result) native.Result {
	sorted := make([]native.Result, len(rs))
	copy(sorted, rs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Elapsed < sorted[j].Elapsed })
	return sorted[len(sorted)/2]
}

func runOne(e exp.Experiment, sc exp.Scale, csv bool) {
	start := time.Now()
	exp.RunAndPrint(os.Stdout, e, sc, csv)
	fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
}
