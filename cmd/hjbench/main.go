// Command hjbench regenerates the paper's tables and figures.
//
// Usage:
//
//	hjbench -list
//	hjbench -fig fig10a [-scale small|full|tiny] [-csv]
//	hjbench -all [-scale small]
//
// Full scale reproduces the paper's exact setup (1 MB L2, 50 MB join
// memory) and takes minutes per figure; small scale preserves the 50:1
// memory:cache ratio at an eighth of the size and runs in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hashjoin/internal/exp"
)

func main() {
	var (
		fig   = flag.String("fig", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		scale = flag.String("scale", "small", "scale: tiny, small, or full")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	sc, ok := exp.ByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "hjbench: unknown scale %q (tiny, small, full)\n", *scale)
		os.Exit(2)
	}

	switch {
	case *all:
		for _, e := range exp.Experiments() {
			runOne(e, sc, *csv)
		}
	case *fig != "":
		e, ok := exp.Lookup(strings.ToLower(*fig))
		if !ok {
			fmt.Fprintf(os.Stderr, "hjbench: unknown experiment %q; try -list\n", *fig)
			os.Exit(2)
		}
		runOne(e, sc, *csv)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e exp.Experiment, sc exp.Scale, csv bool) {
	start := time.Now()
	exp.RunAndPrint(os.Stdout, e, sc, csv)
	fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
}
