// Command hjbench regenerates the paper's tables and figures under the
// cycle simulator, and — with -engine native — benchmarks the same join
// schemes on the host hardware, reporting wall-clock speedups of group
// and software-pipelined prefetching over the baseline the same way the
// simulator reports cycle speedups.
//
// Usage:
//
//	hjbench -list
//	hjbench -fig fig10a [-scale small|full|tiny] [-csv]
//	hjbench -all [-scale small]
//	hjbench -engine native [-build 500000] [-tuple 100] [-schemes baseline,group,pipelined]
//
// Full scale reproduces the paper's exact setup (1 MB L2, 50 MB join
// memory) and takes minutes per figure; small scale preserves the 50:1
// memory:cache ratio at an eighth of the size and runs in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/exp"
	"hashjoin/internal/native"
	"hashjoin/internal/workload"
)

func main() {
	var (
		engine  = flag.String("engine", "sim", "execution engine: sim (reproduce figures) or native (host-hardware benchmark)")
		fig     = flag.String("fig", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids")
		scale   = flag.String("scale", "small", "scale: tiny, small, or full")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		nBuild  = flag.Int("build", 500000, "native: build relation tuple count")
		tuple   = flag.Int("tuple", 100, "native: tuple size in bytes")
		matches = flag.Int("matches", 2, "native: probe tuples per build tuple")
		schemes = flag.String("schemes", "baseline,group,pipelined", "native: comma-separated schemes to compare")
		fanout  = flag.Int("fanout", 1, "native: partition fan-out (1 = single pair, the paper's join-phase setup)")
		workers = flag.Int("workers", 0, "native: morsel workers (0 = all CPUs)")
		reps    = flag.Int("reps", 3, "native: repetitions per scheme (medians reported)")
		seed    = flag.Int64("seed", 42, "native: workload seed")
	)
	flag.Parse()

	switch *engine {
	case "sim":
	case "native":
		runNative(*nBuild, *tuple, *matches, *schemes, *fanout, *workers, *reps, *seed)
		return
	default:
		fatalf("unknown engine %q (accepted: sim, native)", *engine)
	}

	if *list {
		for _, e := range exp.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	sc, ok := exp.ByName(*scale)
	if !ok {
		fatalf("unknown scale %q (accepted: tiny, small, full)", *scale)
	}

	switch {
	case *all:
		for _, e := range exp.Experiments() {
			runOne(e, sc, *csv)
		}
	case *fig != "":
		e, ok := exp.Lookup(strings.ToLower(*fig))
		if !ok {
			fatalf("unknown experiment %q; try -list", *fig)
		}
		runOne(e, sc, *csv)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runNative benchmarks the requested schemes on the host hardware and
// prints a wall-clock speedup table.
func runNative(nBuild, tuple, matches int, schemeList string, fanout, workers, reps int, seed int64) {
	names := strings.Split(schemeList, ",")
	schemes := make([]native.Scheme, 0, len(names))
	for _, n := range names {
		s, ok := native.ParseScheme(strings.TrimSpace(n))
		if !ok {
			fatalf("unknown scheme %q (accepted: %s)", n, strings.Join(native.Schemes(), ", "))
		}
		schemes = append(schemes, s)
	}
	if reps < 1 {
		reps = 1
	}

	spec := workload.Spec{
		NBuild:          nBuild,
		TupleSize:       tuple,
		MatchesPerBuild: matches,
		PctMatched:      100,
		Seed:            seed,
	}
	a := arena.New(workload.ArenaBytesFor(spec))
	pair := workload.Generate(a, spec)
	fmt.Printf("native join benchmark: %d build x %d probe tuples, %d B each, fanout %d, prefetch asm %v\n",
		pair.Build.NTuples, pair.Probe.NTuples, tuple, fanout, native.HavePrefetch)

	// One resident Joiner serves every measurement, so all schemes run
	// on the same recycled memory; an untimed warmup join pays the
	// one-time page-population cost. Repetitions interleave the schemes
	// (scheme A rep 1, scheme B rep 1, ..., scheme A rep 2, ...) so slow
	// host drift lands on all schemes alike rather than on whichever ran
	// last, and the per-scheme medians are compared — on shared or
	// virtualized CPUs the rep spread is asymmetric (occasional big slow
	// outliers), which destabilizes a best-of comparison but not the
	// median.
	jn := native.NewJoiner()
	run := func(s native.Scheme) native.Result {
		res := jn.Join(pair.Build, pair.Probe, native.Config{
			Scheme: s, Fanout: fanout, Workers: workers,
		})
		if res.NOutput != pair.ExpectedMatches || res.KeySum != pair.KeySum {
			die("scheme %v: result mismatch: (%d, %d) vs (%d, %d) expected",
				s, res.NOutput, res.KeySum, pair.ExpectedMatches, pair.KeySum)
		}
		return res
	}
	run(schemes[0]) // warmup: populate scratch pages, untimed
	results := make([][]native.Result, len(schemes))
	for r := 0; r < reps; r++ {
		for i, s := range schemes {
			results[i] = append(results[i], run(s))
		}
	}

	var baseline time.Duration
	fmt.Printf("%-10s %12s %12s %12s %10s %12s\n",
		"scheme", "partition", "join", "total", "speedup", "Mprobe/s")
	for i, s := range schemes {
		b := medianResult(results[i])
		speedup := "1.00x"
		if baseline == 0 {
			baseline = b.Elapsed
		} else {
			speedup = fmt.Sprintf("%.2fx", baseline.Seconds()/b.Elapsed.Seconds())
		}
		fmt.Printf("%-10v %10.2fms %10.2fms %10.2fms %10s %12.1f\n",
			s, secsMS(b.PartitionTime), secsMS(b.JoinTime), secsMS(b.Elapsed),
			speedup, float64(pair.Probe.NTuples)/b.JoinTime.Seconds()/1e6)
	}
	fmt.Printf("(speedup = first scheme's elapsed / scheme's elapsed; medians of %d interleaved reps; all results validated)\n", reps)
}

func secsMS(d time.Duration) float64 { return d.Seconds() * 1e3 }

// medianResult returns the run with the median Elapsed.
func medianResult(rs []native.Result) native.Result {
	sorted := make([]native.Result, len(rs))
	copy(sorted, rs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Elapsed < sorted[j].Elapsed })
	return sorted[len(sorted)/2]
}

func runOne(e exp.Experiment, sc exp.Scale, csv bool) {
	start := time.Now()
	exp.RunAndPrint(os.Stdout, e, sc, csv)
	fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
}

// fatalf reports a usage error (bad flag value): exit code 2.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hjbench: %s\n", fmt.Sprintf(format, args...))
	os.Exit(2)
}

// die reports a runtime failure: exit code 1.
func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hjbench: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}
