package main

import (
	"sync"

	"hashjoin"
)

// buildCache keeps prepared build sides (hashjoin.PrepareBuildSide)
// resident across queries, keyed by pair name: the first streaming
// native query against a pair builds the hash table once, every later
// one probes it through private scratch without rebuilding. Entries
// are built single-flight — concurrent queries for the same pair share
// one build — and the cache holds at most limit bytes of row tables,
// evicting least-recently-used entries past that.
//
// The tables live on the Go heap, outside the Env's arena, so the
// cache never competes with admission windows for arena bytes; what it
// does hold live is the pair's relations (durable arena data). trim,
// wired to the Env's quiescent-reclaim hook, decays the cache in step
// with the service going idle so a cold cache cannot pin state the
// admission side has already reclaimed around.
type buildCache struct {
	limit int64 // byte budget; <= 0 disables the cache

	mu       sync.Mutex
	entries  map[string]*cacheEntry
	seq      int64 // access clock, bumped per lookup
	trimSeq  int64 // clock value at the last trim
	resident int64 // ready bytes in the map
	hits     uint64
	misses   uint64
	evicts   uint64
}

type cacheEntry struct {
	ready chan struct{} // closed once b/err are set

	// rel identifies the relation snapshot the entry was built over, so
	// a pair overwrite racing an in-flight build cannot leave a stale
	// table cached under the reused name.
	rel *hashjoin.Relation

	b   *hashjoin.BuildSide
	err error

	bytes    int64
	lastUse  int64
	idleGens int  // consecutive trim generations without a hit
	done     bool // guarded by buildCache.mu; set before ready closes
	dropped  bool // invalidated while building: never account as resident
}

// cacheIdleGenerations is how many consecutive reclaim-driven trim
// generations an entry may go unused before it is evicted. Reclaims
// fire after every quiescent grant release — two or three per query —
// so the threshold is several idle query cycles, not several seconds.
const cacheIdleGenerations = 8

func newBuildCache(limit int64) *buildCache {
	return &buildCache{limit: limit, entries: make(map[string]*cacheEntry)}
}

func (c *buildCache) enabled() bool { return c != nil && c.limit > 0 }

// get returns the build side cached under name for the relation rel,
// calling build on a miss. The boolean reports a hit (including
// joining another caller's in-flight build). A build that errors is
// forgotten, so the next query retries rather than replaying a stale
// failure.
func (c *buildCache) get(name string, rel *hashjoin.Relation, build func() (*hashjoin.BuildSide, error)) (*hashjoin.BuildSide, bool, error) {
	c.mu.Lock()
	c.seq++
	if e, ok := c.entries[name]; ok && e.rel == rel {
		e.lastUse = c.seq
		c.hits++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, true, e.err
		}
		return e.b, true, nil
	} else if ok {
		// The pair was regenerated under the same name; drop the stale
		// entry and rebuild over the new relation.
		c.removeLocked(name, e)
	}
	e := &cacheEntry{ready: make(chan struct{}), rel: rel, lastUse: c.seq}
	c.entries[name] = e
	c.misses++
	c.mu.Unlock()

	b, err := build()

	c.mu.Lock()
	e.b, e.err = b, err
	e.done = true
	if err == nil {
		e.bytes = int64(b.Bytes())
		if !e.dropped {
			c.resident += e.bytes
			c.evictOverLimitLocked(e)
		}
	} else if c.entries[name] == e {
		delete(c.entries, name)
	}
	c.mu.Unlock()
	close(e.ready)
	return b, false, err
}

// invalidate drops the entry cached under name (pair overwritten). An
// in-flight build is marked dropped so it never becomes resident.
func (c *buildCache) invalidate(name string) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	if e, ok := c.entries[name]; ok {
		c.removeLocked(name, e)
	}
	c.mu.Unlock()
}

// trim runs on the Env's quiescent-reclaim hook: each reclamation ages
// every entry not hit since the previous trim, and an entry cold for
// cacheIdleGenerations consecutive reclaim cycles is evicted — so the
// cache decays in step with the service going idle instead of pinning
// cold tables forever, while a table hit between reclaims never ages.
func (c *buildCache) trim() {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	for name, e := range c.entries {
		if !e.done || e.err != nil {
			continue
		}
		if e.lastUse > c.trimSeq {
			e.idleGens = 0
			continue
		}
		if e.idleGens++; e.idleGens >= cacheIdleGenerations {
			c.removeLocked(name, e)
		}
	}
	c.trimSeq = c.seq
	c.mu.Unlock()
}

// counters snapshots the cache statistics.
func (c *buildCache) counters() (hits, misses, evicts uint64, resident int64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicts, c.resident
}

// removeLocked unmaps an entry and reverses its accounting. A ready
// entry's bytes leave resident as an eviction; an in-flight one is
// flagged so its completion never adds them.
func (c *buildCache) removeLocked(name string, e *cacheEntry) {
	delete(c.entries, name)
	if e.done && e.err == nil && !e.dropped {
		c.resident -= e.bytes
		c.evicts++
	}
	e.dropped = true
}

// evictOverLimitLocked evicts least-recently-used ready entries until
// resident fits the limit, never evicting keep (the entry just built).
func (c *buildCache) evictOverLimitLocked(keep *cacheEntry) {
	for c.resident > c.limit {
		var victim *cacheEntry
		victimName := ""
		for name, e := range c.entries {
			if e == keep || !e.done || e.err != nil || e.dropped {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim, victimName = e, name
			}
		}
		if victim == nil {
			return
		}
		c.removeLocked(victimName, victim)
	}
}
