// Command hjserve runs the hash-join laboratory as a long-lived
// multi-tenant service: one resident Env in service mode, shared by
// every connection, with admission control arbitrating the arena and a
// shared worker pool scheduling morsels fairly across tenants.
//
// It speaks a line-oriented TCP protocol — one command per line, one
// response line per command:
//
//	pair name=t1 build=10000 probe=20000 tuple=40 seed=1
//	query pair=t1 fanout=8 agg=1 timeout=2s
//	stats
//	ping
//	quit
//
// Successful commands answer "ok k=v ...". Failures answer
//
//	err status=<word> code=<n> msg="..."
//
// where status/code carry the same taxonomy the batch tools exit with:
// ok=0, failure=1, usage=2, memory=3, cancelled=4, internal=5 (a
// recovered handler panic), protocol=6 (malformed input, e.g. a line
// over 64 KiB). A query shed for size reports memory; one shed by queue
// timeout reports cancelled; a full queue, a draining server, or a
// connection refused at -max-conns reports failure (retryable).
//
// An HTTP side door serves GET /healthz ("ok", "degraded" with
// per-spill-dir detail when a spill directory is unhealthy, 503 while
// draining) and GET /stats (JSON counters). SIGINT/SIGTERM drains
// gracefully: queued queries are shed, in-flight queries finish, then
// the process exits 0.
//
// The HJ_CHAOS environment variable, when set, arms a seeded fault
// schedule (see internal/fault.ParseSchedule) for the whole process —
// the hook the chaos smoke tests drive a real binary with.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hashjoin"
	"hashjoin/internal/cli"
	"hashjoin/internal/fault"
)

const prog = "hjserve"

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7411", "protocol listen address (port 0 picks a free port)")
		httpAddr   = flag.String("http", "127.0.0.1:7412", "HTTP health/stats listen address (port 0 picks a free port)")
		capacity   = flag.Uint64("capacity", 256<<20, "arena capacity in bytes")
		budget     = flag.Uint64("budget", 0, "arena soft budget in bytes (0 = capacity only)")
		maxConc    = flag.Int("max-concurrent", 0, "queries in flight at once (0 = 8)")
		queueDepth = flag.Int("queue-depth", 0, "admission queue bound (0 = 64)")
		queueWait  = flag.Duration("queue-timeout", 0, "shed queries queued longer than this (0 = no server-side bound)")
		workers    = flag.Int("workers", 0, "shared morsel pool size (0 = all CPUs)")
		queryCap   = flag.Duration("query-timeout", time.Minute, "cap on per-query timeout= requests (0 = uncapped)")
		buildCache = flag.Int64("build-cache", 64<<20, "build-side cache byte budget for streaming native queries (0 disables)")
		spillDir   = flag.String("spill-dir", "", "comma-separated spill parent directories, tried in order as earlier ones fail (\"\" = OS temp)")
		maxConns   = flag.Int("max-conns", 0, "protocol connection cap; excess connections get a typed shed line (0 = unlimited)")
		idleTime   = flag.Duration("idle-timeout", 0, "close protocol connections idle longer than this (0 = never)")
		writeTime  = flag.Duration("write-timeout", 10*time.Second, "per-response write deadline (0 = none)")
		reviveEach = flag.Duration("spill-revive", 30*time.Second, "how often to probe unhealthy spill dirs for revival (0 = only on demand)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		cli.Fatalf(prog, "unexpected arguments: %v", flag.Args())
	}
	if *capacity == 0 {
		cli.Fatalf(prog, "-capacity must be positive")
	}
	if chaos, err := fault.ScheduleFromEnv(os.Getenv("HJ_CHAOS")); err != nil {
		cli.Fatalf(prog, "HJ_CHAOS: %v", err)
	} else if chaos != nil {
		fmt.Printf("%s: chaos schedule armed: %s\n", prog, chaos)
	}

	s := newServer(serverOptions{
		addr:     *addr,
		httpAddr: *httpAddr,
		capacity: *capacity,
		budget:   *budget,
		service: hashjoin.ServiceConfig{
			MaxConcurrent: *maxConc,
			QueueDepth:    *queueDepth,
			QueueTimeout:  *queueWait,
			Workers:       *workers,
		},
		queryTimeout: *queryCap,
		buildCache:   *buildCache,
		spillDir:     *spillDir,
		maxConns:     *maxConns,
		idleTimeout:  *idleTime,
		writeTimeout: *writeTime,
		reviveEvery:  *reviveEach,
	})
	if err := s.listen(); err != nil {
		cli.Dief(prog, "%v", err)
	}
	fmt.Printf("%s: listening addr=%s http=%s\n", prog, s.ln.Addr(), s.hln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Printf("%s: draining\n", prog)
		s.shutdown()
	}()

	s.serve()    // returns when the listener closes
	s.shutdown() // idempotent: waits for the drain either way
	fmt.Printf("%s: drained\n", prog)
}
