package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hashjoin"
	"hashjoin/internal/fault"
)

// startServer runs a server on free ports and returns it with a
// cleanup that drains it.
func startServer(t *testing.T, opts serverOptions) *server {
	t.Helper()
	if opts.addr == "" {
		opts.addr = "127.0.0.1:0"
	}
	if opts.httpAddr == "" {
		opts.httpAddr = "127.0.0.1:0"
	}
	if opts.capacity == 0 {
		opts.capacity = 128 << 20
	}
	s := newServer(opts)
	if err := s.listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan struct{})
	go func() {
		s.serve()
		close(done)
	}()
	t.Cleanup(func() {
		s.shutdown()
		<-done
	})
	return s
}

// client is one protocol connection.
type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, s *server) *client {
	t.Helper()
	conn, err := net.Dial("tcp", s.ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

// roundTrip sends one command and returns the response line.
func (c *client) roundTrip(t *testing.T, cmd string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, cmd); err != nil {
		t.Fatalf("send %q: %v", cmd, err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read response to %q: %v", cmd, err)
	}
	return strings.TrimSpace(line)
}

// kv parses an "ok k=v ..." or "err k=v ..." response line.
func kv(t *testing.T, line string) (string, map[string]string) {
	t.Helper()
	fields := strings.Fields(line)
	if len(fields) == 0 {
		t.Fatalf("empty response")
	}
	m := make(map[string]string)
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			// msg="..." may contain spaces; keep whatever parses.
			continue
		}
		m[k] = v
	}
	return fields[0], m
}

func mustInt(t *testing.T, m map[string]string, key string) int {
	t.Helper()
	n, err := strconv.Atoi(m[key])
	if err != nil {
		t.Fatalf("response key %s=%q is not an integer", key, m[key])
	}
	return n
}

func TestServeProtocolBasics(t *testing.T) {
	s := startServer(t, serverOptions{})
	c := dial(t, s)

	if line := c.roundTrip(t, "ping"); line != "ok" {
		t.Fatalf("ping: %q", line)
	}

	status, m := kv(t, c.roundTrip(t, "pair name=t1 build=2000 probe=4000 tuple=40 seed=7"))
	if status != "ok" {
		t.Fatalf("pair: %v %v", status, m)
	}
	wantRows := mustInt(t, m, "matches")
	wantSum := m["keysum"]

	status, m = kv(t, c.roundTrip(t, "query pair=t1 fanout=4 agg=1"))
	if status != "ok" {
		t.Fatalf("query: %v %v", status, m)
	}
	if got := mustInt(t, m, "rows"); got != wantRows {
		t.Fatalf("rows = %d, want %d", got, wantRows)
	}
	if m["keysum"] != wantSum {
		t.Fatalf("keysum = %s, want %s", m["keysum"], wantSum)
	}
	if mustInt(t, m, "morsels") == 0 {
		t.Fatal("morsels = 0 for a fanout-4 query")
	}
	if mustInt(t, m, "admitted_bytes") == 0 {
		t.Fatal("admitted_bytes = 0: query did not get a window")
	}

	// The sim engine answers the same logical result.
	status, m = kv(t, c.roundTrip(t, "query pair=t1 engine=sim agg=1"))
	if status != "ok" || mustInt(t, m, "rows") != wantRows {
		t.Fatalf("sim query: %v %v", status, m)
	}

	status, m = kv(t, c.roundTrip(t, "stats"))
	if status != "ok" || mustInt(t, m, "queries_ok") != 2 || mustInt(t, m, "in_flight") != 0 {
		t.Fatalf("stats: %v %v", status, m)
	}

	if line := c.roundTrip(t, "quit"); !strings.HasPrefix(line, "ok") {
		t.Fatalf("quit: %q", line)
	}
}

// TestServeBuildCache exercises the build-side cache end to end: the
// first streaming query against a pair builds and caches the table,
// later ones hit it (same exact results), overwriting the pair
// invalidates it, and the counters surface on both stats doors.
func TestServeBuildCache(t *testing.T) {
	s := startServer(t, serverOptions{buildCache: 64 << 20})
	c := dial(t, s)

	status, m := kv(t, c.roundTrip(t, "pair name=c1 build=3000 probe=6000 tuple=40 seed=4"))
	if status != "ok" {
		t.Fatalf("pair: %v %v", status, m)
	}
	wantRows := mustInt(t, m, "matches")
	wantSum := m["keysum"]

	status, m = kv(t, c.roundTrip(t, "query pair=c1 fanout=1"))
	if status != "ok" || m["cache"] != "miss" {
		t.Fatalf("first streaming query: %v %v, want ok cache=miss", status, m)
	}
	if mustInt(t, m, "rows") != wantRows || m["keysum"] != wantSum {
		t.Fatalf("first query result %v, want rows=%d keysum=%s", m, wantRows, wantSum)
	}
	for i := 0; i < 3; i++ {
		status, m = kv(t, c.roundTrip(t, "query pair=c1 fanout=1"))
		if status != "ok" || m["cache"] != "hit" {
			t.Fatalf("repeat query %d: %v %v, want ok cache=hit", i, status, m)
		}
		if mustInt(t, m, "rows") != wantRows || m["keysum"] != wantSum {
			t.Fatalf("cached query %d result %v, want rows=%d keysum=%s", i, m, wantRows, wantSum)
		}
	}

	// Partitioned and sim queries bypass the cache entirely.
	status, m = kv(t, c.roundTrip(t, "query pair=c1 fanout=4"))
	if status != "ok" {
		t.Fatalf("fanout-4 query: %v %v", status, m)
	}
	if _, ok := m["cache"]; ok {
		t.Fatalf("partitioned query touched the cache: %v", m)
	}

	status, m = kv(t, c.roundTrip(t, "stats"))
	if status != "ok" {
		t.Fatalf("stats: %v", m)
	}
	if mustInt(t, m, "build_cache_hits") != 3 || mustInt(t, m, "build_cache_misses") != 1 {
		t.Fatalf("cache counters = hits %s misses %s, want 3/1", m["build_cache_hits"], m["build_cache_misses"])
	}
	if mustInt(t, m, "build_cache_resident_bytes") == 0 {
		t.Fatal("build_cache_resident_bytes = 0 with a cached table")
	}

	// Regenerating the pair under the same name must evict the stale
	// table: the next streaming query rebuilds over the new relation.
	status, m = kv(t, c.roundTrip(t, "pair name=c1 build=2000 probe=4000 tuple=40 seed=9"))
	if status != "ok" {
		t.Fatalf("pair overwrite: %v %v", status, m)
	}
	newRows := mustInt(t, m, "matches")
	status, m = kv(t, c.roundTrip(t, "query pair=c1 fanout=1"))
	if status != "ok" || m["cache"] != "miss" || mustInt(t, m, "rows") != newRows {
		t.Fatalf("post-overwrite query: %v %v, want cache=miss rows=%d", status, m, newRows)
	}

	status, m = kv(t, c.roundTrip(t, "stats"))
	if status != "ok" || mustInt(t, m, "build_cache_evictions") == 0 {
		t.Fatalf("stats after overwrite: %v, want evictions > 0", m)
	}

	// The HTTP door carries the same counters.
	resp, err := http.Get("http://" + s.hln.Addr().String() + "/stats")
	if err != nil {
		t.Fatalf("http stats: %v", err)
	}
	var js map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if js["build_cache_hits"].(float64) != 3 || js["build_cache_misses"].(float64) != 2 {
		t.Fatalf("http cache counters = %v/%v, want 3/2", js["build_cache_hits"], js["build_cache_misses"])
	}
}

// TestServeBuildCacheConcurrent has 8 tenants hammer one pair with
// streaming queries: the table is built at most a handful of times
// (single flight), every result is exact, and the counters balance.
func TestServeBuildCacheConcurrent(t *testing.T) {
	s := startServer(t, serverOptions{
		buildCache: 64 << 20,
		service:    hashjoin.ServiceConfig{MaxConcurrent: 4},
	})
	setup := dial(t, s)
	status, m := kv(t, setup.roundTrip(t, "pair name=t1 build=3000 probe=6000 tuple=40 seed=3"))
	if status != "ok" {
		t.Fatal("pair failed")
	}
	wantRows := strconv.Itoa(mustInt(t, m, "matches"))

	const clients, queries = 8, 3
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", s.ln.Addr().String())
			if err != nil {
				t.Errorf("client %d dial: %v", i, err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for q := 0; q < queries; q++ {
				fmt.Fprintf(conn, "query pair=t1 fanout=1 weight=%d\n", 1+i%3)
				line, err := r.ReadString('\n')
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				_, m := kv(t, strings.TrimSpace(line))
				if m["rows"] != wantRows {
					t.Errorf("client %d: %q, want rows=%s", i, line, wantRows)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	_, m = kv(t, setup.roundTrip(t, "stats"))
	hits, misses := mustInt(t, m, "build_cache_hits"), mustInt(t, m, "build_cache_misses")
	if hits+misses != clients*queries {
		t.Fatalf("hits %d + misses %d != %d streaming queries", hits, misses, clients*queries)
	}
	if misses < 1 || hits < 1 {
		t.Fatalf("cache did not share the build: hits=%d misses=%d", hits, misses)
	}
}

// TestServeStatusTaxonomy pins the wire statuses onto the exit-code
// taxonomy: usage=2 for protocol mistakes, memory=3 for an impossible
// footprint, cancelled=4 for a timeout.
func TestServeStatusTaxonomy(t *testing.T) {
	s := startServer(t, serverOptions{
		capacity: 64 << 20,
		budget:   8 << 20,
		service:  hashjoin.ServiceConfig{MaxConcurrent: 1},
	})
	c := dial(t, s)
	if status, _ := kv(t, c.roundTrip(t, "pair name=t1 build=1000 tuple=40")); status != "ok" {
		t.Fatal("pair failed")
	}

	cases := []struct {
		cmd    string
		status string
		code   int
	}{
		{"bogus", "usage", 2},
		{"query pair=missing", "usage", 2},
		{"query pair=t1 fanout=abc", "usage", 2},
		{"query pair=t1 nonsense=1", "usage", 2},
		{"pair name=t2 build=1000 tuple=4", "usage", 2},
		{"query pair=t1 planned=33554432", "memory", 3}, // 32 MB window > 8 MB budget
		{"query pair=t1 timeout=1ns", "cancelled", 4},
	}
	for _, tc := range cases {
		status, m := kv(t, c.roundTrip(t, tc.cmd))
		if status != "err" || m["status"] != tc.status || mustInt(t, m, "code") != tc.code {
			t.Errorf("%q -> %s %v, want err status=%s code=%d", tc.cmd, status, m, tc.status, tc.code)
		}
	}

	// Errors did not wedge the slot: a clean query still runs.
	if status, _ := kv(t, c.roundTrip(t, "query pair=t1")); status != "ok" {
		t.Fatal("post-error query failed")
	}
}

// TestServeJoinTypesAndExplain drives the join_type=, strategy=, and
// explain= keys end to end. The generated pair has unique build keys
// and the first nBuild probe tuples matching one build tuple each, so
// the per-join-type row counts follow from the pair's inner ground
// truth: semi emits each matched probe row once (= matches), anti the
// remaining probe rows, left-outer every probe row.
func TestServeJoinTypesAndExplain(t *testing.T) {
	s := startServer(t, serverOptions{})
	c := dial(t, s)

	const nBuild, nProbe = 1500, 3000
	status, m := kv(t, c.roundTrip(t,
		fmt.Sprintf("pair name=j1 build=%d probe=%d tuple=40 seed=5", nBuild, nProbe)))
	if status != "ok" {
		t.Fatalf("pair: %v %v", status, m)
	}
	matches := mustInt(t, m, "matches")
	innerSum := m["keysum"]

	// Semi join: one row per matched probe tuple; with unique build keys
	// the probe keysum equals the inner build keysum.
	status, m = kv(t, c.roundTrip(t, "query pair=j1 join_type=semi agg=1"))
	if status != "ok" || mustInt(t, m, "rows") != matches || m["keysum"] != innerSum {
		t.Fatalf("semi query: %v %v, want rows=%d keysum=%s", status, m, matches, innerSum)
	}

	// Anti join: the probe rows the semi join dropped.
	status, m = kv(t, c.roundTrip(t, "query pair=j1 join_type=anti agg=1"))
	if status != "ok" || mustInt(t, m, "rows") != nProbe-matches {
		t.Fatalf("anti query: %v %v, want rows=%d", status, m, nProbe-matches)
	}

	// Left outer: every probe row survives; null-padded rows aggregate
	// under key 0 and add nothing to the keysum.
	status, m = kv(t, c.roundTrip(t, "query pair=j1 join_type=left-outer agg=1"))
	if status != "ok" || mustInt(t, m, "rows") != nProbe || m["keysum"] != innerSum {
		t.Fatalf("left-outer query: %v %v, want rows=%d keysum=%s", status, m, nProbe, innerSum)
	}

	// explain=1 engages the planner and reports its decision; sim engine
	// exercises the same path on the other backend.
	for _, cmd := range []string{
		"query pair=j1 join_type=semi explain=1",
		"query pair=j1 engine=sim join_type=semi strategy=auto explain=1",
	} {
		line := c.roundTrip(t, cmd)
		if !strings.HasPrefix(line, "ok ") || !strings.Contains(line, "join_type=semi") ||
			!strings.Contains(line, `plan="strategy=`) {
			t.Fatalf("%q -> %q, want ok with plan=\"strategy=... join_type=semi ...\"", cmd, line)
		}
	}

	// A forced strategy executes and is reported as forced.
	line := c.roundTrip(t, "query pair=j1 strategy=nested-loop join_type=anti explain=1")
	if !strings.HasPrefix(line, "ok ") || !strings.Contains(line, "strategy=nested-loop") ||
		!strings.Contains(line, "forced") {
		t.Fatalf("forced nested-loop: %q", line)
	}

	// Bad values answer with the usage taxonomy, not a hung query.
	for _, cmd := range []string{
		"query pair=j1 join_type=full",
		"query pair=j1 strategy=bogus",
		"query pair=j1 explain=x",
	} {
		status, m := kv(t, c.roundTrip(t, cmd))
		if status != "err" || mustInt(t, m, "code") != 2 {
			t.Fatalf("%q -> %v %v, want err code=2", cmd, status, m)
		}
	}
}

// TestServeConcurrentClients drives parallel connections through the
// same pair and checks every one gets the exact result while the HTTP
// side door stays responsive.
func TestServeConcurrentClients(t *testing.T) {
	base := fault.Goroutines()
	s := startServer(t, serverOptions{service: hashjoin.ServiceConfig{MaxConcurrent: 4}})
	setup := dial(t, s)
	status, m := kv(t, setup.roundTrip(t, "pair name=t1 build=3000 probe=6000 tuple=40 seed=3"))
	if status != "ok" {
		t.Fatal("pair failed")
	}
	wantRows := mustInt(t, m, "matches")

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", s.ln.Addr().String())
			if err != nil {
				t.Errorf("client %d dial: %v", i, err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for q := 0; q < 3; q++ {
				fmt.Fprintf(conn, "query pair=t1 fanout=4 weight=%d agg=1\n", 1+i%3)
				line, err := r.ReadString('\n')
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				fields := strings.Fields(strings.TrimSpace(line))
				if len(fields) == 0 || fields[0] != "ok" {
					t.Errorf("client %d: %q", i, line)
					return
				}
				for _, f := range fields[1:] {
					if k, v, _ := strings.Cut(f, "="); k == "rows" && v != strconv.Itoa(wantRows) {
						t.Errorf("client %d: rows=%s, want %d", i, v, wantRows)
					}
				}
			}
		}(i)
	}

	// Health and stats under load.
	hurl := "http://" + s.hln.Addr().String()
	resp, err := http.Get(hurl + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under load: %v %v", resp, err)
	}
	resp.Body.Close()
	wg.Wait()

	resp, err = http.Get(hurl + "/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	resp.Body.Close()
	if got := stats["queries_ok"].(float64); got != clients*3 {
		t.Fatalf("queries_ok = %v, want %d", got, clients*3)
	}
	if got := stats["in_flight"].(float64); got != 0 {
		t.Fatalf("in_flight = %v after the wave", got)
	}

	// Drain: later connections are refused, health turns 503, no
	// goroutines leak.
	s.shutdown()
	if _, err := net.Dial("tcp", s.ln.Addr().String()); err == nil {
		t.Fatal("dial succeeded after drain")
	}
	resp, err = http.Get(hurl + "/healthz")
	if err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz after drain: %d, want 503", resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	fault.CheckGoroutines(t, base)
}
