package main

import (
	"context"
	"testing"

	"hashjoin"
)

// prepared builds n distinct BuildSides on one plain Env for driving
// the cache deterministically (no server, no scheduler).
func prepared(t *testing.T, n int) []*hashjoin.BuildSide {
	t.Helper()
	env := hashjoin.NewEnv(hashjoin.WithSmallHierarchy(), hashjoin.WithCapacity(64<<20))
	ctx := context.Background()
	out := make([]*hashjoin.BuildSide, n)
	for i := range out {
		w, err := env.GenerateWorkload(ctx, 1000, 1000, 24, int64(i+1))
		if err != nil {
			t.Fatalf("workload %d: %v", i, err)
		}
		b, err := env.PrepareBuildSide(ctx, w.Build)
		if err != nil {
			t.Fatalf("prepare %d: %v", i, err)
		}
		out[i] = b
	}
	return out
}

func cachedGet(t *testing.T, c *buildCache, name string, b *hashjoin.BuildSide) bool {
	t.Helper()
	got, hit, err := c.get(name, nil, func() (*hashjoin.BuildSide, error) { return b, nil })
	if err != nil {
		t.Fatalf("get %s: %v", name, err)
	}
	if got != b && !hit {
		t.Fatalf("get %s returned a different handle on a miss", name)
	}
	return hit
}

// TestBuildCacheLRUEviction pins the byte-budget behavior: inserting
// past the limit evicts the least-recently-used entry, and a re-get of
// the evicted name misses while the survivor still hits.
func TestBuildCacheLRUEviction(t *testing.T) {
	bs := prepared(t, 3)
	per := int64(bs[0].Bytes())
	c := newBuildCache(2*per + per/2) // room for two tables, not three

	cachedGet(t, c, "a", bs[0])
	cachedGet(t, c, "b", bs[1])
	if !cachedGet(t, c, "a", bs[0]) {
		t.Fatal("a missed while resident")
	}
	cachedGet(t, c, "c", bs[2]) // over budget: evicts b (LRU), not a

	hits, misses, evicts, resident := c.counters()
	if evicts != 1 {
		t.Fatalf("evictions = %d, want 1", evicts)
	}
	if resident > c.limit {
		t.Fatalf("resident %d over limit %d", resident, c.limit)
	}
	if !cachedGet(t, c, "a", bs[0]) {
		t.Fatal("a was evicted; LRU should have chosen b")
	}
	if cachedGet(t, c, "b", bs[1]) {
		t.Fatal("b hit after eviction")
	}
	hits, misses, _, _ = c.counters()
	if hits != 2 || misses != 4 {
		t.Fatalf("hits/misses = %d/%d, want 2/4", hits, misses)
	}
}

// TestBuildCacheTrimDecay pins the reclaim wiring: an entry untouched
// for cacheIdleGenerations trim calls is evicted; one hit in between
// resets its age.
func TestBuildCacheTrimDecay(t *testing.T) {
	bs := prepared(t, 1)
	c := newBuildCache(int64(bs[0].Bytes()) * 4)
	cachedGet(t, c, "a", bs[0])

	for i := 0; i < cacheIdleGenerations-1; i++ {
		c.trim()
	}
	if !cachedGet(t, c, "a", bs[0]) {
		t.Fatal("entry evicted before the idle threshold")
	}
	for i := 0; i < cacheIdleGenerations-1; i++ {
		c.trim()
	}
	if !cachedGet(t, c, "a", bs[0]) {
		t.Fatal("hit did not reset the entry's idle age")
	}
	// The first trim after a hit only resets the age baseline; the
	// entry then needs cacheIdleGenerations cold trims to die.
	for i := 0; i < cacheIdleGenerations+1; i++ {
		c.trim()
	}
	if cachedGet(t, c, "a", bs[0]) {
		t.Fatal("cold entry survived the full idle decay")
	}
	if _, _, _, resident := c.counters(); resident != int64(bs[0].Bytes()) {
		t.Fatalf("resident = %d after re-build, want one table", resident)
	}
}

// TestBuildCacheInvalidate covers both invalidation paths: a ready
// entry is dropped with its bytes, and a stale-relation lookup under a
// reused name rebuilds instead of serving the old table.
func TestBuildCacheInvalidate(t *testing.T) {
	bs := prepared(t, 2)
	c := newBuildCache(1 << 30)
	cachedGet(t, c, "a", bs[0])
	c.invalidate("a")
	if _, _, evicts, resident := c.counters(); evicts != 1 || resident != 0 {
		t.Fatalf("after invalidate: evicts=%d resident=%d, want 1/0", evicts, resident)
	}
	if cachedGet(t, c, "a", bs[0]) {
		t.Fatal("hit after invalidate")
	}

	// Same name, different relation identity: must rebuild.
	fake := &hashjoin.Relation{}
	got, hit, err := c.get("a", fake, func() (*hashjoin.BuildSide, error) { return bs[1], nil })
	if err != nil || hit || got != bs[1] {
		t.Fatalf("stale-relation get = (%v, hit=%v, %v), want rebuild", got, hit, err)
	}
}
