package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hashjoin"
	"hashjoin/internal/cli"
	"hashjoin/internal/fault"
	"hashjoin/internal/spill"
)

// server is the long-lived join service: one resident Env in service
// mode, a line-oriented TCP protocol for loading workload pairs and
// running queries, and an HTTP side door for health and stats.
type server struct {
	env   *hashjoin.Env
	opts  serverOptions
	cache *buildCache

	mu    sync.Mutex
	pairs map[string]*hashjoin.Workload
	open  map[net.Conn]struct{} // live protocol connections, for drain

	ln   net.Listener
	hln  net.Listener
	hsrv *http.Server

	conns      sync.WaitGroup
	draining   atomic.Bool
	reviveStop chan struct{}

	// Server-level counters, alongside the Env's admission counters.
	queriesOK  atomic.Uint64
	queriesErr atomic.Uint64
	panics     atomic.Uint64 // requests that panicked and were recovered
	connShed   atomic.Uint64 // connections refused at the concurrency cap

	// Spill-recovery totals accumulated across completed queries.
	spillFailovers atomic.Int64
	spillRebuilds  atomic.Int64
}

type serverOptions struct {
	addr, httpAddr string
	capacity       uint64
	budget         uint64
	service        hashjoin.ServiceConfig
	queryTimeout   time.Duration // cap on per-query timeout= requests
	buildCache     int64         // build-side cache byte budget (0 disables)
	spillDir       string        // comma-separated spill parents for queries ("" = OS temp)
	maxConns       int           // protocol connection cap (0 = unlimited)
	idleTimeout    time.Duration // per-command read deadline (0 = none)
	writeTimeout   time.Duration // per-response write deadline (0 = none)
	reviveEvery    time.Duration // spill-dir revival probe period (0 = off)
}

func newServer(opts serverOptions) *server {
	envOpts := []hashjoin.Option{
		hashjoin.WithSmallHierarchy(),
		hashjoin.WithCapacity(opts.capacity),
		hashjoin.WithService(opts.service),
	}
	if opts.budget > 0 {
		envOpts = append(envOpts, hashjoin.WithArenaBudget(opts.budget))
	}
	s := &server{
		env:        hashjoin.NewEnv(envOpts...),
		opts:       opts,
		cache:      newBuildCache(opts.buildCache),
		pairs:      make(map[string]*hashjoin.Workload),
		open:       make(map[net.Conn]struct{}),
		reviveStop: make(chan struct{}),
	}
	// Decay the build cache in step with the scheduler's quiescent
	// window reclamations: a service gone idle sheds cold tables too.
	s.env.OnReclaim(s.cache.trim)
	return s
}

// listen binds both listeners and reports the resolved addresses (the
// flags accept port 0 so tests and scripts can bind anywhere free).
func (s *server) listen() error {
	ln, err := net.Listen("tcp", s.opts.addr)
	if err != nil {
		return fmt.Errorf("protocol listener: %w", err)
	}
	hln, err := net.Listen("tcp", s.opts.httpAddr)
	if err != nil {
		ln.Close()
		return fmt.Errorf("http listener: %w", err)
	}
	s.ln, s.hln = ln, hln

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	s.hsrv = &http.Server{Handler: mux}
	return nil
}

// serve accepts protocol connections until shutdown; it returns after
// the listener closes. The HTTP server runs on its own goroutine.
func (s *server) serve() {
	go s.hsrv.Serve(s.hln)
	if s.opts.reviveEvery > 0 {
		go s.reviver()
	}
	for id := 1; ; id++ {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: shutting down
		}
		s.mu.Lock()
		if s.opts.maxConns > 0 && len(s.open) >= s.opts.maxConns {
			s.mu.Unlock()
			s.connShed.Add(1)
			// Shed with a typed line, not a silent RST: the client learns
			// this is load, not a protocol mistake, and can retry.
			s.setWriteDeadline(conn)
			fmt.Fprintln(conn, errLine(cli.ExitFailure,
				fmt.Errorf("connection capacity %d reached; retry later", s.opts.maxConns)))
			conn.Close()
			continue
		}
		s.open[conn] = struct{}{}
		s.mu.Unlock()
		if s.draining.Load() {
			// Raced a drain that already swept the open set: expire the
			// read deadline ourselves so the handler cannot park in Scan.
			conn.SetReadDeadline(time.Now())
		}
		s.conns.Add(1)
		go func(id int, conn net.Conn) {
			defer s.conns.Done()
			s.handleConn(id, conn)
			s.mu.Lock()
			delete(s.open, conn)
			s.mu.Unlock()
		}(id, conn)
	}
}

// shutdown drains the server: stop accepting, shed queued queries, let
// in-flight queries and open connections finish, then release the
// Env's worker pool. Safe to call more than once.
func (s *server) shutdown() {
	if s.draining.Swap(true) {
		s.env.Close() // second caller still waits for the drain
		return
	}
	s.ln.Close()
	s.env.Close() // sheds the admission queue, waits out in-flight queries
	// Wake handlers parked in Scan on idle connections: an expired read
	// deadline fails the next read but leaves writes alone, so a handler
	// mid-command still delivers its response before exiting.
	s.mu.Lock()
	for conn := range s.open {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.conns.Wait()
	close(s.reviveStop)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.hsrv.Shutdown(ctx)
}

// reviver periodically probes unhealthy spill directories so recovered
// disks rejoin the rotation between queries, not just when a query
// happens to need them.
func (s *server) reviver() {
	t := time.NewTicker(s.opts.reviveEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			spill.Revive(s.opts.spillDir)
		case <-s.reviveStop:
			return
		}
	}
}

// setWriteDeadline arms the per-response write deadline, if configured:
// a client that stops reading cannot park a handler in a blocked write.
func (s *server) setWriteDeadline(conn net.Conn) {
	if s.opts.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.opts.writeTimeout))
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	// Degraded: still serving (in-memory joins and failover keep queries
	// completing) but some spill directory is down, so operators should
	// look before the last one goes. 200 on purpose — load balancers must
	// not pull a node that is still answering queries.
	health := spill.Health(s.opts.spillDir)
	degraded := false
	for _, h := range health {
		if !h.Healthy {
			degraded = true
			break
		}
	}
	if !degraded {
		fmt.Fprintln(w, "ok")
		return
	}
	fmt.Fprintln(w, "degraded")
	for _, h := range health {
		dir := h.Dir
		if dir == "" {
			dir = os.TempDir()
		}
		if h.Healthy {
			fmt.Fprintf(w, "spill-dir %s: healthy\n", dir)
		} else {
			fmt.Fprintf(w, "spill-dir %s: unhealthy since=%s cause=%q\n",
				dir, h.Since.UTC().Format(time.RFC3339), h.Cause)
		}
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	sc := s.env.ServiceStats()
	hits, misses, evicts, resident := s.cache.counters()
	health := spill.Health(s.opts.spillDir)
	dirHealth := make([]map[string]any, 0, len(health))
	unhealthyDirs := 0
	for _, h := range health {
		dir := h.Dir
		if dir == "" {
			dir = os.TempDir()
		}
		e := map[string]any{"dir": dir, "healthy": h.Healthy}
		if !h.Healthy {
			unhealthyDirs++
			e["cause"] = h.Cause
			e["since"] = h.Since.UTC().Format(time.RFC3339)
		}
		dirHealth = append(dirHealth, e)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"build_cache_hits":           hits,
		"build_cache_misses":         misses,
		"build_cache_evictions":      evicts,
		"build_cache_resident_bytes": resident,

		"spill_failovers":      s.spillFailovers.Load(),
		"spill_rebuilds":       s.spillRebuilds.Load(),
		"spill_dirs":           dirHealth,
		"spill_dirs_unhealthy": unhealthyDirs,

		"panics":    s.panics.Load(),
		"conn_shed": s.connShed.Load(),

		"queries_ok":       s.queriesOK.Load(),
		"queries_err":      s.queriesErr.Load(),
		"admitted":         sc.Admitted,
		"completed":        sc.Completed,
		"failed":           sc.Failed,
		"waited":           sc.Waited,
		"shed_too_large":   sc.ShedTooLarge,
		"shed_queue_full":  sc.ShedQueueFull,
		"shed_timeout":     sc.ShedTimeout,
		"shed_draining":    sc.ShedDraining,
		"queue_wait_ns":    sc.QueueWaitTotal.Nanoseconds(),
		"morsels_executed": sc.MorselsExecuted,
		"reclaims":         sc.Reclaims,
		"in_flight":        sc.InFlight,
		"queued":           sc.Queued,
		"reserved_bytes":   sc.ReservedBytes,
	})
}

// maxLineLen bounds one protocol command line. A longer line is a
// protocol error: it is drained to its newline and answered with a
// typed err line, and the connection keeps serving — a hostile or buggy
// client cannot silently kill its own session mid-script.
const maxLineLen = 64 << 10

var errLineTooLong = fmt.Errorf("line exceeds %d bytes", maxLineLen)

// readLine reads one newline-terminated command line of at most
// maxLineLen bytes. Over-long lines are consumed entirely (so the next
// read starts at the next command) and reported as errLineTooLong.
func readLine(br *bufio.Reader) (string, error) {
	var line []byte
	over := false
	for {
		frag, err := br.ReadSlice('\n')
		if !over && len(line)+len(frag) > maxLineLen {
			over, line = true, nil
		}
		if !over {
			line = append(line, frag...)
		}
		switch err {
		case nil:
			if over {
				return "", errLineTooLong
			}
			return string(line), nil
		case bufio.ErrBufferFull:
			continue
		default:
			return "", err
		}
	}
}

// handleConn speaks the line protocol: one command per line, one
// response line per command ("ok k=v ..." or `err status=<word>
// code=<n> msg=<quoted>`), until quit, EOF, idle timeout, or server
// drain.
func (s *server) handleConn(id int, conn net.Conn) {
	defer conn.Close()
	tenant := fmt.Sprintf("conn-%d", id)
	br := bufio.NewReader(conn)
	out := bufio.NewWriter(conn)
	respond := func(resp string) bool {
		s.setWriteDeadline(conn)
		fmt.Fprintln(out, resp)
		return out.Flush() == nil
	}
	for {
		if s.opts.idleTimeout > 0 && !s.draining.Load() {
			conn.SetReadDeadline(time.Now().Add(s.opts.idleTimeout))
		}
		raw, err := readLine(br)
		if err == errLineTooLong {
			if !respond(errLine(cli.ExitProtocol, errLineTooLong)) {
				return
			}
			continue
		}
		if err != nil {
			// Idle expiry on a live server gets a goodbye line; a drain's
			// expired deadline (and EOF, and network failures) just closes.
			if errors.Is(err, os.ErrDeadlineExceeded) && !s.draining.Load() {
				respond(errLine(cli.ExitCancelled,
					fmt.Errorf("idle for %v; closing connection", s.opts.idleTimeout)))
			}
			return
		}
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		resp, quit := s.dispatch(tenant, fields[0], fields[1:])
		if quit {
			respond("ok bye=1")
			return
		}
		if !respond(resp) {
			return
		}
	}
}

// dispatch routes one command, containing any panic the handler raises
// into a typed err status=internal response: the request dies, the
// connection and the server do not.
func (s *server) dispatch(tenant, cmd string, args []string) (resp string, quit bool) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			resp = errLine(cli.ExitInternal, fmt.Errorf("panic serving %s: %v", cmd, r))
		}
	}()
	if err := fault.Hit(fault.SiteServeRequest); err != nil {
		return errLine(cli.ExitInternal, err), false
	}
	switch cmd {
	case "ping":
		return "ok", false
	case "pair":
		return s.cmdPair(args), false
	case "query":
		return s.cmdQuery(tenant, args), false
	case "stats":
		return s.cmdStats(), false
	case "quit":
		return "", true
	default:
		return errLine(cli.ExitUsage, fmt.Errorf("unknown command %q (have: ping, pair, query, stats, quit)", cmd)), false
	}
}

// kvArgs parses k=v tokens; unknown keys fail so typos cannot silently
// select defaults.
func kvArgs(args, allowed []string) (map[string]string, error) {
	kv := make(map[string]string, len(args))
	for _, a := range args {
		k, v, ok := strings.Cut(a, "=")
		if !ok || v == "" {
			return nil, fmt.Errorf("malformed argument %q (want key=value)", a)
		}
		found := false
		for _, want := range allowed {
			if k == want {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown key %q (accepted: %s)", k, strings.Join(allowed, ", "))
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		kv[k] = v
	}
	return kv, nil
}

func kvInt(kv map[string]string, key string, def int) (int, error) {
	v, ok := kv[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s=%q (want a non-negative integer)", key, v)
	}
	return n, nil
}

// cmdPair generates a named workload pair: a durable, exclusive load
// that is safe while queries are in flight.
func (s *server) cmdPair(args []string) string {
	kv, err := kvArgs(args, []string{"name", "build", "probe", "tuple", "seed"})
	if err != nil {
		return errLine(cli.ExitUsage, err)
	}
	name := kv["name"]
	if name == "" {
		return errLine(cli.ExitUsage, errors.New("pair needs name="))
	}
	nBuild, err := kvInt(kv, "build", 0)
	if err != nil || nBuild == 0 {
		return errLine(cli.ExitUsage, errors.New("pair needs build=<tuples>"))
	}
	nProbe, err := kvInt(kv, "probe", 0)
	if err != nil {
		return errLine(cli.ExitUsage, err)
	}
	tuple, err := kvInt(kv, "tuple", 40)
	if err != nil || tuple < 8 {
		return errLine(cli.ExitUsage, errors.New("pair needs tuple=<bytes> >= 8"))
	}
	seed, err := kvInt(kv, "seed", 1)
	if err != nil {
		return errLine(cli.ExitUsage, err)
	}

	w, err := s.env.GenerateWorkload(context.Background(), nBuild, nProbe, tuple, int64(seed))
	if err != nil {
		return errLine(cli.ExitCodeFor(err), err)
	}
	s.mu.Lock()
	s.pairs[name] = w
	s.mu.Unlock()
	s.cache.invalidate(name) // a reused name must not serve the old build
	return fmt.Sprintf("ok name=%s build=%d probe=%d matches=%d keysum=%d",
		name, w.Build.Len(), w.Probe.Len(), w.ExpectedMatches, w.KeySum)
}

// cmdQuery runs one admitted pipeline over a named pair.
func (s *server) cmdQuery(tenant string, args []string) string {
	kv, err := kvArgs(args, []string{"pair", "engine", "fanout", "workers", "weight", "planned", "agg", "timeout", "tenant", "budget", "hybrid", "join_type", "strategy", "explain"})
	if err != nil {
		return errLine(cli.ExitUsage, err)
	}
	s.mu.Lock()
	w := s.pairs[kv["pair"]]
	s.mu.Unlock()
	if w == nil {
		return errLine(cli.ExitUsage, fmt.Errorf("unknown pair %q (create it with the pair command)", kv["pair"]))
	}
	if t := kv["tenant"]; t != "" {
		tenant = t
	}
	opts := []hashjoin.PipelineOption{hashjoin.WithTenant(tenant)}
	if s.opts.spillDir != "" {
		opts = append(opts, hashjoin.WithPipelineSpillDir(s.opts.spillDir))
	}
	nativeEngine := false
	switch kv["engine"] {
	case "", "native":
		nativeEngine = true
		opts = append(opts, hashjoin.WithEngine(hashjoin.EngineNative))
	case "sim":
		opts = append(opts, hashjoin.WithEngine(hashjoin.EngineSim))
	default:
		return errLine(cli.ExitUsage, fmt.Errorf("bad engine=%q (want native or sim)", kv["engine"]))
	}
	fanout, err := kvInt(kv, "fanout", 4)
	if err != nil {
		return errLine(cli.ExitUsage, err)
	}
	workers, err := kvInt(kv, "workers", 0)
	if err != nil {
		return errLine(cli.ExitUsage, err)
	}
	weight, err := kvInt(kv, "weight", 0)
	if err != nil {
		return errLine(cli.ExitUsage, err)
	}
	planned, err := kvInt(kv, "planned", 0)
	if err != nil {
		return errLine(cli.ExitUsage, err)
	}
	agg, err := kvInt(kv, "agg", 0)
	if err != nil {
		return errLine(cli.ExitUsage, err)
	}
	budget, err := kvInt(kv, "budget", 0)
	if err != nil {
		return errLine(cli.ExitUsage, err)
	}
	hybrid, err := kvInt(kv, "hybrid", 0)
	if err != nil {
		return errLine(cli.ExitUsage, err)
	}
	if hybrid != 0 && budget <= 0 {
		return errLine(cli.ExitUsage, errors.New("hybrid=1 needs budget=<bytes>"))
	}
	jt, err := hashjoin.ParseJoinType(kv["join_type"])
	if err != nil {
		return errLine(cli.ExitUsage, err)
	}
	explain, err := kvInt(kv, "explain", 0)
	if err != nil {
		return errLine(cli.ExitUsage, err)
	}
	if jt != hashjoin.Inner {
		opts = append(opts, hashjoin.WithJoinType(jt))
	}
	// A strategy= key (even "auto") or explain=1 engages the cost-based
	// planner; without either, the legacy fanout-driven selection applies.
	if v, ok := kv["strategy"]; ok || explain != 0 {
		strategy, serr := hashjoin.ParseStrategy(v)
		if serr != nil {
			return errLine(cli.ExitUsage, serr)
		}
		opts = append(opts, hashjoin.WithStrategy(strategy))
	}
	opts = append(opts,
		hashjoin.WithPipelineFanout(fanout),
		hashjoin.WithPipelineWorkers(workers),
		hashjoin.WithTenantWeight(weight),
	)
	if planned > 0 {
		opts = append(opts, hashjoin.WithPlannedScratch(uint64(planned)))
	}
	if budget > 0 {
		opts = append(opts, hashjoin.WithPipelineMemBudget(budget))
	}
	if hybrid != 0 {
		opts = append(opts, hashjoin.WithPipelineHybrid())
	}
	if agg != 0 {
		opts = append(opts, hashjoin.WithAggregation(4, w.Build.Len()))
	}

	ctx := context.Background()
	if v := kv["timeout"]; v != "" {
		d, perr := time.ParseDuration(v)
		if perr != nil || d <= 0 {
			return errLine(cli.ExitUsage, fmt.Errorf("bad timeout=%q (want a positive duration)", v))
		}
		if s.opts.queryTimeout > 0 && d > s.opts.queryTimeout {
			d = s.opts.queryTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	// Streaming native queries (fanout <= 1) probe through the build
	// cache: the first query for a pair prepares the shared row table
	// (single-flight), later ones skip the build phase entirely.
	cacheNote := ""
	if nativeEngine && fanout <= 1 && s.cache.enabled() {
		b, hit, berr := s.cache.get(kv["pair"], w.Build, func() (*hashjoin.BuildSide, error) {
			return s.env.PrepareBuildSide(ctx, w.Build,
				hashjoin.WithTenant(tenant),
				hashjoin.WithTenantWeight(weight),
				hashjoin.WithPipelineWorkers(workers))
		})
		if berr != nil {
			s.queriesErr.Add(1)
			return errLine(cli.ExitCodeFor(berr), berr)
		}
		opts = append(opts, hashjoin.WithBuildSide(b))
		if hit {
			cacheNote = " cache=hit"
		} else {
			cacheNote = " cache=miss"
		}
	}

	res, err := s.env.RunPipelineContext(ctx, w.Build, w.Probe, opts...)
	if err != nil {
		s.queriesErr.Add(1)
		return errLine(cli.ExitCodeFor(err), err)
	}
	s.queriesOK.Add(1)
	recoveryNote := ""
	if res.SpillFailovers > 0 || res.SpillRebuilds > 0 {
		s.spillFailovers.Add(res.SpillFailovers)
		s.spillRebuilds.Add(res.SpillRebuilds)
		recoveryNote = fmt.Sprintf(" spill_failovers=%d spill_rebuilds=%d",
			res.SpillFailovers, res.SpillRebuilds)
	}
	hybridNote := ""
	if hybrid != 0 {
		hybridNote = fmt.Sprintf(" resident=%d spilled=%d demoted=%d demoted_bytes=%d",
			res.ResidentPartitions, res.SpilledPartitions, res.DemotedPartitions, res.BytesDemoted)
	}
	planNote := ""
	if explain != 0 && res.Plan != nil {
		planNote = fmt.Sprintf(" plan=%q", res.Plan.Explain())
	}
	return fmt.Sprintf("ok rows=%d keysum=%d elapsed_us=%d queue_wait_us=%d admitted_bytes=%d morsels=%d fanout=%d%s%s%s%s",
		res.NOutput, res.KeySum, res.Elapsed.Microseconds(), res.QueueWait.Microseconds(),
		res.AdmittedBytes, res.MorselsExecuted, res.JoinFanout, cacheNote, recoveryNote, hybridNote, planNote)
}

func (s *server) cmdStats() string {
	sc := s.env.ServiceStats()
	hits, misses, evicts, resident := s.cache.counters()
	unhealthyDirs := 0
	for _, h := range spill.Health(s.opts.spillDir) {
		if !h.Healthy {
			unhealthyDirs++
		}
	}
	return fmt.Sprintf("ok queries_ok=%d queries_err=%d admitted=%d completed=%d failed=%d shed=%d in_flight=%d queued=%d reserved_bytes=%d morsels=%d reclaims=%d build_cache_hits=%d build_cache_misses=%d build_cache_evictions=%d build_cache_resident_bytes=%d panics=%d conn_shed=%d spill_failovers=%d spill_rebuilds=%d spill_dirs_unhealthy=%d",
		s.queriesOK.Load(), s.queriesErr.Load(), sc.Admitted, sc.Completed, sc.Failed,
		sc.Shed(), sc.InFlight, sc.Queued, sc.ReservedBytes, sc.MorselsExecuted, sc.Reclaims,
		hits, misses, evicts, resident,
		s.panics.Load(), s.connShed.Load(),
		s.spillFailovers.Load(), s.spillRebuilds.Load(), unhealthyDirs)
}

// errLine renders a failure response carrying the exit-code taxonomy:
// the stable status word, the numeric code (the exit code an hjquery
// run hitting the same error would return), and the message.
func errLine(code int, err error) string {
	return fmt.Sprintf("err status=%s code=%d msg=%q", cli.StatusName(code), code, err.Error())
}
