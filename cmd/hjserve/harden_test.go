package main

// Hardening proofs for the long-lived server: oversized protocol lines,
// panicking requests, connection caps, idle reaping, and the degraded
// health state — each failure is typed on the wire, scoped to one
// request or connection, and never takes the server down.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/fault"
	"hashjoin/internal/spill"
)

// TestServeOversizedLine: a line over the 64 KiB protocol bound answers
// err status=protocol and the connection keeps serving — including the
// case where the oversized line's tail would itself parse as a command.
func TestServeOversizedLine(t *testing.T) {
	s := startServer(t, serverOptions{})
	c := dial(t, s)

	// The tail " ping" must NOT be executed as a command: exactly one
	// response line for the whole oversized line.
	long := "query pair=" + strings.Repeat("x", maxLineLen) + "\nping\n"
	if _, err := io.WriteString(c.conn, long); err != nil {
		t.Fatalf("send: %v", err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	status, m := kv(t, strings.TrimSpace(line))
	if status != "err" || m["status"] != "protocol" || mustInt(t, m, "code") != 6 {
		t.Fatalf("oversized line -> %q, want err status=protocol code=6", line)
	}

	// The pipelined "ping" after the newline still answers...
	line, err = c.r.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "ok" {
		t.Fatalf("pipelined ping after oversize: %q, %v", line, err)
	}
	// ...and the connection remains fully usable.
	if got := c.roundTrip(t, "ping"); got != "ok" {
		t.Fatalf("ping after oversize: %q", got)
	}
	if status, _ := kv(t, c.roundTrip(t, "pair name=t1 build=500 tuple=40")); status != "ok" {
		t.Fatal("pair after oversize failed")
	}
}

// TestServePanicContained: an injected panic in the request handler
// answers err status=internal, bumps the panics counter, and leaves
// both the connection and the server serving.
func TestServePanicContained(t *testing.T) {
	defer fault.Reset()
	s := startServer(t, serverOptions{})
	c := dial(t, s)
	if got := c.roundTrip(t, "ping"); got != "ok" {
		t.Fatalf("pre-panic ping: %q", got)
	}

	fault.Enable(fault.SiteServeRequest, fault.Fault{Kind: fault.KindPanic, Count: 1})
	status, m := kv(t, c.roundTrip(t, "ping"))
	if status != "err" || m["status"] != "internal" || mustInt(t, m, "code") != 5 {
		t.Fatalf("panicked request -> %v %v, want err status=internal code=5", status, m)
	}

	// Same connection, next request: served normally.
	if got := c.roundTrip(t, "ping"); got != "ok" {
		t.Fatalf("post-panic ping: %q", got)
	}
	status, m = kv(t, c.roundTrip(t, "stats"))
	if status != "ok" || mustInt(t, m, "panics") != 1 {
		t.Fatalf("stats after panic: %v %v, want panics=1", status, m)
	}
	// A second client is unaffected.
	c2 := dial(t, s)
	if got := c2.roundTrip(t, "ping"); got != "ok" {
		t.Fatalf("second client ping: %q", got)
	}
}

// TestServeConnCap: connections beyond -max-conns get one typed
// retryable shed line and a close; freeing a slot readmits.
func TestServeConnCap(t *testing.T) {
	s := startServer(t, serverOptions{maxConns: 1})
	c := dial(t, s)
	if got := c.roundTrip(t, "ping"); got != "ok" {
		t.Fatalf("first conn ping: %q", got)
	}

	over, err := net.Dial("tcp", s.ln.Addr().String())
	if err != nil {
		t.Fatalf("dial over cap: %v", err)
	}
	defer over.Close()
	over.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := io.ReadAll(over) // shed line, then EOF
	if err != nil {
		t.Fatalf("read shed line: %v", err)
	}
	status, m := kv(t, strings.TrimSpace(string(line)))
	if status != "err" || m["status"] != "failure" || mustInt(t, m, "code") != 1 {
		t.Fatalf("over-cap conn -> %q, want err status=failure code=1", line)
	}
	if !strings.Contains(string(line), "capacity") {
		t.Fatalf("shed line does not name the cap: %q", line)
	}

	// The admitted connection was untouched, and its slot is reusable.
	if got := c.roundTrip(t, "ping"); got != "ok" {
		t.Fatalf("admitted conn after shed: %q", got)
	}
	status, m = kv(t, c.roundTrip(t, "stats"))
	if status != "ok" || mustInt(t, m, "conn_shed") != 1 {
		t.Fatalf("stats: %v %v, want conn_shed=1", status, m)
	}
	c.conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		next, err := net.Dial("tcp", s.ln.Addr().String())
		if err != nil {
			t.Fatalf("dial after slot freed: %v", err)
		}
		next.SetReadDeadline(time.Now().Add(time.Second))
		fmt.Fprintln(next, "ping")
		r, _ := readOneLine(next)
		next.Close()
		if r == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed; last response %q", r)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// readOneLine reads one response line from a raw conn.
func readOneLine(conn net.Conn) (string, error) {
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	return strings.TrimSpace(string(buf[:n])), err
}

// TestServeIdleTimeout: an idle connection gets one typed cancelled
// goodbye and a close; the server itself keeps accepting.
func TestServeIdleTimeout(t *testing.T) {
	s := startServer(t, serverOptions{idleTimeout: 100 * time.Millisecond})
	c := dial(t, s)
	if got := c.roundTrip(t, "ping"); got != "ok" {
		t.Fatalf("ping: %q", got)
	}

	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("idle goodbye: %v", err)
	}
	status, m := kv(t, strings.TrimSpace(line))
	if status != "err" || m["status"] != "cancelled" || mustInt(t, m, "code") != 4 {
		t.Fatalf("idle goodbye %q, want err status=cancelled code=4", line)
	}
	if _, err := c.r.ReadString('\n'); err != io.EOF {
		t.Fatalf("connection still open after idle goodbye: %v", err)
	}

	// The reaped connection was one connection's business.
	c2 := dial(t, s)
	if got := c2.roundTrip(t, "ping"); got != "ok" {
		t.Fatalf("fresh conn after idle reap: %q", got)
	}
}

// TestServeHealthzDegraded: an unhealthy spill directory flips /healthz
// to a degraded body naming the directory; once the directory recovers
// and the reviver's probe passes, /healthz returns to "ok".
func TestServeHealthzDegraded(t *testing.T) {
	t.Cleanup(spill.ResetHealth)
	vol := filepath.Join(t.TempDir(), "vol")
	s := startServer(t, serverOptions{
		spillDir:    vol,
		reviveEvery: 20 * time.Millisecond,
	})
	hurl := "http://" + s.hln.Addr().String() + "/healthz"

	body := func() (int, string) {
		resp, err := http.Get(hurl)
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, b := body(); code != http.StatusOK || !strings.HasPrefix(b, "ok") {
		t.Fatalf("healthz before damage: %d %q", code, b)
	}

	// Indict the (nonexistent) volume the way a real query would: a
	// Manager that cannot create its subdir registers the failure.
	if _, err := spill.NewManager(spill.Config{Dir: vol, PageSize: 4096, A: arena.New(1 << 20)}); err == nil {
		t.Fatal("NewManager on a nonexistent volume succeeded")
	} else if !errors.Is(err, spill.ErrSpillUnavailable) {
		t.Fatalf("NewManager error %v, want ErrSpillUnavailable", err)
	}

	code, b := body()
	if code != http.StatusOK || !strings.HasPrefix(b, "degraded") || !strings.Contains(b, vol) {
		t.Fatalf("healthz while degraded: %d %q, want degraded body naming %s", code, b, vol)
	}

	// Recovery: the volume appears; after the probe throttle the
	// reviver's next pass restores "ok" with no query traffic at all.
	if err := os.MkdirAll(vol, 0o755); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, b = body()
		if code == http.StatusOK && strings.HasPrefix(b, "ok") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never recovered: %d %q", code, b)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The stats door reports per-dir health alongside the counters.
	resp, err := http.Get("http://" + s.hln.Addr().String() + "/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	b2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b2), "spill_dirs") {
		t.Fatalf("stats JSON missing spill_dirs: %s", b2)
	}
}
