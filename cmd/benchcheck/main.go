// Command benchcheck validates the repo's machine-readable benchmark
// trajectories — BENCH_native.json, BENCH_pipeline.json,
// BENCH_spill.json, BENCH_serve.json, BENCH_table.json,
// BENCH_hybrid.json, and BENCH_join.json — so CI fails fast when a
// benchmark stops emitting its document or emits one with missing
// keys, non-positive timings, or (for the swept trajectories) an
// empty or malformed sweep. It checks shape and sanity, not
// performance: timing values must be positive, not fast. Two
// exceptions carry semantic gates: the hybrid trajectory, where
// hybrid spill I/O exceeding the spill-everything volume is a
// deterministic policy regression, and the join trajectory, where the
// crossover constants the planner compiles in (internal/plan) must
// match the calibrated document — and the nested-loop strategy must
// actually win every swept point at or below the pinned crossover.
//
// Usage:
//
//	benchcheck [-dir .]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hashjoin/internal/plan"
)

const prog = "benchcheck"

// numKeys lists the keys every trajectory document must carry with a
// positive numeric value; zero or missing is a broken benchmark run.
var numKeys = map[string][]string{
	"BENCH_native.json": {
		"n_build", "n_probe", "tuple_size", "gomaxprocs",
		"baseline_ms", "group_ms", "pipelined_ms",
		"group_speedup", "pipelined_speedup",
	},
	"BENCH_pipeline.json": {
		"n_build", "n_probe", "tuple_size", "gomaxprocs",
		"baseline_ms", "group_ms", "pipelined_ms",
		"group_speedup", "pipelined_speedup",
	},
	"BENCH_spill.json": {
		"n_build", "n_probe", "tuple_size", "skew", "fanout",
		"mem_budget", "page_size", "gomaxprocs",
		"spilled_pairs", "bytes_written", "bytes_read",
	},
	"BENCH_serve.json": {
		"n_build", "n_probe", "tuple_size", "fanout",
		"max_in_flight", "gomaxprocs",
	},
	"BENCH_table.json": {
		"n_build", "n_probe", "tuple_size", "gomaxprocs",
		"serial_build_ms",
		"probe_rebuild_ms", "probe_cached_ms", "cached_speedup",
	},
	"BENCH_hybrid.json": {
		"n_build", "n_probe", "tuple_size", "zipf_keys", "fanout",
		"page_size", "gomaxprocs",
	},
	"BENCH_join.json": {
		"n_probe", "tuple_size", "gomaxprocs",
		"nested_loop_crossover_rows", "measured_nested_loop_crossover_rows",
		"partition_crossover_bytes",
	},
}

func main() {
	dir := flag.String("dir", ".", "directory holding the BENCH_*.json files")
	flag.Parse()

	failed := false
	for _, name := range []string{"BENCH_native.json", "BENCH_pipeline.json", "BENCH_spill.json", "BENCH_serve.json", "BENCH_table.json", "BENCH_hybrid.json", "BENCH_join.json"} {
		if errs := checkFile(filepath.Join(*dir, name), numKeys[name]); len(errs) > 0 {
			failed = true
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "%s: %s: %v\n", prog, name, e)
			}
		} else {
			fmt.Printf("%s: %s ok\n", prog, name)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkFile parses one trajectory document and returns every problem
// found, so a broken file reports all its defects in one CI run.
func checkFile(path string, keys []string) []error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return []error{err}
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return []error{fmt.Errorf("not a JSON object: %v", err)}
	}
	var errs []error
	for _, k := range keys {
		if v, ok := num(doc[k]); !ok {
			errs = append(errs, fmt.Errorf("key %q missing or not a number", k))
		} else if v <= 0 {
			errs = append(errs, fmt.Errorf("key %q must be positive, got %v", k, v))
		}
	}
	if _, ok := doc["prefetch_asm"].(bool); !ok {
		errs = append(errs, fmt.Errorf("key %q missing or not a bool", "prefetch_asm"))
	}
	switch filepath.Base(path) {
	case "BENCH_spill.json":
		errs = append(errs, checkSpillPoints(doc)...)
	case "BENCH_serve.json":
		errs = append(errs, checkServePoints(doc)...)
	case "BENCH_table.json":
		errs = append(errs, checkTablePoints(doc)...)
	case "BENCH_hybrid.json":
		errs = append(errs, checkHybridPoints(doc)...)
	case "BENCH_join.json":
		errs = append(errs, checkJoinPoints(doc)...)
	}
	return errs
}

// checkJoinPoints validates the strategy-crossover calibration. Shape:
// both sweeps non-empty and strictly ascending with positive timings.
// Semantics: the pinned crossover constants must equal what the plan
// package compiles in (a re-calibration must move both together), the
// nested-loop strategy must win every swept point at or below the
// pinned crossover and lose the largest swept point, and a non-zero
// measured partition crossover must appear in the sweep as a point the
// partitioned join won.
func checkJoinPoints(doc map[string]any) []error {
	var errs []error
	crossRows, _ := num(doc["nested_loop_crossover_rows"])
	if int(crossRows) != plan.DefaultNestedLoopCrossover {
		errs = append(errs, fmt.Errorf("nested_loop_crossover_rows %v != plan.DefaultNestedLoopCrossover %d (re-pin the constant from the calibration run)",
			crossRows, plan.DefaultNestedLoopCrossover))
	}
	crossBytes, _ := num(doc["partition_crossover_bytes"])
	if int(crossBytes) != plan.DefaultPartitionCrossoverBytes {
		errs = append(errs, fmt.Errorf("partition_crossover_bytes %v != plan.DefaultPartitionCrossoverBytes %d (re-pin the constant from the calibration run)",
			crossBytes, plan.DefaultPartitionCrossoverBytes))
	}

	points, ok := doc["nested_loop_points"].([]any)
	if !ok || len(points) == 0 {
		errs = append(errs, fmt.Errorf("key %q missing or empty", "nested_loop_points"))
		return errs
	}
	prev := 0.0
	for i, p := range points {
		pt, ok := p.(map[string]any)
		if !ok {
			errs = append(errs, fmt.Errorf("nested_loop_points[%d]: not an object", i))
			continue
		}
		rows, ok := num(pt["build_rows"])
		if !ok || rows <= 0 {
			errs = append(errs, fmt.Errorf("nested_loop_points[%d]: build_rows missing or non-positive", i))
		} else if rows <= prev {
			errs = append(errs, fmt.Errorf("nested_loop_points[%d]: build_rows %v not ascending (prev %v)", i, rows, prev))
		} else {
			prev = rows
		}
		nl, nlOK := num(pt["nested_loop_ms"])
		st, stOK := num(pt["stream_ms"])
		if !nlOK || nl <= 0 {
			errs = append(errs, fmt.Errorf("nested_loop_points[%d]: nested_loop_ms missing or non-positive", i))
		}
		if !stOK || st <= 0 {
			errs = append(errs, fmt.Errorf("nested_loop_points[%d]: stream_ms missing or non-positive", i))
		}
		if nlOK && stOK && rows > 0 && rows <= crossRows && nl > st {
			errs = append(errs, fmt.Errorf("nested_loop_points[%d]: nested loop lost below the pinned crossover (%v rows: %.3f ms vs stream %.3f ms)", i, rows, nl, st))
		}
		if i == len(points)-1 && nlOK && stOK && nl <= st {
			errs = append(errs, fmt.Errorf("nested_loop_points[%d]: nested loop still wins at the sweep ceiling (%v rows) — the sweep no longer brackets the crossover", i, rows))
		}
	}

	ppoints, ok := doc["partition_points"].([]any)
	if !ok || len(ppoints) == 0 {
		errs = append(errs, fmt.Errorf("key %q missing or empty", "partition_points"))
		return errs
	}
	measured, _ := num(doc["measured_partition_crossover_bytes"])
	measuredSeen := measured == 0
	prev = 0.0
	for i, p := range ppoints {
		pt, ok := p.(map[string]any)
		if !ok {
			errs = append(errs, fmt.Errorf("partition_points[%d]: not an object", i))
			continue
		}
		bytes, ok := num(pt["build_bytes"])
		if !ok || bytes <= 0 {
			errs = append(errs, fmt.Errorf("partition_points[%d]: build_bytes missing or non-positive", i))
		} else if bytes <= prev {
			errs = append(errs, fmt.Errorf("partition_points[%d]: build_bytes %v not ascending (prev %v)", i, bytes, prev))
		} else {
			prev = bytes
		}
		st, stOK := num(pt["stream_ms"])
		pm, pmOK := num(pt["partitioned_ms"])
		if !stOK || st <= 0 {
			errs = append(errs, fmt.Errorf("partition_points[%d]: stream_ms missing or non-positive", i))
		}
		if !pmOK || pm <= 0 {
			errs = append(errs, fmt.Errorf("partition_points[%d]: partitioned_ms missing or non-positive", i))
		}
		if f, ok := num(pt["fanout"]); !ok || f < 2 {
			errs = append(errs, fmt.Errorf("partition_points[%d]: fanout missing or < 2", i))
		}
		if bytes == measured && stOK && pmOK && pm < st {
			measuredSeen = true
		}
	}
	if !measuredSeen {
		errs = append(errs, fmt.Errorf("measured_partition_crossover_bytes %v is not a swept point the partitioned join won", measured))
	}
	return errs
}

// checkHybridPoints validates the hybrid-vs-GRACE skew sweep: at least
// one point, strictly ascending Zipf parameters, positive budgets and
// timings, and — the real gate — hybrid spill I/O that never exceeds
// the spill-everything volume at the same point. A hybrid policy that
// writes more than the tier it replaces is a regression even when every
// test passes, and byte volumes are deterministic for the benchmark's
// fixed seeds, so the comparison is safe to enforce in CI.
func checkHybridPoints(doc map[string]any) []error {
	points, ok := doc["points"].([]any)
	if !ok || len(points) == 0 {
		return []error{fmt.Errorf("key %q missing or empty", "points")}
	}
	var errs []error
	prev := 0.0
	for i, p := range points {
		pt, ok := p.(map[string]any)
		if !ok {
			errs = append(errs, fmt.Errorf("points[%d]: not an object", i))
			continue
		}
		z, ok := num(pt["zipf"])
		if !ok || z <= 0 {
			errs = append(errs, fmt.Errorf("points[%d]: zipf missing or non-positive", i))
		} else if z <= prev {
			errs = append(errs, fmt.Errorf("points[%d]: zipf %v not ascending (prev %v)", i, z, prev))
		} else {
			prev = z
		}
		for _, k := range []string{"mem_budget", "spill_io_bytes", "spill_elapsed_ms", "hybrid_elapsed_ms", "resident_pairs", "spilled_pairs"} {
			if v, ok := num(pt[k]); !ok || v <= 0 {
				errs = append(errs, fmt.Errorf("points[%d]: %s missing or non-positive", i, k))
			}
		}
		hio, ok := num(pt["hybrid_io_bytes"])
		if !ok || hio < 0 {
			errs = append(errs, fmt.Errorf("points[%d]: hybrid_io_bytes missing or negative", i))
		} else if sio, ok := num(pt["spill_io_bytes"]); ok && hio > sio {
			errs = append(errs, fmt.Errorf("points[%d]: hybrid_io_bytes %v exceeds spill_io_bytes %v", i, hio, sio))
		}
	}
	return errs
}

// checkTablePoints validates the concurrent-build worker sweep: at
// least one point, strictly ascending worker counts, and positive
// build time and speedup at every count. Speedup must be positive, not
// above one: on a single-core host the concurrent build legitimately
// ties or loses to serial, and benchcheck gates shape, not hardware.
func checkTablePoints(doc map[string]any) []error {
	points, ok := doc["build_points"].([]any)
	if !ok || len(points) == 0 {
		return []error{fmt.Errorf("key %q missing or empty", "build_points")}
	}
	var errs []error
	prev := 0.0
	for i, p := range points {
		pt, ok := p.(map[string]any)
		if !ok {
			errs = append(errs, fmt.Errorf("build_points[%d]: not an object", i))
			continue
		}
		w, ok := num(pt["workers"])
		if !ok || w <= 0 {
			errs = append(errs, fmt.Errorf("build_points[%d]: workers missing or non-positive", i))
		} else if w <= prev {
			errs = append(errs, fmt.Errorf("build_points[%d]: workers %v not ascending (prev %v)", i, w, prev))
		} else {
			prev = w
		}
		for _, k := range []string{"build_ms", "speedup"} {
			if v, ok := num(pt[k]); !ok || v <= 0 {
				errs = append(errs, fmt.Errorf("build_points[%d]: %s missing or non-positive", i, k))
			}
		}
	}
	return errs
}

// checkServePoints validates the concurrency sweep: at least one point,
// strictly ascending concurrency levels, and positive wall clock,
// throughput, and per-query timings at every level.
func checkServePoints(doc map[string]any) []error {
	points, ok := doc["points"].([]any)
	if !ok || len(points) == 0 {
		return []error{fmt.Errorf("key %q missing or empty", "points")}
	}
	var errs []error
	prev := 0.0
	for i, p := range points {
		pt, ok := p.(map[string]any)
		if !ok {
			errs = append(errs, fmt.Errorf("points[%d]: not an object", i))
			continue
		}
		c, ok := num(pt["concurrency"])
		if !ok || c <= 0 {
			errs = append(errs, fmt.Errorf("points[%d]: concurrency missing or non-positive", i))
		} else if c <= prev {
			errs = append(errs, fmt.Errorf("points[%d]: concurrency %v not ascending (prev %v)", i, c, prev))
		} else {
			prev = c
		}
		for _, k := range []string{"wave_ms", "queries_per_second", "query_ms"} {
			if v, ok := num(pt[k]); !ok || v <= 0 {
				errs = append(errs, fmt.Errorf("points[%d]: %s missing or non-positive", i, k))
			}
		}
	}
	return errs
}

// checkSpillPoints validates the spill trajectory's worker sweep: at
// least one point, positive timings, and strictly ascending worker
// counts (the sweep is meaningless if a count repeats or regresses).
func checkSpillPoints(doc map[string]any) []error {
	points, ok := doc["points"].([]any)
	if !ok || len(points) == 0 {
		return []error{fmt.Errorf("key %q missing or empty", "points")}
	}
	var errs []error
	prev := 0.0
	for i, p := range points {
		pt, ok := p.(map[string]any)
		if !ok {
			errs = append(errs, fmt.Errorf("points[%d]: not an object", i))
			continue
		}
		w, ok := num(pt["workers"])
		if !ok || w <= 0 {
			errs = append(errs, fmt.Errorf("points[%d]: workers missing or non-positive", i))
		} else if w <= prev {
			errs = append(errs, fmt.Errorf("points[%d]: workers %v not ascending (prev %v)", i, w, prev))
		} else {
			prev = w
		}
		if ms, ok := num(pt["elapsed_ms"]); !ok || ms <= 0 {
			errs = append(errs, fmt.Errorf("points[%d]: elapsed_ms missing or non-positive", i))
		}
		// Stall times are legitimately zero when overlap hides all I/O;
		// only their presence and sign are checked.
		for _, k := range []string{"write_stall_ms", "read_stall_ms"} {
			if ms, ok := num(pt[k]); !ok || ms < 0 {
				errs = append(errs, fmt.Errorf("points[%d]: %s missing or negative", i, k))
			}
		}
	}
	return errs
}

// num unwraps encoding/json's number representation.
func num(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}
