package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hashjoin/internal/cli"
)

// TestRunFlagValidation pins strict flag handling: every malformed
// invocation exits with the usage code and a diagnostic naming the
// problem, and never renders a partial chart.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"no fig", nil, "exactly one of -fig"},
		{"fig and bench", []string{"-fig", "fig12", "-bench", "BENCH_table.json"}, "exactly one of -fig"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional junk", []string{"-fig", "fig12", "extra"}, "unexpected arguments"},
		{"unknown fig", []string{"-fig", "fig99"}, `unknown experiment "fig99"`},
		{"unknown scale", []string{"-fig", "fig12", "-scale", "huge"}, `unknown scale "huge"`},
		{"zero width", []string{"-fig", "fig12", "-width", "0"}, "out of range"},
		{"negative width", []string{"-fig", "fig12", "-width", "-3"}, "out of range"},
		{"huge width", []string{"-fig", "fig12", "-width", "10000"}, "out of range"},
		{"non-numeric width", []string{"-fig", "fig12", "-width", "wide"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != cli.ExitUsage {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, cli.ExitUsage, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantMsg) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), tc.wantMsg)
			}
			if stdout.Len() != 0 {
				t.Fatalf("partial chart rendered on a usage error: %q", stdout.String())
			}
		})
	}
}

// TestRunRendersChart checks a valid invocation exits 0 and draws bars.
func TestRunRendersChart(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-fig", "fig12", "-scale", "tiny", "-width", "20"}, &stdout, &stderr)
	if code != cli.ExitOK {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "==") || !strings.Contains(out, "#") {
		t.Fatalf("no chart in output:\n%s", out)
	}
}

// TestRunRendersBenchTrajectory checks the -bench mode over a
// well-formed table trajectory: both charts render, labeled with the
// sweep's worker counts and the rebuild/cached pair.
func TestRunRendersBenchTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_table.json")
	doc := `{
		"n_build": 60000, "tuple_size": 40, "serial_build_ms": 4.7,
		"build_points": [
			{"workers": 1, "build_ms": 4.8},
			{"workers": 2, "build_ms": 2.6},
			{"workers": 4, "build_ms": 1.5}
		],
		"probe_rebuild_ms": 23.5, "probe_cached_ms": 16.6
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", path, "-width", "20"}, &stdout, &stderr)
	if code != cli.ExitOK {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"table-build", "table-probe", "serial", "4 workers", "rebuild", "cached"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart lacks %q:\n%s", want, out)
		}
	}
}

// TestRunRendersHybridTrajectory checks the -bench mode detects the
// hybrid skew sweep by shape and renders both comparison charts with
// Zipf-labeled rows.
func TestRunRendersHybridTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_hybrid.json")
	doc := `{
		"n_build": 16384, "tuple_size": 64, "zipf_keys": 1024,
		"points": [
			{"zipf": 0.5, "spill_io_bytes": 57344, "hybrid_io_bytes": 16384,
			 "spill_elapsed_ms": 4.1, "hybrid_elapsed_ms": 3.2},
			{"zipf": 1.0, "spill_io_bytes": 335872, "hybrid_io_bytes": 106496,
			 "spill_elapsed_ms": 6.8, "hybrid_elapsed_ms": 4.9}
		]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", path, "-width", "20"}, &stdout, &stderr)
	if code != cli.ExitOK {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"hybrid-io", "hybrid-ms", "zipf 0.5", "zipf 1.0", "spill_io_kb", "hybrid_io_kb"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart lacks %q:\n%s", want, out)
		}
	}
}

// TestRunBenchErrors pins the failure paths: a missing file and a JSON
// document of the wrong shape both exit with the runtime-failure code
// and a diagnostic, never a partial chart.
func TestRunBenchErrors(t *testing.T) {
	wrongShape := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := os.WriteFile(wrongShape, []byte(`{"points": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	emptyHybrid := filepath.Join(t.TempDir(), "BENCH_hybrid.json")
	if err := os.WriteFile(emptyHybrid, []byte(`{"zipf_keys": 1024, "points": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name, path, wantMsg string
	}{
		{"missing file", filepath.Join(t.TempDir(), "nope.json"), "no such file"},
		{"wrong shape", wrongShape, "not a table trajectory"},
		{"empty hybrid sweep", emptyHybrid, "not a hybrid trajectory"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run([]string{"-bench", tc.path}, &stdout, &stderr)
			if code != cli.ExitFailure {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, cli.ExitFailure, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantMsg) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), tc.wantMsg)
			}
			if stdout.Len() != 0 {
				t.Fatalf("partial chart rendered on an error: %q", stdout.String())
			}
		})
	}
}
