package main

import (
	"bytes"
	"strings"
	"testing"

	"hashjoin/internal/cli"
)

// TestRunFlagValidation pins strict flag handling: every malformed
// invocation exits with the usage code and a diagnostic naming the
// problem, and never renders a partial chart.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"no fig", nil, "-fig is required"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional junk", []string{"-fig", "fig12", "extra"}, "unexpected arguments"},
		{"unknown fig", []string{"-fig", "fig99"}, `unknown experiment "fig99"`},
		{"unknown scale", []string{"-fig", "fig12", "-scale", "huge"}, `unknown scale "huge"`},
		{"zero width", []string{"-fig", "fig12", "-width", "0"}, "out of range"},
		{"negative width", []string{"-fig", "fig12", "-width", "-3"}, "out of range"},
		{"huge width", []string{"-fig", "fig12", "-width", "10000"}, "out of range"},
		{"non-numeric width", []string{"-fig", "fig12", "-width", "wide"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != cli.ExitUsage {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, cli.ExitUsage, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantMsg) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), tc.wantMsg)
			}
			if stdout.Len() != 0 {
				t.Fatalf("partial chart rendered on a usage error: %q", stdout.String())
			}
		})
	}
}

// TestRunRendersChart checks a valid invocation exits 0 and draws bars.
func TestRunRendersChart(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-fig", "fig12", "-scale", "tiny", "-width", "20"}, &stdout, &stderr)
	if code != cli.ExitOK {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "==") || !strings.Contains(out, "#") {
		t.Fatalf("no chart in output:\n%s", out)
	}
}
