// Command hjplot renders an experiment's first series as ASCII bar
// charts, a quick visual check of the curve shapes the paper reports
// (concave tuning curves, crossovers, flattening elapsed times).
//
// Usage:
//
//	hjplot -fig fig12 [-scale tiny]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hashjoin/internal/cli"
	"hashjoin/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its edges injected, so the flag-validation table
// test can drive it. Every flag is validated strictly: an unknown
// experiment, scale, or a nonsensical width fails with the usage exit
// code and a message naming the accepted values — it never falls
// through to a default or a render panic.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hjplot", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig   = fs.String("fig", "", "experiment id (see hjbench -list)")
		scale = fs.String("scale", "tiny", "scale: tiny, small, or full")
		width = fs.Int("width", 60, "max bar width in characters (1..400)")
	)
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "hjplot: unexpected arguments: %v\n", fs.Args())
		return cli.ExitUsage
	}
	if *fig == "" {
		fmt.Fprintf(stderr, "hjplot: -fig is required (one of %s)\n", strings.Join(exp.IDs(), ", "))
		return cli.ExitUsage
	}
	if *width < 1 || *width > 400 {
		fmt.Fprintf(stderr, "hjplot: -width %d out of range [1, 400]\n", *width)
		return cli.ExitUsage
	}
	sc, ok := exp.ByName(*scale)
	if !ok {
		fmt.Fprintf(stderr, "hjplot: unknown scale %q (accepted: tiny, small, full)\n", *scale)
		return cli.ExitUsage
	}
	e, ok := exp.Lookup(strings.ToLower(*fig))
	if !ok {
		fmt.Fprintf(stderr, "hjplot: unknown experiment %q (accepted: %s)\n", *fig, strings.Join(exp.IDs(), ", "))
		return cli.ExitUsage
	}
	for _, t := range e.Run(sc) {
		plot(stdout, t, *width)
	}
	return cli.ExitOK
}

func plot(w io.Writer, t *exp.Table, width int) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	for col, name := range t.Columns {
		maxV := 0.0
		for _, r := range t.Rows {
			if r.Values[col] > maxV {
				maxV = r.Values[col]
			}
		}
		if maxV <= 0 {
			continue
		}
		fmt.Fprintf(w, "-- %s --\n", name)
		for _, r := range t.Rows {
			n := int(r.Values[col] / maxV * float64(width))
			fmt.Fprintf(w, "%10s | %-*s %8.2f\n", r.Label, width, strings.Repeat("#", n), r.Values[col])
		}
	}
	fmt.Fprintln(w)
}
