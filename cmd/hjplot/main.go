// Command hjplot renders an experiment's first series as ASCII bar
// charts, a quick visual check of the curve shapes the paper reports
// (concave tuning curves, crossovers, flattening elapsed times).
//
// Usage:
//
//	hjplot -fig fig12 [-scale tiny]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hashjoin/internal/exp"
)

func main() {
	var (
		fig   = flag.String("fig", "", "experiment id (see hjbench -list)")
		scale = flag.String("scale", "tiny", "scale: tiny, small, or full")
		width = flag.Int("width", 60, "max bar width in characters")
	)
	flag.Parse()
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	sc, ok := exp.ByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "hjplot: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	e, ok := exp.Lookup(strings.ToLower(*fig))
	if !ok {
		fmt.Fprintf(os.Stderr, "hjplot: unknown experiment %q\n", *fig)
		os.Exit(2)
	}
	for _, t := range e.Run(sc) {
		plot(t, *width)
	}
}

func plot(t *exp.Table, width int) {
	fmt.Printf("== %s: %s ==\n", t.ID, t.Title)
	for col, name := range t.Columns {
		maxV := 0.0
		for _, r := range t.Rows {
			if r.Values[col] > maxV {
				maxV = r.Values[col]
			}
		}
		if maxV <= 0 {
			continue
		}
		fmt.Printf("-- %s --\n", name)
		for _, r := range t.Rows {
			n := int(r.Values[col] / maxV * float64(width))
			fmt.Printf("%10s | %-*s %8.2f\n", r.Label, width, strings.Repeat("#", n), r.Values[col])
		}
	}
	fmt.Println()
}
