// Command hjplot renders an experiment's first series as ASCII bar
// charts, a quick visual check of the curve shapes the paper reports
// (concave tuning curves, crossovers, flattening elapsed times). It
// also plots measured trajectories: BENCH_table.json (the
// concurrent-build worker sweep against the serial baseline, and the
// rebuild-per-query join against the cached-BuildSide one) and
// BENCH_hybrid.json (spill I/O volume and wall clock of the adaptive
// hybrid policy against the spill-everything tier across Zipf skew
// levels) and BENCH_join.json (the strategy-crossover calibration the
// cost-based planner's pinned defaults come from). The trajectory kind
// is detected from the document shape.
//
// Usage:
//
//	hjplot -fig fig12 [-scale tiny]
//	hjplot -bench BENCH_table.json
//	hjplot -bench BENCH_hybrid.json
//	hjplot -bench BENCH_join.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hashjoin/internal/cli"
	"hashjoin/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its edges injected, so the flag-validation table
// test can drive it. Every flag is validated strictly: an unknown
// experiment, scale, or a nonsensical width fails with the usage exit
// code and a message naming the accepted values — it never falls
// through to a default or a render panic.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hjplot", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig   = fs.String("fig", "", "experiment id (see hjbench -list)")
		bench = fs.String("bench", "", "plot a measured trajectory instead (path to BENCH_table.json)")
		scale = fs.String("scale", "tiny", "scale: tiny, small, or full")
		width = fs.Int("width", 60, "max bar width in characters (1..400)")
	)
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "hjplot: unexpected arguments: %v\n", fs.Args())
		return cli.ExitUsage
	}
	if (*fig == "") == (*bench == "") {
		fmt.Fprintf(stderr, "hjplot: exactly one of -fig (one of %s) or -bench is required\n", strings.Join(exp.IDs(), ", "))
		return cli.ExitUsage
	}
	if *width < 1 || *width > 400 {
		fmt.Fprintf(stderr, "hjplot: -width %d out of range [1, 400]\n", *width)
		return cli.ExitUsage
	}
	if *bench != "" {
		tables, err := benchCharts(*bench)
		if err != nil {
			fmt.Fprintf(stderr, "hjplot: %v\n", err)
			return cli.ExitFailure
		}
		for _, t := range tables {
			plot(stdout, t, *width)
		}
		return cli.ExitOK
	}
	sc, ok := exp.ByName(*scale)
	if !ok {
		fmt.Fprintf(stderr, "hjplot: unknown scale %q (accepted: tiny, small, full)\n", *scale)
		return cli.ExitUsage
	}
	e, ok := exp.Lookup(strings.ToLower(*fig))
	if !ok {
		fmt.Fprintf(stderr, "hjplot: unknown experiment %q (accepted: %s)\n", *fig, strings.Join(exp.IDs(), ", "))
		return cli.ExitUsage
	}
	for _, t := range e.Run(sc) {
		plot(stdout, t, *width)
	}
	return cli.ExitOK
}

// benchCharts loads a measured trajectory and dispatches on its shape:
// a document carrying zipf_keys is the hybrid skew sweep, one carrying
// nested_loop_crossover_rows is the strategy-crossover calibration,
// anything else is parsed as a table trajectory.
func benchCharts(path string) ([]*exp.Table, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var kind struct {
		ZipfKeys    int `json:"zipf_keys"`
		NLCrossRows int `json:"nested_loop_crossover_rows"`
	}
	if err := json.Unmarshal(raw, &kind); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if kind.ZipfKeys > 0 {
		return hybridCharts(path, raw)
	}
	if kind.NLCrossRows > 0 {
		return joinCharts(path, raw)
	}
	return benchTables(path, raw)
}

// joinCharts shapes a BENCH_join.json calibration into two charts: the
// nested-loop-vs-stream sweep over build-side row counts and the
// stream-vs-partitioned sweep over build footprints.
func joinCharts(path string, raw []byte) ([]*exp.Table, error) {
	var doc struct {
		NProbe      int `json:"n_probe"`
		TupleSize   int `json:"tuple_size"`
		NLCrossRows int `json:"nested_loop_crossover_rows"`
		NLPoints    []struct {
			BuildRows    int     `json:"build_rows"`
			NestedLoopMs float64 `json:"nested_loop_ms"`
			StreamMs     float64 `json:"stream_ms"`
		} `json:"nested_loop_points"`
		PCrossBytes int `json:"partition_crossover_bytes"`
		PPoints     []struct {
			BuildBytes    float64 `json:"build_bytes"`
			StreamMs      float64 `json:"stream_ms"`
			PartitionedMs float64 `json:"partitioned_ms"`
		} `json:"partition_points"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(doc.NLPoints) == 0 || len(doc.PPoints) == 0 {
		return nil, fmt.Errorf("%s: not a join calibration (empty nested_loop_points / partition_points)", path)
	}
	nl := &exp.Table{
		ID:       "join-nl",
		Title:    fmt.Sprintf("nested loop vs stream hash, %d probe rows x %dB (pinned crossover %d rows)", doc.NProbe, doc.TupleSize, doc.NLCrossRows),
		RowLabel: "build rows",
		Columns:  []string{"nested_loop_ms", "stream_ms"},
	}
	for _, p := range doc.NLPoints {
		nl.AddRow(fmt.Sprintf("%d rows", p.BuildRows), p.NestedLoopMs, p.StreamMs)
	}
	part := &exp.Table{
		ID:       "join-partition",
		Title:    fmt.Sprintf("stream vs partitioned hash by build footprint (pinned crossover %d KiB)", doc.PCrossBytes/1024),
		RowLabel: "build KiB",
		Columns:  []string{"stream_ms", "partitioned_ms"},
	}
	for _, p := range doc.PPoints {
		part.AddRow(fmt.Sprintf("%.0f KiB", p.BuildBytes/1024), p.StreamMs, p.PartitionedMs)
	}
	return []*exp.Table{nl, part}, nil
}

// hybridCharts shapes a BENCH_hybrid.json trajectory into two charts:
// spill I/O volume and wall clock, each comparing the spill-everything
// tier against the hybrid policy at every Zipf skew level.
func hybridCharts(path string, raw []byte) ([]*exp.Table, error) {
	var doc struct {
		NBuild    int `json:"n_build"`
		TupleSize int `json:"tuple_size"`
		Points    []struct {
			Zipf            float64 `json:"zipf"`
			SpillIOBytes    float64 `json:"spill_io_bytes"`
			HybridIOBytes   float64 `json:"hybrid_io_bytes"`
			SpillElapsedMs  float64 `json:"spill_elapsed_ms"`
			HybridElapsedMs float64 `json:"hybrid_elapsed_ms"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(doc.Points) == 0 {
		return nil, fmt.Errorf("%s: not a hybrid trajectory (empty points)", path)
	}
	vol := &exp.Table{
		ID:       "hybrid-io",
		Title:    fmt.Sprintf("spill I/O, spill-everything vs hybrid, %d tuples x %dB", doc.NBuild, doc.TupleSize),
		RowLabel: "zipf s",
		Columns:  []string{"spill_io_kb", "hybrid_io_kb"},
	}
	clock := &exp.Table{
		ID:       "hybrid-ms",
		Title:    "join wall clock, spill-everything vs hybrid",
		RowLabel: "zipf s",
		Columns:  []string{"spill_ms", "hybrid_ms"},
	}
	for _, p := range doc.Points {
		label := fmt.Sprintf("zipf %.1f", p.Zipf)
		vol.AddRow(label, p.SpillIOBytes/1024, p.HybridIOBytes/1024)
		clock.AddRow(label, p.SpillElapsedMs, p.HybridElapsedMs)
	}
	return []*exp.Table{vol, clock}, nil
}

// benchTables shapes a BENCH_table.json trajectory into plot's table
// form: one chart for the build-worker sweep (serial baseline first)
// and one for rebuild-vs-cached probe time.
func benchTables(path string, raw []byte) ([]*exp.Table, error) {
	var doc struct {
		NBuild      int     `json:"n_build"`
		TupleSize   int     `json:"tuple_size"`
		SerialMs    float64 `json:"serial_build_ms"`
		BuildPoints []struct {
			Workers int     `json:"workers"`
			BuildMs float64 `json:"build_ms"`
		} `json:"build_points"`
		ProbeRebuildMs float64 `json:"probe_rebuild_ms"`
		ProbeCachedMs  float64 `json:"probe_cached_ms"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(doc.BuildPoints) == 0 || doc.SerialMs <= 0 || doc.ProbeCachedMs <= 0 {
		return nil, fmt.Errorf("%s: not a table trajectory (missing build_points / serial_build_ms / probe_cached_ms)", path)
	}
	build := &exp.Table{
		ID:       "table-build",
		Title:    fmt.Sprintf("row-table build, %d tuples x %dB", doc.NBuild, doc.TupleSize),
		RowLabel: "build path",
		Columns:  []string{"build_ms"},
	}
	build.AddRow("serial", doc.SerialMs)
	for _, p := range doc.BuildPoints {
		build.AddRow(fmt.Sprintf("%d workers", p.Workers), p.BuildMs)
	}
	probe := &exp.Table{
		ID:       "table-probe",
		Title:    "streaming query: rebuild vs cached build side",
		RowLabel: "build source",
		Columns:  []string{"query_ms"},
	}
	probe.AddRow("rebuild", doc.ProbeRebuildMs)
	probe.AddRow("cached", doc.ProbeCachedMs)
	return []*exp.Table{build, probe}, nil
}

func plot(w io.Writer, t *exp.Table, width int) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	for col, name := range t.Columns {
		maxV := 0.0
		for _, r := range t.Rows {
			if r.Values[col] > maxV {
				maxV = r.Values[col]
			}
		}
		if maxV <= 0 {
			continue
		}
		fmt.Fprintf(w, "-- %s --\n", name)
		for _, r := range t.Rows {
			n := int(r.Values[col] / maxV * float64(width))
			fmt.Fprintf(w, "%10s | %-*s %8.2f\n", r.Label, width, strings.Repeat("#", n), r.Values[col])
		}
	}
	fmt.Fprintln(w)
}
