// Command hjquery generates a synthetic workload, plans a GRACE join
// from catalog statistics, executes it, and reports the result — the
// full paper pipeline in one invocation. Two execution engines are
// available: the cycle-level simulator (default), which reports a
// simulated cycle breakdown, and the native engine, which runs the same
// join schemes directly on the host hardware and reports wall-clock
// times.
//
// Usage:
//
//	hjquery -build 100000 -tuple 100 -matches 2 -mem 6553600 \
//	        -scheme group -catalog out.json
//	hjquery -engine native -build 500000 -scheme pipelined -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hashjoin/internal/arena"
	"hashjoin/internal/catalog"
	"hashjoin/internal/core"
	"hashjoin/internal/memsim"
	"hashjoin/internal/native"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

func main() {
	var (
		engine    = flag.String("engine", "sim", "execution engine: sim or native")
		nBuild    = flag.Int("build", 50000, "build relation tuple count")
		tupleSize = flag.Int("tuple", 100, "tuple size in bytes")
		matches   = flag.Int("matches", 2, "probe tuples per build tuple")
		pct       = flag.Int("pct", 100, "percent of build tuples with matches")
		mem       = flag.Int("mem", 6400<<10, "join memory budget in bytes")
		schemeArg = flag.String("scheme", "plan", "baseline, simple, group, pipelined, or plan (use planner)")
		hierarchy = flag.String("hier", "small", "memory hierarchy: small or es40 (sim engine)")
		workers   = flag.Int("workers", 0, "native engine: morsel workers (0 = all CPUs)")
		fanout    = flag.Int("fanout", 0, "native engine: partition fan-out (0 = derive from -mem)")
		catPath   = flag.String("catalog", "", "write the catalog description file here")
		seed      = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	// Validate enumerated flags up front: an unknown value must fail
	// loudly with the accepted list, never fall through to a default.
	var cfg memsim.Config
	switch *hierarchy {
	case "small":
		cfg = memsim.SmallConfig()
	case "es40":
		cfg = memsim.ES40Config()
	default:
		fatalf("unknown hierarchy %q (accepted: small, es40)", *hierarchy)
	}
	switch *engine {
	case "sim", "native":
	default:
		fatalf("unknown engine %q (accepted: sim, native)", *engine)
	}
	switch *schemeArg {
	case "plan", "baseline", "simple", "group", "pipelined":
	default:
		fatalf("unknown scheme %q (accepted: plan, baseline, simple, group, pipelined)", *schemeArg)
	}

	spec := workload.Spec{
		NBuild:          *nBuild,
		TupleSize:       *tupleSize,
		MatchesPerBuild: *matches,
		PctMatched:      *pct,
		Seed:            *seed,
	}
	a := arena.New(workload.ArenaBytesFor(spec) * 2)
	pair := workload.Generate(a, spec)

	desc := catalog.Describe("build", pair.Build)
	cat := catalog.New()
	cat.Put(desc)
	cat.Put(catalog.Describe("probe", pair.Probe))
	if *catPath != "" {
		f, err := os.Create(*catPath)
		if err != nil {
			die("%v", err)
		}
		if err := cat.Save(f); err != nil {
			die("%v", err)
		}
		f.Close()
		fmt.Printf("catalog written to %s\n", *catPath)
	}

	if *engine == "native" {
		runNative(pair, *schemeArg, *mem, *fanout, *workers)
		return
	}

	plan := catalog.PlanGrace(desc, *mem, cfg)
	gcfg := core.GraceConfig{
		MemBudget:  *mem,
		PartScheme: plan.PartScheme,
		JoinScheme: plan.JoinScheme,
		PartParams: plan.Params,
		JoinParams: plan.Params,
	}
	switch *schemeArg {
	case "plan":
		// keep the planner's choice
	case "baseline":
		gcfg.PartScheme, gcfg.JoinScheme = core.SchemeBaseline, core.SchemeBaseline
	case "simple":
		gcfg.JoinScheme = core.SchemeSimple
	case "group":
		gcfg.JoinScheme = core.SchemeGroup
	case "pipelined":
		gcfg.JoinScheme = core.SchemePipelined
	}

	fmt.Printf("plan: %d partitions, table %d buckets, partition=%v join=%v G=%d D=%d\n",
		plan.NPartitions, plan.TableSize, gcfg.PartScheme, gcfg.JoinScheme,
		gcfg.JoinParams.G, gcfg.JoinParams.D)

	m := vmem.New(a, memsim.NewSim(cfg))
	res := core.Grace(m, pair.Build, pair.Probe, gcfg)

	if res.NOutput != pair.ExpectedMatches {
		die("result mismatch: %d vs %d expected", res.NOutput, pair.ExpectedMatches)
	}
	fmt.Printf("result: %d output tuples (validated)\n", res.NOutput)
	printPhase("partition", res.PartBuildStats.Add(res.PartProbeStats))
	printPhase("join", res.JoinStats)
	fmt.Printf("total: %.2f Mcycles\n", float64(res.TotalCycles())/1e6)
}

// runNative executes the workload on the native engine and reports the
// wall-clock breakdown.
func runNative(pair *workload.Pair, schemeArg string, mem, fanout, workers int) {
	// The catalog planner targets the simulator's cost model; on the
	// native engine "plan" and "simple" resolve to the schemes they
	// would select there (group; baseline).
	var scheme native.Scheme
	switch schemeArg {
	case "plan", "group":
		scheme = native.Group
	case "baseline", "simple":
		scheme = native.Baseline
	case "pipelined":
		scheme = native.Pipelined
	}
	cfg := native.Config{Scheme: scheme, MemBudget: mem, Fanout: fanout, Workers: workers}
	r := native.Join(pair.Build, pair.Probe, cfg)
	if r.NOutput != pair.ExpectedMatches || r.KeySum != pair.KeySum {
		die("native result mismatch: (%d, %d) vs (%d, %d) expected",
			r.NOutput, r.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
	fmt.Printf("native: scheme %v, %d partitions, %d workers, prefetch asm %v\n",
		scheme, r.NPartitions, r.Workers, native.HavePrefetch)
	fmt.Printf("result: %d output tuples (validated)\n", r.NOutput)
	fmt.Printf("%-10s %10.2f ms\n", "partition", ms(r.PartitionTime))
	fmt.Printf("%-10s %10.2f ms\n", "join", ms(r.JoinTime))
	rate := float64(pair.Probe.NTuples) / r.Elapsed.Seconds() / 1e6
	fmt.Printf("total: %.2f ms  (%.1f Mprobe tuples/s)\n", ms(r.Elapsed), rate)
}

func ms(d interface{ Seconds() float64 }) float64 { return d.Seconds() * 1e3 }

// fatalf reports a usage error (bad flag value): exit code 2.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hjquery: %s\n", strings.TrimSuffix(fmt.Sprintf(format, args...), "\n"))
	os.Exit(2)
}

// die reports a runtime failure: exit code 1.
func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hjquery: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

func printPhase(name string, s memsim.Stats) {
	total := float64(s.Total())
	fmt.Printf("%-10s %10.2f Mcycles  busy %4.0f%%  dcache %4.0f%%  dtlb %4.0f%%  other %4.0f%%\n",
		name, total/1e6,
		100*float64(s.Busy)/total, 100*float64(s.DCacheStall)/total,
		100*float64(s.TLBStall)/total, 100*float64(s.OtherStall)/total)
}
