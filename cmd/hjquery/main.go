// Command hjquery generates a synthetic workload, plans a GRACE join
// from catalog statistics, executes it under simulation, and reports the
// result with its cycle breakdown — the full paper pipeline in one
// invocation.
//
// Usage:
//
//	hjquery -build 100000 -tuple 100 -matches 2 -mem 6553600 \
//	        -scheme group -catalog out.json
package main

import (
	"flag"
	"fmt"
	"os"

	"hashjoin/internal/arena"
	"hashjoin/internal/catalog"
	"hashjoin/internal/core"
	"hashjoin/internal/memsim"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

func main() {
	var (
		nBuild    = flag.Int("build", 50000, "build relation tuple count")
		tupleSize = flag.Int("tuple", 100, "tuple size in bytes")
		matches   = flag.Int("matches", 2, "probe tuples per build tuple")
		pct       = flag.Int("pct", 100, "percent of build tuples with matches")
		mem       = flag.Int("mem", 6400<<10, "join memory budget in bytes")
		schemeArg = flag.String("scheme", "plan", "baseline, simple, group, pipelined, or plan (use planner)")
		hierarchy = flag.String("hier", "small", "memory hierarchy: small or es40")
		catPath   = flag.String("catalog", "", "write the catalog description file here")
		seed      = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	cfg := memsim.SmallConfig()
	if *hierarchy == "es40" {
		cfg = memsim.ES40Config()
	}

	spec := workload.Spec{
		NBuild:          *nBuild,
		TupleSize:       *tupleSize,
		MatchesPerBuild: *matches,
		PctMatched:      *pct,
		Seed:            *seed,
	}
	a := arena.New(workload.ArenaBytesFor(spec) * 2)
	pair := workload.Generate(a, spec)

	desc := catalog.Describe("build", pair.Build)
	cat := catalog.New()
	cat.Put(desc)
	cat.Put(catalog.Describe("probe", pair.Probe))
	if *catPath != "" {
		f, err := os.Create(*catPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hjquery:", err)
			os.Exit(1)
		}
		if err := cat.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, "hjquery:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("catalog written to %s\n", *catPath)
	}

	plan := catalog.PlanGrace(desc, *mem, cfg)
	gcfg := core.GraceConfig{
		MemBudget:  *mem,
		PartScheme: plan.PartScheme,
		JoinScheme: plan.JoinScheme,
		PartParams: plan.Params,
		JoinParams: plan.Params,
	}
	switch *schemeArg {
	case "plan":
		// keep the planner's choice
	case "baseline":
		gcfg.PartScheme, gcfg.JoinScheme = core.SchemeBaseline, core.SchemeBaseline
	case "simple":
		gcfg.JoinScheme = core.SchemeSimple
	case "group":
		gcfg.JoinScheme = core.SchemeGroup
	case "pipelined":
		gcfg.JoinScheme = core.SchemePipelined
	default:
		fmt.Fprintf(os.Stderr, "hjquery: unknown scheme %q\n", *schemeArg)
		os.Exit(2)
	}

	fmt.Printf("plan: %d partitions, table %d buckets, partition=%v join=%v G=%d D=%d\n",
		plan.NPartitions, plan.TableSize, gcfg.PartScheme, gcfg.JoinScheme,
		gcfg.JoinParams.G, gcfg.JoinParams.D)

	m := vmem.New(a, memsim.NewSim(cfg))
	res := core.Grace(m, pair.Build, pair.Probe, gcfg)

	if res.NOutput != pair.ExpectedMatches {
		fmt.Fprintf(os.Stderr, "hjquery: result mismatch: %d vs %d expected\n", res.NOutput, pair.ExpectedMatches)
		os.Exit(1)
	}
	fmt.Printf("result: %d output tuples (validated)\n", res.NOutput)
	printPhase("partition", res.PartBuildStats.Add(res.PartProbeStats))
	printPhase("join", res.JoinStats)
	fmt.Printf("total: %.2f Mcycles\n", float64(res.TotalCycles())/1e6)
}

func printPhase(name string, s memsim.Stats) {
	total := float64(s.Total())
	fmt.Printf("%-10s %10.2f Mcycles  busy %4.0f%%  dcache %4.0f%%  dtlb %4.0f%%  other %4.0f%%\n",
		name, total/1e6,
		100*float64(s.Busy)/total, 100*float64(s.DCacheStall)/total,
		100*float64(s.TLBStall)/total, 100*float64(s.OtherStall)/total)
}
