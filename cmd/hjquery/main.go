// Command hjquery generates a synthetic workload and runs the paper's
// full query pipeline — Scan -> HashJoin -> HashAggregate — through the
// batch-oriented operator engine. The -engine flag selects the backend
// for the SAME logical plan: the cycle-level simulator (default), which
// reports a simulated cycle breakdown, or the native engine, which runs
// the pipeline on the host hardware — prefetched join feeding prefetched
// aggregation — and reports wall-clock time. Both engines print
// identical result and group lines for the same workload.
//
// Usage:
//
//	hjquery -build 100000 -tuple 100 -matches 2 -mem 6553600 \
//	        -scheme plan -catalog out.json
//	hjquery -engine native -build 500000 -scheme pipelined -fanout 64
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"hashjoin/internal/catalog"
	"hashjoin/internal/cli"
	"hashjoin/internal/core"
	"hashjoin/internal/engine"
	"hashjoin/internal/memsim"
	"hashjoin/internal/native"
	"hashjoin/internal/plan"
	"hashjoin/internal/workload"
)

const prog = "hjquery"

func main() {
	var (
		engineArg = flag.String("engine", "sim", "execution engine: sim or native")
		nBuild    = flag.Int("build", 50000, "build relation tuple count")
		tupleSize = flag.Int("tuple", 100, "tuple size in bytes")
		matches   = flag.Int("matches", 2, "probe tuples per build tuple")
		pct       = flag.Int("pct", 100, "percent of build tuples with matches")
		skew      = flag.Int("skew", 0, "repeat each build key this many times (0/1 = unique keys); high skew defeats partitioning and exercises the spill tier")
		mem       = flag.Int("mem", 6400<<10, "join memory budget in bytes (planner input)")
		schemeArg = flag.String("scheme", "plan", "baseline, simple, group, pipelined, or plan (use planner)")
		hierArg   = flag.String("hier", "small", "memory hierarchy: small or es40 (sim engine)")
		workers   = flag.Int("workers", 0, "native engine: morsel workers (0 = all CPUs)")
		fanout    = flag.Int("fanout", 1, "native engine: partition fan-out (1 = stream through one table)")
		memBudget = flag.Int("mem-budget", 0, "native engine: resident build-side budget in bytes (0 = unbudgeted); a streaming join over budget degrades to partitioned, oversized pairs re-partition recursively, and irreducible pairs spill to disk")
		spillDir  = flag.String("spill-dir", "", "native engine: parent directory for the out-of-core spill area (default: OS temp dir)")
		spillWork = flag.Int("spill-workers", 0, "native engine: write-behind workers for the spill tier (0 = default)")
		noSpill   = flag.Bool("no-spill", false, "native engine: disable the spill tier; an irreducible over-budget pair fails instead")
		hybrid    = flag.Bool("hybrid", false, "native engine: adaptive hybrid hash join — keep the partition pairs that fit -mem-budget resident and spill only the overflow")
		joinType  = flag.String("join-type", "inner", "join semantics: inner, left-outer, right-outer, semi, or anti")
		strat     = flag.String("strategy", "auto", "join strategy: auto (cost-based planner), nested-loop, stream, or partitioned")
		explain   = flag.Bool("explain", false, "print the planner's strategy decision and its inputs")
		matchRate = flag.Float64("match-rate", 0, "fraction of probe tuples with a build match in (0, 1]; overrides -matches/-pct workload shaping and feeds the planner")
		aggOff    = flag.Int("agg", 0, "aggregate value byte offset within the join output row (0 = default 4)")
		zipfS     = flag.Float64("zipf", 0, "Zipf skew parameter s for build keys (0 = uniform keys); probe keys stay uniform over the same universe")
		zipfKeys  = flag.Int("zipf-keys", 0, "distinct-key universe for -zipf (0 = default 256)")
		catPath   = flag.String("catalog", "", "write the catalog description file here")
		seed      = flag.Int64("seed", 1, "workload seed")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit); a timed-out run exits with code 4")
	)
	flag.Parse()

	// Validate enumerated flags up front: an unknown value must fail
	// loudly with the accepted list, never fall through to a default.
	backend, err := cli.ParseEngine(*engineArg)
	if err != nil {
		cli.Fatalf(prog, "%v", err)
	}
	hier, err := cli.ParseHierarchy(*hierArg)
	if err != nil {
		cli.Fatalf(prog, "%v", err)
	}
	scheme, usePlan, err := cli.ParsePlanScheme(*schemeArg)
	if err != nil {
		cli.Fatalf(prog, "%v", err)
	}
	jt, err := plan.ParseJoinType(*joinType)
	if err != nil {
		cli.Fatalf(prog, "%v", err)
	}
	strategy, err := plan.ParseStrategy(*strat)
	if err != nil {
		cli.Fatalf(prog, "%v", err)
	}
	if *matchRate < 0 || *matchRate > 1 {
		cli.Fatalf(prog, "-match-rate %v outside (0, 1]", *matchRate)
	}

	p := &cli.Pipeline{
		Engine: backend,
		Spec: workload.Spec{
			NBuild:          *nBuild,
			TupleSize:       *tupleSize,
			MatchesPerBuild: *matches,
			PctMatched:      *pct,
			Skew:            *skew,
			ZipfS:           *zipfS,
			ZipfKeys:        *zipfKeys,
			MatchRate:       *matchRate,
			Seed:            *seed,
		},
		Hier:         hier,
		Fanout:       cli.NormalizeFanout(*fanout),
		Workers:      *workers,
		MemBudget:    *memBudget,
		SpillDir:     *spillDir,
		SpillWorkers: *spillWork,
		NoSpill:      *noSpill,
		Hybrid:       *hybrid,
		JoinType:     jt,
		Strategy:     strategy,
		Explain:      *explain,
		AggValueOff:  *aggOff,
	}
	if err := p.Validate(); err != nil {
		cli.Fatalf(prog, "%v", err)
	}
	if *spillWork < 0 {
		cli.Fatalf(prog, "negative -spill-workers %d", *spillWork)
	}
	if *hybrid && *memBudget <= 0 {
		cli.Fatalf(prog, "-hybrid requires a positive -mem-budget")
	}
	if *timeout < 0 {
		cli.Fatalf(prog, "negative -timeout %v", *timeout)
	}
	p.Materialize()
	if *timeout > 0 {
		// The deadline starts after workload generation: a slow generator
		// should not eat the query's time box.
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		p.Ctx = ctx
	}

	desc := catalog.Describe("build", p.Pair.Build)
	if *catPath != "" {
		cat := catalog.New()
		cat.Put(desc)
		cat.Put(catalog.Describe("probe", p.Pair.Probe))
		f, err := os.Create(*catPath)
		if err != nil {
			cli.Dief(prog, "%v", err)
		}
		if err := cat.Save(f); err != nil {
			cli.Dief(prog, "%v", err)
		}
		f.Close()
		fmt.Printf("catalog written to %s\n", *catPath)
	}

	p.Scheme, p.Params = scheme, core.DefaultParams()
	if usePlan {
		// The planner targets the simulator's cost model; the native
		// engine reuses its scheme choice with the native default G/D.
		gp := catalog.PlanGrace(desc, *mem, hier)
		p.Scheme = gp.JoinScheme
		p.Params = gp.Params
		if backend == engine.Native {
			p.Params = core.Params{}
		}
		fmt.Printf("plan: scheme=%v G=%d D=%d (catalog planner)\n",
			p.Scheme, gp.Params.G, gp.Params.D)
	}

	res, err := p.Run()
	if err != nil {
		cli.DiePipeline(prog, err)
	}
	if res.Plan != nil {
		fmt.Printf("strategy: %s\n", res.Plan.Explain())
	}

	// These two lines are engine-independent: same workload, same plan,
	// same logical result on either backend.
	fmt.Printf("result: %d output tuples (validated)\n", res.NOutput)
	fmt.Printf("groups: %d groups, keysum %d\n", len(res.Groups), res.KeySum)

	switch backend {
	case engine.Sim:
		printPhase("pipeline", res.Stats)
		fmt.Printf("total: %.2f Mcycles\n", float64(res.Stats.Total())/1e6)
	case engine.Native:
		rate := float64(p.Pair.Probe.NTuples) / res.Elapsed.Seconds() / 1e6
		fmt.Printf("native: scheme %v, fanout %d, prefetch asm %v\n",
			cli.NativeScheme(p.Scheme), res.JoinFanout, native.HavePrefetch)
		if *memBudget > 0 {
			fmt.Printf("budget: %d B, recursion depth %d\n", *memBudget, res.JoinRecursionDepth)
		}
		if res.SpilledPartitions > 0 {
			fmt.Printf("spill: %d partition pair(s), %d B written, %d B read, stalls write %v read %v\n",
				res.SpilledPartitions, res.SpillBytesWritten, res.SpillBytesRead,
				res.SpillWriteStall, res.SpillReadStall)
			if res.SpillFailovers > 0 || res.SpillRebuilds > 0 {
				fmt.Printf("spill recovery: %d dir failover(s), %d partition rebuild(s)\n",
					res.SpillFailovers, res.SpillRebuilds)
			}
		}
		if *hybrid {
			fmt.Printf("hybrid: %d resident pair(s), %d demoted, %d B demoted\n",
				res.ResidentPartitions, res.DemotedPartitions, res.BytesDemoted)
		}
		fmt.Printf("total: %.2f ms  (%.1f Mprobe tuples/s)\n",
			res.Elapsed.Seconds()*1e3, rate)
	}
}

func printPhase(name string, s memsim.Stats) {
	total := float64(s.Total())
	fmt.Printf("%-10s %10.2f Mcycles  busy %4.0f%%  dcache %4.0f%%  dtlb %4.0f%%  other %4.0f%%\n",
		name, total/1e6,
		100*float64(s.Busy)/total, 100*float64(s.DCacheStall)/total,
		100*float64(s.TLBStall)/total, 100*float64(s.OtherStall)/total)
}
