package hashjoin

import (
	"fmt"
	"math/rand"
	"testing"

	"hashjoin/internal/workload"
)

// relationsFor materializes a workload inside an Env's arena and wraps
// the relations for both backends, so env.Join and NativeJoin consume
// the exact same pages.
func relationsFor(t testing.TB, spec workload.Spec) (*Env, *Relation, *Relation, *workload.Pair) {
	t.Helper()
	env := NewEnv(WithSmallHierarchy(), WithCapacity(workload.ArenaBytesFor(spec)*2))
	pair := workload.Generate(env.mem.A, spec)
	return env,
		&Relation{rel: pair.Build, env: env},
		&Relation{rel: pair.Probe, env: env},
		pair
}

// TestNativeSimParity joins the same seeded workloads through the
// simulator (env.Join) and the native engine (NativeJoin) for every
// scheme, asserting identical NOutput and KeySum — the two backends'
// output-compatibility contract.
func TestNativeSimParity(t *testing.T) {
	specs := []workload.Spec{
		{NBuild: 4000, TupleSize: 36, MatchesPerBuild: 2, PctMatched: 100, Seed: 1},
		{NBuild: 6000, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 60, Seed: 2},
		{NBuild: 2500, TupleSize: 100, MatchesPerBuild: 4, PctMatched: 85, Seed: 3},
		{NBuild: 3000, TupleSize: 24, MatchesPerBuild: 2, PctMatched: 100, Seed: 4, Skew: 12},
	}
	// Randomized specs: deterministic seed, random shapes.
	rng := rand.New(rand.NewSource(20260805))
	for i := 0; i < 4; i++ {
		specs = append(specs, workload.Spec{
			NBuild:          500 + rng.Intn(8000),
			TupleSize:       8 + 4*rng.Intn(30),
			MatchesPerBuild: 1 + rng.Intn(4),
			PctMatched:      40 + rng.Intn(61),
			Skew:            1 + rng.Intn(3)*rng.Intn(5),
			Seed:            rng.Int63(),
		})
	}

	for si, spec := range specs {
		for _, scheme := range []Scheme{Baseline, Simple, Group, Pipelined} {
			t.Run(fmt.Sprintf("spec%d/%v", si, scheme), func(t *testing.T) {
				env, build, probe, pair := relationsFor(t, spec)
				sim, err := env.Join(build, probe, WithScheme(scheme))
				if err != nil {
					t.Fatalf("sim join: %v", err)
				}
				nat, err := NativeJoin(build, probe,
					WithNativeScheme(scheme), WithNativeWorkers(4))
				if err != nil {
					t.Fatalf("native join: %v", err)
				}
				if sim.NOutput != pair.ExpectedMatches || sim.KeySum != pair.KeySum {
					t.Fatalf("simulator diverges from ground truth: (%d, %d) vs (%d, %d)",
						sim.NOutput, sim.KeySum, pair.ExpectedMatches, pair.KeySum)
				}
				if nat.NOutput != sim.NOutput || nat.KeySum != sim.KeySum {
					t.Fatalf("native (%d, %d) != simulated (%d, %d)",
						nat.NOutput, nat.KeySum, sim.NOutput, sim.KeySum)
				}
			})
		}
	}
}

// TestNativeSimParityPartitioned covers the end-to-end GRACE pipeline:
// the simulator partitions under a memory budget, the native engine
// radix-partitions with an explicit fan-out, and both must agree with
// the ground truth (partition fan-out never changes join output).
func TestNativeSimParityPartitioned(t *testing.T) {
	spec := workload.Spec{NBuild: 12000, TupleSize: 28, MatchesPerBuild: 2, PctMatched: 90, Seed: 11}
	for _, scheme := range []Scheme{Baseline, Group, Pipelined} {
		t.Run(scheme.String(), func(t *testing.T) {
			env, build, probe, pair := relationsFor(t, spec)
			sim, err := env.Join(build, probe, WithScheme(scheme), WithMemBudget(64<<10))
			if err != nil {
				t.Fatalf("sim join: %v", err)
			}
			if sim.NPartitions < 2 {
				t.Fatalf("budget did not force partitioning (%d partitions)", sim.NPartitions)
			}
			nat, err := NativeJoin(build, probe,
				WithNativeScheme(scheme), WithNativeFanout(16), WithNativeWorkers(8))
			if err != nil {
				t.Fatalf("native join: %v", err)
			}
			if nat.NPartitions != 16 {
				t.Fatalf("native fanout = %d, want 16", nat.NPartitions)
			}
			if nat.NOutput != pair.ExpectedMatches || nat.KeySum != pair.KeySum {
				t.Fatalf("native (%d, %d) != expected (%d, %d)",
					nat.NOutput, nat.KeySum, pair.ExpectedMatches, pair.KeySum)
			}
			if nat.NOutput != sim.NOutput || nat.KeySum != sim.KeySum {
				t.Fatalf("native (%d, %d) != simulated (%d, %d)",
					nat.NOutput, nat.KeySum, sim.NOutput, sim.KeySum)
			}
		})
	}
}

// TestNativeJoinPublicAPI exercises the documented public path: relations
// built tuple by tuple through Env.NewRelation/Append.
func TestNativeJoinPublicAPI(t *testing.T) {
	env := NewEnv(WithSmallHierarchy(), WithCapacity(32<<20))
	build := env.NewRelation(40)
	probe := env.NewRelation(40)
	payload := make([]byte, 36)
	var wantSum uint64
	for i := 0; i < 5000; i++ {
		k := uint32(i)*2654435761 | 1
		build.Append(k, payload)
		probe.Append(k, payload)
		probe.Append(k, payload)
		wantSum += 2 * uint64(k)
	}
	r, err := NativeJoin(build, probe)
	if err != nil {
		t.Fatal(err)
	}
	if r.NOutput != 10000 || r.KeySum != wantSum {
		t.Fatalf("NativeJoin = (%d, %d), want (10000, %d)", r.NOutput, r.KeySum, wantSum)
	}
	if r.Elapsed <= 0 || r.NPartitions < 1 || r.Workers < 1 {
		t.Fatalf("implausible result metadata: %+v", r)
	}
	if got := r.Breakdown(); got == "" {
		t.Fatal("empty breakdown")
	}
}

// TestNativeJoinRejectsForeignEnv guards the shared-arena precondition.
func TestNativeJoinRejectsForeignEnv(t *testing.T) {
	e1 := NewEnv(WithSmallHierarchy(), WithCapacity(4<<20))
	e2 := NewEnv(WithSmallHierarchy(), WithCapacity(4<<20))
	b := e1.NewRelation(16)
	p := e2.NewRelation(16)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-Env NativeJoin did not panic")
		}
	}()
	NativeJoin(b, p)
}
