package hashjoin

// Out-of-core benchmark: a heavily skewed join whose partition pairs no
// re-partitioning can bring under the memory budget, so every pair goes
// through the disk-backed spill tier. BenchmarkSpillOverlap sweeps the
// spill tier's write-behind worker count and records the end-to-end
// wall clock per count — the real-hardware analog of the paper's
// Figure 9 question: how much latency does asynchronous I/O overlap
// hide? More write-behind workers should shorten (or at least not
// lengthen) the run until the device or the CPU side saturates.
//
// BenchmarkSpillOverlap writes BENCH_spill.json, a machine-readable
// trajectory (elapsed and unhidden stall time per worker count):
//
//	go test -run=^$ -bench BenchmarkSpillOverlap -benchtime=1x .

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"hashjoin/internal/spill"
	"hashjoin/internal/workload"
)

// Four distinct keys, each repeated 1000 times on both sides: fanout
// separates the keys, but a single-key partition pair is irreducible —
// every pair lands in the spill tier. 256-byte tuples keep the spilled
// byte volume (and thus the I/O overlap opportunity) large relative to
// the 4M-match probe work.
var spillBenchSpec = workload.Spec{
	NBuild:          4000,
	TupleSize:       256,
	MatchesPerBuild: 1,
	PctMatched:      100,
	Skew:            1000,
	Seed:            7,
}

const (
	spillBenchBudget = 16 << 10
	spillBenchFanout = 4
)

var (
	spillBenchOnce  sync.Once
	spillBenchEnv   *Env
	spillBenchBuild *Relation
	spillBenchProbe *Relation
	spillBenchWant  PipelineResult // unbudgeted reference for parity
)

// spillBenchRelations generates the skewed workload once and runs the
// unbudgeted in-memory join as the parity reference. Per-run spill
// scratch (page pool, chunk tables) is scoped to the run and reclaimed
// by RunPipeline, so repetitions never grow the arena.
func spillBenchRelations(tb testing.TB) {
	spillBenchOnce.Do(func() {
		spec := spillBenchSpec
		spillBenchEnv = NewEnv(WithSmallHierarchy(),
			WithCapacity(workload.ArenaBytesFor(spec)*3+8<<20))
		pair := workload.Generate(spillBenchEnv.mem.A, spec)
		spillBenchBuild = &Relation{rel: pair.Build, env: spillBenchEnv}
		spillBenchProbe = &Relation{rel: pair.Probe, env: spillBenchEnv}
		want, err := spillBenchEnv.RunPipeline(spillBenchBuild, spillBenchProbe,
			WithEngine(EngineNative), WithPipelineFanout(spillBenchFanout))
		if err != nil {
			tb.Fatalf("reference join: %v", err)
		}
		spillBenchWant = want
	})
}

// runSpillBenchOnce runs one budgeted, spilling, validated join and
// returns the full result (elapsed plus spill I/O accounting).
func runSpillBenchOnce(tb testing.TB, dir string, workers int) PipelineResult {
	res, err := spillBenchEnv.RunPipeline(spillBenchBuild, spillBenchProbe,
		WithEngine(EngineNative), WithPipelineFanout(spillBenchFanout),
		WithPipelineMemBudget(spillBenchBudget),
		WithPipelineSpillDir(dir), WithPipelineSpillWorkers(workers))
	if err != nil {
		tb.Fatalf("spill join (%d workers): %v", workers, err)
	}
	if res.NOutput != spillBenchWant.NOutput || res.KeySum != spillBenchWant.KeySum {
		tb.Fatalf("spill join (%d workers): wrong result (%d, %d), want (%d, %d)",
			workers, res.NOutput, res.KeySum, spillBenchWant.NOutput, spillBenchWant.KeySum)
	}
	if res.SpilledPartitions == 0 {
		tb.Fatalf("spill join (%d workers): nothing spilled — benchmark measures nothing", workers)
	}
	return res
}

// spillPoint is one worker-count sample in BENCH_spill.json.
type spillPoint struct {
	Workers   int     `json:"workers"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// Unhidden I/O latency: time the partition phase blocked for a free
	// page buffer (write side) and the probe phase blocked on a page not
	// yet read (read side). Medians over interleaved repetitions, like
	// ElapsedMs.
	WriteStallMs float64 `json:"write_stall_ms"`
	ReadStallMs  float64 `json:"read_stall_ms"`
}

// spillTrajectory is the BENCH_spill.json document.
type spillTrajectory struct {
	NBuild      int  `json:"n_build"`
	NProbe      int  `json:"n_probe"`
	TupleSize   int  `json:"tuple_size"`
	Skew        int  `json:"skew"`
	Fanout      int  `json:"fanout"`
	MemBudget   int  `json:"mem_budget"`
	PageSize    int  `json:"page_size"`
	GOMAXPROCS  int  `json:"gomaxprocs"`
	PrefetchASM bool `json:"prefetch_asm"`
	// Spill volume of one run (identical across worker counts — the
	// worker count changes when I/O happens, not how much).
	SpilledPairs int   `json:"spilled_pairs"`
	BytesWritten int64 `json:"bytes_written"`
	BytesRead    int64 `json:"bytes_read"`
	// One point per write-behind worker count, ascending.
	Points []spillPoint `json:"points"`
}

// BenchmarkSpillOverlap sweeps the write-behind worker count over the
// spilling workload and emits BENCH_spill.json. Repetitions interleave
// the worker counts so host and filesystem drift land on all of them
// alike, and per-count medians are reported (see BenchmarkNativeSpeedup
// for why medians).
func BenchmarkSpillOverlap(b *testing.B) {
	spillBenchRelations(b)
	dir := b.TempDir()
	workerCounts := []int{1, 2, 4, 8}

	// Untimed warmup: create the spill pool growth path once.
	warm := runSpillBenchOnce(b, dir, workerCounts[0])

	const reps = 5
	elapsed := make([][]time.Duration, len(workerCounts))
	wstall := make([][]time.Duration, len(workerCounts))
	rstall := make([][]time.Duration, len(workerCounts))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range elapsed {
			elapsed[j], wstall[j], rstall[j] = nil, nil, nil
		}
		for rep := 0; rep < reps; rep++ {
			for j, w := range workerCounts {
				res := runSpillBenchOnce(b, dir, w)
				elapsed[j] = append(elapsed[j], res.Elapsed)
				wstall[j] = append(wstall[j], res.SpillWriteStall)
				rstall[j] = append(rstall[j], res.SpillReadStall)
			}
		}
	}
	b.StopTimer()

	traj := spillTrajectory{
		NBuild:       spillBenchBuild.Len(),
		NProbe:       spillBenchProbe.Len(),
		TupleSize:    spillBenchSpec.TupleSize,
		Skew:         spillBenchSpec.Skew,
		Fanout:       spillBenchFanout,
		MemBudget:    spillBenchBudget,
		PageSize:     spill.DefaultPageSize,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		PrefetchASM:  NativeHasPrefetch(),
		SpilledPairs: warm.SpilledPartitions,
		BytesWritten: warm.SpillBytesWritten,
		BytesRead:    warm.SpillBytesRead,
	}
	for j, w := range workerCounts {
		traj.Points = append(traj.Points, spillPoint{
			Workers:      w,
			ElapsedMs:    float64(medianDuration(elapsed[j]).Microseconds()) / 1e3,
			WriteStallMs: float64(medianDuration(wstall[j]).Microseconds()) / 1e3,
			ReadStallMs:  float64(medianDuration(rstall[j]).Microseconds()) / 1e3,
		})
	}
	b.ReportMetric(traj.Points[0].ElapsedMs, "ms@1worker")
	b.ReportMetric(traj.Points[len(traj.Points)-1].ElapsedMs, "ms@8workers")

	if doc, err := json.MarshalIndent(traj, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_spill.json", append(doc, '\n'), 0o644); err != nil {
			b.Logf("BENCH_spill.json not written: %v", err)
		}
	}
}
