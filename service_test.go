package hashjoin

// Multi-tenant service contract, under -race: N concurrent
// RunPipelineContext calls on one resident Env produce exactly the
// results serialized execution produces; one tenant's cancellation or
// injected fault never poisons a neighbor; over-budget queries are
// shed with a typed *AdmissionError instead of OOMing anyone; the Env
// stays reusable afterwards; and no goroutines leak.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"hashjoin/internal/fault"
)

// serviceEnv builds a service Env holding nTenants generated workloads
// of mixed sizes, plus the serialized reference result for each.
func serviceEnv(t *testing.T, nTenants int, sc ServiceConfig) (*Env, []*Workload, []PipelineResult) {
	t.Helper()
	env := NewEnv(WithSmallHierarchy(), WithCapacity(128<<20), WithService(sc))
	t.Cleanup(env.Close)
	ctx := context.Background()
	ws := make([]*Workload, nTenants)
	refs := make([]PipelineResult, nTenants)
	for i := range ws {
		n := 300 + 180*i // mixed sizes: morsel counts differ per tenant
		w, err := env.GenerateWorkload(ctx, n, 2*n, 40, int64(100+i))
		if err != nil {
			t.Fatalf("GenerateWorkload %d: %v", i, err)
		}
		ws[i] = w
		ref, err := env.RunPipelineContext(ctx, w.Build, w.Probe, tenantOpts(i, len(ws))...)
		if err != nil {
			t.Fatalf("serialized run %d: %v", i, err)
		}
		if ref.NOutput != w.ExpectedMatches || ref.KeySum != w.KeySum {
			t.Fatalf("serialized run %d: NOutput/KeySum = %d/%d, want %d/%d",
				i, ref.NOutput, ref.KeySum, w.ExpectedMatches, w.KeySum)
		}
		refs[i] = ref
	}
	return env, ws, refs
}

// tenantOpts is the per-tenant query shape: mostly native morsel joins
// with aggregation, one streaming native, and one simulated tenant so
// exclusive admission interleaves with windowed admission.
func tenantOpts(i, n int) []PipelineOption {
	opts := []PipelineOption{
		WithTenant(fmt.Sprintf("tenant-%d", i)),
		WithTenantWeight(1 + i%3),
		WithPipelineWorkers(2),
		WithAggregation(4, 4096),
	}
	switch {
	case i == n-1:
		opts = append(opts, WithEngine(EngineSim))
	case i == n-2:
		opts = append(opts, WithEngine(EngineNative), WithPipelineFanout(1))
	default:
		opts = append(opts, WithEngine(EngineNative), WithPipelineFanout(4))
	}
	return opts
}

// TestServiceConcurrentParity is the acceptance criterion: 8 concurrent
// queries on one Env, all completing with results identical to
// serialized execution, with live Stats reads throughout, no leaked
// goroutines, and a reusable Env afterwards.
func TestServiceConcurrentParity(t *testing.T) {
	base := fault.Goroutines()
	env, ws, refs := serviceEnv(t, 8, ServiceConfig{MaxConcurrent: 4, Workers: 4})
	ctx := context.Background()

	// A reader hammers Stats and ServiceStats while queries run —
	// torn-counter reads would trip -race.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = env.Stats()
				_ = env.ServiceStats()
			}
		}
	}()

	var wg sync.WaitGroup
	results := make([]PipelineResult, len(ws))
	errs := make([]error, len(ws))
	for round := 0; round < 2; round++ { // round 2 proves the Env is reusable
		for i := range ws {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = env.RunPipelineContext(ctx, ws[i].Build, ws[i].Probe, tenantOpts(i, len(ws))...)
			}(i)
		}
		wg.Wait()
		for i := range ws {
			if errs[i] != nil {
				t.Fatalf("round %d tenant %d: %v", round, i, errs[i])
			}
			r, ref := results[i], refs[i]
			if r.NOutput != ref.NOutput || r.KeySum != ref.KeySum || !reflect.DeepEqual(r.Groups, ref.Groups) {
				t.Fatalf("round %d tenant %d: concurrent result differs from serialized", round, i)
			}
		}
	}
	close(stop)
	readers.Wait()

	// Accounting: windowed tenants report their admitted budget and
	// morsel counts; aggregate counters balance.
	for i := 0; i < len(ws)-1; i++ {
		if results[i].AdmittedBytes == 0 {
			t.Errorf("tenant %d: AdmittedBytes = 0, want a window", i)
		}
	}
	if results[0].MorselsExecuted == 0 {
		t.Error("morsel tenant reports 0 MorselsExecuted")
	}
	s := env.ServiceStats()
	wantRuns := uint64(3 * len(ws)) // serialized refs + 2 concurrent rounds
	if s.Admitted < wantRuns || s.Completed < wantRuns {
		t.Errorf("Admitted/Completed = %d/%d, want >= %d", s.Admitted, s.Completed, wantRuns)
	}
	if s.InFlight != 0 || s.Queued != 0 || s.ReservedBytes != 0 {
		t.Errorf("idle gauges nonzero: %+v", s)
	}
	if s.MorselsExecuted == 0 {
		t.Error("pool executed 0 morsels")
	}
	if s.Reclaims == 0 {
		t.Error("no quiescent window reclamation happened")
	}

	env.Close()
	fault.CheckGoroutines(t, base)
}

// TestServiceNeighborIsolation runs a full concurrent wave in which one
// tenant is cancelled mid-flight and one morsel claim is faulted; every
// unaffected tenant must still produce exact results, and the Env must
// serve a clean wave afterwards.
func TestServiceNeighborIsolation(t *testing.T) {
	base := fault.Goroutines()
	env, ws, refs := serviceEnv(t, 6, ServiceConfig{MaxConcurrent: 6, Workers: 4})

	// Exactly one injected failure at the morsel claim site: whichever
	// native tenant's worker claims first eats it.
	fault.Enable(fault.SiteMorselWorker, fault.Fault{Count: 1})
	defer fault.Reset()

	const cancelled = 1 // a fanout-4 native tenant
	cctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	results := make([]PipelineResult, len(ws))
	errs := make([]error, len(ws))
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i == cancelled {
				ctx = cctx
			}
			results[i], errs[i] = env.RunPipelineContext(ctx, ws[i].Build, ws[i].Probe, tenantOpts(i, len(ws))...)
		}(i)
	}
	cancel() // mid-flight: admission or a batch/claim boundary notices
	wg.Wait()

	faulted, failedCancelled := -1, false
	var inj *fault.InjectedError
	for i := range ws {
		err := errs[i]
		switch {
		case err == nil:
			r, ref := results[i], refs[i]
			if r.NOutput != ref.NOutput || r.KeySum != ref.KeySum {
				t.Errorf("tenant %d: poisoned result %d/%d, want %d/%d",
					i, r.NOutput, r.KeySum, ref.NOutput, ref.KeySum)
			}
		case errors.As(err, &inj):
			if faulted != -1 {
				t.Errorf("fault hit tenants %d and %d; Count was 1", faulted, i)
			}
			faulted = i
		case errors.Is(err, ErrCancelled) || errors.Is(err, context.Canceled):
			if i != cancelled {
				t.Errorf("tenant %d cancelled; only %d had a cancelled context", i, cancelled)
			}
			failedCancelled = true
		default:
			t.Errorf("tenant %d: unexpected error class: %v", i, err)
		}
	}
	if faulted == cancelled && failedCancelled {
		t.Error("fault and cancellation landed on the same tenant")
	}
	if faulted == -1 {
		t.Error("injected fault never surfaced")
	}

	// The service is intact: a clean wave succeeds exactly.
	var wg2 sync.WaitGroup
	for i := range ws {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			r, err := env.RunPipelineContext(context.Background(), ws[i].Build, ws[i].Probe, tenantOpts(i, len(ws))...)
			if err != nil {
				t.Errorf("post-fault tenant %d: %v", i, err)
				return
			}
			if r.NOutput != refs[i].NOutput || r.KeySum != refs[i].KeySum {
				t.Errorf("post-fault tenant %d: result drifted", i)
			}
		}(i)
	}
	wg2.Wait()
	env.Close()
	fault.CheckGoroutines(t, base)
}

// TestServiceShedding covers the three shed classes: a footprint the
// arena can never grant (TooLarge, a memory-class error, no OOM panic),
// a full bounded queue (QueueFull), and a queue wait past the deadline
// (Timeout, matching context.DeadlineExceeded).
func TestServiceShedding(t *testing.T) {
	env := NewEnv(WithSmallHierarchy(), WithCapacity(64<<20), WithArenaBudget(8<<20),
		WithService(ServiceConfig{MaxConcurrent: 1, QueueDepth: 1, QueueTimeout: 20 * time.Millisecond}))
	defer env.Close()
	ctx := context.Background()
	w, err := env.GenerateWorkload(ctx, 500, 1000, 40, 7)
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	opts := func(extra ...PipelineOption) []PipelineOption {
		return append([]PipelineOption{WithEngine(EngineNative), WithPipelineFanout(4), WithPipelineWorkers(2)}, extra...)
	}

	// TooLarge: planned scratch above the arena budget can never fit.
	_, err = env.RunPipelineContext(ctx, w.Build, w.Probe, opts(WithPlannedScratch(32<<20))...)
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != AdmissionTooLarge {
		t.Fatalf("oversized plan: err = %v, want TooLarge *AdmissionError", err)
	}
	if !errors.Is(err, ErrAdmission) {
		t.Fatal("shed does not match ErrAdmission")
	}

	// Saturate the single slot, then the single queue seat, then shed.
	block := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		env.Durable(ctx, func() error { close(block); <-release; return nil })
	}()
	<-block

	queued := make(chan error, 1)
	go func() {
		_, err := env.RunPipelineContext(ctx, w.Build, w.Probe, opts()...)
		queued <- err
	}()
	waitForQueue(t, env, 1)

	_, err = env.RunPipelineContext(ctx, w.Build, w.Probe, opts()...)
	if !errors.As(err, &ae) || ae.Reason != AdmissionQueueFull {
		t.Fatalf("over-queue run: err = %v, want QueueFull", err)
	}

	// The queued run times out (20ms QueueTimeout) while the slot stays
	// blocked, and the rejection carries the deadline class.
	err = <-queued
	if !errors.As(err, &ae) || ae.Reason != AdmissionTimeout || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued run: err = %v, want Timeout matching DeadlineExceeded", err)
	}

	close(release)
	wg.Wait()

	// Shed counters saw one of each.
	s := env.ServiceStats()
	if s.ShedTooLarge != 1 || s.ShedQueueFull != 1 || s.ShedTimeout != 1 || s.Shed() != 3 {
		t.Fatalf("shed counters = %+v", s)
	}

	// The slot is free again: the same query runs clean.
	r, err := env.RunPipelineContext(ctx, w.Build, w.Probe, opts()...)
	if err != nil {
		t.Fatalf("post-shed run: %v", err)
	}
	if r.NOutput != w.ExpectedMatches || r.KeySum != w.KeySum {
		t.Fatalf("post-shed result = %d/%d, want %d/%d", r.NOutput, r.KeySum, w.ExpectedMatches, w.KeySum)
	}
}

// TestServiceCloseDrains proves shutdown semantics at the Env level:
// Close sheds later admissions with Draining and is idempotent, and a
// plain Env treats Close and Durable as no-op passthroughs.
func TestServiceCloseDrains(t *testing.T) {
	env := NewEnv(WithSmallHierarchy(), WithCapacity(64<<20), WithService(ServiceConfig{}))
	ctx := context.Background()
	w, err := env.GenerateWorkload(ctx, 200, 400, 40, 3)
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	env.Close()
	env.Close() // idempotent

	_, err = env.RunPipelineContext(ctx, w.Build, w.Probe, WithEngine(EngineNative))
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != AdmissionDraining {
		t.Fatalf("post-Close run: err = %v, want Draining", err)
	}
	if err := env.Durable(ctx, func() error { return nil }); !errors.As(err, &ae) {
		t.Fatalf("post-Close Durable: err = %v, want *AdmissionError", err)
	}

	plain := NewEnv(WithSmallHierarchy(), WithCapacity(16<<20))
	plain.Close() // no-op
	if err := plain.Durable(ctx, func() error { return nil }); err != nil {
		t.Fatalf("plain Durable: %v", err)
	}
	if _, err := plain.Join(mustRel(t, plain, 5), mustRel(t, plain, 5)); err != nil {
		t.Fatalf("plain Env after Close: %v", err)
	}
}

func mustRel(t *testing.T, env *Env, n int) *Relation {
	t.Helper()
	r := env.NewRelation(20)
	for i := 0; i < n; i++ {
		r.Append(uint32(i*2+2), nil)
	}
	return r
}

func waitForQueue(t *testing.T, env *Env, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for env.ServiceStats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
}
