package hashjoin

// Pins the error-chain contract at the Env boundary: every failure
// class an Env or NativeJoiner method can return is classifiable with
// errors.Is against the package sentinels and extractable with
// errors.As into the typed errors — without importing internal
// packages, and stably across wrapping layers. These assertions are the
// public face of the failure model; loosening them is an API break.

import (
	"context"
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"

	"hashjoin/internal/fault"
	"hashjoin/internal/workload"
)

// TestErrorChainOOM: arena exhaustion from Join matches ErrOutOfMemory
// and carries a usage breakdown via *OOMError.
func TestErrorChainOOM(t *testing.T) {
	// The relations (~100 KB) fit the 160 KB budget; materializing the
	// join output (~100 KB more) cannot, so exhaustion strikes inside
	// the join, where it must surface as an error, not a panic.
	env := NewEnv(WithSmallHierarchy(), WithCapacity(1<<20), WithArenaBudget(160<<10))
	build := env.NewRelation(128)
	probe := env.NewRelation(128)
	for i := 0; i < 400; i++ {
		build.Append(uint32(i), nil)
		probe.Append(uint32(i), nil)
	}
	_, err := env.Join(build, probe, KeepOutput())
	if err == nil {
		t.Fatal("budgeted Env joined without error")
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("error %v does not match ErrOutOfMemory", err)
	}
	var oe *OOMError
	if !errors.As(err, &oe) {
		t.Fatalf("error %T (%v), want *OOMError", err, err)
	}
	if oe.Need == 0 || oe.Cap == 0 {
		t.Fatalf("OOMError missing usage breakdown: %+v", oe)
	}
}

// TestErrorChainBudget: an irreducible over-budget pair under
// WithNativeNoSpill matches ErrOverBudget and carries the numbers via
// *BudgetError.
func TestErrorChainBudget(t *testing.T) {
	spec := workload.Spec{NBuild: 2000, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 19, Skew: 2000}
	_, build, probe, _ := pipelineTestEnv(t, spec)
	_, err := NativeJoin(build, probe,
		WithNativeMemBudget(4<<10), WithNativeFanout(2), WithNativeNoSpill())
	if err == nil {
		t.Fatal("infeasible no-spill join returned nil error")
	}
	if !errors.Is(err, ErrOverBudget) {
		t.Fatalf("error %v does not match ErrOverBudget", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %T (%v), want *BudgetError", err, err)
	}
	if be.Budget == 0 || be.Need <= be.Budget {
		t.Fatalf("BudgetError numbers inconsistent: %+v", be)
	}
}

// TestErrorChainCancelJoin: a cancelled simulated GRACE join matches
// ErrCancelled AND the context sentinel, and reports progress via
// *CancelError.
func TestErrorChainCancelJoin(t *testing.T) {
	env := NewEnv(WithSmallHierarchy(), WithCapacity(8<<20))
	build := env.NewRelation(20)
	probe := env.NewRelation(20)
	for i := 0; i < 3000; i++ {
		build.Append(uint32(i), nil)
		probe.Append(uint32(i), nil)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := env.JoinContext(ctx, build, probe, WithMemBudget(64<<10))
	if err == nil {
		t.Fatal("cancelled join returned nil error")
	}
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not match both cancellation sentinels", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T (%v), want *CancelError", err, err)
	}
	if ce.PairsDone != 0 {
		t.Fatalf("pre-cancelled join reports %d pairs done", ce.PairsDone)
	}
}

// TestErrorChainCancelPipeline: both pipeline backends surface
// cancellation through RunPipelineContext as *CancelError.
func TestErrorChainCancelPipeline(t *testing.T) {
	spec := workload.Spec{NBuild: 300, TupleSize: 16, MatchesPerBuild: 1, Seed: 23}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range []Engine{EngineSim, EngineNative} {
		env, build, probe, _ := pipelineTestEnv(t, spec)
		_, err := env.RunPipelineContext(ctx, build, probe, WithEngine(eng))
		if err == nil {
			t.Fatalf("engine %v: cancelled pipeline returned nil error", eng)
		}
		if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("engine %v: error %v does not match both sentinels", eng, err)
		}
		var ce *CancelError
		if !errors.As(err, &ce) {
			t.Fatalf("engine %v: error %T (%v), want *CancelError", eng, err, err)
		}
	}
}

// TestErrorChainCancelNativeJoiner: NativeJoiner.JoinContext under a
// deadline that expires mid-spill returns a *CancelError with progress
// and leaves the Joiner usable.
func TestErrorChainCancelNativeJoiner(t *testing.T) {
	defer fault.Reset()
	spec := workload.Spec{NBuild: 2000, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 29, Skew: 2000}
	_, build, probe, pair := pipelineTestEnv(t, spec)

	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindDelay, Delay: 2 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	jn := NewNativeJoiner()
	_, err := jn.JoinContext(ctx, build, probe,
		WithNativeMemBudget(4<<10), WithNativeFanout(2), WithNativeSpillDir(t.TempDir()))
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not match both sentinels", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T (%v), want *CancelError", err, err)
	}

	fault.Reset()
	r, err := jn.Join(build, probe,
		WithNativeMemBudget(4<<10), WithNativeFanout(2), WithNativeSpillDir(t.TempDir()))
	if err != nil {
		t.Fatalf("join after cancellation: %v", err)
	}
	if r.NOutput != pair.ExpectedMatches || r.KeySum != pair.KeySum {
		t.Fatalf("post-cancel join got (%d, %d), want (%d, %d)",
			r.NOutput, r.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
}

// TestErrorChainCorruptSpill: a spill page damaged on disk surfaces
// from the public API matching ErrCorruptSpill with file/page location
// via *CorruptPageError. The write failpoint flips the page after it is
// sealed — simulating at-rest damage rather than a write error.
func TestErrorChainCorruptSpill(t *testing.T) {
	// Corruption is simpler to prove at the spill layer (see
	// internal/spill's fault tests); at the Env boundary we pin only the
	// taxonomy: the sentinel and type re-exports resolve and compose.
	err := error(&CorruptPageError{File: "f", Page: 3, Offset: 12288, Reason: "checksum mismatch"})
	if !errors.Is(err, ErrCorruptSpill) {
		t.Fatalf("CorruptPageError does not match ErrCorruptSpill")
	}
	var cpe *CorruptPageError
	if !errors.As(err, &cpe) || cpe.Page != 3 {
		t.Fatalf("CorruptPageError round-trip failed: %v", err)
	}
}

// TestErrorChainSpillUnavailable: the all-spill-directories-down shed
// matches ErrSpillUnavailable across wrapping, carries the configured
// directory list via *SpillUnavailableError, and — through multi-error
// unwrapping — still matches the underlying per-directory cause.
func TestErrorChainSpillUnavailable(t *testing.T) {
	err := fmt.Errorf("query: %w",
		&SpillUnavailableError{Dirs: []string{"/a", "/b"}, Cause: syscall.ENOSPC})
	if !errors.Is(err, ErrSpillUnavailable) {
		t.Fatalf("SpillUnavailableError does not match ErrSpillUnavailable")
	}
	var sue *SpillUnavailableError
	if !errors.As(err, &sue) || len(sue.Dirs) != 2 {
		t.Fatalf("SpillUnavailableError round-trip failed: %v", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("SpillUnavailableError lost its cause: %v", err)
	}
}

// TestErrorClassesDisjoint: the sentinels classify, they do not blur —
// an error of one class never matches another class's sentinel.
func TestErrorClassesDisjoint(t *testing.T) {
	oom := error(&OOMError{Need: 1, Cap: 1})
	budget := error(&BudgetError{Budget: 1, Need: 2, Depth: 8})
	cancelled := error(&CancelError{Cause: context.Canceled})
	corrupt := error(&CorruptPageError{File: "f", Page: 0, Reason: "x"})
	unavailable := error(&SpillUnavailableError{Dirs: []string{""}})

	classes := []struct {
		name     string
		err      error
		sentinel error
	}{
		{"oom", oom, ErrOutOfMemory},
		{"budget", budget, ErrOverBudget},
		{"cancelled", cancelled, ErrCancelled},
		{"corrupt", corrupt, ErrCorruptSpill},
		{"unavailable", unavailable, ErrSpillUnavailable},
	}
	for i, c := range classes {
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("%s does not match its own sentinel", c.name)
		}
		for j, other := range classes {
			if i == j {
				continue
			}
			if errors.Is(c.err, other.sentinel) {
				t.Errorf("%s error matches %s sentinel", c.name, other.name)
			}
		}
	}
}
