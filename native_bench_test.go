package hashjoin

// Native-engine benchmarks: the paper's join-phase experiment on real
// hardware. The workload is the pivot configuration scaled to a >= 1M
// tuple probe relation (500k build x 2 matches, 100-byte tuples), joined
// as a single partition pair so the hash table and build tuples live far
// outside the caches — the regime whose miss latency the group and
// pipelined schemes exist to hide.
//
// BenchmarkNativeSpeedup additionally writes BENCH_native.json, a
// machine-readable trajectory point (wall-clock per scheme plus the
// speedups over baseline) for tracking the native engine across
// checkins:
//
//	go test -run=^$ -bench 'BenchmarkNative' -benchtime=3x .

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"hashjoin/internal/workload"
)

// nativeBenchSpec is the >= 1M probe-tuple pivot workload.
var nativeBenchSpec = workload.Spec{
	NBuild:          500_000,
	TupleSize:       100,
	MatchesPerBuild: 2,
	PctMatched:      100,
	Seed:            42,
}

var (
	nativeBenchOnce   sync.Once
	nativeBenchEnv    *Env
	nativeBenchBuild  *Relation
	nativeBenchProbe  *Relation
	nativeBenchPair   *workload.Pair
	nativeBenchJoiner *NativeJoiner
)

// nativeBenchRelations generates the benchmark workload once; joins do
// not mutate the relations, so all benchmarks share them — along with
// one resident NativeJoiner, warmed by an untimed join, so every
// measurement runs on recycled, already-populated memory. (Growing
// fresh scratch per join stalls in the kernel's page population and was
// the dominant noise source on virtualized hosts.) Sized for the
// relations alone: the native engine's tables live on the Go heap, not
// in the arena.
func nativeBenchRelations(tb testing.TB) (*Relation, *Relation, *workload.Pair) {
	nativeBenchOnce.Do(func() {
		spec := nativeBenchSpec
		if spec.NProbe == 0 {
			spec.NProbe = spec.NBuild * spec.MatchesPerBuild
		}
		tuples := uint64(spec.NBuild + spec.NProbe)
		bytes := tuples*uint64(spec.TupleSize+12) + (1 << 20)
		nativeBenchEnv = NewEnv(WithSmallHierarchy(), WithCapacity(bytes*11/10))
		nativeBenchPair = workload.Generate(nativeBenchEnv.mem.A, spec)
		nativeBenchBuild = &Relation{rel: nativeBenchPair.Build, env: nativeBenchEnv}
		nativeBenchProbe = &Relation{rel: nativeBenchPair.Probe, env: nativeBenchEnv}
		nativeBenchJoiner = NewNativeJoiner()
		if _, err := nativeBenchJoiner.Join(nativeBenchBuild, nativeBenchProbe,
			WithNativeScheme(Baseline), WithNativeFanout(1)); err != nil {
			panic(err)
		}
	})
	if nativeBenchProbe.Len() < 1_000_000 {
		tb.Fatalf("benchmark probe relation has %d tuples, want >= 1M", nativeBenchProbe.Len())
	}
	return nativeBenchBuild, nativeBenchProbe, nativeBenchPair
}

// benchmarkNative runs one scheme as a single partition pair.
func benchmarkNative(b *testing.B, scheme Scheme) {
	build, probe, pair := nativeBenchRelations(b)
	b.ReportAllocs()
	b.ResetTimer()
	var last NativeResult
	for i := 0; i < b.N; i++ {
		var err error
		last, err = nativeBenchJoiner.Join(build, probe, WithNativeScheme(scheme), WithNativeFanout(1))
		if err != nil {
			b.Fatal(err)
		}
		if last.NOutput != pair.ExpectedMatches || last.KeySum != pair.KeySum {
			b.Fatalf("wrong result: (%d, %d) want (%d, %d)",
				last.NOutput, last.KeySum, pair.ExpectedMatches, pair.KeySum)
		}
	}
	b.StopTimer()
	tuplesPerSec := float64(probe.Len()) / last.JoinTime.Seconds()
	b.ReportMetric(tuplesPerSec/1e6, "Mprobe/s")
}

func BenchmarkNativeBaseline(b *testing.B)  { benchmarkNative(b, Baseline) }
func BenchmarkNativeGroup(b *testing.B)     { benchmarkNative(b, Group) }
func BenchmarkNativePipelined(b *testing.B) { benchmarkNative(b, Pipelined) }

// BenchmarkNativeMorsel exercises the full pipeline — radix partitioning
// plus the morsel-driven worker pool — at a fan-out that gives every
// core work.
func BenchmarkNativeMorsel(b *testing.B) {
	build, probe, pair := nativeBenchRelations(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := nativeBenchJoiner.Join(build, probe, WithNativeScheme(Group), WithNativeFanout(64))
		if err != nil {
			b.Fatal(err)
		}
		if r.NOutput != pair.ExpectedMatches || r.KeySum != pair.KeySum {
			b.Fatal("wrong result")
		}
	}
}

// nativeTrajectory is the BENCH_native.json document.
type nativeTrajectory struct {
	NBuild      int  `json:"n_build"`
	NProbe      int  `json:"n_probe"`
	TupleSize   int  `json:"tuple_size"`
	Fanout      int  `json:"fanout"`
	GOMAXPROCS  int  `json:"gomaxprocs"`
	PrefetchASM bool `json:"prefetch_asm"`
	// Budget governor state: the configured memory budget (0 when
	// unbudgeted, as here) and the deepest recursive re-partitioning any
	// pair needed to fit it.
	MemBudget      int `json:"mem_budget"`
	RecursionDepth int `json:"recursion_depth"`
	// Per-scheme join-phase wall clocks (partitioning excluded — it is
	// identical work for every scheme), medians over interleaved
	// repetitions.
	BaselineMs  float64 `json:"baseline_ms"`
	GroupMs     float64 `json:"group_ms"`
	PipelinedMs float64 `json:"pipelined_ms"`
	// Speedups are baseline elapsed over scheme elapsed, the same ratio
	// the simulator reports in cycles for the paper's figures.
	GroupSpeedup     float64 `json:"group_speedup"`
	PipelinedSpeedup float64 `json:"pipelined_speedup"`
}

// medianDuration returns the middle element of ds (averaging the two
// middle elements for even lengths). It sorts ds in place.
func medianDuration(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	n := len(ds)
	if n%2 == 1 {
		return ds[n/2]
	}
	return (ds[n/2-1] + ds[n/2]) / 2
}

// BenchmarkNativeSpeedup measures all three schemes on the >= 1M tuple
// workload, reports the join-phase wall-clock speedups of Group and
// Pipelined over Baseline — the paper's Figure 10 comparison is join
// phase only, and partitioning is the same work under every scheme —
// and emits BENCH_native.json. Repetitions interleave the
// schemes (baseline, group, pipelined, baseline, ...) so slow host
// drift — vCPU scheduling, frequency steps — lands on every scheme
// alike instead of biasing whichever ran last, and the per-scheme
// medians are compared: on a shared virtualized CPU the per-rep spread
// is asymmetric (occasional 1.5-2x slow outliers), which makes
// best-of-N an unstable estimator but leaves the median steady.
func BenchmarkNativeSpeedup(b *testing.B) {
	build, probe, pair := nativeBenchRelations(b)
	var maxDepth int
	run := func(s Scheme) time.Duration {
		r, err := nativeBenchJoiner.Join(build, probe, WithNativeScheme(s), WithNativeFanout(1))
		if err != nil {
			b.Fatalf("scheme %v: %v", s, err)
		}
		if r.NOutput != pair.ExpectedMatches || r.KeySum != pair.KeySum {
			b.Fatalf("scheme %v: wrong result", s)
		}
		if r.RecursionDepth > maxDepth {
			maxDepth = r.RecursionDepth
		}
		return r.JoinTime
	}
	const reps = 9
	var base, grp, pipe time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bs, gs, ps []time.Duration
		for rep := 0; rep < reps; rep++ {
			bs = append(bs, run(Baseline))
			gs = append(gs, run(Group))
			ps = append(ps, run(Pipelined))
		}
		base, grp, pipe = medianDuration(bs), medianDuration(gs), medianDuration(ps)
	}
	b.StopTimer()

	traj := nativeTrajectory{
		NBuild:           nativeBenchBuild.Len(),
		NProbe:           nativeBenchProbe.Len(),
		TupleSize:        nativeBenchSpec.TupleSize,
		Fanout:           1,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		PrefetchASM:      NativeHasPrefetch(),
		RecursionDepth:   maxDepth,
		BaselineMs:       float64(base.Microseconds()) / 1e3,
		GroupMs:          float64(grp.Microseconds()) / 1e3,
		PipelinedMs:      float64(pipe.Microseconds()) / 1e3,
		GroupSpeedup:     base.Seconds() / grp.Seconds(),
		PipelinedSpeedup: base.Seconds() / pipe.Seconds(),
	}
	b.ReportMetric(traj.GroupSpeedup, "group-speedup")
	b.ReportMetric(traj.PipelinedSpeedup, "pipelined-speedup")

	if doc, err := json.MarshalIndent(traj, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_native.json", append(doc, '\n'), 0o644); err != nil {
			b.Logf("BENCH_native.json not written: %v", err)
		}
	}
}
