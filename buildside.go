package hashjoin

import (
	"context"
	"fmt"

	"hashjoin/internal/core"
	"hashjoin/internal/native"
	"hashjoin/internal/sched"
)

// BuildSide is a hash table prepared once over a relation and probed
// many times: the native join's build phase, hoisted out of the query.
// The handle is immutable after PrepareBuildSide returns — probing
// never mutates it — so any number of concurrent RunPipelineContext
// calls may share one BuildSide via WithBuildSide. The rows live on
// the Go heap, outside the Env's arena, so the handle stays valid
// across the service's quiescent window reclamations; it is released
// by dropping the last reference.
//
// A BuildSide snapshots the relation at preparation time: tuples
// appended afterwards are not visible to probes through it.
type BuildSide struct {
	env *Env
	rel *Relation
	bs  *native.BuildSide
}

// Rows returns the number of build tuples in the table.
func (b *BuildSide) Rows() int { return b.bs.NRows() }

// Bytes returns the heap footprint of the row table, in bytes.
func (b *BuildSide) Bytes() int { return b.bs.Bytes() }

// nativeSchemeOf maps a public scheme onto the native engine's, the
// same collapse the engine applies: Simple and Combined have no native
// analog and run as Baseline.
func nativeSchemeOf(s Scheme) native.Scheme {
	switch s {
	case core.SchemeGroup:
		return native.Group
	case core.SchemePipelined:
		return native.Pipelined
	default:
		return native.Baseline
	}
}

// PrepareBuildSide builds the native hash table over build once, for
// reuse across queries via WithBuildSide. The build is concurrent:
// morsel workers serialize disjoint ranges of the relation into the
// row slab, then publish them into the shared bucket directory with
// lock-free CAS. WithPipelineWorkers bounds the workers (default
// GOMAXPROCS); WithPipelineScheme and WithPipelineParams select the
// directory-prefetching strategy for the insert loop; WithTenant and
// WithTenantWeight label the work for a service Env, where the build
// is admitted like a query and runs on the shared, fairly scheduled
// pool. Other pipeline options do not apply here.
//
// The relation must have a fixed-width schema with the leading uint32
// join key (every schema NewRelation makes qualifies).
func (e *Env) PrepareBuildSide(ctx context.Context, build *Relation, opts ...PipelineOption) (b *BuildSide, err error) {
	if build.env != e {
		panic("hashjoin: relation belongs to a different Env")
	}
	pc := pipelineConfig{engine: EngineNative, scheme: Group, fanout: 1}
	for _, o := range opts {
		o(&pc)
	}
	if pc.engine != EngineNative {
		return nil, fmt.Errorf("hashjoin: PrepareBuildSide requires the native engine")
	}
	rel := build.rel
	if rel.Schema.HasVar() || rel.Schema.FixedWidth() < 4 {
		return nil, fmt.Errorf("hashjoin: PrepareBuildSide requires a fixed-width schema with a leading uint32 key")
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}

	// On a service Env the build is admitted like a query: it reads the
	// relation (so it must not interleave with an exclusive durable
	// load) and its morsels run on the shared pool under the tenant's
	// weight. The table itself is Go heap, so the granted scratch
	// window stays at the admission floor.
	var pool native.Pool
	if e.svc != nil {
		g, aerr := e.svc.Admit(ctx, sched.Request{
			Tenant: pc.tenant, Weight: pc.weight, Planned: pc.planned,
		})
		if aerr != nil {
			return nil, aerr
		}
		defer func() { g.Release(err) }()
		pool = e.svc.Pool()
	}

	entries := native.Flatten(rel, nil)
	bs, err := native.BuildRows(rel.Arena().Data(), entries, rel.Schema.FixedWidth(), native.BuildConfig{
		Scheme:  nativeSchemeOf(pc.scheme),
		G:       pc.params.G,
		D:       pc.params.D,
		Workers: pc.workers,
		Pool:    pool,
		Tenant:  pc.tenant,
		Weight:  pc.weight,
	})
	if err != nil {
		return nil, err
	}
	return &BuildSide{env: e, rel: build, bs: bs}, nil
}
