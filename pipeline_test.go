package hashjoin

// Public-API tests of the unified operator pipeline: the same Env, the
// same relations, the same plan — only WithEngine differs — must yield
// identical logical results on the simulator and on the host hardware.

import (
	"reflect"
	"testing"

	"hashjoin/internal/workload"
)

func pipelineTestEnv(t *testing.T, spec workload.Spec) (*Env, *Relation, *Relation, *workload.Pair) {
	t.Helper()
	env := NewEnv(WithSmallHierarchy(), WithCapacity(workload.ArenaBytesFor(spec)*3))
	pair := workload.Generate(env.mem.A, spec)
	return env,
		&Relation{rel: pair.Build, env: env},
		&Relation{rel: pair.Probe, env: env},
		pair
}

// mustRunPipeline fails the test on any pipeline error.
func mustRunPipeline(tb testing.TB, env *Env, build, probe *Relation, opts ...PipelineOption) PipelineResult {
	tb.Helper()
	res, err := env.RunPipeline(build, probe, opts...)
	if err != nil {
		tb.Fatalf("RunPipeline: %v", err)
	}
	return res
}

func TestRunPipelineJoinParity(t *testing.T) {
	spec := workload.Spec{NBuild: 600, TupleSize: 24, MatchesPerBuild: 2, PctMatched: 85, Seed: 31}
	for _, scheme := range []Scheme{Baseline, Group, Pipelined} {
		env, build, probe, pair := pipelineTestEnv(t, spec)
		for _, eng := range []Engine{EngineSim, EngineNative} {
			res := mustRunPipeline(t, env, build, probe,
				WithEngine(eng), WithPipelineScheme(scheme))
			if res.NOutput != pair.ExpectedMatches || res.KeySum != pair.KeySum {
				t.Errorf("%v/%v: got (%d, %d), want (%d, %d)",
					eng, scheme, res.NOutput, res.KeySum, pair.ExpectedMatches, pair.KeySum)
			}
		}
	}
}

func TestRunPipelineAggregationParity(t *testing.T) {
	spec := workload.Spec{NBuild: 500, TupleSize: 24, MatchesPerBuild: 2, Seed: 32}
	env, build, probe, pair := pipelineTestEnv(t, spec)

	sim := mustRunPipeline(t, env, build, probe,
		WithEngine(EngineSim), WithAggregation(4, spec.NBuild))
	nat := mustRunPipeline(t, env, build, probe,
		WithEngine(EngineNative), WithAggregation(4, spec.NBuild))

	if len(sim.Groups) == 0 || !reflect.DeepEqual(sim.Groups, nat.Groups) {
		t.Fatalf("groups differ between engines (sim %d, native %d)", len(sim.Groups), len(nat.Groups))
	}
	if sim.NOutput != pair.ExpectedMatches || nat.NOutput != pair.ExpectedMatches {
		t.Fatalf("NOutput sim=%d native=%d, want %d", sim.NOutput, nat.NOutput, pair.ExpectedMatches)
	}
	if sim.Stats.Total() == 0 {
		t.Error("sim pipeline reported zero cycles")
	}
	if nat.Elapsed <= 0 {
		t.Error("native pipeline reported zero elapsed time")
	}
}

func TestRunPipelineFilter(t *testing.T) {
	spec := workload.Spec{NBuild: 400, TupleSize: 20, MatchesPerBuild: 2, Seed: 33}
	env, build, probe, pair := pipelineTestEnv(t, spec)

	// A full-range filter must not change the result.
	full := mustRunPipeline(t, env, build, probe,
		WithEngine(EngineNative), WithBuildFilter(0, ^uint32(0)))
	if full.NOutput != pair.ExpectedMatches {
		t.Fatalf("full-range filter: NOutput = %d, want %d", full.NOutput, pair.ExpectedMatches)
	}
	// A half-range filter must shrink it identically on both engines.
	sim := mustRunPipeline(t, env, build, probe,
		WithEngine(EngineSim), WithBuildFilter(0, 1<<31))
	nat := mustRunPipeline(t, env, build, probe,
		WithEngine(EngineNative), WithBuildFilter(0, 1<<31))
	if sim.NOutput == 0 || sim.NOutput >= pair.ExpectedMatches {
		t.Fatalf("half-range filter should be selective, got %d of %d", sim.NOutput, pair.ExpectedMatches)
	}
	if sim.NOutput != nat.NOutput || sim.KeySum != nat.KeySum {
		t.Fatalf("filtered results differ: sim (%d, %d) vs native (%d, %d)",
			sim.NOutput, sim.KeySum, nat.NOutput, nat.KeySum)
	}
}

func TestRunPipelineMorsel(t *testing.T) {
	spec := workload.Spec{NBuild: 800, TupleSize: 20, MatchesPerBuild: 2, Seed: 34}
	env, build, probe, pair := pipelineTestEnv(t, spec)

	sim := mustRunPipeline(t, env, build, probe,
		WithEngine(EngineSim), WithAggregation(4, spec.NBuild))
	nat := mustRunPipeline(t, env, build, probe,
		WithEngine(EngineNative), WithAggregation(4, spec.NBuild),
		WithPipelineFanout(8), WithPipelineWorkers(4))
	if nat.JoinFanout != 8 {
		t.Errorf("JoinFanout = %d, want 8", nat.JoinFanout)
	}
	if !reflect.DeepEqual(sim.Groups, nat.Groups) {
		t.Fatalf("morsel-mode groups differ from sim (sim %d, native %d)", len(sim.Groups), len(nat.Groups))
	}
	if nat.NOutput != pair.ExpectedMatches || nat.KeySum != pair.KeySum {
		t.Fatalf("morsel pipeline: got (%d, %d), want (%d, %d)",
			nat.NOutput, nat.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
}

func TestRunPipelineForeignRelationPanics(t *testing.T) {
	spec := workload.Spec{NBuild: 16, TupleSize: 16, MatchesPerBuild: 1, Seed: 35}
	env1, build, _, _ := pipelineTestEnv(t, spec)
	_, _, probe2, _ := pipelineTestEnv(t, spec)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for relations from different Envs")
		}
	}()
	env1.RunPipeline(build, probe2) //nolint:errcheck // must panic before returning
}
