package hashjoin

// Hybrid-vs-GRACE benchmark: Zipf-skewed joins at fixed memory budgets
// chosen so the hottest key ranks straddle the resident/spilled
// boundary. At each skew point the same workload runs three ways — an
// unbudgeted in-memory reference (parity ground truth), the classic
// spill-everything ladder, and the adaptive hybrid policy — and the
// benchmark records total spill I/O volume and wall clock for the two
// budgeted runs. The hybrid policy keeps a budget-sized prefix of every
// spilled build side resident and joins the probe side against it
// in memory, so its I/O volume must never exceed spill-everything's,
// and on the mid-skew point (Zipf 1.0) the reduction must be at least
// 25%. Byte volumes are deterministic for a fixed seed, which makes
// those assertions safe inside a benchmark.
//
// BenchmarkHybridSkew writes BENCH_hybrid.json:
//
//	go test -run=^$ -bench BenchmarkHybridSkew -benchtime=1x .

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"hashjoin/internal/workload"
)

// hybridBenchPoint fixes one skew level and the budget that puts its
// hottest ranks over the resident line: the budget is sized in units of
// the per-row table footprint so that the top rank needs roughly two
// budget-sized chunks — the regime where skipping one resident chunk
// and one probe pass per spilled pair saves the largest I/O fraction.
type hybridBenchPoint struct {
	zipf   float64
	budget int
}

var hybridBenchPoints = []hybridBenchPoint{
	{zipf: 0.5, budget: 26880},  // ~240 rows resident per pair; top rank 256
	{zipf: 1.0, budget: 168000}, // ~1500 rows resident; top rank ~2200
	{zipf: 1.5, budget: 448000}, // ~4000 rows resident; top rank ~6500
}

const (
	hybridBenchNBuild   = 16384
	hybridBenchNProbe   = 32768
	hybridBenchTuple    = 64
	hybridBenchKeys     = 1024
	hybridBenchFanout   = 64
	hybridBenchPageSize = 4096 // small pages: page-rounding noise stays below the assertions
)

var (
	hybridBenchOnce  sync.Once
	hybridBenchEnv   *Env
	hybridBenchPairs []*workload.Pair
)

// hybridBenchRelations generates one Zipf workload per skew point into
// a shared Env. Per-run scratch is scoped to each RunPipeline call, so
// the arena's high-water mark is the three workloads plus one run.
func hybridBenchRelations(tb testing.TB) {
	hybridBenchOnce.Do(func() {
		hybridBenchEnv = NewEnv(WithSmallHierarchy(), WithCapacity(96<<20))
		for i := range hybridBenchPoints {
			spec := workload.Spec{
				NBuild:    hybridBenchNBuild,
				NProbe:    hybridBenchNProbe,
				TupleSize: hybridBenchTuple,
				ZipfS:     hybridBenchPoints[i].zipf,
				ZipfKeys:  hybridBenchKeys,
				Seed:      int64(40 + i),
			}
			hybridBenchPairs = append(hybridBenchPairs, workload.Generate(hybridBenchEnv.mem.A, spec))
		}
	})
	if hybridBenchEnv == nil {
		tb.Fatal("hybrid bench env not initialized")
	}
}

// runHybridBenchOnce runs one skew point with or without the hybrid
// policy and validates exact output parity against the workload's
// ground truth.
func runHybridBenchOnce(tb testing.TB, point int, dir string, hybrid bool) PipelineResult {
	pair := hybridBenchPairs[point]
	build := &Relation{rel: pair.Build, env: hybridBenchEnv}
	probe := &Relation{rel: pair.Probe, env: hybridBenchEnv}
	opts := []PipelineOption{
		WithEngine(EngineNative), WithPipelineFanout(hybridBenchFanout),
		WithPipelineMemBudget(hybridBenchPoints[point].budget),
		WithPipelineSpillDir(dir), WithPipelineSpillPageSize(hybridBenchPageSize),
	}
	if hybrid {
		opts = append(opts, WithPipelineHybrid())
	}
	res, err := hybridBenchEnv.RunPipeline(build, probe, opts...)
	if err != nil {
		tb.Fatalf("zipf %.1f (hybrid=%v): %v", hybridBenchPoints[point].zipf, hybrid, err)
	}
	if res.NOutput != pair.ExpectedMatches || res.KeySum != pair.KeySum {
		tb.Fatalf("zipf %.1f (hybrid=%v): wrong result (%d, %d), want (%d, %d)",
			hybridBenchPoints[point].zipf, hybrid, res.NOutput, res.KeySum,
			pair.ExpectedMatches, pair.KeySum)
	}
	if res.SpilledPartitions == 0 {
		tb.Fatalf("zipf %.1f (hybrid=%v): nothing spilled — the budget no longer straddles the hot ranks",
			hybridBenchPoints[point].zipf, hybrid)
	}
	return res
}

// hybridPoint is one skew sample in BENCH_hybrid.json.
type hybridPoint struct {
	Zipf      float64 `json:"zipf"`
	MemBudget int     `json:"mem_budget"`
	// Total spill-file I/O (written + read) of the spill-everything and
	// hybrid runs. Deterministic for the fixed seed.
	SpillIOBytes  int64 `json:"spill_io_bytes"`
	HybridIOBytes int64 `json:"hybrid_io_bytes"`
	// Wall clock, medians over interleaved repetitions.
	SpillElapsedMs  float64 `json:"spill_elapsed_ms"`
	HybridElapsedMs float64 `json:"hybrid_elapsed_ms"`
	// Hybrid-run pair accounting: pairs joined fully in memory and pairs
	// routed through the out-of-core tier.
	ResidentPairs int `json:"resident_pairs"`
	SpilledPairs  int `json:"spilled_pairs"`
}

// hybridTrajectory is the BENCH_hybrid.json document.
type hybridTrajectory struct {
	NBuild      int  `json:"n_build"`
	NProbe      int  `json:"n_probe"`
	TupleSize   int  `json:"tuple_size"`
	ZipfKeys    int  `json:"zipf_keys"`
	Fanout      int  `json:"fanout"`
	PageSize    int  `json:"page_size"`
	GOMAXPROCS  int  `json:"gomaxprocs"`
	PrefetchASM bool `json:"prefetch_asm"`
	// One point per Zipf skew level, ascending.
	Points []hybridPoint `json:"points"`
}

func totalSpillIO(r PipelineResult) int64 { return r.SpillBytesWritten + r.SpillBytesRead }

// BenchmarkHybridSkew compares the hybrid policy against the
// spill-everything tier across Zipf skew levels and emits
// BENCH_hybrid.json. Repetitions interleave the two policies so host
// and filesystem drift land on both alike, and per-policy medians are
// reported (see BenchmarkNativeSpeedup for why medians).
func BenchmarkHybridSkew(b *testing.B) {
	hybridBenchRelations(b)
	dir := b.TempDir()

	// Untimed warmup: grow every scratch pool once.
	runHybridBenchOnce(b, 0, dir, false)
	runHybridBenchOnce(b, 0, dir, true)

	const reps = 5
	n := len(hybridBenchPoints)
	spillT := make([][]time.Duration, n)
	hybridT := make([][]time.Duration, n)
	var spillRes, hybridRes = make([]PipelineResult, n), make([]PipelineResult, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range spillT {
			spillT[j], hybridT[j] = nil, nil
		}
		for rep := 0; rep < reps; rep++ {
			for j := range hybridBenchPoints {
				sr := runHybridBenchOnce(b, j, dir, false)
				hr := runHybridBenchOnce(b, j, dir, true)
				spillT[j] = append(spillT[j], sr.Elapsed)
				hybridT[j] = append(hybridT[j], hr.Elapsed)
				spillRes[j], hybridRes[j] = sr, hr
			}
		}
	}
	b.StopTimer()

	traj := hybridTrajectory{
		NBuild:      hybridBenchNBuild,
		NProbe:      hybridBenchNProbe,
		TupleSize:   hybridBenchTuple,
		ZipfKeys:    hybridBenchKeys,
		Fanout:      hybridBenchFanout,
		PageSize:    hybridBenchPageSize,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		PrefetchASM: NativeHasPrefetch(),
	}
	for j, pt := range hybridBenchPoints {
		sio, hio := totalSpillIO(spillRes[j]), totalSpillIO(hybridRes[j])
		if hio > sio {
			b.Fatalf("zipf %.1f: hybrid I/O %d exceeds spill-everything %d", pt.zipf, hio, sio)
		}
		if pt.zipf == 1.0 && float64(hio) > 0.75*float64(sio) {
			b.Fatalf("zipf 1.0: hybrid I/O %d is not >= 25%% below spill-everything %d", hio, sio)
		}
		if hybridRes[j].ResidentPartitions == 0 {
			b.Fatalf("zipf %.1f: hybrid run kept no pair resident", pt.zipf)
		}
		traj.Points = append(traj.Points, hybridPoint{
			Zipf:            pt.zipf,
			MemBudget:       pt.budget,
			SpillIOBytes:    sio,
			HybridIOBytes:   hio,
			SpillElapsedMs:  float64(medianDuration(spillT[j]).Microseconds()) / 1e3,
			HybridElapsedMs: float64(medianDuration(hybridT[j]).Microseconds()) / 1e3,
			ResidentPairs:   hybridRes[j].ResidentPartitions,
			SpilledPairs:    hybridRes[j].SpilledPartitions,
		})
	}
	mid := traj.Points[1]
	b.ReportMetric(100*(1-float64(mid.HybridIOBytes)/float64(mid.SpillIOBytes)), "%io-saved@zipf1.0")

	if doc, err := json.MarshalIndent(traj, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_hybrid.json", append(doc, '\n'), 0o644); err != nil {
			b.Logf("BENCH_hybrid.json not written: %v", err)
		}
	}
}
