package hashjoin

import (
	"context"
	"fmt"
	"time"

	"hashjoin/internal/core"
	"hashjoin/internal/native"
)

// NativeResult reports a native join: the same functional outputs as the
// simulated Result (NOutput, KeySum) with a wall-clock phase breakdown
// in place of simulated cycles.
type NativeResult struct {
	NOutput int    // output tuples produced
	KeySum  uint64 // order-independent checksum of output build keys

	NPartitions int // partition pairs joined
	Workers     int // morsel workers that served the join phase

	// RecursionDepth is the deepest recursive re-partitioning any pair
	// needed to fit the memory budget; 0 means every first-level pair fit.
	RecursionDepth int

	PartitionTime time.Duration // flatten + radix partition, both relations
	JoinTime      time.Duration // build + probe of all partition pairs
	Elapsed       time.Duration // end-to-end wall clock

	// SpilledPartitions counts partition pairs joined out of core (0:
	// everything fit the budget in memory). The byte totals cover the
	// spill tier's file I/O; the stalls are the latency its write-behind
	// and read-ahead overlap failed to hide.
	SpilledPartitions int
	SpillBytesWritten int64
	SpillBytesRead    int64
	SpillWriteStall   time.Duration
	SpillReadStall    time.Duration
}

// Breakdown formats the wall-clock phase decomposition.
func (r NativeResult) Breakdown() string {
	return fmt.Sprintf("partition %.2fms / join %.2fms (%d partitions, %d workers)",
		float64(r.PartitionTime.Microseconds())/1e3,
		float64(r.JoinTime.Microseconds())/1e3,
		r.NPartitions, r.Workers)
}

// NativeOption configures a native join.
type NativeOption func(*native.Config)

// WithNativeScheme selects the probe/build loop restructuring: Baseline,
// Group, or Pipelined. Simple is accepted and runs as Baseline — its
// whole-page prefetch has no native analog beyond the hardware's own
// next-line prefetcher. Combined is partition-phase-only and rejected.
func WithNativeScheme(s Scheme) NativeOption {
	return func(c *native.Config) { c.Scheme = nativeScheme(s) }
}

// WithNativeParams tunes the group size G and prefetch distance D. Zero
// fields keep the native defaults (native.DefaultG, native.DefaultD),
// which are bounded by the host's memory-level parallelism rather than
// the paper's simulated Theorem 1/2 optima.
func WithNativeParams(p Params) NativeOption {
	return func(c *native.Config) { c.G, c.D = p.G, p.D }
}

// WithNativeWorkers bounds the morsel worker pool (default GOMAXPROCS).
func WithNativeWorkers(n int) NativeOption {
	return func(c *native.Config) { c.Workers = n }
}

// WithNativeFanout forces the partition fan-out (rounded up to a power
// of two). 1 joins the relations as a single pair — the paper's
// join-phase experiment setup, where prefetching has the most to hide.
func WithNativeFanout(f int) NativeOption {
	return func(c *native.Config) { c.Fanout = f }
}

// WithNativeMemBudget sets the GRACE memory budget in bytes that derives
// the fan-out (default 256 MB). Setting it near the cache size turns the
// partitioner into the paper's section 7.5 cache-partitioning
// comparator. A pair no partitioning can bring under budget is joined
// out of core through disk-backed spill partitions.
func WithNativeMemBudget(bytes int) NativeOption {
	return func(c *native.Config) { c.MemBudget = bytes }
}

// WithNativeSpillDir sets the parent directory for the out-of-core spill
// area (default: the OS temp directory). The spill tier creates its own
// subdirectory per join and removes it afterwards.
func WithNativeSpillDir(dir string) NativeOption {
	return func(c *native.Config) { c.SpillDir = dir }
}

// WithNativeSpillWorkers sets the spill tier's write-behind worker count
// (default: the spill subsystem's own default).
func WithNativeSpillWorkers(n int) NativeOption {
	return func(c *native.Config) { c.SpillWorkers = n }
}

// WithNativeNoSpill disables the out-of-core tier: a partition pair
// still over budget at maximum recursion depth makes Join return a
// *native.BudgetError instead of spilling to disk.
func WithNativeNoSpill() NativeOption {
	return func(c *native.Config) { c.NoSpill = true }
}

// nativeScheme maps the public (simulator) Scheme to the native engine's.
func nativeScheme(s Scheme) native.Scheme {
	switch s {
	case Baseline, Simple:
		return native.Baseline
	case Group:
		return native.Group
	case Pipelined:
		return native.Pipelined
	case Combined:
		panic("hashjoin: SchemeCombined applies to the simulated partition phase only")
	default:
		panic(fmt.Sprintf("hashjoin: unknown scheme %v", core.Scheme(s)))
	}
}

// NativeJoiner is a resident native executor: it keeps the partition
// scratch, hash tables, and worker state of internal/native.Joiner
// alive between joins, so repeated joins run on recycled memory instead
// of regrowing the heap each call. Use one per goroutine that joins in
// a loop (benchmarks, a query server); for one-shot joins NativeJoin is
// equivalent.
type NativeJoiner struct {
	jn *native.Joiner
}

// NewNativeJoiner returns an executor with empty buffers; they grow on
// first use and are recycled afterwards.
func NewNativeJoiner() *NativeJoiner {
	return &NativeJoiner{jn: native.NewJoiner()}
}

// Join joins two relations directly on the host hardware — real memory,
// real caches, real PREFETCHT0 on amd64 — instead of under the cycle
// simulator. The relations must belong to the same Env. For the same
// workload, native Join and Env.Join produce identical NOutput and
// KeySum for every scheme; the native result's times are wall clock.
// A partition pair over the memory budget is re-partitioned recursively,
// and a pair no partitioning can shrink (heavy key skew) is joined out
// of core through disk-backed spill partitions; Join returns a
// *native.BudgetError only under WithNativeNoSpill.
func (e *NativeJoiner) Join(build, probe *Relation, opts ...NativeOption) (NativeResult, error) {
	return e.JoinContext(context.Background(), build, probe, opts...)
}

// JoinContext is Join under a context: morsel workers check it before
// claiming each partition pair and the spill tier checks it at page
// boundaries, so cancellation or deadline expiry stops the join within
// one pair claim or spill page. A cancelled join returns a *CancelError
// that matches both ErrCancelled and the context's own error, and
// reports how many partition pairs had completed.
func (e *NativeJoiner) JoinContext(ctx context.Context, build, probe *Relation, opts ...NativeOption) (NativeResult, error) {
	if build.env == nil || build.env != probe.env {
		panic("hashjoin: NativeJoin relations must share an Env")
	}
	cfg := native.Config{Scheme: native.Group, Ctx: ctx}
	for _, o := range opts {
		o(&cfg)
	}
	r, err := e.jn.Join(build.rel, probe.rel, cfg)
	if err != nil {
		return NativeResult{}, err
	}
	return NativeResult{
		NOutput:           r.NOutput,
		KeySum:            r.KeySum,
		NPartitions:       r.NPartitions,
		Workers:           r.Workers,
		RecursionDepth:    r.RecursionDepth,
		PartitionTime:     r.PartitionTime,
		JoinTime:          r.JoinTime,
		Elapsed:           r.Elapsed,
		SpilledPartitions: r.SpilledPartitions,
		SpillBytesWritten: r.SpillBytesWritten,
		SpillBytesRead:    r.SpillBytesRead,
		SpillWriteStall:   r.SpillWriteStall,
		SpillReadStall:    r.SpillReadStall,
	}, nil
}

// NativeJoin is the one-shot form of NativeJoiner.Join.
func NativeJoin(build, probe *Relation, opts ...NativeOption) (NativeResult, error) {
	return NewNativeJoiner().Join(build, probe, opts...)
}

// NativeHasPrefetch reports whether this build issues real PREFETCHT0
// instructions (amd64 without the purego tag) or the pure-Go no-op
// fallback.
func NativeHasPrefetch() bool { return native.HavePrefetch }
