package hashjoin

// One benchmark per reproduced table/figure (see DESIGN.md's
// per-experiment index) plus ablation benches for the design decisions
// the reproduction calls out. Benchmarks run the tiny scale so the whole
// suite completes in minutes; regenerate paper-scale numbers with
//
//	go run ./cmd/hjbench -all -scale full
//
// Custom metrics report the figures' headline quantities (speedups,
// stall fractions) alongside wall-clock ns/op of the simulation itself.

import (
	"io"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/exp"
	jhash "hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

// benchScale keeps `go test -bench=.` fast while preserving every
// qualitative relationship; see exp.TinyScale.
func benchScale() exp.Scale { return exp.TinyScale() }

// runFig executes a registered experiment b.N times.
func runFig(b *testing.B, id string) {
	e, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for range e.Run(benchScale()) {
		}
	}
}

func BenchmarkFig01Breakdown(b *testing.B) {
	b.ReportAllocs()
	var frac float64
	for i := 0; i < b.N; i++ {
		t := exp.Fig01(benchScale())
		frac = t.Rows[1].Values[1] // join dcache%
	}
	b.ReportMetric(frac, "join-dcache-%")
}

func BenchmarkFig09IOBound(b *testing.B) { runFig(b, "fig9") }

func BenchmarkFig10aTupleSize(b *testing.B) {
	b.ReportAllocs()
	var speedup float64
	for i := 0; i < b.N; i++ {
		t := exp.Fig10a(benchScale())
		base, group := t.Series("baseline"), t.Series("group")
		speedup = base[2] / group[2] // 100B pivot
	}
	b.ReportMetric(speedup, "group-speedup-100B")
}

func BenchmarkFig10bMatches(b *testing.B)  { runFig(b, "fig10b") }
func BenchmarkFig10cPctMatch(b *testing.B) { runFig(b, "fig10c") }

func BenchmarkFig11JoinBreakdown(b *testing.B) { runFig(b, "fig11") }

func BenchmarkFig12Tuning(b *testing.B)        { runFig(b, "fig12") }
func BenchmarkFig13MissBreakdown(b *testing.B) { runFig(b, "fig13") }

func BenchmarkFig14aPartitions(b *testing.B) {
	b.ReportAllocs()
	var speedup float64
	for i := 0; i < b.N; i++ {
		t := exp.Fig14a(benchScale())
		base, group := t.Series("baseline"), t.Series("group")
		speedup = base[len(base)-1] / group[len(group)-1]
	}
	b.ReportMetric(speedup, "group-speedup-800p")
}

func BenchmarkFig14bRelSize(b *testing.B)      { runFig(b, "fig14b") }
func BenchmarkFig15PartBreakdown(b *testing.B) { runFig(b, "fig15") }
func BenchmarkFig16PartTuning(b *testing.B)    { runFig(b, "fig16") }
func BenchmarkFig17PartMiss(b *testing.B)      { runFig(b, "fig17") }

func BenchmarkFig18Flush(b *testing.B) {
	b.ReportAllocs()
	var groupDegrade, directDegrade float64
	for i := 0; i < b.N; i++ {
		t := exp.Fig18(benchScale())
		last := t.Rows[len(t.Rows)-1]
		groupDegrade = last.Values[0] - 100
		directDegrade = last.Values[2] - 100
	}
	b.ReportMetric(groupDegrade, "group-degrade-%")
	b.ReportMetric(directDegrade, "direct-cache-degrade-%")
}

func BenchmarkFig19Overall(b *testing.B)   { runFig(b, "fig19") }
func BenchmarkFig19dPctMatch(b *testing.B) { runFig(b, "fig19d") }

// BenchmarkModelVsSim compares the Theorem 1/2 analytical optima with a
// measured sweep: the simulated optimum must lie near the model's.
func BenchmarkModelVsSim(b *testing.B) {
	sc := benchScale()
	params := OptimalParamsFor(sc.Cfg.MemLatency, sc.Cfg.MemNextLatency)
	b.ReportMetric(float64(params.G), "model-G")
	b.ReportMetric(float64(params.D), "model-D")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := NewEnv(WithHierarchy(sc.Cfg), WithCapacity(64<<20))
		build, probe := benchRelations(env, 4000, 60)
		res, err := env.Join(build, probe, WithParams(params))
		if err != nil {
			b.Fatal(err)
		}
		if res.NOutput == 0 {
			b.Fatal("no output")
		}
	}
}

// benchRelations builds a matched pair of relations through the public
// API.
func benchRelations(env *Env, n, tupleSize int) (*Relation, *Relation) {
	build := env.NewRelation(tupleSize)
	probe := env.NewRelation(tupleSize)
	payload := make([]byte, tupleSize-4)
	for i := 0; i < n; i++ {
		k := uint32(i)*2654435761 | 1
		build.Append(k, payload)
		probe.Append(k, payload)
		probe.Append(k, payload)
	}
	return build, probe
}

// BenchmarkAblationDirectVsArena measures the cost of the simulation
// substrate itself: the same join executed timed (through vmem+memsim)
// versus untimed (direct arena operations on the same structures).
func BenchmarkAblationDirectVsArena(b *testing.B) {
	spec := workload.Spec{NBuild: 20000, TupleSize: 60, MatchesPerBuild: 2, PctMatched: 100, Seed: 7}

	b.Run("simulated", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := arena.New(workload.ArenaBytesFor(spec))
			pair := workload.Generate(a, spec)
			m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
			res := core.JoinPair(m, pair.Build, pair.Probe, core.SchemeGroup, core.DefaultParams(), 1, false)
			if res.NOutput != pair.ExpectedMatches {
				b.Fatal("wrong join result")
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := arena.New(workload.ArenaBytesFor(spec))
			pair := workload.Generate(a, spec)
			tbl := jhash.NewTable(a, jhash.SizeFor(pair.Build.NTuples, 1))
			pair.Build.Each(func(t []byte, code uint32) {
				// Addresses are irrelevant untimed; store the key.
				tbl.Insert(a, jhash.BucketOf(code, tbl.NBuckets), code, arena.Addr(pair.Build.Schema.Key(t))+arena.Base)
			})
			matches := 0
			pair.Probe.Each(func(t []byte, code uint32) {
				key := pair.Probe.Schema.Key(t)
				tbl.Lookup(a, jhash.BucketOf(code, tbl.NBuckets), code, func(tp arena.Addr) {
					if uint32(tp-arena.Base) == key {
						matches++
					}
				})
			})
			if matches != pair.ExpectedMatches {
				b.Fatal("wrong direct join result")
			}
		}
	})
}

// BenchmarkAblationChainedBucket contrasts the paper's Figure 2 layout
// (inline first cell + contiguous overflow array) with classic chained
// bucket hashing, both group-prefetched, under a skewed key distribution
// that makes buckets hold several cells. The chain walk is a dependent
// pointer chase that prefetching cannot cover (paper section 3, fn 3).
func BenchmarkAblationChainedBucket(b *testing.B) {
	spec := workload.Spec{NBuild: 12000, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 17, Skew: 8}
	var ratio float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a1 := arena.New(workload.ArenaBytesFor(spec) * 2)
		p1 := workload.Generate(a1, spec)
		m1 := vmem.New(a1, memsim.NewSim(memsim.SmallConfig()))
		chained := core.JoinPairChained(m1, p1.Build, p1.Probe, core.SchemeGroup, core.DefaultParams())

		a2 := arena.New(workload.ArenaBytesFor(spec) * 2)
		p2 := workload.Generate(a2, spec)
		m2 := vmem.New(a2, memsim.NewSim(memsim.SmallConfig()))
		array := core.JoinPair(m2, p2.Build, p2.Probe, core.SchemeGroup, core.DefaultParams(), 1, false)
		ratio = float64(chained.ProbeStats.Total()) / float64(array.ProbeStats.Total())
	}
	b.ReportMetric(ratio, "chained/array-probe-cycles")
}

// BenchmarkAblationHashCodeReuse toggles the section 7.1 memoization of
// hash codes in intermediate partition slots.
func BenchmarkAblationHashCodeReuse(b *testing.B) {
	spec := workload.Spec{NBuild: 20000, TupleSize: 60, MatchesPerBuild: 2, PctMatched: 100, Seed: 11}
	measure := func(recompute bool) uint64 {
		a := arena.New(workload.ArenaBytesFor(spec))
		pair := workload.Generate(a, spec)
		m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
		p := core.DefaultParams()
		p.RecomputeHash = recompute
		return core.JoinPair(m, pair.Build, pair.Probe, core.SchemeGroup, p, 1, false).Cycles()
	}
	var overhead float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		overhead = float64(measure(true))/float64(measure(false)) - 1
	}
	b.ReportMetric(overhead*100, "recompute-overhead-%")
}

// BenchmarkSkew exercises the read-write conflict machinery under a
// heavily skewed build key distribution.
func BenchmarkSkew(b *testing.B) {
	spec := workload.Spec{NBuild: 10000, TupleSize: 60, MatchesPerBuild: 1, PctMatched: 100, Seed: 13, Skew: 50}
	for _, sch := range []struct {
		name   string
		scheme core.Scheme
	}{{"group", core.SchemeGroup}, {"pipelined", core.SchemePipelined}} {
		b.Run(sch.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := arena.New(workload.ArenaBytesFor(spec) * 4)
				pair := workload.Generate(a, spec)
				m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
				res := core.JoinPair(m, pair.Build, pair.Probe, sch.scheme, core.DefaultParams(), 1, false)
				if res.NOutput != pair.ExpectedMatches {
					b.Fatal("wrong join result under skew")
				}
			}
		})
	}
}

// BenchmarkAggregation measures the paper's proposed extension:
// hash-based group-by under baseline vs group prefetching.
func BenchmarkAggregation(b *testing.B) {
	build := func() (*Env, *Relation) {
		env := NewEnv(WithSmallHierarchy(), WithCapacity(128<<20))
		rel := env.NewRelation(20)
		payload := make([]byte, 16)
		for i := 0; i < 30000; i++ {
			payload[0] = byte(i)
			rel.Append(uint32(i%12000)*2654435761|1, payload)
		}
		return env, rel
	}
	var base, grp uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		envB, relB := build()
		_, sb := envB.Aggregate(relB, 12000, WithScheme(Baseline))
		envG, relG := build()
		_, sg := envG.Aggregate(relG, 12000, WithScheme(Group))
		base, grp = sb.Total(), sg.Total()
	}
	b.ReportMetric(float64(base)/float64(grp), "group-speedup")
}

// BenchmarkPublicAPIQuickstart measures the documented quick-start path.
func BenchmarkPublicAPIQuickstart(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := NewEnv(WithSmallHierarchy(), WithCapacity(64<<20))
		build, probe := benchRelations(env, 5000, 100)
		res, err := env.Join(build, probe, WithScheme(Group))
		if err != nil {
			b.Fatal(err)
		}
		if res.NOutput != 10000 {
			b.Fatalf("NOutput = %d", res.NOutput)
		}
	}
}

// BenchmarkRunExperimentAPI exercises the public experiment runner.
func BenchmarkRunExperimentAPI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := RunExperiment(io.Discard, "fig11", "tiny"); err != nil {
			b.Fatal(err)
		}
	}
}
