package hashjoin

import (
	"bytes"
	"strings"
	"testing"
)

// smallEnv returns a test environment with the scaled hierarchy.
func smallEnv() *Env {
	return NewEnv(WithSmallHierarchy(), WithCapacity(64<<20))
}

// fillPair appends n matched tuples to both relations (two probes per
// build tuple) and m probe-only tuples.
func fillPair(build, probe *Relation, n, misses, tupleSize int) {
	payload := make([]byte, tupleSize-4)
	for i := 0; i < n; i++ {
		key := uint32(i)*2654435761 | 1
		build.Append(key, payload)
		probe.Append(key, payload)
		probe.Append(key, payload)
	}
	for i := 0; i < misses; i++ {
		probe.Append(uint32(i)*2654435761&^1, payload) // even: never matches
	}
}

// mustJoin drains the Join error for tests that assert on the result.
func mustJoin(tb testing.TB, env *Env, build, probe *Relation, opts ...JoinOption) Result {
	tb.Helper()
	res, err := env.Join(build, probe, opts...)
	if err != nil {
		tb.Fatalf("Join: %v", err)
	}
	return res
}

func TestJoinAPISchemes(t *testing.T) {
	for _, scheme := range []Scheme{Baseline, Simple, Group, Pipelined} {
		env := smallEnv()
		build := env.NewRelation(60)
		probe := env.NewRelation(60)
		fillPair(build, probe, 500, 100, 60)
		res := mustJoin(t, env, build, probe, WithScheme(scheme))
		if res.NOutput != 1000 {
			t.Errorf("%v: NOutput = %d, want 1000", scheme, res.NOutput)
		}
		if res.TotalCycles() == 0 {
			t.Errorf("%v: no simulated time charged", scheme)
		}
		if res.NPartitions != 1 {
			t.Errorf("%v: direct join reported %d partitions", scheme, res.NPartitions)
		}
	}
}

func TestJoinAPIEndToEnd(t *testing.T) {
	env := smallEnv()
	build := env.NewRelation(100)
	probe := env.NewRelation(100)
	fillPair(build, probe, 5000, 0, 100)
	res := mustJoin(t, env, build, probe, WithScheme(Group), WithMemBudget(128<<10))
	if res.NOutput != 10000 {
		t.Fatalf("NOutput = %d, want 10000", res.NOutput)
	}
	if res.NPartitions < 2 {
		t.Fatalf("expected multiple partitions with a 128KB budget, got %d", res.NPartitions)
	}
	if res.PartitionStats.Total() == 0 {
		t.Fatal("partition phase charged no time")
	}
}

func TestKeepOutputIteration(t *testing.T) {
	env := smallEnv()
	build := env.NewRelation(20)
	probe := env.NewRelation(20)
	fillPair(build, probe, 50, 0, 20)
	res := mustJoin(t, env, build, probe, WithScheme(Group), KeepOutput())
	count := 0
	res.EachOutput(func(tuple []byte) {
		if len(tuple) != 40 {
			t.Fatalf("output tuple %d bytes, want 40", len(tuple))
		}
		count++
	})
	if count != res.NOutput {
		t.Fatalf("iterated %d tuples, NOutput = %d", count, res.NOutput)
	}
}

func TestPartitionAPI(t *testing.T) {
	env := smallEnv()
	rel := env.NewRelation(40)
	payload := make([]byte, 36)
	for i := 0; i < 2000; i++ {
		rel.Append(uint32(i)*2654435761, payload)
	}
	counts, stats := env.Partition(rel, 16)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 2000 {
		t.Fatalf("partitions hold %d tuples, want 2000", total)
	}
	if stats.Total() == 0 {
		t.Fatal("partition phase charged no time")
	}
}

func TestJoinRejectsForeignRelation(t *testing.T) {
	env1, env2 := smallEnv(), smallEnv()
	r1 := env1.NewRelation(20)
	r2 := env2.NewRelation(20)
	defer func() {
		if recover() == nil {
			t.Fatal("joining relations from different Envs should panic")
		}
	}()
	env1.Join(r1, r2) //nolint:errcheck // must panic before returning
}

func TestBreakdownFormat(t *testing.T) {
	env := smallEnv()
	build := env.NewRelation(60)
	probe := env.NewRelation(60)
	fillPair(build, probe, 300, 0, 60)
	res := mustJoin(t, env, build, probe)
	s := res.Breakdown()
	for _, want := range []string{"busy", "dcache", "dtlb", "other"} {
		if !strings.Contains(s, want) {
			t.Errorf("Breakdown() = %q, missing %s", s, want)
		}
	}
}

func TestOptimalParamsSane(t *testing.T) {
	p := OptimalParamsFor(150, 10)
	if p.G < 4 || p.G > 32 {
		t.Errorf("OptimalParamsFor(150,10).G = %d, want near the paper's 19", p.G)
	}
	if p.D < 1 || p.D > 8 {
		t.Errorf("OptimalParamsFor(150,10).D = %d", p.D)
	}
	big := OptimalParamsFor(1000, 10)
	if big.G <= p.G {
		t.Errorf("optimal G should grow with latency: %d vs %d", p.G, big.G)
	}
	env := smallEnv()
	if env.OptimalParams().G == 0 {
		t.Error("Env.OptimalParams returned G=0")
	}
}

func TestGroupBeatsBaselineViaAPI(t *testing.T) {
	cycles := map[Scheme]uint64{}
	for _, scheme := range []Scheme{Baseline, Group} {
		env := smallEnv()
		build := env.NewRelation(100)
		probe := env.NewRelation(100)
		fillPair(build, probe, 8000, 0, 100)
		cycles[scheme] = mustJoin(t, env, build, probe, WithScheme(scheme)).TotalCycles()
	}
	if s := float64(cycles[Baseline]) / float64(cycles[Group]); s < 1.5 {
		t.Errorf("group speedup via API = %.2f, want >= 1.5", s)
	}
}

func TestCacheFlushingOption(t *testing.T) {
	env := NewEnv(WithSmallHierarchy(), WithCacheFlushing(100_000), WithCapacity(64<<20))
	build := env.NewRelation(60)
	probe := env.NewRelation(60)
	fillPair(build, probe, 2000, 0, 60)
	res := mustJoin(t, env, build, probe, WithScheme(Group))
	if res.NOutput != 4000 {
		t.Fatalf("flushed join produced %d outputs", res.NOutput)
	}
	if env.Stats().Flushes == 0 {
		t.Fatal("no flushes recorded despite WithCacheFlushing")
	}
}

func TestAggregateAPISchemes(t *testing.T) {
	for _, scheme := range []Scheme{Baseline, Simple, Group, Pipelined} {
		env := smallEnv()
		rel := env.NewRelation(16)
		val := []byte{5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
		for i := 0; i < 900; i++ {
			rel.Append(uint32(i%90)*2654435761|1, val)
		}
		groups, stats := env.Aggregate(rel, 90, WithScheme(scheme))
		if len(groups) != 90 {
			t.Errorf("%v: %d groups, want 90", scheme, len(groups))
			continue
		}
		for _, g := range groups {
			if g.Count != 10 || g.Sum != 50 {
				t.Errorf("%v: group %#x = (%d,%d), want (10,50)", scheme, g.Key, g.Count, g.Sum)
			}
		}
		if stats.Total() == 0 {
			t.Errorf("%v: aggregation charged no time", scheme)
		}
	}
}

func TestRunExperimentAPI(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "fig11", "tiny"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "baseline") {
		t.Fatalf("experiment output missing series: %s", buf.String())
	}
	if err := RunExperiment(&buf, "nope", "tiny"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := RunExperiment(&buf, "fig11", "nope"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestExperimentIDsExposed(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 16 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
}

func TestAppendPadsAndTruncatesPayload(t *testing.T) {
	env := smallEnv()
	r := env.NewRelation(12)
	r.Append(7, []byte("way-too-long-payload"))
	r.Append(8, nil)
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}
