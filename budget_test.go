package hashjoin

// Tests for the memory governor: resident-Env stability (per-run
// scratch is scoped and reclaimed, so arena usage does not creep across
// runs), graceful budget degradation (a budget below the natural build
// footprint forces recursive re-partitioning without changing the
// result), and graceful exhaustion (an infeasible budget surfaces as an
// error — never a panic, never a leaked worker goroutine).

import (
	"errors"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/native"
	"hashjoin/internal/workload"
)

// TestRunPipelineArenaStable is the resident-Env contract: ten
// consecutive RunPipeline calls on one Env leave arena Used() exactly
// where the first run left it, and every run produces byte-identical
// groups — on both engines, streaming and morsel.
func TestRunPipelineArenaStable(t *testing.T) {
	spec := workload.Spec{NBuild: 400, TupleSize: 20, MatchesPerBuild: 2, PctMatched: 90, Seed: 41}
	for _, tc := range []struct {
		name   string
		engine Engine
		fanout int
	}{
		{"sim", EngineSim, 1},
		{"native-stream", EngineNative, 1},
		{"native-morsel", EngineNative, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env, build, probe, pair := pipelineTestEnv(t, spec)
			run := func() PipelineResult {
				return mustRunPipeline(t, env, build, probe,
					WithEngine(tc.engine), WithPipelineFanout(tc.fanout),
					WithPipelineWorkers(2), WithAggregation(4, spec.NBuild))
			}
			first := run()
			if first.NOutput != pair.ExpectedMatches {
				t.Fatalf("NOutput = %d, want %d", first.NOutput, pair.ExpectedMatches)
			}
			used := env.mem.A.Used()
			for i := 2; i <= 10; i++ {
				res := run()
				if got := env.mem.A.Used(); got != used {
					t.Fatalf("run %d: arena Used() = %d, want %d (scratch leaked)", i, got, used)
				}
				if !reflect.DeepEqual(res.Groups, first.Groups) {
					t.Fatalf("run %d: groups differ from run 1", i)
				}
			}
		})
	}
}

// TestRunPipelineBudgetRepartitions sets a budget below the build
// side's natural footprint: the native streaming join must degrade to
// the partitioned strategy and re-partition recursively, with groups
// byte-identical to the unbudgeted run.
func TestRunPipelineBudgetRepartitions(t *testing.T) {
	spec := workload.Spec{NBuild: 30000, TupleSize: 24, MatchesPerBuild: 2, PctMatched: 90, Seed: 42}
	env, build, probe, pair := pipelineTestEnv(t, spec)

	free := mustRunPipeline(t, env, build, probe,
		WithEngine(EngineNative), WithAggregation(4, spec.NBuild))
	if free.JoinFanout != 1 || free.JoinRecursionDepth != 0 {
		t.Fatalf("unbudgeted run should stream: fanout %d, depth %d",
			free.JoinFanout, free.JoinRecursionDepth)
	}

	budget := 256 << 10
	if native.BuildFootprint(spec.NBuild, spec.TupleSize) <= budget {
		t.Fatalf("test budget %d does not undercut the build footprint %d",
			budget, native.BuildFootprint(spec.NBuild, spec.TupleSize))
	}
	tight := mustRunPipeline(t, env, build, probe,
		WithEngine(EngineNative), WithAggregation(4, spec.NBuild),
		WithPipelineMemBudget(budget), WithPipelineWorkers(4))
	if tight.JoinRecursionDepth < 1 {
		t.Errorf("budget %d should force recursive re-partitioning, depth = %d",
			budget, tight.JoinRecursionDepth)
	}
	if tight.NOutput != pair.ExpectedMatches || tight.KeySum != pair.KeySum {
		t.Errorf("budgeted run: got (%d, %d), want (%d, %d)",
			tight.NOutput, tight.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
	if !reflect.DeepEqual(free.Groups, tight.Groups) {
		t.Error("budgeted groups differ from unbudgeted groups")
	}
}

// waitForGoroutines retries until the goroutine count is back at (or
// below) base, failing the test if workers are still alive after 2s.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d alive, want <= %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunPipelineBudgetInfeasible joins a fully skewed build side (one
// key, one hash code — no partitioning can split it) under a budget it
// cannot meet, with the out-of-core tier disabled: RunPipeline must
// return a *native.BudgetError, not panic, and every morsel worker must
// exit. (With spilling left on, the same join completes — see
// TestRunPipelineSpillsToDisk.)
func TestRunPipelineBudgetInfeasible(t *testing.T) {
	spec := workload.Spec{NBuild: 4000, TupleSize: 20, MatchesPerBuild: 1, Skew: 4000, Seed: 43}
	env, build, probe, _ := pipelineTestEnv(t, spec)
	base := runtime.NumGoroutine()

	_, err := env.RunPipeline(build, probe,
		WithEngine(EngineNative), WithPipelineFanout(4),
		WithPipelineWorkers(4), WithPipelineMemBudget(4<<10),
		WithPipelineNoSpill())
	var be *native.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *native.BudgetError", err)
	}
	if be.Budget != 4<<10 || be.Need <= be.Budget {
		t.Errorf("implausible budget error: %+v", be)
	}
	waitForGoroutines(t, base)

	// The Env survives: the failed run's scratch was scoped, so an
	// unbudgeted retry on the same Env succeeds.
	if _, err := env.RunPipeline(build, probe, WithEngine(EngineNative)); err != nil {
		t.Fatalf("retry after budget failure: %v", err)
	}
}

// TestRunPipelineSpillsToDisk is the final tier of the degradation
// ladder end to end: a fully skewed join that recursion cannot split,
// under an infeasible budget, completes out of core with groups
// byte-identical to the unbudgeted run — and repeated spilling runs on
// one Env keep arena usage stable and leave no files behind.
func TestRunPipelineSpillsToDisk(t *testing.T) {
	spec := workload.Spec{NBuild: 1200, TupleSize: 20, MatchesPerBuild: 1, Skew: 1200, Seed: 45}
	env := NewEnv(WithSmallHierarchy(), WithCapacity(workload.ArenaBytesFor(spec)*3+(1<<20)))
	pair := workload.Generate(env.mem.A, spec)
	build := &Relation{rel: pair.Build, env: env}
	probe := &Relation{rel: pair.Probe, env: env}
	dir := t.TempDir()
	base := runtime.NumGoroutine()

	free := mustRunPipeline(t, env, build, probe,
		WithEngine(EngineNative), WithAggregation(4, spec.NBuild))

	spillOpts := []PipelineOption{
		WithEngine(EngineNative), WithAggregation(4, spec.NBuild),
		WithPipelineFanout(4), WithPipelineWorkers(4),
		WithPipelineMemBudget(4 << 10),
		WithPipelineSpillDir(dir), WithPipelineSpillWorkers(2),
	}
	first := mustRunPipeline(t, env, build, probe, spillOpts...)
	if first.SpilledPartitions == 0 || first.SpillBytesWritten == 0 || first.SpillBytesRead == 0 {
		t.Fatalf("infeasible skewed budget did not spill: %+v", first)
	}
	if first.NOutput != pair.ExpectedMatches || first.KeySum != pair.KeySum {
		t.Fatalf("spilled run: got (%d, %d), want (%d, %d)",
			first.NOutput, first.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
	if !reflect.DeepEqual(free.Groups, first.Groups) {
		t.Fatal("spilled groups differ from unbudgeted groups")
	}

	used := env.mem.A.Used()
	for i := 2; i <= 4; i++ {
		res := mustRunPipeline(t, env, build, probe, spillOpts...)
		if got := env.mem.A.Used(); got != used {
			t.Fatalf("run %d: arena Used() = %d, want %d (spill scratch leaked)", i, got, used)
		}
		if !reflect.DeepEqual(res.Groups, first.Groups) {
			t.Fatalf("run %d: groups differ from run 1", i)
		}
		ents, err := os.ReadDir(dir)
		if err != nil || len(ents) != 0 {
			t.Fatalf("run %d: orphaned spill files: %v %v", i, ents, err)
		}
	}
	waitForGoroutines(t, base)
}

// TestRunPipelineArenaExhaustionReturnsError drives the Env's own
// allocation budget (WithArenaBudget's mechanism) below what a run
// needs: the pipeline must fail with a *arena.OOMError carrying the
// usage breakdown, the scoped scratch must be rolled back, and lifting
// the budget must make the same Env work again.
func TestRunPipelineArenaExhaustionReturnsError(t *testing.T) {
	spec := workload.Spec{NBuild: 2000, TupleSize: 24, MatchesPerBuild: 2, Seed: 44}
	env, build, probe, pair := pipelineTestEnv(t, spec)
	base := runtime.NumGoroutine()

	mark := env.mem.A.Used()
	env.mem.A.SetBudget(mark + 512) // room for almost nothing
	_, err := env.RunPipeline(build, probe,
		WithEngine(EngineNative), WithAggregation(4, spec.NBuild),
		WithPipelineFanout(4), WithPipelineWorkers(2))
	var oom *arena.OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v, want *arena.OOMError", err)
	}
	if oom.Budget != mark+512 {
		t.Errorf("OOMError.Budget = %d, want %d", oom.Budget, mark+512)
	}
	if got := env.mem.A.Used(); got != mark {
		t.Errorf("failed run left Used() = %d, want %d (scope not released)", got, mark)
	}
	waitForGoroutines(t, base)

	env.mem.A.SetBudget(0) // lift the ceiling
	res := mustRunPipeline(t, env, build, probe,
		WithEngine(EngineNative), WithAggregation(4, spec.NBuild))
	if res.NOutput != pair.ExpectedMatches {
		t.Fatalf("post-recovery run: NOutput = %d, want %d", res.NOutput, pair.ExpectedMatches)
	}
}

// TestJoinArenaBudgetOption covers the public WithArenaBudget path on
// the simulator backend: exhaustion surfaces as an error from Env.Join,
// and the failed join's scratch is reclaimed.
func TestJoinArenaBudgetOption(t *testing.T) {
	env := NewEnv(WithSmallHierarchy(), WithCapacity(64<<20), WithArenaBudget(1<<20))
	if got := env.mem.A.Budget(); got != 1<<20 {
		t.Fatalf("WithArenaBudget not applied: Budget() = %d", got)
	}
	build := env.NewRelation(60)
	probe := env.NewRelation(60)
	fillPair(build, probe, 2000, 0, 60)
	mark := env.mem.A.Used()
	env.mem.A.SetBudget(mark + (4 << 10)) // relations fit; join scratch will not

	_, err := env.Join(build, probe, WithScheme(Group))
	var oom *arena.OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v, want *arena.OOMError", err)
	}
	if got := env.mem.A.Used(); got != mark {
		t.Errorf("failed join left Used() = %d, want %d", got, mark)
	}

	env.mem.A.SetBudget(0)
	res := mustJoin(t, env, build, probe, WithScheme(Group))
	if res.NOutput != 4000 {
		t.Fatalf("post-recovery join: NOutput = %d, want 4000", res.NOutput)
	}
}

// TestRunPipelineValidatesParams pins the API-boundary validation:
// negative G or D is a configuration error, zero fields select backend
// defaults and run to the correct result on both engines.
func TestRunPipelineValidatesParams(t *testing.T) {
	spec := workload.Spec{NBuild: 200, TupleSize: 16, MatchesPerBuild: 2, Seed: 45}
	env, build, probe, pair := pipelineTestEnv(t, spec)

	if _, err := env.RunPipeline(build, probe, WithPipelineParams(Params{G: -1})); err == nil {
		t.Error("negative G accepted")
	}
	if _, err := env.RunPipeline(build, probe, WithPipelineParams(Params{D: -2})); err == nil {
		t.Error("negative D accepted")
	}
	if _, err := env.RunPipeline(build, probe, WithPipelineMemBudget(-1)); err == nil {
		t.Error("negative MemBudget accepted")
	}
	for _, eng := range []Engine{EngineSim, EngineNative} {
		for _, p := range []Params{{}, {G: 7}, {D: 3}} {
			res := mustRunPipeline(t, env, build, probe,
				WithEngine(eng), WithPipelineScheme(Pipelined), WithPipelineParams(p))
			if res.NOutput != pair.ExpectedMatches || res.KeySum != pair.KeySum {
				t.Errorf("%v %+v: got (%d, %d), want (%d, %d)",
					eng, p, res.NOutput, res.KeySum, pair.ExpectedMatches, pair.KeySum)
			}
		}
	}
}
