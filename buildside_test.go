package hashjoin

// The cached build-side contract: PrepareBuildSide's concurrently
// built table, probed through WithBuildSide, produces exactly the
// results a per-query build produces — including with 8 concurrent
// tenants sharing one handle on a service Env, under -race — and the
// option's preconditions fail loudly instead of probing garbage.

import (
	"context"
	"strings"
	"sync"
	"testing"

	"hashjoin/internal/fault"
)

func TestBuildSideReuseParity(t *testing.T) {
	env := NewEnv(WithSmallHierarchy(), WithCapacity(64<<20))
	ctx := context.Background()
	w, err := env.GenerateWorkload(ctx, 4000, 8000, 40, 7)
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}

	ref, err := env.RunPipeline(w.Build, w.Probe, WithEngine(EngineNative))
	if err != nil {
		t.Fatalf("per-query build run: %v", err)
	}
	if ref.NOutput != w.ExpectedMatches || ref.KeySum != w.KeySum {
		t.Fatalf("reference run = (%d, %d), want (%d, %d)", ref.NOutput, ref.KeySum, w.ExpectedMatches, w.KeySum)
	}

	b, err := env.PrepareBuildSide(ctx, w.Build, WithPipelineWorkers(4))
	if err != nil {
		t.Fatalf("PrepareBuildSide: %v", err)
	}
	if b.Rows() != w.Build.Len() || b.Bytes() == 0 {
		t.Fatalf("handle reports %d rows / %d bytes for a %d-tuple build", b.Rows(), b.Bytes(), w.Build.Len())
	}

	// Every scheme probes the one shared table; aggregation composes.
	for _, scheme := range []Scheme{Baseline, Group, Pipelined} {
		got, err := env.RunPipeline(w.Build, w.Probe,
			WithEngine(EngineNative), WithBuildSide(b), WithPipelineScheme(scheme))
		if err != nil {
			t.Fatalf("%v cached run: %v", scheme, err)
		}
		if got.NOutput != ref.NOutput || got.KeySum != ref.KeySum {
			t.Fatalf("%v cached run = (%d, %d), want (%d, %d)", scheme, got.NOutput, got.KeySum, ref.NOutput, ref.KeySum)
		}
	}
	agg, err := env.RunPipeline(w.Build, w.Probe,
		WithEngine(EngineNative), WithBuildSide(b), WithAggregation(4, 8192))
	if err != nil {
		t.Fatalf("cached aggregation run: %v", err)
	}
	if agg.NOutput != ref.NOutput || agg.KeySum != ref.KeySum || len(agg.Groups) == 0 {
		t.Fatalf("cached aggregation = (%d, %d, %d groups), want (%d, %d)",
			agg.NOutput, agg.KeySum, len(agg.Groups), ref.NOutput, ref.KeySum)
	}
}

// TestBuildSideConcurrentTenants is the satellite-3 service proof: one
// cached BuildSide probed by 8 concurrent tenants on a service Env
// matches the serialized runs exactly, across repeat rounds and a
// quiescent reclamation between them (the heap-resident table must
// survive arena truncation).
func TestBuildSideConcurrentTenants(t *testing.T) {
	base := fault.Goroutines()
	env := NewEnv(WithSmallHierarchy(), WithCapacity(128<<20),
		WithService(ServiceConfig{MaxConcurrent: 4, Workers: 4}))
	defer env.Close()
	ctx := context.Background()

	w, err := env.GenerateWorkload(ctx, 5000, 10000, 40, 11)
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	b, err := env.PrepareBuildSide(ctx, w.Build, WithTenant("prep"), WithPipelineWorkers(4))
	if err != nil {
		t.Fatalf("PrepareBuildSide: %v", err)
	}

	const tenants = 8
	for round := 0; round < 2; round++ {
		var wg sync.WaitGroup
		results := make([]PipelineResult, tenants)
		errs := make([]error, tenants)
		for i := 0; i < tenants; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				scheme := []Scheme{Baseline, Group, Pipelined}[i%3]
				results[i], errs[i] = env.RunPipelineContext(ctx, w.Build, w.Probe,
					WithEngine(EngineNative), WithBuildSide(b),
					WithPipelineScheme(scheme), WithTenantWeight(1+i%3),
					WithTenant("tenant"))
			}(i)
		}
		wg.Wait()
		for i := 0; i < tenants; i++ {
			if errs[i] != nil {
				t.Fatalf("round %d tenant %d: %v", round, i, errs[i])
			}
			if results[i].NOutput != w.ExpectedMatches || results[i].KeySum != w.KeySum {
				t.Fatalf("round %d tenant %d: (%d, %d), want (%d, %d)",
					round, i, results[i].NOutput, results[i].KeySum, w.ExpectedMatches, w.KeySum)
			}
		}
	}
	if s := env.ServiceStats(); s.Reclaims == 0 {
		t.Error("no quiescent reclamation between rounds; the survival claim went untested")
	}

	env.Close()
	fault.CheckGoroutines(t, base)
}

func TestBuildSideValidation(t *testing.T) {
	env := NewEnv(WithSmallHierarchy(), WithCapacity(64<<20))
	ctx := context.Background()
	w, err := env.GenerateWorkload(ctx, 200, 400, 24, 3)
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	b, err := env.PrepareBuildSide(ctx, w.Build)
	if err != nil {
		t.Fatalf("PrepareBuildSide: %v", err)
	}

	cases := []struct {
		name string
		opts []PipelineOption
		want string
	}{
		{"sim-engine", []PipelineOption{WithEngine(EngineSim), WithBuildSide(b)}, "native engine"},
		{"filter", []PipelineOption{WithEngine(EngineNative), WithBuildSide(b), WithBuildFilter(1, 2)}, "WithBuildFilter"},
		{"fanout", []PipelineOption{WithEngine(EngineNative), WithBuildSide(b), WithPipelineFanout(4)}, "fanout"},
	}
	for _, tc := range cases {
		_, err := env.RunPipeline(w.Build, w.Probe, tc.opts...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Wrong relation: the handle snapshots one build side only.
	if _, err := env.RunPipeline(w.Probe, w.Build, WithEngine(EngineNative), WithBuildSide(b)); err == nil ||
		!strings.Contains(err.Error(), "different relation") {
		t.Errorf("wrong-relation err = %v", err)
	}

	// PrepareBuildSide itself rejects the sim engine.
	if _, err := env.PrepareBuildSide(ctx, w.Build, WithEngine(EngineSim)); err == nil {
		t.Error("PrepareBuildSide accepted the sim engine")
	}
}
