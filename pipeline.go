package hashjoin

// The public face of the batch-oriented operator engine: one logical
// pipeline — scan, optional build-side filter, hash join, optional
// hash aggregation — that runs unchanged on either execution backend.
// WithEngine selects the backend; everything else about the plan, and
// the logical result, is backend-neutral. This replaces the former
// split where simulated joins and native joins were separate APIs with
// no way to compose either into a larger query.

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"hashjoin/internal/engine"
	"hashjoin/internal/native"
	"hashjoin/internal/plan"
	"hashjoin/internal/sched"
	"hashjoin/internal/spill"
)

// Engine selects the execution backend for RunPipeline.
type Engine = engine.Backend

const (
	// EngineSim runs the pipeline under the cycle-level simulator; the
	// result carries the simulated cycle breakdown.
	EngineSim = engine.Sim
	// EngineNative runs the pipeline on the host hardware with real
	// prefetches; the result carries wall-clock time.
	EngineNative = engine.Native
)

// PipelineOption configures RunPipeline.
type PipelineOption func(*pipelineConfig)

type pipelineConfig struct {
	engine    Engine
	scheme    Scheme
	params    Params
	fanout    int
	workers   int
	memBudget int

	spillDir      string
	spillWorkers  int
	spillPageSize int
	noSpill       bool
	hybrid        bool

	filterLo, filterHi uint32
	hasFilter          bool

	aggValueOff int
	aggGroups   int
	hasAgg      bool

	tenant  string
	weight  int
	planned uint64

	build *BuildSide

	joinType    plan.JoinType
	strategy    plan.Strategy
	strategySet bool // WithStrategy given: consult the planner
	matchRate   float64
}

// WithEngine selects the execution backend (default EngineSim).
func WithEngine(e Engine) PipelineOption {
	return func(c *pipelineConfig) { c.engine = e }
}

// WithPipelineScheme selects the prefetching scheme for the pipeline's
// join and aggregation (default Group).
func WithPipelineScheme(s Scheme) PipelineOption {
	return func(c *pipelineConfig) { c.scheme = s }
}

// WithPipelineParams tunes the group size G — which is also the
// operator batch size — and prefetch distance D. Zero fields keep the
// backend defaults (the merge happens at the engine boundary, so a
// partially filled Params never reaches an operator loop as a zero);
// negative fields make RunPipeline return an error.
func WithPipelineParams(p Params) PipelineOption {
	return func(c *pipelineConfig) { c.params = p }
}

// WithBuildFilter keeps only build tuples whose key lies in [lo, hi]
// before the join.
func WithBuildFilter(lo, hi uint32) PipelineOption {
	return func(c *pipelineConfig) { c.filterLo, c.filterHi, c.hasFilter = lo, hi, true }
}

// WithAggregation appends a group-by on the join key: COUNT(*) and
// SUM of the 4-byte value at valueOff within each joined row (build
// bytes first, then probe bytes). expectedGroups sizes the hash table.
func WithAggregation(valueOff, expectedGroups int) PipelineOption {
	return func(c *pipelineConfig) { c.aggValueOff, c.aggGroups, c.hasAgg = valueOff, expectedGroups, true }
}

// WithPipelineFanout selects the native join strategy: 1 (default)
// streams probe batches through one resident hash table; larger values
// radix-partition both inputs (rounded up to a power of two) and join
// under morsel-driven parallelism. The simulator backend ignores it.
func WithPipelineFanout(n int) PipelineOption {
	return func(c *pipelineConfig) { c.fanout = n }
}

// WithPipelineWorkers bounds the native morsel worker pool (default
// GOMAXPROCS).
func WithPipelineWorkers(n int) PipelineOption {
	return func(c *pipelineConfig) { c.workers = n }
}

// WithPipelineMemBudget bounds the resident footprint of the native
// join's build side in bytes. A streaming join whose build would exceed
// the budget degrades to the partitioned morsel strategy, an oversized
// partition pair is re-partitioned recursively — the GRACE answer to a
// partition that does not fit memory — and a pair no partitioning can
// shrink (heavy key skew) is joined out of core through disk-backed
// spill partitions. 0 (the default) means unbudgeted.
func WithPipelineMemBudget(bytes int) PipelineOption {
	return func(c *pipelineConfig) { c.memBudget = bytes }
}

// WithPipelineSpillDir sets the parent directory for the native join's
// out-of-core spill area (default: the OS temp directory). The spill
// tier creates its own subdirectory per run and removes it afterwards.
func WithPipelineSpillDir(dir string) PipelineOption {
	return func(c *pipelineConfig) { c.spillDir = dir }
}

// WithPipelineSpillWorkers sets the spill tier's write-behind worker
// count (default: the spill subsystem's own default). Negative values
// make RunPipeline return an error.
func WithPipelineSpillWorkers(n int) PipelineOption {
	return func(c *pipelineConfig) { c.spillWorkers = n }
}

// WithPipelineNoSpill disables the out-of-core tier: a partition pair
// still over the memory budget at maximum recursion depth makes
// RunPipeline return a *native.BudgetError instead of spilling to disk.
func WithPipelineNoSpill() PipelineOption {
	return func(c *pipelineConfig) { c.noSpill = true }
}

// WithPipelineSpillPageSize overrides the spill tier's page size in
// bytes (default: the spill subsystem's own default). Benchmarks use
// smaller pages to reduce page-rounding noise in I/O volumes; the value
// must satisfy the spill subsystem's bounds or the run fails when the
// spill tier engages.
func WithPipelineSpillPageSize(bytes int) PipelineOption {
	return func(c *pipelineConfig) { c.spillPageSize = bytes }
}

// WithPipelineHybrid enables the native join's adaptive hybrid policy:
// after the partition phase, pairs are ranked by measured build
// footprint, the largest prefix that fits the memory budget stays
// resident (joined in memory, claimed first), and only the overflow
// goes through the out-of-core tier — with oversized victims split on
// observed key-code frequency so the resident budget is never wasted on
// rows that cannot fit. On a service Env the run also samples the
// grant's advisory budget at each partition-pair claim and demotes
// not-yet-started resident pairs to disk when memory pressure shrinks
// the window, instead of restarting the query. Requires
// WithPipelineMemBudget to change anything.
func WithPipelineHybrid() PipelineOption {
	return func(c *pipelineConfig) { c.hybrid = true }
}

// WithBuildSide supplies a pre-built hash table (PrepareBuildSide) as
// the join's build side, skipping the run's build phase entirely: the
// probe stream runs over the shared, immutable table through private
// probe scratch, so any number of concurrent runs may pass the same
// handle. Native engine, streaming strategy only — RunPipeline returns
// an error if the engine is simulated, the fanout exceeds 1, or a
// build filter is present (the table was built unfiltered) — and the
// build relation must be the one the handle was prepared over.
func WithBuildSide(b *BuildSide) PipelineOption {
	return func(c *pipelineConfig) { c.build = b }
}

// WithTenant labels the run for the service Env's admission and
// fairness accounting (counters, shed errors, pool interleaving).
func WithTenant(name string) PipelineOption {
	return func(c *pipelineConfig) { c.tenant = name }
}

// WithTenantWeight biases the shared worker pool's round-robin toward
// this run's morsels: a weight-3 tenant claims up to three morsels per
// scheduling round where a weight-1 tenant claims one. Values < 1 mean
// 1. Ignored outside service mode.
func WithTenantWeight(w int) PipelineOption {
	return func(c *pipelineConfig) { c.weight = w }
}

// WithPlannedScratch declares the run's scratch footprint in bytes for
// admission on a service Env: the admitted query runs on a private
// arena window of exactly this size. 0 (the default) estimates the
// footprint from the plan and relations. A run that outgrows its
// window fails alone with an *OOMError; neighbors are unaffected.
func WithPlannedScratch(bytes uint64) PipelineOption {
	return func(c *pipelineConfig) { c.planned = bytes }
}

// PipelineResult reports one pipeline run. NOutput and KeySum describe
// the join's output whether or not aggregation ran (with aggregation
// they are recovered from the groups, which partition the join output).
type PipelineResult struct {
	NOutput int    // join output rows
	KeySum  uint64 // order-independent checksum of output build keys

	// Groups holds the aggregation result, sorted by key, when
	// WithAggregation was given; nil otherwise. Equal workloads produce
	// identical Groups on both engines.
	Groups []GroupStat

	Stats   Stats         // EngineSim: cycle breakdown of this run
	Elapsed time.Duration // EngineNative: wall clock of this run

	// JoinFanout is the partition count the native join actually used
	// (1 for the streaming strategy); JoinRecursionDepth is how deep the
	// budget degradation had to re-partition oversized pairs (0: none).
	JoinFanout         int
	JoinRecursionDepth int

	// SpilledPartitions counts the partition pairs the native join
	// completed out of core (0: everything fit in memory). The byte
	// totals cover the spill tier's file I/O — reads can exceed writes
	// because the probe partition is re-read once per build chunk — and
	// the stalls are the latency write-behind and read-ahead failed to
	// hide.
	SpilledPartitions int
	SpillBytesWritten int64
	SpillBytesRead    int64
	SpillWriteStall   time.Duration
	SpillReadStall    time.Duration
	// SpillFailovers counts spill directories declared failed mid-join;
	// SpillRebuilds counts partitions rebuilt from their in-memory
	// source after a failed or corrupt spill file.
	SpillFailovers int64
	SpillRebuilds  int64

	// Hybrid-policy accounting (WithPipelineHybrid): partition pairs
	// joined fully in memory, planned-resident pairs demoted to disk by
	// a mid-join advisory budget shrink, and the demoted pairs' summed
	// build footprints. All zero without the hybrid policy.
	ResidentPartitions int
	DemotedPartitions  int
	BytesDemoted       int64

	// Service-mode accounting: how long admission queued the run, the
	// scratch window it was granted (0 for exclusive/simulated runs),
	// and how many partition-pair morsels the shared pool executed for
	// it. All zero outside service mode.
	QueueWait       time.Duration
	AdmittedBytes   uint64
	MorselsExecuted int

	// Plan reports the strategy decision and its inputs when the planner
	// was consulted (WithStrategy); nil otherwise.
	Plan *PlanDecision
}

// RunPipeline executes build ⋈ probe — optionally filtered and
// aggregated — as a batch-operator pipeline on the selected engine.
// Both relations must belong to this Env. Batches are sized to the
// prefetch group size G, so operator handoff happens exactly at
// prefetch-group boundaries (the paper's section 5.4 observation).
//
// Per-run scratch (join output rings, morsel pipe buffers, staged
// aggregation rows) is scoped to the run and reclaimed before
// RunPipeline returns, so a resident Env sustains unlimited runs with
// stable arena usage. Memory exhaustion — the Env's capacity or a
// WithPipelineMemBudget no partitioning can satisfy — surfaces as an
// error with a usage breakdown, never a panic, including from morsel
// worker goroutines.
func (e *Env) RunPipeline(build, probe *Relation, opts ...PipelineOption) (PipelineResult, error) {
	return e.RunPipelineContext(context.Background(), build, probe, opts...)
}

// RunPipelineContext is RunPipeline under a context. Scans check it at
// every batch boundary (both backends), the native morsel join before
// each partition-pair claim, and the spill tier at page boundaries —
// so cancellation or deadline expiry stops the run within one batch or
// page of the event. A cancelled run returns a *CancelError that
// matches both ErrCancelled and the context's own error; the native
// join's cancellation also reports partition-pair progress.
func (e *Env) RunPipelineContext(ctx context.Context, build, probe *Relation, opts ...PipelineOption) (res PipelineResult, err error) {
	if build.env != e || probe.env != e {
		panic("hashjoin: relations belong to a different Env")
	}
	pc := pipelineConfig{engine: EngineSim, scheme: Group, fanout: 1}
	for _, o := range opts {
		o(&pc)
	}
	var cachedBuild *native.BuildSide
	if pc.build != nil {
		switch {
		case pc.build.env != e:
			panic("hashjoin: BuildSide belongs to a different Env")
		case pc.build.rel != build:
			return PipelineResult{}, fmt.Errorf("hashjoin: WithBuildSide handle was prepared over a different relation")
		case pc.engine != EngineNative:
			return PipelineResult{}, fmt.Errorf("hashjoin: WithBuildSide requires the native engine")
		case pc.hasFilter:
			return PipelineResult{}, fmt.Errorf("hashjoin: WithBuildSide cannot combine with WithBuildFilter (the table was built unfiltered)")
		case pc.fanout > 1:
			return PipelineResult{}, fmt.Errorf("hashjoin: WithBuildSide requires the streaming strategy (fanout 1), got fanout %d", pc.fanout)
		}
		cachedBuild = pc.build.bs
	}

	// Service mode routes the run through admission. Native runs are
	// granted a private scratch window and the shared worker pool;
	// simulated runs are exclusive tenants (the cycle simulator is
	// single-threaded and they scope scratch on the shared arena).
	a := e.mem.A
	var pool native.Pool
	var budgetNow func() int
	if e.svc != nil {
		req := sched.Request{Tenant: pc.tenant, Weight: pc.weight, Exclusive: pc.engine == EngineSim}
		if !req.Exclusive {
			req.Planned = pc.planned
			if req.Planned == 0 {
				req.Planned = e.plannedScratch(&pc, build, probe)
			}
		}
		g, aerr := e.svc.Admit(ctx, req)
		if aerr != nil {
			return PipelineResult{}, aerr
		}
		defer func() { g.Release(err) }()
		a = g.Arena()
		res.QueueWait = g.QueueWait()
		res.AdmittedBytes = g.Planned()
		if pc.engine == EngineNative {
			pool = e.svc.Pool()
			if pc.hybrid {
				// The grant's advisory budget is the mid-join pressure
				// signal: when neighbors queue, the controller shrinks it
				// and the hybrid join demotes unstarted resident pairs.
				budgetNow = g.BudgetNow
			}
		}
	}
	if pc.engine == EngineSim {
		e.simMu.Lock()
		defer e.simMu.Unlock()
	}

	buildNode := engine.Scan(build.rel)
	if pc.hasFilter {
		buildNode = engine.Filter(buildNode, engine.KeyBetween(pc.filterLo, pc.filterHi))
	}
	logical := engine.HashJoinTyped(buildNode, engine.Scan(probe.rel), pc.joinType)
	if pc.hasAgg {
		logical = engine.HashAggregate(logical, pc.aggValueOff, pc.aggGroups)
	}

	// WithStrategy engages the planner: Choose picks from the relations'
	// true cardinalities, the build footprint, the match-rate hint, and
	// the declared budget; a concrete strategy overrides the pick but
	// the decision still records it. The legacy path (no WithStrategy)
	// keeps the fanout-driven selection and reports no Plan.
	strategy, fanout := plan.Auto, pc.fanout
	if pc.strategySet {
		bw := build.rel.Schema.FixedWidth()
		stats := plan.Stats{
			BuildRows:      build.rel.NTuples,
			ProbeRows:      probe.rel.NTuples,
			BuildWidth:     bw,
			ProbeWidth:     probe.rel.Schema.FixedWidth(),
			BuildFootprint: native.BuildFootprint(build.rel.NTuples, bw),
			MatchRate:      pc.matchRate,
		}
		dec := plan.Choose(stats, pc.joinType, pc.memBudget)
		switch {
		case pc.strategy != plan.Auto && pc.strategy != dec.Strategy:
			planned := dec.Strategy
			dec.Strategy = pc.strategy
			if pc.strategy == plan.PartitionedHash {
				if dec.Fanout <= 1 {
					dec.Fanout = max(pc.fanout, 2)
				}
			} else {
				dec.Fanout = 1
			}
			dec.Reason = fmt.Sprintf("forced by WithStrategy(%v); planner preferred %v", pc.strategy, planned)
		case pc.build != nil && dec.Strategy != plan.StreamHash:
			// A prebuilt hash table pins the streaming strategy; the
			// planner's preference is recorded, not executed.
			planned := dec.Strategy
			dec.Strategy, dec.Fanout = plan.StreamHash, 1
			dec.Reason = fmt.Sprintf("prebuilt build side pins the streaming strategy (planner preferred %v)", planned)
		case pc.engine == EngineSim && dec.Strategy == plan.PartitionedHash:
			// The simulator executes single-table joins only; an
			// auto-planned partitioned pick degrades to streaming there.
			dec.Strategy, dec.Fanout = plan.StreamHash, 1
			dec.Reason = "sim backend runs single-table joins only (planner preferred partitioned)"
		}
		strategy, fanout = dec.Strategy, dec.Fanout
		res.Plan = &dec
	}

	var report engine.Report
	cfg := engine.Config{
		Backend:       pc.engine,
		Mem:           e.mem,
		A:             a,
		Scheme:        pc.scheme,
		Params:        pc.params,
		Strategy:      strategy,
		Fanout:        fanout,
		Workers:       pc.workers,
		Pool:          pool,
		Tenant:        pc.tenant,
		Weight:        pc.weight,
		MemBudget:     pc.memBudget,
		SpillDir:      pc.spillDir,
		SpillWorkers:  pc.spillWorkers,
		SpillPageSize: pc.spillPageSize,
		NoSpill:       pc.noSpill,
		Hybrid:        pc.hybrid,
		BudgetNow:     budgetNow,
		Build:         cachedBuild,
		Report:        &report,
		Ctx:           ctx,
	}

	var before Stats
	if pc.engine == EngineSim {
		before = e.mem.S.Stats()
	}
	start := time.Now()
	root, err := engine.Compile(logical, cfg)
	if err != nil {
		return PipelineResult{}, err
	}
	if pc.hasAgg {
		groups, gerr := engine.Groups(root, a)
		if gerr != nil {
			err = wrapCancel(gerr, time.Since(start))
			return PipelineResult{}, err
		}
		for _, g := range groups {
			res.Groups = append(res.Groups, GroupStat{Key: g.Key, Count: g.Count, Sum: g.Sum})
			res.NOutput += int(g.Count)
			res.KeySum += uint64(g.Key) * g.Count
		}
	} else {
		r, rerr := engine.Run(root, a)
		if rerr != nil {
			err = wrapCancel(rerr, time.Since(start))
			return PipelineResult{}, err
		}
		res.NOutput, res.KeySum = r.NRows, r.KeySum
	}
	switch pc.engine {
	case EngineSim:
		res.Stats = e.mem.S.Stats().Sub(before)
	case EngineNative:
		res.Elapsed = time.Since(start)
	}
	res.JoinFanout = report.JoinFanout
	res.JoinRecursionDepth = report.JoinRecursionDepth
	res.SpilledPartitions = report.SpilledPartitions
	res.SpillBytesWritten = report.SpillBytesWritten
	res.SpillBytesRead = report.SpillBytesRead
	res.SpillWriteStall = report.SpillWriteStall
	res.SpillReadStall = report.SpillReadStall
	res.SpillFailovers = report.SpillFailovers
	res.SpillRebuilds = report.SpillRebuilds
	res.ResidentPartitions = report.ResidentPartitions
	res.DemotedPartitions = report.DemotedPartitions
	res.BytesDemoted = report.BytesDemoted
	res.MorselsExecuted = report.MorselsExecuted
	return res, nil
}

// plannedScratch estimates a native pipeline run's arena scratch for
// admission, mirroring the cli planner's model: the streaming join's
// output ring, the morsel pipe buffers (2·workers+4 batches of
// concatenated rows), aggregate staging, the spill tier's page pool
// when it can engage, and page-rounding slack. The admission floor
// (256 KB) covers the small end; WithPlannedScratch overrides the
// whole estimate.
func (e *Env) plannedScratch(pc *pipelineConfig, build, probe *Relation) uint64 {
	outWidth := uint64(build.rel.Schema.FixedWidth() + probe.rel.Schema.FixedWidth())
	batch := pc.params.G
	if batch < native.DefaultG {
		batch = native.DefaultG
	}
	workers := pc.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The output ring holds one probe batch's matches; without the
	// workload's ground truth assume a moderately skewed 8 matches per
	// probe tuple. Heavier skew should declare WithPlannedScratch.
	ring := uint64(batch*8) * outWidth
	pipeBufs := uint64(2*workers+4) * uint64(batch) * outWidth
	var aggStaging uint64
	if pc.hasAgg {
		aggStaging = uint64(build.rel.NTuples) * engine.AggTupleWidth
	}
	var spillPool uint64
	if pc.memBudget > 0 && !pc.noSpill {
		sw := pc.spillWorkers
		if sw < 1 {
			sw = spill.DefaultWorkers
		}
		chunk := pc.memBudget/spill.DefaultPageSize + 1
		if chunk > 256 {
			chunk = 256
		}
		spillPool = uint64(chunk+3*sw+4)*uint64(spill.DefaultPageSize) + (64 << 10)
	}
	return ring + pipeBufs + aggStaging + spillPool + (64 << 10)
}
