package hashjoin

// Multi-tenant throughput benchmark: one service Env, N goroutines each
// running the same validated morsel join concurrently, swept over
// N = 1, 2, 4, 8. The interesting curve is wall clock per query as
// concurrency grows: admission windows and the shared weighted
// round-robin pool should turn N neighbors into graceful interleaving
// (sub-linear slowdown per query, rising aggregate throughput), not a
// pile-up. BenchmarkServeConcurrency writes BENCH_serve.json:
//
//	go test -run=^$ -bench BenchmarkServeConcurrency -benchtime=1x .

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

const (
	serveBenchTenants = 8 // workloads resident in the Env (max concurrency)
	serveBenchNBuild  = 20000
	serveBenchTuple   = 40
	serveBenchFanout  = 8
)

var (
	serveBenchOnce sync.Once
	serveBenchEnv  *Env
	serveBenchWs   []*Workload
)

// serveBenchSetup builds the resident service Env once: 8 tenants'
// workloads loaded durably, admission sized so the largest sweep level
// runs without queueing.
func serveBenchSetup(tb testing.TB) {
	serveBenchOnce.Do(func() {
		serveBenchEnv = NewEnv(WithSmallHierarchy(), WithCapacity(512<<20),
			WithService(ServiceConfig{MaxConcurrent: serveBenchTenants}))
		ctx := context.Background()
		for i := 0; i < serveBenchTenants; i++ {
			w, err := serveBenchEnv.GenerateWorkload(ctx, serveBenchNBuild, 2*serveBenchNBuild, serveBenchTuple, int64(1+i))
			if err != nil {
				tb.Fatalf("workload %d: %v", i, err)
			}
			serveBenchWs = append(serveBenchWs, w)
		}
	})
}

// runServeWave runs n concurrent validated queries (one per tenant) and
// returns the wave's wall clock plus each query's own elapsed time.
func runServeWave(tb testing.TB, n int) (time.Duration, []time.Duration) {
	var wg sync.WaitGroup
	perQuery := make([]time.Duration, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := serveBenchWs[i]
			res, err := serveBenchEnv.RunPipelineContext(context.Background(), w.Build, w.Probe,
				WithEngine(EngineNative), WithPipelineFanout(serveBenchFanout),
				WithTenant("bench"), WithPipelineWorkers(0))
			if err != nil {
				tb.Errorf("tenant %d: %v", i, err)
				return
			}
			if res.NOutput != w.ExpectedMatches || res.KeySum != w.KeySum {
				tb.Errorf("tenant %d: result %d/%d, want %d/%d",
					i, res.NOutput, res.KeySum, w.ExpectedMatches, w.KeySum)
			}
			perQuery[i] = res.Elapsed
		}(i)
	}
	wg.Wait()
	return time.Since(start), perQuery
}

// servePoint is one concurrency level in BENCH_serve.json.
type servePoint struct {
	Concurrency int `json:"concurrency"`
	// Wave wall clock and the resulting aggregate throughput.
	WaveMs           float64 `json:"wave_ms"`
	QueriesPerSecond float64 `json:"queries_per_second"`
	// Median single-query elapsed inside the wave: how much a query
	// slows down when N-1 neighbors share the Env.
	QueryMs float64 `json:"query_ms"`
}

// serveTrajectory is the BENCH_serve.json document.
type serveTrajectory struct {
	NBuild      int          `json:"n_build"`
	NProbe      int          `json:"n_probe"`
	TupleSize   int          `json:"tuple_size"`
	Fanout      int          `json:"fanout"`
	MaxInFlight int          `json:"max_in_flight"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	PrefetchASM bool         `json:"prefetch_asm"`
	Points      []servePoint `json:"points"`
}

// BenchmarkServeConcurrency sweeps 1, 2, 4, 8 concurrent queries over
// one service Env and emits BENCH_serve.json. Levels interleave across
// repetitions so host drift lands on all of them alike; medians are
// reported per level.
func BenchmarkServeConcurrency(b *testing.B) {
	serveBenchSetup(b)
	levels := []int{1, 2, 4, 8}

	runServeWave(b, levels[len(levels)-1]) // untimed warmup

	const reps = 5
	waves := make([][]time.Duration, len(levels))
	queries := make([][]time.Duration, len(levels))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range waves {
			waves[j], queries[j] = nil, nil
		}
		for rep := 0; rep < reps; rep++ {
			for j, n := range levels {
				wave, per := runServeWave(b, n)
				waves[j] = append(waves[j], wave)
				queries[j] = append(queries[j], per...)
			}
		}
	}
	b.StopTimer()

	traj := serveTrajectory{
		NBuild:      serveBenchNBuild,
		NProbe:      2 * serveBenchNBuild,
		TupleSize:   serveBenchTuple,
		Fanout:      serveBenchFanout,
		MaxInFlight: serveBenchTenants,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		PrefetchASM: NativeHasPrefetch(),
	}
	for j, n := range levels {
		wave := medianDuration(waves[j])
		traj.Points = append(traj.Points, servePoint{
			Concurrency:      n,
			WaveMs:           float64(wave.Microseconds()) / 1e3,
			QueriesPerSecond: float64(n) / wave.Seconds(),
			QueryMs:          float64(medianDuration(queries[j]).Microseconds()) / 1e3,
		})
	}
	b.ReportMetric(traj.Points[0].WaveMs, "ms@1query")
	b.ReportMetric(traj.Points[len(traj.Points)-1].QueriesPerSecond, "qps@8queries")

	if doc, err := json.MarshalIndent(traj, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_serve.json", append(doc, '\n'), 0o644); err != nil {
			b.Logf("BENCH_serve.json not written: %v", err)
		}
	}
}
