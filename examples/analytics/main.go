// Analytics: a composed query pipeline — scan, filter, group-prefetched
// hash join, and hash aggregation — demonstrating the paper's section
// 5.4 observation that group prefetching suits pipelined query
// processing: the join pauses at each group boundary of G probe tuples
// and streams its matches upward, instead of materializing everything.
//
// Query (SQL-ish):
//
//	SELECT o.customer, COUNT(*), SUM(li.amount)
//	FROM orders o JOIN lineitems li ON o.key = li.key
//	WHERE o.key BETWEEN 1 AND 30000
//	GROUP BY o.customer  -- here: by join key, one group per order
package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/ops"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

const (
	nOrders    = 50000
	orderWidth = 32
	lineWidth  = 16
	linesPer   = 2
)

func main() {
	m := vmem.New(arena.New(512<<20), memsim.NewSim(memsim.SmallConfig()))
	rng := rand.New(rand.NewSource(99))

	orders := storage.NewRelation(m.A, storage.KeyPayloadSchema(orderWidth), 8<<10)
	lineitems := storage.NewRelation(m.A, storage.KeyPayloadSchema(lineWidth), 8<<10)
	otup := make([]byte, orderWidth)
	ltup := make([]byte, lineWidth)
	for i := 1; i <= nOrders; i++ {
		key := uint32(i)
		binary.LittleEndian.PutUint32(otup, key)
		orders.Append(otup, hash.CodeU32(key))
		for l := 0; l < linesPer; l++ {
			binary.LittleEndian.PutUint32(ltup, key)
			binary.LittleEndian.PutUint32(ltup[4:], uint32(rng.Intn(100))) // amount
			lineitems.Append(ltup, hash.CodeU32(key))
		}
	}

	// Pipeline: filter(orders) ⋈ lineitems, aggregated by key.
	filtered := ops.NewFilter(m, ops.NewScan(m, orders), ops.KeyBetween(1, 30000))
	join := ops.NewHashJoin(m, filtered, ops.NewScan(m, lineitems),
		orderWidth, lineWidth, core.DefaultParams())
	agg := ops.NewHashAggregate(m, join, orderWidth+lineWidth, orderWidth+4, 30000,
		core.SchemeGroup, core.DefaultParams())

	groups := ops.Collect(agg)
	var rows, total uint64
	for _, g := range groups {
		rows += m.A.U64(g.Addr + 8)
		total += m.A.U64(g.Addr + 16)
	}
	st := m.S.Stats()
	fmt.Printf("pipeline: %d groups, %d joined rows, total amount %d\n", len(groups), rows, total)
	fmt.Printf("simulated: %.1f Mcycles (busy %.0f%%, dcache %.0f%%, dtlb %.0f%%)\n",
		float64(st.Total())/1e6,
		100*float64(st.Busy)/float64(st.Total()),
		100*float64(st.DCacheStall)/float64(st.Total()),
		100*float64(st.TLBStall)/float64(st.Total()))

	if len(groups) != 30000 || rows != 30000*linesPer {
		panic("pipeline result incorrect")
	}
}
