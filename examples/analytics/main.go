// Analytics: a composed query pipeline — scan, filter, group-prefetched
// hash join, and hash aggregation — demonstrating the paper's section
// 5.4 observation that group prefetching suits pipelined query
// processing: operator batches are sized to the prefetch group G, so
// the join pauses at each group boundary of G probe tuples and streams
// its matches upward instead of materializing everything.
//
// The same logical plan is compiled twice: once for the cycle-level
// simulator backend (every access timed by the memory-hierarchy model)
// and once for the native backend (real PREFETCHT0 on the host CPU).
// Both must produce the identical group list.
//
// Query (SQL-ish):
//
//	SELECT o.customer, COUNT(*), SUM(li.amount)
//	FROM orders o JOIN lineitems li ON o.key = li.key
//	WHERE o.key BETWEEN 1 AND 30000
//	GROUP BY o.customer  -- here: by join key, one group per order
package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/engine"
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/native"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

const (
	nOrders    = 50000
	orderWidth = 32
	lineWidth  = 16
	linesPer   = 2
	nGroups    = 30000 // orders surviving the filter
)

func main() {
	m := vmem.New(arena.New(512<<20), memsim.NewSim(memsim.SmallConfig()))
	rng := rand.New(rand.NewSource(99))

	orders := storage.NewRelation(m.A, storage.KeyPayloadSchema(orderWidth), 8<<10)
	lineitems := storage.NewRelation(m.A, storage.KeyPayloadSchema(lineWidth), 8<<10)
	otup := make([]byte, orderWidth)
	ltup := make([]byte, lineWidth)
	for i := 1; i <= nOrders; i++ {
		key := uint32(i)
		binary.LittleEndian.PutUint32(otup, key)
		orders.Append(otup, hash.CodeU32(key))
		for l := 0; l < linesPer; l++ {
			binary.LittleEndian.PutUint32(ltup, key)
			binary.LittleEndian.PutUint32(ltup[4:], uint32(rng.Intn(100))) // amount
			lineitems.Append(ltup, hash.CodeU32(key))
		}
	}

	// One logical plan: filter(orders) ⋈ lineitems, grouped by key.
	// The lineitem amount sits at offset 4 of the probe tuple, which is
	// orderWidth+4 within the joined (build ++ probe) row.
	plan := engine.HashAggregate(
		engine.HashJoin(
			engine.Filter(engine.Scan(orders), engine.KeyBetween(1, nGroups)),
			engine.Scan(lineitems)),
		orderWidth+4, nGroups)

	// Backend 1: the cycle-level simulator.
	sim, err := engine.Compile(plan, engine.Config{Backend: engine.Sim, Mem: m})
	check(err)
	simGroups, err := engine.Groups(sim, m.A)
	check(err)
	st := m.S.Stats()
	rows, total := summarize(simGroups)
	fmt.Printf("pipeline: %d groups, %d joined rows, total amount %d\n", len(simGroups), rows, total)
	fmt.Printf("simulated: %.1f Mcycles (busy %.0f%%, dcache %.0f%%, dtlb %.0f%%)\n",
		float64(st.Total())/1e6,
		100*float64(st.Busy)/float64(st.Total()),
		100*float64(st.DCacheStall)/float64(st.Total()),
		100*float64(st.TLBStall)/float64(st.Total()))

	// Backend 2: the same plan on the host CPU with real prefetches.
	start := time.Now()
	nat, err := engine.Compile(plan, engine.Config{Backend: engine.Native, A: m.A})
	check(err)
	natGroups, err := engine.Groups(nat, m.A)
	check(err)
	elapsed := time.Since(start)
	fmt.Printf("native: %d groups in %.2f ms (prefetch asm: %v)\n",
		len(natGroups), float64(elapsed.Microseconds())/1e3, native.HavePrefetch)

	if len(simGroups) != nGroups || rows != nGroups*linesPer {
		panic("pipeline result incorrect")
	}
	for i := range simGroups {
		if simGroups[i] != natGroups[i] {
			panic("sim and native backends disagree")
		}
	}
	fmt.Println("parity: sim and native group lists identical")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

func summarize(groups []engine.Group) (rows int, total uint64) {
	for _, g := range groups {
		rows += int(g.Count)
		total += g.Sum
	}
	return rows, total
}
