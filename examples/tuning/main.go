// Tuning: sweep the group size G and prefetch distance D for a workload
// and compare the measured optimum with the analytical minima of the
// paper's Theorems 1 and 2. Reproduces the concave curves of Figure 12
// as ASCII plots: too-small parameters expose latency, too-large ones
// cause cache conflict misses.
package main

import (
	"fmt"
	"strings"

	"hashjoin"
)

const (
	nBuild    = 30000
	tupleSize = 20 // the paper tunes at 20 B tuples
)

func measure(scheme hashjoin.Scheme, p hashjoin.Params) float64 {
	env := hashjoin.NewEnv(hashjoin.WithSmallHierarchy(), hashjoin.WithCapacity(128<<20))
	build := env.NewRelation(tupleSize)
	probe := env.NewRelation(tupleSize)
	payload := make([]byte, tupleSize-4)
	for i := 0; i < nBuild; i++ {
		key := uint32(i)*2654435761 | 1
		build.Append(key, payload)
		probe.Append(key, payload)
		probe.Append(key, payload)
	}
	res, err := env.Join(build, probe, hashjoin.WithScheme(scheme), hashjoin.WithParams(p))
	if err != nil {
		panic(err)
	}
	return float64(res.TotalCycles()) / 1e6
}

func plot(label string, xs []int, ys []float64) {
	maxY := 0.0
	for _, y := range ys {
		if y > maxY {
			maxY = y
		}
	}
	fmt.Printf("-- %s --\n", label)
	for i, x := range xs {
		bar := int(ys[i] / maxY * 50)
		fmt.Printf("%4d | %-50s %7.2f Mcycles\n", x, strings.Repeat("#", bar), ys[i])
	}
	fmt.Println()
}

func main() {
	opt := hashjoin.OptimalParamsFor(150, 10)
	fmt.Printf("Theorem 1/2 analytical minima at T=150, Tnext=10: G=%d, D=%d\n", opt.G, opt.D)
	fmt.Printf("(the paper's measured optima: G=19, D=1)\n\n")

	gs := []int{1, 2, 4, 8, 16, 19, 32, 64, 128}
	gy := make([]float64, len(gs))
	for i, g := range gs {
		gy[i] = measure(hashjoin.Group, hashjoin.Params{G: g, D: 1})
	}
	plot("group prefetching: time vs G", gs, gy)

	ds := []int{1, 2, 4, 8, 16, 32}
	dy := make([]float64, len(ds))
	for i, d := range ds {
		dy[i] = measure(hashjoin.Pipelined, hashjoin.Params{G: 1, D: d})
	}
	plot("software-pipelined prefetching: time vs D", ds, dy)

	bestG, bestD := gs[argmin(gy)], ds[argmin(dy)]
	fmt.Printf("measured optima on this workload: G=%d, D=%d\n", bestG, bestD)
}

func argmin(ys []float64) int {
	best := 0
	for i, y := range ys {
		if y < ys[best] {
			best = i
		}
		_ = y
	}
	return best
}
