// Groupby: hash-based aggregation — the paper's conclusion suggests its
// prefetching techniques extend to "hash-based group-by and aggregation
// algorithms", and this reproduction implements that extension. Sales
// records are grouped by customer; with enough customers the aggregation
// table exceeds the cache and every accumulator visit misses, so group
// prefetching pays off just as it does for joins.
package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"hashjoin"
)

const (
	nSales     = 200000
	nCustomers = 40000
	tupleSize  = 24 // customer key + 4-byte amount + padding
)

func build(env *hashjoin.Env) *hashjoin.Relation {
	rng := rand.New(rand.NewSource(7))
	sales := env.NewRelation(tupleSize)
	payload := make([]byte, tupleSize-4)
	for i := 0; i < nSales; i++ {
		customer := uint32(rng.Intn(nCustomers))*2654435761 | 1
		binary.LittleEndian.PutUint32(payload, uint32(rng.Intn(500))) // amount
		sales.Append(customer, payload)
	}
	return sales
}

func main() {
	var baseCycles uint64
	for _, s := range []struct {
		name   string
		scheme hashjoin.Scheme
	}{
		{"baseline", hashjoin.Baseline},
		{"group prefetch", hashjoin.Group},
	} {
		env := hashjoin.NewEnv(hashjoin.WithSmallHierarchy(), hashjoin.WithCapacity(256<<20))
		sales := build(env)
		groups, stats := env.Aggregate(sales, nCustomers, hashjoin.WithScheme(s.scheme))
		if s.scheme == hashjoin.Baseline {
			baseCycles = stats.Total()
		}
		var rows, total uint64
		for _, g := range groups {
			rows += g.Count
			total += g.Sum
		}
		fmt.Printf("%-16s %6d groups  %d rows  total %d  %8.2f Mcycles  speedup %.2fx\n",
			s.name, len(groups), rows, total,
			float64(stats.Total())/1e6,
			float64(baseCycles)/float64(stats.Total()))
		if rows != nSales {
			panic("aggregation lost rows")
		}
	}
}
