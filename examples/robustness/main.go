// Robustness: the paper's Figure 18 scenario as a demo. Cache
// partitioning assumes exclusive use of the CPU cache; on a busy server
// other activities evict its carefully sized partitions. Here the cache
// is flushed periodically (the worst-case interference) and the join is
// re-run: group prefetching barely notices, while the cache-resident
// strategy loses its advantage.
package main

import (
	"fmt"

	"hashjoin"
)

const (
	nBuild    = 15000
	tupleSize = 100
)

// run joins under a given flush interval (0 = no interference).
func run(scheme hashjoin.Scheme, flushEvery uint64, budget int) uint64 {
	opts := []hashjoin.Option{hashjoin.WithSmallHierarchy(), hashjoin.WithCapacity(256 << 20)}
	if flushEvery > 0 {
		// Options apply in order: the flush interval must modify the
		// small hierarchy, so it comes after.
		opts = append(opts, hashjoin.WithCacheFlushing(flushEvery))
	}
	env := hashjoin.NewEnv(opts...)
	build := env.NewRelation(tupleSize)
	probe := env.NewRelation(tupleSize)
	payload := make([]byte, tupleSize-4)
	for i := 0; i < nBuild; i++ {
		key := uint32(i)*2654435761 | 1
		build.Append(key, payload)
		probe.Append(key, payload)
		probe.Append(key, payload)
	}
	var res hashjoin.Result
	var err error
	if budget > 0 {
		res, err = env.Join(build, probe, hashjoin.WithScheme(scheme), hashjoin.WithMemBudget(budget))
	} else {
		res, err = env.Join(build, probe, hashjoin.WithScheme(scheme))
	}
	if err != nil {
		panic(err)
	}
	// Figure 18 compares join-phase time only; the I/O partition phase
	// streams sequentially and is insensitive to cache interference.
	return res.JoinStats.Total()
}

func main() {
	// Flush periods scaled to the 128 KB L2 of the small hierarchy, like
	// the paper's 10 ms / 2 ms on a 1 MB cache.
	periods := []struct {
		label string
		every uint64
	}{
		{"no interference", 0},
		{"flush every 500K cycles", 500_000},
		{"flush every 100K cycles", 100_000},
	}

	fmt.Println("join phase under periodic cache flushing (normalized, 100 = undisturbed)")
	fmt.Printf("%-28s %14s %18s\n", "interference", "group prefetch", "cache-partitioned")

	var baseG, baseC float64
	for i, p := range periods {
		g := float64(run(hashjoin.Group, p.every, 0))
		// "Cache partitioning": tiny memory budget forces cache-sized
		// partitions joined with plain simple prefetching.
		c := float64(run(hashjoin.Simple, p.every, 48<<10))
		if i == 0 {
			baseG, baseC = g, c
		}
		fmt.Printf("%-28s %13.0f%% %17.0f%%\n", p.label, 100*g/baseG, 100*c/baseC)
	}
	fmt.Println("\n(the paper measures up to 67% degradation for cache partitioning,")
	fmt.Println(" while the prefetching schemes stay within a few percent)")
}
