// Warehouse: an end-to-end GRACE join of a TPC-H-flavored workload —
// orders joined with their line items — where neither relation fits the
// join's memory budget, so the I/O partition phase runs first. This is
// the disk-oriented scenario that motivates the paper: cache
// partitioning cannot cover relations much larger than cache x
// max-partitions, while prefetching keeps working.
package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"hashjoin"
)

const (
	nOrders      = 60000
	orderBytes   = 64 // order key + customer, date, priority...
	lineBytes    = 96 // order key + part, quantity, price...
	linesPerOrd  = 3
	joinMemBytes = 1 << 20 // deliberately small: forces ~8 partitions
)

func main() {
	rng := rand.New(rand.NewSource(42))

	env := hashjoin.NewEnv(hashjoin.WithSmallHierarchy(), hashjoin.WithCapacity(512<<20))

	orders := env.NewRelation(orderBytes)
	lineitems := env.NewRelation(lineBytes)

	opay := make([]byte, orderBytes-4)
	lpay := make([]byte, lineBytes-4)
	for o := 0; o < nOrders; o++ {
		orderKey := uint32(o)*2654435761 | 1
		binary.LittleEndian.PutUint32(opay, uint32(rng.Intn(1000))) // customer id
		orders.Append(orderKey, opay)
		for l := 0; l < linesPerOrd; l++ {
			binary.LittleEndian.PutUint32(lpay, uint32(rng.Intn(200000))) // part id
			lineitems.Append(orderKey, lpay)
		}
	}
	fmt.Printf("orders: %d tuples (%.1f MB)   lineitems: %d tuples (%.1f MB)   join memory: %.1f MB\n\n",
		orders.Len(), float64(orders.Bytes())/(1<<20),
		lineitems.Len(), float64(lineitems.Bytes())/(1<<20),
		float64(joinMemBytes)/(1<<20))

	for _, s := range []struct {
		name   string
		scheme hashjoin.Scheme
	}{
		{"GRACE baseline", hashjoin.Baseline},
		{"group prefetch", hashjoin.Group},
	} {
		res, err := env.Join(orders, lineitems,
			hashjoin.WithScheme(s.scheme),
			hashjoin.WithMemBudget(joinMemBytes))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s %d partitions, %d matches\n", s.name, res.NPartitions, res.NOutput)
		fmt.Printf("  partition phase %8.2f Mcycles\n", float64(res.PartitionStats.Total())/1e6)
		fmt.Printf("  join phase      %8.2f Mcycles\n", float64(res.JoinStats.Total())/1e6)
		fmt.Printf("  breakdown: %s\n\n", res.Breakdown())
		if res.NOutput != nOrders*linesPerOrd {
			panic("join lost tuples")
		}
	}
}
