// Quickstart: build two relations, join them under every prefetching
// scheme, and print the paper's headline comparison — execution time
// breakdowns and speedups over the GRACE baseline.
package main

import (
	"fmt"

	"hashjoin"
)

func main() {
	// 20k build tuples x 100 bytes, two matching probe tuples each: a
	// shrunken version of the paper's pivot workload.
	const nBuild = 20000
	const tupleSize = 100

	schemes := []struct {
		name   string
		scheme hashjoin.Scheme
	}{
		{"GRACE baseline", hashjoin.Baseline},
		{"simple prefetch", hashjoin.Simple},
		{"group prefetch", hashjoin.Group},
		{"software pipelined", hashjoin.Pipelined},
	}

	var baseline uint64
	for _, s := range schemes {
		// A fresh environment per scheme: cold caches, like the paper.
		env := hashjoin.NewEnv(hashjoin.WithSmallHierarchy(), hashjoin.WithCapacity(128<<20))
		build := env.NewRelation(tupleSize)
		probe := env.NewRelation(tupleSize)
		payload := make([]byte, tupleSize-4)
		for i := 0; i < nBuild; i++ {
			key := uint32(i)*2654435761 | 1
			build.Append(key, payload)
			probe.Append(key, payload)
			probe.Append(key, payload)
		}

		res, err := env.Join(build, probe, hashjoin.WithScheme(s.scheme))
		if err != nil {
			panic(err)
		}
		if s.scheme == hashjoin.Baseline {
			baseline = res.TotalCycles()
		}
		fmt.Printf("%-20s %9.2f Mcycles  speedup %.2fx  [%s]\n",
			s.name,
			float64(res.TotalCycles())/1e6,
			float64(baseline)/float64(res.TotalCycles()),
			res.Breakdown())
		if res.NOutput != 2*nBuild {
			panic(fmt.Sprintf("expected %d output tuples, got %d", 2*nBuild, res.NOutput))
		}
	}
	fmt.Println("\n(the paper reports 2.0-2.9x for group and software-pipelined prefetching)")
}
