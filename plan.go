package hashjoin

// Public face of the cost-based strategy planner (internal/plan): the
// join-type and strategy vocabularies, the options that select them,
// and the EXPLAIN payload RunPipeline reports when the planner is
// consulted.

import "hashjoin/internal/plan"

// JoinType selects the join's matching semantics. The probe relation is
// the join's left input: LeftOuter null-pads the build columns of
// unmatched probe rows (all-zero bytes), RightOuter emits unmatched
// build rows with the probe columns null-padded, and LeftSemi/LeftAnti
// emit the probe tuple only — narrowing the join's output width to the
// probe width, which matters for WithAggregation offsets.
type JoinType = plan.JoinType

const (
	// Inner emits one build||probe row per key match (the default).
	Inner = plan.Inner
	// LeftOuter additionally emits unmatched probe rows, null-padded.
	LeftOuter = plan.LeftOuter
	// RightOuter additionally emits unmatched build rows, null-padded.
	RightOuter = plan.RightOuter
	// LeftSemi emits each matched probe row once, probe columns only.
	LeftSemi = plan.LeftSemi
	// LeftAnti emits each unmatched probe row once, probe columns only.
	LeftAnti = plan.LeftAnti
)

// ParseJoinType parses a join type name ("inner", "left-outer",
// "right-outer", "semi", "anti", plus aliases).
func ParseJoinType(s string) (JoinType, error) { return plan.ParseJoinType(s) }

// Strategy is the join's physical execution strategy.
type Strategy = plan.Strategy

const (
	// StrategyAuto lets the cost-based planner decide (see WithStrategy).
	StrategyAuto = plan.Auto
	// StrategyNestedLoop scans a flat copy of the build side per probe
	// row; the planner's choice for tiny build sides.
	StrategyNestedLoop = plan.NestedLoop
	// StrategyStream builds one resident hash table and streams probe
	// batches through it.
	StrategyStream = plan.StreamHash
	// StrategyPartitioned radix-partitions both sides and joins the
	// pairs on the morsel pool (native engine only).
	StrategyPartitioned = plan.PartitionedHash
)

// ParseStrategy parses a strategy name ("auto", "nested-loop",
// "stream", "partitioned", plus aliases).
func ParseStrategy(s string) (Strategy, error) { return plan.ParseStrategy(s) }

// PlanDecision is the planner's EXPLAIN payload: the chosen strategy
// and every input the choice was made from. Decision.Explain() formats
// it as the one-line form all EXPLAIN surfaces print.
type PlanDecision = plan.Decision

// WithJoinType selects the join's matching semantics (default Inner).
// All engines, strategies, and memory tiers support every join type;
// results are bit-identical across them.
func WithJoinType(jt JoinType) PipelineOption {
	return func(c *pipelineConfig) { c.joinType = jt }
}

// WithStrategy engages the cost-based planner: the run consults
// plan.Choose with the relations' cardinalities, the build footprint,
// the match-rate hint, and the memory budget, executes the decision,
// and reports it in PipelineResult.Plan. StrategyAuto executes what the
// planner picked (including its derived fan-out, overriding
// WithPipelineFanout); a concrete strategy overrides the planner's pick
// but still records what it preferred. Without this option the legacy
// fanout-driven selection applies unchanged and Plan stays nil.
func WithStrategy(s Strategy) PipelineOption {
	return func(c *pipelineConfig) { c.strategy, c.strategySet = s, true }
}

// WithMatchRateHint supplies the planner's selectivity estimate: the
// fraction of probe rows expected to have at least one build match, in
// (0, 1]. Semi and anti joins short-circuit on first match, so a high
// match rate shortens their expected nested-loop scan and extends the
// regime where StrategyNestedLoop wins. 0 (the default) means unknown.
func WithMatchRateHint(mr float64) PipelineOption {
	return func(c *pipelineConfig) { c.matchRate = mr }
}
