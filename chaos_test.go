package hashjoin

// TestChaosSoak is the whole-stack robustness acceptance test: a
// seeded, multi-site fault schedule (spill write errors with real
// errnos, at-rest page corruption, read delays, worker panics) storms a
// multi-tenant service Env while hundreds of mixed queries run
// concurrently. The contract under chaos:
//
//   - every query that SUCCEEDS returns output bit-identical to its
//     fault-free reference (NOutput and KeySum);
//   - every query that FAILS fails with one typed, classifiable error —
//     never a raw errno soup, a panic, or a wrong answer;
//   - the self-healing spill tier actually heals: directory failovers
//     and partition rebuilds are observed recovering queries that would
//     otherwise have died;
//   - nothing leaks: goroutines return to baseline, both spill parents
//     end empty, and the Env answers a clean post-chaos round.
//
// The schedule spec is printed on entry; a CI failure replays locally
// by arming the same line.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"syscall"
	"testing"

	"hashjoin/internal/fault"
	"hashjoin/internal/spill"
	"hashjoin/internal/workload"
)

// chaosTenant is one tenant's workload plus its fault-free reference.
type chaosTenant struct {
	name string
	w    Workload
	opts []PipelineOption
	ref  PipelineResult
}

// chaosTenants builds the mixed tenant population on one service Env:
// two in-memory native tenants, one simulated, and three spill-forcing
// skewed tenants spread across a two-directory spill spec.
func chaosTenants(t *testing.T, env *Env, spillSpec2 string) []*chaosTenant {
	t.Helper()
	ctx := context.Background()
	mk := func(name string, spec workload.Spec, opts ...PipelineOption) *chaosTenant {
		pair := workload.Generate(env.mem.A, spec)
		ct := &chaosTenant{
			name: name,
			w: Workload{
				Build:           &Relation{rel: pair.Build, env: env},
				Probe:           &Relation{rel: pair.Probe, env: env},
				ExpectedMatches: pair.ExpectedMatches,
				KeySum:          pair.KeySum,
			},
			opts: append([]PipelineOption{WithTenant(name), WithPipelineWorkers(2)}, opts...),
		}
		ref, err := env.RunPipelineContext(ctx, ct.w.Build, ct.w.Probe, ct.opts...)
		if err != nil {
			t.Fatalf("tenant %s fault-free reference: %v", name, err)
		}
		if ref.NOutput != pair.ExpectedMatches || ref.KeySum != pair.KeySum {
			t.Fatalf("tenant %s reference (%d, %d), want (%d, %d)",
				name, ref.NOutput, ref.KeySum, pair.ExpectedMatches, pair.KeySum)
		}
		ct.ref = ref
		return ct
	}
	spillOpts := func(fanout int, extra ...PipelineOption) []PipelineOption {
		return append([]PipelineOption{
			WithEngine(EngineNative), WithPipelineFanout(fanout),
			WithPipelineMemBudget(4 << 10), WithPipelineSpillDir(spillSpec2),
			WithPipelineSpillWorkers(2),
		}, extra...)
	}
	skew := func(seed int64) workload.Spec {
		return workload.Spec{
			NBuild: 2000, TupleSize: 20, MatchesPerBuild: 1,
			PctMatched: 100, Seed: seed, Skew: 2000,
		}
	}
	return []*chaosTenant{
		mk("mem-a", workload.Spec{NBuild: 500, TupleSize: 24, MatchesPerBuild: 2, PctMatched: 85, Seed: 41},
			WithEngine(EngineNative), WithPipelineFanout(4)),
		mk("mem-b", workload.Spec{NBuild: 800, TupleSize: 24, MatchesPerBuild: 1, Seed: 42},
			WithEngine(EngineNative), WithPipelineFanout(4), WithAggregation(4, 1024)),
		mk("sim", workload.Spec{NBuild: 400, TupleSize: 24, MatchesPerBuild: 1, Seed: 43},
			WithEngine(EngineSim)),
		mk("spill-a", skew(44), spillOpts(2)...),
		mk("spill-b", skew(45), spillOpts(4)...),
		mk("spill-h", skew(46), spillOpts(2, WithPipelineHybrid())...),
	}
}

// chaosTyped returns a label when err belongs to the typed failure
// taxonomy chaos is allowed to produce, "" otherwise.
func chaosTyped(err error) string {
	for _, c := range []struct {
		name     string
		sentinel error
	}{
		{"injected", fault.ErrInjected},
		{"oom", ErrOutOfMemory},
		{"budget", ErrOverBudget},
		{"cancelled", ErrCancelled},
		{"corrupt", ErrCorruptSpill},
		{"unavailable", ErrSpillUnavailable},
		{"admission", ErrAdmission},
	} {
		if errors.Is(err, c.sentinel) {
			return c.name
		}
	}
	return ""
}

func TestChaosSoak(t *testing.T) {
	defer fault.Reset()
	t.Cleanup(spill.ResetHealth)
	base := fault.Goroutines()

	dirA, dirB := t.TempDir(), t.TempDir()
	spillSpec2 := dirA + "," + dirB
	env := NewEnv(WithSmallHierarchy(), WithCapacity(128<<20),
		WithService(ServiceConfig{MaxConcurrent: 4, Workers: 4}))
	tenants := chaosTenants(t, env, spillSpec2)
	ctx := context.Background()

	// Phase 1, deterministic: one guaranteed EIO on the first spill
	// write. The spill tenant must fail over to dirB, rebuild the
	// partition, and still answer exactly — self-healing observed
	// before the probabilistic storm muddies the water.
	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindError, Err: syscall.EIO, Count: 1})
	st := tenants[3]
	res, err := env.RunPipelineContext(ctx, st.w.Build, st.w.Probe, st.opts...)
	if err != nil {
		t.Fatalf("deterministic failover query: %v", err)
	}
	if res.NOutput != st.ref.NOutput || res.KeySum != st.ref.KeySum {
		t.Fatalf("deterministic failover diverged: (%d, %d) != (%d, %d)",
			res.NOutput, res.KeySum, st.ref.NOutput, st.ref.KeySum)
	}
	if res.SpillFailovers == 0 || res.SpillRebuilds == 0 {
		t.Fatalf("self-healing unobserved: %d failovers, %d rebuilds (want both > 0)",
			res.SpillFailovers, res.SpillRebuilds)
	}
	fault.Reset()
	spill.ResetHealth()

	// The storm: real dir-class errnos on spill writes (drives failover
	// and, when both dirs are down, the typed shed), at-rest page
	// corruption (drives quarantine + rebuild), read-side injected
	// errors and delays, and rare worker panics. Seeded: reruns fire
	// identically.
	const chaosSpec = "seed=1789;" +
		"site=spill.write,kind=error,errno=EIO,prob=0.03,count=6;" +
		"site=spill.verify,kind=error,prob=0.02;" +
		"site=spill.read,kind=error,prob=0.01;" +
		"site=spill.sync,kind=delay,delay=100us,prob=0.05;" +
		"site=native.worker,kind=panic,prob=0.002"
	sched, err := fault.ParseSchedule(chaosSpec)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	t.Logf("chaos schedule: %s", sched)

	rounds := 50 // ~300 queries
	if testing.Short() {
		rounds = 8
	}
	sched.Arm()

	var (
		mu        sync.Mutex
		successes int
		failures  = map[string]int{}
		failovers int64
		rebuilds  int64
	)
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for _, ct := range tenants {
			wg.Add(1)
			go func(ct *chaosTenant) {
				defer wg.Done()
				res, err := env.RunPipelineContext(ctx, ct.w.Build, ct.w.Probe, ct.opts...)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					label := chaosTyped(err)
					if label == "" {
						t.Errorf("tenant %s: untyped chaos failure: %v", ct.name, err)
						return
					}
					failures[label]++
					return
				}
				successes++
				failovers += res.SpillFailovers
				rebuilds += res.SpillRebuilds
				if res.NOutput != ct.ref.NOutput || res.KeySum != ct.ref.KeySum {
					t.Errorf("tenant %s: chaos success diverged: (%d, %d) != reference (%d, %d)",
						ct.name, res.NOutput, res.KeySum, ct.ref.NOutput, ct.ref.KeySum)
				}
			}(ct)
		}
		wg.Wait()
		if t.Failed() {
			break
		}
	}
	sched.Disarm()
	fault.Reset()

	t.Logf("chaos soak: %d successes, failures by class: %v, %d failovers, %d rebuilds",
		successes, fmt.Sprint(failures), failovers, rebuilds)
	if successes == 0 {
		t.Fatal("chaos soak: no query survived the storm")
	}

	// Post-chaos round: the registry is reset, the Env must answer every
	// tenant cleanly and exactly.
	spill.ResetHealth()
	for _, ct := range tenants {
		res, err := env.RunPipelineContext(ctx, ct.w.Build, ct.w.Probe, ct.opts...)
		if err != nil {
			t.Fatalf("post-chaos tenant %s: %v", ct.name, err)
		}
		if res.NOutput != ct.ref.NOutput || res.KeySum != ct.ref.KeySum {
			t.Fatalf("post-chaos tenant %s diverged: (%d, %d) != (%d, %d)",
				ct.name, res.NOutput, res.KeySum, ct.ref.NOutput, ct.ref.KeySum)
		}
	}

	env.Close()
	fault.CheckGoroutines(t, base)
	fault.CheckNoFiles(t, dirA)
	fault.CheckNoFiles(t, dirB)
}
