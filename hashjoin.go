// Package hashjoin is a laboratory for cache-conscious hash joins,
// reproducing Chen, Ailamaki, Gibbons and Mowry, "Improving Hash Join
// Performance through Prefetching" (ICDE 2004).
//
// It provides the GRACE hash join — I/O partitioning plus in-memory
// hash-table joins — in four variants: the classic baseline, simple
// prefetching, group prefetching, and software-pipelined prefetching,
// together with the cache-partitioning comparators the paper evaluates
// against. All algorithms execute against a cycle-level memory-hierarchy
// simulator, so every run yields both the real join output and a
// decomposition of execution time into busy cycles, data-cache stalls,
// TLB stalls, and other stalls — the same lens the paper uses.
//
// Quick start:
//
//	env := hashjoin.NewEnv()
//	build := env.NewRelation(100)
//	probe := env.NewRelation(100)
//	build.Append(42, []byte("...payload...")) // etc.
//	res, err := env.Join(build, probe, hashjoin.WithScheme(hashjoin.Group))
//	if err != nil { ... } // arena exhaustion surfaces here, never as a panic
//	fmt.Println(res.NOutput, res.Breakdown())
//
// The experiments of the paper's section 7 are exposed through
// RunExperiment; the cmd/hjbench tool drives them from the command line.
package hashjoin

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/exp"
	jhash "hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/model"
	"hashjoin/internal/sched"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

// Scheme selects a prefetching strategy.
type Scheme = core.Scheme

// Prefetching schemes.
const (
	// Baseline is the unmodified GRACE hash join.
	Baseline = core.SchemeBaseline
	// Simple prefetches whole input pages after each disk read.
	Simple = core.SchemeSimple
	// Group is group prefetching (paper section 4).
	Group = core.SchemeGroup
	// Pipelined is software-pipelined prefetching (paper section 5).
	Pipelined = core.SchemePipelined
	// Combined picks Simple or Group per the partition-phase policy of
	// section 7.4 (partition phase only).
	Combined = core.SchemeCombined
)

// Params are the prefetching tuning knobs: group size G and prefetch
// distance D. The zero value selects the paper's tuned defaults.
type Params = core.Params

// Stats is the simulated execution-time breakdown.
type Stats = memsim.Stats

// Env owns a simulated address space and memory hierarchy. Relations
// built in an Env can be joined and partitioned under simulation.
//
// A plain Env is not safe for concurrent use. WithService turns it
// into a multi-tenant join service: RunPipelineContext calls from any
// number of goroutines are admitted against the arena budget, run on
// private scratch windows with a shared fairly-scheduled worker pool,
// and Join / Partition / Aggregate / Durable serialize as exclusive
// tenants. Stats is then safe to call at any time.
type Env struct {
	mem *vmem.Mem
	cfg memsim.Config

	svc *sched.Controller // nil unless WithService

	// simMu serializes every user of the cycle simulator (its counters
	// are plain fields); Stats TryLocks it and falls back to the last
	// published snapshot when a simulated run is in flight.
	simMu     sync.Mutex
	lastStats atomic.Pointer[memsim.Stats]
}

// Option configures an Env.
type Option func(*envConfig)

type envConfig struct {
	hierarchy memsim.Config
	capacity  uint64
	budget    uint64
	service   *ServiceConfig
}

// ServiceConfig tunes multi-tenant service mode (WithService).
type ServiceConfig struct {
	// MaxConcurrent bounds the queries in flight at once; further
	// admissible queries queue FIFO. 0 selects 8.
	MaxConcurrent int
	// QueueDepth bounds the admission queue; one more query is shed
	// with a *AdmissionError (QueueFull). 0 selects 64.
	QueueDepth int
	// QueueTimeout sheds a query still queued after this long with a
	// *AdmissionError that matches context.DeadlineExceeded. 0 means
	// no server-side bound (each query's own context still applies).
	QueueTimeout time.Duration
	// Workers sizes the shared morsel worker pool that executes every
	// admitted native join. 0 selects GOMAXPROCS.
	Workers int
}

// ServiceCounters are the aggregate counters of a service-mode Env:
// admissions, sheds by reason, queue-wait totals, morsels executed by
// the shared pool, window reclamations, and instantaneous in-flight /
// queued / reserved-bytes gauges.
type ServiceCounters = sched.Counters

// WithHierarchy selects the simulated memory hierarchy (default: the
// paper's Table 2 / Compaq ES40 configuration).
func WithHierarchy(cfg memsim.Config) Option {
	return func(e *envConfig) { e.hierarchy = cfg }
}

// WithSmallHierarchy selects the 8x-scaled hierarchy used by tests and
// benchmarks (128 KB L2, unchanged latencies).
func WithSmallHierarchy() Option {
	return func(e *envConfig) { e.hierarchy = memsim.SmallConfig() }
}

// WithCapacity sets the simulated address-space capacity in bytes
// (default 256 MB). Relations, hash tables, partitions, and output all
// live within it.
func WithCapacity(bytes uint64) Option {
	return func(e *envConfig) { e.capacity = bytes }
}

// WithCacheFlushing injects worst-case cache interference: both caches
// and the TLB are invalidated every interval cycles (paper Figure 18).
func WithCacheFlushing(interval uint64) Option {
	return func(e *envConfig) { e.hierarchy.FlushInterval = interval }
}

// WithArenaBudget installs a soft allocation ceiling, in bytes, below
// the Env's physical capacity. Runs that would push the arena past it
// fail with an error carrying a usage breakdown instead of growing
// toward the capacity panic — the knob for operating an Env as a
// resident service with a firm memory envelope.
func WithArenaBudget(bytes uint64) Option {
	return func(e *envConfig) { e.budget = bytes }
}

// WithService enables multi-tenant service mode: concurrent
// RunPipelineContext calls are arbitrated by an admission controller
// (queue, admit on a private scratch window, or shed with a typed
// *AdmissionError) and executed on a shared, fairly scheduled morsel
// worker pool. A service Env must be Closed when done to release the
// pool's goroutines.
func WithService(sc ServiceConfig) Option {
	return func(e *envConfig) { e.service = &sc }
}

// NewEnv creates an environment.
func NewEnv(opts ...Option) *Env {
	ec := envConfig{hierarchy: memsim.ES40Config(), capacity: 256 << 20}
	for _, o := range opts {
		o(&ec)
	}
	env := &Env{
		mem: vmem.NewSized(ec.capacity, ec.hierarchy),
		cfg: ec.hierarchy,
	}
	if ec.budget > 0 {
		env.mem.A.SetBudget(ec.budget)
	}
	if ec.service != nil {
		env.svc = sched.NewController(sched.Config{
			Arena:         env.mem.A,
			MaxConcurrent: ec.service.MaxConcurrent,
			QueueDepth:    ec.service.QueueDepth,
			QueueTimeout:  ec.service.QueueTimeout,
			Workers:       ec.service.Workers,
		})
	}
	return env
}

// Close drains a service-mode Env: queued queries are shed, in-flight
// queries run to completion, later admissions fail with a Draining
// *AdmissionError, and the shared worker pool exits. A non-service Env
// has nothing to release; Close is then a no-op. Idempotent.
func (e *Env) Close() {
	if e.svc != nil {
		e.svc.Close()
	}
}

// ServiceStats snapshots the service-mode aggregate counters; the zero
// value for a non-service Env.
func (e *Env) ServiceStats() ServiceCounters {
	if e.svc == nil {
		return ServiceCounters{}
	}
	return e.svc.Stats()
}

// OnReclaim registers fn to run — on its own goroutine — each time a
// quiescent service-mode Env reclaims its arena back to the durable
// base. Long-lived holders of Env-derived state (a server caching
// prepared build sides, say) use it to trim in step with memory
// pressure easing. Pass nil to clear. A no-op on a non-service Env,
// which never reclaims. Set it before serving traffic; it is not
// synchronized against in-flight reclamations.
func (e *Env) OnReclaim(fn func()) {
	if e.svc != nil {
		e.svc.SetReclaimHook(fn)
	}
}

// Durable runs fn while the Env is exclusively held — no query in
// flight, every reclaimed scratch window truncated — so allocations fn
// makes (NewRelation, Append) are durable and safe even while the
// service is live. On a non-service Env it just runs fn. It returns
// fn's error, or the *AdmissionError if exclusive admission failed.
func (e *Env) Durable(ctx context.Context, fn func() error) error {
	release, err := e.admitExclusive(ctx, "durable")
	if err != nil {
		return err
	}
	ferr := fn()
	release(ferr)
	return ferr
}

// exclusiveSim is admitExclusive plus the simulator lock, for the
// error-less legacy entry points (Partition, Aggregate). The only way
// admission can fail without a caller deadline is a closed Env, which
// is a programming error: it panics.
func (e *Env) exclusiveSim(tenant string) func() {
	release, err := e.admitExclusive(context.Background(), tenant)
	if err != nil {
		panic("hashjoin: " + err.Error())
	}
	e.simMu.Lock()
	return func() {
		e.simMu.Unlock()
		release(nil)
	}
}

// admitExclusive acquires exclusive use of a service Env; a no-op on a
// plain Env. The returned release must be called exactly once.
func (e *Env) admitExclusive(ctx context.Context, tenant string) (func(error), error) {
	if e.svc == nil {
		return func(error) {}, nil
	}
	g, err := e.svc.Admit(ctx, sched.Request{Tenant: tenant, Exclusive: true})
	if err != nil {
		return nil, err
	}
	return func(ferr error) { g.Release(ferr) }, nil
}

// Stats returns the cumulative simulation statistics of the Env. It is
// safe to call while queries run: if the simulator is busy (its
// counters are not atomic), the last published snapshot is returned
// instead of torn counters.
func (e *Env) Stats() Stats {
	if e.simMu.TryLock() {
		s := e.mem.S.Stats()
		e.simMu.Unlock()
		e.lastStats.Store(&s)
		return s
	}
	if s := e.lastStats.Load(); s != nil {
		return *s
	}
	return Stats{}
}

// Relation is a simulated table: fixed-width tuples of a 4-byte join
// key plus payload, stored in slotted pages.
type Relation struct {
	rel *storage.Relation
	env *Env
}

// NewRelation creates an empty relation with tupleSize-byte tuples
// (4-byte key + payload) on 8 KB slotted pages.
func (e *Env) NewRelation(tupleSize int) *Relation {
	return &Relation{
		rel: storage.NewRelation(e.mem.A, storage.KeyPayloadSchema(tupleSize), 8<<10),
		env: e,
	}
}

// Append adds one tuple. The payload is padded or truncated to the
// relation's payload width.
func (r *Relation) Append(key uint32, payload []byte) {
	width := r.rel.Schema.FixedWidth()
	tup := make([]byte, width)
	tup[0] = byte(key)
	tup[1] = byte(key >> 8)
	tup[2] = byte(key >> 16)
	tup[3] = byte(key >> 24)
	copy(tup[4:], payload)
	r.rel.Append(tup, hashCode(key))
}

// Len returns the tuple count.
func (r *Relation) Len() int { return r.rel.NTuples }

// Bytes returns the storage footprint.
func (r *Relation) Bytes() int { return r.rel.ByteSize() }

// Workload is a generated build/probe relation pair with ground truth
// about the join they produce, for benchmarks and service smoke tests.
type Workload struct {
	Build, Probe *Relation

	// ExpectedMatches and KeySum are the exact output row count and
	// order-independent key checksum an equijoin of the pair must yield.
	ExpectedMatches int
	KeySum          uint64
}

// GenerateWorkload materializes a deterministic benchmark pair into
// the Env: nBuild build tuples with unique keys, nProbe probe tuples
// of which the first nBuild match one build tuple each (0 derives
// nProbe = nBuild), all tupleSize bytes wide. On a service Env the
// load runs under Durable, so it is safe while queries are in flight.
func (e *Env) GenerateWorkload(ctx context.Context, nBuild, nProbe, tupleSize int, seed int64) (*Workload, error) {
	var w *Workload
	err := e.Durable(ctx, func() (ferr error) {
		defer arena.RecoverOOM(&ferr)
		pair := workload.Generate(e.mem.A, workload.Spec{
			NBuild: nBuild, NProbe: nProbe, TupleSize: tupleSize, Seed: seed,
		})
		w = &Workload{
			Build:           &Relation{rel: pair.Build, env: e},
			Probe:           &Relation{rel: pair.Probe, env: e},
			ExpectedMatches: pair.ExpectedMatches,
			KeySum:          pair.KeySum,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return w, nil
}

// JoinOption configures a join.
type JoinOption func(*joinConfig)

type joinConfig struct {
	scheme     Scheme
	params     Params
	memBudget  int
	keepOutput bool
	endToEnd   bool
}

// WithScheme selects the prefetching scheme (default Group).
func WithScheme(s Scheme) JoinOption {
	return func(c *joinConfig) { c.scheme = s }
}

// WithParams tunes G and D.
func WithParams(p Params) JoinOption {
	return func(c *joinConfig) { c.params = p }
}

// WithMemBudget sets the join-phase memory budget in bytes and enables
// the full GRACE pipeline (I/O partitioning first). Without it the two
// relations are joined directly as one partition pair.
func WithMemBudget(bytes int) JoinOption {
	return func(c *joinConfig) { c.memBudget = bytes; c.endToEnd = true }
}

// KeepOutput materializes the joined tuples for inspection.
func KeepOutput() JoinOption {
	return func(c *joinConfig) { c.keepOutput = true }
}

// Result reports a join.
type Result struct {
	NOutput int    // output tuples produced
	KeySum  uint64 // order-independent checksum of output build keys

	NPartitions int // 1 for direct pair joins

	PartitionStats Stats // zero for direct pair joins
	JoinStats      Stats

	output *storage.Relation
}

// TotalCycles returns the simulated cycles of all measured phases.
func (r Result) TotalCycles() uint64 {
	return r.PartitionStats.Total() + r.JoinStats.Total()
}

// Breakdown formats the cycle decomposition.
func (r Result) Breakdown() string {
	s := r.PartitionStats.Add(r.JoinStats)
	total := float64(s.Total())
	return fmt.Sprintf("busy %.0f%% / dcache %.0f%% / dtlb %.0f%% / other %.0f%%",
		100*float64(s.Busy)/total, 100*float64(s.DCacheStall)/total,
		100*float64(s.TLBStall)/total, 100*float64(s.OtherStall)/total)
}

// EachOutput iterates over materialized output tuples (KeepOutput).
func (r Result) EachOutput(fn func(tuple []byte)) {
	if r.output == nil {
		return
	}
	r.output.Each(func(t []byte, _ uint32) { fn(t) })
}

// Join joins two relations built in this Env. Join scratch (hash
// tables, partitions) is scoped to the call and reclaimed before it
// returns — unless KeepOutput materializes the joined tuples, which
// then stay resident. Arena exhaustion (capacity or WithArenaBudget)
// surfaces as an error with a usage breakdown, not a panic.
func (e *Env) Join(build, probe *Relation, opts ...JoinOption) (Result, error) {
	return e.JoinContext(context.Background(), build, probe, opts...)
}

// JoinContext is Join under a context: the run checks ctx before each
// partitioning pass and before each partition-pair join, so it stops
// within one pair of cancellation or deadline expiry. A cancelled join
// returns a *CancelError that matches both ErrCancelled and the
// context's own error, and reports how many pairs had completed.
func (e *Env) JoinContext(ctx context.Context, build, probe *Relation, opts ...JoinOption) (res Result, err error) {
	jc := joinConfig{scheme: Group, params: core.DefaultParams()}
	for _, o := range opts {
		o(&jc)
	}
	if build.env != e || probe.env != e {
		panic("hashjoin: relations belong to a different Env")
	}
	// Simulated joins are exclusive tenants on a service Env: the cycle
	// simulator is single-threaded and the join's scratch scopes on the
	// shared arena must not interleave with carved windows.
	release, aerr := e.admitExclusive(ctx, "join")
	if aerr != nil {
		return Result{}, aerr
	}
	defer func() { release(err) }()
	e.simMu.Lock()
	defer e.simMu.Unlock()
	if !jc.keepOutput {
		scope := e.mem.A.Scope()
		defer scope.Release()
	}
	defer arena.RecoverOOM(&err)
	start := time.Now()
	if jc.endToEnd {
		gr := core.Grace(e.mem, build.rel, probe.rel, core.GraceConfig{
			MemBudget:  jc.memBudget,
			PartScheme: Combined,
			JoinScheme: jc.scheme,
			PartParams: jc.params,
			JoinParams: jc.params,
			Keep:       jc.keepOutput,
			Check:      ctx.Err,
		})
		if gr.Err != nil {
			return Result{}, &CancelError{
				Cause:      gr.Err,
				PairsDone:  gr.PairsJoined,
				PairsTotal: gr.NPartitions,
				RowsOut:    gr.NOutput,
				Elapsed:    time.Since(start),
			}
		}
		return Result{
			NOutput:        gr.NOutput,
			KeySum:         gr.KeySum,
			NPartitions:    gr.NPartitions,
			PartitionStats: gr.PartBuildStats.Add(gr.PartProbeStats),
			JoinStats:      gr.JoinStats,
		}, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return Result{}, &CancelError{Cause: cerr, PairsTotal: 1, Elapsed: time.Since(start)}
	}
	jr := core.JoinPair(e.mem, build.rel, probe.rel, jc.scheme, jc.params, 1, jc.keepOutput)
	return Result{
		NOutput:     jr.NOutput,
		KeySum:      jr.KeySum,
		NPartitions: 1,
		JoinStats:   jr.Stats(),
		output:      jr.Output,
	}, nil
}

// Partition divides a relation into n hash partitions, returning the
// per-partition tuple counts and the phase breakdown.
func (e *Env) Partition(r *Relation, n int, opts ...JoinOption) (counts []int, stats Stats) {
	jc := joinConfig{scheme: Combined, params: core.DefaultParams()}
	for _, o := range opts {
		o(&jc)
	}
	defer e.exclusiveSim("partition")()
	res := core.PartitionRelation(e.mem, r.rel, n, jc.scheme, jc.params)
	counts = make([]int, n)
	for i, p := range res.Partitions {
		counts[i] = p.NTuples
	}
	return counts, res.Stats
}

// GroupStat is one aggregation group: COUNT(*) and SUM(value) where the
// value is the 4-byte integer following the key in each tuple.
type GroupStat struct {
	Key   uint32
	Count uint64
	Sum   uint64
}

// Aggregate performs a hash-based group-by over r's join keys — the
// extension the paper's conclusion proposes for its techniques. Scheme
// Baseline, Simple, or Group applies; expectedGroups sizes the hash
// table. It returns the per-group stats and the phase breakdown.
func (e *Env) Aggregate(r *Relation, expectedGroups int, opts ...JoinOption) ([]GroupStat, Stats) {
	jc := joinConfig{scheme: Group, params: core.DefaultParams()}
	for _, o := range opts {
		o(&jc)
	}
	defer e.exclusiveSim("aggregate")()
	res := core.Aggregate(e.mem, r.rel, expectedGroups, jc.scheme, jc.params)
	groups := make([]GroupStat, 0, res.NGroups)
	res.Each(func(key uint32, count, sum uint64) {
		groups = append(groups, GroupStat{Key: key, Count: count, Sum: sum})
	})
	return groups, res.Stats
}

// OptimalParams returns the analytically derived smallest G and D that
// hide all probe-loop miss latencies at the Env's memory latency
// (the paper's Theorems 1 and 2).
func (e *Env) OptimalParams() Params {
	return OptimalParamsFor(e.cfg.MemLatency, e.cfg.MemNextLatency)
}

// OptimalParamsFor computes the Theorem 1/2 minima for a probe loop on a
// memory system with full latency t and pipelined latency tnext.
func OptimalParamsFor(t, tnext uint64) Params {
	stages := model.ProbeStages(t, tnext)
	p := Params{G: stages.OptimalG(), D: stages.OptimalD()}
	if p.G == 0 {
		p.G = core.DefaultParams().G
	}
	return p
}

// RunExperiment reproduces one of the paper's figures (e.g. "fig10a"),
// printing its tables to w. Scale is "tiny", "small", or "full". It
// returns an error for unknown ids or scales.
func RunExperiment(w io.Writer, id, scale string) error {
	e, ok := exp.Lookup(id)
	if !ok {
		return fmt.Errorf("hashjoin: unknown experiment %q (have %v)", id, exp.IDs())
	}
	sc, ok := exp.ByName(scale)
	if !ok {
		return fmt.Errorf("hashjoin: unknown scale %q", scale)
	}
	exp.RunAndPrint(w, e, sc, false)
	return nil
}

// ExperimentIDs lists the reproducible figures.
func ExperimentIDs() []string { return exp.IDs() }

// hashCode memoizes the engine's hash function when building Relations,
// as the partition phase would (paper section 7.1).
func hashCode(key uint32) uint32 { return jhash.CodeU32(key) }
