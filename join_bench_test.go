package hashjoin

// Strategy-crossover calibration: the cost-based planner's pinned
// defaults (plan.DefaultNestedLoopCrossover and
// plan.DefaultPartitionCrossoverBytes) are measured here, not guessed.
//
// The nested-loop sweep holds the probe side fixed and grows the build
// side through the planner's decision region: below the crossover a
// flat scan beats paying for a hash-table build, above it the hash
// probe wins. The partition sweep grows the build footprint from
// cache-resident to cache-overflowing and compares one streaming probe
// against the radix-partitioned morsel join. Each point interleaves
// its strategies across repetitions and compares medians.
//
// BenchmarkJoinCrossover writes BENCH_join.json:
//
//	go test -run=^$ -bench BenchmarkJoinCrossover -benchtime=1x .
//
// cmd/benchcheck asserts the committed document and the pinned
// constants agree, so re-calibrating on new hardware must update both.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"hashjoin/internal/native"
	"hashjoin/internal/plan"
	"hashjoin/internal/workload"
)

const (
	joinBenchNLProbe = 8192 // probe rows for the nested-loop sweep
	joinBenchNLTuple = 16
	joinBenchPTuple  = 64
	joinBenchPFanout = 64
)

// joinBenchNLSizes sweeps the build side through the nested-loop
// decision region; joinBenchPSizes sweeps the build footprint from
// comfortably cache-resident to several times any last-level cache.
var (
	joinBenchNLSizes = []int{2, 4, 8, 16, 32, 64}
	joinBenchPSizes  = []int{4096, 8192, 16384, 32768, 131072, 524288}
)

// nlPoint is one build-size sample of the nested-loop sweep.
type nlPoint struct {
	BuildRows    int     `json:"build_rows"`
	NestedLoopMs float64 `json:"nested_loop_ms"`
	StreamMs     float64 `json:"stream_ms"`
}

// partitionPoint is one build-footprint sample of the partition sweep.
type partitionPoint struct {
	BuildRows     int     `json:"build_rows"`
	BuildBytes    int     `json:"build_bytes"`
	StreamMs      float64 `json:"stream_ms"`
	PartitionedMs float64 `json:"partitioned_ms"`
	Fanout        int     `json:"fanout"`
}

// joinTrajectory is the BENCH_join.json document. The pinned crossover
// fields echo the plan package's compiled defaults; the measured fields
// report what this run observed. benchcheck requires the pinned
// nested-loop crossover to sit inside the measured winning region.
type joinTrajectory struct {
	NProbe      int  `json:"n_probe"`
	TupleSize   int  `json:"tuple_size"`
	GOMAXPROCS  int  `json:"gomaxprocs"`
	PrefetchASM bool `json:"prefetch_asm"`

	NestedLoopCrossoverRows         int `json:"nested_loop_crossover_rows"`
	MeasuredNestedLoopCrossoverRows int `json:"measured_nested_loop_crossover_rows"`
	PartitionCrossoverBytes         int `json:"partition_crossover_bytes"`
	// MeasuredPartitionCrossoverBytes is the smallest swept footprint
	// where the partitioned join beat the streaming probe, or 0 when it
	// never did inside the sweep (single-core hosts with large caches).
	MeasuredPartitionCrossoverBytes int `json:"measured_partition_crossover_bytes"`

	NestedLoopPoints []nlPoint        `json:"nested_loop_points"`
	PartitionPoints  []partitionPoint `json:"partition_points"`
}

// runJoinBenchOnce runs one strategy over one prepared pair and
// validates the exact inner-join ground truth.
func runJoinBenchOnce(tb testing.TB, env *Env, pair *workload.Pair, s Strategy, fanout int) PipelineResult {
	build := &Relation{rel: pair.Build, env: env}
	probe := &Relation{rel: pair.Probe, env: env}
	opts := []PipelineOption{WithEngine(EngineNative), WithStrategy(s)}
	if fanout > 1 {
		opts = append(opts, WithPipelineFanout(fanout))
	}
	res, err := env.RunPipeline(build, probe, opts...)
	if err != nil {
		tb.Fatalf("strategy %v over %d build rows: %v", s, pair.Build.NTuples, err)
	}
	if res.NOutput != pair.ExpectedMatches || res.KeySum != pair.KeySum {
		tb.Fatalf("strategy %v over %d build rows: wrong result (%d, %d), want (%d, %d)",
			s, pair.Build.NTuples, res.NOutput, res.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
	return res
}

// sweepPair measures two strategies over one pair with interleaved
// repetitions and returns the per-strategy median elapsed times.
func sweepPair(tb testing.TB, env *Env, pair *workload.Pair, a, b Strategy, bFanout, reps int) (time.Duration, time.Duration) {
	var at, bt []time.Duration
	for rep := 0; rep < reps; rep++ {
		at = append(at, runJoinBenchOnce(tb, env, pair, a, 1).Elapsed)
		bt = append(bt, runJoinBenchOnce(tb, env, pair, b, bFanout).Elapsed)
	}
	return medianDuration(at), medianDuration(bt)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// BenchmarkJoinCrossover measures the nested-loop/stream and
// stream/partitioned crossover points and emits BENCH_join.json.
func BenchmarkJoinCrossover(b *testing.B) {
	env := NewEnv(WithCapacity(384 << 20))
	nlPairs := make([]*workload.Pair, len(joinBenchNLSizes))
	for i, n := range joinBenchNLSizes {
		nlPairs[i] = workload.Generate(env.mem.A, workload.Spec{
			NBuild: n, NProbe: joinBenchNLProbe, TupleSize: joinBenchNLTuple,
			MatchRate: 0.5, Seed: int64(60 + i),
		})
	}
	pPairs := make([]*workload.Pair, len(joinBenchPSizes))
	for i, n := range joinBenchPSizes {
		pPairs[i] = workload.Generate(env.mem.A, workload.Spec{
			NBuild: n, NProbe: n, TupleSize: joinBenchPTuple,
			MatchesPerBuild: 1, Seed: int64(70 + i),
		})
	}

	// Untimed warmup: touch every strategy's scratch pools once.
	runJoinBenchOnce(b, env, nlPairs[0], StrategyNestedLoop, 1)
	runJoinBenchOnce(b, env, nlPairs[0], StrategyStream, 1)
	runJoinBenchOnce(b, env, pPairs[0], StrategyPartitioned, joinBenchPFanout)

	traj := joinTrajectory{
		NProbe:                  joinBenchNLProbe,
		TupleSize:               joinBenchNLTuple,
		GOMAXPROCS:              runtime.GOMAXPROCS(0),
		PrefetchASM:             NativeHasPrefetch(),
		NestedLoopCrossoverRows: plan.DefaultNestedLoopCrossover,
		PartitionCrossoverBytes: plan.DefaultPartitionCrossoverBytes,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traj.NestedLoopPoints = traj.NestedLoopPoints[:0]
		traj.PartitionPoints = traj.PartitionPoints[:0]
		traj.MeasuredNestedLoopCrossoverRows = 0
		traj.MeasuredPartitionCrossoverBytes = 0

		for j, pair := range nlPairs {
			nl, st := sweepPair(b, env, pair, StrategyNestedLoop, StrategyStream, 1, 9)
			traj.NestedLoopPoints = append(traj.NestedLoopPoints, nlPoint{
				BuildRows: joinBenchNLSizes[j], NestedLoopMs: ms(nl), StreamMs: ms(st),
			})
			if nl <= st {
				traj.MeasuredNestedLoopCrossoverRows = joinBenchNLSizes[j]
			}
		}
		for j, pair := range pPairs {
			st, pt := sweepPair(b, env, pair, StrategyStream, StrategyPartitioned, joinBenchPFanout, 3)
			footprint := native.BuildFootprint(pair.Build.NTuples, joinBenchPTuple)
			traj.PartitionPoints = append(traj.PartitionPoints, partitionPoint{
				BuildRows: joinBenchPSizes[j], BuildBytes: footprint,
				StreamMs: ms(st), PartitionedMs: ms(pt), Fanout: joinBenchPFanout,
			})
			if pt < st && traj.MeasuredPartitionCrossoverBytes == 0 {
				traj.MeasuredPartitionCrossoverBytes = footprint
			}
		}
	}
	b.StopTimer()

	// Shape gates that hold on any hardware: the flat scan must win at
	// the smallest build side and lose at the largest swept one —
	// otherwise the sweep no longer brackets a crossover and the pinned
	// default is meaningless.
	first, last := traj.NestedLoopPoints[0], traj.NestedLoopPoints[len(traj.NestedLoopPoints)-1]
	if first.NestedLoopMs > first.StreamMs {
		b.Fatalf("nested loop lost at %d build rows (%.3f ms vs %.3f ms): sweep floor too high",
			first.BuildRows, first.NestedLoopMs, first.StreamMs)
	}
	if last.NestedLoopMs <= last.StreamMs {
		b.Fatalf("nested loop still won at %d build rows (%.3f ms vs %.3f ms): sweep ceiling too low",
			last.BuildRows, last.NestedLoopMs, last.StreamMs)
	}
	b.ReportMetric(float64(traj.MeasuredNestedLoopCrossoverRows), "nl-crossover-rows")
	b.ReportMetric(float64(traj.MeasuredPartitionCrossoverBytes), "partition-crossover-bytes")

	if doc, err := json.MarshalIndent(traj, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_join.json", append(doc, '\n'), 0o644); err != nil {
			b.Logf("BENCH_join.json not written: %v", err)
		}
	}
}
