package engine

import (
	"encoding/binary"
	"reflect"
	"testing"

	"hashjoin/internal/core"
	"hashjoin/internal/plan"
	"hashjoin/internal/storage"
	"hashjoin/internal/workload"
)

// FuzzPipelineParity fuzzes the batch geometry of the full pipeline:
// group size G down to 1, pipeline depth D, scheme, native fanout, and
// relation sizes that do not divide the batch size. For every input the
// two backends must produce identical sorted group lists, and the
// derived join totals must match the workload's ground truth.
func FuzzPipelineParity(f *testing.F) {
	f.Add(uint8(19), uint8(1), uint8(1), uint8(0), uint8(40), int64(1))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint8(33), int64(2))  // G=1 degenerate groups
	f.Add(uint8(3), uint8(2), uint8(2), uint8(2), uint8(50), int64(3))  // G does not divide |R|
	f.Add(uint8(8), uint8(4), uint8(0), uint8(2), uint8(21), int64(4))  // baseline, morsel
	f.Add(uint8(25), uint8(3), uint8(2), uint8(0), uint8(64), int64(5)) // G > default

	f.Fuzz(func(t *testing.T, gRaw, dRaw, schemeRaw, fanoutRaw, nRaw uint8, seed int64) {
		g := 1 + int(gRaw)%32
		d := 1 + int(dRaw)%4
		scheme := []core.Scheme{core.SchemeBaseline, core.SchemeGroup, core.SchemePipelined}[int(schemeRaw)%3]
		fanout := 1 << (int(fanoutRaw) % 3) // 1 (streaming), 2, 4 (morsel)
		nBuild := 1 + int(nRaw)             // 1..256, rarely divisible by g

		spec := workload.Spec{
			NBuild:          nBuild,
			TupleSize:       16,
			MatchesPerBuild: 1 + int(seed%3+3)%3,
			PctMatched:      80,
			Skew:            1 + int(nRaw)%2,
			Seed:            seed,
		}
		pair, a, m := testEnv(t, spec)
		params := core.Params{G: g, D: d}
		plan := HashAggregate(HashJoin(Scan(pair.Build), Scan(pair.Probe)), 4, nBuild)

		sim := mustGroups(t, plan, simCfg(m, scheme, params), a)
		nat := mustGroups(t, plan, nativeCfg(a, scheme, params, fanout), a)
		if !reflect.DeepEqual(sim, nat) {
			t.Fatalf("G=%d D=%d %v fanout=%d n=%d: groups differ (sim %d, native %d)",
				g, d, scheme, fanout, nBuild, len(sim), len(nat))
		}
		var nOut, keySum uint64
		for _, grp := range sim {
			nOut += grp.Count
			keySum += uint64(grp.Key) * grp.Count
		}
		if nOut != uint64(pair.ExpectedMatches) || keySum != pair.KeySum {
			t.Fatalf("G=%d D=%d %v fanout=%d n=%d: derived (%d, %d), want (%d, %d)",
				g, d, scheme, fanout, nBuild, nOut, keySum, pair.ExpectedMatches, pair.KeySum)
		}
	})
}

// relKeys reads every tuple's leading u32 key straight off the
// relation's pages — the raw input, independent of any join machinery.
func relKeys(rel *storage.Relation) []uint32 {
	keys := make([]uint32, 0, rel.NTuples)
	rel.Each(func(tuple []byte, _ uint32) {
		keys = append(keys, binary.LittleEndian.Uint32(tuple))
	})
	return keys
}

// nestedLoopReference computes the expected aggregate groups of a join
// with a naive O(|build| * |probe|)-spirit scan over the raw keys: a
// per-key build multiset stands in for the inner loop. Group keys follow
// the output-row convention — matches group under the build key, probe
// survivors (left-outer pads group 0; semi/anti keep their own key)
// under the probe side, unmatched build rows under their build key.
func nestedLoopReference(jt plan.JoinType, buildKeys, probeKeys []uint32) map[uint32]uint64 {
	buildCount := make(map[uint32]uint64, len(buildKeys))
	for _, k := range buildKeys {
		buildCount[k]++
	}
	probeMatched := make(map[uint32]bool)
	groups := make(map[uint32]uint64)
	for _, k := range probeKeys {
		n := buildCount[k]
		switch {
		case jt == plan.LeftSemi:
			if n > 0 {
				groups[k]++
			}
		case jt == plan.LeftAnti:
			if n == 0 {
				groups[k]++
			}
		case n > 0:
			groups[k] += n // one output row per matching build row
		case jt == plan.LeftOuter:
			groups[0]++ // null-padded build half: key reads as 0
		}
		if n > 0 {
			probeMatched[k] = true
		}
	}
	if jt == plan.RightOuter {
		for _, k := range buildKeys {
			if !probeMatched[k] {
				groups[k]++
			}
		}
	}
	return groups
}

func groupCounts(gs []Group) map[uint32]uint64 {
	m := make(map[uint32]uint64, len(gs))
	for _, g := range gs {
		m[g.Key] = g.Count
	}
	return m
}

// FuzzJoinTypeParity fuzzes every join type against a naive
// nested-loop reference computed from the raw relation bytes, across
// both backends, both native strategies the planner can pick for a
// single-table join (stream and nested-loop), and the morsel path. The
// workload generator's own ground truth is deliberately not used: the
// reference re-derives the answer from the tuples, so a generator bug
// cannot mask an engine bug.
func FuzzJoinTypeParity(f *testing.F) {
	f.Add(uint8(0), uint8(40), uint8(50), uint8(0), uint8(0), int64(1))
	f.Add(uint8(1), uint8(33), uint8(0), uint8(2), uint8(1), int64(2))  // left-outer, skewed build
	f.Add(uint8(2), uint8(64), uint8(90), uint8(0), uint8(2), int64(3)) // right-outer, morsel
	f.Add(uint8(3), uint8(5), uint8(100), uint8(1), uint8(0), int64(4)) // semi, tiny build
	f.Add(uint8(4), uint8(21), uint8(10), uint8(0), uint8(1), int64(5)) // anti, sparse matches

	f.Fuzz(func(t *testing.T, jtRaw, nRaw, mrRaw, skewRaw, fanoutRaw uint8, seed int64) {
		jt := plan.JoinTypes()[int(jtRaw)%len(plan.JoinTypes())]
		nBuild := 1 + int(nRaw) // 1..256
		spec := workload.Spec{
			NBuild:     nBuild,
			TupleSize:  16,
			PctMatched: 100,
			MatchRate:  float64(int(mrRaw)%101) / 100,
			Skew:       1 + int(skewRaw)%3,
			NProbe:     1 + 2*nBuild,
			Seed:       seed,
		}
		pair, a, m := testEnv(t, spec)
		want := nestedLoopReference(jt, relKeys(pair.Build), relKeys(pair.Probe))
		logical := HashAggregate(HashJoinTyped(Scan(pair.Build), Scan(pair.Probe), jt), 4, nBuild)

		fanout := 1 << (int(fanoutRaw) % 3) // 1 (streaming), 2, 4 (morsel)
		cfgs := map[string]Config{
			"sim":    simCfg(m, core.SchemeGroup, core.DefaultParams()),
			"native": nativeCfg(a, core.SchemeGroup, core.DefaultParams(), fanout),
		}
		if fanout == 1 {
			nl := nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 1)
			nl.Strategy = plan.NestedLoop
			cfgs["nested-loop"] = nl
		}
		for name, cfg := range cfgs {
			got := groupCounts(mustGroups(t, logical, cfg, a))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v %s fanout=%d n=%d mr=%.2f: %d groups vs reference %d",
					jt, name, fanout, nBuild, spec.MatchRate, len(got), len(want))
			}
		}
	})
}
