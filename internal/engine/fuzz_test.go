package engine

import (
	"reflect"
	"testing"

	"hashjoin/internal/core"
	"hashjoin/internal/workload"
)

// FuzzPipelineParity fuzzes the batch geometry of the full pipeline:
// group size G down to 1, pipeline depth D, scheme, native fanout, and
// relation sizes that do not divide the batch size. For every input the
// two backends must produce identical sorted group lists, and the
// derived join totals must match the workload's ground truth.
func FuzzPipelineParity(f *testing.F) {
	f.Add(uint8(19), uint8(1), uint8(1), uint8(0), uint8(40), int64(1))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint8(33), int64(2))  // G=1 degenerate groups
	f.Add(uint8(3), uint8(2), uint8(2), uint8(2), uint8(50), int64(3))  // G does not divide |R|
	f.Add(uint8(8), uint8(4), uint8(0), uint8(2), uint8(21), int64(4))  // baseline, morsel
	f.Add(uint8(25), uint8(3), uint8(2), uint8(0), uint8(64), int64(5)) // G > default

	f.Fuzz(func(t *testing.T, gRaw, dRaw, schemeRaw, fanoutRaw, nRaw uint8, seed int64) {
		g := 1 + int(gRaw)%32
		d := 1 + int(dRaw)%4
		scheme := []core.Scheme{core.SchemeBaseline, core.SchemeGroup, core.SchemePipelined}[int(schemeRaw)%3]
		fanout := 1 << (int(fanoutRaw) % 3) // 1 (streaming), 2, 4 (morsel)
		nBuild := 1 + int(nRaw)             // 1..256, rarely divisible by g

		spec := workload.Spec{
			NBuild:          nBuild,
			TupleSize:       16,
			MatchesPerBuild: 1 + int(seed%3+3)%3,
			PctMatched:      80,
			Skew:            1 + int(nRaw)%2,
			Seed:            seed,
		}
		pair, a, m := testEnv(t, spec)
		params := core.Params{G: g, D: d}
		plan := HashAggregate(HashJoin(Scan(pair.Build), Scan(pair.Probe)), 4, nBuild)

		sim := mustGroups(t, plan, simCfg(m, scheme, params), a)
		nat := mustGroups(t, plan, nativeCfg(a, scheme, params, fanout), a)
		if !reflect.DeepEqual(sim, nat) {
			t.Fatalf("G=%d D=%d %v fanout=%d n=%d: groups differ (sim %d, native %d)",
				g, d, scheme, fanout, nBuild, len(sim), len(nat))
		}
		var nOut, keySum uint64
		for _, grp := range sim {
			nOut += grp.Count
			keySum += uint64(grp.Key) * grp.Count
		}
		if nOut != uint64(pair.ExpectedMatches) || keySum != pair.KeySum {
			t.Fatalf("G=%d D=%d %v fanout=%d n=%d: derived (%d, %d), want (%d, %d)",
				g, d, scheme, fanout, nBuild, nOut, keySum, pair.ExpectedMatches, pair.KeySum)
		}
	})
}
