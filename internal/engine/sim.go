package engine

// Simulator backend: the batch operators run against vmem.Mem, so every
// data access is timed by the cycle-level memory-hierarchy simulator —
// the batch port of the former per-tuple internal/ops layer. The join
// probes through core.Prober, whose group-prefetched pass is the
// pipeline-friendly scheme of section 5.4: one child batch (<= G rows)
// is exactly one group-prefetched probe pass.

import (
	"context"
	"fmt"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/hash"
	"hashjoin/internal/plan"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// simScan reads a relation in storage order, charging page and slot
// reads, and yields batches of up to batch rows.
type simScan struct {
	m     *vmem.Mem
	rel   *storage.Relation
	batch int
	ctx   context.Context // nil: never cancelled

	pageIdx int
	slotIdx int
	nslots  int
	page    arena.Addr
}

func newSimScan(m *vmem.Mem, rel *storage.Relation, batch int) *simScan {
	return &simScan{m: m, rel: rel, batch: batch, pageIdx: -1}
}

func (s *simScan) Open() error { s.pageIdx = -1; s.slotIdx = 0; s.nslots = 0; return nil }

func (s *simScan) NextBatch(b *Batch) (bool, error) {
	// The scan is every pipeline's data pump, so a per-batch check here
	// bounds how far past cancellation any compiled plan can run.
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return false, err
		}
	}
	b.Reset()
	for len(b.Rows) < s.batch {
		for s.pageIdx < 0 || s.slotIdx >= s.nslots {
			s.pageIdx++
			if s.pageIdx >= s.rel.NPages() {
				return len(b.Rows) > 0, nil
			}
			s.page = s.rel.Pages[s.pageIdx]
			s.m.PrefetchRange(s.page, s.rel.PageSize)
			s.nslots = int(s.m.ReadU16(storage.NSlotsAddr(s.page)))
			s.slotIdx = 0
		}
		slot := storage.SlotAddr(s.page, s.rel.PageSize, s.slotIdx)
		s.slotIdx++
		s.m.S.Read(slot, storage.SlotSize)
		off := s.m.A.U16(slot + storage.SlotOffOffset)
		length := s.m.A.U16(slot + storage.SlotOffLength)
		code := s.m.A.U32(slot + storage.SlotOffHash)
		b.Rows = append(b.Rows, Row{
			Addr: s.page + arena.Addr(off),
			Code: code,
			Len:  int32(length),
		})
	}
	return true, nil
}

func (s *simScan) Close() {}

// simFilter passes through rows whose key lies in [lo, hi], with a
// timed key load and compare per row.
type simFilter struct {
	m     *vmem.Mem
	child Operator
	pred  Pred
	batch int

	in   Batch
	next int
	done bool
}

func newSimFilter(m *vmem.Mem, child Operator, pred Pred, batch int) *simFilter {
	return &simFilter{m: m, child: child, pred: pred, batch: batch}
}

func (f *simFilter) Open() error {
	if err := f.child.Open(); err != nil {
		return err
	}
	f.in.Reset()
	f.next = 0
	f.done = false
	return nil
}

func (f *simFilter) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	for len(b.Rows) < f.batch {
		if f.next >= f.in.Len() {
			if f.done {
				break
			}
			ok, err := f.child.NextBatch(&f.in)
			if err != nil {
				return false, err
			}
			if !ok {
				f.done = true
				break
			}
			f.next = 0
		}
		r := f.in.Rows[f.next]
		f.next++
		k := f.m.ReadU32(r.Addr)
		f.m.Compute(core.CostCompare)
		if k >= f.pred.Lo && k <= f.pred.Hi {
			b.Rows = append(b.Rows, r)
		}
	}
	return len(b.Rows) > 0, nil
}

func (f *simFilter) Close() { f.child.Close() }

// materializeSim drains op into a fresh relation of fixed width with
// timed copies — the pipeline-breaking step of build sides and
// aggregations — and closes op.
func materializeSim(m *vmem.Mem, op Operator, width, pageSize int) (*storage.Relation, error) {
	rel := storage.NewRelation(m.A, storage.KeyPayloadSchema(width), pageSize)
	if err := op.Open(); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()
	buf := make([]byte, width)
	var b Batch
	for {
		ok, err := op.NextBatch(&b)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for i := range b.Rows {
			r := b.Rows[i]
			if int(r.Len) != width {
				panic(fmt.Sprintf("engine: materializing %d-byte row into %d-byte relation", r.Len, width))
			}
			src := m.ReadBytes(r.Addr, width)
			copy(buf, src)
			code := r.Code
			if code == 0 {
				code = hash.Code(buf[:4])
			}
			rel.Append(buf, code)
			// Charge the store at the tuple's landing spot plus its slot.
			last := rel.Page(rel.NPages() - 1)
			addr, n := last.TupleAddr(last.NSlots() - 1)
			m.S.Write(addr, n)
			m.S.Write(storage.SlotAddr(last.Addr, last.Size, last.NSlots()-1), storage.SlotSize)
		}
	}
	return rel, nil
}

// simHashJoin is the pipelined, group-prefetched hash join. Open
// resolves the build side — the build child's base relation when it is
// a plain scan, otherwise a timed materialization (closing the build
// child either way) — and constructs the hash table; NextBatch then
// probes one child batch per group-prefetched pass and yields the
// concatenated build||probe rows.
type simHashJoin struct {
	m          *vmem.Mem
	buildChild Operator
	probeChild Operator
	buildRel   *storage.Relation // non-nil: build child is a plain scan
	buildWidth int
	probeWidth int
	outWidth   int
	params     core.Params
	jt         plan.JoinType

	prober *core.Prober
	rel    *storage.Relation // resolved build relation (right-outer sweep)

	out          []arena.Addr // output ring, grown on demand
	outSlot      int
	pending      []Row
	next         int
	in           Batch
	batch        []core.ProbeTuple
	matched      []bool                  // per-strip probe match bits
	addrIdx      map[arena.Addr]int      // probe Addr -> strip index
	matchedBuild map[arena.Addr]struct{} // right outer: matched build tuples
	done         bool
	swept        bool
	buildClosed  bool
	probeClosed  bool
}

func newSimHashJoin(m *vmem.Mem, build, probe Operator, buildRel *storage.Relation,
	buildWidth, probeWidth int, params core.Params, jt plan.JoinType) *simHashJoin {
	return &simHashJoin{
		m: m, buildChild: build, probeChild: probe, buildRel: buildRel,
		buildWidth: buildWidth, probeWidth: probeWidth, params: params, jt: jt,
	}
}

func (h *simHashJoin) Open() error {
	rel := h.buildRel
	if rel == nil {
		var err error
		rel, err = materializeSim(h.m, h.buildChild, h.buildWidth, 8<<10)
		h.buildClosed = true
		if err != nil {
			return err
		}
	} else {
		h.buildChild.Close()
		h.buildClosed = true
	}
	h.probeClosed = false
	h.rel = rel
	h.prober = core.NewProber(h.m, rel, h.params)
	if err := h.probeChild.Open(); err != nil {
		return err
	}
	h.outWidth = h.buildWidth + h.probeWidth
	if h.jt.ProbeOnly() {
		h.outWidth = h.probeWidth
	}
	if h.jt == plan.RightOuter {
		h.matchedBuild = make(map[arena.Addr]struct{})
	}
	h.batch = h.batch[:0]
	h.out = h.out[:0]
	h.pending = h.pending[:0]
	h.next = 0
	h.done = false
	h.swept = false
	return nil
}

func (h *simHashJoin) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	g := h.prober.BatchSize()
	for h.next >= len(h.pending) {
		if h.done {
			return false, nil
		}
		if err := h.fillPending(); err != nil {
			return false, err
		}
	}
	for len(b.Rows) < g && h.next < len(h.pending) {
		b.Rows = append(b.Rows, h.pending[h.next])
		h.next++
	}
	return len(b.Rows) > 0, nil
}

// fillPending pulls one probe child batch and runs group-prefetched
// probe passes over it, materializing matches into the output ring.
// Child batches are at most G rows by the engine's batch rule, so one
// batch is one pass; oversized batches are strip-mined defensively.
func (h *simHashJoin) fillPending() error {
	h.pending = h.pending[:0]
	h.next = 0
	h.outSlot = 0
	ok, err := h.probeChild.NextBatch(&h.in)
	if err != nil {
		return err
	}
	if !ok {
		// Right outer resolves its unmatched build rows only once the
		// whole probe stream has run: sweep them into pending before
		// declaring the stream done (NextBatch drains pending first).
		if h.jt == plan.RightOuter && !h.swept {
			h.swept = true
			h.sweepUnmatchedBuild()
		}
		h.done = true
		return nil
	}
	g := h.prober.BatchSize()
	rows := h.in.Rows
	for lo := 0; lo < len(rows); lo += g {
		hi := min(lo+g, len(rows))
		h.batch = h.batch[:0]
		for _, r := range rows[lo:hi] {
			h.batch = append(h.batch, core.ProbeTuple{Addr: r.Addr, Len: int(r.Len), Code: r.Code})
		}
		if h.jt == plan.Inner {
			h.prober.ProbeBatch(h.batch, h.emitMatch)
			continue
		}
		h.probeStripTyped()
	}
	return nil
}

// probeStripTyped runs one group-prefetched pass over h.batch with the
// join type's match semantics layered over the inner prober: the core
// prober only reports matches, so per-row outcomes (unmatched-left
// emission, semi dedup, anti inversion) are reconstructed from a strip-
// local match bitmap keyed by probe address — addresses are unique
// within a strip, so Addr -> index is a bijection.
func (h *simHashJoin) probeStripTyped() {
	n := len(h.batch)
	if cap(h.matched) < n {
		h.matched = make([]bool, n)
	} else {
		h.matched = h.matched[:n]
		clear(h.matched)
	}
	if h.jt != plan.RightOuter {
		if h.addrIdx == nil {
			h.addrIdx = make(map[arena.Addr]int, n)
		}
		clear(h.addrIdx)
		for i, pt := range h.batch {
			h.addrIdx[pt.Addr] = i
		}
	}
	var emit func(arena.Addr, int, core.ProbeTuple)
	switch h.jt {
	case plan.LeftOuter:
		emit = func(b arena.Addr, bl int, pt core.ProbeTuple) {
			h.matched[h.addrIdx[pt.Addr]] = true
			h.emitMatch(b, bl, pt)
		}
	case plan.RightOuter:
		emit = func(b arena.Addr, bl int, pt core.ProbeTuple) {
			h.matchedBuild[b] = struct{}{}
			h.emitMatch(b, bl, pt)
		}
	case plan.LeftSemi:
		// First match wins; further matches of the same probe row are
		// suppressed by its strip bit.
		emit = func(_ arena.Addr, _ int, pt core.ProbeTuple) {
			if i := h.addrIdx[pt.Addr]; !h.matched[i] {
				h.matched[i] = true
				h.emitProbeOnly(pt)
			}
		}
	case plan.LeftAnti:
		emit = func(_ arena.Addr, _ int, pt core.ProbeTuple) {
			h.matched[h.addrIdx[pt.Addr]] = true
		}
	}
	h.prober.ProbeBatch(h.batch, emit)
	switch h.jt {
	case plan.LeftOuter:
		for i, pt := range h.batch {
			if !h.matched[i] {
				h.emitNullBuild(pt)
			}
		}
	case plan.LeftAnti:
		for i, pt := range h.batch {
			if !h.matched[i] {
				h.emitProbeOnly(pt)
			}
		}
	}
}

// allocOut hands out the next output ring slot, growing on demand.
func (h *simHashJoin) allocOut() arena.Addr {
	if h.outSlot >= len(h.out) {
		h.out = append(h.out, h.m.Alloc(uint64(h.outWidth), 8))
	}
	dst := h.out[h.outSlot]
	h.outSlot++
	return dst
}

func (h *simHashJoin) emitMatch(build arena.Addr, buildLen int, probe core.ProbeTuple) {
	dst := h.allocOut()
	h.m.Copy(dst, build, buildLen)
	h.m.Copy(dst+arena.Addr(buildLen), probe.Addr, probe.Len)
	h.pending = append(h.pending, Row{Addr: dst, Len: int32(h.outWidth), Code: probe.Code})
}

func (h *simHashJoin) emitProbeOnly(probe core.ProbeTuple) {
	dst := h.allocOut()
	h.m.Copy(dst, probe.Addr, probe.Len)
	h.pending = append(h.pending, Row{Addr: dst, Len: int32(h.outWidth), Code: probe.Code})
}

// emitNullBuild emits an unmatched probe row with the build columns
// null-padded (all-zero bytes, so the row's leading key reads 0). Code
// is left 0: consumers recompute it from the leading key on demand,
// which keeps both backends' codes identical for padded rows.
func (h *simHashJoin) emitNullBuild(probe core.ProbeTuple) {
	dst := h.allocOut()
	nullPadSim(h.m, dst, h.buildWidth)
	h.m.Copy(dst+arena.Addr(h.buildWidth), probe.Addr, probe.Len)
	h.pending = append(h.pending, Row{Addr: dst, Len: int32(h.outWidth)})
}

// sweepUnmatchedBuild walks the build relation in storage order and
// emits every tuple no probe batch matched, probe columns null-padded.
func (h *simHashJoin) sweepUnmatchedBuild() {
	for pi := 0; pi < h.rel.NPages(); pi++ {
		pg := h.rel.Page(pi)
		for si := 0; si < pg.NSlots(); si++ {
			addr, n := pg.TupleAddr(si)
			if _, ok := h.matchedBuild[addr]; ok {
				continue
			}
			dst := h.allocOut()
			h.m.Copy(dst, addr, n)
			nullPadSim(h.m, dst+arena.Addr(h.buildWidth), h.probeWidth)
			h.pending = append(h.pending, Row{Addr: dst, Len: int32(h.outWidth)})
		}
	}
}

// nullPadSim zero-fills n bytes at dst as one timed store — the null
// half of an outer join's padded output rows.
func nullPadSim(m *vmem.Mem, dst arena.Addr, n int) {
	clear(m.A.Bytes(dst, uint64(n)))
	m.S.Write(dst, n)
}

// Close closes both children exactly once: the build child is normally
// closed during Open (after materialization), the probe child here.
func (h *simHashJoin) Close() {
	if !h.buildClosed {
		h.buildChild.Close()
		h.buildClosed = true
	}
	if !h.probeClosed {
		h.probeChild.Close()
		h.probeClosed = true
	}
}

// simHashAggregate is the group-by pipeline breaker: Open drains the
// child (or uses its base relation directly when it is a plain scan),
// aggregates with the configured scheme, and stages one 24-byte row per
// group; NextBatch deals them out G at a time.
type simHashAggregate struct {
	m          *vmem.Mem
	child      Operator
	childRel   *storage.Relation // non-nil: child is a plain scan
	childWidth int
	valueOff   int
	groups     int
	scheme     core.Scheme
	params     core.Params

	rows        []Row
	next        int
	childClosed bool
}

func newSimHashAggregate(m *vmem.Mem, child Operator, childRel *storage.Relation,
	childWidth, valueOff, groups int, scheme core.Scheme, params core.Params) *simHashAggregate {
	return &simHashAggregate{
		m: m, child: child, childRel: childRel, childWidth: childWidth,
		valueOff: valueOff, groups: groups, scheme: scheme, params: params,
	}
}

func (ha *simHashAggregate) Open() error {
	rel := ha.childRel
	if rel == nil {
		var err error
		rel, err = materializeSim(ha.m, ha.child, ha.childWidth, 8<<10)
		ha.childClosed = true
		if err != nil {
			return err
		}
	} else {
		ha.child.Close()
		ha.childClosed = true
	}
	scheme := ha.scheme
	if scheme == core.SchemeCombined {
		scheme = core.SchemeGroup
	}
	res := core.AggregateAt(ha.m, rel, ha.groups, ha.valueOff, scheme, ha.params)
	ha.rows = ha.rows[:0]
	m := ha.m
	res.Each(func(key uint32, count, sum uint64) {
		addr := m.Alloc(AggTupleWidth, 8)
		m.S.Write(addr, AggTupleWidth)
		m.A.PutU32(addr, key)
		m.A.PutU64(addr+8, count)
		m.A.PutU64(addr+16, sum)
		ha.rows = append(ha.rows, Row{Addr: addr, Len: AggTupleWidth, Code: hash.CodeU32(key)})
	})
	ha.next = 0
	return nil
}

func (ha *simHashAggregate) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	batch := ha.params.G
	if batch < 1 {
		batch = core.DefaultParams().G
	}
	for len(b.Rows) < batch && ha.next < len(ha.rows) {
		b.Rows = append(b.Rows, ha.rows[ha.next])
		ha.next++
	}
	return len(b.Rows) > 0, nil
}

// Close closes the child exactly once — drained children were already
// closed during Open (the former per-tuple operator leaked this).
func (ha *simHashAggregate) Close() {
	if !ha.childClosed {
		ha.child.Close()
		ha.childClosed = true
	}
}
