package engine

// Simulator backend: the batch operators run against vmem.Mem, so every
// data access is timed by the cycle-level memory-hierarchy simulator —
// the batch port of the former per-tuple internal/ops layer. The join
// probes through core.Prober, whose group-prefetched pass is the
// pipeline-friendly scheme of section 5.4: one child batch (<= G rows)
// is exactly one group-prefetched probe pass.

import (
	"context"
	"fmt"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/hash"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// simScan reads a relation in storage order, charging page and slot
// reads, and yields batches of up to batch rows.
type simScan struct {
	m     *vmem.Mem
	rel   *storage.Relation
	batch int
	ctx   context.Context // nil: never cancelled

	pageIdx int
	slotIdx int
	nslots  int
	page    arena.Addr
}

func newSimScan(m *vmem.Mem, rel *storage.Relation, batch int) *simScan {
	return &simScan{m: m, rel: rel, batch: batch, pageIdx: -1}
}

func (s *simScan) Open() error { s.pageIdx = -1; s.slotIdx = 0; s.nslots = 0; return nil }

func (s *simScan) NextBatch(b *Batch) (bool, error) {
	// The scan is every pipeline's data pump, so a per-batch check here
	// bounds how far past cancellation any compiled plan can run.
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return false, err
		}
	}
	b.Reset()
	for len(b.Rows) < s.batch {
		for s.pageIdx < 0 || s.slotIdx >= s.nslots {
			s.pageIdx++
			if s.pageIdx >= s.rel.NPages() {
				return len(b.Rows) > 0, nil
			}
			s.page = s.rel.Pages[s.pageIdx]
			s.m.PrefetchRange(s.page, s.rel.PageSize)
			s.nslots = int(s.m.ReadU16(storage.NSlotsAddr(s.page)))
			s.slotIdx = 0
		}
		slot := storage.SlotAddr(s.page, s.rel.PageSize, s.slotIdx)
		s.slotIdx++
		s.m.S.Read(slot, storage.SlotSize)
		off := s.m.A.U16(slot + storage.SlotOffOffset)
		length := s.m.A.U16(slot + storage.SlotOffLength)
		code := s.m.A.U32(slot + storage.SlotOffHash)
		b.Rows = append(b.Rows, Row{
			Addr: s.page + arena.Addr(off),
			Code: code,
			Len:  int32(length),
		})
	}
	return true, nil
}

func (s *simScan) Close() {}

// simFilter passes through rows whose key lies in [lo, hi], with a
// timed key load and compare per row.
type simFilter struct {
	m     *vmem.Mem
	child Operator
	pred  Pred
	batch int

	in   Batch
	next int
	done bool
}

func newSimFilter(m *vmem.Mem, child Operator, pred Pred, batch int) *simFilter {
	return &simFilter{m: m, child: child, pred: pred, batch: batch}
}

func (f *simFilter) Open() error {
	if err := f.child.Open(); err != nil {
		return err
	}
	f.in.Reset()
	f.next = 0
	f.done = false
	return nil
}

func (f *simFilter) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	for len(b.Rows) < f.batch {
		if f.next >= f.in.Len() {
			if f.done {
				break
			}
			ok, err := f.child.NextBatch(&f.in)
			if err != nil {
				return false, err
			}
			if !ok {
				f.done = true
				break
			}
			f.next = 0
		}
		r := f.in.Rows[f.next]
		f.next++
		k := f.m.ReadU32(r.Addr)
		f.m.Compute(core.CostCompare)
		if k >= f.pred.Lo && k <= f.pred.Hi {
			b.Rows = append(b.Rows, r)
		}
	}
	return len(b.Rows) > 0, nil
}

func (f *simFilter) Close() { f.child.Close() }

// materializeSim drains op into a fresh relation of fixed width with
// timed copies — the pipeline-breaking step of build sides and
// aggregations — and closes op.
func materializeSim(m *vmem.Mem, op Operator, width, pageSize int) (*storage.Relation, error) {
	rel := storage.NewRelation(m.A, storage.KeyPayloadSchema(width), pageSize)
	if err := op.Open(); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()
	buf := make([]byte, width)
	var b Batch
	for {
		ok, err := op.NextBatch(&b)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for i := range b.Rows {
			r := b.Rows[i]
			if int(r.Len) != width {
				panic(fmt.Sprintf("engine: materializing %d-byte row into %d-byte relation", r.Len, width))
			}
			src := m.ReadBytes(r.Addr, width)
			copy(buf, src)
			code := r.Code
			if code == 0 {
				code = hash.Code(buf[:4])
			}
			rel.Append(buf, code)
			// Charge the store at the tuple's landing spot plus its slot.
			last := rel.Page(rel.NPages() - 1)
			addr, n := last.TupleAddr(last.NSlots() - 1)
			m.S.Write(addr, n)
			m.S.Write(storage.SlotAddr(last.Addr, last.Size, last.NSlots()-1), storage.SlotSize)
		}
	}
	return rel, nil
}

// simHashJoin is the pipelined, group-prefetched hash join. Open
// resolves the build side — the build child's base relation when it is
// a plain scan, otherwise a timed materialization (closing the build
// child either way) — and constructs the hash table; NextBatch then
// probes one child batch per group-prefetched pass and yields the
// concatenated build||probe rows.
type simHashJoin struct {
	m          *vmem.Mem
	buildChild Operator
	probeChild Operator
	buildRel   *storage.Relation // non-nil: build child is a plain scan
	buildWidth int
	probeWidth int
	params     core.Params

	prober *core.Prober

	out         []arena.Addr // output ring, grown on demand
	pending     []Row
	next        int
	in          Batch
	batch       []core.ProbeTuple
	done        bool
	buildClosed bool
	probeClosed bool
}

func newSimHashJoin(m *vmem.Mem, build, probe Operator, buildRel *storage.Relation,
	buildWidth, probeWidth int, params core.Params) *simHashJoin {
	return &simHashJoin{
		m: m, buildChild: build, probeChild: probe, buildRel: buildRel,
		buildWidth: buildWidth, probeWidth: probeWidth, params: params,
	}
}

func (h *simHashJoin) Open() error {
	rel := h.buildRel
	if rel == nil {
		var err error
		rel, err = materializeSim(h.m, h.buildChild, h.buildWidth, 8<<10)
		h.buildClosed = true
		if err != nil {
			return err
		}
	} else {
		h.buildChild.Close()
		h.buildClosed = true
	}
	h.probeClosed = false
	h.prober = core.NewProber(h.m, rel, h.params)
	if err := h.probeChild.Open(); err != nil {
		return err
	}
	h.batch = h.batch[:0]
	h.out = h.out[:0]
	h.pending = h.pending[:0]
	h.next = 0
	h.done = false
	return nil
}

func (h *simHashJoin) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	g := h.prober.BatchSize()
	for h.next >= len(h.pending) {
		if h.done {
			return false, nil
		}
		if err := h.fillPending(); err != nil {
			return false, err
		}
	}
	for len(b.Rows) < g && h.next < len(h.pending) {
		b.Rows = append(b.Rows, h.pending[h.next])
		h.next++
	}
	return len(b.Rows) > 0, nil
}

// fillPending pulls one probe child batch and runs group-prefetched
// probe passes over it, materializing matches into the output ring.
// Child batches are at most G rows by the engine's batch rule, so one
// batch is one pass; oversized batches are strip-mined defensively.
func (h *simHashJoin) fillPending() error {
	h.pending = h.pending[:0]
	h.next = 0
	ok, err := h.probeChild.NextBatch(&h.in)
	if err != nil {
		return err
	}
	if !ok {
		h.done = true
		return nil
	}
	g := h.prober.BatchSize()
	outWidth := h.buildWidth + h.probeWidth
	slot := 0
	emit := func(build arena.Addr, buildLen int, probe core.ProbeTuple) {
		if slot >= len(h.out) {
			h.out = append(h.out, h.m.Alloc(uint64(outWidth), 8))
		}
		dst := h.out[slot]
		slot++
		h.m.Copy(dst, build, buildLen)
		h.m.Copy(dst+arena.Addr(buildLen), probe.Addr, probe.Len)
		h.pending = append(h.pending, Row{Addr: dst, Len: int32(outWidth), Code: probe.Code})
	}
	rows := h.in.Rows
	for lo := 0; lo < len(rows); lo += g {
		hi := min(lo+g, len(rows))
		h.batch = h.batch[:0]
		for _, r := range rows[lo:hi] {
			h.batch = append(h.batch, core.ProbeTuple{Addr: r.Addr, Len: int(r.Len), Code: r.Code})
		}
		h.prober.ProbeBatch(h.batch, emit)
	}
	return nil
}

// Close closes both children exactly once: the build child is normally
// closed during Open (after materialization), the probe child here.
func (h *simHashJoin) Close() {
	if !h.buildClosed {
		h.buildChild.Close()
		h.buildClosed = true
	}
	if !h.probeClosed {
		h.probeChild.Close()
		h.probeClosed = true
	}
}

// simHashAggregate is the group-by pipeline breaker: Open drains the
// child (or uses its base relation directly when it is a plain scan),
// aggregates with the configured scheme, and stages one 24-byte row per
// group; NextBatch deals them out G at a time.
type simHashAggregate struct {
	m          *vmem.Mem
	child      Operator
	childRel   *storage.Relation // non-nil: child is a plain scan
	childWidth int
	valueOff   int
	groups     int
	scheme     core.Scheme
	params     core.Params

	rows        []Row
	next        int
	childClosed bool
}

func newSimHashAggregate(m *vmem.Mem, child Operator, childRel *storage.Relation,
	childWidth, valueOff, groups int, scheme core.Scheme, params core.Params) *simHashAggregate {
	return &simHashAggregate{
		m: m, child: child, childRel: childRel, childWidth: childWidth,
		valueOff: valueOff, groups: groups, scheme: scheme, params: params,
	}
}

func (ha *simHashAggregate) Open() error {
	rel := ha.childRel
	if rel == nil {
		var err error
		rel, err = materializeSim(ha.m, ha.child, ha.childWidth, 8<<10)
		ha.childClosed = true
		if err != nil {
			return err
		}
	} else {
		ha.child.Close()
		ha.childClosed = true
	}
	scheme := ha.scheme
	if scheme == core.SchemeCombined {
		scheme = core.SchemeGroup
	}
	res := core.AggregateAt(ha.m, rel, ha.groups, ha.valueOff, scheme, ha.params)
	ha.rows = ha.rows[:0]
	m := ha.m
	res.Each(func(key uint32, count, sum uint64) {
		addr := m.Alloc(AggTupleWidth, 8)
		m.S.Write(addr, AggTupleWidth)
		m.A.PutU32(addr, key)
		m.A.PutU64(addr+8, count)
		m.A.PutU64(addr+16, sum)
		ha.rows = append(ha.rows, Row{Addr: addr, Len: AggTupleWidth, Code: hash.CodeU32(key)})
	})
	ha.next = 0
	return nil
}

func (ha *simHashAggregate) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	batch := ha.params.G
	if batch < 1 {
		batch = core.DefaultParams().G
	}
	for len(b.Rows) < batch && ha.next < len(ha.rows) {
		b.Rows = append(b.Rows, ha.rows[ha.next])
		ha.next++
	}
	return len(b.Rows) > 0, nil
}

// Close closes the child exactly once — drained children were already
// closed during Open (the former per-tuple operator leaked this).
func (ha *simHashAggregate) Close() {
	if !ha.childClosed {
		ha.child.Close()
		ha.childClosed = true
	}
}
