package engine

import (
	"strings"
	"testing"

	"hashjoin/internal/core"
	"hashjoin/internal/native"
	"hashjoin/internal/plan"
	"hashjoin/internal/workload"
)

// TestEngineJoinTypesParity runs every join type through the compiled
// pipeline on both backends (and both native strategies) and checks the
// results against the workload's exact per-join-type ground truth.
func TestEngineJoinTypesParity(t *testing.T) {
	spec := workload.Spec{NBuild: 400, TupleSize: 20, PctMatched: 70,
		MatchRate: 0.55, NProbe: 900, Seed: 21}
	for _, jt := range plan.JoinTypes() {
		for _, fanout := range []int{1, 4} {
			pair, a, m := testEnv(t, spec)
			if pair.ProbeMatched == 0 || pair.UnmatchedBuildRows == 0 {
				t.Fatalf("degenerate workload: %+v", pair)
			}
			p := HashJoinTyped(Scan(pair.Build), Scan(pair.Probe), jt)
			wantN, wantSum := pair.Expected(jt)

			results := map[string]Result{
				"native": mustRun(t, p, nativeCfg(a, core.SchemeGroup, core.DefaultParams(), fanout), a),
			}
			if fanout == 1 {
				results["sim"] = mustRun(t, p, simCfg(m, core.SchemeGroup, core.DefaultParams()), a)
			}
			for name, r := range results {
				if r.NRows != wantN || r.KeySum != wantSum {
					t.Errorf("%v/fanout=%d %s: (NRows, KeySum) = (%d, %d), want (%d, %d)",
						jt, fanout, name, r.NRows, r.KeySum, wantN, wantSum)
				}
			}
		}
	}
}

// TestNestedLoopStrategyParity forces the nested-loop strategy on a
// tiny build side — the planner's regime for it — on both backends,
// for every join type.
func TestNestedLoopStrategyParity(t *testing.T) {
	spec := workload.Spec{NBuild: 30, TupleSize: 16, PctMatched: 80,
		MatchRate: 0.5, NProbe: 200, Seed: 31}
	for _, jt := range plan.JoinTypes() {
		pair, a, m := testEnv(t, spec)
		p := HashJoinTyped(Scan(pair.Build), Scan(pair.Probe), jt)
		wantN, wantSum := pair.Expected(jt)

		scfg := simCfg(m, core.SchemeGroup, core.DefaultParams())
		scfg.Strategy = plan.NestedLoop
		ncfg := nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 1)
		ncfg.Strategy = plan.NestedLoop
		for name, r := range map[string]Result{
			"sim":    mustRun(t, p, scfg, a),
			"native": mustRun(t, p, ncfg, a),
		} {
			if r.NRows != wantN || r.KeySum != wantSum {
				t.Errorf("%v %s nested-loop: (NRows, KeySum) = (%d, %d), want (%d, %d)",
					jt, name, r.NRows, r.KeySum, wantN, wantSum)
			}
		}
	}
}

// TestBuildHandleTypedJoin probes one prebuilt shared BuildSide with
// every join type in sequence: each compiled query gets fresh typed
// probe scratch, so the right-outer bitmap of one run cannot leak into
// the next.
func TestBuildHandleTypedJoin(t *testing.T) {
	spec := workload.Spec{NBuild: 300, TupleSize: 16, PctMatched: 60,
		MatchRate: 0.5, NProbe: 700, Seed: 41}
	pair, a, _ := testEnv(t, spec)
	entries := native.Flatten(pair.Build, nil)
	bs, err := native.BuildRows(a.Data(), entries, pair.Spec.TupleSize, native.BuildConfig{})
	if err != nil {
		t.Fatalf("BuildRows: %v", err)
	}
	for _, jt := range plan.JoinTypes() {
		p := HashJoinTyped(Scan(pair.Build), Scan(pair.Probe), jt)
		cfg := nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 1)
		cfg.Build = bs
		r := mustRun(t, p, cfg, a)
		wantN, wantSum := pair.Expected(jt)
		if r.NRows != wantN || r.KeySum != wantSum {
			t.Errorf("%v via BuildSide: (NRows, KeySum) = (%d, %d), want (%d, %d)",
				jt, r.NRows, r.KeySum, wantN, wantSum)
		}
	}
}

// TestCompileStrategyValidation pins the misconfiguration taxonomy: the
// flag combinations the CLI forwards must fail closed at Compile, not
// produce silently-wrong results deep in a run.
func TestCompileStrategyValidation(t *testing.T) {
	spec := workload.Spec{NBuild: 50, TupleSize: 16, MatchesPerBuild: 1, Seed: 51}
	pair, a, m := testEnv(t, spec)
	join := HashJoin(Scan(pair.Build), Scan(pair.Probe))

	cases := []struct {
		name string
		node *Node
		cfg  Config
		want string
	}{
		{"partitioned-on-sim", join,
			Config{Backend: Sim, Mem: m, Strategy: plan.PartitionedHash},
			"Native backend"},
		{"nested-loop-fanout", join,
			Config{Backend: Native, A: a, Strategy: plan.NestedLoop, Fanout: 4},
			"fanout 4 conflicts"},
		{"stream-fanout", join,
			Config{Backend: Native, A: a, Strategy: plan.StreamHash, Fanout: 2},
			"fanout 2 conflicts"},
		{"agg-off-semi-row", HashAggregate(
			HashJoinTyped(Scan(pair.Build), Scan(pair.Probe), plan.LeftSemi), 20, 8),
			Config{Backend: Native, A: a},
			"probe tuple only"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.node, tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Compile error = %v, want substring %q", err, tc.want)
			}
		})
	}

	// The same aggregate offset is fine over an inner join's wider rows.
	inner := HashAggregate(HashJoin(Scan(pair.Build), Scan(pair.Probe)), 20, 8)
	if _, err := Compile(inner, Config{Backend: Native, A: a}); err != nil {
		t.Fatalf("inner-join aggregate at offset 20 should compile: %v", err)
	}
}
