package engine

// Nested-loop join: the planner's strategy for tiny build sides, where
// building a hash table costs more than it saves (see plan.Choose and
// the calibrated crossover in BENCH_join.json). The build side is
// loaded once into a flat key column; each probe row then scans it
// linearly — no hash codes, no directory, no prefetching, which is
// exactly why it wins below the crossover: the whole build side is a
// couple of cache lines. One operator serves both backends; on Sim
// every data access is timed, on Native it is plain memory.

import (
	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/hash"
	"hashjoin/internal/plan"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"

	"encoding/binary"
)

type nestedLoopJoin struct {
	m          *vmem.Mem    // non-nil: Sim backend, accesses timed
	a          *arena.Arena // Native backend arena
	data       []byte       // Native backing bytes (nil on Sim)
	buildChild Operator
	probeChild Operator
	buildRel   *storage.Relation // non-nil: build child is a plain scan
	report     *Report
	jt         plan.JoinType
	buildWidth int
	probeWidth int
	outWidth   int
	batch      int

	buildAddrs   []arena.Addr
	buildKeys    []uint32
	buildMatched []bool // right outer

	out     []arena.Addr // output ring, grown on demand
	outSlot int
	pending []Row
	next    int
	in      Batch
	done    bool
	swept   bool

	buildClosed bool
	probeClosed bool
}

func newNestedLoopJoin(cfg Config, build, probe Operator, buildRel *storage.Relation,
	jt plan.JoinType, buildWidth, probeWidth int) *nestedLoopJoin {
	outWidth := buildWidth + probeWidth
	if jt.ProbeOnly() {
		outWidth = probeWidth
	}
	nl := &nestedLoopJoin{
		a: cfg.A, buildChild: build, probeChild: probe, buildRel: buildRel,
		report: cfg.Report, jt: jt,
		buildWidth: buildWidth, probeWidth: probeWidth,
		outWidth: outWidth, batch: cfg.batchSize(),
	}
	if cfg.Backend == Sim {
		nl.m = cfg.Mem
	}
	return nl
}

func (nl *nestedLoopJoin) Open() error {
	rel := nl.buildRel
	if rel == nil {
		var err error
		if nl.m != nil {
			rel, err = materializeSim(nl.m, nl.buildChild, nl.buildWidth, 8<<10)
		} else {
			rel, err = materializeNative(nl.a, nl.buildChild, nl.buildWidth)
		}
		nl.buildClosed = true
		if err != nil {
			return err
		}
	} else {
		nl.buildChild.Close()
		nl.buildClosed = true
	}
	if nl.m == nil {
		nl.data = nl.a.Data()
	}
	// Load the build side once: tuple addresses plus a flat key column,
	// so the per-probe scan touches contiguous memory.
	nl.buildAddrs = nl.buildAddrs[:0]
	nl.buildKeys = nl.buildKeys[:0]
	for pi := 0; pi < rel.NPages(); pi++ {
		pg := rel.Page(pi)
		for si := 0; si < pg.NSlots(); si++ {
			addr, _ := pg.TupleAddr(si)
			nl.buildAddrs = append(nl.buildAddrs, addr)
			nl.buildKeys = append(nl.buildKeys, nl.readKey(addr))
		}
	}
	if nl.jt == plan.RightOuter {
		nl.buildMatched = make([]bool, len(nl.buildAddrs))
	}
	if nl.report != nil {
		nl.report.JoinFanout = 1
	}
	if err := nl.probeChild.Open(); err != nil {
		return err
	}
	nl.probeClosed = false
	nl.out = nl.out[:0]
	nl.pending = nl.pending[:0]
	nl.next = 0
	nl.done = false
	nl.swept = false
	return nil
}

func (nl *nestedLoopJoin) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	for nl.next >= len(nl.pending) {
		if nl.done {
			return false, nil
		}
		if err := nl.fillPending(); err != nil {
			return false, err
		}
	}
	for len(b.Rows) < nl.batch && nl.next < len(nl.pending) {
		b.Rows = append(b.Rows, nl.pending[nl.next])
		nl.next++
	}
	return len(b.Rows) > 0, nil
}

func (nl *nestedLoopJoin) fillPending() error {
	nl.pending = nl.pending[:0]
	nl.next = 0
	nl.outSlot = 0
	ok, err := nl.probeChild.NextBatch(&nl.in)
	if err != nil {
		return err
	}
	if !ok {
		if nl.jt == plan.RightOuter && !nl.swept {
			nl.swept = true
			nl.sweepUnmatchedBuild()
		}
		nl.done = true
		return nil
	}
	for i := range nl.in.Rows {
		nl.joinProbeRow(nl.in.Rows[i])
	}
	return nil
}

// joinProbeRow scans the key column for one probe row and emits per the
// join type's contract (same output shapes as the hash strategies).
func (nl *nestedLoopJoin) joinProbeRow(r Row) {
	key := nl.readKey(r.Addr)
	found := false
	for i, bk := range nl.buildKeys {
		if nl.m != nil {
			nl.m.Compute(core.CostCompare)
		}
		if bk != key {
			continue
		}
		found = true
		switch nl.jt {
		case plan.LeftSemi:
			nl.emitProbeOnly(r, key)
			return // first match wins
		case plan.LeftAnti:
			return
		case plan.RightOuter:
			nl.buildMatched[i] = true
			nl.emitPair(nl.buildAddrs[i], r, key)
		default: // Inner, LeftOuter
			nl.emitPair(nl.buildAddrs[i], r, key)
		}
	}
	if !found {
		switch nl.jt {
		case plan.LeftOuter:
			nl.emitNullBuild(r)
		case plan.LeftAnti:
			nl.emitProbeOnly(r, key)
		}
	}
}

// sweepUnmatchedBuild emits every build row no probe row matched, probe
// columns null-padded (right outer, after the probe stream ends).
func (nl *nestedLoopJoin) sweepUnmatchedBuild() {
	for i, addr := range nl.buildAddrs {
		if nl.buildMatched[i] {
			continue
		}
		dst := nl.allocOut()
		nl.copyBytes(dst, addr, nl.buildWidth)
		nl.zeroBytes(dst+arena.Addr(nl.buildWidth), nl.probeWidth)
		nl.pending = append(nl.pending, Row{
			Addr: dst, Len: int32(nl.outWidth), Code: hash.CodeU32(nl.buildKeys[i])})
	}
}

func (nl *nestedLoopJoin) emitPair(build arena.Addr, r Row, key uint32) {
	dst := nl.allocOut()
	nl.copyBytes(dst, build, nl.buildWidth)
	nl.copyBytes(dst+arena.Addr(nl.buildWidth), r.Addr, int(r.Len))
	nl.pending = append(nl.pending, Row{Addr: dst, Len: int32(nl.outWidth), Code: hash.CodeU32(key)})
}

func (nl *nestedLoopJoin) emitProbeOnly(r Row, key uint32) {
	dst := nl.allocOut()
	nl.copyBytes(dst, r.Addr, int(r.Len))
	nl.pending = append(nl.pending, Row{Addr: dst, Len: int32(nl.outWidth), Code: hash.CodeU32(key)})
}

func (nl *nestedLoopJoin) emitNullBuild(r Row) {
	dst := nl.allocOut()
	nl.zeroBytes(dst, nl.buildWidth)
	nl.copyBytes(dst+arena.Addr(nl.buildWidth), r.Addr, int(r.Len))
	nl.pending = append(nl.pending, Row{Addr: dst, Len: int32(nl.outWidth), Code: hash.CodeU32(0)})
}

func (nl *nestedLoopJoin) allocOut() arena.Addr {
	if nl.outSlot >= len(nl.out) {
		var addr arena.Addr
		if nl.m != nil {
			addr = nl.m.Alloc(uint64(nl.outWidth), 8)
		} else {
			addr = nl.a.Alloc(uint64(nl.outWidth), 8)
		}
		nl.out = append(nl.out, addr)
	}
	dst := nl.out[nl.outSlot]
	nl.outSlot++
	return dst
}

func (nl *nestedLoopJoin) readKey(addr arena.Addr) uint32 {
	if nl.m != nil {
		return nl.m.ReadU32(addr)
	}
	return binary.LittleEndian.Uint32(nl.data[addr-arena.Base:])
}

func (nl *nestedLoopJoin) copyBytes(dst, src arena.Addr, n int) {
	if nl.m != nil {
		nl.m.Copy(dst, src, n)
		return
	}
	copy(nl.data[dst-arena.Base:dst-arena.Base+uint64(n)], nl.data[src-arena.Base:])
}

func (nl *nestedLoopJoin) zeroBytes(dst arena.Addr, n int) {
	if nl.m != nil {
		nullPadSim(nl.m, dst, n)
		return
	}
	clear(nl.data[dst-arena.Base : dst-arena.Base+uint64(n)])
}

// Close closes both children exactly once (the build child is normally
// closed during Open).
func (nl *nestedLoopJoin) Close() {
	if !nl.buildClosed {
		nl.buildChild.Close()
		nl.buildClosed = true
	}
	if !nl.probeClosed {
		nl.probeChild.Close()
		nl.probeClosed = true
	}
}
