package engine

// Native backend: the batch operators run on real memory with real
// prefetches, reusing the native engine's radix partitioner, flat
// cache-line hash table, and PREFETCHT0 probe loops. A join compiles to
// one of two physical strategies: with Fanout <= 1 the probe side
// streams through a resident table one batch (= one prefetch group) at
// a time; with Fanout > 1 both sides are radix-partitioned and joined
// under morsel-driven parallelism, the workers packing matches into
// output batches that feed the downstream pipeline.

import (
	"context"
	"encoding/binary"
	"runtime"

	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
	"hashjoin/internal/native"
	"hashjoin/internal/plan"
	"hashjoin/internal/storage"
)

// nativeScan reads a relation's slot areas directly from the arena's
// backing bytes, yielding batches of up to batch rows.
type nativeScan struct {
	a     *arena.Arena
	rel   *storage.Relation
	batch int
	ctx   context.Context // nil: never cancelled

	pageIdx int
	slotIdx int
	nslots  int
	page    arena.Addr
}

func newNativeScan(a *arena.Arena, rel *storage.Relation, batch int) *nativeScan {
	return &nativeScan{a: a, rel: rel, batch: batch, pageIdx: -1}
}

func (s *nativeScan) Open() error { s.pageIdx = -1; s.slotIdx = 0; s.nslots = 0; return nil }

func (s *nativeScan) NextBatch(b *Batch) (bool, error) {
	// The scan is every pipeline's data pump, so a per-batch check here
	// bounds how far past cancellation any compiled plan can run.
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return false, err
		}
	}
	b.Reset()
	for len(b.Rows) < s.batch {
		for s.pageIdx < 0 || s.slotIdx >= s.nslots {
			s.pageIdx++
			if s.pageIdx >= s.rel.NPages() {
				return len(b.Rows) > 0, nil
			}
			s.page = s.rel.Pages[s.pageIdx]
			s.nslots = int(s.a.U16(storage.NSlotsAddr(s.page)))
			s.slotIdx = 0
		}
		slot := storage.SlotAddr(s.page, s.rel.PageSize, s.slotIdx)
		s.slotIdx++
		b.Rows = append(b.Rows, Row{
			Addr: s.page + arena.Addr(s.a.U16(slot+storage.SlotOffOffset)),
			Code: s.a.U32(slot + storage.SlotOffHash),
			Len:  int32(s.a.U16(slot + storage.SlotOffLength)),
		})
	}
	return true, nil
}

func (s *nativeScan) Close() {}

// nativeFilter passes through rows whose key lies in [lo, hi].
type nativeFilter struct {
	a     *arena.Arena
	child Operator
	pred  Pred
	batch int

	in   Batch
	next int
	done bool
}

func newNativeFilter(a *arena.Arena, child Operator, pred Pred, batch int) *nativeFilter {
	return &nativeFilter{a: a, child: child, pred: pred, batch: batch}
}

func (f *nativeFilter) Open() error {
	if err := f.child.Open(); err != nil {
		return err
	}
	f.in.Reset()
	f.next = 0
	f.done = false
	return nil
}

func (f *nativeFilter) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	data := f.a.Data()
	for len(b.Rows) < f.batch {
		if f.next >= f.in.Len() {
			if f.done {
				break
			}
			ok, err := f.child.NextBatch(&f.in)
			if err != nil {
				return false, err
			}
			if !ok {
				f.done = true
				break
			}
			f.next = 0
		}
		r := f.in.Rows[f.next]
		f.next++
		k := binary.LittleEndian.Uint32(data[r.Addr-arena.Base:])
		if k >= f.pred.Lo && k <= f.pred.Hi {
			b.Rows = append(b.Rows, r)
		}
	}
	return len(b.Rows) > 0, nil
}

func (f *nativeFilter) Close() { f.child.Close() }

// materializeNative drains op into a fresh relation of fixed width
// (plain byte copies, no timing) and closes op.
func materializeNative(a *arena.Arena, op Operator, width int) (*storage.Relation, error) {
	rel := storage.NewRelation(a, storage.KeyPayloadSchema(width), 8<<10)
	if err := op.Open(); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()
	var b Batch
	for {
		ok, err := op.NextBatch(&b)
		if err != nil {
			return nil, err
		}
		if !ok {
			return rel, nil
		}
		for i := range b.Rows {
			r := b.Rows[i]
			tup := a.Bytes(r.Addr, uint64(r.Len))
			code := r.Code
			if code == 0 {
				code = hash.Code(tup[:4])
			}
			rel.Append(tup, code)
		}
	}
}

// pipeBuf is one in-flight output batch of the morsel join: its rows
// plus the arena scratch block their bytes live in. Buffers circulate
// between a free list and the output channel; a buffer's rows stay
// valid until it returns to the free list.
type pipeBuf struct {
	rows    []Row
	scratch arena.Addr
}

// nativeHashJoin joins natively in one of two modes (see the file
// comment). Both deliver the concatenated build||probe rows in batches
// of at most G.
type nativeHashJoin struct {
	cfg        Config
	a          *arena.Arena
	data       []byte
	buildChild Operator
	probeChild Operator
	buildRel   *storage.Relation // non-nil: build child is a plain scan
	probeRel   *storage.Relation // non-nil: probe child is a plain scan
	buildWidth int
	probeWidth int
	outWidth   int
	batch      int
	jt         plan.JoinType

	buildClosed bool
	probeClosed bool

	// Streaming mode (fanout <= 1).
	prober       *native.Prober
	buildEntries []native.Entry
	probeEntries []native.Entry
	out          []arena.Addr // output ring, grown on demand
	outSlot      int
	sink         func(build []byte, pref uint64) // persistent emit closure (allocation-free probing)
	pending      []Row
	next         int
	in           Batch
	done         bool

	// Morsel mode (fanout > 1, or a streaming build over MemBudget).
	morsel    bool
	free      chan *pipeBuf
	outc      chan *pipeBuf
	last      *pipeBuf
	emits     []pipeEmitter
	morselRes native.Result // written by the background join, read after outc closes
	morselErr error         // ditto
	reported  bool
}

func newNativeHashJoin(cfg Config, build, probe Operator, buildRel, probeRel *storage.Relation,
	buildWidth, probeWidth int, jt plan.JoinType) *nativeHashJoin {
	outWidth := buildWidth + probeWidth
	if jt.ProbeOnly() {
		outWidth = probeWidth
	}
	return &nativeHashJoin{
		cfg: cfg, a: cfg.A, buildChild: build, probeChild: probe,
		buildRel: buildRel, probeRel: probeRel,
		buildWidth: buildWidth, probeWidth: probeWidth,
		outWidth: outWidth, batch: cfg.batchSize(), jt: jt,
		morsel: cfg.Fanout > 1,
	}
}

// resolveBuild returns the build side as a relation, materializing a
// non-scan child; either way the build child ends closed.
func (h *nativeHashJoin) resolveBuild() (*storage.Relation, error) {
	if h.buildRel != nil {
		h.buildChild.Close()
		h.buildClosed = true
		return h.buildRel, nil
	}
	rel, err := materializeNative(h.a, h.buildChild, h.buildWidth)
	h.buildClosed = true
	return rel, err
}

func (h *nativeHashJoin) Open() error {
	h.data = h.a.Data()
	h.buildClosed, h.probeClosed = false, false
	h.morselErr = nil
	h.reported = false
	h.morsel = h.cfg.Fanout > 1 && h.cfg.Build == nil

	if h.cfg.Build != nil {
		// A pre-built immutable BuildSide replaces the whole build
		// phase: the build child is never opened, nothing is flattened
		// or inserted, and the table's memory is accounted to whoever
		// owns the handle (the service's build cache), not this query's
		// budget. The probe side streams through fresh probe scratch
		// over the shared table.
		h.buildChild.Close()
		h.buildClosed = true
		h.prober = h.cfg.Build.NewTypedProber(h.jt, h.cfg.nativeScheme(),
			h.cfg.Params.G, h.cfg.Params.D)
	} else {
		rel, err := h.resolveBuild()
		if err != nil {
			return err
		}
		// Budget governor: a streaming join keeps the whole build side
		// resident in one table; when that footprint exceeds MemBudget,
		// degrade to the partitioned morsel strategy, whose fan-out (and,
		// if a pair is still oversized, recursive re-partitioning) bounds
		// the per-pair resident set the way the paper's GRACE partition
		// phase does.
		if !h.morsel && h.cfg.MemBudget > 0 &&
			native.BuildFootprint(rel.NTuples, h.buildWidth) > h.cfg.MemBudget {
			h.morsel = true
		}
		if h.morsel {
			return h.openMorsel(rel)
		}
		h.buildEntries = native.Flatten(rel, h.buildEntries)
		h.prober = native.NewTypedProber(h.data, h.buildEntries, h.buildWidth,
			h.jt, h.cfg.nativeScheme(), h.cfg.Params.G, h.cfg.Params.D)
	}
	if h.cfg.Report != nil {
		h.cfg.Report.JoinFanout = 1
	}
	if err := h.probeChild.Open(); err != nil {
		return err
	}
	h.out = h.out[:0]
	h.sink = func(build []byte, pref uint64) {
		if h.outSlot >= len(h.out) {
			h.out = append(h.out, h.a.Alloc(uint64(h.outWidth), 8))
		}
		dst := h.out[h.outSlot]
		h.outSlot++
		h.pending = append(h.pending, h.writeMatch(dst, build, pref))
	}
	h.pending = h.pending[:0]
	h.next = 0
	h.done = false
	return nil
}

func (h *nativeHashJoin) NextBatch(b *Batch) (bool, error) {
	if h.morsel {
		return h.nextMorsel(b)
	}
	b.Reset()
	for h.next >= len(h.pending) {
		if h.done {
			return false, nil
		}
		if err := h.fillPending(); err != nil {
			return false, err
		}
	}
	for len(b.Rows) < h.batch && h.next < len(h.pending) {
		b.Rows = append(b.Rows, h.pending[h.next])
		h.next++
	}
	return len(b.Rows) > 0, nil
}

// fillPending pulls one probe child batch, converts it to entries, and
// runs one prefetched probe pass, materializing matches into the ring.
func (h *nativeHashJoin) fillPending() error {
	h.pending = h.pending[:0]
	h.next = 0
	ok, err := h.probeChild.NextBatch(&h.in)
	if err != nil {
		return err
	}
	if !ok {
		// End of the probe stream: a right-outer prober still holds the
		// build rows no batch matched; drain them into pending (with
		// probeRef 0, so writeMatch null-pads the probe half) before
		// declaring done.
		if h.jt == plan.RightOuter {
			h.outSlot = 0
			h.prober.EmitUnmatchedBuild(h.sink)
		}
		h.done = true
		return nil
	}
	h.probeEntries = h.probeEntries[:0]
	for i := range h.in.Rows {
		r := h.in.Rows[i]
		key := binary.LittleEndian.Uint32(h.data[r.Addr-arena.Base:])
		code := r.Code
		if code == 0 {
			code = hash.CodeU32(key)
		}
		h.probeEntries = append(h.probeEntries, native.Entry{Code: code, Key: key, Ref: r.Addr})
	}
	h.outSlot = 0
	h.prober.ProbeBatch(h.probeEntries, h.sink)
	return nil
}

// writeMatch materializes one output row at dst per the join type's
// sink contract: build bytes come straight from the row table's
// serialized row (the build relation is never touched on the probe
// path); a nil build means no build row (probe-only output, or a
// left-outer null pad), probeRef 0 means no probe row (a right-outer
// sweep row, probe half null-padded).
func (h *nativeHashJoin) writeMatch(dst arena.Addr, build []byte, pref uint64) Row {
	d := h.data[dst-arena.Base:]
	if h.jt.ProbeOnly() {
		copy(d[:h.outWidth], h.data[pref-arena.Base:])
	} else {
		if build == nil {
			clear(d[:h.buildWidth])
		} else {
			copy(d[:h.buildWidth], build)
		}
		if pref == 0 {
			clear(d[h.buildWidth:h.outWidth])
		} else {
			copy(d[h.buildWidth:h.outWidth], h.data[pref-arena.Base:])
		}
	}
	key := binary.LittleEndian.Uint32(d)
	return Row{Addr: dst, Len: int32(h.outWidth), Code: hash.CodeU32(key)}
}

func (h *nativeHashJoin) Close() {
	if h.morsel {
		h.closeMorsel()
	}
	if !h.buildClosed {
		h.buildChild.Close()
		h.buildClosed = true
	}
	if !h.probeClosed {
		h.probeChild.Close()
		h.probeClosed = true
	}
}

// --- Morsel mode ---

// pipeEmitter packs one worker's matches into pipe buffers. Each worker
// owns one emitter, so no locking is needed on the buffer itself; the
// free list and output channel provide the cross-goroutine handoff.
type pipeEmitter struct {
	h   *nativeHashJoin
	cur *pipeBuf
}

func (e *pipeEmitter) emit(build []byte, pref uint64) {
	if e.cur == nil {
		e.cur = <-e.h.free
		e.cur.rows = e.cur.rows[:0]
	}
	buf := e.cur
	dst := buf.scratch + arena.Addr(len(buf.rows)*e.h.outWidth)
	buf.rows = append(buf.rows, e.h.writeMatch(dst, build, pref))
	if len(buf.rows) == e.h.batch {
		e.h.outc <- buf
		e.cur = nil
	}
}

// flush sends a partially filled buffer downstream (or recycles an
// empty one). Called after all workers have finished.
func (e *pipeEmitter) flush() {
	if e.cur == nil {
		return
	}
	if len(e.cur.rows) > 0 {
		e.h.outc <- e.cur
	} else {
		e.h.free <- e.cur
	}
	e.cur = nil
}

// openMorsel resolves the probe child to a relation (the build side was
// already resolved by Open; the partitioned join is a pipeline breaker
// on both sides), then starts the native morsel join in the background:
// radix partitioning, one pair-joiner per worker, matches streaming
// into pipe buffers. A failure inside the background join — a budget an
// irreducible pair cannot meet, or arena exhaustion recovered from a
// worker — is stored and surfaced by nextMorsel after the output
// channel closes, never panicking across the goroutine boundary.
func (h *nativeHashJoin) openMorsel(buildRel *storage.Relation) error {
	probeRel := h.probeRel
	if probeRel != nil {
		h.probeChild.Close()
	} else {
		var err error
		probeRel, err = materializeNative(h.a, h.probeChild, h.probeWidth)
		if err != nil {
			h.probeClosed = true
			return err
		}
	}
	h.probeClosed = true

	workers := h.cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	nbuf := 2*workers + 4
	h.free = make(chan *pipeBuf, nbuf)
	h.outc = make(chan *pipeBuf, nbuf)
	for i := 0; i < nbuf; i++ {
		h.free <- &pipeBuf{
			rows:    make([]Row, 0, h.batch),
			scratch: h.a.Alloc(uint64(h.batch*h.outWidth), 8),
		}
	}
	h.emits = make([]pipeEmitter, workers)
	for i := range h.emits {
		h.emits[i] = pipeEmitter{h: h}
	}
	h.last = nil

	jcfg := native.Config{
		Scheme:   h.cfg.nativeScheme(),
		JoinType: h.jt,
		G:        h.cfg.Params.G, D: h.cfg.Params.D,
		Fanout: h.cfg.Fanout, Workers: workers,
		Pool: h.cfg.Pool, Tenant: h.cfg.Tenant, Weight: h.cfg.Weight,
		Arena:     h.a,
		MemBudget: h.cfg.MemBudget,
		SpillDir:  h.cfg.SpillDir, SpillWorkers: h.cfg.SpillWorkers, NoSpill: h.cfg.NoSpill,
		SpillPageSize: h.cfg.SpillPageSize,
		Hybrid:        h.cfg.Hybrid, BudgetNow: h.cfg.BudgetNow,
		Ctx: h.cfg.Ctx,
	}
	go func() {
		var res native.Result
		var err error
		func() {
			defer arena.RecoverOOM(&err)
			res, err = native.NewJoiner().JoinStream(buildRel, probeRel, jcfg, func(w int) func([]byte, uint64) {
				return h.emits[w].emit
			})
		}()
		if err == nil {
			// All workers are done; partial buffers can be flushed from
			// this single goroutine without racing anyone.
			for i := range h.emits {
				h.emits[i].flush()
			}
		}
		h.morselRes, h.morselErr = res, err
		close(h.outc) // publishes morselRes/morselErr to the foreground
	}()
	return nil
}

func (h *nativeHashJoin) nextMorsel(b *Batch) (bool, error) {
	b.Reset()
	if h.last != nil {
		h.free <- h.last
		h.last = nil
	}
	buf, ok := <-h.outc
	if !ok {
		if h.morselErr != nil {
			return false, h.morselErr
		}
		h.report()
		return false, nil
	}
	b.Rows = append(b.Rows, buf.rows...)
	h.last = buf
	return true, nil
}

// report copies the finished morsel join's execution detail into the
// config's Report, once.
func (h *nativeHashJoin) report() {
	if h.cfg.Report == nil || h.reported {
		return
	}
	h.reported = true
	h.cfg.Report.JoinFanout = h.morselRes.NPartitions
	h.cfg.Report.JoinRecursionDepth = h.morselRes.RecursionDepth
	h.cfg.Report.MorselsExecuted = h.morselRes.PairsJoined
	h.cfg.Report.SpilledPartitions = h.morselRes.SpilledPartitions
	h.cfg.Report.SpillBytesWritten = h.morselRes.SpillBytesWritten
	h.cfg.Report.SpillBytesRead = h.morselRes.SpillBytesRead
	h.cfg.Report.SpillWriteStall = h.morselRes.SpillWriteStall
	h.cfg.Report.SpillReadStall = h.morselRes.SpillReadStall
	h.cfg.Report.SpillFailovers = h.morselRes.SpillFailovers
	h.cfg.Report.SpillRebuilds = h.morselRes.SpillRebuilds
	h.cfg.Report.ResidentPartitions = h.morselRes.Hybrid.ResidentPairs
	h.cfg.Report.DemotedPartitions = h.morselRes.Hybrid.DemotedPairs
	h.cfg.Report.BytesDemoted = h.morselRes.Hybrid.BytesDemoted
}

// closeMorsel drains the output channel so the background join (which
// may be blocked on the free list) runs to completion before the
// operator is torn down.
func (h *nativeHashJoin) closeMorsel() {
	if h.outc == nil {
		return
	}
	if h.last != nil {
		h.free <- h.last
		h.last = nil
	}
	for buf := range h.outc {
		h.free <- buf
	}
	if h.morselErr == nil {
		h.report()
	}
	h.outc = nil
}

// nativeHashAggregate is the native group-by pipeline breaker: Open
// drains the child into the flat native AggTable (header prefetches
// batched per the scheme) and stages one 24-byte row per group.
type nativeHashAggregate struct {
	cfg        Config
	a          *arena.Arena
	child      Operator
	childWidth int
	valueOff   int
	groups     int

	rows        []Row
	next        int
	batch       int
	childClosed bool
	inputs      []native.AggInput
}

func newNativeHashAggregate(cfg Config, child Operator, childWidth, valueOff, groups int) *nativeHashAggregate {
	if valueOff < 4 || childWidth < valueOff+4 {
		panic("engine: aggregation value offset outside the row")
	}
	return &nativeHashAggregate{
		cfg: cfg, a: cfg.A, child: child, childWidth: childWidth,
		valueOff: valueOff, groups: groups, batch: cfg.batchSize(),
	}
}

func (ha *nativeHashAggregate) Open() error {
	data := ha.a.Data()
	table := native.NewAggTable(ha.groups)
	scheme := ha.cfg.nativeScheme()
	g := ha.batch

	ha.childClosed = false
	if err := ha.child.Open(); err != nil {
		return err
	}
	var b Batch
	for {
		ok, err := ha.child.NextBatch(&b)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ha.inputs = ha.inputs[:0]
		for i := range b.Rows {
			r := b.Rows[i]
			base := r.Addr - arena.Base
			key := binary.LittleEndian.Uint32(data[base:])
			code := r.Code
			if code == 0 {
				code = hash.CodeU32(key)
			}
			ha.inputs = append(ha.inputs, native.AggInput{
				Code:  code,
				Key:   key,
				Value: binary.LittleEndian.Uint32(data[base+uint64(ha.valueOff):]),
			})
		}
		table.UpsertBatch(ha.inputs, scheme, g)
	}
	ha.child.Close()
	ha.childClosed = true

	// Stage the group rows in one arena block.
	n := table.NGroups()
	ha.rows = ha.rows[:0]
	ha.next = 0
	if n == 0 {
		return nil
	}
	block := ha.a.Alloc(uint64(n)*AggTupleWidth, 8)
	addr := block
	table.Each(func(key uint32, count, sum uint64) {
		ha.a.PutU32(addr, key)
		ha.a.PutU64(addr+8, count)
		ha.a.PutU64(addr+16, sum)
		ha.rows = append(ha.rows, Row{Addr: addr, Len: AggTupleWidth, Code: hash.CodeU32(key)})
		addr += AggTupleWidth
	})
	return nil
}

func (ha *nativeHashAggregate) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	for len(b.Rows) < ha.batch && ha.next < len(ha.rows) {
		b.Rows = append(b.Rows, ha.rows[ha.next])
		ha.next++
	}
	return len(b.Rows) > 0, nil
}

// Close closes the child exactly once (it is normally closed at the end
// of Open's drain).
func (ha *nativeHashAggregate) Close() {
	if !ha.childClosed {
		ha.child.Close()
		ha.childClosed = true
	}
}
