package engine

import (
	"context"
	"errors"
	"testing"

	"hashjoin/internal/core"
	"hashjoin/internal/fault"
	"hashjoin/internal/native"
	"hashjoin/internal/workload"
)

// Cancellation and fault containment at the engine layer: every
// compiled plan — scan-only, join, aggregate, either backend, either
// native strategy — must stop on a cancelled context with an error that
// matches the context's own sentinel, and injected worker faults must
// surface through Run/Groups as one typed error.

// TestCancelledContextBothBackends runs the full plan shapes under a
// pre-cancelled context on both backends: every drain must fail with a
// cancellation-class error, never return a partial result as success.
func TestCancelledContextBothBackends(t *testing.T) {
	spec := workload.Spec{NBuild: 300, TupleSize: 16, MatchesPerBuild: 1, Seed: 8}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, backend := range []Backend{Sim, Native} {
		for _, agg := range []bool{false, true} {
			pair, a, m := testEnv(t, spec)
			plan := HashJoin(Scan(pair.Build), Scan(pair.Probe))
			if agg {
				plan = HashAggregate(plan, 4, spec.NBuild)
			}
			var cfg Config
			if backend == Sim {
				cfg = simCfg(m, core.SchemeGroup, core.DefaultParams())
			} else {
				cfg = nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 2)
			}
			cfg.Ctx = ctx
			op := mustCompile(t, plan, cfg)
			var err error
			if agg {
				_, err = Groups(op, a)
			} else {
				_, err = Run(op, a)
			}
			if err == nil {
				t.Fatalf("%v agg=%v: cancelled run returned nil error", backend, agg)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%v agg=%v: error %v does not match context.Canceled", backend, agg, err)
			}
		}
	}
}

// TestCancelMorselJoinTyped checks the native morsel strategy surfaces
// cancellation as the typed *native.CancelError through the engine's
// drains, so the public API's error contract holds for compiled plans
// too.
func TestCancelMorselJoinTyped(t *testing.T) {
	spec := workload.Spec{NBuild: 300, TupleSize: 16, MatchesPerBuild: 1, Seed: 9}
	pair, a, _ := testEnv(t, spec)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cfg := nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 4)
	cfg.Ctx = ctx
	_, err := Run(mustCompile(t, HashJoin(Scan(pair.Build), Scan(pair.Probe)), cfg), a)
	var ce *native.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T (%v), want *native.CancelError", err, err)
	}
	if !errors.Is(err, native.ErrCancelled) {
		t.Fatalf("error %v does not match ErrCancelled", err)
	}
}

// TestNilContextUnbounded pins the zero-value contract: a Config with
// no Ctx compiles and runs exactly as before.
func TestNilContextUnbounded(t *testing.T) {
	spec := workload.Spec{NBuild: 200, TupleSize: 16, MatchesPerBuild: 1, Seed: 10}
	pair, a, _ := testEnv(t, spec)
	r := mustRun(t, HashJoin(Scan(pair.Build), Scan(pair.Probe)),
		nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 1), a)
	if r.NRows != pair.ExpectedMatches {
		t.Fatalf("NRows = %d, want %d", r.NRows, pair.ExpectedMatches)
	}
}

// TestWorkerFaultThroughEngine: an injected morsel-worker fault inside
// a compiled plan surfaces as one typed error from the drain, with no
// goroutines left behind.
func TestWorkerFaultThroughEngine(t *testing.T) {
	defer fault.Reset()
	spec := workload.Spec{NBuild: 1000, TupleSize: 16, MatchesPerBuild: 1, Seed: 12}
	pair, a, _ := testEnv(t, spec)
	base := fault.Goroutines()

	fault.Enable(fault.SiteMorselWorker, fault.Fault{Kind: fault.KindError, Count: 1})
	cfg := nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 4)
	cfg.Workers = 2
	_, err := Run(mustCompile(t, HashJoin(Scan(pair.Build), Scan(pair.Probe)), cfg), a)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v, want injected-fault class", err)
	}
	fault.CheckGoroutines(t, base)
}

// TestWorkerPanicThroughEngine: same proof for an injected panic — the
// morsel pipe's background drain must recover it into an error, not
// crash the process or deadlock the operator.
func TestWorkerPanicThroughEngine(t *testing.T) {
	defer fault.Reset()
	spec := workload.Spec{NBuild: 1000, TupleSize: 16, MatchesPerBuild: 1, Seed: 13}
	pair, a, _ := testEnv(t, spec)
	base := fault.Goroutines()

	fault.Enable(fault.SiteMorselWorker, fault.Fault{Kind: fault.KindPanic, Count: 1})
	cfg := nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 4)
	cfg.Workers = 2
	_, err := Run(mustCompile(t, HashJoin(Scan(pair.Build), Scan(pair.Probe)), cfg), a)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v, want injected-fault class", err)
	}
	fault.CheckGoroutines(t, base)
}
