package engine

import (
	"reflect"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/memsim"
	"hashjoin/internal/plan"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

// testEnv generates a workload pair in one shared arena and wraps it in
// a timed memory view — both backends run over the same bytes, which is
// what makes byte-identical results a meaningful assertion.
func testEnv(tb testing.TB, spec workload.Spec) (*workload.Pair, *arena.Arena, *vmem.Mem) {
	tb.Helper()
	a := arena.New(workload.ArenaBytesFor(spec) * 3)
	pair := workload.Generate(a, spec)
	m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
	return pair, a, m
}

func simCfg(m *vmem.Mem, scheme core.Scheme, params core.Params) Config {
	return Config{Backend: Sim, Mem: m, Scheme: scheme, Params: params}
}

// mustCompile / mustRun / mustGroups / mustCollect are the test-side
// drains: any error is fatal, so parity assertions stay one-liners.
func mustCompile(tb testing.TB, plan *Node, cfg Config) Operator {
	tb.Helper()
	op, err := Compile(plan, cfg)
	if err != nil {
		tb.Fatalf("Compile: %v", err)
	}
	return op
}

func mustRun(tb testing.TB, plan *Node, cfg Config, a *arena.Arena) Result {
	tb.Helper()
	r, err := Run(mustCompile(tb, plan, cfg), a)
	if err != nil {
		tb.Fatalf("Run: %v", err)
	}
	return r
}

func mustGroups(tb testing.TB, plan *Node, cfg Config, a *arena.Arena) []Group {
	tb.Helper()
	g, err := Groups(mustCompile(tb, plan, cfg), a)
	if err != nil {
		tb.Fatalf("Groups: %v", err)
	}
	return g
}

func mustCollect(tb testing.TB, plan *Node, cfg Config, a *arena.Arena) [][]byte {
	tb.Helper()
	rows, err := Collect(mustCompile(tb, plan, cfg), a)
	if err != nil {
		tb.Fatalf("Collect: %v", err)
	}
	return rows
}

func nativeCfg(a *arena.Arena, scheme core.Scheme, params core.Params, fanout int) Config {
	return Config{Backend: Native, A: a, Scheme: scheme, Params: params, Fanout: fanout}
}

func TestScanParity(t *testing.T) {
	pair, a, m := testEnv(t, workload.Spec{NBuild: 100, TupleSize: 16, MatchesPerBuild: 1, Seed: 3})
	plan := Scan(pair.Probe)

	sim := mustCollect(t, plan, simCfg(m, core.SchemeGroup, core.DefaultParams()), a)
	nat := mustCollect(t, plan, nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 1), a)
	if len(sim) != pair.Spec.NProbe {
		t.Fatalf("sim scan rows = %d, want %d", len(sim), pair.Spec.NProbe)
	}
	if !reflect.DeepEqual(sim, nat) {
		t.Fatalf("scan rows differ between backends")
	}
}

func TestFilterParity(t *testing.T) {
	pair, a, m := testEnv(t, workload.Spec{NBuild: 200, TupleSize: 16, MatchesPerBuild: 1, Seed: 4})
	plan := Filter(Scan(pair.Build), KeyBetween(0, 1<<30))

	sim := mustCollect(t, plan, simCfg(m, core.SchemeGroup, core.DefaultParams()), a)
	nat := mustCollect(t, plan, nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 1), a)
	if len(sim) == 0 || len(sim) == pair.Spec.NBuild {
		t.Fatalf("filter should be selective but not empty, got %d of %d rows", len(sim), pair.Spec.NBuild)
	}
	if !reflect.DeepEqual(sim, nat) {
		t.Fatalf("filtered rows differ between backends")
	}
}

// TestJoinParity runs the same logical join on both backends across all
// schemes and both native strategies (streaming and morsel) and checks
// the results against the workload's ground truth.
func TestJoinParity(t *testing.T) {
	spec := workload.Spec{NBuild: 400, TupleSize: 20, MatchesPerBuild: 2, PctMatched: 75, Seed: 5}
	for _, scheme := range []core.Scheme{core.SchemeBaseline, core.SchemeGroup, core.SchemePipelined} {
		for _, fanout := range []int{1, 4} {
			pair, a, m := testEnv(t, spec)
			plan := HashJoin(Scan(pair.Build), Scan(pair.Probe))

			sim := mustRun(t, plan, simCfg(m, scheme, core.DefaultParams()), a)
			nat := mustRun(t, plan, nativeCfg(a, scheme, core.DefaultParams(), fanout), a)

			for name, r := range map[string]Result{"sim": sim, "native": nat} {
				if r.NRows != pair.ExpectedMatches {
					t.Errorf("%v/fanout=%d %s: NRows = %d, want %d", scheme, fanout, name, r.NRows, pair.ExpectedMatches)
				}
				if r.KeySum != pair.KeySum {
					t.Errorf("%v/fanout=%d %s: KeySum = %d, want %d", scheme, fanout, name, r.KeySum, pair.KeySum)
				}
			}
		}
	}
}

// TestJoinSkewParity exercises duplicate build keys (bucket chains).
func TestJoinSkewParity(t *testing.T) {
	spec := workload.Spec{NBuild: 300, TupleSize: 16, MatchesPerBuild: 2, Skew: 3, Seed: 6}
	pair, a, m := testEnv(t, spec)
	plan := HashJoin(Scan(pair.Build), Scan(pair.Probe))

	sim := mustRun(t, plan, simCfg(m, core.SchemeGroup, core.DefaultParams()), a)
	nat := mustRun(t, plan, nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 2), a)
	if sim.NRows != pair.ExpectedMatches || nat.NRows != pair.ExpectedMatches {
		t.Fatalf("NRows sim=%d native=%d, want %d", sim.NRows, nat.NRows, pair.ExpectedMatches)
	}
	if sim.KeySum != pair.KeySum || nat.KeySum != pair.KeySum {
		t.Fatalf("KeySum sim=%d native=%d, want %d", sim.KeySum, nat.KeySum, pair.KeySum)
	}
}

// TestJoinMaterializedBuild routes the build side through a filter, so
// both backends take the materialization path instead of the base-
// relation short-circuit.
func TestJoinMaterializedBuild(t *testing.T) {
	spec := workload.Spec{NBuild: 250, TupleSize: 16, MatchesPerBuild: 2, Seed: 7}
	pair, a, m := testEnv(t, spec)
	plan := HashJoin(
		Filter(Scan(pair.Build), KeyBetween(0, ^uint32(0))),
		Filter(Scan(pair.Probe), KeyBetween(0, ^uint32(0))),
	)

	sim := mustRun(t, plan, simCfg(m, core.SchemeGroup, core.DefaultParams()), a)
	nat := mustRun(t, plan, nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 1), a)
	natM := mustRun(t, plan, nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 4), a)
	for name, r := range map[string]Result{"sim": sim, "native": nat, "native-morsel": natM} {
		if r.NRows != pair.ExpectedMatches || r.KeySum != pair.KeySum {
			t.Errorf("%s: got (%d, %d), want (%d, %d)", name, r.NRows, r.KeySum, pair.ExpectedMatches, pair.KeySum)
		}
	}
}

// TestAggregateParity aggregates straight over a base relation.
func TestAggregateParity(t *testing.T) {
	spec := workload.Spec{NBuild: 200, TupleSize: 16, MatchesPerBuild: 3, Skew: 2, Seed: 8}
	for _, scheme := range []core.Scheme{core.SchemeBaseline, core.SchemeGroup, core.SchemePipelined, core.SchemeCombined} {
		pair, a, m := testEnv(t, spec)
		plan := HashAggregate(Scan(pair.Probe), 4, pair.Spec.NBuild)

		sim := mustGroups(t, plan, simCfg(m, scheme, core.DefaultParams()), a)
		nat := mustGroups(t, plan, nativeCfg(a, scheme, core.DefaultParams(), 1), a)
		if !reflect.DeepEqual(sim, nat) {
			t.Fatalf("%v: groups differ between backends (sim %d, native %d groups)", scheme, len(sim), len(nat))
		}
		var total uint64
		for _, g := range sim {
			total += g.Count
		}
		if total != uint64(pair.Spec.NProbe) {
			t.Fatalf("%v: group counts sum to %d, want %d", scheme, total, pair.Spec.NProbe)
		}
	}
}

// TestPipelineParity is the full Scan -> HashJoin -> HashAggregate
// pipeline on both backends: identical sorted group lists, and the
// join's NOutput/KeySum recovered from the groups match ground truth.
func TestPipelineParity(t *testing.T) {
	spec := workload.Spec{NBuild: 300, TupleSize: 24, MatchesPerBuild: 2, PctMatched: 90, Seed: 9}
	for _, scheme := range []core.Scheme{core.SchemeBaseline, core.SchemeGroup, core.SchemePipelined} {
		for _, fanout := range []int{1, 4} {
			pair, a, m := testEnv(t, spec)
			plan := HashAggregate(
				HashJoin(Scan(pair.Build), Scan(pair.Probe)),
				4, pair.Spec.NBuild)

			sim := mustGroups(t, plan, simCfg(m, scheme, core.DefaultParams()), a)
			nat := mustGroups(t, plan, nativeCfg(a, scheme, core.DefaultParams(), fanout), a)
			if !reflect.DeepEqual(sim, nat) {
				t.Fatalf("%v/fanout=%d: pipeline groups differ (sim %d, native %d groups)",
					scheme, fanout, len(sim), len(nat))
			}
			var nOut, keySum uint64
			for _, g := range sim {
				nOut += g.Count
				keySum += uint64(g.Key) * g.Count
			}
			if nOut != uint64(pair.ExpectedMatches) || keySum != pair.KeySum {
				t.Fatalf("%v/fanout=%d: derived (%d, %d), want (%d, %d)",
					scheme, fanout, nOut, keySum, pair.ExpectedMatches, pair.KeySum)
			}
		}
	}
}

// countingOp wraps an operator and counts protocol calls.
type countingOp struct {
	inner  Operator
	opens  int
	closes int
}

func (c *countingOp) Open() error                      { c.opens++; return c.inner.Open() }
func (c *countingOp) NextBatch(b *Batch) (bool, error) { return c.inner.NextBatch(b) }
func (c *countingOp) Close()                           { c.closes++; c.inner.Close() }

// TestJoinClosesBuildChild pins the fix for the per-tuple layer's leak:
// HashJoin must close its build child exactly once (it used to close
// only the probe child), on both backends and both join strategies —
// and stay exactly-once under a redundant extra Close.
func TestJoinClosesBuildChild(t *testing.T) {
	spec := workload.Spec{NBuild: 64, TupleSize: 16, MatchesPerBuild: 1, Seed: 10}
	pair, a, m := testEnv(t, spec)
	width := pair.Spec.TupleSize

	cases := []struct {
		name string
		mk   func(build, probe Operator) Operator
	}{
		{"sim", func(b, p Operator) Operator {
			return newSimHashJoin(m, b, p, nil, width, width, core.DefaultParams(), plan.Inner)
		}},
		{"native-stream", func(b, p Operator) Operator {
			return newNativeHashJoin(nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 1), b, p, nil, nil, width, width, plan.Inner)
		}},
		{"native-morsel", func(b, p Operator) Operator {
			return newNativeHashJoin(nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 4), b, p, nil, nil, width, width, plan.Inner)
		}},
	}
	for _, tc := range cases {
		build := &countingOp{inner: newNativeScan(a, pair.Build, 19)}
		probe := &countingOp{inner: newNativeScan(a, pair.Probe, 19)}
		join := tc.mk(build, probe)
		if _, err := Run(join, a); err != nil {
			t.Fatalf("%s: Run: %v", tc.name, err)
		}
		join.Close() // redundant; children must not be closed again
		if build.closes != 1 {
			t.Errorf("%s: build child closed %d times, want 1", tc.name, build.closes)
		}
		if probe.closes != 1 {
			t.Errorf("%s: probe child closed %d times, want 1", tc.name, probe.closes)
		}
	}
}

// TestAggregateClosesChild pins the other fixed leak: the per-tuple
// HashAggregate's Close was an empty stub.
func TestAggregateClosesChild(t *testing.T) {
	spec := workload.Spec{NBuild: 64, TupleSize: 16, MatchesPerBuild: 1, Seed: 11}
	pair, a, m := testEnv(t, spec)
	width := pair.Spec.TupleSize

	cases := []struct {
		name string
		mk   func(child Operator) Operator
	}{
		{"sim", func(c Operator) Operator {
			return newSimHashAggregate(m, c, nil, width, 4, spec.NBuild, core.SchemeGroup, core.DefaultParams())
		}},
		{"native", func(c Operator) Operator {
			return newNativeHashAggregate(nativeCfg(a, core.SchemeGroup, core.DefaultParams(), 1), c, width, 4, spec.NBuild)
		}},
	}
	for _, tc := range cases {
		child := &countingOp{inner: newNativeScan(a, pair.Probe, 19)}
		agg := tc.mk(child)
		if _, err := Groups(agg, a); err != nil {
			t.Fatalf("%s: Groups: %v", tc.name, err)
		}
		agg.Close()
		if child.closes != 1 {
			t.Errorf("%s: child closed %d times, want 1", tc.name, child.closes)
		}
	}
}

// TestBatchRule asserts every operator honors the batch = G rule: no
// batch larger than the configured group size, on either backend.
func TestBatchRule(t *testing.T) {
	spec := workload.Spec{NBuild: 150, TupleSize: 16, MatchesPerBuild: 2, Seed: 12}
	const g = 7
	params := core.Params{G: g, D: 2}
	pair, a, m := testEnv(t, spec)

	plans := map[string]*Node{
		"scan":   Scan(pair.Probe),
		"filter": Filter(Scan(pair.Probe), KeyBetween(0, ^uint32(0))),
		"join":   HashJoin(Scan(pair.Build), Scan(pair.Probe)),
		"agg":    HashAggregate(Scan(pair.Probe), 4, spec.NBuild),
	}
	for name, plan := range plans {
		for _, cfg := range []Config{
			simCfg(m, core.SchemeGroup, params),
			nativeCfg(a, core.SchemeGroup, params, 1),
		} {
			op := mustCompile(t, plan, cfg)
			if err := op.Open(); err != nil {
				t.Fatalf("%s (%v): Open: %v", name, cfg.Backend, err)
			}
			var b Batch
			for {
				ok, err := op.NextBatch(&b)
				if err != nil {
					t.Fatalf("%s (%v): NextBatch: %v", name, cfg.Backend, err)
				}
				if !ok {
					break
				}
				if b.Len() > g {
					t.Fatalf("%s (%v): batch of %d rows exceeds G=%d", name, cfg.Backend, b.Len(), g)
				}
			}
			op.Close()
		}
	}
}

// TestCompileValidation covers the setup failures: configuration
// mistakes surface as Compile errors (they used to panic), and plan
// construction mistakes still panic at plan-build time.
func TestCompileValidation(t *testing.T) {
	spec := workload.Spec{NBuild: 8, TupleSize: 16, MatchesPerBuild: 1, Seed: 13}
	pair, a, m := testEnv(t, spec)

	for name, cfg := range map[string]Config{
		"sim without Mem":      {Backend: Sim},
		"native without arena": {Backend: Native},
		"unknown backend":      {Backend: Backend(99), A: a},
		"negative G":           {Backend: Native, A: a, Params: core.Params{G: -1}},
		"negative D":           {Backend: Native, A: a, Params: core.Params{D: -1}},
		"negative MemBudget":   {Backend: Native, A: a, MemBudget: -1},
	} {
		if _, err := Compile(Scan(pair.Build), cfg); err == nil {
			t.Errorf("%s: expected a Compile error", name)
		}
	}

	defer func() {
		if recover() == nil {
			t.Errorf("agg value overlapping key: expected panic")
		}
	}()
	_ = m
	HashAggregate(Scan(pair.Build), 2, 8)
}

// TestCompileMergesZeroParams pins the zero-field contract: a partially
// filled Params gets the unset fields from the backend defaults rather
// than reaching an operator loop as a zero (which used to make the
// pipelined probe spin or degenerate to batch size 0).
func TestCompileMergesZeroParams(t *testing.T) {
	spec := workload.Spec{NBuild: 120, TupleSize: 16, MatchesPerBuild: 2, Seed: 14}
	pair, a, m := testEnv(t, spec)
	plan := HashJoin(Scan(pair.Build), Scan(pair.Probe))

	for name, cfg := range map[string]Config{
		"sim zero params":     simCfg(m, core.SchemePipelined, core.Params{}),
		"sim only D":          simCfg(m, core.SchemePipelined, core.Params{D: 8}),
		"sim only G":          simCfg(m, core.SchemeGroup, core.Params{G: 5}),
		"native zero params":  nativeCfg(a, core.SchemePipelined, core.Params{}, 1),
		"native only D":       nativeCfg(a, core.SchemePipelined, core.Params{D: 3}, 1),
		"native morsel zeros": nativeCfg(a, core.SchemeGroup, core.Params{}, 4),
	} {
		r, err := Run(mustCompile(t, plan, cfg), a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.NRows != pair.ExpectedMatches || r.KeySum != pair.KeySum {
			t.Errorf("%s: got (%d, %d), want (%d, %d)", name, r.NRows, r.KeySum, pair.ExpectedMatches, pair.KeySum)
		}
	}
}
