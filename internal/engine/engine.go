// Package engine is the backend-neutral, batch-oriented operator layer:
// one logical query plan (Scan -> Filter -> HashJoin -> HashAggregate)
// compiled onto either execution backend — the cycle-level simulator
// (every access timed against vmem.Mem) or the native engine (real
// memory, real caches, PREFETCHT0 on amd64).
//
// Operators follow an Open / NextBatch / Close protocol and exchange
// Batches of row descriptors. Batches are sized to the prefetch group
// size G, the paper's section 5.4 design rule: group prefetching's
// natural G-tuple boundaries are where the prefetched join can pause
// and hand output to its parent, so making the batch the group means a
// probe batch is exactly one group-prefetched probe pass — latency
// hiding inside a batch is identical to the monolithic loop's.
//
// Both backends address tuples in the same arena, so a Row is
// backend-neutral: the simulator reads it through timed loads, the
// native backend through the arena's backing bytes. Untimed result
// inspection (Run, Groups, Collect) reads the arena directly and is
// therefore backend-neutral too: for the same workload the two backends
// produce identical logical results, row for row.
package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/native"
	"hashjoin/internal/plan"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// Row is one tuple flowing through a pipeline: the arena address of its
// bytes, its width, and the memoized hash code of its join key.
type Row struct {
	Addr arena.Addr
	Code uint32
	Len  int32
}

// Batch is a reusable container of rows. Operators fill it via
// NextBatch; the rows (and the bytes they point at) remain valid until
// the producing operator's next NextBatch or Close call.
type Batch struct {
	Rows []Row
}

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() { b.Rows = b.Rows[:0] }

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return len(b.Rows) }

// Operator is a batch-pull iterator. Open prepares state and may do
// pipeline-breaking work (materializing a build side, aggregating);
// NextBatch fills b with up to BatchSize rows and reports whether it
// produced any; Close releases the operator and its children. Close is
// idempotent towards children: an operator closes each child exactly
// once, whether the child was drained during Open or streamed until
// Close.
//
// Open and NextBatch return an error for conditions that are not
// programming bugs: a memory budget a partition pair cannot be split
// under, or a failure reported by a background morsel worker. Deep
// allocation layers still panic with *arena.OOMError on exhaustion; the
// drain helpers (Run, Groups, Collect) recover that panic into an error,
// so callers of the helpers see every out-of-memory condition as an
// ordinary error. After a non-nil error the operator must still be
// Closed; Close remains safe and releases any background work.
type Operator interface {
	Open() error
	NextBatch(b *Batch) (bool, error)
	Close()
}

// Backend selects an execution backend for a compiled plan.
type Backend int

const (
	// Sim executes under the cycle-level memory-hierarchy simulator;
	// every access is timed against Config.Mem.
	Sim Backend = iota
	// Native executes on the host hardware with real prefetches.
	Native
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case Sim:
		return "sim"
	case Native:
		return "native"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Config selects and tunes a backend for Compile.
type Config struct {
	Backend Backend

	// Mem is the timed memory view; required for the Sim backend. Its
	// arena must hold every relation referenced by the plan.
	Mem *vmem.Mem

	// A is the arena holding the plan's relations; required for the
	// Native backend (Sim defaults it to Mem.A). Operator scratch —
	// join output rings, aggregate records — is allocated from it.
	A *arena.Arena

	// Scheme selects the prefetching strategy for joins and aggregates.
	// The simulator's pipelined join operator always probes with group
	// prefetching (the pipeline-friendly scheme, section 5.4); Scheme
	// still selects the simulated aggregation variant. The native
	// backend restructures both loops per the scheme, with Simple and
	// Combined running as Baseline (no native analog).
	Scheme core.Scheme

	// Params tunes G and D. G is also the batch size: zero selects the
	// backend default (the paper's tuned G=19 under simulation,
	// native.DefaultG natively).
	Params core.Params

	// Strategy selects the join's physical execution strategy (see
	// plan.Choose): NestedLoop runs the tiny-build flat scan on either
	// backend; StreamHash forces the single-table streaming probe;
	// PartitionedHash forces the radix+morsel join (native only). The
	// zero value Auto keeps the legacy Fanout-driven selection below.
	Strategy plan.Strategy

	// Fanout, for the native backend, selects the join strategy: <= 1
	// streams probe batches through one resident hash table; > 1 radix-
	// partitions both inputs (rounded up to a power of two) and joins
	// the pairs under morsel-driven parallelism, workers feeding output
	// batches into the pipeline.
	Fanout int

	// Workers bounds the native morsel worker pool (0 = GOMAXPROCS).
	// With a shared Pool installed it bounds this plan's concurrent
	// slots within the pool instead.
	Workers int

	// Pool, when non-nil, executes the native morsel join on a shared
	// worker pool (the multi-tenant scheduler) instead of per-plan
	// goroutines. Tenant and Weight label the plan's morsel jobs for the
	// pool's weighted round-robin interleaving.
	Pool   native.Pool
	Tenant string
	Weight int

	// MemBudget, when > 0, bounds the resident footprint of a native
	// join's build side in bytes. A streaming join (Fanout <= 1) whose
	// build would exceed it falls back to the partitioned morsel
	// strategy, and a partition pair that still exceeds it is
	// re-partitioned recursively (bounded depth). A pair recursion
	// cannot split — irreducible duplicate-key skew — is joined out of
	// core through internal/spill rather than failing. 0 means
	// unbudgeted.
	MemBudget int

	// SpillDir is the parent directory spec for the native join's
	// out-of-core spill area: an ordered, comma-separated list of
	// directories tried in order as earlier ones turn unhealthy; "" means
	// the OS temp directory. The spill tier creates and removes its own
	// subdirectory per run in each parent it uses.
	SpillDir string

	// SpillWorkers is the write-behind worker count for the spill tier;
	// 0 selects the spill package default. Negative is a Compile error.
	SpillWorkers int

	// NoSpill disables the out-of-core tier: a partition pair still over
	// MemBudget at maximum recursion depth fails with *native.BudgetError
	// instead of spilling to disk.
	NoSpill bool

	// Hybrid enables the native join's adaptive hybrid policy: partition
	// pairs are ranked by measured build footprint after the partition
	// phase, the planned-resident prefix joins in memory first, and
	// over-budget victims split on code frequency with only the
	// irreducible overflow going to disk. Requires MemBudget > 0 and a
	// spillable configuration to change anything.
	Hybrid bool

	// BudgetNow, when non-nil and Hybrid is set, is the mid-join memory
	// pressure signal: sampled at each partition-pair claim, a positive
	// value below MemBudget lowers the budget for pairs not yet started,
	// demoting planned-resident pairs to the out-of-core tier without
	// restarting the query. The service layer wires a sched.Grant's
	// advisory budget here.
	BudgetNow func() int

	// SpillPageSize overrides the spill tier's page size in bytes; 0
	// selects the spill package default. Must satisfy the spill package's
	// page-size bounds when set.
	SpillPageSize int

	// Build, when non-nil, supplies the join's build side as a pre-built
	// immutable row table: the plan's build child is never opened, and
	// the probe side streams through fresh probe scratch over the shared
	// table (Fanout and the MemBudget build degradation are ignored for
	// the join — the table is already resident, accounted to its owner).
	// Native backend only; the handle's width must match the plan's
	// build width. This is how the service probes one cached build side
	// from many concurrent queries without rebuilding.
	Build *native.BuildSide

	// Report, when non-nil, receives execution detail the result rows
	// cannot carry — the join's effective fan-out, how deep the budget
	// degradation had to recurse, and what the spill tier did. Written
	// when the join finishes.
	Report *Report

	// Ctx cancels a compiled pipeline cooperatively: scans check it at
	// batch boundaries, the native morsel join before each partition-pair
	// claim, and the spill tier at page boundaries. nil means
	// context.Background (never cancelled).
	Ctx context.Context
}

// Report carries per-run execution detail out of a compiled pipeline.
type Report struct {
	// JoinFanout is the partition count the native join actually used
	// (1 for the streaming strategy).
	JoinFanout int
	// JoinRecursionDepth is the deepest recursive re-partitioning any
	// pair needed to fit MemBudget; 0 when every pair fit directly.
	JoinRecursionDepth int
	// MorselsExecuted counts the partition-pair morsels the native join
	// actually ran (0 for the streaming strategy and the Sim backend).
	MorselsExecuted int
	// SpilledPartitions counts the partition pairs the out-of-core tier
	// joined from disk; 0 when everything fit in memory.
	SpilledPartitions int
	// SpillBytesWritten and SpillBytesRead total the spill tier's file
	// I/O. Reads can exceed writes: the probe partition is re-read once
	// per build chunk.
	SpillBytesWritten int64
	SpillBytesRead    int64
	// SpillWriteStall is time the spill tier's encode path waited for a
	// free buffer (write-behind fell behind); SpillReadStall is time the
	// join waited for an in-flight page read (read-ahead fell behind).
	SpillWriteStall time.Duration
	SpillReadStall  time.Duration
	// SpillFailovers counts spill directories declared failed mid-join;
	// SpillRebuilds counts partitions rebuilt from their in-memory
	// source after a failed or corrupt spill file.
	SpillFailovers int64
	SpillRebuilds  int64
	// ResidentPartitions and the demotion counters mirror the hybrid
	// policy's pair accounting (native.HybridStats): pairs joined fully
	// in memory, planned-resident pairs demoted to disk by a mid-join
	// budget shrink, and the demoted pairs' summed footprints.
	ResidentPartitions int
	DemotedPartitions  int
	BytesDemoted       int64
}

// batchSize returns the batch capacity (= G) for the config's backend.
func (c Config) batchSize() int {
	if c.Params.G > 0 {
		return c.Params.G
	}
	if c.Backend == Native {
		return native.DefaultG
	}
	return core.DefaultParams().G
}

// nativeScheme maps the config's scheme onto the native engine's.
func (c Config) nativeScheme() native.Scheme {
	switch c.Scheme {
	case core.SchemeGroup:
		return native.Group
	case core.SchemePipelined:
		return native.Pipelined
	default:
		return native.Baseline
	}
}

// --- Logical plan ---

type nodeKind int

const (
	scanNode nodeKind = iota
	filterNode
	joinNode
	aggNode
)

// Node is one logical plan operator. Build plans with Scan, Filter,
// HashJoin, and HashAggregate, then Compile against a Config.
type Node struct {
	kind nodeKind

	rel *storage.Relation // scanNode

	pred Pred // filterNode

	build    *Node         // joinNode: build side
	input    *Node         // filter/join (probe side)/agg child
	joinType plan.JoinType // joinNode: match semantics (zero = inner)

	valueOff int // aggNode: byte offset of the summed 4-byte value
	groups   int // aggNode: expected group count (table sizing)
}

// Pred is a declarative row predicate both backends can evaluate: it
// selects rows whose join key lies in [Lo, Hi].
type Pred struct {
	Lo, Hi uint32
}

// Scan reads a relation in storage order.
func Scan(rel *storage.Relation) *Node {
	if rel.Schema.HasVar() {
		panic("engine: scans require fixed-width schemas")
	}
	return &Node{kind: scanNode, rel: rel}
}

// Filter passes through input rows whose key satisfies pred.
func Filter(input *Node, pred Pred) *Node {
	return &Node{kind: filterNode, input: input, pred: pred}
}

// KeyBetween selects lo <= key <= hi.
func KeyBetween(lo, hi uint32) Pred { return Pred{Lo: lo, Hi: hi} }

// HashJoin equi-joins build and probe on their 4-byte keys; output rows
// are the concatenated build||probe tuples.
func HashJoin(build, probe *Node) *Node {
	return HashJoinTyped(build, probe, plan.Inner)
}

// HashJoinTyped is HashJoin with explicit match semantics. The probe
// side is the join's left input: left-outer output null-pads the build
// columns of unmatched probe rows (all-zero bytes, so the row's leading
// key reads 0), right-outer emits unmatched build rows with the probe
// columns null-padded, and semi/anti rows carry the probe tuple only —
// which narrows the node's output width to the probe width.
func HashJoinTyped(build, probe *Node, jt plan.JoinType) *Node {
	return &Node{kind: joinNode, build: build, input: probe, joinType: jt}
}

// AggTupleWidth is the width of HashAggregate's output rows: u32 group
// key, u64 count, u64 sum at offsets 0, 8, 16.
const AggTupleWidth = 24

// HashAggregate groups input rows by key, counting rows and summing the
// 4-byte value at valueOff within each row. expectedGroups sizes the
// hash table.
func HashAggregate(input *Node, valueOff, expectedGroups int) *Node {
	if valueOff < 4 {
		panic("engine: aggregation value offset overlaps the key")
	}
	return &Node{kind: aggNode, input: input, valueOff: valueOff, groups: expectedGroups}
}

// Width returns the node's fixed output row width in bytes.
func (n *Node) Width() int {
	switch n.kind {
	case scanNode:
		return n.rel.Schema.FixedWidth()
	case filterNode:
		return n.input.Width()
	case joinNode:
		if n.joinType.ProbeOnly() {
			return n.input.Width()
		}
		return n.build.Width() + n.input.Width()
	case aggNode:
		return AggTupleWidth
	default:
		panic("engine: unknown node kind")
	}
}

// scanRel returns the node's relation when it is a plain scan (no
// filter), letting both backends build directly over base relations
// instead of re-materializing them.
func (n *Node) scanRel() *storage.Relation {
	if n.kind == scanNode {
		return n.rel
	}
	return nil
}

// buildWidthOf returns the build-side width of the plan's single join,
// or -1 when the plan has no join (Config.Build is then simply unused).
func buildWidthOf(n *Node) int {
	for ; n != nil; n = n.input {
		if n.kind == joinNode {
			return n.build.Width()
		}
	}
	return -1
}

// validatePlan checks cross-node invariants that only surface once the
// whole tree is known. The load-bearing case: an aggregate's value
// offset must land inside its child's output width, and semi/anti joins
// narrow that width to the probe tuple alone — so an -agg offset that
// was fine for an inner join can dangle off the end of a semi join's
// rows. Catching it here turns a deep copy-out-of-bounds panic into a
// usage error the CLI can map to its exit taxonomy.
func validatePlan(n *Node) error {
	if n == nil {
		return nil
	}
	switch n.kind {
	case aggNode:
		if w := n.input.Width(); n.valueOff+4 > w {
			return fmt.Errorf("engine: aggregate value offset %d needs child width >= %d, have %d (semi/anti joins emit the probe tuple only)",
				n.valueOff, n.valueOff+4, w)
		}
	case joinNode:
		if err := validatePlan(n.build); err != nil {
			return err
		}
	}
	return validatePlan(n.input)
}

// Compile lowers the logical plan onto cfg's backend, returning the
// root operator. An invalid configuration — a missing Mem for the Sim
// backend, a missing arena for Native, negative tuning parameters — is
// reported as an error: configurations cross the public API boundary
// (options, CLI flags), so validating here is what keeps a bad flag
// from surfacing as a panic or a silent misbehavior deep in a run.
// Zero-valued Params fields are merged with the backend defaults.
func Compile(n *Node, cfg Config) (Operator, error) {
	switch cfg.Backend {
	case Sim:
		if cfg.Mem == nil {
			return nil, fmt.Errorf("engine: Sim backend requires Config.Mem")
		}
		if cfg.A == nil {
			cfg.A = cfg.Mem.A
		}
	case Native:
		if cfg.A == nil {
			return nil, fmt.Errorf("engine: Native backend requires Config.A")
		}
	default:
		return nil, fmt.Errorf("engine: unknown backend %v", cfg.Backend)
	}
	if cfg.Params.G < 0 || cfg.Params.D < 0 {
		return nil, fmt.Errorf("engine: params G=%d, D=%d: must be >= 1 (0 selects the backend default)",
			cfg.Params.G, cfg.Params.D)
	}
	if cfg.MemBudget < 0 {
		return nil, fmt.Errorf("engine: negative MemBudget %d", cfg.MemBudget)
	}
	if cfg.SpillWorkers < 0 {
		return nil, fmt.Errorf("engine: negative SpillWorkers %d", cfg.SpillWorkers)
	}
	if cfg.SpillPageSize < 0 {
		return nil, fmt.Errorf("engine: negative SpillPageSize %d", cfg.SpillPageSize)
	}
	switch cfg.Strategy {
	case plan.Auto, plan.StreamHash, plan.NestedLoop, plan.PartitionedHash:
	default:
		return nil, fmt.Errorf("engine: unknown strategy %v", cfg.Strategy)
	}
	if cfg.Strategy == plan.PartitionedHash {
		if cfg.Backend == Sim {
			return nil, fmt.Errorf("engine: strategy %v requires the Native backend (the simulator executes single-table joins only)", cfg.Strategy)
		}
		if cfg.Fanout <= 1 {
			// plan.Choose always pins a fanout; this is the bare-API
			// fallback so a forced partitioned join still partitions.
			cfg.Fanout = 8
		}
	}
	if (cfg.Strategy == plan.NestedLoop || cfg.Strategy == plan.StreamHash) && cfg.Fanout > 1 {
		return nil, fmt.Errorf("engine: strategy %v is single-threaded over one table; fanout %d conflicts (use -strategy partitioned or auto)",
			cfg.Strategy, cfg.Fanout)
	}
	if cfg.Build != nil {
		if cfg.Backend != Native {
			return nil, fmt.Errorf("engine: Config.Build requires the Native backend")
		}
		if cfg.Strategy != plan.Auto && cfg.Strategy != plan.StreamHash {
			return nil, fmt.Errorf("engine: Config.Build is a prebuilt hash table; strategy %v cannot use it", cfg.Strategy)
		}
		if w := buildWidthOf(n); w >= 0 && w != cfg.Build.Width() {
			return nil, fmt.Errorf("engine: Config.Build width %d does not match the plan's build width %d",
				cfg.Build.Width(), w)
		}
	}
	if err := validatePlan(n); err != nil {
		return nil, err
	}
	// Merge zero fields with the backend defaults up front, so every
	// operator sees G >= 1 and D >= 1 no matter which layer reads them.
	if cfg.Params.G == 0 {
		cfg.Params.G = cfg.batchSize()
	}
	if cfg.Params.D == 0 {
		if cfg.Backend == Native {
			cfg.Params.D = native.DefaultD
		} else {
			cfg.Params.D = core.DefaultParams().D
		}
	}
	if cfg.Report != nil {
		*cfg.Report = Report{}
	}
	if cfg.Ctx == nil {
		cfg.Ctx = context.Background()
	}
	return compileNode(n, cfg), nil
}

func compileNode(n *Node, cfg Config) Operator {
	switch n.kind {
	case scanNode:
		if cfg.Backend == Sim {
			s := newSimScan(cfg.Mem, n.rel, cfg.batchSize())
			s.ctx = cfg.Ctx
			return s
		}
		s := newNativeScan(cfg.A, n.rel, cfg.batchSize())
		s.ctx = cfg.Ctx
		return s
	case filterNode:
		child := compileNode(n.input, cfg)
		if cfg.Backend == Sim {
			return newSimFilter(cfg.Mem, child, n.pred, cfg.batchSize())
		}
		return newNativeFilter(cfg.A, child, n.pred, cfg.batchSize())
	case joinNode:
		build := compileNode(n.build, cfg)
		probe := compileNode(n.input, cfg)
		if cfg.Strategy == plan.NestedLoop {
			return newNestedLoopJoin(cfg, build, probe,
				n.build.scanRel(), n.joinType, n.build.Width(), n.input.Width())
		}
		if cfg.Backend == Sim {
			return newSimHashJoin(cfg.Mem, build, probe,
				n.build.scanRel(), n.build.Width(), n.input.Width(), cfg.Params, n.joinType)
		}
		if cfg.Strategy == plan.StreamHash {
			cfg.Fanout = 1 // pin the single-table streaming path
		}
		return newNativeHashJoin(cfg, build, probe,
			n.build.scanRel(), n.input.scanRel(), n.build.Width(), n.input.Width(), n.joinType)
	case aggNode:
		child := compileNode(n.input, cfg)
		if cfg.Backend == Sim {
			return newSimHashAggregate(cfg.Mem, child, n.input.scanRel(),
				n.input.Width(), n.valueOff, n.groups, cfg.Scheme, cfg.Params)
		}
		return newNativeHashAggregate(cfg, child, n.input.Width(), n.valueOff, n.groups)
	default:
		panic("engine: unknown node kind")
	}
}

// --- Result helpers (untimed, backend-neutral) ---

// Result summarizes a drained pipeline.
type Result struct {
	NRows  int    // rows produced by the root operator
	KeySum uint64 // sum over rows of the u32 key at offset 0
}

// Run opens, drains, and closes root, reading each row's leading u32
// key through the arena (untimed — result inspection, not measured
// work). For a join root this yields the join's NOutput and KeySum.
//
// Run owns the pipeline's arena scratch: it opens a scope before Open
// and releases it after Close, so per-run allocations (join output
// rings, morsel pipe buffers, staged aggregation rows, materialized
// intermediates) are reclaimed and a resident arena's Used() is stable
// across unlimited runs. An *arena.OOMError panic from any depth of the
// pipeline is recovered into the returned error.
func Run(root Operator, a *arena.Arena) (res Result, err error) {
	scope := a.Scope()
	defer scope.Release()
	defer arena.RecoverOOM(&err)
	if err = root.Open(); err != nil {
		root.Close()
		return Result{}, err
	}
	defer root.Close()
	var b Batch
	for {
		ok, berr := root.NextBatch(&b)
		if berr != nil {
			return Result{}, berr
		}
		if !ok {
			return res, nil
		}
		res.NRows += len(b.Rows)
		for i := range b.Rows {
			res.KeySum += uint64(a.U32(b.Rows[i].Addr))
		}
	}
}

// Group is one aggregation result row.
type Group struct {
	Key        uint32
	Count, Sum uint64
}

// Groups opens, drains, and closes an aggregation root, decoding its
// 24-byte rows and returning the groups sorted by key — a deterministic
// order shared by both backends, so equal workloads yield byte-identical
// group lists regardless of engine or hash-table iteration order.
// Like Run, it scopes the pipeline's arena scratch (the groups are
// copied out before the scope is released) and recovers arena
// exhaustion into the returned error.
func Groups(root Operator, a *arena.Arena) (out []Group, err error) {
	scope := a.Scope()
	defer scope.Release()
	defer arena.RecoverOOM(&err)
	if err = root.Open(); err != nil {
		root.Close()
		return nil, err
	}
	defer root.Close()
	var b Batch
	for {
		ok, berr := root.NextBatch(&b)
		if berr != nil {
			return nil, berr
		}
		if !ok {
			break
		}
		for i := range b.Rows {
			addr := b.Rows[i].Addr
			out = append(out, Group{
				Key:   a.U32(addr),
				Count: a.U64(addr + 8),
				Sum:   a.U64(addr + 16),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Collect opens, drains, and closes root, returning an untimed copy of
// every row's bytes. For tests and result sinks. Scratch scoping and
// OOM recovery as in Run.
func Collect(root Operator, a *arena.Arena) (out [][]byte, err error) {
	scope := a.Scope()
	defer scope.Release()
	defer arena.RecoverOOM(&err)
	if err = root.Open(); err != nil {
		root.Close()
		return nil, err
	}
	defer root.Close()
	var b Batch
	for {
		ok, berr := root.NextBatch(&b)
		if berr != nil {
			return nil, berr
		}
		if !ok {
			return out, nil
		}
		for i := range b.Rows {
			r := b.Rows[i]
			out = append(out, append([]byte(nil), a.Bytes(r.Addr, uint64(r.Len))...))
		}
	}
}
