// Package arena provides a flat simulated address space with a bump
// allocator. All data structures visited by the join algorithms (pages,
// hash buckets, cell arrays, output buffers) are allocated here so that
// every access carries a concrete address the memory-hierarchy simulator
// can map onto cache sets and TLB pages.
//
// Addresses are plain uint64 offsets into one backing byte slice, offset
// by Base so that address 0 can serve as a nil sentinel.
package arena

import (
	"encoding/binary"
	"fmt"
)

// Base is the first valid address handed out by an Arena. Address values
// below Base (in particular 0) never refer to allocated storage and are
// used as nil pointers by higher layers.
const Base uint64 = 1 << 16

// Addr is a simulated address. The zero value is the nil address.
type Addr = uint64

// Arena is a bump allocator over a contiguous simulated address space.
// The zero value is not usable; call New.
type Arena struct {
	data []byte
	next uint64 // next free offset relative to Base
}

// New creates an arena able to hold capacity bytes. The backing memory
// is advised for transparent huge pages before first touch (see
// adviseHugePages), which matters for the native execution engine: a
// join's random accesses over a multi-megabyte arena otherwise spend
// more time in TLB page walks than in the cache misses prefetching is
// meant to hide.
func New(capacity uint64) *Arena {
	data := make([]byte, capacity)
	adviseHugePages(data)
	return &Arena{data: data}
}

// Cap returns the arena capacity in bytes.
func (a *Arena) Cap() uint64 { return uint64(len(a.data)) }

// Used returns the number of bytes allocated so far.
func (a *Arena) Used() uint64 { return a.next }

// Alloc reserves size bytes aligned to align (a power of two) and returns
// the address of the first byte. It panics if the arena is exhausted:
// exhaustion is a sizing bug in the experiment setup, not a runtime
// condition a caller could recover from.
func (a *Arena) Alloc(size, align uint64) Addr {
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("arena: alignment %d is not a power of two", align))
	}
	off := (a.next + align - 1) &^ (align - 1)
	if off+size > uint64(len(a.data)) {
		panic(fmt.Sprintf("arena: out of space: need %d bytes at offset %d, cap %d", size, off, len(a.data)))
	}
	a.next = off + size
	return Base + off
}

// AllocZeroed is Alloc followed by clearing the returned region. Regions
// from a fresh arena are already zero; this exists for reuse after Reset.
func (a *Arena) AllocZeroed(size, align uint64) Addr {
	addr := a.Alloc(size, align)
	b := a.Bytes(addr, size)
	for i := range b {
		b[i] = 0
	}
	return addr
}

// Reset discards all allocations, keeping the backing storage.
func (a *Arena) Reset() { a.next = 0 }

// Truncate discards every allocation made after Used() returned mark,
// keeping the backing storage. It lets callers that interleave durable
// data (relations) with per-run scratch (operator output rings,
// staged aggregation rows) reclaim the scratch between runs.
func (a *Arena) Truncate(mark uint64) {
	if mark > a.next {
		panic(fmt.Sprintf("arena: Truncate(%d) beyond used %d", mark, a.next))
	}
	a.next = mark
}

// Bytes returns the backing slice for [addr, addr+size). The slice aliases
// arena storage; writes through it are visible to subsequent reads.
func (a *Arena) Bytes(addr Addr, size uint64) []byte {
	off := addr - Base
	if addr < Base || off+size > uint64(len(a.data)) {
		panic(fmt.Sprintf("arena: access [%#x,+%d) out of range (cap %d)", addr, size, len(a.data)))
	}
	return a.data[off : off+size : off+size]
}

// Data returns the whole backing slice, such that an Addr a refers to
// Data()[a-Base]. The native execution engine indexes it directly: unlike
// Bytes, which bounds-checks every access, Data lets hot loops run at
// real-hardware speed with only Go's own slice checks.
func (a *Arena) Data() []byte { return a.data }

// U32 reads a little-endian uint32 at addr.
func (a *Arena) U32(addr Addr) uint32 { return binary.LittleEndian.Uint32(a.Bytes(addr, 4)) }

// PutU32 writes a little-endian uint32 at addr.
func (a *Arena) PutU32(addr Addr, v uint32) { binary.LittleEndian.PutUint32(a.Bytes(addr, 4), v) }

// U64 reads a little-endian uint64 at addr.
func (a *Arena) U64(addr Addr) uint64 { return binary.LittleEndian.Uint64(a.Bytes(addr, 8)) }

// PutU64 writes a little-endian uint64 at addr.
func (a *Arena) PutU64(addr Addr, v uint64) { binary.LittleEndian.PutUint64(a.Bytes(addr, 8), v) }

// U16 reads a little-endian uint16 at addr.
func (a *Arena) U16(addr Addr) uint16 { return binary.LittleEndian.Uint16(a.Bytes(addr, 2)) }

// PutU16 writes a little-endian uint16 at addr.
func (a *Arena) PutU16(addr Addr, v uint16) { binary.LittleEndian.PutUint16(a.Bytes(addr, 2), v) }
