// Package arena provides a flat simulated address space with a bump
// allocator. All data structures visited by the join algorithms (pages,
// hash buckets, cell arrays, output buffers) are allocated here so that
// every access carries a concrete address the memory-hierarchy simulator
// can map onto cache sets and TLB pages.
//
// Addresses are plain uint64 offsets into one backing byte slice, offset
// by Base so that address 0 can serve as a nil sentinel.
package arena

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hashjoin/internal/fault"
)

// Base is the first valid address handed out by an Arena. Address values
// below Base (in particular 0) never refer to allocated storage and are
// used as nil pointers by higher layers.
const Base uint64 = 1 << 16

// Addr is a simulated address. The zero value is the nil address.
type Addr = uint64

// ErrOutOfMemory is the sentinel every *OOMError unwraps to, so callers
// can classify exhaustion with errors.Is without naming the struct.
var ErrOutOfMemory = errors.New("arena: out of memory")

// OOMError reports an allocation that would exceed the arena's effective
// ceiling (the budget if one is set, else the physical capacity). It
// carries a usage breakdown — including the scratch held by each open
// Scope — so the failure is diagnosable at the API boundary rather than
// as a bare "out of space".
type OOMError struct {
	Need   uint64 // bytes requested (after alignment padding)
	Align  uint64 // requested alignment
	Used   uint64 // bytes allocated when the request failed
	Budget uint64 // configured budget, 0 if none
	Cap    uint64 // physical capacity of the backing slice

	// Durable is the bytes allocated before the outermost open scope —
	// data that outlives any in-flight run (relations, catalogs). With no
	// open scope it equals Used.
	Durable uint64
	// ScopeHeld is the bytes held by each open scope at failure time,
	// outermost first: entry i covers allocations made after scope i
	// opened and before scope i+1 did (the innermost entry extends to the
	// failing allocation point). Σ ScopeHeld + Durable = Used.
	ScopeHeld []uint64
}

func (e *OOMError) Error() string {
	limit := e.Cap
	kind := "capacity"
	if e.Budget != 0 && e.Budget < e.Cap {
		limit = e.Budget
		kind = "budget"
	}
	s := fmt.Sprintf(
		"arena: out of memory: need %d bytes (align %d), used %d of %d byte %s (cap %d)",
		e.Need, e.Align, e.Used, limit, kind, e.Cap)
	if len(e.ScopeHeld) > 0 {
		s += fmt.Sprintf("; %d durable, %d open scope(s) holding %v bytes of scratch",
			e.Durable, len(e.ScopeHeld), e.ScopeHeld)
	}
	return s
}

func (e *OOMError) Unwrap() error { return ErrOutOfMemory }

// Arena is a bump allocator over a contiguous simulated address space.
// The zero value is not usable; call New.
//
// Allocation (TryAlloc and friends) is safe for concurrent use: the bump
// pointer advances with a CAS loop, so a background producer — the spill
// subsystem's write-behind pool, a morsel worker's sink — can allocate
// while the foreground materializes an intermediate. SetBudget/Budget
// are atomic, and the scope list is mutex-guarded, so budget changes and
// OOM breakdowns are safe against concurrent allocators. The remaining
// boundary operations (Reset, Truncate, Scope, Release) still belong to
// the single goroutine that owns this arena's lifecycle: with carved
// child arenas (see Carve) that owner is one query, so "single owner"
// composes with concurrent queries.
type Arena struct {
	data []byte
	next atomic.Uint64 // next free offset into data

	// lo and hi bound the allocation window within data. A root arena
	// from New covers [0, len(data)); a child from Carve covers its
	// carved slice. Children share data with their parent, so an Addr
	// allocated from any arena of the family dereferences identically
	// through all of them — Bytes and Data stay whole-space.
	lo, hi uint64

	budget atomic.Uint64 // soft ceiling on Used(); 0 means window only

	scopeMu sync.Mutex
	scopes  []uint64 // marks (absolute offsets) of open scopes, outermost first
}

// New creates an arena able to hold capacity bytes. The backing memory
// is advised for transparent huge pages before first touch (see
// adviseHugePages), which matters for the native execution engine: a
// join's random accesses over a multi-megabyte arena otherwise spend
// more time in TLB page walks than in the cache misses prefetching is
// meant to hide.
func New(capacity uint64) *Arena {
	data := make([]byte, capacity)
	adviseHugePages(data)
	return &Arena{data: data, hi: capacity}
}

// Cap returns the arena capacity in bytes: the window size for a carved
// child, the backing-slice size for a root arena.
func (a *Arena) Cap() uint64 { return a.hi - a.lo }

// Used returns the number of bytes allocated so far (within this
// arena's window).
func (a *Arena) Used() uint64 { return a.next.Load() - a.lo }

// SetBudget installs a soft ceiling, in bytes, below the physical
// capacity. Allocations that would push Used() past the effective
// ceiling — min(budget, Cap()) — fail with an *OOMError. A budget of 0
// removes the ceiling, leaving only the physical capacity. Lowering the
// budget below Used() is allowed: existing data stays valid and further
// allocation fails until scratch is released. Safe to call while
// allocators are live.
func (a *Arena) SetBudget(bytes uint64) { a.budget.Store(bytes) }

// Budget returns the configured soft ceiling, 0 if none.
func (a *Arena) Budget() uint64 { return a.budget.Load() }

// limit returns the effective allocation ceiling in backing-slice offsets.
func (a *Arena) limit() uint64 {
	if b := a.budget.Load(); b != 0 && a.lo+b < a.hi {
		return a.lo + b
	}
	return a.hi
}

// Carve allocates size bytes (aligned to align) from a and returns a
// child arena whose allocations live inside that window. The child
// shares a's backing slice — addresses from the child dereference
// through the parent and vice versa — but bumps its own pointer, so N
// children carved from one parent give N queries private, concurrently
// usable scratch regions inside one address space. The child's lifetime
// is the caller's contract: release the whole family of windows at once
// by truncating the parent to a mark taken before the carves, when no
// child is in use.
func (a *Arena) Carve(size, align uint64) (*Arena, error) {
	if size == 0 {
		return nil, fmt.Errorf("arena: Carve of zero bytes")
	}
	addr, err := a.TryAlloc(size, align)
	if err != nil {
		return nil, err
	}
	lo := addr - Base
	child := &Arena{data: a.data, lo: lo, hi: lo + size}
	child.next.Store(lo)
	return child, nil
}

// Remaining returns how many bytes can still be allocated before the
// effective ceiling (ignoring alignment padding).
func (a *Arena) Remaining() uint64 {
	if used := a.next.Load(); a.limit() > used {
		return a.limit() - used
	}
	return 0
}

// TryAlloc reserves size bytes aligned to align (a power of two) and
// returns the address of the first byte, or an *OOMError if the request
// would exceed the effective ceiling. Misaligned align values still
// panic: that is a programming error, not a sizing condition.
func (a *Arena) TryAlloc(size, align uint64) (Addr, error) {
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("arena: alignment %d is not a power of two", align))
	}
	if ferr := fault.Hit(fault.SiteArenaAlloc); ferr != nil {
		// An injected allocation fault presents as exhaustion: the
		// caller-visible contract of this site is "the arena said no".
		return 0, a.oomError(a.next.Load(), size, align)
	}
	for {
		used := a.next.Load()
		off := (used + align - 1) &^ (align - 1)
		if off+size > a.limit() || off+size < off {
			return 0, a.oomError(used, size, align)
		}
		if a.next.CompareAndSwap(used, off+size) {
			return Base + off, nil
		}
	}
}

// oomError builds the usage breakdown for a failed request: how much of
// the used space predates any open scope (durable) and how much each
// open scope holds. used is the absolute bump-pointer value at failure;
// the report is in window-relative bytes. The scope list is read under
// its mutex so a concurrent scope boundary on another arena sharing the
// allocator path cannot corrupt the walk.
func (a *Arena) oomError(used, size, align uint64) *OOMError {
	e := &OOMError{
		Need: size, Align: align, Used: used - a.lo,
		Budget: a.budget.Load(), Cap: a.hi - a.lo,
		Durable: used - a.lo,
	}
	a.scopeMu.Lock()
	defer a.scopeMu.Unlock()
	if n := len(a.scopes); n > 0 {
		e.Durable = a.scopes[0] - a.lo
		e.ScopeHeld = make([]uint64, n)
		for i, mark := range a.scopes {
			end := used
			if i+1 < n {
				end = a.scopes[i+1]
			}
			if end > mark {
				e.ScopeHeld[i] = end - mark
			}
		}
	}
	return e
}

// TryAllocZeroed is TryAlloc followed by clearing the returned region.
func (a *Arena) TryAllocZeroed(size, align uint64) (Addr, error) {
	addr, err := a.TryAlloc(size, align)
	if err != nil {
		return 0, err
	}
	b := a.Bytes(addr, size)
	for i := range b {
		b[i] = 0
	}
	return addr, nil
}

// Reserve reports whether size more bytes (at the given alignment) would
// fit under the effective ceiling, without allocating them. Operators
// call it up front to fail a pipeline before building partial state.
func (a *Arena) Reserve(size, align uint64) error {
	if align == 0 {
		align = 1
	}
	used := a.next.Load()
	off := (used + align - 1) &^ (align - 1)
	if off+size > a.limit() || off+size < off {
		return a.oomError(used, size, align)
	}
	return nil
}

// Alloc reserves size bytes aligned to align (a power of two) and returns
// the address of the first byte. It panics with an *OOMError if the
// request exceeds the effective ceiling; pipeline boundaries recover the
// typed value via RecoverOOM and surface it as an ordinary error.
func (a *Arena) Alloc(size, align uint64) Addr {
	addr, err := a.TryAlloc(size, align)
	if err != nil {
		panic(err)
	}
	return addr
}

// AllocZeroed is Alloc followed by clearing the returned region. Regions
// from a fresh arena are already zero; this exists for reuse after Reset.
func (a *Arena) AllocZeroed(size, align uint64) Addr {
	addr := a.Alloc(size, align)
	b := a.Bytes(addr, size)
	for i := range b {
		b[i] = 0
	}
	return addr
}

// RecoverOOM converts an in-flight *OOMError panic into an error
// assignment. Deep allocation layers (relation append, hash-table build,
// simulated loads) report exhaustion by panicking with the typed error;
// the owner of a pipeline defers RecoverOOM(&err) so exhaustion surfaces
// as a Go error at the API boundary. Fault-injected panics (KindPanic
// failpoints) are contained the same way, so teardown tests can prove a
// panic anywhere under a boundary still yields one typed error. Panics
// of any other type propagate.
func RecoverOOM(err *error) {
	switch r := recover().(type) {
	case nil:
	case *OOMError:
		*err = r
	default:
		if e, ok := fault.AsInjected(r); ok {
			*err = e
			return
		}
		panic(r)
	}
}

// Reset discards all allocations, keeping the backing storage.
func (a *Arena) Reset() {
	a.next.Store(a.lo)
	a.scopeMu.Lock()
	a.scopes = a.scopes[:0]
	a.scopeMu.Unlock()
}

// Truncate discards every allocation made after Used() returned mark,
// keeping the backing storage. It lets callers that interleave durable
// data (relations) with per-run scratch (operator output rings,
// staged aggregation rows) reclaim the scratch between runs.
func (a *Arena) Truncate(mark uint64) {
	abs := a.lo + mark
	if used := a.next.Load(); abs > used {
		panic(fmt.Sprintf("arena: Truncate(%d) beyond used %d", mark, used-a.lo))
	}
	a.next.Store(abs)
	a.scopeMu.Lock()
	for len(a.scopes) > 0 && a.scopes[len(a.scopes)-1] > abs {
		a.scopes = a.scopes[:len(a.scopes)-1]
	}
	a.scopeMu.Unlock()
}

// Scope opens a scratch region: every allocation made between Scope and
// the matching Release belongs to the scope and is reclaimed by Release.
// It formalizes the mark/Truncate pattern so per-run operator scratch
// (output rings, pipe buffers, staged aggregation rows) is owned by the
// pipeline that allocated it, keeping a resident arena stable across
// unlimited runs. Scopes nest LIFO; releasing an outer scope reclaims
// inner ones with it. Open scopes are tracked so an OOMError can report
// how much scratch each holds.
func (a *Arena) Scope() Scope {
	mark := a.next.Load()
	a.scopeMu.Lock()
	a.scopes = append(a.scopes, mark)
	a.scopeMu.Unlock()
	return Scope{a: a, mark: mark}
}

// Scope is a handle to a scratch region opened by Arena.Scope.
type Scope struct {
	a    *Arena
	mark uint64
}

// Release reclaims every allocation made since the scope was opened.
// Releasing twice, or releasing after an outer scope already reclaimed
// the region, is a no-op.
func (s Scope) Release() {
	if s.a == nil {
		return
	}
	if s.mark <= s.a.next.Load() {
		s.a.next.Store(s.mark)
	}
	s.a.scopeMu.Lock()
	for n := len(s.a.scopes); n > 0 && s.a.scopes[n-1] >= s.mark; n-- {
		s.a.scopes = s.a.scopes[:n-1]
	}
	s.a.scopeMu.Unlock()
}

// Mark returns the arena watermark captured when the scope was opened,
// in the same window-relative coordinates Used() and Truncate use.
func (s Scope) Mark() uint64 { return s.mark - s.a.lo }

// Bytes returns the backing slice for [addr, addr+size). The slice aliases
// arena storage; writes through it are visible to subsequent reads.
func (a *Arena) Bytes(addr Addr, size uint64) []byte {
	off := addr - Base
	if addr < Base || off+size > uint64(len(a.data)) {
		panic(fmt.Sprintf("arena: access [%#x,+%d) out of range (cap %d)", addr, size, len(a.data)))
	}
	return a.data[off : off+size : off+size]
}

// Data returns the whole backing slice, such that an Addr a refers to
// Data()[a-Base]. The native execution engine indexes it directly: unlike
// Bytes, which bounds-checks every access, Data lets hot loops run at
// real-hardware speed with only Go's own slice checks.
func (a *Arena) Data() []byte { return a.data }

// U32 reads a little-endian uint32 at addr.
func (a *Arena) U32(addr Addr) uint32 { return binary.LittleEndian.Uint32(a.Bytes(addr, 4)) }

// PutU32 writes a little-endian uint32 at addr.
func (a *Arena) PutU32(addr Addr, v uint32) { binary.LittleEndian.PutUint32(a.Bytes(addr, 4), v) }

// U64 reads a little-endian uint64 at addr.
func (a *Arena) U64(addr Addr) uint64 { return binary.LittleEndian.Uint64(a.Bytes(addr, 8)) }

// PutU64 writes a little-endian uint64 at addr.
func (a *Arena) PutU64(addr Addr, v uint64) { binary.LittleEndian.PutUint64(a.Bytes(addr, 8), v) }

// U16 reads a little-endian uint16 at addr.
func (a *Arena) U16(addr Addr) uint16 { return binary.LittleEndian.Uint16(a.Bytes(addr, 2)) }

// PutU16 writes a little-endian uint16 at addr.
func (a *Arena) PutU16(addr Addr, v uint16) { binary.LittleEndian.PutUint16(a.Bytes(addr, 2), v) }
