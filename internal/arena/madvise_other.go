//go:build !linux

package arena

// adviseHugePages is a no-op where MADV_HUGEPAGE is unavailable.
func adviseHugePages(b []byte) {}
