package arena

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocAlignment(t *testing.T) {
	a := New(1 << 16)
	for _, align := range []uint64{1, 2, 4, 8, 16, 64, 4096} {
		addr := a.Alloc(3, align)
		if addr%align != 0 {
			t.Fatalf("Alloc(3, %d) = %#x, not aligned", align, addr)
		}
		if addr < Base {
			t.Fatalf("address %#x below Base", addr)
		}
	}
}

func TestAllocDisjoint(t *testing.T) {
	a := New(1 << 12)
	p := a.Alloc(16, 8)
	q := a.Alloc(16, 8)
	if q < p+16 {
		t.Fatalf("allocations overlap: %#x then %#x", p, q)
	}
	b1 := a.Bytes(p, 16)
	b2 := a.Bytes(q, 16)
	for i := range b1 {
		b1[i] = 0xAA
	}
	for _, v := range b2 {
		if v == 0xAA {
			t.Fatalf("write to first region leaked into second")
		}
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	a := New(64)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic on exhaustion")
		}
		oom, ok := r.(*OOMError)
		if !ok {
			t.Fatalf("panic value %T, want *OOMError", r)
		}
		if oom.Need != 128 || oom.Cap != 64 {
			t.Fatalf("OOMError = %+v, want Need=128 Cap=64", oom)
		}
	}()
	a.Alloc(128, 1)
}

func TestTryAllocReturnsOOM(t *testing.T) {
	a := New(64)
	if _, err := a.TryAlloc(32, 8); err != nil {
		t.Fatalf("TryAlloc(32) within capacity failed: %v", err)
	}
	_, err := a.TryAlloc(64, 8)
	if err == nil {
		t.Fatalf("TryAlloc beyond capacity should fail")
	}
	var oom *OOMError
	if !errorsAs(err, &oom) {
		t.Fatalf("error %T, want *OOMError", err)
	}
	if oom.Used != 32 || oom.Need != 64 {
		t.Fatalf("OOMError = %+v, want Used=32 Need=64", oom)
	}
	if a.Used() != 32 {
		t.Fatalf("failed TryAlloc moved the bump pointer to %d", a.Used())
	}
}

func errorsAs(err error, target **OOMError) bool {
	oom, ok := err.(*OOMError)
	if ok {
		*target = oom
	}
	return ok
}

func TestBudgetCeiling(t *testing.T) {
	a := New(1 << 12)
	a.SetBudget(128)
	if a.Remaining() != 128 {
		t.Fatalf("Remaining() = %d, want 128", a.Remaining())
	}
	if _, err := a.TryAlloc(100, 1); err != nil {
		t.Fatalf("alloc under budget failed: %v", err)
	}
	_, err := a.TryAlloc(100, 1)
	if err == nil {
		t.Fatalf("alloc over budget should fail despite physical room")
	}
	var oom *OOMError
	if !errorsAs(err, &oom) || oom.Budget != 128 {
		t.Fatalf("error %v, want *OOMError with Budget=128", err)
	}
	if err := a.Reserve(100, 1); err == nil {
		t.Fatalf("Reserve over budget should fail")
	}
	if err := a.Reserve(20, 1); err != nil {
		t.Fatalf("Reserve under budget failed: %v", err)
	}
	if a.Used() != 100 {
		t.Fatalf("Reserve allocated: Used() = %d", a.Used())
	}
	a.SetBudget(0) // lift the ceiling
	if _, err := a.TryAlloc(100, 1); err != nil {
		t.Fatalf("alloc after lifting budget failed: %v", err)
	}
}

func TestBudgetAboveCapClampsToCap(t *testing.T) {
	a := New(64)
	a.SetBudget(1 << 20)
	if a.Remaining() != 64 {
		t.Fatalf("Remaining() = %d, want physical cap 64", a.Remaining())
	}
}

func TestScopeReleaseReclaims(t *testing.T) {
	a := New(1 << 12)
	a.Alloc(64, 1)
	durable := a.Used()
	s := a.Scope()
	a.Alloc(256, 8)
	inner := a.Scope()
	a.Alloc(128, 8)
	inner.Release()
	s.Release()
	if a.Used() != durable {
		t.Fatalf("Used() = %d after Release, want %d", a.Used(), durable)
	}
	// Double release and release after outer reclaim are no-ops.
	inner.Release()
	s.Release()
	if a.Used() != durable {
		t.Fatalf("redundant Release moved the pointer to %d", a.Used())
	}
}

func TestRecoverOOM(t *testing.T) {
	run := func() (err error) {
		defer RecoverOOM(&err)
		a := New(64)
		a.Alloc(128, 1)
		return nil
	}
	err := run()
	var oom *OOMError
	if !errorsAs(err, &oom) {
		t.Fatalf("RecoverOOM surfaced %v, want *OOMError", err)
	}
	// Non-OOM panics must propagate.
	defer func() {
		if recover() == nil {
			t.Fatalf("RecoverOOM swallowed a foreign panic")
		}
	}()
	func() (err error) {
		defer RecoverOOM(&err)
		panic("unrelated")
	}()
}

func TestBadAlignmentPanics(t *testing.T) {
	a := New(64)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on non-power-of-two alignment")
		}
	}()
	a.Alloc(8, 3)
}

func TestOutOfRangeAccessPanics(t *testing.T) {
	a := New(64)
	for _, addr := range []Addr{0, Base - 1, Base + 61} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bytes(%#x, 4) should panic", addr)
				}
			}()
			a.Bytes(addr, 4)
		}()
	}
}

func TestRoundTripScalars(t *testing.T) {
	a := New(1 << 12)
	p := a.Alloc(32, 8)
	a.PutU16(p, 0xBEEF)
	a.PutU32(p+2, 0xDEADBEEF)
	a.PutU64(p+6, 0x0123456789ABCDEF)
	if a.U16(p) != 0xBEEF || a.U32(p+2) != 0xDEADBEEF || a.U64(p+6) != 0x0123456789ABCDEF {
		t.Fatalf("scalar round trip failed")
	}
}

func TestResetReusesSpace(t *testing.T) {
	a := New(128)
	p1 := a.Alloc(64, 1)
	a.Reset()
	p2 := a.AllocZeroed(64, 1)
	if p1 != p2 {
		t.Fatalf("post-Reset allocation at %#x, want %#x", p2, p1)
	}
	for _, v := range a.Bytes(p2, 64) {
		if v != 0 {
			t.Fatalf("AllocZeroed returned dirty memory after Reset")
		}
	}
}

func TestQuickU64RoundTrip(t *testing.T) {
	a := New(1 << 16)
	p := a.Alloc(8, 8)
	f := func(v uint64) bool {
		a.PutU64(p, v)
		return a.U64(p) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAllocMonotonic(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := New(1 << 22)
		var prevEnd Addr = Base
		for _, sz := range sizes {
			s := uint64(sz%512) + 1
			p := a.Alloc(s, 8)
			if p < prevEnd {
				return false
			}
			prevEnd = p + s
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateToMark(t *testing.T) {
	a := New(128)
	a.Alloc(32, 1)
	mark := a.Used()
	p1 := a.Alloc(64, 1)
	a.Truncate(mark)
	if a.Used() != mark {
		t.Fatalf("Used() = %d after Truncate, want %d", a.Used(), mark)
	}
	if p2 := a.Alloc(64, 1); p2 != p1 {
		t.Fatalf("post-Truncate allocation at %#x, want %#x", p2, p1)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Truncate beyond Used() should panic")
		}
	}()
	a.Truncate(1 << 20)
}

func TestOOMScopeBreakdown(t *testing.T) {
	// 32 durable bytes, then two nested scopes holding 16 and 8 bytes
	// when a 128-byte request fails: the OOMError must split usage into
	// durable + per-scope scratch, outermost first, summing to Used.
	a := New(64)
	a.Alloc(32, 1)
	outer := a.Scope()
	a.Alloc(16, 1)
	inner := a.Scope()
	a.Alloc(8, 1)
	_, err := a.TryAlloc(128, 1)
	var oom *OOMError
	if !errorsAs(err, &oom) {
		t.Fatalf("error %T, want *OOMError", err)
	}
	if oom.Durable != 32 {
		t.Fatalf("Durable = %d, want 32", oom.Durable)
	}
	want := []uint64{16, 8}
	if len(oom.ScopeHeld) != 2 || oom.ScopeHeld[0] != want[0] || oom.ScopeHeld[1] != want[1] {
		t.Fatalf("ScopeHeld = %v, want %v", oom.ScopeHeld, want)
	}
	if sum := oom.Durable + oom.ScopeHeld[0] + oom.ScopeHeld[1]; sum != oom.Used {
		t.Fatalf("durable + scopes = %d, want Used %d", sum, oom.Used)
	}
	if msg := oom.Error(); !strings.Contains(msg, "open scope(s)") {
		t.Fatalf("Error() lacks scope breakdown: %q", msg)
	}

	// Releasing the inner scope narrows the breakdown; with every scope
	// closed the failure reports all bytes as durable again.
	inner.Release()
	_, err = a.TryAlloc(128, 1)
	if !errorsAs(err, &oom) {
		t.Fatalf("error %T, want *OOMError", err)
	}
	if len(oom.ScopeHeld) != 1 || oom.ScopeHeld[0] != 16 || oom.Durable != 32 {
		t.Fatalf("after inner release: Durable=%d ScopeHeld=%v, want 32 [16]", oom.Durable, oom.ScopeHeld)
	}
	outer.Release()
	_, err = a.TryAlloc(128, 1)
	if !errorsAs(err, &oom) {
		t.Fatalf("error %T, want *OOMError", err)
	}
	if len(oom.ScopeHeld) != 0 || oom.Durable != 32 {
		t.Fatalf("with no open scope: Durable=%d ScopeHeld=%v, want 32 []", oom.Durable, oom.ScopeHeld)
	}
}

func TestCarveWindows(t *testing.T) {
	a := New(1 << 16)
	durable := a.Alloc(100, 8)
	a.Bytes(durable, 100)[0] = 0x5A
	mark := a.Used()

	c1, err := a.Carve(1024, 64)
	if err != nil {
		t.Fatalf("Carve: %v", err)
	}
	c2, err := a.Carve(1024, 64)
	if err != nil {
		t.Fatalf("Carve: %v", err)
	}
	if c1.Cap() != 1024 || c1.Used() != 0 {
		t.Fatalf("child Cap=%d Used=%d, want 1024, 0", c1.Cap(), c1.Used())
	}

	// Addresses from a child dereference identically through the parent
	// (shared address space), and the two children never overlap.
	p := c1.Alloc(64, 8)
	q := c2.Alloc(64, 8)
	a.Bytes(p, 64)[0] = 0xC1
	if c1.Bytes(p, 64)[0] != 0xC1 {
		t.Fatalf("child and parent views of %#x disagree", p)
	}
	if p+64 > q && q+64 > p {
		t.Fatalf("child windows overlap: %#x and %#x", p, q)
	}

	// A child is bounded by its window, not the parent's remaining space.
	if _, err := c1.TryAlloc(2048, 8); err == nil {
		t.Fatalf("child alloc beyond window succeeded")
	}
	var oom *OOMError
	if _, err := c1.TryAlloc(2048, 8); !errorsAs(err, &oom) || oom.Cap != 1024 {
		t.Fatalf("child OOM = %v, want window cap 1024", err)
	}

	// Child scratch is scoped like any arena's.
	sc := c2.Scope()
	c2.Alloc(256, 8)
	sc.Release()
	if c2.Used() != 64 {
		t.Fatalf("child Used=%d after scope release, want 64", c2.Used())
	}

	// Truncating the parent to the pre-carve mark reclaims the windows
	// without touching durable data.
	a.Truncate(mark)
	if a.Used() != mark {
		t.Fatalf("parent Used=%d after Truncate, want %d", a.Used(), mark)
	}
	if a.Bytes(durable, 100)[0] != 0x5A {
		t.Fatalf("durable data clobbered by window reclaim")
	}
}

func TestCarveRespectsBudget(t *testing.T) {
	a := New(1 << 16)
	a.SetBudget(4096)
	if _, err := a.Carve(8192, 64); err == nil {
		t.Fatalf("Carve over budget succeeded")
	}
	if _, err := a.Carve(2048, 64); err != nil {
		t.Fatalf("Carve under budget failed: %v", err)
	}
	if _, err := a.Carve(0, 64); err == nil {
		t.Fatalf("zero-byte Carve succeeded")
	}
}

func TestConcurrentCarvedAllocations(t *testing.T) {
	a := New(1 << 20)
	const children, allocs = 8, 200
	kids := make([]*Arena, children)
	for i := range kids {
		c, err := a.Carve(64<<10, 64)
		if err != nil {
			t.Fatalf("Carve: %v", err)
		}
		kids[i] = c
	}
	var wg sync.WaitGroup
	for i, c := range kids {
		wg.Add(1)
		go func(i int, c *Arena) {
			defer wg.Done()
			sc := c.Scope()
			defer sc.Release()
			for j := 0; j < allocs; j++ {
				addr := c.Alloc(64, 8)
				b := c.Bytes(addr, 64)
				for k := range b {
					b[k] = byte(i)
				}
				// Nobody else's writes may land in our window.
				for k := range b {
					if b[k] != byte(i) {
						t.Errorf("window %d corrupted", i)
						return
					}
				}
			}
		}(i, c)
	}
	wg.Wait()
}
