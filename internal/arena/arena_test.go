package arena

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAllocAlignment(t *testing.T) {
	a := New(1 << 16)
	for _, align := range []uint64{1, 2, 4, 8, 16, 64, 4096} {
		addr := a.Alloc(3, align)
		if addr%align != 0 {
			t.Fatalf("Alloc(3, %d) = %#x, not aligned", align, addr)
		}
		if addr < Base {
			t.Fatalf("address %#x below Base", addr)
		}
	}
}

func TestAllocDisjoint(t *testing.T) {
	a := New(1 << 12)
	p := a.Alloc(16, 8)
	q := a.Alloc(16, 8)
	if q < p+16 {
		t.Fatalf("allocations overlap: %#x then %#x", p, q)
	}
	b1 := a.Bytes(p, 16)
	b2 := a.Bytes(q, 16)
	for i := range b1 {
		b1[i] = 0xAA
	}
	for _, v := range b2 {
		if v == 0xAA {
			t.Fatalf("write to first region leaked into second")
		}
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	a := New(64)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic on exhaustion")
		}
		oom, ok := r.(*OOMError)
		if !ok {
			t.Fatalf("panic value %T, want *OOMError", r)
		}
		if oom.Need != 128 || oom.Cap != 64 {
			t.Fatalf("OOMError = %+v, want Need=128 Cap=64", oom)
		}
	}()
	a.Alloc(128, 1)
}

func TestTryAllocReturnsOOM(t *testing.T) {
	a := New(64)
	if _, err := a.TryAlloc(32, 8); err != nil {
		t.Fatalf("TryAlloc(32) within capacity failed: %v", err)
	}
	_, err := a.TryAlloc(64, 8)
	if err == nil {
		t.Fatalf("TryAlloc beyond capacity should fail")
	}
	var oom *OOMError
	if !errorsAs(err, &oom) {
		t.Fatalf("error %T, want *OOMError", err)
	}
	if oom.Used != 32 || oom.Need != 64 {
		t.Fatalf("OOMError = %+v, want Used=32 Need=64", oom)
	}
	if a.Used() != 32 {
		t.Fatalf("failed TryAlloc moved the bump pointer to %d", a.Used())
	}
}

func errorsAs(err error, target **OOMError) bool {
	oom, ok := err.(*OOMError)
	if ok {
		*target = oom
	}
	return ok
}

func TestBudgetCeiling(t *testing.T) {
	a := New(1 << 12)
	a.SetBudget(128)
	if a.Remaining() != 128 {
		t.Fatalf("Remaining() = %d, want 128", a.Remaining())
	}
	if _, err := a.TryAlloc(100, 1); err != nil {
		t.Fatalf("alloc under budget failed: %v", err)
	}
	_, err := a.TryAlloc(100, 1)
	if err == nil {
		t.Fatalf("alloc over budget should fail despite physical room")
	}
	var oom *OOMError
	if !errorsAs(err, &oom) || oom.Budget != 128 {
		t.Fatalf("error %v, want *OOMError with Budget=128", err)
	}
	if err := a.Reserve(100, 1); err == nil {
		t.Fatalf("Reserve over budget should fail")
	}
	if err := a.Reserve(20, 1); err != nil {
		t.Fatalf("Reserve under budget failed: %v", err)
	}
	if a.Used() != 100 {
		t.Fatalf("Reserve allocated: Used() = %d", a.Used())
	}
	a.SetBudget(0) // lift the ceiling
	if _, err := a.TryAlloc(100, 1); err != nil {
		t.Fatalf("alloc after lifting budget failed: %v", err)
	}
}

func TestBudgetAboveCapClampsToCap(t *testing.T) {
	a := New(64)
	a.SetBudget(1 << 20)
	if a.Remaining() != 64 {
		t.Fatalf("Remaining() = %d, want physical cap 64", a.Remaining())
	}
}

func TestScopeReleaseReclaims(t *testing.T) {
	a := New(1 << 12)
	a.Alloc(64, 1)
	durable := a.Used()
	s := a.Scope()
	a.Alloc(256, 8)
	inner := a.Scope()
	a.Alloc(128, 8)
	inner.Release()
	s.Release()
	if a.Used() != durable {
		t.Fatalf("Used() = %d after Release, want %d", a.Used(), durable)
	}
	// Double release and release after outer reclaim are no-ops.
	inner.Release()
	s.Release()
	if a.Used() != durable {
		t.Fatalf("redundant Release moved the pointer to %d", a.Used())
	}
}

func TestRecoverOOM(t *testing.T) {
	run := func() (err error) {
		defer RecoverOOM(&err)
		a := New(64)
		a.Alloc(128, 1)
		return nil
	}
	err := run()
	var oom *OOMError
	if !errorsAs(err, &oom) {
		t.Fatalf("RecoverOOM surfaced %v, want *OOMError", err)
	}
	// Non-OOM panics must propagate.
	defer func() {
		if recover() == nil {
			t.Fatalf("RecoverOOM swallowed a foreign panic")
		}
	}()
	func() (err error) {
		defer RecoverOOM(&err)
		panic("unrelated")
	}()
}

func TestBadAlignmentPanics(t *testing.T) {
	a := New(64)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on non-power-of-two alignment")
		}
	}()
	a.Alloc(8, 3)
}

func TestOutOfRangeAccessPanics(t *testing.T) {
	a := New(64)
	for _, addr := range []Addr{0, Base - 1, Base + 61} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bytes(%#x, 4) should panic", addr)
				}
			}()
			a.Bytes(addr, 4)
		}()
	}
}

func TestRoundTripScalars(t *testing.T) {
	a := New(1 << 12)
	p := a.Alloc(32, 8)
	a.PutU16(p, 0xBEEF)
	a.PutU32(p+2, 0xDEADBEEF)
	a.PutU64(p+6, 0x0123456789ABCDEF)
	if a.U16(p) != 0xBEEF || a.U32(p+2) != 0xDEADBEEF || a.U64(p+6) != 0x0123456789ABCDEF {
		t.Fatalf("scalar round trip failed")
	}
}

func TestResetReusesSpace(t *testing.T) {
	a := New(128)
	p1 := a.Alloc(64, 1)
	a.Reset()
	p2 := a.AllocZeroed(64, 1)
	if p1 != p2 {
		t.Fatalf("post-Reset allocation at %#x, want %#x", p2, p1)
	}
	for _, v := range a.Bytes(p2, 64) {
		if v != 0 {
			t.Fatalf("AllocZeroed returned dirty memory after Reset")
		}
	}
}

func TestQuickU64RoundTrip(t *testing.T) {
	a := New(1 << 16)
	p := a.Alloc(8, 8)
	f := func(v uint64) bool {
		a.PutU64(p, v)
		return a.U64(p) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAllocMonotonic(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := New(1 << 22)
		var prevEnd Addr = Base
		for _, sz := range sizes {
			s := uint64(sz%512) + 1
			p := a.Alloc(s, 8)
			if p < prevEnd {
				return false
			}
			prevEnd = p + s
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateToMark(t *testing.T) {
	a := New(128)
	a.Alloc(32, 1)
	mark := a.Used()
	p1 := a.Alloc(64, 1)
	a.Truncate(mark)
	if a.Used() != mark {
		t.Fatalf("Used() = %d after Truncate, want %d", a.Used(), mark)
	}
	if p2 := a.Alloc(64, 1); p2 != p1 {
		t.Fatalf("post-Truncate allocation at %#x, want %#x", p2, p1)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Truncate beyond Used() should panic")
		}
	}()
	a.Truncate(1 << 20)
}

func TestOOMScopeBreakdown(t *testing.T) {
	// 32 durable bytes, then two nested scopes holding 16 and 8 bytes
	// when a 128-byte request fails: the OOMError must split usage into
	// durable + per-scope scratch, outermost first, summing to Used.
	a := New(64)
	a.Alloc(32, 1)
	outer := a.Scope()
	a.Alloc(16, 1)
	inner := a.Scope()
	a.Alloc(8, 1)
	_, err := a.TryAlloc(128, 1)
	var oom *OOMError
	if !errorsAs(err, &oom) {
		t.Fatalf("error %T, want *OOMError", err)
	}
	if oom.Durable != 32 {
		t.Fatalf("Durable = %d, want 32", oom.Durable)
	}
	want := []uint64{16, 8}
	if len(oom.ScopeHeld) != 2 || oom.ScopeHeld[0] != want[0] || oom.ScopeHeld[1] != want[1] {
		t.Fatalf("ScopeHeld = %v, want %v", oom.ScopeHeld, want)
	}
	if sum := oom.Durable + oom.ScopeHeld[0] + oom.ScopeHeld[1]; sum != oom.Used {
		t.Fatalf("durable + scopes = %d, want Used %d", sum, oom.Used)
	}
	if msg := oom.Error(); !strings.Contains(msg, "open scope(s)") {
		t.Fatalf("Error() lacks scope breakdown: %q", msg)
	}

	// Releasing the inner scope narrows the breakdown; with every scope
	// closed the failure reports all bytes as durable again.
	inner.Release()
	_, err = a.TryAlloc(128, 1)
	if !errorsAs(err, &oom) {
		t.Fatalf("error %T, want *OOMError", err)
	}
	if len(oom.ScopeHeld) != 1 || oom.ScopeHeld[0] != 16 || oom.Durable != 32 {
		t.Fatalf("after inner release: Durable=%d ScopeHeld=%v, want 32 [16]", oom.Durable, oom.ScopeHeld)
	}
	outer.Release()
	_, err = a.TryAlloc(128, 1)
	if !errorsAs(err, &oom) {
		t.Fatalf("error %T, want *OOMError", err)
	}
	if len(oom.ScopeHeld) != 0 || oom.Durable != 32 {
		t.Fatalf("with no open scope: Durable=%d ScopeHeld=%v, want 32 []", oom.Durable, oom.ScopeHeld)
	}
}
