//go:build linux

package arena

import (
	"syscall"
	"unsafe"
)

// adviseHugePages asks the kernel to back b with transparent huge pages
// (MADV_HUGEPAGE). On hosts where THP is in "madvise" mode the default
// is 4 KB pages, and a hash join's random accesses over tens of
// megabytes then miss the TLB on nearly every probe — page walks dwarf
// the cache misses the paper's prefetching hides, and hardware drops
// PREFETCHT0 hints that miss the TLB. Advising the arena before first
// touch lets faults map 2 MB pages, shrinking the join's TLB footprint
// by ~512x. Best effort: errors are ignored (the region still works on
// 4 KB pages, only slower).
func adviseHugePages(b []byte) {
	if len(b) < 2<<20 {
		return
	}
	// madvise requires page alignment; trim to the 4 KB boundaries
	// inside b. Large Go allocations are page-aligned in practice, so
	// this usually trims nothing.
	const page = 4096
	addr := uintptr(unsafe.Pointer(&b[0]))
	start := (addr + page - 1) &^ (page - 1)
	end := (addr + uintptr(len(b))) &^ (page - 1)
	if end <= start {
		return
	}
	_ = syscall.Madvise(b[start-addr:end-addr], syscall.MADV_HUGEPAGE)
}
