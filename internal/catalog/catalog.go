// Package catalog implements the description-file layer the paper
// mentions in section 7.1: "Schemas and statistics are kept in separate
// description files ..., the latter of which are used by the hash join
// algorithms to compute numbers of partitions and hash table sizes."
// Relation descriptions (schema summary plus statistics) serialize as
// JSON; the planner turns them into GRACE parameters — partition count,
// hash table size, scheme choice, and tuned G/D from the analytic model.
package catalog

import (
	"encoding/json"
	"fmt"
	"io"

	"hashjoin/internal/core"
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/model"
	"hashjoin/internal/storage"
)

// RelationDesc is the persisted description of one relation.
type RelationDesc struct {
	Name         string `json:"name"`
	TupleSize    int    `json:"tuple_size"`
	PageSize     int    `json:"page_size"`
	NTuples      int    `json:"n_tuples"`
	NPages       int    `json:"n_pages"`
	DistinctKeys int    `json:"distinct_keys"`
}

// Describe scans a relation (untimed; statistics collection is offline
// in the paper's setup) and builds its description.
func Describe(name string, rel *storage.Relation) RelationDesc {
	distinct := make(map[uint32]struct{}, rel.NTuples)
	rel.Each(func(tup []byte, _ uint32) {
		distinct[rel.Schema.Key(tup)] = struct{}{}
	})
	return RelationDesc{
		Name:         name,
		TupleSize:    rel.Schema.FixedWidth(),
		PageSize:     rel.PageSize,
		NTuples:      rel.NTuples,
		NPages:       rel.NPages(),
		DistinctKeys: len(distinct),
	}
}

// Bytes returns the relation's storage footprint.
func (d RelationDesc) Bytes() int { return d.NPages * d.PageSize }

// Catalog is a named set of relation descriptions.
type Catalog struct {
	Relations map[string]RelationDesc `json:"relations"`
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{Relations: make(map[string]RelationDesc)}
}

// Put records a description.
func (c *Catalog) Put(d RelationDesc) { c.Relations[d.Name] = d }

// Get fetches a description.
func (c *Catalog) Get(name string) (RelationDesc, bool) {
	d, ok := c.Relations[name]
	return d, ok
}

// Save writes the catalog as indented JSON — the "description file".
func (c *Catalog) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Load reads a catalog written by Save.
func Load(r io.Reader) (*Catalog, error) {
	c := New()
	if err := json.NewDecoder(r).Decode(c); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if c.Relations == nil {
		c.Relations = make(map[string]RelationDesc)
	}
	return c, nil
}

// Plan is the planner's output for one GRACE join.
type Plan struct {
	NPartitions     int         // I/O partitions (build and probe alike)
	TableSize       int         // hash table buckets per partition pair
	PartScheme      core.Scheme // partition-phase scheme
	JoinScheme      core.Scheme // join-phase scheme
	Params          core.Params // tuned G and D
	BuffersFitCache bool        // whether partition buffers fit L2
	CacheResident   bool        // whether a build partition fits L2
}

// PlanGrace derives GRACE parameters from statistics: the partition
// count fills the memory budget (build partition + hash table), the
// hash table size is relatively prime to it (section 7.1), the
// partition scheme follows the section 7.4 combined policy, the join
// scheme uses group prefetching unless the partitions are already
// cache-resident (in which case simple prefetching's low overhead
// wins), and G/D come from the Theorem 1/2 minima.
func PlanGrace(build RelationDesc, memBudget int, cfg memsim.Config) Plan {
	if memBudget <= 0 {
		panic("catalog: memory budget must be positive")
	}
	perTuple := build.TupleSize + storage.SlotSize + hash.HeaderSize + hash.CellSize/2
	total := build.NTuples * perTuple
	n := (total + memBudget - 1) / memBudget
	if n < 1 {
		n = 1
	}

	// Size the table for the expected distinct keys per partition (one
	// bucket per group of duplicates suffices — the inline cell plus the
	// overflow array holds them), falling back to the tuple count when
	// no distinct-key statistic is recorded.
	tuplesPerPart := (build.NTuples + n - 1) / n
	distinctPerPart := tuplesPerPart
	if build.DistinctKeys > 0 && build.DistinctKeys < build.NTuples {
		distinctPerPart = (build.DistinctKeys + n - 1) / n
	}

	p := Plan{
		NPartitions: n,
		TableSize:   hash.SizeFor(distinctPerPart, n),
		PartScheme:  core.SchemeCombined,
	}
	p.BuffersFitCache = n*(build.PageSize+64) <= cfg.L2Size

	partBytes := tuplesPerPart*(build.TupleSize+storage.SlotSize) + hash.TableBytes(p.TableSize)
	p.CacheResident = partBytes <= cfg.L2Size/2
	if p.CacheResident {
		p.JoinScheme = core.SchemeSimple
	} else {
		p.JoinScheme = core.SchemeGroup
	}

	stages := model.ProbeStages(cfg.MemLatency, cfg.MemNextLatency)
	p.Params = core.Params{G: stages.OptimalG(), D: stages.OptimalD()}
	if p.Params.G == 0 {
		p.Params.G = core.DefaultParams().G
	}
	return p
}
