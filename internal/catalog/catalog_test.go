package catalog

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

func makeRel(t *testing.T, nTuples, nDistinct, width int) *storage.Relation {
	t.Helper()
	a := arena.New(uint64(nTuples*(width+16)) + (1 << 20))
	rel := storage.NewRelation(a, storage.KeyPayloadSchema(width), 2048)
	tup := make([]byte, width)
	for i := 0; i < nTuples; i++ {
		key := uint32(i%nDistinct)*2654435761 | 1
		binary.LittleEndian.PutUint32(tup, key)
		rel.Append(tup, hash.CodeU32(key))
	}
	return rel
}

func TestDescribe(t *testing.T) {
	rel := makeRel(t, 1000, 250, 40)
	d := Describe("orders", rel)
	if d.NTuples != 1000 || d.DistinctKeys != 250 || d.TupleSize != 40 {
		t.Fatalf("Describe = %+v", d)
	}
	if d.Bytes() != rel.ByteSize() {
		t.Fatalf("Bytes = %d, want %d", d.Bytes(), rel.ByteSize())
	}
}

func TestCatalogSaveLoadRoundTrip(t *testing.T) {
	c := New()
	c.Put(RelationDesc{Name: "orders", TupleSize: 100, PageSize: 8192, NTuples: 5000, NPages: 70, DistinctKeys: 5000})
	c.Put(RelationDesc{Name: "lineitems", TupleSize: 60, PageSize: 8192, NTuples: 20000, NPages: 170, DistinctKeys: 5000})
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"distinct_keys"`) {
		t.Fatalf("description file missing statistics: %s", buf.String())
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := got.Get("lineitems")
	if !ok || d.NTuples != 20000 {
		t.Fatalf("round trip lost data: %+v", d)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPlanGracePartitionCount(t *testing.T) {
	d := RelationDesc{Name: "b", TupleSize: 100, PageSize: 4096, NTuples: 100000, NPages: 2500, DistinctKeys: 100000}
	cfg := memsim.SmallConfig()
	p := PlanGrace(d, 1<<20, cfg)
	if p.NPartitions < 10 {
		t.Fatalf("100k x 100B against 1MB should need many partitions, got %d", p.NPartitions)
	}
	if p.JoinScheme != core.SchemeGroup {
		t.Fatalf("memory-sized partitions should pick group prefetching, got %v", p.JoinScheme)
	}
	if p.Params.G < 2 || p.Params.D < 1 {
		t.Fatalf("untuned params: %+v", p.Params)
	}
	// Table size relatively prime to partition count.
	if gcd(p.TableSize, p.NPartitions) != 1 {
		t.Fatalf("table size %d shares a factor with %d partitions", p.TableSize, p.NPartitions)
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func TestPlanGraceCacheResident(t *testing.T) {
	d := RelationDesc{Name: "small", TupleSize: 20, PageSize: 4096, NTuples: 500, NPages: 4, DistinctKeys: 500}
	p := PlanGrace(d, 1<<20, memsim.SmallConfig())
	if p.NPartitions != 1 {
		t.Fatalf("tiny relation needs 1 partition, got %d", p.NPartitions)
	}
	if !p.CacheResident || p.JoinScheme != core.SchemeSimple {
		t.Fatalf("cache-resident join should pick simple prefetching: %+v", p)
	}
}

func TestPlanGraceSkewShrinksTable(t *testing.T) {
	dense := RelationDesc{TupleSize: 40, PageSize: 4096, NTuples: 50000, DistinctKeys: 50000}
	skewed := dense
	skewed.DistinctKeys = 500
	pd := PlanGrace(dense, 1<<20, memsim.SmallConfig())
	ps := PlanGrace(skewed, 1<<20, memsim.SmallConfig())
	if ps.TableSize >= pd.TableSize {
		t.Fatalf("skewed stats should shrink the table: %d vs %d", ps.TableSize, pd.TableSize)
	}
}

// TestPlannedJoinRunsCorrectly closes the loop: a plan derived from
// statistics drives a real GRACE join.
func TestPlannedJoinRunsCorrectly(t *testing.T) {
	spec := workload.Spec{NBuild: 4000, TupleSize: 60, MatchesPerBuild: 2, PctMatched: 100, Seed: 91, PageSize: 2048}
	a := arena.New(workload.ArenaBytesFor(spec) * 2)
	pair := workload.Generate(a, spec)
	cfg := memsim.SmallConfig()

	d := Describe("build", pair.Build)
	plan := PlanGrace(d, 96<<10, cfg)

	m := vmem.New(a, memsim.NewSim(cfg))
	res := core.Grace(m, pair.Build, pair.Probe, core.GraceConfig{
		MemBudget:  96 << 10,
		PartScheme: plan.PartScheme,
		JoinScheme: plan.JoinScheme,
		PartParams: plan.Params,
		JoinParams: plan.Params,
	})
	if res.NOutput != pair.ExpectedMatches {
		t.Fatalf("planned join produced %d, want %d", res.NOutput, pair.ExpectedMatches)
	}
	if res.NPartitions != plan.NPartitions {
		t.Fatalf("driver used %d partitions, plan said %d", res.NPartitions, plan.NPartitions)
	}
}
