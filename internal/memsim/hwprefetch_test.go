package memsim

import "testing"

func hwConfig() Config {
	c := testConfig()
	c.HWPrefetch = true
	return c
}

// sequentialScanStall measures total dcache stall for scanning n lines
// one read per line with per-line compute work.
func sequentialScanStall(t *testing.T, cfg Config, dir int) uint64 {
	t.Helper()
	s := NewSim(cfg)
	base := uint64(0x100000)
	for i := 0; i < 64; i++ {
		var addr uint64
		if dir > 0 {
			addr = base + uint64(i*16)
		} else {
			addr = base - uint64(i*16)
		}
		s.Read(addr, 4)
		s.Compute(30) // enough work per line to cover Tnext
	}
	return s.Stats().DCacheStall
}

func TestHWPrefetchHidesAscendingScan(t *testing.T) {
	off := sequentialScanStall(t, testConfig(), +1)
	on := sequentialScanStall(t, hwConfig(), +1)
	if on >= off/2 {
		t.Fatalf("ascending scan stall with hw prefetch = %d, without = %d; want large reduction", on, off)
	}
}

func TestHWPrefetchHidesDescendingScan(t *testing.T) {
	off := sequentialScanStall(t, testConfig(), -1)
	on := sequentialScanStall(t, hwConfig(), -1)
	if on >= off/2 {
		t.Fatalf("descending scan stall with hw prefetch = %d, without = %d; want large reduction", on, off)
	}
}

func TestHWPrefetchIgnoresRandomAccesses(t *testing.T) {
	cfg := hwConfig()
	s := NewSim(cfg)
	// Pseudo-random line addresses: no stream should form.
	addr := uint64(0x100000)
	for i := 0; i < 50; i++ {
		addr = addr*6364136223846793005 + 1442695040888963407
		line := 0x100000 + (addr % (1 << 20) &^ 15)
		s.Read(line, 4)
		s.Compute(30)
	}
	// Nearly every access should be a full miss: stalls close to 50*T.
	if st := s.Stats(); st.DCacheStall < 40*cfg.MemLatency {
		t.Fatalf("random access stall = %d; hardware prefetcher should not help (want >= %d)", st.DCacheStall, 40*cfg.MemLatency)
	}
}

func TestHWPrefetchSurvivesInterleavedRandomTraffic(t *testing.T) {
	// A sequential stream interleaved with random table visits — the
	// partition/probe access pattern — must still be detected.
	cfg := hwConfig()
	s := NewSim(cfg)
	rnd := uint64(12345)
	seq := uint64(0x100000)
	for i := 0; i < 64; i++ {
		s.Read(seq, 4)
		seq += 16
		for j := 0; j < 3; j++ {
			rnd = rnd*6364136223846793005 + 1
			s.Read(0x800000+(rnd%(1<<20))&^15, 4)
			s.Compute(20)
		}
	}
	st := s.Stats()
	if st.StreamFetches == 0 {
		t.Fatalf("no stream fetches despite a live sequential stream")
	}
}

func TestInvalidateRangeColdensLines(t *testing.T) {
	s := NewSim(testConfig())
	s.Read(0x1000, 64)
	s.InvalidateRange(0x1000, 64)
	before := s.Stats()
	s.Read(0x1000, 4)
	if d := s.Stats().Sub(before); d.L2Misses != 1 {
		t.Fatalf("post-invalidate read L2Misses = %d, want 1", d.L2Misses)
	}
}
