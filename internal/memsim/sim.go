package memsim

// Stats is the decomposition of simulated execution, mirroring the
// paper's Figure 1 breakdown (busy, data-cache stalls, TLB-miss stalls,
// other stalls) plus event counters used by the Figure 13/17 cache-miss
// breakdowns.
type Stats struct {
	// Cycle breakdown. Total simulated time is the sum of the four.
	Busy        uint64 // instruction execution, including prefetch overhead
	DCacheStall uint64 // cycles exposed waiting on data-cache fills
	TLBStall    uint64 // cycles walking page tables on demand accesses
	OtherStall  uint64 // miss-handler saturation and other resource waits

	// Demand-access counters.
	Accesses      uint64 // line-granularity demand accesses
	L1Hits        uint64
	L1Misses      uint64
	L2Hits        uint64
	L2Misses      uint64 // demand fetches that went to memory
	TLBMisses     uint64
	WriteMisses   uint64 // store misses absorbed by the write buffer
	StreamFetches uint64 // overlapped fetches within one multi-line access

	// Prefetch counters.
	PrefetchIssued    uint64 // prefetch instructions executed
	PrefetchRedundant uint64 // line already ready in L1
	PrefetchL2Moves   uint64 // satisfied from L2 (no bus traffic)
	PrefetchMemFetch  uint64 // went to memory
	PrefetchTLBMisses uint64 // TLB walks triggered by prefetches (overlapped)

	// Outcome classification of prefetched lines (Figures 13 and 17).
	PrefetchFullHidden uint64 // demand access found the line ready
	PrefetchPartHidden uint64 // demand access waited for an in-flight fill
	PartHiddenCycles   uint64 // cycles still exposed on in-flight waits
	PrefetchWasted     uint64 // prefetched line evicted before any use

	// Resource events.
	MSHRWaits      uint64 // prefetches delayed by full miss handlers
	MSHRWaitCycles uint64
	Writebacks     uint64 // dirty L2 evictions consuming bus slots
	Flushes        uint64 // interference flushes injected (Figure 18)
}

// Total returns the total simulated cycles.
func (s Stats) Total() uint64 { return s.Busy + s.DCacheStall + s.TLBStall + s.OtherStall }

// Add returns s + t field-wise; useful to aggregate phases.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		Busy:        s.Busy + t.Busy,
		DCacheStall: s.DCacheStall + t.DCacheStall,
		TLBStall:    s.TLBStall + t.TLBStall,
		OtherStall:  s.OtherStall + t.OtherStall,

		Accesses:      s.Accesses + t.Accesses,
		L1Hits:        s.L1Hits + t.L1Hits,
		L1Misses:      s.L1Misses + t.L1Misses,
		L2Hits:        s.L2Hits + t.L2Hits,
		L2Misses:      s.L2Misses + t.L2Misses,
		TLBMisses:     s.TLBMisses + t.TLBMisses,
		WriteMisses:   s.WriteMisses + t.WriteMisses,
		StreamFetches: s.StreamFetches + t.StreamFetches,

		PrefetchIssued:    s.PrefetchIssued + t.PrefetchIssued,
		PrefetchRedundant: s.PrefetchRedundant + t.PrefetchRedundant,
		PrefetchL2Moves:   s.PrefetchL2Moves + t.PrefetchL2Moves,
		PrefetchMemFetch:  s.PrefetchMemFetch + t.PrefetchMemFetch,
		PrefetchTLBMisses: s.PrefetchTLBMisses + t.PrefetchTLBMisses,

		PrefetchFullHidden: s.PrefetchFullHidden + t.PrefetchFullHidden,
		PrefetchPartHidden: s.PrefetchPartHidden + t.PrefetchPartHidden,
		PartHiddenCycles:   s.PartHiddenCycles + t.PartHiddenCycles,
		PrefetchWasted:     s.PrefetchWasted + t.PrefetchWasted,

		MSHRWaits:      s.MSHRWaits + t.MSHRWaits,
		MSHRWaitCycles: s.MSHRWaitCycles + t.MSHRWaitCycles,
		Writebacks:     s.Writebacks + t.Writebacks,
		Flushes:        s.Flushes + t.Flushes,
	}
}

// Sub returns s - t field-wise; useful to attribute cycles to a phase.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Busy:        s.Busy - t.Busy,
		DCacheStall: s.DCacheStall - t.DCacheStall,
		TLBStall:    s.TLBStall - t.TLBStall,
		OtherStall:  s.OtherStall - t.OtherStall,

		Accesses:      s.Accesses - t.Accesses,
		L1Hits:        s.L1Hits - t.L1Hits,
		L1Misses:      s.L1Misses - t.L1Misses,
		L2Hits:        s.L2Hits - t.L2Hits,
		L2Misses:      s.L2Misses - t.L2Misses,
		TLBMisses:     s.TLBMisses - t.TLBMisses,
		WriteMisses:   s.WriteMisses - t.WriteMisses,
		StreamFetches: s.StreamFetches - t.StreamFetches,

		PrefetchIssued:    s.PrefetchIssued - t.PrefetchIssued,
		PrefetchRedundant: s.PrefetchRedundant - t.PrefetchRedundant,
		PrefetchL2Moves:   s.PrefetchL2Moves - t.PrefetchL2Moves,
		PrefetchMemFetch:  s.PrefetchMemFetch - t.PrefetchMemFetch,
		PrefetchTLBMisses: s.PrefetchTLBMisses - t.PrefetchTLBMisses,

		PrefetchFullHidden: s.PrefetchFullHidden - t.PrefetchFullHidden,
		PrefetchPartHidden: s.PrefetchPartHidden - t.PrefetchPartHidden,
		PartHiddenCycles:   s.PartHiddenCycles - t.PartHiddenCycles,
		PrefetchWasted:     s.PrefetchWasted - t.PrefetchWasted,

		MSHRWaits:      s.MSHRWaits - t.MSHRWaits,
		MSHRWaitCycles: s.MSHRWaitCycles - t.MSHRWaitCycles,
		Writebacks:     s.Writebacks - t.Writebacks,
		Flushes:        s.Flushes - t.Flushes,
	}
}

// Sim simulates the memory hierarchy described by a Config. It is not
// safe for concurrent use; each simulated "thread" owns its own Sim.
type Sim struct {
	cfg Config

	now     uint64 // current cycle
	l1, l2  *cache
	dtlb    *tlb
	busFree uint64 // earliest cycle the memory bus can start a transfer
	hwpf    hwPrefetcher

	// prefetched-line bookkeeping: line address -> installed-by-prefetch
	// and not yet demand-used. Bounded by cache capacity in practice.
	pending map[uint64]struct{}

	// outstanding prefetch completions, for MSHR accounting.
	outstanding []uint64

	nextFlush uint64

	stats Stats
}

// NewSim builds a simulator for cfg. The configuration is validated
// eagerly: malformed hierarchies panic at construction.
func NewSim(cfg Config) *Sim {
	cfg.validate()
	s := &Sim{
		cfg:     cfg,
		l1:      newCache(cfg.L1Size, cfg.L1Assoc, cfg.LineSize),
		l2:      newCache(cfg.L2Size, cfg.L2Assoc, cfg.LineSize),
		dtlb:    newTLB(cfg.TLBEntries, cfg.PageSize),
		pending: make(map[uint64]struct{}),
	}
	if cfg.FlushInterval > 0 {
		s.nextFlush = cfg.FlushInterval
	}
	return s
}

// Config returns the simulator's configuration.
func (s *Sim) Config() Config { return s.cfg }

// Now returns the current simulated cycle.
func (s *Sim) Now() uint64 { return s.now }

// Stats returns a snapshot of accumulated statistics.
func (s *Sim) Stats() Stats { return s.stats }

// ResetStats zeroes the statistics without disturbing cache contents or
// the clock, so a warm-cache region can be measured in isolation.
func (s *Sim) ResetStats() { s.stats = Stats{} }

// Compute advances the clock by cycles of pure computation.
func (s *Sim) Compute(cycles uint64) {
	s.maybeFlush()
	s.now += cycles
	s.stats.Busy += cycles
}

// Read simulates a demand load of size bytes at addr.
func (s *Sim) Read(addr uint64, size int) { s.access(addr, size, false) }

// Write simulates a demand store of size bytes at addr (write-allocate).
func (s *Sim) Write(addr uint64, size int) { s.access(addr, size, true) }

// Access simulates a demand access; write selects store semantics.
func (s *Sim) Access(addr uint64, size int, write bool) { s.access(addr, size, write) }

// FlushCaches invalidates both caches and the TLB immediately, modeling
// an interference event.
func (s *Sim) FlushCaches() {
	s.l1.invalidateAll()
	s.l2.invalidateAll()
	s.dtlb.invalidateAll()
	s.pending = make(map[uint64]struct{})
	s.stats.Flushes++
}

// InvalidateRange drops every line covering [addr, addr+size) from both
// caches without write-back, modeling DMA writing fresh data underneath
// the hierarchy (a simulated disk read into a buffer).
func (s *Sim) InvalidateRange(addr uint64, size int) {
	if size <= 0 {
		return
	}
	shift := s.l1.lineShift
	first := addr >> shift
	last := (addr + uint64(size) - 1) >> shift
	for tag := first; tag <= last; tag++ {
		s.l1.invalidateLine(tag)
		s.l2.invalidateLine(tag)
		delete(s.pending, tag)
	}
}

// maybeFlush injects periodic worst-case interference (Figure 18).
func (s *Sim) maybeFlush() {
	if s.nextFlush == 0 {
		return
	}
	for s.now >= s.nextFlush {
		s.FlushCaches()
		s.nextFlush += s.cfg.FlushInterval
	}
}

// busTransfer schedules one line transfer requested at time req: it
// starts when the bus frees up, occupies the bus for Tnext cycles, and
// delivers its data T cycles after starting.
func (s *Sim) busTransfer(req uint64) (completion uint64) {
	start := req
	if s.busFree > start {
		start = s.busFree
	}
	s.busFree = start + s.cfg.MemNextLatency
	return start + s.cfg.MemLatency
}

// access walks every cache line overlapped by [addr, addr+size). For
// reads spanning multiple lines the misses are overlapped: a dynamically
// scheduled processor (and its hardware stride prefetcher) pipelines the
// independent fetches of a bulk copy, making sequential scans
// bandwidth-bound (Tnext per line) instead of latency-bound (T per
// line). Random single-line accesses — the hash join's pain point — are
// unaffected.
func (s *Sim) access(addr uint64, size int, write bool) {
	s.maybeFlush()
	if size <= 0 {
		return
	}
	shift := s.l1.lineShift
	first := addr >> shift
	last := (addr + uint64(size) - 1) >> shift
	if !write && last > first {
		for ln := first; ln <= last; ln++ {
			s.streamFetch(ln << shift)
		}
	}
	for ln := first; ln <= last; ln++ {
		s.accessLine(ln<<shift, write)
	}
}

// streamFetch starts an overlapped fetch for a line that is about to be
// demand-read as part of a multi-line access. Unlike Prefetch it has no
// instruction overhead and does not participate in the prefetch-outcome
// accounting of Figures 13/17.
func (s *Sim) streamFetch(lineAddr uint64) {
	if ln, ok := s.l1.lookup(lineAddr, s.now); ok {
		_ = ln
		return
	}
	if _, ok := s.l2.lookup(lineAddr, s.now); ok {
		return
	}
	completion := s.busTransfer(s.now)
	s.stats.StreamFetches++
	s.fillL2(lineAddr, completion, false)
	s.fillL1(lineAddr, completion, false)
}

// accessLine performs a demand access to the single line at lineAddr.
//
// Loads stall for the full remaining fill latency. Stores never stall on
// the data fill: the processor's write buffer absorbs them, the line is
// fetched (read-for-ownership) in the background, and only the bus
// bandwidth is consumed. Both need address translation, so a TLB miss
// stalls either way.
func (s *Sim) accessLine(lineAddr uint64, write bool) {
	s.stats.Accesses++
	if !write && s.cfg.HWPrefetch {
		s.hwObserve(lineAddr)
	}

	// Address translation: a demand TLB miss exposes the full walk.
	if !s.dtlb.lookup(lineAddr, s.now) {
		s.stats.TLBMisses++
		s.stats.TLBStall += s.cfg.TLBMissLatency
		s.now += s.cfg.TLBMissLatency
		s.dtlb.insert(lineAddr, s.now)
	}

	tag := s.l1.lineAddr(lineAddr)
	if ln, ok := s.l1.lookup(lineAddr, s.now); ok {
		s.stats.L1Hits++
		if ln.readyAt > s.now {
			if write {
				// Store merges into the in-flight fill; no stall.
				if _, pend := s.pending[tag]; pend {
					s.stats.PrefetchFullHidden++
					delete(s.pending, tag)
				}
			} else {
				// In-flight prefetch: pay only the remaining latency.
				wait := ln.readyAt - s.now
				s.stats.DCacheStall += wait
				s.stats.PartHiddenCycles += wait
				s.stats.PrefetchPartHidden++
				s.now = ln.readyAt
				delete(s.pending, tag)
			}
		} else if _, pend := s.pending[tag]; pend {
			s.stats.PrefetchFullHidden++
			delete(s.pending, tag)
		}
		if write {
			ln.dirty = true
		}
		s.stats.Busy += s.cfg.L1HitLatency
		s.now += s.cfg.L1HitLatency
		return
	}
	s.stats.L1Misses++

	if ln2, ok := s.l2.lookup(lineAddr, s.now); ok {
		s.stats.L2Hits++
		if write {
			ln2.dirty = true
			s.fillL1(lineAddr, s.now, true)
		} else {
			stall := s.cfg.L2HitLatency
			if ln2.readyAt > s.now+stall {
				stall = ln2.readyAt - s.now
			}
			s.stats.DCacheStall += stall
			s.now += stall
			if _, pend := s.pending[tag]; pend {
				// Prefetched into L1, evicted to/kept in L2 before use:
				// the bus transfer was useful, but some latency returned.
				s.stats.PrefetchPartHidden++
				delete(s.pending, tag)
			}
			s.fillL1(lineAddr, s.now, false)
		}
		s.stats.Busy += s.cfg.L1HitLatency
		s.now += s.cfg.L1HitLatency
		return
	}
	s.stats.L2Misses++

	// Memory fetch. The bus starts one transfer every Tnext cycles (the
	// paper's pipelined additional-miss latency); each transfer delivers
	// its line T cycles after it starts.
	completion := s.busTransfer(s.now)
	if write {
		// Read-for-ownership proceeds in the background; the write
		// buffer retires the store without stalling the pipeline.
		s.stats.WriteMisses++
		s.fillL2(lineAddr, completion, true)
		s.fillL1(lineAddr, completion, true)
	} else {
		s.stats.DCacheStall += completion - s.now
		s.now = completion
		s.fillL2(lineAddr, s.now, false)
		s.fillL1(lineAddr, s.now, false)
	}
	s.stats.Busy += s.cfg.L1HitLatency
	s.now += s.cfg.L1HitLatency
}

// Prefetch issues a non-binding prefetch for the line containing addr.
// It never blocks on the fill itself; it may briefly wait for a free
// miss handler, and always charges one cycle of instruction overhead.
func (s *Sim) Prefetch(addr uint64) {
	s.maybeFlush()
	s.stats.PrefetchIssued++
	s.stats.Busy++ // prefetch instruction issue overhead
	s.now++

	lineAddr := addr &^ uint64(s.cfg.LineSize-1)
	issue := s.now

	// TLB prefetching: the walk happens on the prefetch's path and is
	// overlapped with computation; it delays only the fill completion.
	tlbPenalty := uint64(0)
	if !s.dtlb.lookup(lineAddr, s.now) {
		s.stats.PrefetchTLBMisses++
		tlbPenalty = s.cfg.TLBMissLatency
		s.dtlb.insert(lineAddr, s.now)
	}

	if ln, ok := s.l1.lookup(lineAddr, s.now); ok && ln.readyAt <= s.now {
		s.stats.PrefetchRedundant++
		return
	} else if ok {
		// Already in flight; nothing more to do.
		return
	}

	if _, ok := s.l2.lookup(lineAddr, s.now); ok {
		// Move into L1 without bus traffic; ready after the L2 latency.
		s.stats.PrefetchL2Moves++
		s.installPrefetch(lineAddr, issue+tlbPenalty+s.cfg.L2HitLatency, false)
		return
	}

	// Memory fetch: bounded by the number of miss handlers. The paper's
	// simulator does not drop prefetches when handlers are busy; the
	// request is held until one frees, delaying the fill (and thus how
	// much latency the prefetch can hide) without stalling the pipeline.
	s.reapOutstanding()
	if len(s.outstanding) >= s.cfg.MissHandlers {
		earliest := s.outstanding[0]
		idx := 0
		for i, c := range s.outstanding {
			if c < earliest {
				earliest, idx = c, i
			}
		}
		if earliest > issue {
			s.stats.MSHRWaits++
			s.stats.MSHRWaitCycles += earliest - issue
			issue = earliest
		}
		s.outstanding[idx] = s.outstanding[len(s.outstanding)-1]
		s.outstanding = s.outstanding[:len(s.outstanding)-1]
	}

	completion := s.busTransfer(issue + tlbPenalty)
	s.stats.PrefetchMemFetch++
	s.outstanding = append(s.outstanding, completion)
	s.installPrefetch(lineAddr, completion, true)
}

// PrefetchRange prefetches every line overlapped by [addr, addr+size).
func (s *Sim) PrefetchRange(addr uint64, size int) {
	if size <= 0 {
		return
	}
	shift := s.l1.lineShift
	first := addr >> shift
	last := (addr + uint64(size) - 1) >> shift
	for ln := first; ln <= last; ln++ {
		s.Prefetch(ln << shift)
	}
}

// reapOutstanding drops completed fetches from the MSHR list.
func (s *Sim) reapOutstanding() {
	live := s.outstanding[:0]
	for _, c := range s.outstanding {
		if c > s.now {
			live = append(live, c)
		}
	}
	s.outstanding = live
}

// installPrefetch inserts the line into L1 (and L2 when it came from
// memory) with a readiness timestamp, tracking it for Figure 13's
// wasted-prefetch classification.
func (s *Sim) installPrefetch(lineAddr, readyAt uint64, fromMemory bool) {
	tag := s.l1.lineAddr(lineAddr)
	s.pending[tag] = struct{}{}
	if fromMemory {
		_, ev2 := s.l2.insert(lineAddr, readyAt, s.now)
		s.noteL2Evict(ev2)
	}
	_, ev1 := s.l1.insert(lineAddr, readyAt, s.now)
	s.noteL1Evict(ev1)
}

// fillL1 installs a demand-fetched line into L1.
func (s *Sim) fillL1(lineAddr, readyAt uint64, dirty bool) {
	ln, ev := s.l1.insert(lineAddr, readyAt, s.now)
	ln.dirty = dirty
	s.noteL1Evict(ev)
}

// fillL2 installs a demand-fetched line into L2.
func (s *Sim) fillL2(lineAddr, readyAt uint64, dirty bool) {
	ln, ev := s.l2.insert(lineAddr, readyAt, s.now)
	ln.dirty = dirty
	s.noteL2Evict(ev)
}

// noteL1Evict records a prefetched-but-unused eviction. The line may
// still be in L2; only count it wasted when it also leaves L2, which
// noteL2Evict handles. Here we only detect L1-only prefetch installs
// (from-L2 moves) that die unused.
func (s *Sim) noteL1Evict(ev cacheLine) {
	if !ev.valid {
		return
	}
	if _, ok := s.pending[ev.tag]; ok {
		// If the line is not resident in L2 either, the prefetch was
		// fully wasted (evicted before use): a conflict-miss symptom of
		// oversized G / D in Figures 13 and 17.
		if _, inL2 := s.l2.lookup(ev.tag<<s.l1.lineShift, s.now); !inL2 {
			s.stats.PrefetchWasted++
			delete(s.pending, ev.tag)
		}
	}
	if ev.dirty {
		// L1 write-back into L2: mark the L2 copy dirty if present.
		if ln2, ok := s.l2.lookup(ev.tag<<s.l1.lineShift, s.now); ok {
			ln2.dirty = true
		}
	}
}

// noteL2Evict accounts a dirty write-back bus slot and wasted prefetches.
func (s *Sim) noteL2Evict(ev cacheLine) {
	if !ev.valid {
		return
	}
	if _, ok := s.pending[ev.tag]; ok {
		if _, inL1 := s.l1.lookup(ev.tag<<s.l1.lineShift, s.now); !inL1 {
			s.stats.PrefetchWasted++
			delete(s.pending, ev.tag)
		}
	}
	if ev.dirty {
		s.stats.Writebacks++
		// A write-back occupies one bus slot, delaying later fetches.
		if s.busFree < s.now {
			s.busFree = s.now
		}
		s.busFree += s.cfg.MemNextLatency
	}
}
