package memsim

import (
	"testing"
)

// testConfig returns a tiny hierarchy with easy-to-reason-about numbers:
// 16-byte lines, 4-line direct... (2-way) L1 of 128B, 512B L2, T=100.
func testConfig() Config {
	return Config{
		LineSize:       16,
		L1Size:         128,
		L1Assoc:        2,
		L2Size:         512,
		L2Assoc:        4,
		TLBEntries:     4,
		PageSize:       64,
		L1HitLatency:   1,
		L2HitLatency:   10,
		MemLatency:     100,
		MemNextLatency: 8,
		TLBMissLatency: 20,
		MissHandlers:   4,
	}
}

func TestColdMissCharged(t *testing.T) {
	s := NewSim(testConfig())
	s.Read(0x1000, 4)
	st := s.Stats()
	if st.L2Misses != 1 {
		t.Fatalf("L2Misses = %d, want 1", st.L2Misses)
	}
	if st.DCacheStall != 100 {
		t.Fatalf("DCacheStall = %d, want 100", st.DCacheStall)
	}
	if st.TLBMisses != 1 || st.TLBStall != 20 {
		t.Fatalf("TLB stats = %d/%d, want 1/20", st.TLBMisses, st.TLBStall)
	}
}

func TestL1HitAfterFill(t *testing.T) {
	s := NewSim(testConfig())
	s.Read(0x1000, 4)
	before := s.Stats()
	s.Read(0x1004, 4) // same line
	d := s.Stats().Sub(before)
	if d.L1Hits != 1 || d.DCacheStall != 0 || d.TLBStall != 0 {
		t.Fatalf("second access: hits=%d dstall=%d tstall=%d, want 1/0/0", d.L1Hits, d.DCacheStall, d.TLBStall)
	}
	if d.Busy != 1 {
		t.Fatalf("second access busy = %d, want 1 (L1 hit latency)", d.Busy)
	}
}

func TestMultiLineAccessTouchesEachLine(t *testing.T) {
	s := NewSim(testConfig())
	s.Read(0x1000, 40) // 16B lines: covers 3 lines
	if got := s.Stats().Accesses; got != 3 {
		t.Fatalf("Accesses = %d, want 3", got)
	}
}

func TestUnalignedAccessSpansLineBoundary(t *testing.T) {
	s := NewSim(testConfig())
	s.Read(0x100e, 4) // crosses the 0x1010 line boundary
	if got := s.Stats().Accesses; got != 2 {
		t.Fatalf("Accesses = %d, want 2", got)
	}
}

func TestPrefetchFullyHidesLatency(t *testing.T) {
	s := NewSim(testConfig())
	s.Prefetch(0x1000)
	s.Compute(200) // more than T
	before := s.Stats()
	s.Read(0x1000, 4)
	d := s.Stats().Sub(before)
	if d.DCacheStall != 0 {
		t.Fatalf("DCacheStall = %d after covered prefetch, want 0", d.DCacheStall)
	}
	if s.Stats().PrefetchFullHidden != 1 {
		t.Fatalf("PrefetchFullHidden = %d, want 1", s.Stats().PrefetchFullHidden)
	}
}

func TestPrefetchPartiallyHidesLatency(t *testing.T) {
	s := NewSim(testConfig())
	s.Prefetch(0x1000)
	s.Compute(40) // less than T-ish; fill still in flight
	before := s.Stats()
	s.Read(0x1000, 4)
	d := s.Stats().Sub(before)
	if d.DCacheStall == 0 || d.DCacheStall >= 100 {
		t.Fatalf("DCacheStall = %d, want in (0,100)", d.DCacheStall)
	}
	if s.Stats().PrefetchPartHidden != 1 {
		t.Fatalf("PrefetchPartHidden = %d, want 1", s.Stats().PrefetchPartHidden)
	}
}

func TestPrefetchTLBMissOverlapped(t *testing.T) {
	s := NewSim(testConfig())
	s.Prefetch(0x1000)
	st := s.Stats()
	if st.PrefetchTLBMisses != 1 {
		t.Fatalf("PrefetchTLBMisses = %d, want 1", st.PrefetchTLBMisses)
	}
	if st.TLBStall != 0 {
		t.Fatalf("TLBStall = %d, want 0 (walk overlapped)", st.TLBStall)
	}
	// The later demand access should not take a TLB miss.
	s.Compute(300)
	before := s.Stats()
	s.Read(0x1000, 4)
	if d := s.Stats().Sub(before); d.TLBMisses != 0 {
		t.Fatalf("demand TLBMisses = %d, want 0", d.TLBMisses)
	}
}

func TestBandwidthSerializesConcurrentMisses(t *testing.T) {
	cfg := testConfig()
	s := NewSim(cfg)
	// Issue many back-to-back prefetches; completions must be spaced by
	// Tnext once the first is scheduled.
	for i := 0; i < 3; i++ {
		s.Prefetch(uint64(0x1000 + 16*i))
	}
	// Wait out the first fill: issue overhead + overlapped TLB walk + T.
	s.Compute(cfg.MemLatency + cfg.TLBMissLatency)
	before := s.Stats()
	s.Read(0x1000, 4)
	if d := s.Stats().Sub(before); d.DCacheStall != 0 {
		t.Fatalf("first line stall = %d, want 0", d.DCacheStall)
	}
	before = s.Stats()
	s.Read(0x1020, 4) // third line completes ~2*Tnext after the first
	d := s.Stats().Sub(before)
	if d.DCacheStall == 0 {
		t.Fatalf("third line stall = 0, want >0 (bandwidth-limited)")
	}
	if d.DCacheStall > 3*cfg.MemNextLatency {
		t.Fatalf("third line stall = %d, want <= %d", d.DCacheStall, 3*cfg.MemNextLatency)
	}
}

func TestDemandMissesSerializeOnBus(t *testing.T) {
	cfg := testConfig()
	s := NewSim(cfg)
	s.Read(0x1000, 4)
	before := s.Stats()
	s.Read(0x2000, 4)
	d := s.Stats().Sub(before)
	// The second miss starts after the first completes, so it still pays
	// the full latency (no overlap without prefetching).
	if d.DCacheStall != cfg.MemLatency {
		t.Fatalf("second demand miss stall = %d, want %d", d.DCacheStall, cfg.MemLatency)
	}
}

func TestRedundantPrefetchCheap(t *testing.T) {
	s := NewSim(testConfig())
	s.Read(0x1000, 4)
	before := s.Stats()
	s.Prefetch(0x1000)
	d := s.Stats().Sub(before)
	if d.PrefetchRedundant != 1 {
		t.Fatalf("PrefetchRedundant = %d, want 1", d.PrefetchRedundant)
	}
	if d.Busy != 1 || d.DCacheStall != 0 {
		t.Fatalf("redundant prefetch cost busy=%d dstall=%d, want 1/0", d.Busy, d.DCacheStall)
	}
}

func TestPrefetchFromL2NoBusTraffic(t *testing.T) {
	cfg := testConfig()
	s := NewSim(cfg)
	// Fill L1 set with conflicting lines so 0x1000 falls out of L1 but
	// stays in L2. L1: 128B, 2-way, 16B lines -> 4 sets; lines mapping to
	// the same set are 64B apart.
	s.Read(0x1000, 4)
	s.Read(0x1040, 4)
	s.Read(0x1080, 4) // evicts 0x1000 from L1
	before := s.Stats()
	s.Prefetch(0x1000)
	d := s.Stats().Sub(before)
	if d.PrefetchL2Moves != 1 || d.PrefetchMemFetch != 0 {
		t.Fatalf("L2 move=%d memFetch=%d, want 1/0", d.PrefetchL2Moves, d.PrefetchMemFetch)
	}
}

func TestMSHRSaturationDelaysFillNotCPU(t *testing.T) {
	cfg := testConfig()
	cfg.MissHandlers = 2
	s := NewSim(cfg)
	s.Prefetch(0x1000)
	s.Prefetch(0x2000)
	before := s.Now()
	s.Prefetch(0x3000) // must wait for a handler
	st := s.Stats()
	if st.MSHRWaits != 1 || st.MSHRWaitCycles == 0 {
		t.Fatalf("MSHRWaits=%d cycles=%d, want 1 and >0", st.MSHRWaits, st.MSHRWaitCycles)
	}
	// The issuing instruction itself must not stall: only the prefetch's
	// fill is deferred until a handler frees.
	if got := s.Now() - before; got != 1 {
		t.Fatalf("third prefetch advanced the clock %d cycles, want 1 (issue only)", got)
	}
	if st.OtherStall != 0 {
		t.Fatalf("OtherStall = %d, want 0 (no pipeline stall)", st.OtherStall)
	}
	// The deferred fill completes later than an unconstrained one: a
	// demand access right after the full latency still waits.
	s.Compute(cfg.MemLatency + cfg.TLBMissLatency)
	pre := s.Stats()
	s.Read(0x3000, 4)
	if d := s.Stats().Sub(pre); d.DCacheStall == 0 {
		t.Fatalf("deferred prefetch should still be in flight")
	}
}

func TestWastedPrefetchDetected(t *testing.T) {
	cfg := testConfig()
	// Shrink L2 to equal L1 so evictions leave both levels.
	cfg.L2Size = 128
	cfg.L2Assoc = 2
	s := NewSim(cfg)
	// Prefetch more conflicting lines than the set holds; some must be
	// evicted before use. Same set: stride 64B (4 sets) in both caches.
	for i := 0; i < 4; i++ {
		s.Prefetch(uint64(0x1000 + 64*i))
	}
	if st := s.Stats(); st.PrefetchWasted == 0 {
		t.Fatalf("PrefetchWasted = 0, want >0 when conflicting prefetches evict each other")
	}
}

func TestFlushInterferenceForcesRemisses(t *testing.T) {
	cfg := testConfig()
	cfg.FlushInterval = 500
	s := NewSim(cfg)
	s.Read(0x1000, 4)
	s.Compute(1000) // crosses two flush boundaries
	before := s.Stats()
	s.Read(0x1000, 4)
	d := s.Stats().Sub(before)
	if d.L2Misses != 1 {
		t.Fatalf("post-flush access L2Misses = %d, want 1", d.L2Misses)
	}
	if s.Stats().Flushes == 0 {
		t.Fatalf("Flushes = 0, want >0")
	}
}

func TestStatsTotalMatchesClock(t *testing.T) {
	s := NewSim(testConfig())
	for i := 0; i < 64; i++ {
		s.Prefetch(uint64(0x1000 + 16*i))
		s.Compute(7)
		s.Read(uint64(0x1000+16*i), 8)
		if i%3 == 0 {
			s.Write(uint64(0x5000+16*i), 8)
		}
	}
	if got, want := s.Stats().Total(), s.Now(); got != want {
		t.Fatalf("Stats().Total() = %d, clock = %d; breakdown must account every cycle", got, want)
	}
}

func TestWriteMakesLineDirtyAndWritebackCounted(t *testing.T) {
	cfg := testConfig()
	cfg.L2Size = 128
	cfg.L2Assoc = 2
	s := NewSim(cfg)
	s.Write(0x1000, 8)
	// Evict through both levels with conflicting fills.
	s.Read(0x1040, 8)
	s.Read(0x1080, 8)
	if st := s.Stats(); st.Writebacks == 0 {
		t.Fatalf("Writebacks = 0, want >0 after dirty eviction")
	}
}

func TestLRUReplacementOrder(t *testing.T) {
	cfg := testConfig() // L1: 4 sets, 2-way
	s := NewSim(cfg)
	s.Read(0x1000, 4) // set 0
	s.Read(0x1040, 4) // set 0, second way
	s.Read(0x1000, 4) // refresh first line
	s.Read(0x1080, 4) // evicts 0x1040 (LRU), not 0x1000
	before := s.Stats()
	s.Read(0x1000, 4)
	if d := s.Stats().Sub(before); d.L1Hits != 1 {
		t.Fatalf("expected 0x1000 still resident after LRU eviction of 0x1040")
	}
	before = s.Stats()
	s.Read(0x1040, 4)
	if d := s.Stats().Sub(before); d.L1Misses != 1 {
		t.Fatalf("expected 0x1040 to have been evicted")
	}
}

func TestTLBEviction(t *testing.T) {
	cfg := testConfig() // 4 TLB entries, 64B pages
	s := NewSim(cfg)
	for i := 0; i < 5; i++ {
		s.Read(uint64(0x1000+64*i), 4)
	}
	before := s.Stats()
	s.Read(0x1000, 4) // first page evicted by the fifth
	if d := s.Stats().Sub(before); d.TLBMisses != 1 {
		t.Fatalf("TLBMisses = %d, want 1 after TLB overflow", d.TLBMisses)
	}
}

func TestResetStatsKeepsCacheContents(t *testing.T) {
	s := NewSim(testConfig())
	s.Read(0x1000, 4)
	s.ResetStats()
	s.Read(0x1000, 4)
	st := s.Stats()
	if st.L1Hits != 1 || st.L1Misses != 0 {
		t.Fatalf("after ResetStats: hits=%d misses=%d, want 1/0", st.L1Hits, st.L1Misses)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.LineSize = 0 },
		func(c *Config) { c.LineSize = 48 },
		func(c *Config) { c.L1Assoc = 0 },
		func(c *Config) { c.L1Size = 8 },
		func(c *Config) { c.TLBEntries = 0 },
		func(c *Config) { c.PageSize = 8 },
		func(c *Config) { c.MissHandlers = 0 },
	}
	for i, mut := range bad {
		cfg := testConfig()
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewSim accepted invalid config", i)
				}
			}()
			NewSim(cfg)
		}()
	}
}

func TestES40ConfigSane(t *testing.T) {
	cfg := ES40Config()
	cfg.validate()
	if cfg.MemLatency != 150 || cfg.LineSize != 64 || cfg.MissHandlers != 32 {
		t.Fatalf("ES40Config deviates from Table 2: %+v", cfg)
	}
	small := SmallConfig()
	small.validate()
	if small.L2Size >= cfg.L2Size {
		t.Fatalf("SmallConfig L2 should be smaller than ES40")
	}
}

// TestGroupPrefetchConditionHolds exercises the paper's Theorem 1 at the
// simulator level: with (G-1)*C >= T, a group-prefetched pointer walk has
// essentially no exposed miss latency, while the naive walk pays T per
// element.
func TestGroupPrefetchConditionHolds(t *testing.T) {
	cfg := testConfig()
	run := func(prefetch bool) uint64 {
		s := NewSim(cfg)
		// G must both satisfy (G-1)*C >= T and fit in the 8-line L1 so
		// prefetched lines are not evicted before use.
		const G = 6
		const C = 25 // per-element compute; (G-1)*C = 125 >= T=100
		var addrs [G]uint64
		for i := range addrs {
			addrs[i] = uint64(0x10000 + i*16) // consecutive lines
		}
		for rep := 0; rep < 4; rep++ {
			// Touch a fresh region every repetition (cold lines).
			for i := range addrs {
				addrs[i] += 1 << 20
			}
			if prefetch {
				for i := 0; i < G; i++ {
					s.Compute(C)
					s.Prefetch(addrs[i])
				}
				for i := 0; i < G; i++ {
					s.Read(addrs[i], 4)
					s.Compute(C)
				}
			} else {
				for i := 0; i < G; i++ {
					s.Compute(C)
					s.Read(addrs[i], 4)
					s.Compute(C)
				}
			}
		}
		return s.Now()
	}
	base := run(false)
	pf := run(true)
	if pf >= base {
		t.Fatalf("prefetched walk (%d cycles) not faster than baseline (%d)", pf, base)
	}
	// The baseline pays ~T per element; prefetching should hide the bulk.
	if float64(pf) > 0.55*float64(base) {
		t.Fatalf("prefetching hid too little: %d vs %d cycles", pf, base)
	}
}
