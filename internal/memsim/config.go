// Package memsim is a cycle-level CPU memory-hierarchy simulator built to
// reproduce the evaluation environment of Chen et al., "Improving Hash
// Join Performance through Prefetching" (ICDE 2004). It models:
//
//   - a primary data cache and a unified secondary cache, both
//     set-associative with LRU replacement;
//   - a fully-associative data TLB with hardware miss handling;
//   - a main-memory bus with full miss latency T and pipelined
//     additional-miss latency Tnext (the inverse of memory bandwidth),
//     exactly the T / Tnext quantities of the paper's Table 1;
//   - a bounded set of miss handlers (MSHRs) for outstanding misses;
//   - non-binding software prefetches that install lines with a readiness
//     timestamp, so a demand access arriving early pays only the
//     remaining latency (the paper's partial hiding);
//   - TLB prefetching: TLB misses triggered by prefetches are handled on
//     the prefetch's path and overlap with computation (paper section 2);
//   - periodic cache+TLB flushing to model worst-case cache interference
//     (paper Figure 18).
//
// The simulator is timing-only: data lives elsewhere (package arena); the
// algorithms interleave real work with Access/Prefetch/Compute calls.
// Execution time is decomposed, as in the paper's Figure 1, into busy
// time, data-cache stalls, TLB-miss stalls, and other stalls.
package memsim

// Config describes the simulated memory hierarchy. All sizes are bytes
// and all latencies are CPU cycles.
type Config struct {
	LineSize int // cache line size, power of two

	L1Size  int // primary data cache capacity
	L1Assoc int // primary data cache associativity

	L2Size  int // unified secondary cache capacity
	L2Assoc int // secondary cache associativity

	TLBEntries int // fully-associative DTLB entry count
	PageSize   int // virtual memory page size, power of two

	L1HitLatency   uint64 // charged as busy time (pipelined load-use)
	L2HitLatency   uint64 // exposed on an L1 miss that hits in L2
	MemLatency     uint64 // T: full latency of a cache miss to memory
	MemNextLatency uint64 // Tnext: additional latency of a pipelined miss
	TLBMissLatency uint64 // hardware page-walk latency

	MissHandlers int // max outstanding prefetch fetches (MSHRs)

	// HWPrefetch enables the hardware unit-stride stream prefetcher that
	// overlaps sequential-scan misses; the paper's out-of-order baseline
	// gets this for free from its memory system. Disable for ablation.
	HWPrefetch bool

	// FlushInterval, when non-zero, invalidates both caches and the TLB
	// every FlushInterval cycles, modeling the worst-case interference
	// from other activities sharing the cache (Figure 18).
	FlushInterval uint64
}

// ES40Config returns the simulation parameters of the paper's Table 2:
// a 1 GHz dynamically-scheduled processor with a Compaq ES40-based
// memory system. 64-byte lines; 64 KB 4-way L1D; 1 MB 8-way unified L2
// (the paper sizes the L2 at 1 MB: "1MB L2 cache can hold 128 pages of
// 8KB each"); 64-entry fully-associative DTLB over 8 KB pages; 32 data
// miss handlers; T = 150 cycles.
func ES40Config() Config {
	return Config{
		LineSize:       64,
		L1Size:         64 << 10,
		L1Assoc:        4,
		L2Size:         1 << 20,
		L2Assoc:        8,
		TLBEntries:     64,
		PageSize:       8 << 10,
		L1HitLatency:   1,
		L2HitLatency:   15,
		MemLatency:     150,
		MemNextLatency: 10,
		TLBMissLatency: 30,
		MissHandlers:   32,
		HWPrefetch:     true,
	}
}

// SmallConfig returns a scaled-down hierarchy (16 KB L1, 128 KB L2,
// 32-entry TLB, 4 KB pages) with unchanged latencies. Experiments that
// pair it with a proportionally scaled memory budget preserve the
// paper's 50:1 memory-to-cache ratio while running quickly enough for
// unit tests and Go benchmarks.
func SmallConfig() Config {
	c := ES40Config()
	c.L1Size = 16 << 10
	c.L2Size = 128 << 10
	c.TLBEntries = 32
	c.PageSize = 4 << 10
	return c
}

// WithLatency returns a copy of c with MemLatency set to t. The paper's
// Figure 12 uses T = 1000 to model a future, wider processor/memory gap.
func (c Config) WithLatency(t uint64) Config {
	c.MemLatency = t
	return c
}

// lineShift returns log2(LineSize).
func (c Config) lineShift() uint { return log2(uint64(c.LineSize)) }

// pageShift returns log2(PageSize).
func (c Config) pageShift() uint { return log2(uint64(c.PageSize)) }

func log2(v uint64) uint {
	if v == 0 || v&(v-1) != 0 {
		panic("memsim: size must be a non-zero power of two")
	}
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

// validate panics on malformed configurations; construction-time bugs in
// experiment setup should fail loudly.
func (c Config) validate() {
	switch {
	case c.LineSize <= 0:
		panic("memsim: LineSize must be positive")
	case c.L1Size < c.LineSize || c.L2Size < c.LineSize:
		panic("memsim: cache smaller than one line")
	case c.L1Assoc <= 0 || c.L2Assoc <= 0:
		panic("memsim: associativity must be positive")
	case c.L1Size%(c.LineSize*c.L1Assoc) != 0:
		panic("memsim: L1 size not divisible by way size")
	case c.L2Size%(c.LineSize*c.L2Assoc) != 0:
		panic("memsim: L2 size not divisible by way size")
	case c.TLBEntries <= 0:
		panic("memsim: TLBEntries must be positive")
	case c.PageSize < c.LineSize:
		panic("memsim: PageSize must be at least LineSize")
	case c.MissHandlers <= 0:
		panic("memsim: MissHandlers must be positive")
	}
	log2(uint64(c.LineSize))
	log2(uint64(c.PageSize))
}
