package memsim

// cache is a set-associative cache with true-LRU replacement. Each
// resident line carries a readiness timestamp so in-flight (prefetched)
// lines can be distinguished from ready ones: a demand access to a line
// whose fetch is still outstanding stalls only for the remaining cycles.
type cache struct {
	sets      []cacheSet
	setMask   uint64
	lineShift uint
}

type cacheLine struct {
	tag     uint64 // full line address (addr >> lineShift)
	readyAt uint64 // cycle at which the fill completes
	lru     uint64 // last-use stamp
	valid   bool
	dirty   bool
}

type cacheSet struct {
	lines []cacheLine
}

func newCache(size, assoc, lineSize int) *cache {
	nLines := size / lineSize
	nSets := nLines / assoc
	c := &cache{
		sets:      make([]cacheSet, nSets),
		setMask:   uint64(nSets - 1),
		lineShift: log2(uint64(lineSize)),
	}
	if nSets&(nSets-1) != 0 {
		panic("memsim: cache set count must be a power of two")
	}
	for i := range c.sets {
		c.sets[i].lines = make([]cacheLine, assoc)
	}
	return c
}

// lineAddr converts a byte address to a line address (tag).
func (c *cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// lookup finds the line containing addr. It returns the line and whether
// it was present. The line's LRU stamp is refreshed on a hit.
func (c *cache) lookup(addr, stamp uint64) (*cacheLine, bool) {
	tag := c.lineAddr(addr)
	set := &c.sets[tag&c.setMask]
	for i := range set.lines {
		ln := &set.lines[i]
		if ln.valid && ln.tag == tag {
			ln.lru = stamp
			return ln, true
		}
	}
	return nil, false
}

// insert installs the line containing addr, evicting the LRU victim if
// the set is full. It returns the inserted line and the evicted line
// value (valid=false if no eviction or the victim was invalid).
func (c *cache) insert(addr, readyAt, stamp uint64) (*cacheLine, cacheLine) {
	tag := c.lineAddr(addr)
	set := &c.sets[tag&c.setMask]
	victim := &set.lines[0]
	for i := range set.lines {
		ln := &set.lines[i]
		if ln.valid && ln.tag == tag {
			// Already present (e.g. racing prefetches); refresh.
			ln.lru = stamp
			if readyAt < ln.readyAt {
				ln.readyAt = readyAt
			}
			return ln, cacheLine{}
		}
		if !ln.valid {
			victim = ln
			break
		}
		if ln.lru < victim.lru {
			victim = ln
		}
	}
	evicted := *victim
	*victim = cacheLine{tag: tag, readyAt: readyAt, lru: stamp, valid: true}
	return victim, evicted
}

// invalidateLine drops the line with the given tag, if resident, without
// write-back.
func (c *cache) invalidateLine(tag uint64) {
	set := &c.sets[tag&c.setMask]
	for i := range set.lines {
		if set.lines[i].valid && set.lines[i].tag == tag {
			set.lines[i] = cacheLine{}
			return
		}
	}
}

// invalidateAll drops every line (Figure 18 flush interference).
func (c *cache) invalidateAll() {
	for i := range c.sets {
		for j := range c.sets[i].lines {
			c.sets[i].lines[j] = cacheLine{}
		}
	}
}

// residentLines counts valid lines; used by tests and stats.
func (c *cache) residentLines() int {
	n := 0
	for i := range c.sets {
		for j := range c.sets[i].lines {
			if c.sets[i].lines[j].valid {
				n++
			}
		}
	}
	return n
}

// tlb is a fully-associative translation lookaside buffer with LRU
// replacement.
type tlb struct {
	entries   []tlbEntry
	pageShift uint
}

type tlbEntry struct {
	page  uint64
	lru   uint64
	valid bool
}

func newTLB(entries int, pageSize int) *tlb {
	return &tlb{
		entries:   make([]tlbEntry, entries),
		pageShift: log2(uint64(pageSize)),
	}
}

// lookup probes for addr's page, refreshing LRU on hit.
func (t *tlb) lookup(addr, stamp uint64) bool {
	page := addr >> t.pageShift
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.lru = stamp
			return true
		}
	}
	return false
}

// insert installs addr's page, evicting the LRU entry if full.
func (t *tlb) insert(addr, stamp uint64) {
	page := addr >> t.pageShift
	victim := &t.entries[0]
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.lru = stamp
			return
		}
		if !e.valid {
			victim = e
			break
		}
		if e.lru < victim.lru {
			victim = e
		}
	}
	*victim = tlbEntry{page: page, lru: stamp, valid: true}
}

// invalidateAll drops every entry.
func (t *tlb) invalidateAll() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
}
