package memsim

// Hardware stream prefetcher. The paper's baseline runs on a
// dynamically-scheduled superscalar whose reorder buffer and memory
// system overlap the independent misses of sequential scans (reading
// input pages, scanning slot arrays); only the random, dependent
// accesses of hash table visits stay fully exposed. A small table of
// unit-stride streams (ascending for tuple data, descending for slot
// arrays read from the page end) reproduces that: on a detected stream,
// the next lines are fetched in the background.
//
// Stream fetches use streamFetch — they consume bus bandwidth and cache
// space but are excluded from the software-prefetch outcome accounting.

const (
	hwStreams       = 16 // concurrently tracked streams
	hwPrefetchDepth = 2  // lines fetched ahead on a stream hit
)

type hwStream struct {
	last    uint64 // line tag most recently seen on this stream
	lastUse uint64
	valid   bool
}

type hwPrefetcher struct {
	streams [hwStreams]hwStream
}

// observe records a demand read of line tag. When the tag extends a
// tracked stream by one line in either direction, it returns the first
// line to fetch ahead and the direction; otherwise it allocates a
// tentative stream and returns depth 0.
func (p *hwPrefetcher) observe(tag, now uint64) (fetchBase uint64, dir int64, depth int) {
	lru := -1
	for i := range p.streams {
		st := &p.streams[i]
		if !st.valid {
			if lru == -1 || p.streams[lru].valid {
				lru = i
			}
			continue
		}
		switch tag {
		case st.last:
			st.lastUse = now
			return 0, 0, 0
		case st.last + 1:
			st.last = tag
			st.lastUse = now
			return tag + 1, +1, hwPrefetchDepth
		case st.last - 1:
			st.last = tag
			st.lastUse = now
			return tag - 1, -1, hwPrefetchDepth
		}
		if lru == -1 || (p.streams[lru].valid && st.lastUse < p.streams[lru].lastUse) {
			lru = i
		}
	}
	p.streams[lru] = hwStream{last: tag, lastUse: now, valid: true}
	return 0, 0, 0
}

// hwObserve runs the stream detector for a demand read and issues the
// background fetches it requests.
func (s *Sim) hwObserve(lineAddr uint64) {
	tag := lineAddr >> s.l1.lineShift
	base, dir, depth := s.hwpf.observe(tag, s.now)
	for i := 0; i < depth; i++ {
		next := int64(base) + dir*int64(i)
		if next <= 0 {
			break
		}
		s.streamFetch(uint64(next) << s.l1.lineShift)
	}
}
