package memsim

import "testing"

func TestStoreMissDoesNotStall(t *testing.T) {
	s := NewSim(testConfig())
	s.Write(0x1000, 4)
	st := s.Stats()
	if st.DCacheStall != 0 {
		t.Fatalf("store miss DCacheStall = %d, want 0 (write buffer)", st.DCacheStall)
	}
	if st.WriteMisses != 1 {
		t.Fatalf("WriteMisses = %d, want 1", st.WriteMisses)
	}
	if st.TLBStall == 0 {
		t.Fatalf("TLBStall = 0, want >0 (stores still translate)")
	}
}

func TestLoadAfterStoreMissWaitsForFill(t *testing.T) {
	cfg := testConfig()
	s := NewSim(cfg)
	s.Write(0x1000, 4)
	before := s.Stats()
	s.Read(0x1000, 4) // the RFO is still in flight
	d := s.Stats().Sub(before)
	if d.DCacheStall == 0 {
		t.Fatalf("load right after store miss should wait for the background fill")
	}
	if d.DCacheStall > cfg.MemLatency {
		t.Fatalf("load stall %d exceeds full latency %d", d.DCacheStall, cfg.MemLatency)
	}
}

func TestStoreToInflightPrefetchDoesNotStall(t *testing.T) {
	s := NewSim(testConfig())
	s.Prefetch(0x1000)
	before := s.Stats()
	s.Write(0x1000, 4)
	d := s.Stats().Sub(before)
	if d.DCacheStall != 0 {
		t.Fatalf("store into in-flight line stalled %d cycles, want 0", d.DCacheStall)
	}
	if s.Stats().PrefetchFullHidden != 1 {
		t.Fatalf("store should consume the pending prefetch (RFO avoided)")
	}
}

func TestMultiLineReadIsBandwidthBound(t *testing.T) {
	cfg := testConfig()
	s := NewSim(cfg)
	const n = 20 * 16 // 20 lines
	before := s.Now()
	s.Read(0x10000, n)
	elapsed := s.Now() - before
	// Latency-bound would be ~20*T = 2000; bandwidth-bound is
	// ~T + 19*Tnext + TLB walks = 100 + 152 + a few walks.
	if elapsed > cfg.MemLatency+25*cfg.MemNextLatency+5*cfg.TLBMissLatency+40 {
		t.Fatalf("multi-line read took %d cycles; misses not overlapped", elapsed)
	}
	if s.Stats().StreamFetches == 0 {
		t.Fatalf("StreamFetches = 0, want >0")
	}
}

func TestSingleLineReadStillLatencyBound(t *testing.T) {
	cfg := testConfig()
	s := NewSim(cfg)
	s.Read(0x1000, 4)
	if st := s.Stats(); st.DCacheStall != cfg.MemLatency {
		t.Fatalf("single-line miss stall = %d, want %d", st.DCacheStall, cfg.MemLatency)
	}
}
