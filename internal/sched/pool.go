package sched

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"hashjoin/internal/native"
)

// ErrPoolClosed reports a morsel job submitted to, or cut short by, a
// closed pool.
var ErrPoolClosed = errors.New("sched: worker pool closed")

// Pool is the shared morsel executor: a fixed set of worker goroutines
// serving every admitted query's partition-pair morsels. Fairness is
// weighted round-robin over the active jobs — each pass around the job
// ring a job may claim morsels up to its weight, so a query with a
// thousand pairs and a query with four interleave instead of the big
// one monopolizing the workers. Within a job, the native layer's slot
// exclusivity is preserved: a slot (pairJoiner) never runs two morsels
// concurrently.
//
// Pool implements native.Pool.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*poolJob
	rr     int // round-robin scan start
	closed bool
	wg     sync.WaitGroup

	morsels atomic.Uint64
}

type poolJob struct {
	j       *native.MorselJob
	next    int   // next unissued morsel
	running int   // morsels in flight
	free    []int // idle slot indexes (stack)
	credit  int   // remaining claims this round-robin epoch
	err     error // first error; stops further issue
	done    chan struct{}
}

// NewPool starts a pool of workers goroutines (0 = GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Morsels returns how many morsels the pool has executed in total.
func (p *Pool) Morsels() uint64 { return p.morsels.Load() }

// Do enqueues job and blocks until every issued morsel has finished,
// returning the job's first error (see the native.MorselJob contract).
// Many goroutines may call Do concurrently; that is the point.
func (p *Pool) Do(job *native.MorselJob) error {
	if job.N <= 0 {
		return nil
	}
	slots := job.Slots
	if slots < 1 {
		slots = 1
	}
	weight := job.Weight
	if weight < 1 {
		weight = 1
	}
	pj := &poolJob{j: job, free: make([]int, slots), credit: weight, done: make(chan struct{})}
	for i := range pj.free {
		pj.free[i] = i
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	p.jobs = append(p.jobs, pj)
	p.mu.Unlock()
	p.cond.Broadcast()
	<-pj.done
	return pj.err
}

// worker claims (job, slot, morsel) triples until the pool closes.
func (p *Pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		pj, slot, morsel := p.pickLocked()
		if pj == nil {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			continue
		}
		p.mu.Unlock()

		err := pj.j.Run(slot, morsel)
		p.morsels.Add(1)

		p.mu.Lock()
		pj.running--
		pj.free = append(pj.free, slot)
		if err != nil && pj.err == nil {
			pj.err = err
		}
		if pj.err != nil {
			pj.next = pj.j.N // stop issuing the rest
		}
		if pj.next >= pj.j.N && pj.running == 0 {
			p.removeLocked(pj)
			close(pj.done)
		}
		// A freed slot or a finished job may unblock siblings.
		p.cond.Broadcast()
	}
}

// pickLocked chooses the next claim by weighted round-robin: scan the
// job ring from the cursor for an eligible job with credit left; if
// every eligible job is out of credit, refill all credits (a new epoch)
// and take the first eligible. Eligible means morsels remain, a slot is
// free, and no error has stopped the job.
func (p *Pool) pickLocked() (*poolJob, int, int) {
	n := len(p.jobs)
	var fallback *poolJob
	fallbackIdx := 0
	for k := 0; k < n; k++ {
		idx := (p.rr + k) % n
		pj := p.jobs[idx]
		if pj.next >= pj.j.N || len(pj.free) == 0 || pj.err != nil {
			continue
		}
		if pj.credit > 0 {
			return p.issueLocked(pj, idx)
		}
		if fallback == nil {
			fallback = pj
			fallbackIdx = idx
		}
	}
	if fallback == nil {
		return nil, 0, 0
	}
	for _, pj := range p.jobs {
		w := pj.j.Weight
		if w < 1 {
			w = 1
		}
		pj.credit = w
	}
	return p.issueLocked(fallback, fallbackIdx)
}

func (p *Pool) issueLocked(pj *poolJob, idx int) (*poolJob, int, int) {
	pj.credit--
	morsel := pj.next
	pj.next++
	slot := pj.free[len(pj.free)-1]
	pj.free = pj.free[:len(pj.free)-1]
	pj.running++
	p.rr = idx + 1
	return pj, slot, morsel
}

func (p *Pool) removeLocked(pj *poolJob) {
	for i, q := range p.jobs {
		if q == pj {
			p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
			return
		}
	}
}

// Close stops the workers. Jobs with unissued morsels fail with
// ErrPoolClosed (their in-flight morsels finish first); new Do calls
// fail immediately. Idempotent; blocks until every worker has exited.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	live := p.jobs[:0]
	for _, pj := range p.jobs {
		if pj.err == nil {
			pj.err = ErrPoolClosed
		}
		pj.next = pj.j.N
		if pj.running == 0 {
			close(pj.done)
		} else {
			live = append(live, pj)
		}
	}
	p.jobs = live
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
