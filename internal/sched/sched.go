// Package sched makes one resident Env safe and fair for N concurrent
// pipeline runs. It has two halves:
//
//   - An admission Controller that arbitrates the shared arena: each
//     query declares its planned scratch footprint, and the controller
//     either admits it immediately (carving a private window from the
//     arena — see arena.Carve), queues it FIFO behind earlier arrivals,
//     or sheds it with a typed *AdmissionError when the footprint can
//     never fit, the bounded queue is full, or the wait exceeds its
//     deadline. "Design Trade-offs for a Robust Dynamic Hybrid Hash
//     Join" motivates the hazard: the memory a join can use shrinks
//     under concurrent load, so the budget must be arbitrated up front,
//     not discovered mid-join as an OOM.
//
//   - A shared morsel Pool that replaces per-query worker goroutines: a
//     fixed set of workers interleaves partition-pair claims across all
//     admitted queries by weighted round-robin, so a query joining a
//     thousand pairs cannot starve a neighbor joining four.
//
// Window reclamation is quiescent: a bump allocator cannot free carved
// windows out of order, so released windows are "burned" until the
// moment no query is in flight, when the controller truncates the arena
// back to the pre-carve watermark. Admission therefore self-limits: a
// query that cannot carve a window waits for quiescence rather than
// OOMing a neighbor.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hashjoin/internal/arena"
)

// ErrAdmission is the sentinel every *AdmissionError unwraps to, so
// callers can classify admission rejections with errors.Is without
// naming the struct.
var ErrAdmission = errors.New("sched: admission rejected")

// Reason says why an admission was rejected.
type Reason int

const (
	// TooLarge: the planned footprint exceeds what the arena could ever
	// grant, even with no neighbors. Waiting would not help.
	TooLarge Reason = iota + 1
	// QueueFull: the bounded admission queue is at capacity.
	QueueFull
	// Timeout: the query's context expired, or the controller's queue
	// timeout elapsed, while waiting for admission.
	Timeout
	// Draining: the controller is shutting down and admits nothing new.
	Draining
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case TooLarge:
		return "too-large"
	case QueueFull:
		return "queue-full"
	case Timeout:
		return "timeout"
	case Draining:
		return "draining"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// AdmissionError reports a query the controller declined to run. It
// unwraps to ErrAdmission and, when a cause is attached (Timeout), to
// the cause — so a queue-timeout rejection matches both ErrAdmission
// and context.DeadlineExceeded, and the exit-code taxonomy classifies
// it as cancellation.
type AdmissionError struct {
	Tenant  string
	Reason  Reason
	Planned uint64        // declared scratch footprint, bytes
	Limit   uint64        // TooLarge: the largest grantable footprint
	Waited  time.Duration // time spent queued before rejection
	Cause   error         // Timeout: the context/deadline error
}

func (e *AdmissionError) Error() string {
	s := fmt.Sprintf("sched: admission rejected (%s): tenant %q, planned %d bytes", e.Reason, e.Tenant, e.Planned)
	switch e.Reason {
	case TooLarge:
		s += fmt.Sprintf(", grantable %d", e.Limit)
	case Timeout:
		s += fmt.Sprintf(", waited %v", e.Waited.Round(time.Millisecond))
	}
	return s
}

// Unwrap lets errors.Is see both the admission sentinel and the cause.
func (e *AdmissionError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrAdmission, e.Cause}
	}
	return []error{ErrAdmission}
}

// Config tunes a Controller.
type Config struct {
	// Arena is the shared address space admission arbitrates. Required.
	Arena *arena.Arena

	// MaxConcurrent bounds the queries in flight at once; further
	// admissible queries queue. 0 selects 8.
	MaxConcurrent int

	// QueueDepth bounds how many queries may wait for admission; one
	// more is shed with QueueFull. 0 selects 64.
	QueueDepth int

	// QueueTimeout bounds how long a query waits for admission before
	// being shed with Timeout; a query's own context deadline applies
	// regardless. 0 means no controller-side bound.
	QueueTimeout time.Duration

	// Workers sizes the shared morsel pool. 0 selects GOMAXPROCS.
	Workers int
}

func (c Config) maxConcurrent() int {
	if c.MaxConcurrent > 0 {
		return c.MaxConcurrent
	}
	return 8
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

// Counters are the controller's aggregate service counters. Totals are
// cumulative since construction; InFlight, Queued, and ReservedBytes
// are instantaneous.
type Counters struct {
	Admitted  uint64 // grants issued
	Waited    uint64 // grants or rejections that spent time in the queue
	Completed uint64 // grants released without error
	Failed    uint64 // grants released with an error

	ShedTooLarge  uint64
	ShedQueueFull uint64
	ShedTimeout   uint64
	ShedDraining  uint64

	QueueWaitTotal  time.Duration // summed queue wait of all admissions
	MorselsExecuted uint64        // morsels run by the shared pool
	Reclaims        uint64        // quiescent window reclamations

	// Pressure counts the events where a queued head waiter could not
	// carve a window and the controller shrank the advisory budgets of
	// in-flight grants; PressureShrunkBytes sums the bytes shaved off.
	Pressure            uint64
	PressureShrunkBytes uint64

	InFlight      int
	Queued        int
	ReservedBytes uint64 // bytes in outstanding carved windows
}

// Shed sums the rejections across reasons.
func (c Counters) Shed() uint64 {
	return c.ShedTooLarge + c.ShedQueueFull + c.ShedTimeout + c.ShedDraining
}

// Request describes a query asking to run.
type Request struct {
	Tenant string
	// Weight biases the shared pool's round-robin toward this query's
	// morsels; 0 means 1.
	Weight int
	// Planned is the scratch footprint to reserve, in bytes; the grant
	// carves a window of this size. Ignored for Exclusive requests,
	// which run directly on the shared arena.
	Planned uint64
	// Exclusive requests the whole Env: the grant is issued only when
	// nothing else is in flight, and blocks every later admission until
	// released. Simulator-backed queries need it (the cycle simulator
	// is single-threaded), as do durable loads (appending relations
	// that must survive window reclamation).
	Exclusive bool
}

// minPlanned floors tiny declared footprints so a window always has
// room for batch scratch mis-estimated at the margin.
const minPlanned = 256 << 10

// waitResult is what a queued waiter eventually receives.
type waitResult struct {
	g   *Grant
	err *AdmissionError
}

type waiter struct {
	req   Request
	ready chan waitResult // buffered(1): grant delivery never blocks the releaser
}

// Controller is the admission arbiter. Create with NewController; one
// per Env.
type Controller struct {
	cfg  Config
	pool *Pool

	mu    sync.Mutex
	cond  *sync.Cond // broadcast on release, for Close's drain
	queue []*waiter  // FIFO

	inflight  int
	exclusive bool
	draining  bool

	// Quiescent-reclaim bookkeeping: base is the arena watermark before
	// the first outstanding carve, tail the watermark after the latest.
	// At quiescence, if the arena still ends exactly at tail (no foreign
	// durable allocation landed above the windows), truncating to base
	// reclaims every burned window.
	outstanding int
	base, tail  uint64
	reserved    uint64

	// grants holds the live carved grants, so queue pressure can shrink
	// their advisory budgets (see pressureLocked).
	grants map[*Grant]struct{}

	// reclaimHook, when set, runs (on its own goroutine, without the
	// controller lock) after each successful quiescent reclamation. The
	// service layer uses it to trim caches sized against the arena's
	// headroom — e.g. evicting resident build sides — at exactly the
	// moments capacity turns over.
	reclaimHook func()

	c Counters
}

// NewController creates a controller over cfg.Arena and starts the
// shared morsel pool. Close releases the pool's workers.
func NewController(cfg Config) *Controller {
	if cfg.Arena == nil {
		panic("sched: Config.Arena is required")
	}
	c := &Controller{cfg: cfg, pool: NewPool(cfg.Workers), grants: make(map[*Grant]struct{})}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Pool returns the shared morsel pool, for wiring into engine configs.
func (c *Controller) Pool() *Pool { return c.pool }

// SetReclaimHook installs fn to run after each quiescent window
// reclamation (asynchronously, off the controller lock, so fn may call
// back into the controller). Pass nil to clear. Set it before serving
// traffic; the hook is read under the controller lock.
func (c *Controller) SetReclaimHook(fn func()) {
	c.mu.Lock()
	c.reclaimHook = fn
	c.mu.Unlock()
}

// grantable returns the largest footprint a request could ever carve:
// the arena's effective ceiling minus what is durably used at the best
// possible moment (quiescence, with every burned window reclaimed).
func (c *Controller) grantableLocked() uint64 {
	a := c.cfg.Arena
	ceiling := a.Cap()
	if b := a.Budget(); b != 0 && b < ceiling {
		ceiling = b
	}
	durable := a.Used()
	if c.outstanding > 0 {
		durable = c.base // windows above base are reclaimable
	}
	if ceiling <= durable {
		return 0
	}
	return ceiling - durable
}

// Admit asks to run req. It returns a Grant immediately when capacity
// allows, waits FIFO behind earlier arrivals otherwise, and returns a
// *AdmissionError when the request is shed (see Reason). The caller
// must Release the grant exactly once.
func (c *Controller) Admit(ctx context.Context, req Request) (*Grant, error) {
	if req.Weight < 1 {
		req.Weight = 1
	}
	if !req.Exclusive && req.Planned < minPlanned {
		req.Planned = minPlanned
	}
	start := time.Now()

	c.mu.Lock()
	if c.draining {
		c.c.ShedDraining++
		c.mu.Unlock()
		return nil, &AdmissionError{Tenant: req.Tenant, Reason: Draining, Planned: req.Planned}
	}
	if !req.Exclusive {
		if limit := c.grantableLocked(); req.Planned > limit {
			c.c.ShedTooLarge++
			c.mu.Unlock()
			return nil, &AdmissionError{Tenant: req.Tenant, Reason: TooLarge, Planned: req.Planned, Limit: limit}
		}
	}
	if len(c.queue) == 0 {
		if g := c.tryAdmitLocked(req); g != nil {
			c.mu.Unlock()
			return g, nil
		}
	}
	if len(c.queue) >= c.cfg.queueDepth() {
		c.c.ShedQueueFull++
		c.mu.Unlock()
		return nil, &AdmissionError{Tenant: req.Tenant, Reason: QueueFull, Planned: req.Planned}
	}
	w := &waiter{req: req, ready: make(chan waitResult, 1)}
	c.queue = append(c.queue, w)
	c.c.Waited++
	c.mu.Unlock()

	var timeout <-chan time.Time
	if c.cfg.QueueTimeout > 0 {
		t := time.NewTimer(c.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case r := <-w.ready:
		return c.delivered(r, start)
	case <-ctx.Done():
		return c.abandon(w, start, ctx.Err())
	case <-timeout:
		return c.abandon(w, start, context.DeadlineExceeded)
	}
}

// delivered finalizes a result handed to a waiter: stamps the queue
// wait on grants and rejections alike.
func (c *Controller) delivered(r waitResult, start time.Time) (*Grant, error) {
	wait := time.Since(start)
	if r.err != nil {
		r.err.Waited = wait
		return nil, r.err
	}
	r.g.wait = wait
	c.mu.Lock()
	c.c.QueueWaitTotal += wait
	c.mu.Unlock()
	return r.g, nil
}

// abandon removes a waiter whose context or queue timer expired. If the
// grant raced in first, it is quietly returned to the controller — the
// query never observed it, so it counts as a shed, not a completion.
func (c *Controller) abandon(w *waiter, start time.Time, cause error) (*Grant, error) {
	c.mu.Lock()
	removed := false
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			removed = true
			break
		}
	}
	c.mu.Unlock()
	if !removed {
		// Already dequeued: a result is in flight (buffered channel).
		r := <-w.ready
		if r.g != nil {
			// The grant raced the timeout; the query never saw it.
			r.g.undo()
		} else if r.err != nil {
			// A shed (draining) raced the timeout: report the shed that
			// actually happened, stamped with the wait.
			r.err.Waited = time.Since(start)
			return nil, r.err
		}
	}
	c.mu.Lock()
	c.c.ShedTimeout++
	c.mu.Unlock()
	return nil, &AdmissionError{
		Tenant: w.req.Tenant, Reason: Timeout, Planned: w.req.Planned,
		Waited: time.Since(start), Cause: cause,
	}
}

// tryAdmitLocked issues a grant if capacity allows right now, else nil.
func (c *Controller) tryAdmitLocked(req Request) *Grant {
	if req.Exclusive {
		if c.inflight > 0 {
			return nil
		}
		c.reclaimLocked() // exclusive runs see a clean arena tail
		c.inflight++
		c.exclusive = true
		c.c.Admitted++
		c.c.InFlight = c.inflight
		return &Grant{c: c, a: c.cfg.Arena, req: req}
	}
	if c.exclusive || c.inflight >= c.cfg.maxConcurrent() {
		return nil
	}
	if c.outstanding == 0 {
		c.reclaimLocked() // burned windows from the last wave
	}
	preCarve := c.cfg.Arena.Used()
	child, err := c.cfg.Arena.Carve(req.Planned, 64)
	if err != nil {
		// No room while neighbors hold windows: wait for quiescence.
		// (A footprint that can never fit was already shed TooLarge.)
		return nil
	}
	if c.outstanding == 0 {
		c.base = preCarve
	}
	c.outstanding++
	c.tail = c.cfg.Arena.Used()
	c.reserved += req.Planned
	c.inflight++
	c.c.Admitted++
	c.c.InFlight = c.inflight
	c.c.ReservedBytes = c.reserved
	g := &Grant{c: c, a: child, req: req, carved: true}
	g.advisory.Store(int64(req.Planned))
	c.grants[g] = struct{}{}
	return g
}

// minAdvisory floors pressure shrinks: a grant's advisory budget never
// drops below this, so a squeezed query still has room for one spill
// chunk and keeps making progress instead of thrashing.
const minAdvisory = 64 << 10

// pressureLocked is the mid-join memory-pressure signal: when a queued
// head waiter cannot carve a window, the controller halves the advisory
// budget of every in-flight carved grant. Hybrid joins sample the
// advisory at each partition-pair claim (native Config.BudgetNow) and
// demote planned-resident pairs to disk, shrinking their scratch
// high-water mark so the next quiescent reclamation frees room sooner.
// The carved windows themselves are immutable — a bump allocator cannot
// give memory back mid-flight — which is why the signal is advisory.
func (c *Controller) pressureLocked() {
	shrunk := uint64(0)
	for g := range c.grants {
		next := g.advisory.Load() / 2
		if next < minAdvisory {
			next = minAdvisory
		}
		shrunk += g.shrinkTo(next)
	}
	if shrunk > 0 {
		c.c.Pressure++
		c.c.PressureShrunkBytes += shrunk
	}
}

// reclaimLocked truncates burned carve windows back to the pre-carve
// watermark, if nothing foreign was allocated above them. Call only
// with no carves outstanding.
func (c *Controller) reclaimLocked() {
	if c.tail == 0 || c.outstanding > 0 {
		return
	}
	if c.cfg.Arena.Used() == c.tail {
		c.cfg.Arena.Truncate(c.base)
		c.c.Reclaims++
		if c.reclaimHook != nil {
			go c.reclaimHook()
		}
	}
	// Either reclaimed, or foreign durable data pinned the windows (the
	// caller allocated on the shared arena mid-flight); in both cases
	// the bookkeeping starts fresh at the next carve.
	c.tail, c.base = 0, 0
}

// admitWaitersLocked grants queued requests FIFO while capacity lasts.
// Strict FIFO is the no-starvation guarantee: a large planned footprint
// at the head waits for space, and smaller later arrivals wait behind
// it rather than overtaking forever.
func (c *Controller) admitWaitersLocked() {
	for len(c.queue) > 0 {
		w := c.queue[0]
		g := c.tryAdmitLocked(w.req)
		if g == nil {
			// The head waiter still cannot be seated: squeeze the queries
			// holding windows so their scratch drains sooner.
			if !w.req.Exclusive {
				c.pressureLocked()
			}
			return
		}
		c.queue = c.queue[1:]
		w.ready <- waitResult{g: g}
	}
}

// release returns a grant's capacity. err is the query's outcome, for
// the Completed/Failed counters; the abandon path uses undo instead.
func (c *Controller) release(g *Grant, err error, abandoned bool) {
	c.mu.Lock()
	c.inflight--
	if g.req.Exclusive {
		c.exclusive = false
	}
	if g.carved {
		delete(c.grants, g)
		c.outstanding--
		c.reserved -= g.req.Planned
		if c.outstanding == 0 {
			c.reclaimLocked()
		}
	}
	switch {
	case abandoned:
		c.c.Admitted--
	case err != nil:
		c.c.Failed++
	default:
		c.c.Completed++
	}
	c.c.InFlight = c.inflight
	c.c.ReservedBytes = c.reserved
	c.admitWaitersLocked()
	c.c.Queued = len(c.queue)
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Stats snapshots the aggregate counters. Safe to call concurrently
// with admissions and releases.
func (c *Controller) Stats() Counters {
	c.mu.Lock()
	s := c.c
	s.InFlight = c.inflight
	s.Queued = len(c.queue)
	s.ReservedBytes = c.reserved
	c.mu.Unlock()
	s.MorselsExecuted = c.pool.Morsels()
	return s
}

// Close drains the controller: queued waiters are shed with Draining,
// new admissions are rejected, in-flight grants run to completion, and
// the shared pool's workers exit. Idempotent.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.draining {
		for c.inflight > 0 {
			c.cond.Wait()
		}
		c.mu.Unlock()
		return
	}
	c.draining = true
	for _, w := range c.queue {
		c.c.ShedDraining++
		w.ready <- waitResult{err: &AdmissionError{Tenant: w.req.Tenant, Reason: Draining, Planned: w.req.Planned}}
	}
	c.queue = nil
	for c.inflight > 0 {
		c.cond.Wait()
	}
	c.reclaimLocked()
	c.mu.Unlock()
	c.pool.Close()
}

// Grant is an admitted query's capacity: a private scratch arena and a
// seat among MaxConcurrent. Release it exactly once, with the query's
// outcome.
type Grant struct {
	c      *Controller
	a      *arena.Arena
	req    Request
	carved bool
	wait   time.Duration

	// advisory is the grant's current advisory scratch budget in bytes:
	// Planned at admission, shrunk (never grown) by controller pressure
	// or Shrink. 0 for exclusive grants — no signal.
	advisory atomic.Int64

	mu       sync.Mutex
	released bool
}

// Arena returns the grant's scratch arena: a carved private window, or
// the shared arena itself for an exclusive grant.
func (g *Grant) Arena() *arena.Arena { return g.a }

// QueueWait returns how long the query waited for admission.
func (g *Grant) QueueWait() time.Duration { return g.wait }

// Planned returns the admitted scratch budget in bytes (the carved
// window size); 0 for exclusive grants.
func (g *Grant) Planned() uint64 {
	if !g.carved {
		return 0
	}
	return g.req.Planned
}

// BudgetNow returns the grant's current advisory scratch budget in
// bytes: Planned at admission, lowered when the controller applies
// queue pressure or the holder calls Shrink. Hybrid joins sample it at
// each partition-pair claim (native Config.BudgetNow) and demote pairs
// the shrunken budget no longer covers. 0 (exclusive grants) means no
// signal. Safe to call concurrently with pressure.
func (g *Grant) BudgetNow() int { return int(g.advisory.Load()) }

// Shrink lowers the grant's advisory budget to n bytes (floored at the
// controller's minimum); raising it is a no-op, so the signal is
// monotonic and a join never sees the budget grow back mid-flight. It
// returns the bytes actually shaved off.
func (g *Grant) Shrink(n int) uint64 {
	if !g.carved {
		return 0
	}
	to := int64(n)
	if to < minAdvisory {
		to = minAdvisory
	}
	return g.shrinkTo(to)
}

// shrinkTo lowers advisory to at most target, returning the bytes
// removed. CAS keeps concurrent shrinks monotonic-down.
func (g *Grant) shrinkTo(target int64) uint64 {
	for {
		cur := g.advisory.Load()
		if cur <= target {
			return 0
		}
		if g.advisory.CompareAndSwap(cur, target) {
			return uint64(cur - target)
		}
	}
}

// Release returns the grant's capacity and records the query's outcome.
// The grant's arena must not be used afterwards: its window is subject
// to reclamation. Releasing twice is a no-op.
func (g *Grant) Release(err error) {
	g.mu.Lock()
	done := g.released
	g.released = true
	g.mu.Unlock()
	if done {
		return
	}
	g.c.release(g, err, false)
}

// undo is Release for a grant its query never saw (admission raced a
// timeout): capacity returns, no completion is counted.
func (g *Grant) undo() {
	g.mu.Lock()
	done := g.released
	g.released = true
	g.mu.Unlock()
	if done {
		return
	}
	g.c.release(g, nil, true)
}
