package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hashjoin/internal/arena"
)

func newTestController(t *testing.T, arenaBytes uint64, cfg Config) (*Controller, *arena.Arena) {
	t.Helper()
	a := arena.New(arenaBytes)
	cfg.Arena = a
	c := NewController(cfg)
	t.Cleanup(c.Close)
	return c, a
}

func TestAdmitFastPath(t *testing.T) {
	c, a := newTestController(t, 8<<20, Config{MaxConcurrent: 2})

	g, err := c.Admit(context.Background(), Request{Tenant: "t1", Planned: 1 << 20})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if g.Arena() == a {
		t.Fatal("non-exclusive grant got the shared arena")
	}
	if got := g.Arena().Cap(); got != 1<<20 {
		t.Fatalf("window cap = %d, want %d", got, 1<<20)
	}
	if got := g.Planned(); got != 1<<20 {
		t.Fatalf("Planned() = %d, want %d", got, 1<<20)
	}
	// The window is writable and window-relative.
	if _, err := g.Arena().TryAlloc(512, 8); err != nil {
		t.Fatalf("alloc in window: %v", err)
	}
	g.Release(nil)

	s := c.Stats()
	if s.Admitted != 1 || s.Completed != 1 || s.InFlight != 0 {
		t.Fatalf("counters = %+v", s)
	}
}

func TestAdmitFloorsTinyPlans(t *testing.T) {
	c, _ := newTestController(t, 8<<20, Config{})
	g, err := c.Admit(context.Background(), Request{Tenant: "t", Planned: 1})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	defer g.Release(nil)
	if got := g.Arena().Cap(); got != minPlanned {
		t.Fatalf("window cap = %d, want floor %d", got, minPlanned)
	}
}

func TestShedTooLarge(t *testing.T) {
	c, a := newTestController(t, 4<<20, Config{})
	a.SetBudget(2 << 20)

	_, err := c.Admit(context.Background(), Request{Tenant: "big", Planned: 3 << 20})
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *AdmissionError", err)
	}
	if ae.Reason != TooLarge {
		t.Fatalf("reason = %v, want TooLarge", ae.Reason)
	}
	if !errors.Is(err, ErrAdmission) {
		t.Fatal("does not unwrap to ErrAdmission")
	}
	if ae.Limit == 0 || ae.Limit > 2<<20 {
		t.Fatalf("limit = %d, want (0, %d]", ae.Limit, 2<<20)
	}
	if got := c.Stats().ShedTooLarge; got != 1 {
		t.Fatalf("ShedTooLarge = %d", got)
	}
}

func TestQueueFIFOAndQueueFull(t *testing.T) {
	c, _ := newTestController(t, 32<<20, Config{MaxConcurrent: 1, QueueDepth: 2})

	g0, err := c.Admit(context.Background(), Request{Tenant: "hold", Planned: 1 << 20})
	if err != nil {
		t.Fatalf("Admit hold: %v", err)
	}

	// Two waiters fill the queue.
	type res struct {
		id  int
		g   *Grant
		err error
	}
	resc := make(chan res, 2)
	admitted := make(chan int, 2)
	for i := 1; i <= 2; i++ {
		i := i
		go func() {
			g, err := c.Admit(context.Background(), Request{Tenant: fmt.Sprintf("w%d", i), Planned: 1 << 20})
			admitted <- i
			resc <- res{i, g, err}
		}()
		// Deterministic arrival order for the FIFO check.
		waitFor(t, func() bool { return c.Stats().Queued == i })
	}

	// Third waiter sheds QueueFull.
	_, err = c.Admit(context.Background(), Request{Tenant: "w3", Planned: 1 << 20})
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != QueueFull {
		t.Fatalf("err = %v, want QueueFull", err)
	}

	// Release the holder: waiter 1 must be admitted before waiter 2.
	g0.Release(nil)
	if first := <-admitted; first != 1 {
		t.Fatalf("admitted %d first, want FIFO order 1", first)
	}
	r := <-resc
	if r.err != nil {
		t.Fatalf("waiter %d: %v", r.id, r.err)
	}
	if r.g.QueueWait() <= 0 {
		t.Fatal("queued grant reports zero wait")
	}
	r.g.Release(nil)
	r2 := <-resc
	if r2.err != nil {
		t.Fatalf("waiter %d: %v", r2.id, r2.err)
	}
	r2.g.Release(nil)

	s := c.Stats()
	if s.Waited != 2 || s.QueueWaitTotal <= 0 {
		t.Fatalf("wait counters = %+v", s)
	}
}

func TestQueueTimeoutAndContextCancel(t *testing.T) {
	c, _ := newTestController(t, 32<<20, Config{MaxConcurrent: 1, QueueTimeout: 30 * time.Millisecond})

	g0, err := c.Admit(context.Background(), Request{Tenant: "hold", Planned: 1 << 20})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	defer g0.Release(nil)

	// Controller-side queue timeout.
	_, err = c.Admit(context.Background(), Request{Tenant: "slow", Planned: 1 << 20})
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != Timeout {
		t.Fatalf("err = %v, want Timeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("queue timeout does not unwrap to DeadlineExceeded")
	}
	if ae.Waited <= 0 {
		t.Fatal("timeout error reports zero wait")
	}

	// Caller-side context cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, Request{Tenant: "cancelled", Planned: 1 << 20})
		done <- err
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 1 })
	cancel()
	err = <-done
	if !errors.As(err, &ae) || ae.Reason != Timeout || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Timeout wrapping context.Canceled", err)
	}
	if got := c.Stats().ShedTimeout; got != 2 {
		t.Fatalf("ShedTimeout = %d, want 2", got)
	}
}

func TestQuiescentReclaim(t *testing.T) {
	c, a := newTestController(t, 8<<20, Config{MaxConcurrent: 4})
	before := a.Used()

	var grants []*Grant
	for i := 0; i < 3; i++ {
		g, err := c.Admit(context.Background(), Request{Tenant: "t", Planned: 1 << 20})
		if err != nil {
			t.Fatalf("Admit %d: %v", i, err)
		}
		grants = append(grants, g)
	}
	if a.Used() <= before {
		t.Fatal("carves did not consume the arena")
	}
	// Release all but one: windows burn, no reclaim yet.
	grants[0].Release(nil)
	grants[1].Release(nil)
	if a.Used() <= before {
		t.Fatal("premature reclaim while a grant is outstanding")
	}
	grants[2].Release(nil)
	if got := a.Used(); got != before {
		t.Fatalf("after quiescence Used = %d, want %d", got, before)
	}
	if got := c.Stats().Reclaims; got == 0 {
		t.Fatal("no reclaim counted")
	}
}

func TestReclaimSkippedWhenForeignAllocationAboveWindows(t *testing.T) {
	c, a := newTestController(t, 8<<20, Config{})
	g, err := c.Admit(context.Background(), Request{Tenant: "t", Planned: 1 << 20})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	// A durable allocation lands on the shared arena above the window
	// (e.g. the caller loaded a relation mid-service).
	addr, err := a.TryAlloc(4096, 8)
	if err != nil {
		t.Fatalf("TryAlloc: %v", err)
	}
	mark := a.Used()
	g.Release(nil)
	// The window must be leaked, not truncated out from under addr.
	if got := a.Used(); got != mark {
		t.Fatalf("Used = %d, want %d (no truncation past a durable allocation)", got, mark)
	}
	_ = addr
	// The next quiescent wave resumes reclaiming.
	g2, err := c.Admit(context.Background(), Request{Tenant: "t", Planned: 1 << 20})
	if err != nil {
		t.Fatalf("Admit 2: %v", err)
	}
	after := a.Used()
	if after <= mark {
		t.Fatal("second carve did not extend the arena")
	}
	g2.Release(nil)
	if got := a.Used(); got != mark {
		t.Fatalf("second wave: Used = %d, want %d", got, mark)
	}
}

func TestExclusiveGrant(t *testing.T) {
	c, a := newTestController(t, 8<<20, Config{MaxConcurrent: 4})

	g, err := c.Admit(context.Background(), Request{Tenant: "n", Planned: 1 << 20})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}

	// Exclusive waits for the in-flight query.
	done := make(chan *Grant, 1)
	go func() {
		ge, err := c.Admit(context.Background(), Request{Tenant: "x", Exclusive: true})
		if err != nil {
			t.Errorf("Admit exclusive: %v", err)
			done <- nil
			return
		}
		done <- ge
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 1 })
	g.Release(nil)
	ge := <-done
	if ge == nil {
		t.FailNow()
	}
	if ge.Arena() != a {
		t.Fatal("exclusive grant did not get the shared arena")
	}
	if ge.Planned() != 0 {
		t.Fatalf("exclusive Planned() = %d, want 0", ge.Planned())
	}

	// While exclusive holds, nothing else is admitted.
	done2 := make(chan error, 1)
	go func() {
		g2, err := c.Admit(context.Background(), Request{Tenant: "n2", Planned: 1 << 20})
		if err == nil {
			g2.Release(nil)
		}
		done2 <- err
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 1 })
	ge.Release(nil)
	if err := <-done2; err != nil {
		t.Fatalf("post-exclusive admit: %v", err)
	}
}

func TestCloseShedsQueueAndDrains(t *testing.T) {
	c, _ := newTestController(t, 8<<20, Config{MaxConcurrent: 1})
	g, err := c.Admit(context.Background(), Request{Tenant: "hold", Planned: 1 << 20})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}

	queuedErr := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), Request{Tenant: "q", Planned: 1 << 20})
		queuedErr <- err
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 1 })

	closed := make(chan struct{})
	go func() {
		c.Close()
		close(closed)
	}()

	err = <-queuedErr
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != Draining {
		t.Fatalf("queued waiter err = %v, want Draining", err)
	}
	select {
	case <-closed:
		t.Fatal("Close returned while a grant was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	g.Release(nil)
	<-closed

	_, err = c.Admit(context.Background(), Request{Tenant: "late", Planned: 1 << 20})
	if !errors.As(err, &ae) || ae.Reason != Draining {
		t.Fatalf("post-Close admit err = %v, want Draining", err)
	}
}

func TestConcurrentAdmitReleaseRace(t *testing.T) {
	c, _ := newTestController(t, 16<<20, Config{MaxConcurrent: 4, QueueDepth: 64})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := c.Admit(context.Background(), Request{Tenant: fmt.Sprintf("t%d", i%5), Planned: 1 << 20})
			if err != nil {
				t.Errorf("Admit: %v", err)
				return
			}
			if _, err := g.Arena().TryAlloc(1024, 8); err != nil {
				t.Errorf("alloc: %v", err)
			}
			g.Release(nil)
		}(i)
	}
	wg.Wait()
	s := c.Stats()
	if s.Admitted != 32 || s.Completed != 32 || s.InFlight != 0 || s.ReservedBytes != 0 {
		t.Fatalf("counters = %+v", s)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPressureShrinksAdvisoryBudgets(t *testing.T) {
	c, _ := newTestController(t, 8<<20, Config{MaxConcurrent: 4})

	g1, err := c.Admit(context.Background(), Request{Tenant: "a", Planned: 3 << 20})
	if err != nil {
		t.Fatalf("Admit a: %v", err)
	}
	g2, err := c.Admit(context.Background(), Request{Tenant: "b", Planned: 3 << 20})
	if err != nil {
		t.Fatalf("Admit b: %v", err)
	}
	if got := g2.BudgetNow(); got != 3<<20 {
		t.Fatalf("fresh grant BudgetNow = %d, want Planned %d", got, 3<<20)
	}

	// A third query passes the TooLarge gate (its footprint fits a quiet
	// arena) but cannot carve while a and b hold windows: it queues.
	done := make(chan *Grant, 1)
	go func() {
		g, err := c.Admit(context.Background(), Request{Tenant: "c", Planned: 4 << 20})
		if err != nil {
			t.Errorf("Admit c: %v", err)
		}
		done <- g
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 1 })

	// Releasing a seats nobody (b's window still pins the arena); the
	// blocked head waiter is the pressure signal that halves b's advisory.
	g1.Release(nil)
	if got := g2.BudgetNow(); got != 3<<19 {
		t.Fatalf("BudgetNow after pressure = %d, want halved %d", got, 3<<19)
	}
	s := c.Stats()
	if s.Pressure != 1 || s.PressureShrunkBytes != 3<<19 {
		t.Fatalf("pressure counters = %d events, %d bytes; want 1, %d", s.Pressure, s.PressureShrunkBytes, 3<<19)
	}

	// Holder-side Shrink is monotonic down, floored, and never grows.
	if shaved := g2.Shrink(1 << 20); shaved != 3<<19-1<<20 {
		t.Fatalf("Shrink shaved %d, want %d", shaved, 3<<19-1<<20)
	}
	if shaved := g2.Shrink(2 << 20); shaved != 0 {
		t.Fatal("Shrink grew the advisory budget")
	}
	if g2.Shrink(1); g2.BudgetNow() != minAdvisory {
		t.Fatalf("BudgetNow = %d, want floor %d", g2.BudgetNow(), minAdvisory)
	}

	// Quiescence reclaims the windows and seats c with a full advisory.
	g2.Release(nil)
	g3 := <-done
	if g3 == nil {
		t.Fatal("waiter c not admitted")
	}
	if got := g3.BudgetNow(); got != 4<<20 {
		t.Fatalf("late grant BudgetNow = %d, want Planned %d", got, 4<<20)
	}
	g3.Release(nil)
}

func TestExclusiveGrantHasNoAdvisorySignal(t *testing.T) {
	c, _ := newTestController(t, 8<<20, Config{})
	g, err := c.Admit(context.Background(), Request{Tenant: "x", Exclusive: true})
	if err != nil {
		t.Fatalf("Admit exclusive: %v", err)
	}
	defer g.Release(nil)
	if got := g.BudgetNow(); got != 0 {
		t.Fatalf("exclusive BudgetNow = %d, want 0 (no signal)", got)
	}
	if shaved := g.Shrink(1); shaved != 0 {
		t.Fatal("Shrink on an exclusive grant shaved bytes")
	}
}
