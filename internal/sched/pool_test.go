package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hashjoin/internal/native"
)

func TestPoolRunsEveryMorselOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	const n = 200
	var counts [n]atomic.Int32
	err := p.Do(&native.MorselJob{
		N: n, Slots: 4,
		Run: func(slot, m int) error {
			counts[m].Add(1)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("morsel %d ran %d times", i, got)
		}
	}
	if got := p.Morsels(); got != n {
		t.Fatalf("Morsels() = %d, want %d", got, n)
	}
}

func TestPoolSlotNeverConcurrentWithItself(t *testing.T) {
	p := NewPool(8)
	defer p.Close()

	const slots = 3
	var busy [slots]atomic.Bool
	err := p.Do(&native.MorselJob{
		N: 300, Slots: slots,
		Run: func(slot, m int) error {
			if !busy[slot].CompareAndSwap(false, true) {
				t.Errorf("slot %d entered concurrently", slot)
			}
			time.Sleep(100 * time.Microsecond)
			busy[slot].Store(false)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
}

func TestPoolStopsIssuingAfterError(t *testing.T) {
	p := NewPool(2)
	defer p.Close()

	boom := errors.New("boom")
	var ran atomic.Int32
	err := p.Do(&native.MorselJob{
		N: 1000, Slots: 2,
		Run: func(slot, m int) error {
			ran.Add(1)
			if m == 3 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Do err = %v, want boom", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("error did not stop issue: %d morsels ran", got)
	}
}

// TestPoolInterleavesJobs proves fairness: with one worker and two
// concurrent jobs whose morsels block until observed, claims alternate
// between the jobs rather than draining the first job first.
func TestPoolInterleavesJobs(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	var mu sync.Mutex
	var order []int
	job := func(id int) *native.MorselJob {
		return &native.MorselJob{
			N: 10, Slots: 1,
			Run: func(slot, m int) error {
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
				return nil
			},
		}
	}
	// Register both jobs before the single worker can drain either: hold
	// it busy with a gate job first.
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		p.Do(&native.MorselJob{N: 1, Slots: 1, Run: func(int, int) error {
			<-gate
			return nil
		}})
	}()
	time.Sleep(20 * time.Millisecond) // worker parked in the gate job
	go func() { defer wg.Done(); p.Do(job(1)) }()
	go func() { defer wg.Done(); p.Do(job(2)) }()
	time.Sleep(20 * time.Millisecond) // both jobs registered
	close(gate)
	wg.Wait()

	// With weight 1 each, a strict alternation is expected; accept any
	// interleaving that switches jobs at least 8 times out of 19.
	switches := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			switches++
		}
	}
	if len(order) != 20 {
		t.Fatalf("ran %d morsels, want 20", len(order))
	}
	if switches < 8 {
		t.Fatalf("jobs did not interleave: order %v", order)
	}
}

func TestPoolWeightBiasesClaims(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	var mu sync.Mutex
	var order []int
	mk := func(id, weight int) *native.MorselJob {
		return &native.MorselJob{
			N: 12, Slots: 1, Weight: weight,
			Run: func(slot, m int) error {
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
				return nil
			},
		}
	}
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		p.Do(&native.MorselJob{N: 1, Slots: 1, Run: func(int, int) error {
			<-gate
			return nil
		}})
	}()
	time.Sleep(20 * time.Millisecond)
	go func() { defer wg.Done(); p.Do(mk(1, 3)) }()
	go func() { defer wg.Done(); p.Do(mk(2, 1)) }()
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	// In the window where both jobs are live, job 1 (weight 3) should
	// have claimed roughly 3x as often. Check the first 12 claims.
	c1 := 0
	for _, id := range order[:12] {
		if id == 1 {
			c1++
		}
	}
	if c1 < 7 {
		t.Fatalf("weight-3 job claimed only %d of first 12: %v", c1, order)
	}
}

func TestPoolCloseShedsPendingJobs(t *testing.T) {
	p := NewPool(1)

	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(&native.MorselJob{N: 1, Slots: 1, Run: func(int, int) error {
			close(started)
			<-gate
			return nil
		}})
	}()
	<-started

	// This job can never start: the only worker is parked in the gate.
	errc := make(chan error, 1)
	go func() {
		errc <- p.Do(&native.MorselJob{N: 5, Slots: 1, Run: func(int, int) error { return nil }})
	}()
	time.Sleep(10 * time.Millisecond)
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(gate) // let the in-flight morsel finish so Close can join
	}()
	p.Close()
	if err := <-errc; !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("pending job err = %v, want ErrPoolClosed", err)
	}
	wg.Wait()

	if err := p.Do(&native.MorselJob{N: 1, Slots: 1, Run: func(int, int) error { return nil }}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Do after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolEmptyJob(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	if err := p.Do(&native.MorselJob{N: 0, Slots: 4, Run: func(int, int) error {
		t.Error("morsel ran for N=0")
		return nil
	}}); err != nil {
		t.Fatalf("Do: %v", err)
	}
}
