package storage

import (
	"encoding/binary"
	"fmt"
)

// Tuple encoding. Fixed-width columns are laid out at their schema
// offsets; variable-length columns follow the fixed section, each
// prefixed with a 2-byte length. The slotted page stores the encoded
// bytes opaquely (slots carry the total length), so variable-length
// tuples need no page-format changes.

// Value is one column value for encoding: exactly one of U32, U64, or
// Bytes is used, per the column's type.
type Value struct {
	U32   uint32
	U64   uint64
	Bytes []byte
}

// Encode serializes one tuple according to the schema. It returns an
// error when the value count or a fixed width does not match.
func (s *Schema) Encode(values []Value) ([]byte, error) {
	if len(values) != len(s.Cols) {
		return nil, fmt.Errorf("storage: %d values for %d columns", len(values), len(s.Cols))
	}
	size := s.fixedWidth
	for i, c := range s.Cols {
		if c.Type == TypeVarBytes {
			size += 2 + len(values[i].Bytes)
		}
	}
	out := make([]byte, size)
	varOff := s.fixedWidth
	for i, c := range s.Cols {
		v := values[i]
		switch c.Type {
		case TypeUint32:
			binary.LittleEndian.PutUint32(out[s.offsets[i]:], v.U32)
		case TypeUint64:
			binary.LittleEndian.PutUint64(out[s.offsets[i]:], v.U64)
		case TypeFixedBytes:
			if len(v.Bytes) > c.Size {
				return nil, fmt.Errorf("storage: column %q value %d bytes exceeds fixed size %d", c.Name, len(v.Bytes), c.Size)
			}
			copy(out[s.offsets[i]:s.offsets[i]+c.Size], v.Bytes)
		case TypeVarBytes:
			if len(v.Bytes) > 0xFFFF {
				return nil, fmt.Errorf("storage: column %q value too long", c.Name)
			}
			binary.LittleEndian.PutUint16(out[varOff:], uint16(len(v.Bytes)))
			copy(out[varOff+2:], v.Bytes)
			varOff += 2 + len(v.Bytes)
		}
	}
	return out, nil
}

// Decode deserializes a tuple into column values. Byte values alias the
// input.
func (s *Schema) Decode(tuple []byte) ([]Value, error) {
	if len(tuple) < s.fixedWidth {
		return nil, fmt.Errorf("storage: tuple %d bytes shorter than fixed section %d", len(tuple), s.fixedWidth)
	}
	out := make([]Value, len(s.Cols))
	varOff := s.fixedWidth
	for i, c := range s.Cols {
		switch c.Type {
		case TypeUint32:
			out[i].U32 = binary.LittleEndian.Uint32(tuple[s.offsets[i]:])
		case TypeUint64:
			out[i].U64 = binary.LittleEndian.Uint64(tuple[s.offsets[i]:])
		case TypeFixedBytes:
			out[i].Bytes = tuple[s.offsets[i] : s.offsets[i]+c.Size]
		case TypeVarBytes:
			if varOff+2 > len(tuple) {
				return nil, fmt.Errorf("storage: truncated var-length header in column %q", c.Name)
			}
			n := int(binary.LittleEndian.Uint16(tuple[varOff:]))
			if varOff+2+n > len(tuple) {
				return nil, fmt.Errorf("storage: truncated var-length value in column %q", c.Name)
			}
			out[i].Bytes = tuple[varOff+2 : varOff+2+n]
			varOff += 2 + n
		}
	}
	return out, nil
}
