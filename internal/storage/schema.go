// Package storage implements the disk-page substrate of the hash join
// engine: schemas with fixed- and variable-length attributes, slotted
// pages, relations as page sequences, and the intermediate-partition page
// format that memoizes hash codes in the slot area (paper section 7.1).
//
// Layout knowledge lives here; timing lives in package vmem. Untimed
// accessors (backed directly by the arena) serve workload generation and
// result validation; the measured algorithms in package core perform
// timed accesses against the same layouts via exported offset helpers.
package storage

import (
	"fmt"

	"hashjoin/internal/arena"
)

// ColType enumerates supported attribute types.
type ColType int

const (
	// TypeUint32 is a 4-byte unsigned integer (the join key type used
	// throughout the paper's evaluation).
	TypeUint32 ColType = iota
	// TypeUint64 is an 8-byte unsigned integer.
	TypeUint64
	// TypeFixedBytes is a fixed-length byte string; Column.Size gives the
	// length.
	TypeFixedBytes
	// TypeVarBytes is a variable-length byte string stored after the
	// fixed-length section, prefixed with a 2-byte length.
	TypeVarBytes
)

// Column describes one attribute.
type Column struct {
	Name string
	Type ColType
	Size int // bytes; used by TypeFixedBytes, ignored otherwise
}

// width returns the fixed width of the column, or -1 for var-length.
func (c Column) width() int {
	switch c.Type {
	case TypeUint32:
		return 4
	case TypeUint64:
		return 8
	case TypeFixedBytes:
		return c.Size
	case TypeVarBytes:
		return -1
	default:
		panic(fmt.Sprintf("storage: unknown column type %d", c.Type))
	}
}

// Schema is an ordered set of columns. The join key must be the first
// column and must be TypeUint32, matching the paper's workloads (4-byte
// join keys); payload columns follow.
type Schema struct {
	Cols []Column

	fixedWidth int  // total width of the fixed-length section
	hasVar     bool // any var-length columns
	offsets    []int
}

// NewSchema validates the column list and computes offsets.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: schema needs at least one column")
	}
	if cols[0].Type != TypeUint32 {
		return nil, fmt.Errorf("storage: first column (join key) must be uint32")
	}
	s := &Schema{Cols: cols, offsets: make([]int, len(cols))}
	seenVar := false
	for i, c := range cols {
		w := c.width()
		if w < 0 {
			seenVar = true
			s.offsets[i] = -1
			continue
		}
		if seenVar {
			return nil, fmt.Errorf("storage: fixed column %q after var-length column", c.Name)
		}
		if c.Type == TypeFixedBytes && c.Size <= 0 {
			return nil, fmt.Errorf("storage: fixed column %q needs positive size", c.Name)
		}
		s.offsets[i] = s.fixedWidth
		s.fixedWidth += w
	}
	s.hasVar = seenVar
	return s, nil
}

// MustSchema is NewSchema for statically correct schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// KeyPayloadSchema returns the paper's workload schema: a 4-byte join key
// followed by a fixed-length payload sized so that the whole tuple is
// tupleSize bytes.
func KeyPayloadSchema(tupleSize int) *Schema {
	if tupleSize < 8 {
		panic("storage: tuple size must be at least 8 bytes")
	}
	return MustSchema(
		Column{Name: "key", Type: TypeUint32},
		Column{Name: "payload", Type: TypeFixedBytes, Size: tupleSize - 4},
	)
}

// FixedWidth reports the width of the fixed-length section; for schemas
// with no var-length columns this is the exact tuple size.
func (s *Schema) FixedWidth() int { return s.fixedWidth }

// HasVar reports whether the schema has variable-length columns.
func (s *Schema) HasVar() bool { return s.hasVar }

// Offset returns the byte offset of fixed-length column i within a tuple.
func (s *Schema) Offset(i int) int {
	if s.offsets[i] < 0 {
		panic(fmt.Sprintf("storage: column %d is variable-length", i))
	}
	return s.offsets[i]
}

// Key extracts the uint32 join key from an encoded tuple.
func (s *Schema) Key(tuple []byte) uint32 {
	return uint32(tuple[0]) | uint32(tuple[1])<<8 | uint32(tuple[2])<<16 | uint32(tuple[3])<<24
}

// JoinedSchema builds the output schema of a join: all columns of the
// build schema followed by all columns of the probe schema (the paper's
// output tuples contain all fields of both matching tuples).
func JoinedSchema(build, probe *Schema) *Schema {
	cols := make([]Column, 0, len(build.Cols)+len(probe.Cols))
	cols = append(cols, build.Cols...)
	for _, c := range probe.Cols {
		c.Name = "probe_" + c.Name
		// The probe key lands mid-tuple; re-type it as fixed bytes so the
		// "first column is the key" invariant refers to the build key.
		if c.Type == TypeUint32 {
			c = Column{Name: c.Name, Type: TypeFixedBytes, Size: 4}
		}
		cols = append(cols, c)
	}
	return MustSchema(cols...)
}

// ReadKeyAddr returns the address of the join key within a tuple stored
// at addr (always offset 0 by construction).
func ReadKeyAddr(addr arena.Addr) arena.Addr { return addr }
