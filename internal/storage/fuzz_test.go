package storage

import (
	"bytes"
	"testing"

	"hashjoin/internal/arena"
)

// FuzzDecode ensures Decode never panics or over-reads on arbitrary
// bytes: it must either return an error or values within bounds.
func FuzzDecode(f *testing.F) {
	s := MustSchema(
		Column{Name: "key", Type: TypeUint32},
		Column{Name: "qty", Type: TypeUint64},
		Column{Name: "comment", Type: TypeVarBytes},
	)
	enc, _ := s.Encode([]Value{{U32: 7}, {U64: 9}, {Bytes: []byte("hello")}})
	f.Add(enc)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := s.Decode(data)
		if err != nil {
			return
		}
		if len(vals) != 3 {
			t.Fatalf("decoded %d values", len(vals))
		}
		if len(vals[2].Bytes) > len(data) {
			t.Fatalf("var column longer than input")
		}
	})
}

// FuzzEncodeDecodeRoundTrip checks the codec is lossless for valid
// inputs of any content.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	s := MustSchema(
		Column{Name: "key", Type: TypeUint32},
		Column{Name: "tag", Type: TypeFixedBytes, Size: 6},
		Column{Name: "note", Type: TypeVarBytes},
	)
	f.Add(uint32(1), []byte("tag123"), []byte("note"))
	f.Add(uint32(0xFFFFFFFF), []byte(""), []byte(""))
	f.Fuzz(func(t *testing.T, key uint32, tag, note []byte) {
		if len(tag) > 6 {
			tag = tag[:6]
		}
		if len(note) > 1000 {
			note = note[:1000]
		}
		enc, err := s.Encode([]Value{{U32: key}, {Bytes: tag}, {Bytes: note}})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := s.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if dec[0].U32 != key || !bytes.Equal(dec[2].Bytes, note) {
			t.Fatal("round trip lost data")
		}
		if !bytes.HasPrefix(dec[1].Bytes, tag) {
			t.Fatal("fixed column lost prefix")
		}
	})
}

// FuzzPageAppend drives a page with arbitrary tuple sizes: it must
// never corrupt earlier tuples or let data collide with the slot array.
func FuzzPageAppend(f *testing.F) {
	f.Add([]byte{10, 20, 30})
	f.Add([]byte{0, 255, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, sizes []byte) {
		a := arena.New(1 << 16)
		p := AllocPage(a, 1024, 0)
		var stored [][]byte
		for i, sz := range sizes {
			n := int(sz)%120 + 1
			tup := bytes.Repeat([]byte{byte(i + 1)}, n)
			if !p.Append(tup, uint32(i)) {
				break
			}
			stored = append(stored, tup)
		}
		if p.NSlots() != len(stored) {
			t.Fatalf("NSlots = %d, stored %d", p.NSlots(), len(stored))
		}
		for i, want := range stored {
			if !bytes.Equal(p.Tuple(i), want) {
				t.Fatalf("tuple %d corrupted", i)
			}
			if p.HashCode(i) != uint32(i) {
				t.Fatalf("hash code %d corrupted", i)
			}
		}
	})
}
