package storage

import (
	"fmt"

	"hashjoin/internal/arena"
)

// Slotted page layout. Tuple data grows upward from the header; the slot
// array grows downward from the page end. Each slot records the tuple's
// offset and length and memoizes the 4-byte hash code of its join key —
// the paper's section 7.1 optimization: hash codes are computed once in
// the partition phase, stored in the slot area of intermediate
// partitions, and reused by the join phase.
//
//	offset 0: u16 slot count
//	offset 2: u16 free pointer (offset of next free data byte)
//	offset 4: u32 page id
//	offset 8: tuple data ...
//	... slot[n-1], slot[1], slot[0] (8 bytes each, from the end down)
//
// Slot layout: u16 tuple offset, u16 tuple length, u32 hash code.
const (
	PageHeaderSize = 8
	SlotSize       = 8

	offNSlots = 0
	offFree   = 2
	offPageID = 4
)

// Slot field offsets within a slot entry.
const (
	SlotOffOffset = 0
	SlotOffLength = 2
	SlotOffHash   = 4
)

// NSlotsAddr returns the address of the page's slot-count field.
func NSlotsAddr(page arena.Addr) arena.Addr { return page + offNSlots }

// FreeAddr returns the address of the page's free-pointer field.
func FreeAddr(page arena.Addr) arena.Addr { return page + offFree }

// PageIDAddr returns the address of the page's id field.
func PageIDAddr(page arena.Addr) arena.Addr { return page + offPageID }

// SlotAddr returns the address of slot i in a page of pageSize bytes.
func SlotAddr(page arena.Addr, pageSize, i int) arena.Addr {
	return page + arena.Addr(pageSize) - arena.Addr(SlotSize*(i+1))
}

// Page is an untimed view of a slotted page, used for workload
// generation and validation. Measured code paths must instead perform
// timed accesses with the layout helpers above.
type Page struct {
	A    *arena.Arena
	Addr arena.Addr
	Size int
}

// InitPage formats the region [addr, addr+size) as an empty page.
func InitPage(a *arena.Arena, addr arena.Addr, size int, pageID uint32) Page {
	if size < PageHeaderSize+SlotSize {
		panic(fmt.Sprintf("storage: page size %d too small", size))
	}
	p := Page{A: a, Addr: addr, Size: size}
	a.PutU16(addr+offNSlots, 0)
	a.PutU16(addr+offFree, PageHeaderSize)
	a.PutU32(addr+offPageID, pageID)
	return p
}

// AllocPage allocates and formats a fresh page.
func AllocPage(a *arena.Arena, size int, pageID uint32) Page {
	addr := a.Alloc(uint64(size), 64)
	return InitPage(a, addr, size, pageID)
}

// NSlots returns the number of tuples on the page.
func (p Page) NSlots() int { return int(p.A.U16(p.Addr + offNSlots)) }

// Free returns the free-pointer offset.
func (p Page) Free() int { return int(p.A.U16(p.Addr + offFree)) }

// PageID returns the page id.
func (p Page) PageID() uint32 { return p.A.U32(p.Addr + offPageID) }

// FreeSpace returns the bytes available for one more tuple (accounting
// for its slot entry).
func (p Page) FreeSpace() int {
	used := p.Free() + SlotSize*p.NSlots()
	avail := p.Size - used - SlotSize
	if avail < 0 {
		return 0
	}
	return avail
}

// Append adds a tuple with its memoized hash code. It reports false when
// the page lacks space.
func (p Page) Append(tuple []byte, hashCode uint32) bool {
	if len(tuple) > p.FreeSpace() {
		return false
	}
	n := p.NSlots()
	free := p.Free()
	copy(p.A.Bytes(p.Addr+arena.Addr(free), uint64(len(tuple))), tuple)
	slot := SlotAddr(p.Addr, p.Size, n)
	p.A.PutU16(slot+SlotOffOffset, uint16(free))
	p.A.PutU16(slot+SlotOffLength, uint16(len(tuple)))
	p.A.PutU32(slot+SlotOffHash, hashCode)
	p.A.PutU16(p.Addr+offFree, uint16(free+len(tuple)))
	p.A.PutU16(p.Addr+offNSlots, uint16(n+1))
	return true
}

// Tuple returns the bytes of tuple i (aliasing arena storage).
func (p Page) Tuple(i int) []byte {
	addr, length := p.TupleAddr(i)
	return p.A.Bytes(addr, uint64(length))
}

// TupleAddr returns the address and length of tuple i.
func (p Page) TupleAddr(i int) (arena.Addr, int) {
	slot := SlotAddr(p.Addr, p.Size, i)
	off := p.A.U16(slot + SlotOffOffset)
	length := p.A.U16(slot + SlotOffLength)
	return p.Addr + arena.Addr(off), int(length)
}

// HashCode returns the memoized hash code of tuple i.
func (p Page) HashCode(i int) uint32 {
	return p.A.U32(SlotAddr(p.Addr, p.Size, i) + SlotOffHash)
}

// Reset empties the page for reuse (output buffers in the partition
// phase are reset after each simulated write-out).
func (p Page) Reset() {
	p.A.PutU16(p.Addr+offNSlots, 0)
	p.A.PutU16(p.Addr+offFree, PageHeaderSize)
}

// CapacityFor returns how many tuples of the given size fit on an empty
// page of pageSize bytes.
func CapacityFor(pageSize, tupleSize int) int {
	return (pageSize - PageHeaderSize) / (tupleSize + SlotSize)
}
