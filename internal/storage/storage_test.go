package storage

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"hashjoin/internal/arena"
)

func testTuple(key uint32, size int) []byte {
	t := make([]byte, size)
	binary.LittleEndian.PutUint32(t, key)
	for i := 4; i < size; i++ {
		t[i] = byte(key + uint32(i))
	}
	return t
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Errorf("empty schema accepted")
	}
	if _, err := NewSchema(Column{Name: "k", Type: TypeUint64}); err == nil {
		t.Errorf("non-uint32 key accepted")
	}
	if _, err := NewSchema(
		Column{Name: "k", Type: TypeUint32},
		Column{Name: "v", Type: TypeVarBytes},
		Column{Name: "w", Type: TypeUint64},
	); err == nil {
		t.Errorf("fixed column after var-length accepted")
	}
	if _, err := NewSchema(
		Column{Name: "k", Type: TypeUint32},
		Column{Name: "p", Type: TypeFixedBytes, Size: 0},
	); err == nil {
		t.Errorf("zero-size fixed column accepted")
	}
}

func TestKeyPayloadSchema(t *testing.T) {
	s := KeyPayloadSchema(100)
	if s.FixedWidth() != 100 {
		t.Fatalf("FixedWidth = %d, want 100", s.FixedWidth())
	}
	if s.Offset(1) != 4 {
		t.Fatalf("payload offset = %d, want 4", s.Offset(1))
	}
	tup := testTuple(0xCAFE, 100)
	if s.Key(tup) != 0xCAFE {
		t.Fatalf("Key = %#x, want 0xCAFE", s.Key(tup))
	}
}

func TestJoinedSchemaWidth(t *testing.T) {
	b := KeyPayloadSchema(60)
	p := KeyPayloadSchema(40)
	j := JoinedSchema(b, p)
	if j.FixedWidth() != 100 {
		t.Fatalf("joined width = %d, want 100", j.FixedWidth())
	}
}

func TestPageAppendAndReadBack(t *testing.T) {
	a := arena.New(1 << 16)
	p := AllocPage(a, 4096, 7)
	if p.PageID() != 7 {
		t.Fatalf("PageID = %d, want 7", p.PageID())
	}
	n := 0
	for {
		tup := testTuple(uint32(n), 100)
		if !p.Append(tup, uint32(n)*3) {
			break
		}
		n++
	}
	want := CapacityFor(4096, 100)
	if n != want {
		t.Fatalf("page held %d tuples, CapacityFor says %d", n, want)
	}
	if p.NSlots() != n {
		t.Fatalf("NSlots = %d, want %d", p.NSlots(), n)
	}
	for i := 0; i < n; i++ {
		tup := p.Tuple(i)
		if len(tup) != 100 {
			t.Fatalf("tuple %d length %d", i, len(tup))
		}
		if binary.LittleEndian.Uint32(tup) != uint32(i) {
			t.Fatalf("tuple %d key mismatch", i)
		}
		if p.HashCode(i) != uint32(i)*3 {
			t.Fatalf("tuple %d hash code mismatch", i)
		}
	}
}

func TestPageRejectsOversizedTuple(t *testing.T) {
	a := arena.New(1 << 16)
	p := AllocPage(a, 256, 0)
	if p.Append(make([]byte, 300), 0) {
		t.Fatalf("oversized tuple accepted")
	}
}

func TestPageReset(t *testing.T) {
	a := arena.New(1 << 16)
	p := AllocPage(a, 1024, 0)
	p.Append(testTuple(1, 50), 0)
	p.Reset()
	if p.NSlots() != 0 || p.Free() != PageHeaderSize {
		t.Fatalf("Reset left nslots=%d free=%d", p.NSlots(), p.Free())
	}
}

func TestSlotAddrDoesNotOverlapData(t *testing.T) {
	a := arena.New(1 << 16)
	p := AllocPage(a, 512, 0)
	for p.Append(testTuple(9, 40), 9) {
	}
	// The free pointer must stay below the lowest slot entry.
	lowestSlot := SlotAddr(p.Addr, p.Size, p.NSlots()-1)
	if p.Addr+arena.Addr(p.Free()) > lowestSlot {
		t.Fatalf("data region (free=%d) overlaps slot array", p.Free())
	}
}

func TestRelationAppendSpansPages(t *testing.T) {
	a := arena.New(1 << 20)
	r := NewRelation(a, KeyPayloadSchema(100), 1024)
	const n = 50
	for i := 0; i < n; i++ {
		r.Append(testTuple(uint32(i), 100), uint32(i))
	}
	if r.NTuples != n {
		t.Fatalf("NTuples = %d, want %d", r.NTuples, n)
	}
	if r.NPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", r.NPages())
	}
	seen := 0
	r.Each(func(tup []byte, hc uint32) {
		if r.Schema.Key(tup) != hc {
			t.Fatalf("hash code column mismatch")
		}
		seen++
	})
	if seen != n {
		t.Fatalf("Each visited %d tuples, want %d", seen, n)
	}
}

func TestRelationKeysOrder(t *testing.T) {
	a := arena.New(1 << 20)
	r := NewRelation(a, KeyPayloadSchema(16), 256)
	for i := 0; i < 30; i++ {
		r.Append(testTuple(uint32(100-i), 16), 0)
	}
	keys := r.Keys()
	if len(keys) != 30 || keys[0] != 100 || keys[29] != 71 {
		t.Fatalf("Keys() wrong: len=%d first=%d last=%d", len(keys), keys[0], keys[29])
	}
}

func TestQuickPageRoundTrip(t *testing.T) {
	f := func(keys []uint32, size uint8) bool {
		tupSize := 8 + int(size%64)
		a := arena.New(1 << 20)
		r := NewRelation(a, KeyPayloadSchema(tupSize), 1024)
		for _, k := range keys {
			r.Append(testTuple(k, tupSize), k^0x5A5A)
		}
		got := r.Keys()
		if len(got) != len(keys) {
			return false
		}
		for i := range keys {
			if got[i] != keys[i] {
				return false
			}
		}
		ok := true
		r.Each(func(tup []byte, hc uint32) {
			if hc != r.Schema.Key(tup)^0x5A5A {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityFor(t *testing.T) {
	if c := CapacityFor(8192, 100); c != (8192-PageHeaderSize)/(100+SlotSize) {
		t.Fatalf("CapacityFor mismatch: %d", c)
	}
}
