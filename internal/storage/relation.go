package storage

import (
	"fmt"

	"hashjoin/internal/arena"
)

// Relation is a sequence of slotted pages sharing a schema. Relations
// model both source tables (streamed from simulated disk) and
// intermediate partitions.
type Relation struct {
	Schema   *Schema
	PageSize int
	Pages    []arena.Addr
	NTuples  int

	a *arena.Arena
}

// NewRelation creates an empty relation whose pages will be allocated
// from a.
func NewRelation(a *arena.Arena, schema *Schema, pageSize int) *Relation {
	if pageSize < PageHeaderSize+SlotSize+schema.FixedWidth() {
		panic(fmt.Sprintf("storage: page size %d cannot hold a %d-byte tuple", pageSize, schema.FixedWidth()))
	}
	return &Relation{Schema: schema, PageSize: pageSize, a: a}
}

// Arena returns the arena backing the relation's pages.
func (r *Relation) Arena() *arena.Arena { return r.a }

// Append adds an encoded tuple (with its memoized hash code), growing the
// relation by a page when needed.
func (r *Relation) Append(tuple []byte, hashCode uint32) {
	if n := len(r.Pages); n > 0 {
		p := Page{A: r.a, Addr: r.Pages[n-1], Size: r.PageSize}
		if p.Append(tuple, hashCode) {
			r.NTuples++
			return
		}
	}
	p := AllocPage(r.a, r.PageSize, uint32(len(r.Pages)))
	if !p.Append(tuple, hashCode) {
		panic(fmt.Sprintf("storage: tuple of %d bytes does not fit an empty %d-byte page", len(tuple), r.PageSize))
	}
	r.Pages = append(r.Pages, p.Addr)
	r.NTuples++
}

// Page returns the untimed view of page i.
func (r *Relation) Page(i int) Page {
	return Page{A: r.a, Addr: r.Pages[i], Size: r.PageSize}
}

// NPages returns the page count.
func (r *Relation) NPages() int { return len(r.Pages) }

// ByteSize returns the total size of the relation's pages.
func (r *Relation) ByteSize() int { return len(r.Pages) * r.PageSize }

// Each iterates over every tuple, passing its page-local view. Untimed;
// for validation and setup only.
func (r *Relation) Each(fn func(tuple []byte, hashCode uint32)) {
	for i := range r.Pages {
		p := r.Page(i)
		n := p.NSlots()
		for j := 0; j < n; j++ {
			fn(p.Tuple(j), p.HashCode(j))
		}
	}
}

// Keys collects all join keys. Untimed; for validation only.
func (r *Relation) Keys() []uint32 {
	keys := make([]uint32, 0, r.NTuples)
	r.Each(func(t []byte, _ uint32) { keys = append(keys, r.Schema.Key(t)) })
	return keys
}
