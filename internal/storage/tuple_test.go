package storage

import (
	"bytes"
	"testing"
	"testing/quick"

	"hashjoin/internal/arena"
)

func varSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "key", Type: TypeUint32},
		Column{Name: "qty", Type: TypeUint64},
		Column{Name: "tag", Type: TypeFixedBytes, Size: 8},
		Column{Name: "comment", Type: TypeVarBytes},
		Column{Name: "note", Type: TypeVarBytes},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := varSchema(t)
	vals := []Value{
		{U32: 0xCAFEBABE},
		{U64: 1 << 40},
		{Bytes: []byte("tagtag")},
		{Bytes: []byte("a variable length comment")},
		{Bytes: nil},
	}
	enc, err := s.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	if s.Key(enc) != 0xCAFEBABE {
		t.Fatalf("key = %#x", s.Key(enc))
	}
	dec, err := s.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0].U32 != vals[0].U32 || dec[1].U64 != vals[1].U64 {
		t.Fatal("scalar columns corrupted")
	}
	if !bytes.HasPrefix(dec[2].Bytes, []byte("tagtag")) {
		t.Fatalf("fixed bytes = %q", dec[2].Bytes)
	}
	if string(dec[3].Bytes) != "a variable length comment" || len(dec[4].Bytes) != 0 {
		t.Fatal("var columns corrupted")
	}
}

func TestEncodeErrors(t *testing.T) {
	s := varSchema(t)
	if _, err := s.Encode([]Value{{U32: 1}}); err == nil {
		t.Error("wrong value count accepted")
	}
	vals := []Value{{U32: 1}, {U64: 2}, {Bytes: bytes.Repeat([]byte("x"), 9)}, {}, {}}
	if _, err := s.Encode(vals); err == nil {
		t.Error("oversized fixed value accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	s := varSchema(t)
	if _, err := s.Decode(make([]byte, 3)); err == nil {
		t.Error("short tuple accepted")
	}
	vals := []Value{{U32: 1}, {U64: 2}, {Bytes: []byte("t")}, {Bytes: []byte("hello")}, {}}
	enc, err := s.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decode(enc[:len(enc)-3]); err == nil {
		t.Error("truncated var section accepted")
	}
}

func TestVarTuplesOnPages(t *testing.T) {
	s := varSchema(t)
	a := arena.New(1 << 20)
	rel := NewRelation(a, s, 1024)
	var encs [][]byte
	for i := 0; i < 40; i++ {
		vals := []Value{
			{U32: uint32(i)},
			{U64: uint64(i) * 7},
			{Bytes: []byte("tag")},
			{Bytes: bytes.Repeat([]byte("c"), i%30)},
			{Bytes: bytes.Repeat([]byte("n"), (i*3)%20)},
		}
		enc, err := s.Encode(vals)
		if err != nil {
			t.Fatal(err)
		}
		encs = append(encs, enc)
		rel.Append(enc, uint32(i))
	}
	i := 0
	rel.Each(func(tup []byte, hc uint32) {
		if !bytes.Equal(tup, encs[i]) {
			t.Fatalf("tuple %d corrupted on page", i)
		}
		dec, err := s.Decode(tup)
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if dec[0].U32 != uint32(i) {
			t.Fatalf("tuple %d key %d", i, dec[0].U32)
		}
		i++
	})
	if i != 40 {
		t.Fatalf("iterated %d tuples", i)
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	s := varSchema(t)
	f := func(key uint32, qty uint64, tag [8]byte, comment, note []byte) bool {
		if len(comment) > 200 {
			comment = comment[:200]
		}
		if len(note) > 200 {
			note = note[:200]
		}
		enc, err := s.Encode([]Value{{U32: key}, {U64: qty}, {Bytes: tag[:]}, {Bytes: comment}, {Bytes: note}})
		if err != nil {
			return false
		}
		dec, err := s.Decode(enc)
		if err != nil {
			return false
		}
		return dec[0].U32 == key && dec[1].U64 == qty &&
			bytes.Equal(dec[2].Bytes, tag[:]) &&
			bytes.Equal(dec[3].Bytes, comment) && bytes.Equal(dec[4].Bytes, note)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
