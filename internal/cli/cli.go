// Package cli is the shared front end of the hjquery and hjbench
// commands: one place that parses engine, scheme, and hierarchy flag
// values, rounds partition fan-outs, and runs the common
// Scan -> HashJoin -> HashAggregate pipeline on either backend of the
// operator engine. Both commands share one exit-code taxonomy (see
// ExitCodeFor): 2 for flag mistakes through Fatalf, and 1/3/4 for
// runtime failures by class through Dief and DiePipeline.
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/engine"
	"hashjoin/internal/memsim"
	"hashjoin/internal/native"
	"hashjoin/internal/plan"
	"hashjoin/internal/sched"
	"hashjoin/internal/spill"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

// ParseEngine maps an -engine flag value onto an engine backend.
func ParseEngine(s string) (engine.Backend, error) {
	switch s {
	case "sim":
		return engine.Sim, nil
	case "native":
		return engine.Native, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (accepted: sim, native)", s)
	}
}

// EngineNames lists the accepted -engine values.
func EngineNames() []string { return []string{"sim", "native"} }

// ParseHierarchy maps a -hier flag value onto a simulated memory
// hierarchy.
func ParseHierarchy(s string) (memsim.Config, error) {
	switch s {
	case "small":
		return memsim.SmallConfig(), nil
	case "es40":
		return memsim.ES40Config(), nil
	default:
		return memsim.Config{}, fmt.Errorf("unknown hierarchy %q (accepted: %s)",
			s, strings.Join(HierarchyNames(), ", "))
	}
}

// HierarchyNames lists the accepted -hier values.
func HierarchyNames() []string { return []string{"small", "es40"} }

// ParseScheme maps a -scheme flag value onto a prefetching scheme.
func ParseScheme(s string) (core.Scheme, error) {
	switch s {
	case "baseline":
		return core.SchemeBaseline, nil
	case "simple":
		return core.SchemeSimple, nil
	case "group":
		return core.SchemeGroup, nil
	case "pipelined":
		return core.SchemePipelined, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (accepted: %s)",
			s, strings.Join(SchemeNames(), ", "))
	}
}

// SchemeNames lists the accepted -scheme values (without "plan").
func SchemeNames() []string { return []string{"baseline", "simple", "group", "pipelined"} }

// ParsePlanScheme is ParseScheme plus the "plan" value, which defers
// the choice to the catalog planner; it returns usePlan = true in that
// case.
func ParsePlanScheme(s string) (scheme core.Scheme, usePlan bool, err error) {
	if s == "plan" {
		return 0, true, nil
	}
	scheme, err = ParseScheme(s)
	if err != nil {
		err = fmt.Errorf("unknown scheme %q (accepted: plan, %s)",
			s, strings.Join(SchemeNames(), ", "))
	}
	return scheme, false, err
}

// ParseSchemeList parses a comma-separated -schemes flag value,
// trimming whitespace around each name.
func ParseSchemeList(csv string) ([]core.Scheme, error) {
	parts := strings.Split(csv, ",")
	out := make([]core.Scheme, 0, len(parts))
	for _, p := range parts {
		s, err := ParseScheme(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// NativeScheme maps a simulator scheme onto the native engine's: Simple
// runs as Baseline (its whole-page prefetch has no native analog) and
// Combined as Group.
func NativeScheme(s core.Scheme) native.Scheme {
	switch s {
	case core.SchemeGroup, core.SchemeCombined:
		return native.Group
	case core.SchemePipelined:
		return native.Pipelined
	default:
		return native.Baseline
	}
}

// NormalizeFanout rounds a requested partition fan-out the way the
// native partitioner does: values above one round up to the next power
// of two; zero and one are passed through (0 = derive, 1 = single pair).
func NormalizeFanout(n int) int {
	if n <= 1 {
		return n
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Exit codes shared by hjbench and hjquery, so scripts can tell a
// query that ran out of time from one that ran out of memory without
// parsing stderr.
const (
	ExitOK        = 0
	ExitFailure   = 1 // runtime failure of no more specific class
	ExitUsage     = 2 // bad flag value
	ExitMemory    = 3 // arena exhaustion or irreducible over-budget pair
	ExitCancelled = 4 // -timeout expiry or context cancellation
	ExitInternal  = 5 // recovered panic while serving a request
	ExitProtocol  = 6 // malformed client input (e.g. an oversized line)
)

// ExitCodeFor classifies a runtime error into the exit-code taxonomy.
// Cancellation is checked first: a join cut short by a deadline may
// surface secondary errors from other layers, and "it was cancelled"
// is the truth the caller acts on. (An admission queue timeout unwraps
// to context.DeadlineExceeded and so lands there too.) An admission
// shed for size is a memory-class failure — the query could never fit —
// while queue-full and draining sheds are plain failures: retryable,
// nothing about the query itself was wrong.
func ExitCodeFor(err error) int {
	if err == nil {
		return ExitOK
	}
	if errors.Is(err, native.ErrCancelled) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ExitCancelled
	}
	var ae *sched.AdmissionError
	if errors.As(err, &ae) && ae.Reason == sched.TooLarge {
		return ExitMemory
	}
	if errors.Is(err, arena.ErrOutOfMemory) || errors.Is(err, native.ErrOverBudget) {
		return ExitMemory
	}
	return ExitFailure
}

// StatusName maps an exit code to the stable status word the hjserve
// wire protocol and its clients use.
func StatusName(code int) string {
	switch code {
	case ExitOK:
		return "ok"
	case ExitUsage:
		return "usage"
	case ExitMemory:
		return "memory"
	case ExitCancelled:
		return "cancelled"
	case ExitInternal:
		return "internal"
	case ExitProtocol:
		return "protocol"
	default:
		return "failure"
	}
}

// wrapCancel normalizes a raw context error noticed deep in a pipeline
// (scans return ctx.Err() unwrapped) into the typed *native.CancelError
// that PipelineErrorDetail and ExitCodeFor key on; errors that already
// carry the type, and non-cancellation errors, pass through.
func wrapCancel(err error, elapsed time.Duration) error {
	if err == nil {
		return nil
	}
	var ce *native.CancelError
	if errors.As(err, &ce) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &native.CancelError{Cause: err, Elapsed: elapsed}
	}
	return err
}

// Fatalf reports a usage error (bad flag value) for prog: exit code 2.
func Fatalf(prog, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog, strings.TrimSuffix(fmt.Sprintf(format, args...), "\n"))
	osExit(ExitUsage)
}

// Dief reports a runtime failure for prog: exit code 1.
func Dief(prog, format string, args ...any) {
	fmt.Fprintf(stderr, "%s: %s\n", prog, fmt.Sprintf(format, args...))
	osExit(ExitFailure)
}

// DiePipeline reports a pipeline failure for prog and exits with the
// ExitCodeFor class of the error. Beyond the error itself it prints the
// breakdown lines of PipelineErrorDetail, so a budget, arena, timeout,
// or corruption failure arrives with its numbers instead of one opaque
// message.
func DiePipeline(prog string, err error) {
	fmt.Fprintf(stderr, "%s: %v\n", prog, err)
	for _, line := range PipelineErrorDetail(err) {
		fmt.Fprintf(stderr, "%s:   %s\n", prog, line)
	}
	osExit(ExitCodeFor(err))
}

// PipelineErrorDetail returns human-readable breakdown lines for the
// failure modes a pipeline run can hit under memory pressure: the
// budget governor giving up (*native.BudgetError, only reachable with
// spilling disabled) and arena exhaustion (*arena.OOMError, with its
// durable/scope usage split). Other errors yield no extra lines.
func PipelineErrorDetail(err error) []string {
	var lines []string
	var ce *native.CancelError
	if errors.As(err, &ce) {
		lines = append(lines,
			fmt.Sprintf("cancelled after %v: %d of %d partition pairs joined, %d output rows discarded",
				ce.Elapsed.Round(time.Millisecond), ce.PairsDone, ce.PairsTotal, ce.RowsOut))
		if errors.Is(err, context.DeadlineExceeded) {
			lines = append(lines, "hint: raise -timeout, or shrink the workload")
		}
	}
	var ae *sched.AdmissionError
	if errors.As(err, &ae) {
		switch ae.Reason {
		case sched.TooLarge:
			lines = append(lines,
				fmt.Sprintf("admission: planned %d bytes of scratch, but at most %d is ever grantable", ae.Planned, ae.Limit),
				"hint: raise the arena budget, or declare a smaller planned scratch")
		case sched.QueueFull:
			lines = append(lines, "admission: queue full; retry when load drops")
		case sched.Timeout:
			lines = append(lines,
				fmt.Sprintf("admission: still queued after %v; the service is saturated", ae.Waited.Round(time.Millisecond)))
		case sched.Draining:
			lines = append(lines, "admission: the service is draining and admits nothing new")
		}
	}
	var sue *spill.SpillUnavailableError
	if errors.As(err, &sue) {
		lines = append(lines,
			fmt.Sprintf("spill: all %d configured spill director(ies) are unhealthy; the query was shed, not corrupted", len(sue.Dirs)),
			"hint: free disk space or point -spill-dir at healthy volumes (comma-separated); the tier re-probes and recovers on its own")
	}
	var cpe *spill.CorruptPageError
	if errors.As(err, &cpe) {
		lines = append(lines,
			fmt.Sprintf("spill corruption: %s page %d (offset %d): %s",
				cpe.File, cpe.Page, cpe.Offset, cpe.Reason),
			"the spill file was damaged between write and read; the join was abandoned, not silently truncated")
	}
	var be *native.BudgetError
	if errors.As(err, &be) {
		lines = append(lines,
			fmt.Sprintf("budget: %d bytes; irreducible pair needs ~%d (%.1fx over)",
				be.Budget, be.Need, float64(be.Need)/float64(max(be.Budget, 1))),
			fmt.Sprintf("re-partitioning gave up at depth %d; duplicate join keys defeat radix splitting", be.Depth),
			"hint: raise -budget, or drop -no-spill so the pair joins out of core")
	}
	var oe *arena.OOMError
	if errors.As(err, &oe) {
		lines = append(lines,
			fmt.Sprintf("arena: %d bytes used of %d capacity; allocation of %d (align %d) failed",
				oe.Used, oe.Cap, oe.Need, oe.Align))
		if oe.Budget != 0 {
			lines = append(lines, fmt.Sprintf("arena budget: %d bytes", oe.Budget))
		}
		if n := len(oe.ScopeHeld); n > 0 {
			lines = append(lines,
				fmt.Sprintf("usage: %d bytes durable, %d open scope(s) holding %v bytes of scratch",
					oe.Durable, n, oe.ScopeHeld))
		}
	}
	return lines
}

// osExit and stderr are swapped out by tests.
var (
	osExit           = os.Exit
	stderr io.Writer = os.Stderr
)

// Pipeline is the shared query both commands run: generate a workload,
// then Scan(build) ⋈ Scan(probe) feeding a group-by on the join key,
// compiled onto the selected backend of the operator engine. The same
// logical plan, and therefore the same logical result, on either
// engine.
type Pipeline struct {
	Engine    engine.Backend
	Spec      workload.Spec
	Scheme    core.Scheme
	Params    core.Params
	Hier      memsim.Config // Sim backend; zero value selects SmallConfig
	Fanout    int           // Native backend join strategy
	Workers   int
	MemBudget int // Native: bound on the join's resident build footprint; 0 = unbudgeted

	// JoinType selects the join's match semantics (zero value: inner).
	// The probe relation is the join's left input.
	JoinType plan.JoinType
	// Strategy forces a physical join strategy; Auto (the zero value)
	// keeps the legacy fanout-driven selection unless Explain engages
	// the planner.
	Strategy plan.Strategy
	// Explain consults the cost-based planner even under Auto and
	// reports the decision in PipelineResult.Plan.
	Explain bool
	// AggValueOff is the 4-byte value column the group-by sums, as an
	// offset into the join's output row (0 = the default 4, the build —
	// or for semi/anti the probe — payload's first word). Validate
	// rejects offsets that dangle off the join type's output width.
	AggValueOff int

	SpillDir     string // Native: comma-separated parent dirs for the out-of-core spill area, tried in order ("" = OS temp)
	SpillWorkers int    // Native: write-behind workers for the spill tier (0 = default)
	NoSpill      bool   // Native: fail with *native.BudgetError instead of spilling
	Hybrid       bool   // Native: adaptive hybrid hash join (resident prefix + spilled overflow)

	// Ctx, when non-nil, bounds the run: scans check it at batch
	// boundaries, the native morsel join before each pair claim, and the
	// spill tier at page boundaries. Both commands wire -timeout here.
	Ctx context.Context

	// Pair and A hold the generated workload; Materialize fills them
	// (idempotently), letting callers inspect the relations — catalog
	// statistics, planning — before Run.
	Pair *workload.Pair
	A    *arena.Arena
}

// PipelineResult is the outcome of one pipeline run. NOutput and KeySum
// are the join's totals, recovered from the group-by (every join output
// row lands in exactly one group): NOutput = Σ count, KeySum = Σ
// key·count.
type PipelineResult struct {
	NOutput int
	KeySum  uint64
	Groups  []engine.Group

	Stats   memsim.Stats  // Sim: cycle breakdown of the whole pipeline
	Elapsed time.Duration // Native: wall clock of the whole pipeline

	// JoinFanout is the partition count the native join actually used
	// (1: streaming); JoinRecursionDepth is how deep the budget governor
	// had to re-partition oversized pairs (0: none).
	JoinFanout         int
	JoinRecursionDepth int

	// SpilledPartitions counts partition pairs the native join completed
	// out of core; the remaining fields total the spill tier's file I/O
	// and the latency its write-behind/read-ahead overlap failed to hide.
	SpilledPartitions int
	SpillBytesWritten int64
	SpillBytesRead    int64
	SpillWriteStall   time.Duration
	SpillReadStall    time.Duration
	// SpillFailovers counts spill directories declared failed mid-join;
	// SpillRebuilds counts partitions rebuilt from their in-memory
	// source after a failed or corrupt spill file.
	SpillFailovers int64
	SpillRebuilds  int64

	// Hybrid-policy accounting: partition pairs joined fully in memory
	// and planned-resident pairs demoted to disk mid-join (with their
	// summed build footprints). Zero without Hybrid.
	ResidentPartitions int
	DemotedPartitions  int
	BytesDemoted       int64

	// Plan is the planner's decision and inputs when it was consulted
	// (Strategy != Auto, or Explain); nil otherwise.
	Plan *plan.Decision
}

// Validate rejects flag combinations that would otherwise execute as a
// silently different query — the caller maps the error to the usage
// exit code (Fatalf). The aggregate offset check depends on the join
// type because semi/anti joins narrow the output row to the probe
// tuple: an -agg offset that is fine for an inner join can dangle off
// the end of a semi join's rows.
func (p *Pipeline) Validate() error {
	if (p.Strategy == plan.NestedLoop || p.Strategy == plan.StreamHash) && p.Fanout > 1 {
		return fmt.Errorf("-strategy %v is single-table; -pipeline-fanout %d conflicts (use -strategy partitioned or auto)",
			p.Strategy, p.Fanout)
	}
	if p.Strategy == plan.PartitionedHash && p.Engine == engine.Sim {
		return fmt.Errorf("-strategy partitioned requires -engine native (the simulator executes single-table joins only)")
	}
	tuple := p.Spec.TupleSize
	if tuple < 8 {
		tuple = 8 // the generator's minimum width
	}
	outWidth := 2 * tuple
	if p.JoinType.ProbeOnly() {
		outWidth = tuple
	}
	off := p.AggValueOff
	if off == 0 {
		off = 4
	}
	if off < 4 {
		return fmt.Errorf("-agg offset %d overlaps the group key (must be >= 4)", off)
	}
	if off+4 > outWidth {
		return fmt.Errorf("-agg offset %d needs a %d-byte output row, but a %v join of %d-byte tuples emits %d bytes (semi/anti emit the probe tuple only)",
			off, off+4, p.JoinType, tuple, outWidth)
	}
	return nil
}

// planDecision consults the cost-based planner when a strategy was
// forced or an EXPLAIN was requested, returning nil otherwise (legacy
// fanout-driven selection). A forced strategy overrides the planner's
// pick but the decision records what it preferred; a pinned -fanout > 1
// under Auto likewise pins the partitioned strategy.
func (p *Pipeline) planDecision() *plan.Decision {
	if p.Strategy == plan.Auto && !p.Explain {
		return nil
	}
	spec := p.Pair.Spec
	mr := spec.MatchRate
	if mr == 0 && spec.NProbe > 0 {
		mr = float64(p.Pair.ProbeMatched) / float64(spec.NProbe)
	}
	stats := plan.Stats{
		BuildRows:      spec.NBuild,
		ProbeRows:      spec.NProbe,
		BuildWidth:     spec.TupleSize,
		ProbeWidth:     spec.TupleSize,
		BuildFootprint: native.BuildFootprint(spec.NBuild, spec.TupleSize),
		MatchRate:      mr,
	}
	dec := plan.Choose(stats, p.JoinType, p.MemBudget)
	switch {
	case p.Strategy != plan.Auto && p.Strategy != dec.Strategy:
		preferred := dec.Strategy
		dec.Strategy = p.Strategy
		if p.Strategy == plan.PartitionedHash {
			if dec.Fanout <= 1 {
				dec.Fanout = max(p.Fanout, 2)
			}
		} else {
			dec.Fanout = 1
		}
		dec.Reason = fmt.Sprintf("forced by -strategy %v; planner preferred %v", p.Strategy, preferred)
	case p.Engine == engine.Sim && dec.Strategy == plan.PartitionedHash:
		// The simulator executes single-table joins only; an auto-planned
		// partitioned pick degrades to streaming there.
		dec.Strategy, dec.Fanout = plan.StreamHash, 1
		dec.Reason = "sim backend runs single-table joins only (planner preferred partitioned)"
	case p.Engine == engine.Native && p.Strategy == plan.Auto && p.Fanout > 1 && dec.Strategy != plan.PartitionedHash:
		preferred := dec.Strategy
		dec.Strategy, dec.Fanout = plan.PartitionedHash, p.Fanout
		dec.Reason = fmt.Sprintf("-fanout %d pins the partitioned strategy; planner preferred %v", p.Fanout, preferred)
	}
	return &dec
}

// Materialize generates the workload into a fresh arena if it has not
// been generated yet. The arena is sized from the plan — the workload's
// own footprint plus the scratch the compiled pipeline allocates per
// run — rather than a blanket capacity multiplier.
func (p *Pipeline) Materialize() {
	if p.Pair != nil {
		return
	}
	p.A = arena.New(workload.ArenaBytesFor(p.Spec) + p.scratchBytes())
	p.Pair = workload.Generate(p.A, p.Spec)
}

// scratchBytes estimates the per-run arena scratch of the compiled
// Scan ⋈ Scan -> HashAggregate plan beyond the workload itself: the
// streaming join's output ring (one probe batch's matches), the morsel
// pipe buffers (2·workers+4 batches of concatenated rows), and the
// aggregate's staging block (one AggTupleWidth row per possible group),
// with slack for page rounding. Scoped allocation reclaims all of it
// between runs, so this bounds the steady-state high-water mark, not a
// per-run leak.
func (p *Pipeline) scratchBytes() uint64 {
	tupleSize := p.Spec.TupleSize
	if tupleSize < 8 {
		tupleSize = 8
	}
	outWidth := uint64(2 * tupleSize)
	batch := p.Params.G
	if batch < native.DefaultG {
		batch = native.DefaultG // covers both backends' default G
	}
	workers := p.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	mpb := p.Spec.MatchesPerBuild
	if mpb < 1 {
		mpb = 1
	}
	ring := uint64(batch*mpb) * outWidth
	pipeBufs := uint64(2*workers+4) * uint64(batch) * outWidth
	aggStaging := uint64(p.Spec.NBuild) * engine.AggTupleWidth
	return ring + pipeBufs + aggStaging + p.spillPoolBytes() + (64 << 10)
}

// spillPoolBytes over-approximates the arena scratch the native join's
// out-of-core tier may claim for its page buffer pool: chunk pages plus
// write/read working buffers, all DefaultPageSize-sized. Zero when the
// tier cannot engage (unbudgeted or disabled).
func (p *Pipeline) spillPoolBytes() uint64 {
	if p.Engine != engine.Native || p.MemBudget <= 0 || p.NoSpill {
		return 0
	}
	sw := p.SpillWorkers
	if sw < 1 {
		sw = spill.DefaultWorkers
	}
	// The real chunk count divides the budget by page size plus per-tuple
	// table overhead; dividing by page size alone over-counts, which is
	// the safe direction. 256 mirrors the native tier's chunk-page cap.
	chunk := p.MemBudget/spill.DefaultPageSize + 1
	if chunk > 256 {
		chunk = 256
	}
	return uint64(chunk+3*sw+4)*uint64(spill.DefaultPageSize) + (64 << 10)
}

// Run executes the pipeline on the configured backend and validates the
// derived join totals against the workload's ground truth.
func (p *Pipeline) Run() (PipelineResult, error) {
	p.Materialize()
	spec := p.Pair.Spec
	valueOff := p.AggValueOff
	if valueOff == 0 {
		valueOff = 4
	}
	logical := engine.HashAggregate(
		engine.HashJoinTyped(engine.Scan(p.Pair.Build), engine.Scan(p.Pair.Probe), p.JoinType),
		valueOff, spec.NBuild)

	strategy, fanout := plan.Auto, p.Fanout
	dec := p.planDecision()
	if dec != nil {
		strategy, fanout = dec.Strategy, dec.Fanout
	}

	var report engine.Report
	cfg := engine.Config{
		Backend:      p.Engine,
		A:            p.A,
		Scheme:       p.Scheme,
		Params:       p.Params,
		Strategy:     strategy,
		Fanout:       fanout,
		Workers:      p.Workers,
		MemBudget:    p.MemBudget,
		SpillDir:     p.SpillDir,
		SpillWorkers: p.SpillWorkers,
		NoSpill:      p.NoSpill,
		Hybrid:       p.Hybrid,
		Report:       &report,
		Ctx:          p.Ctx,
	}
	var res PipelineResult
	res.Plan = dec
	start := time.Now()
	switch p.Engine {
	case engine.Sim:
		hier := p.Hier
		if hier == (memsim.Config{}) {
			hier = memsim.SmallConfig()
		}
		m := vmem.New(p.A, memsim.NewSim(hier))
		cfg.Mem = m
		root, err := engine.Compile(logical, cfg)
		if err != nil {
			return res, err
		}
		res.Groups, err = engine.Groups(root, p.A)
		if err != nil {
			return res, wrapCancel(err, time.Since(start))
		}
		res.Stats = m.S.Stats()
	case engine.Native:
		root, err := engine.Compile(logical, cfg)
		if err != nil {
			return res, err
		}
		res.Groups, err = engine.Groups(root, p.A)
		if err != nil {
			return res, wrapCancel(err, time.Since(start))
		}
		res.Elapsed = time.Since(start)
	default:
		return res, fmt.Errorf("unknown backend %v", p.Engine)
	}
	res.JoinFanout = report.JoinFanout
	res.JoinRecursionDepth = report.JoinRecursionDepth
	res.SpilledPartitions = report.SpilledPartitions
	res.SpillBytesWritten = report.SpillBytesWritten
	res.SpillBytesRead = report.SpillBytesRead
	res.SpillWriteStall = report.SpillWriteStall
	res.SpillReadStall = report.SpillReadStall
	res.SpillFailovers = report.SpillFailovers
	res.SpillRebuilds = report.SpillRebuilds
	res.ResidentPartitions = report.ResidentPartitions
	res.DemotedPartitions = report.DemotedPartitions
	res.BytesDemoted = report.BytesDemoted

	for _, g := range res.Groups {
		res.NOutput += int(g.Count)
		res.KeySum += uint64(g.Key) * g.Count
	}
	wantN, wantSum := p.Pair.Expected(p.JoinType)
	if res.NOutput != wantN || res.KeySum != wantSum {
		return res, fmt.Errorf("%v %v result mismatch: (%d, %d) vs (%d, %d) expected",
			p.Engine, p.JoinType, res.NOutput, res.KeySum, wantN, wantSum)
	}
	return res, nil
}
