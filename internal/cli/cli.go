// Package cli is the shared front end of the hjquery and hjbench
// commands: one place that parses engine, scheme, and hierarchy flag
// values, rounds partition fan-outs, and runs the common
// Scan -> HashJoin -> HashAggregate pipeline on either backend of the
// operator engine. Both commands report flag mistakes with exit code 2
// (usage) and runtime failures with exit code 1, through Fatalf and
// Dief.
package cli

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/engine"
	"hashjoin/internal/memsim"
	"hashjoin/internal/native"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

// ParseEngine maps an -engine flag value onto an engine backend.
func ParseEngine(s string) (engine.Backend, error) {
	switch s {
	case "sim":
		return engine.Sim, nil
	case "native":
		return engine.Native, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (accepted: sim, native)", s)
	}
}

// EngineNames lists the accepted -engine values.
func EngineNames() []string { return []string{"sim", "native"} }

// ParseHierarchy maps a -hier flag value onto a simulated memory
// hierarchy.
func ParseHierarchy(s string) (memsim.Config, error) {
	switch s {
	case "small":
		return memsim.SmallConfig(), nil
	case "es40":
		return memsim.ES40Config(), nil
	default:
		return memsim.Config{}, fmt.Errorf("unknown hierarchy %q (accepted: %s)",
			s, strings.Join(HierarchyNames(), ", "))
	}
}

// HierarchyNames lists the accepted -hier values.
func HierarchyNames() []string { return []string{"small", "es40"} }

// ParseScheme maps a -scheme flag value onto a prefetching scheme.
func ParseScheme(s string) (core.Scheme, error) {
	switch s {
	case "baseline":
		return core.SchemeBaseline, nil
	case "simple":
		return core.SchemeSimple, nil
	case "group":
		return core.SchemeGroup, nil
	case "pipelined":
		return core.SchemePipelined, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (accepted: %s)",
			s, strings.Join(SchemeNames(), ", "))
	}
}

// SchemeNames lists the accepted -scheme values (without "plan").
func SchemeNames() []string { return []string{"baseline", "simple", "group", "pipelined"} }

// ParsePlanScheme is ParseScheme plus the "plan" value, which defers
// the choice to the catalog planner; it returns usePlan = true in that
// case.
func ParsePlanScheme(s string) (scheme core.Scheme, usePlan bool, err error) {
	if s == "plan" {
		return 0, true, nil
	}
	scheme, err = ParseScheme(s)
	if err != nil {
		err = fmt.Errorf("unknown scheme %q (accepted: plan, %s)",
			s, strings.Join(SchemeNames(), ", "))
	}
	return scheme, false, err
}

// ParseSchemeList parses a comma-separated -schemes flag value,
// trimming whitespace around each name.
func ParseSchemeList(csv string) ([]core.Scheme, error) {
	parts := strings.Split(csv, ",")
	out := make([]core.Scheme, 0, len(parts))
	for _, p := range parts {
		s, err := ParseScheme(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// NativeScheme maps a simulator scheme onto the native engine's: Simple
// runs as Baseline (its whole-page prefetch has no native analog) and
// Combined as Group.
func NativeScheme(s core.Scheme) native.Scheme {
	switch s {
	case core.SchemeGroup, core.SchemeCombined:
		return native.Group
	case core.SchemePipelined:
		return native.Pipelined
	default:
		return native.Baseline
	}
}

// NormalizeFanout rounds a requested partition fan-out the way the
// native partitioner does: values above one round up to the next power
// of two; zero and one are passed through (0 = derive, 1 = single pair).
func NormalizeFanout(n int) int {
	if n <= 1 {
		return n
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Fatalf reports a usage error (bad flag value) for prog: exit code 2.
func Fatalf(prog, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog, strings.TrimSuffix(fmt.Sprintf(format, args...), "\n"))
	osExit(2)
}

// Dief reports a runtime failure for prog: exit code 1.
func Dief(prog, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog, fmt.Sprintf(format, args...))
	osExit(1)
}

// osExit is swapped out by tests.
var osExit = os.Exit

// Pipeline is the shared query both commands run: generate a workload,
// then Scan(build) ⋈ Scan(probe) feeding a group-by on the join key,
// compiled onto the selected backend of the operator engine. The same
// logical plan, and therefore the same logical result, on either
// engine.
type Pipeline struct {
	Engine    engine.Backend
	Spec      workload.Spec
	Scheme    core.Scheme
	Params    core.Params
	Hier      memsim.Config // Sim backend; zero value selects SmallConfig
	Fanout    int           // Native backend join strategy
	Workers   int
	MemBudget int // Native: bound on the join's resident build footprint; 0 = unbudgeted

	// Pair and A hold the generated workload; Materialize fills them
	// (idempotently), letting callers inspect the relations — catalog
	// statistics, planning — before Run.
	Pair *workload.Pair
	A    *arena.Arena
}

// PipelineResult is the outcome of one pipeline run. NOutput and KeySum
// are the join's totals, recovered from the group-by (every join output
// row lands in exactly one group): NOutput = Σ count, KeySum = Σ
// key·count.
type PipelineResult struct {
	NOutput int
	KeySum  uint64
	Groups  []engine.Group

	Stats   memsim.Stats  // Sim: cycle breakdown of the whole pipeline
	Elapsed time.Duration // Native: wall clock of the whole pipeline

	// JoinFanout is the partition count the native join actually used
	// (1: streaming); JoinRecursionDepth is how deep the budget governor
	// had to re-partition oversized pairs (0: none).
	JoinFanout         int
	JoinRecursionDepth int
}

// Materialize generates the workload into a fresh arena if it has not
// been generated yet. The arena is sized from the plan — the workload's
// own footprint plus the scratch the compiled pipeline allocates per
// run — rather than a blanket capacity multiplier.
func (p *Pipeline) Materialize() {
	if p.Pair != nil {
		return
	}
	p.A = arena.New(workload.ArenaBytesFor(p.Spec) + p.scratchBytes())
	p.Pair = workload.Generate(p.A, p.Spec)
}

// scratchBytes estimates the per-run arena scratch of the compiled
// Scan ⋈ Scan -> HashAggregate plan beyond the workload itself: the
// streaming join's output ring (one probe batch's matches), the morsel
// pipe buffers (2·workers+4 batches of concatenated rows), and the
// aggregate's staging block (one AggTupleWidth row per possible group),
// with slack for page rounding. Scoped allocation reclaims all of it
// between runs, so this bounds the steady-state high-water mark, not a
// per-run leak.
func (p *Pipeline) scratchBytes() uint64 {
	tupleSize := p.Spec.TupleSize
	if tupleSize < 8 {
		tupleSize = 8
	}
	outWidth := uint64(2 * tupleSize)
	batch := p.Params.G
	if batch < native.DefaultG {
		batch = native.DefaultG // covers both backends' default G
	}
	workers := p.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	mpb := p.Spec.MatchesPerBuild
	if mpb < 1 {
		mpb = 1
	}
	ring := uint64(batch*mpb) * outWidth
	pipeBufs := uint64(2*workers+4) * uint64(batch) * outWidth
	aggStaging := uint64(p.Spec.NBuild) * engine.AggTupleWidth
	return ring + pipeBufs + aggStaging + (64 << 10)
}

// Run executes the pipeline on the configured backend and validates the
// derived join totals against the workload's ground truth.
func (p *Pipeline) Run() (PipelineResult, error) {
	p.Materialize()
	spec := p.Pair.Spec
	plan := engine.HashAggregate(
		engine.HashJoin(engine.Scan(p.Pair.Build), engine.Scan(p.Pair.Probe)),
		4, spec.NBuild)

	var report engine.Report
	cfg := engine.Config{
		Backend:   p.Engine,
		A:         p.A,
		Scheme:    p.Scheme,
		Params:    p.Params,
		Fanout:    p.Fanout,
		Workers:   p.Workers,
		MemBudget: p.MemBudget,
		Report:    &report,
	}
	var res PipelineResult
	switch p.Engine {
	case engine.Sim:
		hier := p.Hier
		if hier == (memsim.Config{}) {
			hier = memsim.SmallConfig()
		}
		m := vmem.New(p.A, memsim.NewSim(hier))
		cfg.Mem = m
		root, err := engine.Compile(plan, cfg)
		if err != nil {
			return res, err
		}
		res.Groups, err = engine.Groups(root, p.A)
		if err != nil {
			return res, err
		}
		res.Stats = m.S.Stats()
	case engine.Native:
		start := time.Now()
		root, err := engine.Compile(plan, cfg)
		if err != nil {
			return res, err
		}
		res.Groups, err = engine.Groups(root, p.A)
		if err != nil {
			return res, err
		}
		res.Elapsed = time.Since(start)
	default:
		return res, fmt.Errorf("unknown backend %v", p.Engine)
	}
	res.JoinFanout = report.JoinFanout
	res.JoinRecursionDepth = report.JoinRecursionDepth

	for _, g := range res.Groups {
		res.NOutput += int(g.Count)
		res.KeySum += uint64(g.Key) * g.Count
	}
	if res.NOutput != p.Pair.ExpectedMatches || res.KeySum != p.Pair.KeySum {
		return res, fmt.Errorf("%v result mismatch: (%d, %d) vs (%d, %d) expected",
			p.Engine, res.NOutput, res.KeySum, p.Pair.ExpectedMatches, p.Pair.KeySum)
	}
	return res, nil
}
