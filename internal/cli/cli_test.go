package cli

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"hashjoin/internal/arena"

	"hashjoin/internal/core"
	"hashjoin/internal/engine"
	"hashjoin/internal/memsim"
	"hashjoin/internal/native"
	"hashjoin/internal/sched"
	"hashjoin/internal/spill"
	"hashjoin/internal/workload"
)

func TestParseEngine(t *testing.T) {
	cases := []struct {
		in      string
		want    engine.Backend
		wantErr bool
	}{
		{"sim", engine.Sim, false},
		{"native", engine.Native, false},
		{"", 0, true},
		{"SIM", 0, true},
		{"hardware", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseEngine(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseEngine(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseHierarchy(t *testing.T) {
	cases := []struct {
		in      string
		want    memsim.Config
		wantErr bool
	}{
		{"small", memsim.SmallConfig(), false},
		{"es40", memsim.ES40Config(), false},
		{"", memsim.Config{}, true},
		{"ES40", memsim.Config{}, true},
		{"big", memsim.Config{}, true},
	}
	for _, tc := range cases {
		got, err := ParseHierarchy(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseHierarchy(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseHierarchy(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseScheme(t *testing.T) {
	cases := []struct {
		in      string
		want    core.Scheme
		wantErr bool
	}{
		{"baseline", core.SchemeBaseline, false},
		{"simple", core.SchemeSimple, false},
		{"group", core.SchemeGroup, false},
		{"pipelined", core.SchemePipelined, false},
		{"plan", 0, true}, // plan is only valid through ParsePlanScheme
		{"combined", 0, true},
		{"Group", 0, true},
		{"", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseScheme(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseScheme(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseScheme(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParsePlanScheme(t *testing.T) {
	if _, usePlan, err := ParsePlanScheme("plan"); err != nil || !usePlan {
		t.Errorf("ParsePlanScheme(plan) = usePlan %v, err %v; want true, nil", usePlan, err)
	}
	if s, usePlan, err := ParsePlanScheme("group"); err != nil || usePlan || s != core.SchemeGroup {
		t.Errorf("ParsePlanScheme(group) = (%v, %v, %v); want (group, false, nil)", s, usePlan, err)
	}
	if _, _, err := ParsePlanScheme("bogus"); err == nil {
		t.Error("ParsePlanScheme(bogus): expected error")
	}
}

func TestParseSchemeList(t *testing.T) {
	cases := []struct {
		in      string
		want    []core.Scheme
		wantErr bool
	}{
		{"baseline,group,pipelined", []core.Scheme{core.SchemeBaseline, core.SchemeGroup, core.SchemePipelined}, false},
		{" group , baseline ", []core.Scheme{core.SchemeGroup, core.SchemeBaseline}, false},
		{"group", []core.Scheme{core.SchemeGroup}, false},
		{"group,bogus", nil, true},
		{"", nil, true},
		{"group,,baseline", nil, true},
	}
	for _, tc := range cases {
		got, err := ParseSchemeList(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseSchemeList(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseSchemeList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNativeScheme(t *testing.T) {
	cases := []struct {
		in   core.Scheme
		want native.Scheme
	}{
		{core.SchemeBaseline, native.Baseline},
		{core.SchemeSimple, native.Baseline}, // no native analog of page prefetch
		{core.SchemeGroup, native.Group},
		{core.SchemeCombined, native.Group},
		{core.SchemePipelined, native.Pipelined},
	}
	for _, tc := range cases {
		if got := NativeScheme(tc.in); got != tc.want {
			t.Errorf("NativeScheme(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNormalizeFanout(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {9, 16}, {64, 64}, {65, 128},
	}
	for _, tc := range cases {
		if got := NormalizeFanout(tc.in); got != tc.want {
			t.Errorf("NormalizeFanout(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestFatalfExitCodes pins the exit-code convention: 2 for usage
// errors, 1 for runtime failures.
func TestFatalfExitCodes(t *testing.T) {
	var code int
	osExit = func(c int) { code = c }
	defer func() { osExit = os.Exit }()

	Fatalf("prog", "bad flag %q", "x")
	if code != 2 {
		t.Errorf("Fatalf exit code = %d, want 2", code)
	}
	Dief("prog", "runtime failure")
	if code != 1 {
		t.Errorf("Dief exit code = %d, want 1", code)
	}
}

// TestPipelineBothEngines runs the shared pipeline on both backends and
// checks they agree with each other and the ground truth (Run validates
// against ExpectedMatches/KeySum internally).
func TestPipelineBothEngines(t *testing.T) {
	spec := workload.Spec{NBuild: 500, TupleSize: 20, MatchesPerBuild: 2, PctMatched: 80, Seed: 21}
	var results []PipelineResult
	for _, backend := range []engine.Backend{engine.Sim, engine.Native} {
		p := Pipeline{
			Engine: backend,
			Spec:   spec,
			Scheme: core.SchemeGroup,
			Params: core.DefaultParams(),
			Fanout: 1,
		}
		res, err := p.Run()
		if err != nil {
			t.Fatalf("%v pipeline: %v", backend, err)
		}
		if backend == engine.Sim && res.Stats.Total() == 0 {
			t.Errorf("sim pipeline reported zero cycles")
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0].Groups, results[1].Groups) {
		t.Fatalf("sim and native pipelines produced different groups (%d vs %d)",
			len(results[0].Groups), len(results[1].Groups))
	}
}

// TestPipelineMismatchError forces a result mismatch by corrupting the
// ground truth, checking Run's validation path.
func TestPipelineMismatchError(t *testing.T) {
	p := Pipeline{
		Engine: engine.Native,
		Spec:   workload.Spec{NBuild: 100, TupleSize: 16, MatchesPerBuild: 1, Seed: 22},
		Scheme: core.SchemeGroup,
		Fanout: 1,
	}
	p.Materialize()
	p.Pair.ExpectedMatches++ // corrupt
	if _, err := p.Run(); err == nil {
		t.Fatal("expected a result-mismatch error")
	}
}

func TestDiePipelineBudgetBreakdown(t *testing.T) {
	var code int
	var buf bytes.Buffer
	osExit = func(c int) { code = c }
	stderr = &buf
	defer func() { osExit, stderr = os.Exit, os.Stderr }()

	err := fmt.Errorf("scheme group: %w",
		&native.BudgetError{Budget: 4096, Need: 112000, Depth: 8})
	DiePipeline("prog", err)
	if code != ExitMemory {
		t.Errorf("DiePipeline exit code = %d, want %d (memory)", code, ExitMemory)
	}
	out := buf.String()
	for _, want := range []string{
		"scheme group",
		"irreducible pair needs ~112000",
		"depth 8",
		"-no-spill",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stderr missing %q:\n%s", want, out)
		}
	}
}

func TestDiePipelineOOMBreakdown(t *testing.T) {
	var code int
	var buf bytes.Buffer
	osExit = func(c int) { code = c }
	stderr = &buf
	defer func() { osExit, stderr = os.Exit, os.Stderr }()

	DiePipeline("prog", &arena.OOMError{
		Need: 4096, Align: 64, Used: 60000, Cap: 65536,
		Durable: 40000, ScopeHeld: []uint64{12000, 8000},
	})
	if code != ExitMemory {
		t.Errorf("DiePipeline exit code = %d, want %d (memory)", code, ExitMemory)
	}
	out := buf.String()
	for _, want := range []string{
		"60000 bytes used of 65536",
		"40000 bytes durable",
		"2 open scope(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stderr missing %q:\n%s", want, out)
		}
	}
}

func TestPipelineErrorDetailPlainError(t *testing.T) {
	if lines := PipelineErrorDetail(fmt.Errorf("plain failure")); len(lines) != 0 {
		t.Errorf("plain error produced detail lines: %v", lines)
	}
}

// TestExitCodeFor pins the exit-code taxonomy: cancellation and memory
// failures are distinguishable from each other and from generic
// failures without parsing stderr.
func TestExitCodeFor(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"plain", fmt.Errorf("boom"), ExitFailure},
		{"mismatch", fmt.Errorf("result mismatch"), ExitFailure},
		{"budget", &native.BudgetError{Budget: 1, Need: 2, Depth: 8}, ExitMemory},
		{"oom", &arena.OOMError{Need: 1, Cap: 1}, ExitMemory},
		{"wrapped oom", fmt.Errorf("run: %w", &arena.OOMError{Need: 1, Cap: 1}), ExitMemory},
		{"raw ctx", context.Canceled, ExitCancelled},
		{"deadline", context.DeadlineExceeded, ExitCancelled},
		{"cancel error", &native.CancelError{Cause: context.DeadlineExceeded}, ExitCancelled},
		{"shed too-large", &sched.AdmissionError{Reason: sched.TooLarge, Planned: 2, Limit: 1}, ExitMemory},
		{"shed queue-full", &sched.AdmissionError{Reason: sched.QueueFull}, ExitFailure},
		{"shed draining", &sched.AdmissionError{Reason: sched.Draining}, ExitFailure},
		{"shed timeout", &sched.AdmissionError{Reason: sched.Timeout, Cause: context.DeadlineExceeded}, ExitCancelled},
		// Spill unavailability is a retryable failure, not a memory-class
		// one: the query was fine, the host's disks were not.
		{"spill unavailable", spill.Unavailable("/a,/b", nil), ExitFailure},
	}
	for _, tc := range cases {
		if got := ExitCodeFor(tc.err); got != tc.want {
			t.Errorf("ExitCodeFor(%s) = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestStatusName pins the wire-protocol status words onto the exit
// codes, both directions of the hjserve mapping.
func TestStatusName(t *testing.T) {
	want := map[int]string{
		ExitOK:        "ok",
		ExitFailure:   "failure",
		ExitUsage:     "usage",
		ExitMemory:    "memory",
		ExitCancelled: "cancelled",
		ExitInternal:  "internal",
		ExitProtocol:  "protocol",
		99:            "failure",
	}
	for code, name := range want {
		if got := StatusName(code); got != name {
			t.Errorf("StatusName(%d) = %q, want %q", code, got, name)
		}
	}
}

// TestPipelineErrorDetailAdmission checks each shed reason yields a
// diagnostic line.
func TestPipelineErrorDetailAdmission(t *testing.T) {
	for _, reason := range []sched.Reason{sched.TooLarge, sched.QueueFull, sched.Timeout, sched.Draining} {
		lines := PipelineErrorDetail(&sched.AdmissionError{Reason: reason, Planned: 2, Limit: 1})
		if len(lines) == 0 {
			t.Errorf("no detail for shed reason %v", reason)
		}
	}
}

// TestDiePipelineCancelBreakdown checks a deadline failure exits with
// the cancellation code and prints the progress detail.
func TestDiePipelineCancelBreakdown(t *testing.T) {
	var code int
	var buf bytes.Buffer
	osExit = func(c int) { code = c }
	stderr = &buf
	defer func() { osExit, stderr = os.Exit, os.Stderr }()

	DiePipeline("prog", &native.CancelError{
		Cause: context.DeadlineExceeded, PairsDone: 3, PairsTotal: 8,
		RowsOut: 120, Elapsed: 250 * time.Millisecond,
	})
	if code != ExitCancelled {
		t.Errorf("DiePipeline exit code = %d, want %d (cancelled)", code, ExitCancelled)
	}
	out := buf.String()
	for _, want := range []string{"3 of 8 partition pairs", "-timeout"} {
		if !strings.Contains(out, want) {
			t.Errorf("stderr missing %q:\n%s", want, out)
		}
	}
}

// TestPipelineRunTimeout drives the shared pipeline with an expired
// context on both backends: the run must fail with a cancellation-class
// error, never report a result mismatch.
func TestPipelineRunTimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, backend := range []engine.Backend{engine.Sim, engine.Native} {
		p := Pipeline{
			Engine: backend,
			Spec:   workload.Spec{NBuild: 300, TupleSize: 16, MatchesPerBuild: 1, Seed: 5},
			Scheme: core.SchemeGroup,
			Fanout: 1,
			Ctx:    ctx,
		}
		_, err := p.Run()
		if err == nil {
			t.Fatalf("%v: cancelled run returned nil error", backend)
		}
		if ExitCodeFor(err) != ExitCancelled {
			t.Errorf("%v: ExitCodeFor(%v) = %d, want %d", backend, err, ExitCodeFor(err), ExitCancelled)
		}
	}
}

// TestPipelineSpillRun drives the shared pipeline through the spill
// tier: an irreducibly skewed workload under an infeasible budget must
// validate and report spill I/O.
func TestPipelineSpillRun(t *testing.T) {
	p := &Pipeline{
		Engine: engine.Native,
		Spec:   workload.Spec{NBuild: 800, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Skew: 800, Seed: 7},
		Scheme: core.SchemeGroup,
		Fanout: 2, Workers: 2,
		MemBudget: 4 << 10,
		SpillDir:  t.TempDir(),
	}
	res, err := p.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SpilledPartitions == 0 || res.SpillBytesWritten == 0 {
		t.Fatalf("skewed budgeted run did not spill: %+v", res)
	}
}
