package core

import (
	"hashjoin/internal/hash"
)

// Software-pipelined aggregation: the section 5 schedule applied to the
// group-by upsert. Stages mirror probePipelined (header -> cells ->
// record) with the build-side waiting-queue mechanics for structural
// inserts: the bucket's busy word stores the circular-array index + 1 of
// the tuple inserting into it, and later tuples for the same bucket
// queue behind it.

type aggPipeState struct {
	aggState
	waitNext int
	waiting  bool
	done     bool
}

// runPipelined is software-pipelined aggregation (k = 3).
func (ag *aggregator) runPipelined(d int) {
	m := ag.m
	a := m.A
	size := nextPow2(3*d + 1)
	mask := size - 1
	states := make([]aggPipeState, size)
	cur := newCursor(ag.input)
	total := ag.input.NTuples

	for it := 0; it-3*d < total; it++ {
		// Stage 0: read key+value, hash, prefetch header.
		if it < total {
			page, slot, ok := cur.next(m, true)
			if !ok {
				panic("core: cursor ended before NTuples")
			}
			st := &states[it&mask]
			m.Compute(CostLoop + CostStatePipe)
			st.key, st.value, st.code, st.header = ag.readKeyValue(page, slot)
			st.active, st.pending, st.rec, st.cells = true, false, 0, 0
			st.waiting, st.done, st.waitNext = false, false, -1
			m.Prefetch(st.header)
		}

		// Stage 1: visit header; queue on busy buckets; prefetch the
		// inline record or the cell array.
		if k := it - d; k >= 0 && k < total {
			st := &states[k&mask]
			m.Compute(CostStatePipe)
			m.S.Read(st.header, 32)
			m.Compute(CostVisitHeader)
			if busy := a.U32(st.header + hash.HOffBusy); busy != 0 {
				m.Compute(CostStatePipe)
				w := int(busy) - 1
				for states[w].waitNext != -1 {
					w = states[w].waitNext
				}
				states[w].waitNext = k & mask
				st.waiting = true
			} else {
				st.count = a.U32(st.header + hash.HOffCount)
				if st.count > 0 && a.U32(st.header+hash.HOffCode0) == st.code {
					st.rec = a.U64(st.header + hash.HOffTuple0)
					m.Prefetch(st.rec)
				}
				if st.count > 1 {
					st.cells = a.U64(st.header + hash.HOffCells)
					m.PrefetchRange(st.cells, int(st.count-1)*hash.CellSize)
				}
			}
		}

		// Stage 2: scan cells for tuples without an inline candidate;
		// claim the bucket when the group does not exist yet.
		if k := it - 2*d; k >= 0 && k < total {
			st := &states[k&mask]
			if st.active && !st.waiting && !st.done {
				m.Compute(CostStatePipe)
				if st.rec == 0 && st.cells != 0 {
					m.S.Read(st.cells, int(st.count-1)*hash.CellSize)
					for j := 0; j < int(st.count-1); j++ {
						c := hash.CellAddr(st.cells, j)
						m.Compute(CostVisitCell)
						if a.U32(c+hash.CellOffCode) == st.code {
							st.rec = a.U64(c + hash.CellOffTuple)
							m.Prefetch(st.rec)
							break
						}
					}
				}
				if st.rec == 0 {
					// Unlike the build loop, the miss is only known
					// after the cell scan, so the bucket may have been
					// claimed since stage 1 — possibly by an earlier
					// tuple of this very group. Queue behind the claimer
					// rather than double-inserting.
					if busy := a.U32(st.header + hash.HOffBusy); busy != 0 {
						m.Compute(CostStatePipe)
						w := int(busy) - 1
						for states[w].waitNext != -1 {
							w = states[w].waitNext
						}
						states[w].waitNext = k & mask
						st.waiting = true
					} else {
						// Claim for a structural insert; tuples arriving
						// later queue behind this slot.
						m.S.Write(st.header+hash.HOffBusy, 4)
						a.PutU32(st.header+hash.HOffBusy, uint32(k&mask)+1)
						st.pending = true
					}
				}
			}
		}

		// Stage 3: fold or insert; release the bucket and drain waiters.
		if k := it - 3*d; k >= 0 && k < total {
			st := &states[k&mask]
			if st.active && !st.waiting && !st.done {
				m.Compute(CostStatePipe)
				switch {
				case st.pending:
					ag.insertGroup(st.header, st.key, st.value, st.code, a.U32(st.header+hash.HOffCount))
					m.S.Write(st.header+hash.HOffBusy, 4)
					a.PutU32(st.header+hash.HOffBusy, 0)
				case ag.foldIfMatch(st.rec, st.key, st.value):
				default:
					// Hash-code filter false positive: full upsert.
					ag.upsert(st.header, st.key, st.value, st.code)
				}
			}
			// Drain the waiting queue even when this slot merely folded:
			// waiters queued on it because its claim was visible.
			for w := st.waitNext; w != -1; {
				ws := &states[w]
				m.Compute(CostStatePipe)
				ag.upsert(ws.header, ws.key, ws.value, ws.code)
				ws.waiting = false
				ws.done = true
				next := ws.waitNext
				ws.waitNext = -1
				w = next
			}
			st.waitNext = -1
		}
	}
}
