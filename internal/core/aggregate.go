package core

import (
	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// Hash-based group-by aggregation — the paper's conclusion singles it
// out as a direct beneficiary of the same techniques ("we believe that
// our techniques can improve other hash-based algorithms such as
// hash-based group-by and aggregation algorithms"). Each input tuple is
// hashed on its key and folded into a per-group accumulator. The
// dependent reference chain per tuple is bucket header -> hash cell
// array -> accumulator record (k = 3), the same shape as probing, with
// an upsert twist: a tuple for an unseen group inserts a new cell and
// record, which requires the build-side busy-flag protection once
// processing is reorganized.
//
// Accumulator record layout (32 bytes, cache-line aligned pairs):
//
//	+0  u32 group key
//	+8  u64 count
//	+16 u64 sum (of the 4-byte value at tuple offset 4)
const (
	aggRecSize  = 32
	aggOffKey   = 0
	aggOffCount = 8
	aggOffSum   = 16

	// CostAggUpdate is the ALU work of folding one tuple into a record.
	CostAggUpdate = 4
)

// AggResult reports an aggregation run.
type AggResult struct {
	NGroups int
	Stats   memsim.Stats

	table hash.Table
	mem   *vmem.Mem
}

// Each iterates over (key, count, sum) per group. Untimed.
func (r AggResult) Each(fn func(key uint32, count, sum uint64)) {
	a := r.mem.A
	for b := 0; b < r.table.NBuckets; b++ {
		h := r.table.HeaderAddr(b)
		count := a.U32(h + hash.HOffCount)
		if count == 0 {
			continue
		}
		emit := func(rec arena.Addr) {
			fn(a.U32(rec+aggOffKey), a.U64(rec+aggOffCount), a.U64(rec+aggOffSum))
		}
		emit(a.U64(h + hash.HOffTuple0))
		if count > 1 {
			cells := a.U64(h + hash.HOffCells)
			for j := 0; j < int(count-1); j++ {
				emit(a.U64(hash.CellAddr(cells, j) + hash.CellOffTuple))
			}
		}
	}
}

// aggregator carries one run's state.
type aggregator struct {
	m        *vmem.Mem
	input    *storage.Relation
	table    hash.Table
	valueOff int
	nGroups  int
}

// Aggregate groups input by join key, computing count and sum of the
// 4-byte value at tuple offset 4, under the given scheme (any of
// baseline, simple, group, or software-pipelined prefetching).
// expectedGroups sizes the hash table.
func Aggregate(m *vmem.Mem, input *storage.Relation, expectedGroups int, scheme Scheme, params Params) AggResult {
	return AggregateAt(m, input, expectedGroups, 4, scheme, params)
}

// AggregateAt is Aggregate with an explicit byte offset of the 4-byte
// summed value within each tuple (Aggregate assumes it directly follows
// the key).
func AggregateAt(m *vmem.Mem, input *storage.Relation, expectedGroups, valueOff int, scheme Scheme, params Params) AggResult {
	if valueOff < 4 || input.Schema.FixedWidth() < valueOff+4 {
		panic("core: aggregation value offset outside the tuple")
	}
	params = params.normalized()
	ag := &aggregator{
		m:        m,
		input:    input,
		valueOff: valueOff,
		table:    hash.NewTable(m.A, hash.SizeFor(expectedGroups, 1)),
	}
	pre := m.S.Stats()
	switch scheme {
	case SchemeBaseline, SchemeSimple:
		ag.runBaseline(scheme == SchemeSimple)
	case SchemeGroup:
		ag.runGroup(params.G)
	case SchemePipelined:
		ag.runPipelined(params.D)
	default:
		panic("core: unsupported aggregation scheme")
	}
	return AggResult{
		NGroups: ag.nGroups,
		Stats:   m.S.Stats().Sub(pre),
		table:   ag.table,
		mem:     m,
	}
}

// readKeyValue loads a tuple's key and 4-byte value (sequential page
// data) and computes its hash code and bucket.
func (ag *aggregator) readKeyValue(page, slot arena.Addr) (key, value, code uint32, header arena.Addr) {
	m := ag.m
	m.S.Read(slot, storage.SlotSize)
	off := m.A.U16(slot + storage.SlotOffOffset)
	tuple := page + arena.Addr(off)
	m.S.Read(tuple, 4)
	key = m.A.U32(tuple)
	m.S.Read(tuple+arena.Addr(ag.valueOff), 4)
	value = m.A.U32(tuple + arena.Addr(ag.valueOff))
	m.Compute(CostHashKey)
	code = hash.CodeU32(key)
	m.Compute(CostMod)
	header = ag.table.HeaderAddr(hash.BucketOf(code, ag.table.NBuckets))
	return key, value, code, header
}

// upsert finds or creates the group's record and folds the value in.
// The bucket's cache state is whatever the caller arranged; all accesses
// are timed.
func (ag *aggregator) upsert(header arena.Addr, key, value, code uint32) {
	m := ag.m
	a := m.A
	m.S.Read(header, 32)
	m.Compute(CostVisitHeader)
	count := a.U32(header + hash.HOffCount)

	if count > 0 {
		if a.U32(header+hash.HOffCode0) == code {
			rec := a.U64(header + hash.HOffTuple0)
			if ag.foldIfMatch(rec, key, value) {
				return
			}
		}
		if count > 1 {
			cells := a.U64(header + hash.HOffCells)
			m.S.Read(cells, int(count-1)*hash.CellSize)
			for j := 0; j < int(count-1); j++ {
				c := hash.CellAddr(cells, j)
				m.Compute(CostVisitCell)
				if a.U32(c+hash.CellOffCode) == code {
					if ag.foldIfMatch(a.U64(c+hash.CellOffTuple), key, value) {
						return
					}
				}
			}
		}
	}
	ag.insertGroup(header, key, value, code, count)
}

// foldIfMatch updates the record when its group key equals key.
func (ag *aggregator) foldIfMatch(rec arena.Addr, key, value uint32) bool {
	m := ag.m
	m.S.Read(rec, 4)
	m.Compute(CostCompare)
	if m.A.U32(rec+aggOffKey) != key {
		return false
	}
	m.S.Read(rec+aggOffCount, 16)
	m.Compute(CostAggUpdate)
	m.S.Write(rec+aggOffCount, 16)
	m.A.PutU64(rec+aggOffCount, m.A.U64(rec+aggOffCount)+1)
	m.A.PutU64(rec+aggOffSum, m.A.U64(rec+aggOffSum)+uint64(value))
	return true
}

// insertGroup allocates a record for a new group and links a cell to it.
// The header has already been visited.
func (ag *aggregator) insertGroup(header arena.Addr, key, value, code uint32, count uint32) {
	m := ag.m
	a := m.A
	rec := m.Alloc(aggRecSize, 32)
	m.S.Write(rec, aggRecSize)
	a.PutU32(rec+aggOffKey, key)
	a.PutU64(rec+aggOffCount, 1)
	a.PutU64(rec+aggOffSum, uint64(value))
	ag.nGroups++

	if count == 0 {
		m.S.Write(header, 16)
		a.PutU32(header+hash.HOffCode0, code)
		a.PutU64(header+hash.HOffTuple0, rec)
		a.PutU32(header+hash.HOffCount, 1)
		return
	}
	j := &joiner{m: m, table: ag.table}
	j.appendCellTimed(header, code, rec)
}

// runBaseline is one upsert per tuple.
func (ag *aggregator) runBaseline(simple bool) {
	m := ag.m
	cur := newCursor(ag.input)
	for {
		page, slot, ok := cur.next(m, simple)
		if !ok {
			return
		}
		m.Compute(CostLoop)
		key, value, code, header := ag.readKeyValue(page, slot)
		ag.upsert(header, key, value, code)
	}
}

// aggState carries one tuple across the group-prefetching stages.
type aggState struct {
	key, value, code uint32
	header           arena.Addr

	count   uint32
	cells   arena.Addr
	rec     arena.Addr // matched record, 0 if not yet found
	pending bool       // structural insert planned (bucket busy-held)
	active  bool
}

// runGroup is group-prefetched aggregation. Stages mirror probing
// (header -> cells -> record) with the build-side busy flag guarding
// structural inserts: a tuple that finds no matching group marks the
// bucket busy in stage 2 and inserts in stage 3; a tuple that meets a
// busy bucket anywhere is delayed to the group boundary (its group may
// be created by an earlier tuple of the same batch).
func (ag *aggregator) runGroup(g int) {
	m := ag.m
	a := m.A
	states := make([]aggState, g)
	delayed := make([]int, 0, g)
	cur := newCursor(ag.input)

	for {
		// Stage 0: read key+value, hash, prefetch header.
		n := 0
		for n < g {
			page, slot, ok := cur.next(m, true)
			if !ok {
				break
			}
			st := &states[n]
			m.Compute(CostLoop + CostStateGroup)
			st.key, st.value, st.code, st.header = ag.readKeyValue(page, slot)
			st.active, st.pending, st.rec, st.cells = true, false, 0, 0
			m.Prefetch(st.header)
			n++
		}
		if n == 0 {
			return
		}
		delayed = delayed[:0]

		// Stage 1: visit headers; prefetch the inline record or the cell
		// array; busy buckets are delayed outright.
		for i := 0; i < n; i++ {
			st := &states[i]
			m.Compute(CostStateGroup)
			m.S.Read(st.header, 32)
			m.Compute(CostVisitHeader)
			if a.U32(st.header+hash.HOffBusy) != 0 {
				delayed = append(delayed, i)
				st.active = false
				continue
			}
			st.count = a.U32(st.header + hash.HOffCount)
			if st.count > 0 && a.U32(st.header+hash.HOffCode0) == st.code {
				st.rec = a.U64(st.header + hash.HOffTuple0)
				m.Prefetch(st.rec)
			}
			if st.count > 1 {
				st.cells = a.U64(st.header + hash.HOffCells)
				m.PrefetchRange(st.cells, int(st.count-1)*hash.CellSize)
			}
		}

		// Stage 2: scan cell arrays for tuples without an inline match;
		// prefetch matched records; claim the bucket for misses.
		for i := 0; i < n; i++ {
			st := &states[i]
			if !st.active {
				continue
			}
			m.Compute(CostStateGroup)
			if st.rec == 0 && st.cells != 0 {
				m.S.Read(st.cells, int(st.count-1)*hash.CellSize)
				for j := 0; j < int(st.count-1); j++ {
					c := hash.CellAddr(st.cells, j)
					m.Compute(CostVisitCell)
					if a.U32(c+hash.CellOffCode) == st.code {
						st.rec = a.U64(c + hash.CellOffTuple)
						m.Prefetch(st.rec)
						break
					}
				}
			}
			if st.rec == 0 {
				// No group with this hash code: plan a structural insert
				// and hold the bucket so later tuples of this batch
				// (possibly the same new group) wait for it.
				if a.U32(st.header+hash.HOffBusy) != 0 {
					delayed = append(delayed, i)
					st.active = false
					continue
				}
				m.S.Write(st.header+hash.HOffBusy, 4)
				a.PutU32(st.header+hash.HOffBusy, 1)
				st.pending = true
			}
		}

		// Stage 3: fold values into records; perform planned inserts.
		// A hash-code match can still be a different key (filter false
		// positive): fall back to the full upsert path.
		for i := 0; i < n; i++ {
			st := &states[i]
			if !st.active {
				continue
			}
			m.Compute(CostStateGroup)
			switch {
			case st.pending:
				ag.insertGroup(st.header, st.key, st.value, st.code, a.U32(st.header+hash.HOffCount))
				m.S.Write(st.header+hash.HOffBusy, 4)
				a.PutU32(st.header+hash.HOffBusy, 0)
			case ag.foldIfMatch(st.rec, st.key, st.value):
			default:
				ag.upsert(st.header, st.key, st.value, st.code)
			}
		}

		// Group boundary: delayed tuples run the plain upsert on settled,
		// cache-warm buckets.
		for _, i := range delayed {
			st := &states[i]
			m.Compute(CostStateGroup)
			ag.upsert(st.header, st.key, st.value, st.code)
		}

		if n < g {
			return
		}
	}
}
