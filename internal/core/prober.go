package core

import (
	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// Prober is the incremental, pipeline-friendly face of the group-
// prefetched join phase. Section 5.4 of the paper observes that group
// prefetching's natural group boundary lets the join "pause ... and send
// outputs to the parent operator to support pipelined query processing";
// a Prober does exactly that: the hash table is built once (group-
// prefetched), then the parent feeds probe tuples in batches of G and
// receives matches through a callback at each group boundary.
type Prober struct {
	m      *vmem.Mem
	table  hash.Table
	params Params

	buildLen int
	states   []probeState
}

// ProbeTuple identifies one probe tuple for a batch: its address,
// length, and memoized hash code.
type ProbeTuple struct {
	Addr arena.Addr
	Len  int
	Code uint32
}

// NewProber builds the hash table over build with group prefetching and
// returns a Prober whose batch size is params.G.
func NewProber(m *vmem.Mem, build *storage.Relation, params Params) *Prober {
	if build.Schema.HasVar() {
		panic("core: prober requires fixed-width build schemas")
	}
	params = params.normalized()
	p := &Prober{
		m:        m,
		params:   params,
		buildLen: build.Schema.FixedWidth(),
		states:   make([]probeState, params.G),
	}
	for i := range p.states {
		p.states[i].matches = make([]arena.Addr, 0, 4)
	}
	j := &joiner{
		m:      m,
		build:  build,
		table:  hash.NewTable(m.A, hash.SizeFor(build.NTuples, 1)),
		scheme: SchemeGroup,
		params: params,
	}
	j.buildGroup()
	p.table = j.table
	return p
}

// BatchSize returns the group size G: callers feed at most this many
// tuples per ProbeBatch call for full latency hiding.
func (p *Prober) BatchSize() int { return p.params.G }

// BuildLen returns the fixed width of build tuples.
func (p *Prober) BuildLen() int { return p.buildLen }

// ProbeBatch runs one group-prefetched probe pass over tuples (at most
// BatchSize of them), invoking emit for every key match. Emit runs at
// the group boundary, so the parent operator's work overlaps nothing.
func (p *Prober) ProbeBatch(tuples []ProbeTuple, emit func(build arena.Addr, buildLen int, probe ProbeTuple)) {
	if len(tuples) > len(p.states) {
		panic("core: probe batch exceeds group size")
	}
	m := p.m
	a := m.A
	n := len(tuples)

	// Stage 0: bucket numbers and header prefetches.
	for i := 0; i < n; i++ {
		st := &p.states[i]
		m.Compute(CostLoop + CostStateGroup + CostMod)
		st.tuple = tuples[i].Addr
		st.length = tuples[i].Len
		st.code = tuples[i].Code
		st.header = p.table.HeaderAddr(hash.BucketOf(st.code, p.table.NBuckets))
		st.active = true
		st.matches = st.matches[:0]
		m.Prefetch(st.header)
	}

	// Stage 1: visit headers; prefetch cell arrays and inline matches.
	for i := 0; i < n; i++ {
		st := &p.states[i]
		m.Compute(CostStateGroup)
		m.S.Read(st.header, 16)
		m.Compute(CostVisitHeader)
		st.count = a.U32(st.header + hash.HOffCount)
		st.cells = 0
		if st.count == 0 {
			st.active = false
			continue
		}
		if a.U32(st.header+hash.HOffCode0) == st.code {
			bt := a.U64(st.header + hash.HOffTuple0)
			st.matches = append(st.matches, bt)
			m.PrefetchRange(bt, p.buildLen)
		}
		if st.count > 1 {
			m.S.Read(st.header+hash.HOffCells, 8)
			st.cells = a.U64(st.header + hash.HOffCells)
			m.PrefetchRange(st.cells, int(st.count-1)*hash.CellSize)
		}
	}

	// Stage 2: scan cell arrays; prefetch matching build tuples.
	for i := 0; i < n; i++ {
		st := &p.states[i]
		if !st.active || st.cells == 0 {
			continue
		}
		m.Compute(CostStateGroup)
		m.S.Read(st.cells, int(st.count-1)*hash.CellSize)
		for k := 0; k < int(st.count-1); k++ {
			c := hash.CellAddr(st.cells, k)
			m.Compute(CostVisitCell)
			if a.U32(c+hash.CellOffCode) == st.code {
				bt := a.U64(c + hash.CellOffTuple)
				st.matches = append(st.matches, bt)
				m.PrefetchRange(bt, p.buildLen)
			}
		}
	}

	// Stage 3 / group boundary: compare keys, hand matches to the
	// parent.
	for i := 0; i < n; i++ {
		st := &p.states[i]
		if !st.active {
			continue
		}
		m.Compute(CostStateGroup)
		for _, bt := range st.matches {
			m.S.Read(bt, 4)
			m.S.Read(st.tuple, 4)
			m.Compute(CostCompare)
			if a.U32(bt) == a.U32(st.tuple) {
				emit(bt, p.buildLen, ProbeTuple{Addr: st.tuple, Len: st.length, Code: st.code})
			}
		}
	}
}
