// Package core implements the paper's contribution: the GRACE hash join
// partition and join phases in four variants each — the baseline, simple
// prefetching, group prefetching (section 4), and software-pipelined
// prefetching (section 5) — plus the cache-partitioning comparators
// ("direct cache" and "two-step cache", section 7.5).
//
// Every algorithm runs against a vmem.Mem: real bytes move through a
// simulated address space while a cycle-level memory-hierarchy simulator
// charges time. Prefetch scheduling therefore has exactly the semantics
// the paper studies: a prefetch issued (G-1)·C cycles before its visit
// hides the miss; one issued too late exposes the remainder; too many
// outstanding prefetches cause conflict misses.
package core

import "fmt"

// Scheme selects a prefetching strategy for a phase.
type Scheme int

const (
	// SchemeBaseline is the unmodified GRACE algorithm.
	SchemeBaseline Scheme = iota
	// SchemeSimple prefetches each input page right after its disk read
	// (the paper's enhanced baseline).
	SchemeSimple
	// SchemeGroup is group prefetching: G-element groups processed in
	// stages, prefetching each stage's memory references one stage ahead
	// (section 4).
	SchemeGroup
	// SchemePipelined is software-pipelined prefetching with prefetch
	// distance D (section 5).
	SchemePipelined
	// SchemeCombined, valid for the partition phase only, picks
	// SchemeSimple when all output buffers fit in the secondary cache
	// and SchemeGroup otherwise (section 7.4).
	SchemeCombined
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeBaseline:
		return "baseline"
	case SchemeSimple:
		return "simple"
	case SchemeGroup:
		return "group"
	case SchemePipelined:
		return "pipelined"
	case SchemeCombined:
		return "combined"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Params tunes the prefetching schemes. The paper's join-phase optima at
// T=150 are G=19 and D=1 (section 7.3).
type Params struct {
	G int // group size for SchemeGroup
	D int // prefetch distance for SchemePipelined

	// RecomputeHash disables the section 7.1 optimization of reusing the
	// hash codes memoized in intermediate-partition slots: the join
	// phase re-reads each join key and re-hashes it. Ablation only.
	RecomputeHash bool
}

// DefaultParams returns the paper's tuned parameters.
func DefaultParams() Params { return Params{G: 19, D: 1} }

// normalized clamps parameters to sane minimums.
func (p Params) normalized() Params {
	if p.G < 1 {
		p.G = DefaultParams().G
	}
	if p.D < 1 {
		p.D = DefaultParams().D
	}
	return p
}

// Simulated instruction costs, in cycles, of the code stages between
// memory references. These are the paper's C_i quantities (Table 1):
// code 0 computes the hash bucket number (for the join phase the hash
// code itself is memoized in the slot, so code 0 is the modulo — an
// integer division, whose latency the paper takes from the Pentium 4);
// later stages test, compare, and copy.
const (
	CostLoop        = 3  // per-tuple loop control
	CostHashKey     = 12 // XOR-and-shift hash of a 4-byte key
	CostMod         = 25 // integer division for partition/bucket number
	CostVisitHeader = 3  // examine bucket header fields
	CostVisitCell   = 2  // examine one hash cell
	CostCompare     = 4  // key comparison beyond the loads themselves
	CostStateGroup  = 2  // group-prefetching per-stage bookkeeping
	CostStatePipe   = 4  // software-pipelining bookkeeping (modular
	// indexing, circular state array, waiting queues) — the larger
	// overhead the paper attributes to software pipelining (section 5.4)
	CostAllocCells = 30 // allocate/grow a hash-cell array
	CostBufferSwap = 40 // retire a full output page to the storage layer
)
