package core

import (
	"fmt"

	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// Partition phase (paper section 6). The input relation streams through
// and every tuple is hashed on its join key, projected, and copied into
// the output buffer of its target partition; full buffers are written
// out (variable-length tuples are supported: each slot records its
// length). With few partitions all buffers fit in cache and simple
// prefetching suffices; with many partitions every buffer-header visit
// is a cache miss — the same dependent-reference structure as the join
// phase, amenable to group and software-pipelined prefetching. The
// computed hash code is memoized in the output slot (section 7.1) so the
// join phase never recomputes it.
//
// Read-write conflicts (section 6): reorganized processing may find a
// full buffer whose earlier tuple's bytes have not been copied yet.
// Group prefetching defers the write-out to the group boundary;
// software-pipelined prefetching queues the tuple on the buffer and
// drains the queue when the buffer's in-flight writers reach zero.

// PartitionResult reports a partition phase run.
type PartitionResult struct {
	Partitions []*storage.Relation
	Stats      memsim.Stats
	PageOuts   int    // simulated page write-outs
	SchemeUsed Scheme // resolved scheme (interesting for SchemeCombined)
}

// partitioner carries one partition run's state.
type partitioner struct {
	m      *vmem.Mem
	input  *storage.Relation
	nParts int

	buffers  []arena.Addr // one output page per partition
	parts    []*storage.Relation
	pageSize int
	pageOuts int
}

// PartitionRelation divides input into nParts partitions using the given
// scheme. SchemeCombined resolves to SchemeSimple when the output
// buffers fit in the secondary cache of m's simulator, else SchemeGroup
// (section 7.4).
func PartitionRelation(m *vmem.Mem, input *storage.Relation, nParts int, scheme Scheme, params Params) PartitionResult {
	if nParts < 1 {
		panic("core: need at least one partition")
	}
	params = params.normalized()
	p := &partitioner{
		m:        m,
		input:    input,
		nParts:   nParts,
		pageSize: input.PageSize,
	}
	resolved := scheme
	if scheme == SchemeCombined {
		footprint := nParts * (p.pageSize + 64)
		if footprint <= m.S.Config().L2Size {
			resolved = SchemeSimple
		} else {
			resolved = SchemeGroup
		}
	}

	p.buffers = make([]arena.Addr, nParts)
	p.parts = make([]*storage.Relation, nParts)
	for i := range p.buffers {
		page := storage.AllocPage(m.A, p.pageSize, uint32(i))
		p.buffers[i] = page.Addr
		p.parts[i] = storage.NewRelation(m.A, input.Schema, p.pageSize)
	}

	pre := m.S.Stats()
	switch resolved {
	case SchemeBaseline, SchemeSimple:
		p.runBaseline(resolved == SchemeSimple)
	case SchemeGroup:
		p.runGroup(params.G)
	case SchemePipelined:
		p.runPipelined(params.D)
	default:
		panic(fmt.Sprintf("core: unknown partition scheme %v", scheme))
	}
	p.flushAll()

	return PartitionResult{
		Partitions: p.parts,
		Stats:      m.S.Stats().Sub(pre),
		PageOuts:   p.pageOuts,
		SchemeUsed: resolved,
	}
}

// hashInputTuple performs the timed per-tuple front half shared by all
// variants: read the slot and the join key, hash it, and compute the
// partition number. (The input relation may itself be a generated source
// whose slots carry hash codes; the partition phase deliberately ignores
// them — this is where codes are first computed.)
func (p *partitioner) hashInputTuple(page, slot arena.Addr) (tuple arena.Addr, length int, code uint32, part int) {
	m := p.m
	m.S.Read(slot, storage.SlotSize)
	off := m.A.U16(slot + storage.SlotOffOffset)
	length = int(m.A.U16(slot + storage.SlotOffLength))
	tuple = page + arena.Addr(off)
	key := m.ReadU32(tuple)
	m.Compute(CostHashKey)
	code = hash.CodeU32(key)
	m.Compute(CostMod)
	part = hash.PartitionOf(code, p.nParts)
	return tuple, length, code, part
}

// readHeader performs the timed load of a buffer's header — the random,
// cache-missing access of the partition phase — returning its slot count
// and free pointer.
func (p *partitioner) readHeader(buf arena.Addr) (nslots, free int) {
	p.m.S.Read(buf, 4)
	return int(p.m.A.U16(storage.NSlotsAddr(buf))), int(p.m.A.U16(storage.FreeAddr(buf)))
}

// fits reports whether a length-byte tuple fits given a header snapshot.
func (p *partitioner) fits(nslots, free, length int) bool {
	return free+length+storage.SlotSize*(nslots+1) <= p.pageSize
}

// reserve claims space in the buffer, updating its header (timed writes
// to the just-read header line).
func (p *partitioner) reserve(buf arena.Addr, nslots, free, length int) (dst, slot arena.Addr) {
	m := p.m
	m.S.Write(buf, 4)
	m.A.PutU16(buf, uint16(nslots+1))
	m.A.PutU16(buf+2, uint16(free+length))
	dst = buf + arena.Addr(free)
	slot = storage.SlotAddr(buf, p.pageSize, nslots)
	return dst, slot
}

// copyTuple writes the tuple bytes and its slot (with the memoized hash
// code) into reserved space.
func (p *partitioner) copyTuple(dst, slot, tuple arena.Addr, length int, code uint32, free int) {
	m := p.m
	m.Copy(dst, tuple, length)
	m.S.Write(slot, storage.SlotSize)
	m.A.PutU16(slot+storage.SlotOffOffset, uint16(free))
	m.A.PutU16(slot+storage.SlotOffLength, uint16(length))
	m.A.PutU32(slot+storage.SlotOffHash, code)
}

// writeOut retires a full buffer to its partition (the disk write is
// asynchronous and not part of user time; the reset is) and empties it.
func (p *partitioner) writeOut(part int) {
	m := p.m
	m.Compute(CostBufferSwap)
	page := storage.Page{A: m.A, Addr: p.buffers[part], Size: p.pageSize}
	n := page.NSlots()
	for i := 0; i < n; i++ {
		addr, length := page.TupleAddr(i)
		p.parts[part].Append(m.A.Bytes(addr, uint64(length)), page.HashCode(i))
	}
	m.S.Write(p.buffers[part], 4)
	page.Reset()
	if n > 0 {
		p.pageOuts++
	}
}

// flushAll retires every non-empty buffer at end of input.
func (p *partitioner) flushAll() {
	for i := range p.buffers {
		p.writeOut(i)
	}
}

// runBaseline is the unmodified partition loop; simple adds the
// after-disk-read page prefetch.
func (p *partitioner) runBaseline(simple bool) {
	m := p.m
	cur := newCursor(p.input)
	for {
		page, slot, ok := cur.next(m, simple)
		if !ok {
			return
		}
		m.Compute(CostLoop)
		tuple, length, code, part := p.hashInputTuple(page, slot)
		buf := p.buffers[part]
		nslots, free := p.readHeader(buf)
		if !p.fits(nslots, free, length) {
			p.writeOut(part)
			nslots, free = 0, storage.PageHeaderSize
		}
		dst, slotAddr := p.reserve(buf, nslots, free, length)
		p.copyTuple(dst, slotAddr, tuple, length, code, free)
	}
}

// partState carries one tuple's state across partition stages.
type partState struct {
	tuple  arena.Addr
	length int
	code   uint32
	part   int

	dst, slot arena.Addr
	free      int
	active    bool
}

// runGroup is group prefetching for the partition phase (k = 1: the
// buffer header is the dependent reference; tuple stores do not stall).
// Full buffers conflict with not-yet-copied reservations from the same
// group, so their write-out and insert are deferred to the group
// boundary (section 6).
func (p *partitioner) runGroup(g int) {
	m := p.m
	states := make([]partState, g)
	delayed := make([]int, 0, g)
	cur := newCursor(p.input)

	for {
		// Stage 0: hash and partition every tuple; prefetch the target
		// buffer headers.
		n := 0
		for n < g {
			page, slot, ok := cur.next(m, true)
			if !ok {
				break
			}
			st := &states[n]
			m.Compute(CostLoop + CostStateGroup)
			st.tuple, st.length, st.code, st.part = p.hashInputTuple(page, slot)
			st.active = true
			m.Prefetch(p.buffers[st.part])
			n++
		}
		if n == 0 {
			return
		}
		delayed = delayed[:0]

		// Stage 1: visit headers and reserve space. Within the stage the
		// reservations are ordered, so same-partition tuples in one group
		// compose; only the full-buffer case defers.
		for i := 0; i < n; i++ {
			st := &states[i]
			m.Compute(CostStateGroup)
			buf := p.buffers[st.part]
			nslots, free := p.readHeader(buf)
			if !p.fits(nslots, free, st.length) {
				delayed = append(delayed, i)
				st.active = false
				continue
			}
			st.free = free
			st.dst, st.slot = p.reserve(buf, nslots, free, st.length)
		}

		// Stage 2: copy the tuples into their reserved spots.
		for i := 0; i < n; i++ {
			st := &states[i]
			if !st.active {
				continue
			}
			m.Compute(CostStateGroup)
			p.copyTuple(st.dst, st.slot, st.tuple, st.length, st.code, st.free)
		}

		// Group boundary: all copies for this group have landed, so the
		// full buffers can be written out and the delayed tuples placed.
		// (An earlier delayed tuple may already have flushed the same
		// buffer, so re-check before writing out.)
		for _, i := range delayed {
			st := &states[i]
			m.Compute(CostStateGroup)
			buf := p.buffers[st.part]
			nslots, free := p.readHeader(buf)
			if !p.fits(nslots, free, st.length) {
				p.writeOut(st.part)
				nslots, free = p.readHeader(buf)
			}
			dst, slot := p.reserve(buf, nslots, free, st.length)
			p.copyTuple(dst, slot, st.tuple, st.length, st.code, free)
		}

		if n < g {
			return
		}
	}
}

// queuedTuple is a deferred insert in the software-pipelined variant.
type queuedTuple struct {
	tuple  arena.Addr
	length int
	code   uint32
}

// runPipelined is software-pipelined prefetching for the partition phase
// (k = 1, so two stages D apart). Tuples that find their buffer full
// while earlier reservations are still being copied join a per-partition
// waiting queue, drained when the buffer's in-flight count reaches zero
// (the analogue of the join phase's bucket queues, section 6).
func (p *partitioner) runPipelined(d int) {
	m := p.m
	size := nextPow2(2*d + 1)
	mask := size - 1
	states := make([]partState, size)
	inflight := make([]int, p.nParts) // reservations not yet copied
	waiting := make([][]queuedTuple, p.nParts)
	cur := newCursor(p.input)
	total := p.input.NTuples

	for it := 0; it-2*d < total; it++ {
		// Stage 0: hash + partition; prefetch the buffer header.
		if it < total {
			page, slot, ok := cur.next(m, true)
			if !ok {
				panic("core: cursor ended before NTuples")
			}
			st := &states[it&mask]
			m.Compute(CostLoop + CostStatePipe)
			st.tuple, st.length, st.code, st.part = p.hashInputTuple(page, slot)
			st.active = true
			m.Prefetch(p.buffers[st.part])
		}

		// Stage 1: visit header and reserve space. A full buffer cannot
		// be written out while reservations from earlier iterations are
		// still uncopied (the section 6 conflict), so the tuple joins the
		// partition's waiting queue instead.
		if k := it - d; k >= 0 && k < total {
			st := &states[k&mask]
			m.Compute(CostStatePipe)
			buf := p.buffers[st.part]
			nslots, free := p.readHeader(buf)
			if !p.fits(nslots, free, st.length) {
				if inflight[st.part] > 0 {
					m.Compute(CostStatePipe)
					waiting[st.part] = append(waiting[st.part], queuedTuple{st.tuple, st.length, st.code})
					st.active = false
				} else {
					p.writeOut(st.part)
					nslots, free = p.readHeader(buf)
				}
			}
			if st.active {
				st.free = free
				st.dst, st.slot = p.reserve(buf, nslots, free, st.length)
				inflight[st.part]++
			}
		}

		// Stage 2: copy into the reserved spot; when this was the last
		// in-flight writer of a buffer with queued tuples, drain them.
		if k := it - 2*d; k >= 0 && k < total {
			st := &states[k&mask]
			if st.active {
				m.Compute(CostStatePipe)
				p.copyTuple(st.dst, st.slot, st.tuple, st.length, st.code, st.free)
				inflight[st.part]--
				if inflight[st.part] == 0 && len(waiting[st.part]) > 0 {
					p.drainWaiting(st.part, waiting)
				}
			}
		}
	}
	// Any stragglers whose buffers never emptied in the steady state.
	for part := range waiting {
		if len(waiting[part]) > 0 {
			p.drainWaiting(part, waiting)
		}
	}
}

// drainWaiting writes out the buffer and places every queued tuple.
func (p *partitioner) drainWaiting(part int, waiting [][]queuedTuple) {
	m := p.m
	p.writeOut(part)
	for _, q := range waiting[part] {
		m.Compute(CostStatePipe)
		buf := p.buffers[part]
		nslots, free := p.readHeader(buf)
		if !p.fits(nslots, free, q.length) {
			p.writeOut(part)
			nslots, free = p.readHeader(buf)
		}
		dst, slot := p.reserve(buf, nslots, free, q.length)
		p.copyTuple(dst, slot, q.tuple, q.length, q.code, free)
	}
	waiting[part] = waiting[part][:0]
}
