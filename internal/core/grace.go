package core

import (
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// GRACE hash join end to end: I/O partition both relations, then join
// each build/probe partition pair with an in-memory hash table.

// GraceConfig configures an end-to-end GRACE join.
type GraceConfig struct {
	// MemBudget is the memory available to the join phase, in bytes: a
	// build partition plus its hash table must fit (paper section 7.1,
	// 50 MB in the paper's experiments). The partition count follows.
	MemBudget int

	PartScheme Scheme
	JoinScheme Scheme
	PartParams Params
	JoinParams Params

	// Keep materializes output tuples for validation.
	Keep bool

	// Check, when non-nil, is consulted before each partitioning pass
	// and before each partition-pair join. A non-nil return stops the
	// run: the result carries the error and the pairs joined so far.
	// This is how the engine layer plumbs context cancellation into the
	// simulated join without the simulator knowing about contexts.
	Check func() error
}

// GraceResult aggregates an end-to-end run.
type GraceResult struct {
	NPartitions int

	PartBuildStats memsim.Stats // partitioning the build relation
	PartProbeStats memsim.Stats // partitioning the probe relation
	JoinStats      memsim.Stats // all partition-pair joins

	NOutput int
	KeySum  uint64

	// PairsJoined counts completed partition-pair joins; it equals
	// NPartitions (or NPartitions×sub-partitions for two-step cache)
	// unless Err is set.
	PairsJoined int

	// Err is the first Check failure, if the run was cut short.
	Err error
}

// PartitionCycles returns the partition-phase total.
func (r GraceResult) PartitionCycles() uint64 {
	return r.PartBuildStats.Total() + r.PartProbeStats.Total()
}

// JoinCycles returns the join-phase total.
func (r GraceResult) JoinCycles() uint64 { return r.JoinStats.Total() }

// TotalCycles returns the end-to-end total.
func (r GraceResult) TotalCycles() uint64 { return r.PartitionCycles() + r.JoinCycles() }

// PartitionsFor computes the number of I/O partitions needed so that a
// build partition plus its hash table fits budget bytes: the paper's
// "produce partitions to fully utilize the available memory".
func PartitionsFor(build *storage.Relation, budget int) int {
	perTuple := build.Schema.FixedWidth() + storage.SlotSize + // page bytes
		hash.HeaderSize + hash.CellSize/2 // table header + amortized cells
	total := build.NTuples * perTuple
	n := (total + budget - 1) / budget
	if n < 1 {
		n = 1
	}
	return n
}

// Grace runs the full GRACE hash join.
func Grace(m *vmem.Mem, build, probe *storage.Relation, cfg GraceConfig) GraceResult {
	if cfg.MemBudget <= 0 {
		panic("core: GraceConfig.MemBudget must be positive")
	}
	n := PartitionsFor(build, cfg.MemBudget)
	return graceWithPartitions(m, build, probe, n, cfg)
}

// graceWithPartitions runs GRACE with an explicit partition count (used
// directly by the cache-partitioning comparators).
func graceWithPartitions(m *vmem.Mem, build, probe *storage.Relation, n int, cfg GraceConfig) GraceResult {
	r := GraceResult{NPartitions: n}
	if r.Err = check(cfg); r.Err != nil {
		return r
	}

	pb := PartitionRelation(m, build, n, cfg.PartScheme, cfg.PartParams)
	r.PartBuildStats = pb.Stats
	if r.Err = check(cfg); r.Err != nil {
		return r
	}
	pp := PartitionRelation(m, probe, n, cfg.PartScheme, cfg.PartParams)
	r.PartProbeStats = pp.Stats

	for i := 0; i < n; i++ {
		if r.Err = check(cfg); r.Err != nil {
			return r
		}
		jr := JoinPair(m, pb.Partitions[i], pp.Partitions[i], cfg.JoinScheme, cfg.JoinParams, n, cfg.Keep)
		r.JoinStats = r.JoinStats.Add(jr.Stats())
		r.NOutput += jr.NOutput
		r.KeySum += jr.KeySum
		r.PairsJoined++
	}
	return r
}

// check consults cfg.Check, treating a nil hook as "keep going".
func check(cfg GraceConfig) error {
	if cfg.Check == nil {
		return nil
	}
	return cfg.Check()
}
