package core

import (
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/memsim"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

var allSchemes = []Scheme{SchemeBaseline, SchemeSimple, SchemeGroup, SchemePipelined}

// runJoin joins a generated pair under one scheme on a fresh simulator.
func runJoin(t *testing.T, spec workload.Spec, scheme Scheme, params Params) (*workload.Pair, JoinResult) {
	t.Helper()
	a := arena.New(workload.ArenaBytesFor(spec))
	pair := workload.Generate(a, spec)
	m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
	res := JoinPair(m, pair.Build, pair.Probe, scheme, params, 1, false)
	return pair, res
}

func TestJoinCorrectnessAllSchemes(t *testing.T) {
	spec := workload.Spec{NBuild: 800, TupleSize: 60, MatchesPerBuild: 2, PctMatched: 80, Seed: 7}
	for _, scheme := range allSchemes {
		pair, res := runJoin(t, spec, scheme, DefaultParams())
		if res.NOutput != pair.ExpectedMatches {
			t.Errorf("%v: NOutput = %d, want %d", scheme, res.NOutput, pair.ExpectedMatches)
		}
		if res.KeySum != pair.KeySum {
			t.Errorf("%v: KeySum = %d, want %d", scheme, res.KeySum, pair.KeySum)
		}
	}
}

func TestJoinNoMatches(t *testing.T) {
	spec := workload.Spec{NBuild: 300, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 9}
	spec.NProbe = 600
	spec.PctMatched = 1 // 3 matched build tuples
	for _, scheme := range allSchemes {
		pair, res := runJoin(t, spec, scheme, DefaultParams())
		if res.NOutput != pair.ExpectedMatches {
			t.Errorf("%v: NOutput = %d, want %d", scheme, res.NOutput, pair.ExpectedMatches)
		}
	}
}

func TestJoinSkewedKeys(t *testing.T) {
	// Heavy skew grows bucket chains and forces the read-write conflict
	// machinery: busy-flag delays in group prefetching, waiting queues in
	// software pipelining.
	spec := workload.Spec{NBuild: 400, TupleSize: 20, MatchesPerBuild: 2, PctMatched: 100, Seed: 11, Skew: 40}
	for _, scheme := range allSchemes {
		pair, res := runJoin(t, spec, scheme, Params{G: 8, D: 3})
		if res.NOutput != pair.ExpectedMatches || res.KeySum != pair.KeySum {
			t.Errorf("%v under skew: got %d/%d, want %d/%d",
				scheme, res.NOutput, res.KeySum, pair.ExpectedMatches, pair.KeySum)
		}
	}
}

func TestJoinExtremeSkewSingleKey(t *testing.T) {
	// All build tuples share one key: one bucket holds everything, every
	// group iteration conflicts.
	spec := workload.Spec{NBuild: 64, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 13, Skew: 64}
	for _, scheme := range allSchemes {
		pair, res := runJoin(t, spec, scheme, Params{G: 16, D: 2})
		if res.NOutput != pair.ExpectedMatches {
			t.Errorf("%v all-one-key: NOutput = %d, want %d", scheme, res.NOutput, pair.ExpectedMatches)
		}
	}
}

func TestJoinParamEdgeCases(t *testing.T) {
	spec := workload.Spec{NBuild: 500, TupleSize: 20, MatchesPerBuild: 2, PctMatched: 100, Seed: 17}
	cases := []Params{{G: 1, D: 1}, {G: 2, D: 2}, {G: 64, D: 16}, {G: 500, D: 1}, {G: 7, D: 9}}
	for _, p := range cases {
		for _, scheme := range []Scheme{SchemeGroup, SchemePipelined} {
			pair, res := runJoin(t, spec, scheme, p)
			if res.NOutput != pair.ExpectedMatches || res.KeySum != pair.KeySum {
				t.Errorf("%v G=%d D=%d: got %d/%d, want %d/%d",
					scheme, p.G, p.D, res.NOutput, res.KeySum, pair.ExpectedMatches, pair.KeySum)
			}
		}
	}
}

func TestJoinGroupSmallerThanRelation(t *testing.T) {
	// Relation smaller than one group: the partial-group path.
	spec := workload.Spec{NBuild: 5, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 19}
	pair, res := runJoin(t, spec, SchemeGroup, Params{G: 19, D: 1})
	if res.NOutput != pair.ExpectedMatches {
		t.Fatalf("tiny relation: NOutput = %d, want %d", res.NOutput, pair.ExpectedMatches)
	}
}

func TestJoinEmptyProbe(t *testing.T) {
	spec := workload.Spec{NBuild: 100, NProbe: 1, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 23}
	for _, scheme := range allSchemes {
		_, res := runJoin(t, spec, scheme, DefaultParams())
		if res.NOutput != 1 {
			t.Errorf("%v: NOutput = %d, want 1", scheme, res.NOutput)
		}
	}
}

func TestJoinOutputMaterialization(t *testing.T) {
	spec := workload.Spec{NBuild: 200, TupleSize: 24, MatchesPerBuild: 2, PctMatched: 100, Seed: 29}
	a := arena.New(workload.ArenaBytesFor(spec))
	pair := workload.Generate(a, spec)
	m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
	res := JoinPair(m, pair.Build, pair.Probe, SchemeGroup, DefaultParams(), 1, true)
	if res.Output == nil {
		t.Fatal("keep=true returned no output relation")
	}
	if res.Output.NTuples != pair.ExpectedMatches {
		t.Fatalf("materialized %d tuples, want %d", res.Output.NTuples, pair.ExpectedMatches)
	}
	// Every output tuple is build||probe; both key copies must agree.
	res.Output.Each(func(tup []byte, _ uint32) {
		if len(tup) != 48 {
			t.Fatalf("output tuple length %d, want 48", len(tup))
		}
		bk := res.Output.Schema.Key(tup)
		pk := uint32(tup[24]) | uint32(tup[25])<<8 | uint32(tup[26])<<16 | uint32(tup[27])<<24
		if bk != pk {
			t.Fatalf("output tuple joins keys %#x and %#x", bk, pk)
		}
	})
}

// TestJoinPrefetchingFaster is the headline behavioral check at test
// scale: group and software-pipelined prefetching must clearly beat the
// baseline, and simple prefetching must not.
func TestJoinPrefetchingFaster(t *testing.T) {
	spec := workload.Spec{NBuild: 4000, TupleSize: 100, MatchesPerBuild: 2, PctMatched: 100, Seed: 31}
	cycles := map[Scheme]uint64{}
	for _, scheme := range allSchemes {
		_, res := runJoin(t, spec, scheme, DefaultParams())
		cycles[scheme] = res.Cycles()
	}
	base := float64(cycles[SchemeBaseline])
	if s := base / float64(cycles[SchemeGroup]); s < 1.5 {
		t.Errorf("group prefetching speedup %.2fx, want >= 1.5x (cycles: %v)", s, cycles)
	}
	if s := base / float64(cycles[SchemePipelined]); s < 1.5 {
		t.Errorf("software-pipelined speedup %.2fx, want >= 1.5x (cycles: %v)", s, cycles)
	}
	if s := base / float64(cycles[SchemeSimple]); s > 1.6 {
		t.Errorf("simple prefetching speedup %.2fx suspiciously high", s)
	}
}

// TestJoinBaselineStallBound mirrors Figure 1: the baseline join must be
// dominated by data-cache stalls.
func TestJoinBaselineStallBound(t *testing.T) {
	spec := workload.Spec{NBuild: 4000, TupleSize: 100, MatchesPerBuild: 2, PctMatched: 100, Seed: 37}
	_, res := runJoin(t, spec, SchemeBaseline, DefaultParams())
	st := res.Stats()
	frac := float64(st.DCacheStall) / float64(st.Total())
	if frac < 0.5 {
		t.Errorf("baseline dcache stall fraction %.2f, want >= 0.5 (stats %+v)", frac, st)
	}
}
