package core

import (
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

func runChained(t *testing.T, spec workload.Spec, scheme Scheme, params Params) (*workload.Pair, JoinResult) {
	t.Helper()
	a := arena.New(workload.ArenaBytesFor(spec) * 2)
	pair := workload.Generate(a, spec)
	m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
	res := JoinPairChained(m, pair.Build, pair.Probe, scheme, params)
	return pair, res
}

func TestChainedJoinCorrectness(t *testing.T) {
	spec := workload.Spec{NBuild: 700, TupleSize: 40, MatchesPerBuild: 2, PctMatched: 80, Seed: 51}
	for _, scheme := range []Scheme{SchemeBaseline, SchemeGroup} {
		pair, res := runChained(t, spec, scheme, DefaultParams())
		if res.NOutput != pair.ExpectedMatches || res.KeySum != pair.KeySum {
			t.Errorf("chained/%v: got %d/%d, want %d/%d",
				scheme, res.NOutput, res.KeySum, pair.ExpectedMatches, pair.KeySum)
		}
	}
}

func TestChainedJoinSkew(t *testing.T) {
	spec := workload.Spec{NBuild: 300, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 53, Skew: 30}
	for _, scheme := range []Scheme{SchemeBaseline, SchemeGroup} {
		pair, res := runChained(t, spec, scheme, Params{G: 8})
		if res.NOutput != pair.ExpectedMatches {
			t.Errorf("chained/%v skew: NOutput = %d, want %d", scheme, res.NOutput, pair.ExpectedMatches)
		}
	}
}

func TestChainedTableUntimed(t *testing.T) {
	a := arena.New(1 << 20)
	tbl := hash.NewChainedTable(a, 13)
	for i := 0; i < 200; i++ {
		code := hash.CodeU32(uint32(i))
		tbl.Insert(a, hash.BucketOf(code, 13), code, arena.Addr(0x10000+i*8))
	}
	total := 0
	for b := 0; b < 13; b++ {
		total += tbl.Count(a, b)
	}
	if total != 200 {
		t.Fatalf("chained table holds %d nodes, want 200", total)
	}
	code := hash.CodeU32(42)
	found := false
	tbl.Lookup(a, hash.BucketOf(code, 13), code, func(tp arena.Addr) {
		found = found || tp == arena.Addr(0x10000+42*8)
	})
	if !found {
		t.Fatal("chained lookup lost an insert")
	}
}

// TestChainedSlowerThanArrayUnderSkew quantifies the paper's section 3
// footnote: with multi-cell buckets, the Figure 2 array layout beats
// chained buckets under group prefetching, because the array scan is one
// (prefetchable) reference while the chain is a dependent pointer walk.
func TestChainedSlowerThanArrayUnderSkew(t *testing.T) {
	spec := workload.Spec{NBuild: 6000, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 57, Skew: 8}
	specArr := spec
	a1 := arena.New(workload.ArenaBytesFor(spec) * 2)
	p1 := workload.Generate(a1, spec)
	m1 := vmem.New(a1, memsim.NewSim(memsim.SmallConfig()))
	chained := JoinPairChained(m1, p1.Build, p1.Probe, SchemeGroup, DefaultParams())

	a2 := arena.New(workload.ArenaBytesFor(specArr) * 2)
	p2 := workload.Generate(a2, specArr)
	m2 := vmem.New(a2, memsim.NewSim(memsim.SmallConfig()))
	array := JoinPair(m2, p2.Build, p2.Probe, SchemeGroup, DefaultParams(), 1, false)

	if chained.NOutput != array.NOutput {
		t.Fatalf("comparators disagree: %d vs %d", chained.NOutput, array.NOutput)
	}
	if chained.ProbeStats.Total() <= array.ProbeStats.Total() {
		t.Errorf("chained probe (%d cycles) should be slower than array probe (%d) with 8-cell buckets",
			chained.ProbeStats.Total(), array.ProbeStats.Total())
	}
}
