package core

import (
	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
)

// Software-pipelined prefetching (paper section 5). Where group
// prefetching processes stage s for all G tuples before stage s+1,
// software pipelining combines different stages of different tuples into
// one loop iteration: iteration i runs stage 0 for tuple i, stage 1 for
// tuple i-D, stage 2 for tuple i-2D, ... so subsequent stages of one
// tuple sit D iterations apart and the pipeline never drains between
// groups. State lives in a circular array sized to a power of two (bit
// masking replaces modulo) of at least k*D+1 entries (section 5.3).
//
// Bookkeeping is charged at CostStatePipe per stage — deliberately above
// group prefetching's CostStateGroup, reflecting the modular index
// arithmetic and waiting-queue maintenance the paper identifies as
// software pipelining's overhead (section 5.4).

// nextPow2 returns the smallest power of two >= v.
func nextPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// probePipelined is the software-pipelined probe loop (k = 3).
func (j *joiner) probePipelined() {
	m := j.m
	d := j.params.D
	size := nextPow2(3*d + 1)
	mask := size - 1
	states := make([]probeState, size)
	for i := range states {
		states[i].matches = make([]arena.Addr, 0, 4)
	}
	cur := newCursor(j.probe)
	total := j.probe.NTuples

	for it := 0; it-3*d < total; it++ {
		// Stage 0 for tuple it: compute bucket, prefetch header.
		if it < total {
			page, slot, ok := cur.next(m, true)
			if !ok {
				panic("core: cursor ended before NTuples")
			}
			st := &states[it&mask]
			m.Compute(CostLoop + CostStatePipe)
			st.tuple, st.length, st.code = j.slotCode(page, slot)
			m.Compute(CostMod)
			st.header = j.table.HeaderAddr(hash.BucketOf(st.code, j.table.NBuckets))
			st.active = true
			st.matches = st.matches[:0]
			m.Prefetch(st.header)
		}

		// Stage 1 for tuple it-D: visit header, prefetch cells.
		if k := it - d; k >= 0 && k < total {
			st := &states[k&mask]
			m.Compute(CostStatePipe)
			m.S.Read(st.header, 16)
			m.Compute(CostVisitHeader)
			st.count = m.A.U32(st.header + hash.HOffCount)
			st.cells = 0
			if st.count == 0 {
				st.active = false
			} else {
				if m.A.U32(st.header+hash.HOffCode0) == st.code {
					bt := m.A.U64(st.header + hash.HOffTuple0)
					st.matches = append(st.matches, bt)
					m.PrefetchRange(bt, j.buildLen)
				}
				if st.count > 1 {
					m.S.Read(st.header+hash.HOffCells, 8)
					st.cells = m.A.U64(st.header + hash.HOffCells)
					m.PrefetchRange(st.cells, int(st.count-1)*hash.CellSize)
				}
			}
		}

		// Stage 2 for tuple it-2D: visit cells, prefetch build tuples.
		if k := it - 2*d; k >= 0 && k < total {
			st := &states[k&mask]
			if st.active && st.cells != 0 {
				m.Compute(CostStatePipe)
				m.S.Read(st.cells, int(st.count-1)*hash.CellSize)
				for c := 0; c < int(st.count-1); c++ {
					cell := hash.CellAddr(st.cells, c)
					m.Compute(CostVisitCell)
					if m.A.U32(cell+hash.CellOffCode) == st.code {
						bt := m.A.U64(cell + hash.CellOffTuple)
						st.matches = append(st.matches, bt)
						m.PrefetchRange(bt, j.buildLen)
					}
				}
			}
		}

		// Stage 3 for tuple it-3D: visit build tuples, compare, emit.
		if k := it - 3*d; k >= 0 && k < total {
			st := &states[k&mask]
			if st.active {
				m.Compute(CostStatePipe)
				for _, bt := range st.matches {
					j.compareAndEmit(bt, st.tuple, st.length)
				}
			}
		}
	}
}

// pipeBuildState extends buildState with the waiting-queue fields of
// section 5.3: the bucket header's busy word stores the circular-array
// index (plus one) of the tuple updating the bucket; each state points
// at the next tuple waiting for the same bucket.
type pipeBuildState struct {
	buildState
	waitNext int // circular-array index of the next waiter, -1 = none
	waiting  bool
	done     bool
}

// buildPipelined is the software-pipelined build loop (k = 2).
func (j *joiner) buildPipelined() {
	m := j.m
	d := j.params.D
	size := nextPow2(2*d + 1)
	mask := size - 1
	states := make([]pipeBuildState, size)
	cur := newCursor(j.build)
	total := j.build.NTuples

	for it := 0; it-2*d < total; it++ {
		// Stage 0: hash, prefetch header.
		if it < total {
			page, slot, ok := cur.next(m, true)
			if !ok {
				panic("core: cursor ended before NTuples")
			}
			st := &states[it&mask]
			m.Compute(CostLoop + CostStatePipe)
			st.tuple, _, st.code = j.slotCode(page, slot)
			m.Compute(CostMod)
			st.bucket = hash.BucketOf(st.code, j.table.NBuckets)
			st.header = j.table.HeaderAddr(st.bucket)
			st.active = true
			st.waiting = false
			st.done = false
			st.waitNext = -1
			m.Prefetch(st.header)
		}

		// Stage 1: visit header; insert inline, join a waiting queue, or
		// claim the bucket and prefetch the cell-array tail. No early
		// continue here: it would skip stage 2 of an older tuple in the
		// same iteration and leak its bucket claim.
		if k := it - d; k >= 0 && k < total {
			st := &states[k&mask]
			m.Compute(CostStatePipe)
			m.S.Read(st.header, 32)
			m.Compute(CostVisitHeader)
			a := m.A
			busy := a.U32(st.header + hash.HOffBusy)
			switch {
			case busy != 0:
				// Append to the updating tuple's waiting queue.
				m.Compute(CostStatePipe)
				w := int(busy) - 1
				for states[w].waitNext != -1 {
					w = states[w].waitNext
				}
				states[w].waitNext = k & mask
				st.waiting = true
			case a.U32(st.header+hash.HOffCount) == 0:
				m.S.Write(st.header, 16)
				a.PutU32(st.header+hash.HOffCode0, st.code)
				a.PutU64(st.header+hash.HOffTuple0, st.tuple)
				a.PutU32(st.header+hash.HOffCount, 1)
				st.done = true
			default:
				m.S.Write(st.header+hash.HOffBusy, 4)
				a.PutU32(st.header+hash.HOffBusy, uint32(k&mask)+1)
				if cells := a.U64(st.header + hash.HOffCells); cells != 0 {
					over := a.U32(st.header+hash.HOffCount) - 1
					if over < a.U32(st.header+hash.HOffCap) {
						m.Prefetch(hash.CellAddr(cells, int(over)))
					}
				}
			}
		}

		// Stage 2: append the cell, release the bucket, and drain any
		// tuples that queued on it meanwhile (their buckets are settled
		// and warm, so they run without prefetching).
		if k := it - 2*d; k >= 0 && k < total {
			st := &states[k&mask]
			if !st.done && !st.waiting {
				m.Compute(CostStatePipe)
				j.appendCellTimed(st.header, st.code, st.tuple)
				m.S.Write(st.header+hash.HOffBusy, 4)
				m.A.PutU32(st.header+hash.HOffBusy, 0)
				for w := st.waitNext; w != -1; {
					ws := &states[w]
					m.Compute(CostStatePipe)
					j.insertTimed(ws.bucket, ws.code, ws.tuple)
					ws.waiting = false
					ws.done = true
					next := ws.waitNext
					ws.waitNext = -1
					w = next
				}
				st.waitNext = -1
			}
		}
	}
}
