package core

import (
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// Multiprocessor join phase. The paper's real-machine experiments run on
// a quad-processor Pentium III, and its buffer-manager design assumes
// "typically 10 disks per processor on a balanced DB server". After the
// I/O partition phase, partition pairs are embarrassingly parallel: each
// processor joins its share with a private cache hierarchy. The model
// gives each simulated worker its own memsim (private caches and TLB —
// pessimistic for shared-L2 machines, faithful for the ES40's
// per-processor caches) over the shared address space, and the phase's
// wall clock is the slowest worker's clock.

// ParallelJoinResult reports a multiprocessor join phase.
type ParallelJoinResult struct {
	NOutput int
	KeySum  uint64

	// WorkerStats holds each simulated processor's breakdown.
	WorkerStats []memsim.Stats

	// WallCycles is the elapsed time: the busiest worker's total.
	WallCycles uint64
	// TotalCycles sums all workers (the aggregate CPU work).
	TotalCycles uint64
}

// JoinPartitionsParallel joins corresponding build/probe partition pairs
// on `workers` simulated processors, assigning pairs round-robin. The
// execution itself is deterministic and sequential; parallelism is
// modeled through the independent simulated clocks.
//
// Round-robin pre-assignment has a skew pathology: partition sizes are
// fixed at assignment time, so a worker that draws an oversized
// partition keeps every cycle of it while its siblings finish early and
// idle — WallCycles (the slowest worker) grows toward the whole skewed
// partition's cost even though TotalCycles (the aggregate work) is
// unchanged. TestRoundRobinSkewPathology demonstrates the divergence.
// The native engine's morsel-driven queue (internal/native, morsel.go)
// avoids it by letting workers claim pairs dynamically: the skewed pair
// still costs one worker, but every other pair drains in parallel
// behind it. The simulator keeps round-robin deliberately — it mirrors
// the static partitioning of the paper's era and makes the pathology
// measurable.
func JoinPartitionsParallel(a *vmem.Mem, cfg memsim.Config, builds, probes []*storage.Relation,
	scheme Scheme, params Params, workers int) ParallelJoinResult {
	if len(builds) != len(probes) {
		panic("core: partition lists differ in length")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(builds) && len(builds) > 0 {
		workers = len(builds)
	}

	r := ParallelJoinResult{WorkerStats: make([]memsim.Stats, workers)}
	mems := make([]*vmem.Mem, workers)
	for w := range mems {
		mems[w] = vmem.New(a.A, memsim.NewSim(cfg))
	}
	for i := range builds {
		w := i % workers
		jr := JoinPair(mems[w], builds[i], probes[i], scheme, params, len(builds), false)
		r.NOutput += jr.NOutput
		r.KeySum += jr.KeySum
	}
	for w := range mems {
		st := mems[w].S.Stats()
		r.WorkerStats[w] = st
		r.TotalCycles += st.Total()
		if st.Total() > r.WallCycles {
			r.WallCycles = st.Total()
		}
	}
	return r
}
