package core

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// aggInput builds a relation of (key, value) tuples with a known
// reference aggregate.
func aggInput(t *testing.T, nTuples, nGroups, tupleSize int, seed int64) (*storage.Relation, map[uint32][2]uint64, *vmem.Mem) {
	t.Helper()
	maxGroups := min(nGroups, nTuples)
	a := arena.New(uint64(nTuples*tupleSize*4 + maxGroups*128 + (1 << 22)))
	rel := storage.NewRelation(a, storage.KeyPayloadSchema(tupleSize), 4096)
	rng := rand.New(rand.NewSource(seed))
	ref := make(map[uint32][2]uint64, maxGroups)
	tup := make([]byte, tupleSize)
	for i := 0; i < nTuples; i++ {
		key := uint32(rng.Intn(nGroups))*2654435761 | 1
		value := rng.Uint32() % 1000
		binary.LittleEndian.PutUint32(tup, key)
		binary.LittleEndian.PutUint32(tup[4:], value)
		rel.Append(tup, 0)
		cs := ref[key]
		cs[0]++
		cs[1] += uint64(value)
		ref[key] = cs
	}
	return rel, ref, vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
}

func checkAgg(t *testing.T, res AggResult, ref map[uint32][2]uint64, scheme Scheme) {
	t.Helper()
	if res.NGroups != len(ref) {
		t.Fatalf("%v: NGroups = %d, want %d", scheme, res.NGroups, len(ref))
	}
	seen := 0
	res.Each(func(key uint32, count, sum uint64) {
		want, ok := ref[key]
		if !ok {
			t.Fatalf("%v: unexpected group %#x", scheme, key)
		}
		if count != want[0] || sum != want[1] {
			t.Fatalf("%v: group %#x = (%d,%d), want (%d,%d)", scheme, key, count, sum, want[0], want[1])
		}
		seen++
	})
	if seen != len(ref) {
		t.Fatalf("%v: iterated %d groups, want %d", scheme, seen, len(ref))
	}
}

func TestAggregateCorrectness(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBaseline, SchemeSimple, SchemeGroup, SchemePipelined} {
		rel, ref, m := aggInput(t, 5000, 700, 20, 21)
		res := Aggregate(m, rel, 700, scheme, DefaultParams())
		checkAgg(t, res, ref, scheme)
	}
}

func TestAggregateFewGroupsHeavyCollisions(t *testing.T) {
	// Few groups: long per-bucket chains never form (table sized to
	// groups), but every batch hits the same buckets repeatedly,
	// stressing the busy-flag delay path.
	for _, scheme := range []Scheme{SchemeBaseline, SchemeGroup, SchemePipelined} {
		rel, ref, m := aggInput(t, 3000, 7, 20, 23)
		res := Aggregate(m, rel, 7, scheme, Params{G: 16, D: 4})
		checkAgg(t, res, ref, scheme)
	}
}

func TestAggregateSingleTuplePerGroup(t *testing.T) {
	// Every tuple creates a new group: the structural-insert path.
	for _, scheme := range []Scheme{SchemeBaseline, SchemeGroup, SchemePipelined} {
		rel, ref, m := aggInput(t, 2000, 1<<30, 20, 29)
		res := Aggregate(m, rel, 2000, scheme, DefaultParams())
		checkAgg(t, res, ref, scheme)
	}
}

func TestAggregateTinyInput(t *testing.T) {
	rel, ref, m := aggInput(t, 3, 10, 20, 31)
	res := Aggregate(m, rel, 4, SchemeGroup, Params{G: 19})
	checkAgg(t, res, ref, SchemeGroup)
	rel2, ref2, m2 := aggInput(t, 3, 10, 20, 31)
	res2 := Aggregate(m2, rel2, 4, SchemePipelined, Params{D: 5})
	checkAgg(t, res2, ref2, SchemePipelined)
}

func TestAggregatePipelinedDistances(t *testing.T) {
	for _, d := range []int{1, 2, 4, 8, 16} {
		rel, ref, m := aggInput(t, 4000, 300, 20, 41)
		res := Aggregate(m, rel, 300, SchemePipelined, Params{G: 1, D: d})
		checkAgg(t, res, ref, SchemePipelined)
	}
}

// TestAggregateGroupPrefetchFaster: with many groups the table exceeds
// cache and group prefetching should clearly win, as the paper's
// conclusion predicts for hash-based aggregation.
func TestAggregateGroupPrefetchFaster(t *testing.T) {
	const n = 40000
	const groups = 20000
	relB, _, mB := aggInput(t, n, groups, 20, 37)
	base := Aggregate(mB, relB, groups, SchemeBaseline, DefaultParams())
	relG, _, mG := aggInput(t, n, groups, 20, 37)
	grp := Aggregate(mG, relG, groups, SchemeGroup, DefaultParams())
	if sp := float64(base.Stats.Total()) / float64(grp.Stats.Total()); sp < 1.5 {
		t.Errorf("group-prefetched aggregation speedup %.2f, want >= 1.5", sp)
	}
}

func TestAggregateRejectsNarrowTuples(t *testing.T) {
	a := arena.New(1 << 20)
	rel := storage.NewRelation(a, storage.MustSchema(
		storage.Column{Name: "k", Type: storage.TypeUint32},
		storage.Column{Name: "pad", Type: storage.TypeFixedBytes, Size: 2},
	), 1024)
	m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for < 8-byte tuples")
		}
	}()
	Aggregate(m, rel, 4, SchemeBaseline, DefaultParams())
}
