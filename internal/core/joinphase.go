package core

import (
	"fmt"

	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// JoinResult reports the outcome of joining one build/probe partition
// pair: functional results plus the per-phase simulated time breakdown.
type JoinResult struct {
	NOutput int
	KeySum  uint64

	// Output holds the materialized output relation when JoinPair was
	// called with keep=true; nil otherwise.
	Output *storage.Relation

	BuildStats memsim.Stats
	ProbeStats memsim.Stats
}

// Cycles returns the total simulated cycles of both join sub-phases.
func (r JoinResult) Cycles() uint64 { return r.BuildStats.Total() + r.ProbeStats.Total() }

// Stats returns the combined breakdown.
func (r JoinResult) Stats() memsim.Stats {
	s := r.BuildStats
	s.Busy += r.ProbeStats.Busy
	s.DCacheStall += r.ProbeStats.DCacheStall
	s.TLBStall += r.ProbeStats.TLBStall
	s.OtherStall += r.ProbeStats.OtherStall
	return s
}

// joiner carries the state of one partition-pair join.
type joiner struct {
	m     *vmem.Mem
	build *storage.Relation
	probe *storage.Relation
	table hash.Table

	scheme Scheme
	params Params

	buildLen int // fixed build tuple width
	probeLen int
	out      *OutWriter
}

// JoinPair joins one build partition with one probe partition using the
// given scheme, as in the paper's join-phase experiments (Figures
// 10-13). nPartitions is used only to size the hash table relatively
// prime to the partition count; pass 1 when joining standalone
// partitions. keep retains output tuples for validation.
func JoinPair(m *vmem.Mem, build, probe *storage.Relation, scheme Scheme, params Params, nPartitions int, keep bool) JoinResult {
	if build.Schema.HasVar() || probe.Schema.HasVar() {
		panic("core: join phase requires fixed-width schemas")
	}
	if scheme == SchemeCombined {
		panic("core: SchemeCombined applies to the partition phase only")
	}
	params = params.normalized()
	nb := hash.SizeFor(build.NTuples, max(nPartitions, 1))
	j := &joiner{
		m:        m,
		build:    build,
		probe:    probe,
		table:    hash.NewTable(m.A, nb),
		scheme:   scheme,
		params:   params,
		buildLen: build.Schema.FixedWidth(),
		probeLen: probe.Schema.FixedWidth(),
	}
	outSchema := storage.JoinedSchema(build.Schema, probe.Schema)
	outPage := build.PageSize
	if need := outSchema.FixedWidth() + storage.PageHeaderSize + storage.SlotSize; need > outPage {
		outPage = need
	}
	j.out = NewOutWriter(m, outPage, outSchema, keep)

	var r JoinResult
	pre := m.S.Stats()
	switch scheme {
	case SchemeBaseline, SchemeSimple:
		j.buildBaseline()
	case SchemeGroup:
		j.buildGroup()
	case SchemePipelined:
		j.buildPipelined()
	default:
		panic(fmt.Sprintf("core: unknown scheme %v", scheme))
	}
	mid := m.S.Stats()
	r.BuildStats = mid.Sub(pre)

	switch scheme {
	case SchemeBaseline, SchemeSimple:
		j.probeBaseline()
	case SchemeGroup:
		j.probeGroup()
	case SchemePipelined:
		j.probePipelined()
	}
	j.out.Close()
	r.ProbeStats = m.S.Stats().Sub(mid)

	r.NOutput = j.out.NOutput
	r.KeySum = j.out.KeySum
	r.Output = j.out.Result
	return r
}

// cursor streams the tuples of a relation in storage order, performing
// the timed per-page header read and, for every prefetching scheme, the
// whole-page prefetch issued after each disk page read. (Simple
// prefetching consists of exactly this; group and software-pipelined
// prefetching layer the staged hash-table prefetches on top of it, which
// is why the paper reports them as additional speedup over simple.)
type cursor struct {
	rel      *storage.Relation
	pageIdx  int
	slotIdx  int
	nslots   int
	pageAddr arena.Addr
}

func newCursor(rel *storage.Relation) cursor {
	return cursor{rel: rel, pageIdx: -1}
}

// next advances to the next tuple's slot. It returns the page base and
// slot address, or ok=false at the end of the relation.
func (c *cursor) next(m *vmem.Mem, simple bool) (page, slot arena.Addr, ok bool) {
	for c.pageIdx < 0 || c.slotIdx >= c.nslots {
		c.pageIdx++
		if c.pageIdx >= c.rel.NPages() {
			return 0, 0, false
		}
		c.pageAddr = c.rel.Pages[c.pageIdx]
		if simple {
			// Simple prefetching: fetch the entire input page right
			// after the disk read, ahead of the tuple loop.
			m.PrefetchRange(c.pageAddr, c.rel.PageSize)
		}
		c.nslots = int(m.ReadU16(storage.NSlotsAddr(c.pageAddr)))
		c.slotIdx = 0
	}
	slot = storage.SlotAddr(c.pageAddr, c.rel.PageSize, c.slotIdx)
	c.slotIdx++
	return c.pageAddr, slot, true
}

// readSlot performs the timed load of a slot entry, returning the tuple
// address, length, and memoized hash code (section 7.1 reuse).
func readSlot(m *vmem.Mem, page, slot arena.Addr) (tuple arena.Addr, length int, code uint32) {
	m.S.Read(slot, storage.SlotSize)
	off := m.A.U16(slot + storage.SlotOffOffset)
	length = int(m.A.U16(slot + storage.SlotOffLength))
	code = m.A.U32(slot + storage.SlotOffHash)
	return page + arena.Addr(off), length, code
}

// slotCode reads a tuple's slot and yields its hash code: memoized from
// the slot by default (section 7.1), or re-read and re-hashed from the
// key when Params.RecomputeHash is set (ablation).
func (j *joiner) slotCode(page, slot arena.Addr) (tuple arena.Addr, length int, code uint32) {
	tuple, length, code = readSlot(j.m, page, slot)
	if j.params.RecomputeHash {
		key := j.m.ReadU32(tuple)
		j.m.Compute(CostHashKey)
		code = hash.CodeU32(key)
	}
	return tuple, length, code
}

// --- Baseline (and simple-prefetching) build ---

// buildBaseline inserts every build tuple, one hash table visit at a
// time, exactly as GRACE does. SchemeSimple differs only in the cursor's
// page prefetch.
func (j *joiner) buildBaseline() {
	m := j.m
	simple := j.scheme == SchemeSimple
	cur := newCursor(j.build)
	for {
		page, slot, ok := cur.next(m, simple)
		if !ok {
			return
		}
		m.Compute(CostLoop)
		tuple, _, code := j.slotCode(page, slot)
		m.Compute(CostMod)
		b := hash.BucketOf(code, j.table.NBuckets)
		j.insertTimed(b, code, tuple)
	}
}

// insertTimed is one complete, timed hash-table insert (the dependent
// reference chain of hash table building).
func (j *joiner) insertTimed(b int, code uint32, tuple arena.Addr) {
	m := j.m
	h := j.table.HeaderAddr(b)
	m.S.Read(h, 16) // count + inline cell
	m.Compute(CostVisitHeader)
	a := m.A
	count := a.U32(h + hash.HOffCount)
	if count == 0 {
		m.S.Write(h, 16)
		a.PutU32(h+hash.HOffCode0, code)
		a.PutU64(h+hash.HOffTuple0, tuple)
		a.PutU32(h+hash.HOffCount, 1)
		return
	}
	m.S.Read(h+hash.HOffCells, 12) // cells + cap (same header line)
	cells := a.U64(h + hash.HOffCells)
	capacity := a.U32(h + hash.HOffCap)
	over := count - 1
	if cells == 0 || over == capacity {
		cells = j.growCells(h, cells, over, capacity)
	}
	c := hash.CellAddr(cells, int(over))
	m.S.Write(c, hash.CellSize)
	a.PutU32(c+hash.CellOffCode, code)
	a.PutU64(c+hash.CellOffTuple, tuple)
	m.S.Write(h+hash.HOffCount, 4)
	a.PutU32(h+hash.HOffCount, count+1)
}

// growCells allocates or doubles a bucket's overflow array, copying the
// existing cells (timed) and updating the header.
func (j *joiner) growCells(h arena.Addr, cells arena.Addr, over, capacity uint32) arena.Addr {
	m := j.m
	m.Compute(CostAllocCells)
	newCap := uint32(hash.InitialCellCap)
	if capacity > 0 {
		newCap = capacity * 2
	}
	newCells := m.Alloc(uint64(newCap)*hash.CellSize, 64)
	if cells != 0 && over > 0 {
		m.Copy(newCells, cells, int(over)*hash.CellSize)
	}
	m.S.Write(h+hash.HOffCells, 12)
	m.A.PutU64(h+hash.HOffCells, newCells)
	m.A.PutU32(h+hash.HOffCap, newCap)
	return newCells
}

// --- Baseline (and simple-prefetching) probe ---

// probeBaseline performs one hash table visit per probe tuple: compute
// bucket, visit header, visit cell array, visit matching build tuples.
func (j *joiner) probeBaseline() {
	m := j.m
	simple := j.scheme == SchemeSimple
	cur := newCursor(j.probe)
	for {
		page, slot, ok := cur.next(m, simple)
		if !ok {
			return
		}
		m.Compute(CostLoop)
		tuple, length, code := j.slotCode(page, slot)
		m.Compute(CostMod)
		b := hash.BucketOf(code, j.table.NBuckets)

		h := j.table.HeaderAddr(b)
		m.S.Read(h, 16)
		m.Compute(CostVisitHeader)
		a := m.A
		count := a.U32(h + hash.HOffCount)
		if count == 0 {
			continue
		}
		if a.U32(h+hash.HOffCode0) == code {
			j.compareAndEmit(a.U64(h+hash.HOffTuple0), tuple, length)
		}
		if count > 1 {
			m.S.Read(h+hash.HOffCells, 8)
			cells := a.U64(h + hash.HOffCells)
			for k := 0; k < int(count-1); k++ {
				c := hash.CellAddr(cells, k)
				m.S.Read(c, hash.CellSize)
				m.Compute(CostVisitCell)
				if a.U32(c+hash.CellOffCode) == code {
					j.compareAndEmit(a.U64(c+hash.CellOffTuple), tuple, length)
				}
			}
		}
	}
}

// compareAndEmit visits the candidate build tuple, compares real keys
// (the hash code was only a filter), and emits the output tuple on a
// match.
func (j *joiner) compareAndEmit(build arena.Addr, probe arena.Addr, probeLen int) {
	m := j.m
	m.S.Read(build, 4) // build key: the dependent random access
	m.S.Read(probe, 4) // probe key: sequential page data
	m.Compute(CostCompare)
	if m.A.U32(build) == m.A.U32(probe) {
		j.out.Emit(build, j.buildLen, probe, probeLen)
	}
}
