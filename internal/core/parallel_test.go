package core

import (
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

// parallelSetup partitions a workload, returning the pairs and memory.
func parallelSetup(t *testing.T, nParts int) (*workload.Pair, []*storage.Relation, []*storage.Relation, *vmem.Mem) {
	t.Helper()
	spec := workload.Spec{NBuild: 4000, TupleSize: 40, MatchesPerBuild: 2, PctMatched: 100, Seed: 81, PageSize: 2048}
	a := arena.New(workload.ArenaBytesFor(spec) * 3)
	pair := workload.Generate(a, spec)
	m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
	pb := PartitionRelation(m, pair.Build, nParts, SchemeCombined, DefaultParams())
	pp := PartitionRelation(m, pair.Probe, nParts, SchemeCombined, DefaultParams())
	return pair, pb.Partitions, pp.Partitions, m
}

func TestParallelJoinCorrectAndScales(t *testing.T) {
	const nParts = 8
	pair, builds, probes, m := parallelSetup(t, nParts)
	cfg := memsim.SmallConfig()

	one := JoinPartitionsParallel(m, cfg, builds, probes, SchemeGroup, DefaultParams(), 1)
	four := JoinPartitionsParallel(m, cfg, builds, probes, SchemeGroup, DefaultParams(), 4)

	if one.NOutput != pair.ExpectedMatches || four.NOutput != pair.ExpectedMatches {
		t.Fatalf("parallel join outputs %d/%d, want %d", one.NOutput, four.NOutput, pair.ExpectedMatches)
	}
	if one.KeySum != four.KeySum {
		t.Fatalf("key sums differ across worker counts")
	}
	speedup := float64(one.WallCycles) / float64(four.WallCycles)
	if speedup < 2.5 {
		t.Errorf("4 workers gave %.2fx wall speedup over 1, want >= 2.5x", speedup)
	}
	if four.TotalCycles < four.WallCycles {
		t.Errorf("total cycles below wall cycles")
	}
	if len(four.WorkerStats) != 4 {
		t.Errorf("WorkerStats = %d entries", len(four.WorkerStats))
	}
}

func TestParallelWorkersCappedByPartitions(t *testing.T) {
	pair, builds, probes, m := parallelSetup(t, 3)
	res := JoinPartitionsParallel(m, memsim.SmallConfig(), builds, probes, SchemeGroup, DefaultParams(), 16)
	if len(res.WorkerStats) != 3 {
		t.Fatalf("workers should cap at partition count, got %d", len(res.WorkerStats))
	}
	if res.NOutput != pair.ExpectedMatches {
		t.Fatalf("NOutput = %d", res.NOutput)
	}
}
