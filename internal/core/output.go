package core

import (
	"hashjoin/internal/arena"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// OutWriter materializes join output tuples into a reused slotted output
// page, handing full pages to the parent operator (modeled as an untimed
// retire plus counters, since the parent's cost is not part of the
// join). Writes of tuple bytes are timed; the page's free pointer and
// slot count live in registers while the page is current, as they would
// in a tight join loop.
type OutWriter struct {
	m        *vmem.Mem
	page     arena.Addr
	pageSize int

	free   int
	nslots int

	// Retained result (optional): when Keep is set, retired tuples are
	// appended untimed to Result for validation.
	Keep   bool
	Result *storage.Relation

	NOutput   int
	KeySum    uint64 // sum of build keys over all outputs (checksum)
	PagesOut  int
	outSchema *storage.Schema
}

// NewOutWriter allocates the reused output page. outSchema describes the
// concatenated output tuple (build fields then probe fields).
func NewOutWriter(m *vmem.Mem, pageSize int, outSchema *storage.Schema, keep bool) *OutWriter {
	w := &OutWriter{
		m:         m,
		page:      m.Alloc(uint64(pageSize), 64),
		pageSize:  pageSize,
		free:      storage.PageHeaderSize,
		outSchema: outSchema,
		Keep:      keep,
	}
	if keep {
		w.Result = storage.NewRelation(m.A, outSchema, pageSize)
	}
	return w
}

// Emit appends the concatenation of the build and probe tuples.
func (w *OutWriter) Emit(build arena.Addr, buildLen int, probe arena.Addr, probeLen int) {
	need := buildLen + probeLen
	if w.free+need+storage.SlotSize*(w.nslots+1) > w.pageSize {
		w.retire()
	}
	dst := w.page + arena.Addr(w.free)
	w.m.Copy(dst, build, buildLen)
	w.m.Copy(dst+arena.Addr(buildLen), probe, probeLen)
	slot := storage.SlotAddr(w.page, w.pageSize, w.nslots)
	w.m.S.Write(slot, storage.SlotSize)
	w.m.A.PutU16(slot+storage.SlotOffOffset, uint16(w.free))
	w.m.A.PutU16(slot+storage.SlotOffLength, uint16(need))
	w.m.A.PutU32(slot+storage.SlotOffHash, 0)
	w.free += need
	w.nslots++
	w.NOutput++
	w.KeySum += uint64(w.m.A.U32(build)) // untimed checksum bookkeeping
}

// retire hands the full page to the parent operator and resets it.
func (w *OutWriter) retire() {
	if w.nslots == 0 {
		return
	}
	w.m.Compute(CostBufferSwap)
	if w.Keep {
		for i := 0; i < w.nslots; i++ {
			slot := storage.SlotAddr(w.page, w.pageSize, i)
			off := w.m.A.U16(slot + storage.SlotOffOffset)
			length := w.m.A.U16(slot + storage.SlotOffLength)
			w.Result.Append(w.m.A.Bytes(w.page+arena.Addr(off), uint64(length)), 0)
		}
	}
	w.free = storage.PageHeaderSize
	w.nslots = 0
	w.PagesOut++
}

// Close retires any partial page.
func (w *OutWriter) Close() { w.retire() }
