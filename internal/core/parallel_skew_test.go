package core

import (
	"encoding/binary"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// skewPartition builds one build/probe partition pair holding n
// one-match tuples with keys starting at base.
func skewPartition(a *arena.Arena, n int, base uint32) (build, probe *storage.Relation) {
	schema := storage.KeyPayloadSchema(40)
	build = storage.NewRelation(a, schema, 2048)
	probe = storage.NewRelation(a, schema, 2048)
	tup := make([]byte, 40)
	for i := 0; i < n; i++ {
		key := base + uint32(i)
		binary.LittleEndian.PutUint32(tup, key)
		build.Append(tup, hash.CodeU32(key))
		probe.Append(tup, hash.CodeU32(key))
	}
	return build, probe
}

// skewJoin joins hand-built partition pairs of the given sizes and
// returns the result plus the total tuple count.
func skewJoin(t *testing.T, sizes []int, workers int) (ParallelJoinResult, int) {
	t.Helper()
	a := arena.New(64 << 20)
	m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
	builds := make([]*storage.Relation, len(sizes))
	probes := make([]*storage.Relation, len(sizes))
	total := 0
	for i, n := range sizes {
		builds[i], probes[i] = skewPartition(a, n, uint32(total))
		total += n
	}
	res := JoinPartitionsParallel(m, memsim.SmallConfig(), builds, probes,
		SchemeGroup, DefaultParams(), workers)
	if res.NOutput != total {
		t.Fatalf("joined %d outputs, want %d", res.NOutput, total)
	}
	return res, total
}

// TestRoundRobinSkewPathology demonstrates the round-robin assignment
// pathology documented on JoinPartitionsParallel: with one oversized
// partition, the worker that draws it determines WallCycles almost
// alone, so the wall clock converges toward the aggregate TotalCycles
// even though three other processors sit idle. A balanced control with
// the same tuple count and worker count stays near the ideal
// TotalCycles/workers. The native engine's morsel queue is the fix; the
// simulator keeps round-robin to make this measurable.
func TestRoundRobinSkewPathology(t *testing.T) {
	const workers = 4

	// 8 partitions, 7100 tuples: one holds 90% of the data.
	skewed, _ := skewJoin(t, []int{6400, 100, 100, 100, 100, 100, 100, 100}, workers)
	// Control: the same 7100 tuples spread evenly over 8 partitions.
	balanced, _ := skewJoin(t, []int{888, 888, 888, 888, 888, 887, 887, 886}, workers)

	// The skewed wall clock is dominated by the one huge partition:
	// parallel efficiency collapses (wall ~= total instead of total/4).
	skewRatio := float64(skewed.WallCycles) / float64(skewed.TotalCycles)
	if skewRatio < 0.60 {
		t.Errorf("skewed wall/total = %.2f, expected > 0.60 (one worker dominating)", skewRatio)
	}
	balRatio := float64(balanced.WallCycles) / float64(balanced.TotalCycles)
	if balRatio > 0.35 {
		t.Errorf("balanced wall/total = %.2f, expected near 1/workers = 0.25", balRatio)
	}
	if skewRatio < 2*balRatio {
		t.Errorf("skew did not degrade parallel efficiency: %.2f vs balanced %.2f",
			skewRatio, balRatio)
	}
	t.Logf("wall/total: skewed %.2f, balanced %.2f (workers=%d)", skewRatio, balRatio, workers)
}
