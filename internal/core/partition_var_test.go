package core

import (
	"math/rand"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// varInput builds a relation with variable-length tuples: a uint32 key
// plus a var-length comment.
func varInput(t *testing.T, n int, seed int64) (*storage.Relation, *vmem.Mem) {
	t.Helper()
	schema := storage.MustSchema(
		storage.Column{Name: "key", Type: storage.TypeUint32},
		storage.Column{Name: "comment", Type: storage.TypeVarBytes},
	)
	a := arena.New(64 << 20)
	rel := storage.NewRelation(a, schema, 2048)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		key := uint32(i)*2654435761 | 1
		comment := make([]byte, rng.Intn(120))
		for j := range comment {
			comment[j] = byte(key + uint32(j))
		}
		enc, err := schema.Encode([]storage.Value{{U32: key}, {Bytes: comment}})
		if err != nil {
			t.Fatal(err)
		}
		rel.Append(enc, hash.CodeU32(key))
	}
	return rel, vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
}

func TestPartitionVariableLengthTuples(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBaseline, SchemeSimple, SchemeGroup, SchemePipelined} {
		rel, m := varInput(t, 2500, 101)
		const nParts = 19
		res := PartitionRelation(m, rel, nParts, scheme, Params{G: 12, D: 3})

		// Collect input tuples by content for multiset comparison.
		want := map[string]int{}
		rel.Each(func(tup []byte, _ uint32) { want[string(tup)]++ })

		total := 0
		got := map[string]int{}
		for pi, part := range res.Partitions {
			total += part.NTuples
			part.Each(func(tup []byte, code uint32) {
				got[string(tup)]++
				key := part.Schema.Key(tup)
				if hash.CodeU32(key) != code {
					t.Fatalf("%v: memoized code wrong for key %#x", scheme, key)
				}
				if hash.PartitionOf(code, nParts) != pi {
					t.Fatalf("%v: tuple in wrong partition", scheme)
				}
			})
		}
		if total != rel.NTuples {
			t.Fatalf("%v: partitions hold %d tuples, input %d", scheme, total, rel.NTuples)
		}
		for content, c := range want {
			if got[content] != c {
				t.Fatalf("%v: tuple multiset mismatch (variable-length bytes corrupted)", scheme)
			}
		}
	}
}

func TestPartitionVarTuplesRoundTripDecode(t *testing.T) {
	rel, m := varInput(t, 800, 103)
	res := PartitionRelation(m, rel, 7, SchemeGroup, DefaultParams())
	for _, part := range res.Partitions {
		part.Each(func(tup []byte, _ uint32) {
			vals, err := part.Schema.Decode(tup)
			if err != nil {
				t.Fatalf("partitioned var tuple fails to decode: %v", err)
			}
			key := vals[0].U32
			for j, b := range vals[1].Bytes {
				if b != byte(key+uint32(j)) {
					t.Fatalf("comment corrupted for key %#x", key)
				}
			}
		})
	}
}
