package core

import (
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

var partSchemes = []Scheme{SchemeBaseline, SchemeSimple, SchemeGroup, SchemePipelined, SchemeCombined}

// runPartition partitions a generated build relation under one scheme.
func runPartition(t *testing.T, spec workload.Spec, nParts int, scheme Scheme, params Params) (*workload.Pair, PartitionResult, *vmem.Mem) {
	t.Helper()
	pageSize := spec.PageSize
	if pageSize == 0 {
		pageSize = 8 << 10
	}
	a := arena.New(workload.ArenaBytesFor(spec) + uint64(nParts)*uint64(4*pageSize))
	pair := workload.Generate(a, spec)
	m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
	res := PartitionRelation(m, pair.Build, nParts, scheme, params)
	return pair, res, m
}

func checkPartitioning(t *testing.T, pair *workload.Pair, res PartitionResult, nParts int, scheme Scheme) {
	t.Helper()
	total := 0
	for p, rel := range res.Partitions {
		total += rel.NTuples
		rel.Each(func(tup []byte, code uint32) {
			key := rel.Schema.Key(tup)
			if hash.CodeU32(key) != code {
				t.Fatalf("%v: partition %d memoized wrong hash code for key %#x", scheme, p, key)
			}
			if hash.PartitionOf(code, nParts) != p {
				t.Fatalf("%v: key %#x landed in partition %d, want %d", scheme, key, p, hash.PartitionOf(code, nParts))
			}
		})
	}
	if total != pair.Build.NTuples {
		t.Fatalf("%v: partitions hold %d tuples, input had %d", scheme, total, pair.Build.NTuples)
	}
}

func TestPartitionCorrectnessAllSchemes(t *testing.T) {
	spec := workload.Spec{NBuild: 3000, TupleSize: 40, MatchesPerBuild: 1, PctMatched: 100, Seed: 41, PageSize: 1024}
	for _, scheme := range partSchemes {
		for _, nParts := range []int{1, 3, 16, 97} {
			pair, res, _ := runPartition(t, spec, nParts, scheme, Params{G: 12, D: 2})
			checkPartitioning(t, pair, res, nParts, scheme)
		}
	}
}

func TestPartitionKeySetPreserved(t *testing.T) {
	spec := workload.Spec{NBuild: 1000, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 43}
	pair, res, _ := runPartition(t, spec, 7, SchemeGroup, DefaultParams())
	want := map[uint32]int{}
	for _, k := range pair.Build.Keys() {
		want[k]++
	}
	got := map[uint32]int{}
	for _, rel := range res.Partitions {
		for _, k := range rel.Keys() {
			got[k]++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("distinct keys %d, want %d", len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("key %#x count %d, want %d", k, got[k], c)
		}
	}
}

func TestPartitionCombinedPolicy(t *testing.T) {
	spec := workload.Spec{NBuild: 2000, TupleSize: 40, MatchesPerBuild: 1, PctMatched: 100, Seed: 47, PageSize: 1024}
	// Few partitions: buffers fit the 128 KB small-config L2 -> simple.
	_, few, _ := runPartition(t, spec, 8, SchemeCombined, DefaultParams())
	if few.SchemeUsed != SchemeSimple {
		t.Errorf("combined with 8 partitions resolved to %v, want simple", few.SchemeUsed)
	}
	// Many partitions: buffers exceed L2 -> group.
	_, many, _ := runPartition(t, spec, 400, SchemeCombined, DefaultParams())
	if many.SchemeUsed != SchemeGroup {
		t.Errorf("combined with 400 partitions resolved to %v, want group", many.SchemeUsed)
	}
}

// TestPartitionPrefetchingFasterWhenThrashing mirrors Figure 14a's right
// region: with many partitions the buffers exceed L2 and group/pipelined
// prefetching must clearly beat baseline and simple.
func TestPartitionPrefetchingFasterWhenThrashing(t *testing.T) {
	spec := workload.Spec{NBuild: 20000, TupleSize: 100, MatchesPerBuild: 1, PctMatched: 100, Seed: 53, PageSize: 1024}
	const nParts = 300 // 300 KB of buffers vs 128 KB L2
	cycles := map[Scheme]uint64{}
	for _, scheme := range partSchemes[:4] {
		_, res, _ := runPartition(t, spec, nParts, scheme, DefaultParams())
		cycles[scheme] = res.Stats.Total()
	}
	base := float64(cycles[SchemeBaseline])
	if s := base / float64(cycles[SchemeGroup]); s < 1.3 {
		t.Errorf("group partition speedup %.2fx, want >= 1.3 (cycles %v)", s, cycles)
	}
	if s := base / float64(cycles[SchemePipelined]); s < 1.3 {
		t.Errorf("pipelined partition speedup %.2fx, want >= 1.3 (cycles %v)", s, cycles)
	}
}

// TestPartitionSimpleWinsWhenCacheResident mirrors Figure 14a's left
// region: with few partitions the heavier schemes' overhead should not
// pay off, and simple should be at least competitive.
func TestPartitionSimpleWinsWhenCacheResident(t *testing.T) {
	spec := workload.Spec{NBuild: 20000, TupleSize: 100, MatchesPerBuild: 1, PctMatched: 100, Seed: 59, PageSize: 1024}
	const nParts = 16
	_, simple, _ := runPartition(t, spec, nParts, SchemeSimple, DefaultParams())
	_, group, _ := runPartition(t, spec, nParts, SchemeGroup, DefaultParams())
	if float64(simple.Stats.Total()) > 1.1*float64(group.Stats.Total()) {
		t.Errorf("simple (%d) much slower than group (%d) despite cache-resident buffers",
			simple.Stats.Total(), group.Stats.Total())
	}
}

func TestPartitionTinyInputs(t *testing.T) {
	spec := workload.Spec{NBuild: 3, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 61}
	for _, scheme := range partSchemes {
		pair, res, _ := runPartition(t, spec, 5, scheme, Params{G: 19, D: 4})
		checkPartitioning(t, pair, res, 5, scheme)
	}
}

func TestGraceEndToEnd(t *testing.T) {
	spec := workload.Spec{NBuild: 3000, TupleSize: 60, MatchesPerBuild: 2, PctMatched: 90, Seed: 67, PageSize: 2048}
	for _, scheme := range []Scheme{SchemeBaseline, SchemeGroup, SchemePipelined} {
		a := arena.New(workload.ArenaBytesFor(spec) * 2)
		pair := workload.Generate(a, spec)
		m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
		cfg := GraceConfig{
			MemBudget:  64 << 10,
			PartScheme: SchemeCombined,
			JoinScheme: scheme,
			PartParams: DefaultParams(),
			JoinParams: DefaultParams(),
		}
		res := Grace(m, pair.Build, pair.Probe, cfg)
		if res.NOutput != pair.ExpectedMatches || res.KeySum != pair.KeySum {
			t.Errorf("grace/%v: got %d/%d, want %d/%d", scheme, res.NOutput, res.KeySum, pair.ExpectedMatches, pair.KeySum)
		}
		if res.NPartitions < 2 {
			t.Errorf("grace/%v: expected multiple partitions, got %d", scheme, res.NPartitions)
		}
	}
}

func TestDirectCacheCorrect(t *testing.T) {
	spec := workload.Spec{NBuild: 3000, TupleSize: 60, MatchesPerBuild: 2, PctMatched: 100, Seed: 71, PageSize: 2048}
	a := arena.New(workload.ArenaBytesFor(spec) * 2)
	pair := workload.Generate(a, spec)
	m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
	res := DirectCache(m, pair.Build, pair.Probe, GraceConfig{MemBudget: 64 << 10, JoinParams: DefaultParams(), PartParams: DefaultParams()})
	if res.NOutput != pair.ExpectedMatches || res.KeySum != pair.KeySum {
		t.Fatalf("direct cache: got %d/%d, want %d/%d", res.NOutput, res.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
}

func TestTwoStepCacheCorrect(t *testing.T) {
	spec := workload.Spec{NBuild: 3000, TupleSize: 60, MatchesPerBuild: 2, PctMatched: 100, Seed: 73, PageSize: 2048}
	a := arena.New(workload.ArenaBytesFor(spec) * 3)
	pair := workload.Generate(a, spec)
	m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))
	res := TwoStepCache(m, pair.Build, pair.Probe, GraceConfig{MemBudget: 64 << 10, JoinParams: DefaultParams(), PartParams: DefaultParams()})
	if res.NOutput != pair.ExpectedMatches || res.KeySum != pair.KeySum {
		t.Fatalf("two-step cache: got %d/%d, want %d/%d", res.NOutput, res.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
}

// TestFlushRobustness mirrors Figure 18: under periodic cache flushing,
// the prefetching join must degrade far less than a cache-resident join
// relies on.
func TestFlushRobustness(t *testing.T) {
	spec := workload.Spec{NBuild: 4000, TupleSize: 60, MatchesPerBuild: 2, PctMatched: 100, Seed: 79}
	a := arena.New(workload.ArenaBytesFor(spec))
	pair := workload.Generate(a, spec)
	m := vmem.New(a, memsim.NewSim(memsim.SmallConfig()))

	noFlush := JoinPair(vmem.New(a, memsim.NewSim(memsim.SmallConfig())), pair.Build, pair.Probe, SchemeGroup, DefaultParams(), 1, false)
	flushed := JoinPairFlushed(m, 200_000, pair.Build, pair.Probe, SchemeGroup, DefaultParams())
	if flushed.NOutput != pair.ExpectedMatches {
		t.Fatalf("flushed join incorrect: %d", flushed.NOutput)
	}
	degrade := float64(flushed.Cycles())/float64(noFlush.Cycles()) - 1
	if degrade > 0.25 {
		t.Errorf("group prefetching degraded %.0f%% under flushing, want <= 25%%", degrade*100)
	}
}
