package core

import (
	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// Chained-bucket join comparator for the Figure 2 ablation. The paper
// chose the header + cell-array layout precisely because chained buckets
// suffer the pointer-chasing problem: each node's address is stored in
// the previous node, so even group prefetching can only prefetch the
// chain head — the rest of the walk stays exposed.

// JoinPairChained joins one partition pair using a chained-bucket hash
// table, under SchemeBaseline or SchemeGroup.
func JoinPairChained(m *vmem.Mem, build, probe *storage.Relation, scheme Scheme, params Params) JoinResult {
	params = params.normalized()
	cj := &chainedJoiner{
		m:        m,
		build:    build,
		probe:    probe,
		table:    hash.NewChainedTable(m.A, hash.SizeFor(build.NTuples, 1)),
		buildLen: build.Schema.FixedWidth(),
	}
	outSchema := storage.JoinedSchema(build.Schema, probe.Schema)
	outPage := build.PageSize
	if need := outSchema.FixedWidth() + storage.PageHeaderSize + storage.SlotSize; need > outPage {
		outPage = need
	}
	cj.out = NewOutWriter(m, outPage, outSchema, false)

	var r JoinResult
	pre := m.S.Stats()
	cj.buildChained()
	mid := m.S.Stats()
	r.BuildStats = mid.Sub(pre)

	switch scheme {
	case SchemeBaseline, SchemeSimple:
		cj.probeBaseline()
	case SchemeGroup:
		cj.probeGroup(params.G)
	default:
		panic("core: chained join supports baseline, simple, and group schemes")
	}
	cj.out.Close()
	r.ProbeStats = m.S.Stats().Sub(mid)
	r.NOutput = cj.out.NOutput
	r.KeySum = cj.out.KeySum
	return r
}

type chainedJoiner struct {
	m     *vmem.Mem
	build *storage.Relation
	probe *storage.Relation
	table hash.ChainedTable

	buildLen int
	out      *OutWriter
}

// buildChained inserts every build tuple at its chain head (timed).
func (cj *chainedJoiner) buildChained() {
	m := cj.m
	a := m.A
	cur := newCursor(cj.build)
	for {
		page, slot, ok := cur.next(m, true)
		if !ok {
			return
		}
		m.Compute(CostLoop)
		m.S.Read(slot, storage.SlotSize)
		off := a.U16(slot + storage.SlotOffOffset)
		tuple := page + arena.Addr(off)
		code := a.U32(slot + storage.SlotOffHash)
		m.Compute(CostMod)
		h := cj.table.HeaderAddr(hash.BucketOf(code, cj.table.NBuckets))

		m.S.Read(h, 8)
		head := a.U64(h)
		m.Compute(CostAllocCells)
		node := m.Alloc(hash.ChainNodeSize, 8)
		m.S.Write(node, hash.ChainNodeSize)
		a.PutU32(node+hash.NodeOffCode, code)
		a.PutU64(node+hash.NodeOffTuple, tuple)
		a.PutU64(node+hash.NodeOffNext, head)
		m.S.Write(h, 8)
		a.PutU64(h, node)
	}
}

// probeBaseline walks each probe's chain node by node: the full
// pointer-chasing cost, one dependent miss per node.
func (cj *chainedJoiner) probeBaseline() {
	m := cj.m
	a := m.A
	cur := newCursor(cj.probe)
	for {
		page, slot, ok := cur.next(m, false)
		if !ok {
			return
		}
		m.Compute(CostLoop)
		tuple, length, code := readSlot(m, page, slot)
		m.Compute(CostMod)
		h := cj.table.HeaderAddr(hash.BucketOf(code, cj.table.NBuckets))
		m.S.Read(h, 8)
		cj.walkChain(a.U64(h), code, tuple, length)
	}
}

// walkChain visits every node of a chain (timed) and emits matches.
func (cj *chainedJoiner) walkChain(node arena.Addr, code uint32, probe arena.Addr, probeLen int) {
	m := cj.m
	a := m.A
	for node != 0 {
		m.S.Read(node, hash.ChainNodeSize)
		m.Compute(CostVisitCell)
		if a.U32(node+hash.NodeOffCode) == code {
			m.S.Read(a.U64(node+hash.NodeOffTuple), 4)
			m.S.Read(probe, 4)
			m.Compute(CostCompare)
			bt := a.U64(node + hash.NodeOffTuple)
			if a.U32(bt) == a.U32(probe) {
				cj.out.Emit(bt, cj.buildLen, probe, probeLen)
			}
		}
		node = a.U64(node + hash.NodeOffNext)
	}
}

// chainState carries one tuple across the chained group-prefetching
// stages.
type chainState struct {
	tuple  arena.Addr
	length int
	code   uint32
	header arena.Addr
	head   arena.Addr
}

// probeGroup applies group prefetching as far as the chained layout
// permits: headers in stage 0, chain heads in stage 1 — beyond that each
// next pointer lives in the previous node, so the remaining walk cannot
// be prefetched across tuples. This is the quantitative form of the
// paper's section 3 argument against chained buckets.
func (cj *chainedJoiner) probeGroup(g int) {
	m := cj.m
	a := m.A
	states := make([]chainState, g)
	cur := newCursor(cj.probe)

	for {
		// Stage 0: bucket numbers; prefetch headers.
		n := 0
		for n < g {
			page, slot, ok := cur.next(m, true)
			if !ok {
				break
			}
			st := &states[n]
			m.Compute(CostLoop + CostStateGroup)
			st.tuple, st.length, st.code = readSlot(m, page, slot)
			m.Compute(CostMod)
			st.header = cj.table.HeaderAddr(hash.BucketOf(st.code, cj.table.NBuckets))
			m.Prefetch(st.header)
			n++
		}
		if n == 0 {
			return
		}

		// Stage 1: read head pointers; prefetch the first nodes.
		for i := 0; i < n; i++ {
			st := &states[i]
			m.Compute(CostStateGroup)
			m.S.Read(st.header, 8)
			st.head = a.U64(st.header)
			if st.head != 0 {
				m.Prefetch(st.head)
			}
		}

		// Stage 2: walk the chains — exposed beyond the first node.
		for i := 0; i < n; i++ {
			st := &states[i]
			m.Compute(CostStateGroup)
			if st.head != 0 {
				cj.walkChain(st.head, st.code, st.tuple, st.length)
			}
		}

		if n < g {
			return
		}
	}
}
