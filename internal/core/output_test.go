package core

import (
	"encoding/binary"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

func outEnv() *vmem.Mem {
	return vmem.New(arena.New(4<<20), memsim.NewSim(memsim.SmallConfig()))
}

// stage writes a build and probe tuple into the arena.
func stageTuples(m *vmem.Mem, key uint32, buildLen, probeLen int) (arena.Addr, arena.Addr) {
	b := m.Alloc(uint64(buildLen), 8)
	p := m.Alloc(uint64(probeLen), 8)
	var kb [4]byte
	binary.LittleEndian.PutUint32(kb[:], key)
	copy(m.A.Bytes(b, 4), kb[:])
	copy(m.A.Bytes(p, 4), kb[:])
	return b, p
}

func TestOutWriterCountsAndChecksum(t *testing.T) {
	m := outEnv()
	schema := storage.JoinedSchema(storage.KeyPayloadSchema(24), storage.KeyPayloadSchema(16))
	w := NewOutWriter(m, 1024, schema, false)
	var wantSum uint64
	for i := uint32(1); i <= 100; i++ {
		b, p := stageTuples(m, i, 24, 16)
		w.Emit(b, 24, p, 16)
		wantSum += uint64(i)
	}
	w.Close()
	if w.NOutput != 100 || w.KeySum != wantSum {
		t.Fatalf("NOutput=%d KeySum=%d, want 100/%d", w.NOutput, w.KeySum, wantSum)
	}
	if w.PagesOut < 4 {
		t.Fatalf("expected several retired pages for 100 x 40B on 1KB pages, got %d", w.PagesOut)
	}
}

func TestOutWriterKeepMaterializes(t *testing.T) {
	m := outEnv()
	schema := storage.JoinedSchema(storage.KeyPayloadSchema(12), storage.KeyPayloadSchema(12))
	w := NewOutWriter(m, 512, schema, true)
	for i := uint32(1); i <= 30; i++ {
		b, p := stageTuples(m, i, 12, 12)
		w.Emit(b, 12, p, 12)
	}
	w.Close()
	if w.Result == nil || w.Result.NTuples != 30 {
		t.Fatalf("kept %v tuples", w.Result)
	}
	i := uint32(1)
	w.Result.Each(func(tup []byte, _ uint32) {
		if len(tup) != 24 {
			t.Fatalf("output tuple %d bytes", len(tup))
		}
		if w.Result.Schema.Key(tup) != i {
			t.Fatalf("tuple %d key %d", i, w.Result.Schema.Key(tup))
		}
		i++
	})
}

func TestOutWriterChargesTime(t *testing.T) {
	m := outEnv()
	schema := storage.JoinedSchema(storage.KeyPayloadSchema(64), storage.KeyPayloadSchema(64))
	w := NewOutWriter(m, 2048, schema, false)
	b, p := stageTuples(m, 7, 64, 64)
	before := m.S.Now()
	w.Emit(b, 64, p, 64)
	if m.S.Now() == before {
		t.Fatal("Emit charged no simulated time")
	}
}

func TestOutWriterCloseIdempotent(t *testing.T) {
	m := outEnv()
	schema := storage.JoinedSchema(storage.KeyPayloadSchema(12), storage.KeyPayloadSchema(12))
	w := NewOutWriter(m, 512, schema, true)
	b, p := stageTuples(m, 9, 12, 12)
	w.Emit(b, 12, p, 12)
	w.Close()
	w.Close()
	if w.Result.NTuples != 1 {
		t.Fatalf("double Close duplicated output: %d", w.Result.NTuples)
	}
}

func TestPartitionsForScaling(t *testing.T) {
	a := arena.New(8 << 20)
	rel := storage.NewRelation(a, storage.KeyPayloadSchema(100), 4096)
	tup := make([]byte, 100)
	for i := 0; i < 10000; i++ {
		rel.Append(tup, 0)
	}
	small := PartitionsFor(rel, 64<<10)
	big := PartitionsFor(rel, 1<<20)
	if small <= big {
		t.Fatalf("smaller budget must need more partitions: %d vs %d", small, big)
	}
	if big < 1 {
		t.Fatalf("at least one partition required")
	}
	// A partition plus its table must roughly fit the budget.
	perTuple := 100 + storage.SlotSize + 32 + 8
	if (10000/small+1)*perTuple > 64<<10+perTuple {
		t.Fatalf("partition footprint exceeds budget with %d partitions", small)
	}
}

func TestParamsNormalized(t *testing.T) {
	p := Params{}.normalized()
	if p.G != DefaultParams().G || p.D != DefaultParams().D {
		t.Fatalf("zero params should normalize to defaults: %+v", p)
	}
	q := Params{G: 7, D: 9, RecomputeHash: true}.normalized()
	if q.G != 7 || q.D != 9 || !q.RecomputeHash {
		t.Fatalf("explicit params perturbed: %+v", q)
	}
}

func TestSchemeString(t *testing.T) {
	cases := map[Scheme]string{
		SchemeBaseline:  "baseline",
		SchemeSimple:    "simple",
		SchemeGroup:     "group",
		SchemePipelined: "pipelined",
		SchemeCombined:  "combined",
		Scheme(42):      "Scheme(42)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
