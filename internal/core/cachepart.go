package core

import (
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// Cache partitioning comparators (paper section 7.5). Both generate
// build partitions small enough that a partition plus its hash table
// fits within the CPU's secondary cache, nearly eliminating join-phase
// cache misses — at the cost of either many more I/O partitions ("direct
// cache") or an extra in-memory partitioning pass ("two-step cache").
// Their I/O partition phases use the combined prefetching scheme, and
// their join phases are enhanced with simple prefetching, matching the
// paper's "enhance cache partitioning wherever possible".

// CacheBudgetFraction is the fraction of the L2 cache a build partition
// plus its hash table may occupy; the rest is headroom for the probe
// stream, output buffer, and code.
const CacheBudgetFraction = 0.5

// cachePartitionsFor sizes partitions to fit the cache budget.
func cachePartitionsFor(build *storage.Relation, l2Size int) int {
	budget := int(CacheBudgetFraction * float64(l2Size))
	perTuple := build.Schema.FixedWidth() + storage.SlotSize + hash.HeaderSize + hash.CellSize/2
	n := (build.NTuples*perTuple + budget - 1) / budget
	if n < 1 {
		n = 1
	}
	return n
}

// DirectCache runs the "direct cache" scheme: the I/O partition phase
// directly produces cache-sized partitions (far more of them), and each
// pair joins with everything cache-resident.
func DirectCache(m *vmem.Mem, build, probe *storage.Relation, cfg GraceConfig) GraceResult {
	n := cachePartitionsFor(build, m.S.Config().L2Size)
	sub := cfg
	sub.PartScheme = SchemeCombined
	sub.JoinScheme = SchemeSimple
	return graceWithPartitions(m, build, probe, n, sub)
}

// TwoStepCache runs the "two-step cache" scheme: the I/O partition phase
// produces memory-sized partitions as usual; then, as a join-phase
// preprocessing step, each partition pair is re-partitioned in memory
// into cache-sized sub-partitions (the additional copying cost the paper
// charges to the join phase), which are then joined cache-resident.
func TwoStepCache(m *vmem.Mem, build, probe *storage.Relation, cfg GraceConfig) GraceResult {
	if cfg.MemBudget <= 0 {
		panic("core: GraceConfig.MemBudget must be positive")
	}
	n := PartitionsFor(build, cfg.MemBudget)
	r := GraceResult{NPartitions: n}

	pc := cfg
	pc.PartScheme = SchemeCombined

	if r.Err = check(cfg); r.Err != nil {
		return r
	}
	pb := PartitionRelation(m, build, n, pc.PartScheme, pc.PartParams)
	r.PartBuildStats = pb.Stats
	if r.Err = check(cfg); r.Err != nil {
		return r
	}
	pp := PartitionRelation(m, probe, n, pc.PartScheme, pc.PartParams)
	r.PartProbeStats = pp.Stats

	for i := 0; i < n; i++ {
		// Second, in-memory partitioning pass — charged to the join
		// phase, as in the paper's Figure 19 accounting.
		sub := cacheSubPartitions(m, pb.Partitions[i])
		sb := PartitionRelation(m, pb.Partitions[i], sub, SchemeCombined, cfg.PartParams)
		sp := PartitionRelation(m, pp.Partitions[i], sub, SchemeCombined, cfg.PartParams)
		for k := 0; k < sub; k++ {
			if r.Err = check(cfg); r.Err != nil {
				return r
			}
			jr := JoinPair(m, sb.Partitions[k], sp.Partitions[k], SchemeSimple, cfg.JoinParams, n*sub, cfg.Keep)
			r.NOutput += jr.NOutput
			r.KeySum += jr.KeySum
			r.JoinStats = r.JoinStats.Add(jr.Stats())
			r.PairsJoined++
		}
		r.JoinStats = r.JoinStats.Add(sb.Stats).Add(sp.Stats)
	}
	return r
}

// cacheSubPartitions sizes the in-memory second pass.
func cacheSubPartitions(m *vmem.Mem, buildPart *storage.Relation) int {
	return cachePartitionsFor(buildPart, m.S.Config().L2Size)
}

// JoinPairFlushed joins a pair under periodic cache flushing (Figure
// 18's worst-case interference study) by building a dedicated simulator
// around the relations' arena.
func JoinPairFlushed(a *vmem.Mem, flushInterval uint64, build, probe *storage.Relation, scheme Scheme, params Params) JoinResult {
	cfg := a.S.Config()
	cfg.FlushInterval = flushInterval
	m := vmem.New(a.A, memsim.NewSim(cfg))
	return JoinPair(m, build, probe, scheme, params, 1, false)
}
