package core

import (
	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
)

// Group prefetching (paper section 4). The probe loop is strip-mined
// into groups of G tuples and the hash-table visit's dependent memory
// references are distributed into stages; each stage performs one
// reference on the critical path for every tuple in the group, then
// issues the prefetches for the next stage's references. Cache misses of
// one tuple thus overlap with computation and misses of the other G-1.
//
// The probe visit has k = 3 dependent references (bucket header, hash
// cell array, matching build tuple), giving k+1 = 4 stages; hash table
// building has k = 2 (header, cell-array tail). Multiple code paths —
// empty buckets, inline-only buckets, multi-cell buckets, zero or many
// matches — are folded into the stages with per-tuple state, as in the
// paper's Figure 5.

// probeState carries one tuple's state across the probe stages.
type probeState struct {
	tuple  arena.Addr // probe tuple
	length int
	code   uint32
	header arena.Addr

	count   uint32
	cells   arena.Addr
	matches []arena.Addr // build tuples whose hash codes matched

	active bool
}

// probeGroup is the group-prefetching probe loop.
func (j *joiner) probeGroup() {
	m := j.m
	g := j.params.G
	states := make([]probeState, g)
	for i := range states {
		states[i].matches = make([]arena.Addr, 0, 4)
	}
	cur := newCursor(j.probe)

	for {
		// Stage 0: compute the hash bucket number for every tuple in the
		// group; prefetch the target bucket headers.
		n := 0
		for n < g {
			page, slot, ok := cur.next(m, true)
			if !ok {
				break
			}
			st := &states[n]
			m.Compute(CostLoop + CostStateGroup)
			st.tuple, st.length, st.code = j.slotCode(page, slot)
			m.Compute(CostMod)
			st.header = j.table.HeaderAddr(hash.BucketOf(st.code, j.table.NBuckets))
			st.active = true
			st.matches = st.matches[:0]
			m.Prefetch(st.header)
			n++
		}
		if n == 0 {
			return
		}

		// Stage 1: visit the bucket headers; prefetch the hash cell
		// arrays (and, for inline matches, the build tuple directly).
		for i := 0; i < n; i++ {
			st := &states[i]
			m.Compute(CostStateGroup)
			m.S.Read(st.header, 16)
			m.Compute(CostVisitHeader)
			st.count = m.A.U32(st.header + hash.HOffCount)
			if st.count == 0 {
				st.active = false
				continue
			}
			if m.A.U32(st.header+hash.HOffCode0) == st.code {
				bt := m.A.U64(st.header + hash.HOffTuple0)
				st.matches = append(st.matches, bt)
				m.PrefetchRange(bt, j.buildLen)
			}
			if st.count > 1 {
				m.S.Read(st.header+hash.HOffCells, 8)
				st.cells = m.A.U64(st.header + hash.HOffCells)
				m.PrefetchRange(st.cells, int(st.count-1)*hash.CellSize)
			} else {
				st.cells = 0
			}
		}

		// Stage 2: visit the hash cell arrays; prefetch the matching
		// build tuples.
		for i := 0; i < n; i++ {
			st := &states[i]
			if !st.active || st.cells == 0 {
				continue
			}
			m.Compute(CostStateGroup)
			m.S.Read(st.cells, int(st.count-1)*hash.CellSize)
			for k := 0; k < int(st.count-1); k++ {
				c := hash.CellAddr(st.cells, k)
				m.Compute(CostVisitCell)
				if m.A.U32(c+hash.CellOffCode) == st.code {
					bt := m.A.U64(c + hash.CellOffTuple)
					st.matches = append(st.matches, bt)
					m.PrefetchRange(bt, j.buildLen)
				}
			}
		}

		// Stage 3: visit the matching build tuples, compare keys, and
		// produce output tuples.
		for i := 0; i < n; i++ {
			st := &states[i]
			if !st.active {
				continue
			}
			m.Compute(CostStateGroup)
			for _, bt := range st.matches {
				j.compareAndEmit(bt, st.tuple, st.length)
			}
		}

		if n < g {
			return
		}
	}
}

// buildState carries one tuple's state across the build stages.
type buildState struct {
	tuple  arena.Addr
	code   uint32
	bucket int
	header arena.Addr
	active bool
}

// buildGroup is the group-prefetching build loop. Hash table building is
// read-write: two tuples of one group can hash to the same bucket, and
// because visits are interleaved the second would observe a half-updated
// bucket. A busy flag in the header guards each bucket; tuples landing
// on a busy bucket are delayed to the end of the group body, a natural
// barrier where the earlier access has completed — and has warmed the
// cache, so the delayed insert runs without prefetching (section 4.4).
func (j *joiner) buildGroup() {
	m := j.m
	g := j.params.G
	states := make([]buildState, g)
	delayed := make([]int, 0, g)
	cur := newCursor(j.build)

	for {
		// Stage 0: hash bucket numbers; prefetch headers.
		n := 0
		for n < g {
			page, slot, ok := cur.next(m, true)
			if !ok {
				break
			}
			st := &states[n]
			m.Compute(CostLoop + CostStateGroup)
			st.tuple, _, st.code = j.slotCode(page, slot)
			m.Compute(CostMod)
			st.bucket = hash.BucketOf(st.code, j.table.NBuckets)
			st.header = j.table.HeaderAddr(st.bucket)
			st.active = true
			m.Prefetch(st.header)
			n++
		}
		if n == 0 {
			return
		}
		delayed = delayed[:0]

		// Stage 1: visit headers. Empty buckets complete their insert
		// here (the inline cell lives in the header just visited); busy
		// buckets defer; others mark busy and prefetch the cell-array
		// tail where the new cell will be written.
		for i := 0; i < n; i++ {
			st := &states[i]
			m.Compute(CostStateGroup)
			m.S.Read(st.header, 32)
			m.Compute(CostVisitHeader)
			a := m.A
			if a.U32(st.header+hash.HOffBusy) != 0 {
				delayed = append(delayed, i)
				st.active = false
				continue
			}
			count := a.U32(st.header + hash.HOffCount)
			if count == 0 {
				m.S.Write(st.header, 16)
				a.PutU32(st.header+hash.HOffCode0, st.code)
				a.PutU64(st.header+hash.HOffTuple0, st.tuple)
				a.PutU32(st.header+hash.HOffCount, 1)
				st.active = false
				continue
			}
			// Mark busy until stage 2 finishes this bucket.
			m.S.Write(st.header+hash.HOffBusy, 4)
			a.PutU32(st.header+hash.HOffBusy, 1)
			if cells := a.U64(st.header + hash.HOffCells); cells != 0 {
				over := count - 1
				if over < a.U32(st.header+hash.HOffCap) {
					m.Prefetch(hash.CellAddr(cells, int(over)))
				}
			}
		}

		// Stage 2: append the overflow cell (growing the array when
		// needed), bump the count, clear the busy flag.
		for i := 0; i < n; i++ {
			st := &states[i]
			if !st.active {
				continue
			}
			m.Compute(CostStateGroup)
			j.appendCellTimed(st.header, st.code, st.tuple)
			m.S.Write(st.header+hash.HOffBusy, 4)
			m.A.PutU32(st.header+hash.HOffBusy, 0)
		}

		// Group boundary: the delayed tuples' buckets are settled and
		// cache-warm; insert them directly, without prefetching.
		for _, i := range delayed {
			st := &states[i]
			m.Compute(CostStateGroup)
			j.insertTimed(st.bucket, st.code, st.tuple)
		}

		if n < g {
			return
		}
	}
}

// appendCellTimed appends an overflow cell to a non-empty bucket whose
// header has already been visited (and is cache-resident).
func (j *joiner) appendCellTimed(h arena.Addr, code uint32, tuple arena.Addr) {
	m := j.m
	a := m.A
	count := a.U32(h + hash.HOffCount)
	cells := a.U64(h + hash.HOffCells)
	capacity := a.U32(h + hash.HOffCap)
	over := count - 1
	if cells == 0 || over == capacity {
		cells = j.growCells(h, cells, over, capacity)
	}
	c := hash.CellAddr(cells, int(over))
	m.S.Write(c, hash.CellSize)
	a.PutU32(c+hash.CellOffCode, code)
	a.PutU64(c+hash.CellOffTuple, tuple)
	m.S.Write(h+hash.HOffCount, 4)
	a.PutU32(h+hash.HOffCount, count+1)
}
