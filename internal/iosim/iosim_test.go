package iosim

import (
	"testing"
	"testing/quick"
)

// paperishLoad approximates the paper's partition phase: 4.5 GB of
// streaming in and out with ~200 s of CPU work.
func paperishLoad() Load {
	return Load{ReadBytes: 45 << 28, WriteBytes: 45 << 28, CPUSeconds: 200}
}

func TestWorkerIOShrinksWithDisks(t *testing.T) {
	prev := -1.0
	for n := 1; n <= 6; n++ {
		r := RunPhase(DefaultConfig(n), paperishLoad())
		if prev > 0 && r.WorkerIOSeconds > prev*1.01 {
			t.Fatalf("worker I/O grew from %.1f to %.1f with %d disks", prev, r.WorkerIOSeconds, n)
		}
		prev = r.WorkerIOSeconds
	}
	one := RunPhase(DefaultConfig(1), paperishLoad()).WorkerIOSeconds
	six := RunPhase(DefaultConfig(6), paperishLoad()).WorkerIOSeconds
	if six > one/4 {
		t.Fatalf("worker I/O with 6 disks (%.1f) should be near one sixth of 1 disk (%.1f)", six, one)
	}
}

func TestElapsedFlattensWhenCPUBound(t *testing.T) {
	// The Figure 9 shape: elapsed falls steeply up to ~4 disks, then
	// flattens at the CPU time.
	load := paperishLoad()
	e4 := RunPhase(DefaultConfig(4), load).ElapsedSeconds
	e6 := RunPhase(DefaultConfig(6), load).ElapsedSeconds
	e1 := RunPhase(DefaultConfig(1), load).ElapsedSeconds
	if e1 < 1.5*e4 {
		t.Fatalf("1 disk (%.1f) should be much slower than 4 disks (%.1f)", e1, e4)
	}
	if e6 < load.CPUSeconds || e6 > load.CPUSeconds*1.2 {
		t.Fatalf("6-disk elapsed %.1f should sit just above CPU time %.1f", e6, load.CPUSeconds)
	}
	if (e4-e6)/e4 > 0.15 {
		t.Fatalf("elapsed should flatten between 4 (%.1f) and 6 (%.1f) disks", e4, e6)
	}
}

func TestMainWaitSmallWhenCPUBound(t *testing.T) {
	r := RunPhase(DefaultConfig(6), paperishLoad())
	if frac := r.MainWaitSeconds / r.ElapsedSeconds; frac > 0.10 {
		t.Fatalf("main thread waits %.0f%% of elapsed with 6 disks, want < 10%%", frac*100)
	}
}

func TestIOBoundWhenCPULight(t *testing.T) {
	load := Load{ReadBytes: 45 << 28, WriteBytes: 0, CPUSeconds: 1}
	r := RunPhase(DefaultConfig(1), load)
	if r.MainWaitSeconds < r.CPUSeconds {
		t.Fatalf("with trivial CPU work the main thread should mostly wait (wait %.1f)", r.MainWaitSeconds)
	}
	if r.ElapsedSeconds < r.WorkerIOSeconds {
		t.Fatalf("elapsed %.1f below worker I/O %.1f", r.ElapsedSeconds, r.WorkerIOSeconds)
	}
}

func TestPureComputePhase(t *testing.T) {
	r := RunPhase(DefaultConfig(3), Load{CPUSeconds: 42})
	if r.ElapsedSeconds != 42 || r.WorkerIOSeconds != 0 {
		t.Fatalf("pure compute phase: %+v", r)
	}
}

func TestRunJoinPhases(t *testing.T) {
	part, join := RunJoin(DefaultConfig(4), 3<<29, 3<<30, 150, 250)
	if part.ElapsedSeconds <= 0 || join.ElapsedSeconds <= 0 {
		t.Fatal("phases must take time")
	}
	if join.CPUSeconds != 250 {
		t.Fatalf("join CPU = %.1f", join.CPUSeconds)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NDisks: 0, TransferMBps: 68, StripeUnitKB: 256, ReadAheadUnits: 8},
		{NDisks: 2, TransferMBps: 0, StripeUnitKB: 256, ReadAheadUnits: 8},
		{NDisks: 2, TransferMBps: 68, StripeUnitKB: 0, ReadAheadUnits: 8},
		{NDisks: 2, TransferMBps: 68, StripeUnitKB: 256, ReadAheadUnits: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config accepted", i)
				}
			}()
			RunPhase(cfg, Load{ReadBytes: 1 << 20, CPUSeconds: 1})
		}()
	}
}

func TestQuickElapsedBounds(t *testing.T) {
	// Elapsed is at least both the CPU time and the per-disk I/O time,
	// and at most their sum plus scheduling slack.
	f := func(nDisks, readMB, cpuDs uint8) bool {
		n := int(nDisks)%6 + 1
		load := Load{
			ReadBytes:  (int64(readMB) + 1) << 22,
			CPUSeconds: float64(cpuDs) / 10,
		}
		r := RunPhase(DefaultConfig(n), load)
		if r.ElapsedSeconds+1e-9 < load.CPUSeconds {
			return false
		}
		if r.ElapsedSeconds+1e-9 < r.WorkerIOSeconds {
			return false
		}
		return r.ElapsedSeconds <= load.CPUSeconds+r.WorkerIOSeconds*float64(n)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
