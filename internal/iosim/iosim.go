// Package iosim is a discrete-event simulation of the paper's I/O
// subsystem (section 7.2): relations striped across N disks in 256 KB
// units, a buffer manager with one worker thread per disk performing
// read-ahead and background write-behind, and a main join thread that
// consumes pages and blocks only when the next unit has not arrived.
// It reproduces the structure of Figure 9: worker I/O time shrinking
// with added disks while CPU time stays flat, so the elapsed time
// flattens once the join is CPU-bound.
package iosim

import "fmt"

// Config describes the disk subsystem. The defaults follow the paper's
// hardware: Seagate Cheetah X15 36LP disks at up to 68 MB/s, 256 KB
// stripe units.
type Config struct {
	NDisks         int
	TransferMBps   float64 // sustained sequential transfer rate per disk
	SeekMs         float64 // per-request positioning overhead
	StripeUnitKB   int
	ReadAheadUnits int // buffer-manager prefetch depth per stream
}

// DefaultConfig returns the paper's disk parameters.
func DefaultConfig(nDisks int) Config {
	return Config{
		NDisks:         nDisks,
		TransferMBps:   68,
		SeekMs:         1.0,
		StripeUnitKB:   256,
		ReadAheadUnits: 8,
	}
}

func (c Config) validate() {
	switch {
	case c.NDisks <= 0:
		panic("iosim: NDisks must be positive")
	case c.TransferMBps <= 0:
		panic("iosim: TransferMBps must be positive")
	case c.StripeUnitKB <= 0:
		panic("iosim: StripeUnitKB must be positive")
	case c.ReadAheadUnits <= 0:
		panic("iosim: ReadAheadUnits must be positive")
	}
}

// unitSeconds is the service time of one stripe-unit request.
func (c Config) unitSeconds() float64 {
	return c.SeekMs/1e3 + float64(c.StripeUnitKB)/1024/c.TransferMBps
}

// Load describes one phase's resource demands.
type Load struct {
	ReadBytes  int64   // bytes streamed in
	WriteBytes int64   // bytes written out (intermediate partitions)
	CPUSeconds float64 // user-mode CPU time of the phase
}

// Result reports a simulated phase, mirroring the series of Figure 9.
type Result struct {
	ElapsedSeconds  float64 // total wall-clock time
	WorkerIOSeconds float64 // max per-disk busy time ("worker I/O stall")
	MainWaitSeconds float64 // main thread blocked on workers
	CPUSeconds      float64
}

// String formats the result like a row of Figure 9's series.
func (r Result) String() string {
	return fmt.Sprintf("elapsed=%.1fs workerIO=%.1fs mainWait=%.1fs cpu=%.1fs",
		r.ElapsedSeconds, r.WorkerIOSeconds, r.MainWaitSeconds, r.CPUSeconds)
}

// RunPhase simulates one phase. The main thread consumes read units in
// order, spending CPUSeconds/readUnits on each; per-disk worker queues
// serve read-ahead requests (window ReadAheadUnits) and the write-behind
// traffic generated as units are consumed.
func RunPhase(cfg Config, load Load) Result {
	cfg.validate()
	unitBytes := int64(cfg.StripeUnitKB) << 10
	readUnits := int((load.ReadBytes + unitBytes - 1) / unitBytes)
	writeUnits := int((load.WriteBytes + unitBytes - 1) / unitBytes)
	if readUnits == 0 {
		// Pure compute: nothing to stream.
		return Result{ElapsedSeconds: load.CPUSeconds, CPUSeconds: load.CPUSeconds}
	}
	cpuPerUnit := load.CPUSeconds / float64(readUnits)
	writesPerRead := float64(writeUnits) / float64(readUnits)
	svc := cfg.unitSeconds()

	diskFree := make([]float64, cfg.NDisks)
	diskBusy := make([]float64, cfg.NDisks)
	ready := make([]float64, readUnits)

	// schedule puts one request on a disk, returning completion time.
	schedule := func(disk int, at float64) float64 {
		start := diskFree[disk]
		if at > start {
			start = at
		}
		done := start + svc
		diskFree[disk] = done
		diskBusy[disk] += svc
		return done
	}

	// Issue the initial read-ahead window at time zero.
	issued := 0
	for ; issued < readUnits && issued < cfg.ReadAheadUnits; issued++ {
		ready[issued] = schedule(issued%cfg.NDisks, 0)
	}

	var t, mainWait, writeCarry float64
	for i := 0; i < readUnits; i++ {
		if ready[i] > t {
			mainWait += ready[i] - t
			t = ready[i]
		}
		t += cpuPerUnit

		// Consuming unit i frees a read-ahead slot: issue the next unit.
		if issued < readUnits {
			ready[issued] = schedule(issued%cfg.NDisks, t)
			issued++
		}
		// Write-behind traffic produced by this unit's processing.
		writeCarry += writesPerRead
		for writeCarry >= 1 {
			writeCarry--
			w := (i * 7) % cfg.NDisks // writes spread across disks
			schedule(w, t)
		}
	}

	// The phase ends when the main thread finishes and all background
	// writes drain.
	elapsed := t
	var maxBusy float64
	for d := range diskFree {
		if diskFree[d] > elapsed {
			elapsed = diskFree[d]
		}
		if diskBusy[d] > maxBusy {
			maxBusy = diskBusy[d]
		}
	}
	return Result{
		ElapsedSeconds:  elapsed,
		WorkerIOSeconds: maxBusy,
		MainWaitSeconds: mainWait,
		CPUSeconds:      load.CPUSeconds,
	}
}

// RunJoin simulates the paper's Figure 9 setup: a partition phase
// reading the build (or probe) relation and writing it back as
// partitions, and a join phase reading every partition pair. cpuPart and
// cpuJoin are the phases' user CPU seconds.
func RunJoin(cfg Config, buildBytes, probeBytes int64, cpuPart, cpuJoin float64) (part, join Result) {
	part = RunPhase(cfg, Load{
		ReadBytes:  buildBytes + probeBytes,
		WriteBytes: buildBytes + probeBytes,
		CPUSeconds: cpuPart,
	})
	join = RunPhase(cfg, Load{
		ReadBytes:  buildBytes + probeBytes,
		WriteBytes: 0, // output flows to the parent operator
		CPUSeconds: cpuJoin,
	})
	return part, join
}
