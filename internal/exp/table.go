package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced figure: labeled rows of float series, printed
// either as an aligned text table or as CSV.
type Table struct {
	ID       string // e.g. "fig10a"
	Title    string
	RowLabel string   // name of the x axis ("tuple size", "# disks", ...)
	Columns  []string // series names
	Rows     []Row
	Notes    []string // paper-vs-measured commentary
}

// Row is one x value and its series values.
type Row struct {
	Label  string
	Values []float64
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("exp: row %q has %d values, table %s has %d columns", label, len(values), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Note appends a commentary line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint writes an aligned, human-readable rendering.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.RowLabel)
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(r.Values))
		for j, v := range r.Values {
			cells[i][j] = formatValue(v)
			if len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	for j, c := range t.Columns {
		if len(c) > widths[j+1] {
			widths[j+1] = len(c)
		}
	}
	fmt.Fprintf(w, "%-*s", widths[0], t.RowLabel)
	for j, c := range t.Columns {
		fmt.Fprintf(w, "  %*s", widths[j+1], c)
	}
	fmt.Fprintln(w)
	for i, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", widths[0], r.Label)
		for j := range r.Values {
			fmt.Fprintf(w, "  %*s", widths[j+1], cells[i][j])
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	cols := make([]string, 0, len(t.Columns)+1)
	cols = append(cols, t.RowLabel)
	cols = append(cols, t.Columns...)
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, r := range t.Rows {
		vals := make([]string, 0, len(r.Values)+1)
		vals = append(vals, r.Label)
		for _, v := range r.Values {
			vals = append(vals, formatValue(v))
		}
		fmt.Fprintln(w, strings.Join(vals, ","))
	}
}

// Series returns the values of one named column, for assertions.
func (t *Table) Series(name string) []float64 {
	for j, c := range t.Columns {
		if c == name {
			out := make([]float64, len(t.Rows))
			for i, r := range t.Rows {
				out[i] = r.Values[j]
			}
			return out
		}
	}
	panic(fmt.Sprintf("exp: table %s has no column %q", t.ID, name))
}

func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e7:
		return fmt.Sprintf("%.0f", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
