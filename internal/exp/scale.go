// Package exp reproduces every figure of the paper's evaluation
// (section 7): the stall breakdowns (Figures 1, 11, 15), the
// CPU-vs-I/O-bound study (Figure 9), the join-phase sweeps (Figure 10),
// the parameter-tuning and miss-breakdown curves (Figures 12, 13, 16,
// 17), the partition-phase sweeps (Figure 14), the cache-flush
// robustness study (Figure 18), and the cache-partitioning comparison
// (Figure 19). Each experiment emits a Table with the same rows and
// series the paper reports.
package exp

import (
	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

// Scale fixes the simulated hierarchy and the memory budget of the join
// phase. The paper's ratio of join memory to L2 cache is 50:1 (section
// 7.1 footnote); both scales preserve it.
type Scale struct {
	Name      string
	Cfg       memsim.Config
	MemBudget int // join-phase memory (build partition + hash table)
	PageSize  int
}

// FullScale reproduces the paper's setup: ES40-style hierarchy with a
// 1 MB L2 and a 50 MB join memory. Experiments at this scale take
// minutes; use it from cmd/hjbench.
func FullScale() Scale {
	return Scale{
		Name:      "full",
		Cfg:       memsim.ES40Config(),
		MemBudget: 50 << 20,
		PageSize:  8 << 10,
	}
}

// SmallScale shrinks the hierarchy (128 KB L2) and the join memory
// (6.4 MB) by 8x, preserving the 50:1 ratio. The default for benches.
func SmallScale() Scale {
	return Scale{
		Name:      "small",
		Cfg:       memsim.SmallConfig(),
		MemBudget: 6400 << 10,
		PageSize:  4 << 10,
	}
}

// TinyScale further shrinks the join memory for fast unit tests. The
// memory:cache ratio drops to 8:1, so absolute numbers shift but every
// qualitative relationship survives.
func TinyScale() Scale {
	return Scale{
		Name:      "tiny",
		Cfg:       memsim.SmallConfig(),
		MemBudget: 1 << 20,
		PageSize:  4 << 10,
	}
}

// ByName resolves a scale name.
func ByName(name string) (Scale, bool) {
	switch name {
	case "full":
		return FullScale(), true
	case "small":
		return SmallScale(), true
	case "tiny":
		return TinyScale(), true
	}
	return Scale{}, false
}

// buildTuplesFor sizes a build partition to fill the scale's memory
// budget, accounting for page slots and the hash table, mirroring
// core.PartitionsFor.
func (sc Scale) buildTuplesFor(tupleSize int) int {
	perTuple := tupleSize + storage.SlotSize + 32 + 8 // slot + header + cell slack
	n := sc.MemBudget / perTuple
	if n < 16 {
		n = 16
	}
	return n
}

// joinSpec builds the workload spec of one join-phase experiment: a
// build partition that fits the budget tightly, as in section 7.3.
func (sc Scale) joinSpec(tupleSize, matches, pctMatched int, seed int64) workload.Spec {
	return workload.Spec{
		NBuild:          sc.buildTuplesFor(tupleSize),
		TupleSize:       tupleSize,
		MatchesPerBuild: matches,
		PctMatched:      pctMatched,
		PageSize:        sc.PageSize,
		Seed:            seed,
	}
}

// newPair materializes a workload with a simulator on one arena.
func newPair(spec workload.Spec, cfg memsim.Config) (*workload.Pair, *vmem.Mem) {
	a := arena.New(workload.ArenaBytesFor(spec))
	pair := workload.Generate(a, spec)
	return pair, vmem.New(a, memsim.NewSim(cfg))
}

// runJoinScheme joins a fresh copy of the workload under one scheme.
// Each scheme gets its own arena and cold simulator, as in the paper's
// per-scheme runs.
func runJoinScheme(sc Scale, spec workload.Spec, scheme core.Scheme, params core.Params, cfg memsim.Config) (core.JoinResult, *workload.Pair) {
	pair, m := newPair(spec, cfg)
	res := core.JoinPair(m, pair.Build, pair.Probe, scheme, params, 1, false)
	return res, pair
}

// mcyc converts cycles to millions for readable tables.
func mcyc(c uint64) float64 { return float64(c) / 1e6 }
