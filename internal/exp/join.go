package exp

import (
	"fmt"

	"hashjoin/internal/core"
	"hashjoin/internal/workload"
)

// joinSchemes are the four join-phase competitors of Figure 10, in the
// paper's order.
var joinSchemes = []struct {
	name   string
	scheme core.Scheme
}{
	{"baseline", core.SchemeBaseline},
	{"simple", core.SchemeSimple},
	{"group", core.SchemeGroup},
	{"pipelined", core.SchemePipelined},
}

// Fig10a reproduces Figure 10(a): join phase execution time (megacycles)
// versus tuple size, for the four schemes. The build partition fills the
// scale's memory budget; every build tuple matches two probe tuples.
func Fig10a(sc Scale) *Table {
	t := &Table{
		ID:       "fig10a",
		Title:    "join phase time vs tuple size (Mcycles)",
		RowLabel: "tuple size",
		Columns:  schemeNames(),
	}
	for _, size := range []int{20, 60, 100, 140} {
		spec := sc.joinSpec(size, 2, 100, 1001)
		t.AddRow(fmt.Sprintf("%dB", size), runJoinRow(sc, spec)...)
	}
	annotateSpeedups(t)
	return t
}

// Fig10b reproduces Figure 10(b): join phase time versus the number of
// probe tuples matching each build tuple (the probe relation grows with
// it, hence the steeper curves).
func Fig10b(sc Scale) *Table {
	t := &Table{
		ID:       "fig10b",
		Title:    "join phase time vs matches per build tuple (Mcycles)",
		RowLabel: "matches",
		Columns:  schemeNames(),
	}
	for _, matches := range []int{1, 2, 3, 4} {
		spec := sc.joinSpec(100, matches, 100, 1002)
		t.AddRow(fmt.Sprintf("%d", matches), runJoinRow(sc, spec)...)
	}
	annotateSpeedups(t)
	return t
}

// Fig10c reproduces Figure 10(c): join phase time versus the percentage
// of tuples having matches, at a fixed probe relation size.
func Fig10c(sc Scale) *Table {
	t := &Table{
		ID:       "fig10c",
		Title:    "join phase time vs %% tuples with matches (Mcycles)",
		RowLabel: "% matched",
		Columns:  schemeNames(),
	}
	for _, pct := range []int{50, 75, 100} {
		spec := sc.joinSpec(100, 2, pct, 1003)
		spec.NProbe = spec.NBuild * 2 // fixed probe size across rows
		t.AddRow(fmt.Sprintf("%d%%", pct), runJoinRow(sc, spec)...)
	}
	annotateSpeedups(t)
	return t
}

// Fig11 reproduces Figure 11: the join phase execution time breakdown
// (busy, data-cache stalls, TLB stalls, other) per scheme at the 100 B
// pivot point.
func Fig11(sc Scale) *Table {
	t := &Table{
		ID:       "fig11",
		Title:    "join phase time breakdown at 100B tuples (Mcycles)",
		RowLabel: "scheme",
		Columns:  []string{"busy", "dcache", "dtlb", "other", "total"},
	}
	spec := sc.joinSpec(100, 2, 100, 1004)
	for _, s := range joinSchemes {
		res, _ := runJoinScheme(sc, spec, s.scheme, core.DefaultParams(), sc.Cfg)
		st := res.Stats()
		t.AddRow(s.name, mcyc(st.Busy), mcyc(st.DCacheStall), mcyc(st.TLBStall), mcyc(st.OtherStall), mcyc(st.Total()))
	}
	base := t.Rows[0]
	frac := base.Values[1] / base.Values[4]
	t.Note("baseline dcache stall fraction = %.0f%% (paper: 73%%)", frac*100)
	return t
}

// Fig12 reproduces Figure 12: probe-loop cache performance versus the
// group size G and the prefetch distance D, at the base memory latency
// and at T = 1000 cycles. Values are probe-phase megacycles.
func Fig12(sc Scale) []*Table {
	spec := sc.joinSpec(20, 2, 100, 1005)
	var out []*Table

	for _, lat := range []uint64{sc.Cfg.MemLatency, 1000} {
		cfg := sc.Cfg.WithLatency(lat)

		tg := &Table{
			ID:       fmt.Sprintf("fig12-group-T%d", lat),
			Title:    fmt.Sprintf("probe time vs group size G (T=%d, Mcycles)", lat),
			RowLabel: "G",
			Columns:  []string{"group"},
		}
		for _, g := range []int{1, 2, 4, 8, 12, 16, 19, 24, 32, 48, 64} {
			res, _ := runJoinScheme(sc, spec, core.SchemeGroup, core.Params{G: g, D: 1}, cfg)
			tg.AddRow(fmt.Sprintf("%d", g), mcyc(res.ProbeStats.Total()))
		}
		out = append(out, tg)

		td := &Table{
			ID:       fmt.Sprintf("fig12-pipe-T%d", lat),
			Title:    fmt.Sprintf("probe time vs prefetch distance D (T=%d, Mcycles)", lat),
			RowLabel: "D",
			Columns:  []string{"pipelined"},
		}
		for _, d := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32} {
			res, _ := runJoinScheme(sc, spec, core.SchemePipelined, core.Params{G: 1, D: d}, cfg)
			td.AddRow(fmt.Sprintf("%d", d), mcyc(res.ProbeStats.Total()))
		}
		out = append(out, td)
	}
	return out
}

// Fig13 reproduces Figure 13: the prefetch-outcome breakdown of the
// probe loop as G and D grow — fully hidden, partially hidden, and
// wasted (evicted before use, the conflict-miss signature of oversized
// parameters). Values are thousands of prefetched lines.
func Fig13(sc Scale) []*Table {
	spec := sc.joinSpec(20, 2, 100, 1006)
	kilo := func(v uint64) float64 { return float64(v) / 1e3 }

	tg := &Table{
		ID:       "fig13-group",
		Title:    "probe prefetch outcomes vs G (K lines)",
		RowLabel: "G",
		Columns:  []string{"full-hidden", "part-hidden", "wasted"},
	}
	for _, g := range []int{4, 8, 16, 19, 32, 64, 128, 256} {
		res, _ := runJoinScheme(sc, spec, core.SchemeGroup, core.Params{G: g, D: 1}, sc.Cfg)
		st := res.ProbeStats
		tg.AddRow(fmt.Sprintf("%d", g), kilo(st.PrefetchFullHidden), kilo(st.PrefetchPartHidden), kilo(st.PrefetchWasted))
	}

	td := &Table{
		ID:       "fig13-pipe",
		Title:    "probe prefetch outcomes vs D (K lines)",
		RowLabel: "D",
		Columns:  []string{"full-hidden", "part-hidden", "wasted"},
	}
	for _, d := range []int{1, 2, 4, 8, 16, 32, 64} {
		res, _ := runJoinScheme(sc, spec, core.SchemePipelined, core.Params{G: 1, D: d}, sc.Cfg)
		st := res.ProbeStats
		td.AddRow(fmt.Sprintf("%d", d), kilo(st.PrefetchFullHidden), kilo(st.PrefetchPartHidden), kilo(st.PrefetchWasted))
	}
	return []*Table{tg, td}
}

// schemeNames lists the Figure 10 series.
func schemeNames() []string {
	names := make([]string, len(joinSchemes))
	for i, s := range joinSchemes {
		names[i] = s.name
	}
	return names
}

// runJoinRow measures one workload under all four schemes.
func runJoinRow(sc Scale, spec workload.Spec) []float64 {
	vals := make([]float64, len(joinSchemes))
	for i, s := range joinSchemes {
		res, pair := runJoinScheme(sc, spec, s.scheme, core.DefaultParams(), sc.Cfg)
		if res.NOutput != pair.ExpectedMatches {
			panic(fmt.Sprintf("exp: %s produced %d outputs, want %d", s.name, res.NOutput, pair.ExpectedMatches))
		}
		vals[i] = mcyc(res.Cycles())
	}
	return vals
}

// annotateSpeedups appends the speedup bands the paper headlines.
func annotateSpeedups(t *Table) {
	base := t.Series("baseline")
	for _, name := range []string{"simple", "group", "pipelined"} {
		s := t.Series(name)
		lo, hi := 1e18, 0.0
		for i := range s {
			sp := base[i] / s[i]
			if sp < lo {
				lo = sp
			}
			if sp > hi {
				hi = sp
			}
		}
		t.Note("%s speedup over baseline: %.1f-%.1fx", name, lo, hi)
	}
}
