package exp

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one reproducible paper figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) []*Table
}

// one wraps a single-table experiment.
func one(f func(Scale) *Table) func(Scale) []*Table {
	return func(sc Scale) []*Table { return []*Table{f(sc)} }
}

// Experiments lists every reproduced figure in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "baseline GRACE execution time breakdown", one(Fig01)},
		{"fig9", "hash join is CPU-bound with enough disks", Fig09},
		{"fig10a", "join phase vs tuple size", one(Fig10a)},
		{"fig10b", "join phase vs matches per build tuple", one(Fig10b)},
		{"fig10c", "join phase vs percentage of matched tuples", one(Fig10c)},
		{"fig11", "join phase time breakdown per scheme", one(Fig11)},
		{"fig12", "join tuning: time vs G and D at T=150/1000", Fig12},
		{"fig13", "join prefetch outcome breakdown vs G and D", Fig13},
		{"fig14a", "partition phase vs partition count", one(Fig14a)},
		{"fig14b", "partition phase vs relation size", one(Fig14b)},
		{"fig15", "partition phase breakdown at 800 partitions", one(Fig15)},
		{"fig16", "partition tuning: time vs G and D", Fig16},
		{"fig17", "partition prefetch outcome breakdown", Fig17},
		{"fig18", "robustness under periodic cache flushing", one(Fig18)},
		{"fig19", "end-to-end comparison with cache partitioning", Fig19},
		{"fig19d", "end-to-end comparison vs percentage matched", Fig19d},
		{"ext-agg", "extension: prefetched hash aggregation (paper's future work)", one(ExtAgg)},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	es := Experiments()
	ids := make([]string, len(es))
	for i, e := range es {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// RunAndPrint executes an experiment and prints its tables.
func RunAndPrint(w io.Writer, e Experiment, sc Scale, csv bool) {
	fmt.Fprintf(w, "# %s — %s (scale=%s)\n", e.ID, e.Title, sc.Name)
	for _, t := range e.Run(sc) {
		if csv {
			t.CSV(w)
		} else {
			t.Fprint(w)
		}
		fmt.Fprintln(w)
	}
}
