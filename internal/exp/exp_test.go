package exp

import (
	"bytes"
	"strings"
	"testing"
)

func tiny() Scale { return TinyScale() }

func TestFig01BaselineStallBound(t *testing.T) {
	tab := Fig01(tiny())
	if len(tab.Rows) != 2 {
		t.Fatalf("fig1 rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.Values[1] < 40 {
			t.Errorf("%s dcache%% = %.0f, want the dominant share", r.Label, r.Values[1])
		}
		sum := r.Values[0] + r.Values[1] + r.Values[2] + r.Values[3]
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("%s breakdown sums to %.1f%%", r.Label, sum)
		}
	}
}

func TestFig09Shape(t *testing.T) {
	tabs := Fig09(tiny())
	if len(tabs) != 2 {
		t.Fatalf("fig9 tables = %d", len(tabs))
	}
	for _, tab := range tabs {
		el := tab.Series("elapsed")
		io := tab.Series("worker-io")
		if el[0] < el[5] {
			t.Errorf("%s: elapsed should not grow with disks", tab.ID)
		}
		if io[5] > io[0]/4 {
			t.Errorf("%s: worker I/O should shrink ~1/disks", tab.ID)
		}
		// CPU-bound at 6 disks: elapsed flat between 5 and 6 disks.
		if (el[4]-el[5])/el[4] > 0.15 {
			t.Errorf("%s: elapsed not flattening: %v", tab.ID, el)
		}
	}
}

func TestFig10aShapes(t *testing.T) {
	tab := Fig10a(tiny())
	base := tab.Series("baseline")
	group := tab.Series("group")
	pipe := tab.Series("pipelined")
	simple := tab.Series("simple")
	for i := range base {
		if g := base[i] / group[i]; g < 1.5 {
			t.Errorf("row %s: group speedup %.2f < 1.5", tab.Rows[i].Label, g)
		}
		if p := base[i] / pipe[i]; p < 1.4 {
			t.Errorf("row %s: pipelined speedup %.2f < 1.4", tab.Rows[i].Label, p)
		}
		if s := base[i] / simple[i]; s > 1.6 {
			t.Errorf("row %s: simple speedup %.2f implausibly high", tab.Rows[i].Label, s)
		}
	}
	// Decreasing trend with tuple size (fewer tuples per byte).
	if base[0] < base[len(base)-1] {
		t.Errorf("baseline should decrease with tuple size: %v", base)
	}
}

func TestFig10bUpwardTrend(t *testing.T) {
	tab := Fig10b(tiny())
	base := tab.Series("baseline")
	if base[len(base)-1] <= base[0] {
		t.Errorf("time should grow with matches per build tuple: %v", base)
	}
}

func TestFig12ConcaveAndShifting(t *testing.T) {
	tabs := Fig12(tiny())
	if len(tabs) != 4 {
		t.Fatalf("fig12 tables = %d", len(tabs))
	}
	groupBase := tabs[0].Series("group") // T = base latency
	// G=1 (first row) must be clearly worse than the best G.
	best := groupBase[0]
	for _, v := range groupBase {
		if v < best {
			best = v
		}
	}
	if groupBase[0] < best*1.2 {
		t.Errorf("G=1 (%.1f) should be much worse than best G (%.1f)", groupBase[0], best)
	}
}

func TestFig13WastedGrowsWithG(t *testing.T) {
	tabs := Fig13(tiny())
	wasted := tabs[0].Series("wasted")
	if wasted[len(wasted)-1] <= wasted[0] {
		t.Errorf("wasted prefetches should grow with oversized G: %v", wasted)
	}
}

func TestFig14aCrossover(t *testing.T) {
	tab := Fig14a(tiny())
	base := tab.Series("baseline")
	group := tab.Series("group")
	simple := tab.Series("simple")
	last := len(tab.Rows) - 1
	// Right region: group clearly beats baseline.
	if sp := base[last] / group[last]; sp < 1.3 {
		t.Errorf("group speedup at 800 partitions %.2f < 1.3", sp)
	}
	// Left region: simple competitive with group (within 15%).
	if simple[0] > group[0]*1.15 {
		t.Errorf("simple (%.1f) should win or tie at 25 partitions vs group (%.1f)", simple[0], group[0])
	}
	// Combined should track the best of the two everywhere.
	comb := tab.Series("combined")
	for i := range comb {
		best := simple[i]
		if group[i] < best {
			best = group[i]
		}
		if comb[i] > best*1.2 {
			t.Errorf("combined (%.1f) far from best (%.1f) at %s", comb[i], best, tab.Rows[i].Label)
		}
	}
}

func TestFig18Robustness(t *testing.T) {
	tab := Fig18(tiny())
	last := tab.Rows[len(tab.Rows)-1]
	group, direct := last.Values[0], last.Values[2]
	if group > 130 {
		t.Errorf("group prefetching degraded to %.0f under flushing, want <= 130", group)
	}
	if direct < group {
		t.Errorf("direct cache (%.0f) should degrade more than group prefetching (%.0f)", direct, group)
	}
}

func TestFig19TwoStepSlower(t *testing.T) {
	tabs := Fig19d(tiny())
	total := tabs[2]
	group := total.Series("group")
	twoStep := total.Series("2-step-cache")
	base := total.Series("baseline")
	for i := range group {
		if twoStep[i] < group[i] {
			t.Errorf("row %s: two-step (%.1f) should be slower than group prefetching (%.1f)",
				total.Rows[i].Label, twoStep[i], group[i])
		}
		if base[i] < group[i] {
			t.Errorf("row %s: baseline should be slower than group", total.Rows[i].Label)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig9", "fig10a", "fig10b", "fig10c", "fig11", "fig12", "fig13",
		"fig14a", "fig14b", "fig15", "fig16", "fig17", "fig18", "fig19", "fig19d", "ext-agg"}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(Experiments()), len(want))
	}
}

func TestExtAggShape(t *testing.T) {
	tab := ExtAgg(tiny())
	base := tab.Series("baseline")
	group := tab.Series("group")
	last := len(base) - 1
	if sp := base[last] / group[last]; sp < 1.5 {
		t.Errorf("aggregation group speedup %.2f at the largest table, want >= 1.5", sp)
	}
}

func TestTablePrintAndCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", RowLabel: "n", Columns: []string{"a", "b"}}
	tab.AddRow("1", 1.5, 200)
	tab.AddRow("2", 2.5, 300)
	tab.Note("hello %d", 42)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "1.500", "300", "note: hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fprint output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	tab.CSV(&buf)
	if !strings.Contains(buf.String(), "n,a,b") {
		t.Errorf("CSV header missing: %s", buf.String())
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"full", "small", "tiny"} {
		if sc, ok := ByName(name); !ok || sc.Name != name {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("ByName accepted bogus scale")
	}
}
