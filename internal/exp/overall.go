package exp

import (
	"fmt"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/iosim"
	"hashjoin/internal/memsim"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

// Fig09 reproduces Figure 9: GRACE hash join elapsed time, worker I/O
// time, and main-thread wait versus the number of disks, for both
// phases. CPU demand is measured by running the scaled simulation and
// extrapolating cycles-per-byte to the paper's real machine (1.5 GB x
// 3 GB relations, 550 MHz Pentium III); the disk subsystem is the
// paper's (68 MB/s SCSI disks, 256 KB striping, worker threads with
// read-ahead and write-behind).
func Fig09(sc Scale) []*Table {
	// Measure CPU cycles per input byte at simulation scale.
	spec := sc.joinSpec(100, 2, 100, 901)
	pair, m := newPair(spec, sc.Cfg)
	cfg := core.GraceConfig{
		MemBudget:  sc.MemBudget,
		PartScheme: core.SchemeBaseline,
		JoinScheme: core.SchemeBaseline,
	}
	res := core.Grace(m, pair.Build, pair.Probe, cfg)
	inputBytes := float64(pair.Build.ByteSize() + pair.Probe.ByteSize())
	partCPB := float64(res.PartitionCycles()) / inputBytes
	joinCPB := float64(res.JoinCycles()) / inputBytes

	// Extrapolate to the paper's real-machine experiment: 1.5 GB x 3 GB
	// relations on a 550 MHz Pentium III. The simulated kernel excludes
	// the buffer manager's user-space data movement (read/write copies
	// through the buffer pool), which on that machine costs on the order
	// of bufferMgrCPB cycles per byte moved; it is added back so the CPU
	// demand reflects the measured system, not just the join kernel.
	const clockHz = 550e6
	const bufferMgrCPB = 3.5
	buildBytes := int64(1.5 * float64(1<<30))
	probeBytes := int64(3) << 30
	total := float64(buildBytes + probeBytes)
	cpuPart := (partCPB + bufferMgrCPB) * total / clockHz
	cpuJoin := (joinCPB + bufferMgrCPB) * total / clockHz

	part := &Table{
		ID:       "fig09-partition",
		Title:    "partition phase vs #disks (seconds, 1.5GB x 3GB join)",
		RowLabel: "disks",
		Columns:  []string{"elapsed", "worker-io", "main-wait"},
	}
	join := &Table{
		ID:       "fig09-join",
		Title:    "join phase vs #disks (seconds)",
		RowLabel: "disks",
		Columns:  []string{"elapsed", "worker-io", "main-wait"},
	}
	for disks := 1; disks <= 6; disks++ {
		p, j := iosim.RunJoin(iosim.DefaultConfig(disks), buildBytes, probeBytes, cpuPart, cpuJoin)
		part.AddRow(fmt.Sprintf("%d", disks), p.ElapsedSeconds, p.WorkerIOSeconds, p.MainWaitSeconds)
		join.AddRow(fmt.Sprintf("%d", disks), j.ElapsedSeconds, j.WorkerIOSeconds, j.MainWaitSeconds)
	}
	part.Note("CPU-bound once worker I/O falls below CPU time (paper: at 4+ disks)")
	join.Note("cycles/byte measured at %s scale: partition %.1f, join %.1f", sc.Name, partCPB, joinCPB)
	return []*Table{part, join}
}

// Fig18 reproduces Figure 18: join-phase execution time under periodic
// cache flushing — the worst-case interference — normalized to 100 at no
// flushing. The prefetching schemes barely degrade; the cache
// partitioning schemes, which rely on partitions staying cache-resident,
// degrade substantially.
func Fig18(sc Scale) *Table {
	t := &Table{
		ID:       "fig18",
		Title:    "join phase under periodic cache flushing (normalized, 100 = no flush)",
		RowLabel: "flush period",
		Columns:  []string{"group", "pipelined", "direct-cache", "2-step-cache"},
	}
	// Flush periods scale with the cache size so refill pressure matches
	// the paper's 10 ms / 5 ms / 2 ms at a 1 MB L2.
	f := uint64(sc.Cfg.L2Size) * 10 // 1 MB L2 -> 10 Mcycles = 10 ms
	periods := []uint64{0, f, f / 2, f / 5}
	labels := []string{"none", "10ms*", "5ms*", "2ms*"}

	spec := sc.joinSpec(100, 2, 100, 1801)
	base := make([]float64, len(t.Columns))
	for pi, period := range periods {
		vals := []float64{
			float64(fig18Prefetch(sc, spec, core.SchemeGroup, period)),
			float64(fig18Prefetch(sc, spec, core.SchemePipelined, period)),
			float64(fig18DirectCache(sc, spec, period)),
			float64(fig18TwoStep(sc, spec, period)),
		}
		if pi == 0 {
			copy(base, vals)
		}
		norm := make([]float64, len(vals))
		for i := range vals {
			norm[i] = 100 * vals[i] / base[i]
		}
		t.AddRow(labels[pi], norm...)
	}
	t.Note("periods marked * are scaled to the %dKB L2 (paper: 1MB L2, 1GHz)", sc.Cfg.L2Size>>10)
	t.Note("paper: direct cache degrades up to 67%%, 2-step up to 38%%, prefetching robust")
	return t
}

// fig18Prefetch times one prefetching join under flushing.
func fig18Prefetch(sc Scale, spec workload.Spec, scheme core.Scheme, period uint64) uint64 {
	cfg := sc.Cfg
	cfg.FlushInterval = period
	res, _ := runJoinScheme(sc, spec, scheme, core.DefaultParams(), cfg)
	return res.Cycles()
}

// fig18DirectCache times the direct-cache join phase (cache-sized
// partitions, joined cache-resident) under flushing. The I/O partition
// phase that produced the small partitions is not measured here,
// matching the paper's join-phase-only Figure 18.
func fig18DirectCache(sc Scale, spec workload.Spec, period uint64) uint64 {
	pair, m := newPair(spec, sc.Cfg)
	n := cacheParts(sc, pair)
	pb := core.PartitionRelation(m, pair.Build, n, core.SchemeCombined, core.DefaultParams())
	pp := core.PartitionRelation(m, pair.Probe, n, core.SchemeCombined, core.DefaultParams())

	cfg := sc.Cfg
	cfg.FlushInterval = period
	jm := vmem.New(m.A, memsim.NewSim(cfg))
	var cycles uint64
	for i := 0; i < n; i++ {
		jr := core.JoinPair(jm, pb.Partitions[i], pp.Partitions[i], core.SchemeSimple, core.DefaultParams(), n, false)
		cycles += jr.Cycles()
	}
	return cycles
}

// fig18TwoStep times the two-step-cache join phase — the in-memory
// second partitioning pass plus the cache-resident joins — under
// flushing.
func fig18TwoStep(sc Scale, spec workload.Spec, period uint64) uint64 {
	pair, m := newPair(spec, sc.Cfg)
	n := cacheParts(sc, pair)

	cfg := sc.Cfg
	cfg.FlushInterval = period
	jm := vmem.New(m.A, memsim.NewSim(cfg))
	sb := core.PartitionRelation(jm, pair.Build, n, core.SchemeCombined, core.DefaultParams())
	sp := core.PartitionRelation(jm, pair.Probe, n, core.SchemeCombined, core.DefaultParams())
	cycles := sb.Stats.Total() + sp.Stats.Total()
	for i := 0; i < n; i++ {
		jr := core.JoinPair(jm, sb.Partitions[i], sp.Partitions[i], core.SchemeSimple, core.DefaultParams(), n, false)
		cycles += jr.Cycles()
	}
	return cycles
}

// cacheParts sizes cache-resident partitions for a workload pair.
func cacheParts(sc Scale, pair *workload.Pair) int {
	budget := int(core.CacheBudgetFraction * float64(sc.Cfg.L2Size))
	per := pair.Spec.TupleSize + 8 + 32 + 8
	n := (pair.Build.NTuples*per + budget - 1) / budget
	if n < 1 {
		n = 1
	}
	return n
}

// overallSchemes are the Figure 19 competitors.
var overallSchemes = []string{"baseline", "group", "pipelined", "direct-cache", "2-step-cache"}

// Fig19 reproduces Figure 19(a)-(c): end-to-end comparison with cache
// partitioning across tuple sizes — partition phase, join phase, and
// overall times per scheme. Relations are 4x and 8x the memory budget,
// matching the paper's 200 MB x 400 MB against 50 MB.
func Fig19(sc Scale) []*Table {
	part := &Table{ID: "fig19-partition", Title: "partition phase (Mcycles)", RowLabel: "tuple size", Columns: overallSchemes}
	join := &Table{ID: "fig19-join", Title: "join phase incl. 2nd partition step (Mcycles)", RowLabel: "tuple size", Columns: overallSchemes}
	total := &Table{ID: "fig19-total", Title: "overall (Mcycles)", RowLabel: "tuple size", Columns: overallSchemes}
	for _, size := range []int{20, 60, 100} {
		p, j, o := fig19Row(sc, size, 100, 1901)
		label := fmt.Sprintf("%dB", size)
		part.AddRow(label, p...)
		join.AddRow(label, j...)
		total.AddRow(label, o...)
	}
	annotateOverall(total)
	return []*Table{part, join, total}
}

// Fig19d reproduces Figure 19(d): the same comparison varying the
// percentage of matched tuples at 100 B.
func Fig19d(sc Scale) []*Table {
	part := &Table{ID: "fig19d-partition", Title: "partition phase (Mcycles)", RowLabel: "% matched", Columns: overallSchemes}
	join := &Table{ID: "fig19d-join", Title: "join phase incl. 2nd partition step (Mcycles)", RowLabel: "% matched", Columns: overallSchemes}
	total := &Table{ID: "fig19d-total", Title: "overall (Mcycles)", RowLabel: "% matched", Columns: overallSchemes}
	for _, pct := range []int{50, 100} {
		p, j, o := fig19Row(sc, 100, pct, 1902)
		label := fmt.Sprintf("%d%%", pct)
		part.AddRow(label, p...)
		join.AddRow(label, j...)
		total.AddRow(label, o...)
	}
	annotateOverall(total)
	return []*Table{part, join, total}
}

// fig19Row runs all five schemes end to end on one workload.
func fig19Row(sc Scale, tupleSize, pct int, seed int64) (part, join, total []float64) {
	nBuild := 4 * sc.MemBudget / (tupleSize + 8)
	spec := workload.Spec{
		NBuild:          nBuild,
		TupleSize:       tupleSize,
		MatchesPerBuild: 2,
		PctMatched:      pct,
		PageSize:        sc.PageSize,
		Seed:            seed,
	}
	run := func(f func(*vmem.Mem, *workload.Pair) core.GraceResult) core.GraceResult {
		a := arena.New(workload.ArenaBytesFor(spec) * 2)
		pair := workload.Generate(a, spec)
		m := vmem.New(a, memsim.NewSim(sc.Cfg))
		res := f(m, pair)
		if res.NOutput != pair.ExpectedMatches {
			panic(fmt.Sprintf("exp: fig19 run produced %d outputs, want %d", res.NOutput, pair.ExpectedMatches))
		}
		return res
	}
	gc := func(js core.Scheme) core.GraceConfig {
		return core.GraceConfig{
			MemBudget:  sc.MemBudget,
			PartScheme: core.SchemeCombined,
			JoinScheme: js,
			PartParams: core.DefaultParams(),
			JoinParams: core.DefaultParams(),
		}
	}
	results := []core.GraceResult{
		run(func(m *vmem.Mem, p *workload.Pair) core.GraceResult {
			cfg := gc(core.SchemeBaseline)
			cfg.PartScheme = core.SchemeBaseline
			return core.Grace(m, p.Build, p.Probe, cfg)
		}),
		run(func(m *vmem.Mem, p *workload.Pair) core.GraceResult {
			return core.Grace(m, p.Build, p.Probe, gc(core.SchemeGroup))
		}),
		run(func(m *vmem.Mem, p *workload.Pair) core.GraceResult {
			return core.Grace(m, p.Build, p.Probe, gc(core.SchemePipelined))
		}),
		run(func(m *vmem.Mem, p *workload.Pair) core.GraceResult {
			return core.DirectCache(m, p.Build, p.Probe, gc(core.SchemeSimple))
		}),
		run(func(m *vmem.Mem, p *workload.Pair) core.GraceResult {
			return core.TwoStepCache(m, p.Build, p.Probe, gc(core.SchemeSimple))
		}),
	}
	for _, r := range results {
		part = append(part, mcyc(r.PartitionCycles()))
		join = append(join, mcyc(r.JoinCycles()))
		total = append(total, mcyc(r.TotalCycles()))
	}
	return part, join, total
}

// annotateOverall records the headline comparisons of section 7.5.
func annotateOverall(t *Table) {
	base := t.Series("baseline")
	group := t.Series("group")
	twoStep := t.Series("2-step-cache")
	loG, hiG := 1e18, 0.0
	loT, hiT := 1e18, 0.0
	for i := range base {
		g := base[i] / group[i]
		if g < loG {
			loG = g
		}
		if g > hiG {
			hiG = g
		}
		ts := twoStep[i]/group[i] - 1
		if ts < loT {
			loT = ts
		}
		if ts > hiT {
			hiT = ts
		}
	}
	t.Note("group speedup over baseline %.1f-%.1fx (paper: 1.9-2.7x overall)", loG, hiG)
	t.Note("2-step cache slower than group prefetching by %.0f%%-%.0f%% (paper: 50-150%%)", loT*100, hiT*100)
}
