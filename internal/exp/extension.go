package exp

import (
	"fmt"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// ExtAgg is the reproduction's extension experiment: hash-based group-by
// aggregation, which the paper's conclusion names as a direct
// application of its techniques. The sweep varies the number of groups —
// as the aggregation table grows past the cache, the baseline's
// accumulator visits start missing and the prefetching schemes pull
// ahead, mirroring the join-phase story.
func ExtAgg(sc Scale) *Table {
	t := &Table{
		ID:       "ext-agg",
		Title:    "hash aggregation time vs group count (Mcycles)",
		RowLabel: "groups",
		Columns:  []string{"baseline", "simple", "group", "pipelined"},
	}
	nTuples := sc.MemBudget / 40
	for _, div := range []int{64, 16, 4, 2} {
		groups := nTuples / div
		vals := make([]float64, 0, 4)
		for _, scheme := range []core.Scheme{core.SchemeBaseline, core.SchemeSimple, core.SchemeGroup, core.SchemePipelined} {
			rel, m := aggWorkload(sc, nTuples, groups, 2001)
			res := core.Aggregate(m, rel, groups, scheme, core.DefaultParams())
			// Keys are random draws over `groups` values: every value
			// need not appear, but the count must be consistent and
			// bounded.
			if res.NGroups > groups || res.NGroups < groups/2 {
				panic(fmt.Sprintf("exp: aggregation found %d groups for %d key values", res.NGroups, groups))
			}
			vals = append(vals, mcyc(res.Stats.Total()))
		}
		t.AddRow(fmt.Sprintf("%d", groups), vals...)
	}
	base := t.Series("baseline")
	group := t.Series("group")
	t.Note("group-prefetch speedup at the largest table: %.1fx", base[len(base)-1]/group[len(group)-1])
	return t
}

// aggWorkload builds an aggregation input with exactly `groups` distinct
// keys spread uniformly over nTuples tuples.
func aggWorkload(sc Scale, nTuples, groups int, seed int64) (*storage.Relation, *vmem.Mem) {
	a := arena.New(uint64(nTuples*64+groups*64) + (8 << 20))
	rel := storage.NewRelation(a, storage.KeyPayloadSchema(20), sc.PageSize)
	tup := make([]byte, 20)
	state := uint64(seed)
	for i := 0; i < nTuples; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		key := uint32(state>>33)%uint32(groups)*2654435761 | 1
		tup[0], tup[1], tup[2], tup[3] = byte(key), byte(key>>8), byte(key>>16), byte(key>>24)
		tup[4] = byte(i)
		rel.Append(tup, hash.CodeU32(key))
	}
	return rel, vmem.New(a, memsim.NewSim(sc.Cfg))
}
