package exp

import (
	"fmt"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
	"hashjoin/internal/workload"
)

// partitionSchemes are the Figure 14 series; combined is the policy of
// section 7.4.
var partitionSchemes = []struct {
	name   string
	scheme core.Scheme
}{
	{"baseline", core.SchemeBaseline},
	{"simple", core.SchemeSimple},
	{"group", core.SchemeGroup},
	{"pipelined", core.SchemePipelined},
	{"combined", core.SchemeCombined},
}

// partitionInput generates the Figure 14 source relation: the paper uses
// 10 M 100 B tuples (1 GB) against a 50 MB memory — 20x the budget.
func partitionInput(sc Scale, factor int, tupleSize int, seed int64) (*workload.Pair, func() *vmem.Mem) {
	nTuples := sc.MemBudget * factor / (tupleSize + storage.SlotSize)
	spec := workload.Spec{
		NBuild:          nTuples,
		NProbe:          1, // partition experiments only use the build side
		TupleSize:       tupleSize,
		MatchesPerBuild: 1,
		PctMatched:      1,
		PageSize:        sc.PageSize,
		Seed:            seed,
	}
	// Arena: input + partition copies + buffers, with slack.
	bytes := workload.ArenaBytesFor(spec) + uint64(1000*4*sc.PageSize)
	a := arena.New(bytes)
	pair := workload.Generate(a, spec)
	// Partition runs mutate only freshly allocated regions, so the same
	// arena serves every scheme; each gets a cold simulator. The arena
	// high-water mark is reset between runs to reuse partition space.
	mark := a.Used()
	fresh := func() *vmem.Mem {
		resetTo(a, mark)
		return vmem.New(a, memsim.NewSim(sc.Cfg))
	}
	return pair, fresh
}

// resetTo rolls the arena back to a previous allocation mark.
func resetTo(a *arena.Arena, mark uint64) {
	a.Reset()
	if mark > 0 {
		a.Alloc(mark, 1)
	}
}

// Fig14a reproduces Figure 14(a): partition phase time versus the
// number of partitions. The left region (buffers fit in L2) favors
// simple prefetching; the right region favors group/pipelined.
func Fig14a(sc Scale) *Table {
	t := &Table{
		ID:       "fig14a",
		Title:    "partition phase time vs partition count (Mcycles)",
		RowLabel: "partitions",
		Columns:  partitionSchemeNames(),
	}
	pair, fresh := partitionInput(sc, 20, 100, 1401)
	for _, nParts := range []int{25, 50, 100, 200, 400, 800} {
		vals := make([]float64, len(partitionSchemes))
		for i, s := range partitionSchemes {
			m := fresh()
			res := core.PartitionRelation(m, pair.Build, nParts, s.scheme, core.DefaultParams())
			vals[i] = mcyc(res.Stats.Total())
		}
		t.AddRow(fmt.Sprintf("%d", nParts), vals...)
	}
	t.Note("crossover when buffers (#parts x %dKB pages) exceed the %dKB L2", sc.PageSize>>10, sc.Cfg.L2Size>>10)
	return t
}

// Fig14b reproduces Figure 14(b): partition phase time versus relation
// size with the partition size fixed to the memory budget, so the
// partition count grows with the relation.
func Fig14b(sc Scale) *Table {
	t := &Table{
		ID:       "fig14b",
		Title:    "partition phase time vs relation size (Mcycles)",
		RowLabel: "relation",
		Columns:  partitionSchemeNames(),
	}
	for _, factor := range []int{4, 8, 12, 16, 20} {
		pair, fresh := partitionInput(sc, factor, 100, 1402)
		nParts := core.PartitionsFor(pair.Build, sc.MemBudget)
		vals := make([]float64, len(partitionSchemes))
		for i, s := range partitionSchemes {
			m := fresh()
			res := core.PartitionRelation(m, pair.Build, nParts, s.scheme, core.DefaultParams())
			vals[i] = mcyc(res.Stats.Total())
		}
		t.AddRow(fmt.Sprintf("%dxMem(%dp)", factor, nParts), vals...)
	}
	return t
}

// Fig15 reproduces Figure 15: partition phase breakdown at the largest
// partition count of Figure 14(a).
func Fig15(sc Scale) *Table {
	t := &Table{
		ID:       "fig15",
		Title:    "partition phase breakdown at 800 partitions (Mcycles)",
		RowLabel: "scheme",
		Columns:  []string{"busy", "dcache", "dtlb", "other", "total"},
	}
	pair, fresh := partitionInput(sc, 20, 100, 1501)
	for _, s := range partitionSchemes[:4] {
		m := fresh()
		res := core.PartitionRelation(m, pair.Build, 800, s.scheme, core.DefaultParams())
		st := res.Stats
		t.AddRow(s.name, mcyc(st.Busy), mcyc(st.DCacheStall), mcyc(st.TLBStall), mcyc(st.OtherStall), mcyc(st.Total()))
	}
	base := t.Rows[0]
	t.Note("baseline dcache stall fraction = %.0f%% (paper Figure 1: 82%%)", base.Values[1]/base.Values[4]*100)
	return t
}

// Fig16 reproduces Figure 16: partition phase time versus G and D at
// 800 partitions.
func Fig16(sc Scale) []*Table {
	pair, fresh := partitionInput(sc, 20, 100, 1601)

	tg := &Table{
		ID:       "fig16-group",
		Title:    "partition time vs group size G (Mcycles)",
		RowLabel: "G",
		Columns:  []string{"group"},
	}
	for _, g := range []int{1, 2, 4, 6, 8, 12, 16, 24, 32, 64} {
		m := fresh()
		res := core.PartitionRelation(m, pair.Build, 800, core.SchemeGroup, core.Params{G: g, D: 1})
		tg.AddRow(fmt.Sprintf("%d", g), mcyc(res.Stats.Total()))
	}

	td := &Table{
		ID:       "fig16-pipe",
		Title:    "partition time vs prefetch distance D (Mcycles)",
		RowLabel: "D",
		Columns:  []string{"pipelined"},
	}
	for _, d := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24} {
		m := fresh()
		res := core.PartitionRelation(m, pair.Build, 800, core.SchemePipelined, core.Params{G: 1, D: d})
		td.AddRow(fmt.Sprintf("%d", d), mcyc(res.Stats.Total()))
	}
	return []*Table{tg, td}
}

// Fig17 reproduces Figure 17: prefetch outcome breakdowns for the
// partition phase as the parameters grow.
func Fig17(sc Scale) []*Table {
	pair, fresh := partitionInput(sc, 20, 100, 1701)
	kilo := func(v uint64) float64 { return float64(v) / 1e3 }

	tg := &Table{
		ID:       "fig17-group",
		Title:    "partition prefetch outcomes vs G (K lines)",
		RowLabel: "G",
		Columns:  []string{"full-hidden", "part-hidden", "wasted"},
	}
	for _, g := range []int{4, 8, 16, 32, 64, 128, 256} {
		m := fresh()
		res := core.PartitionRelation(m, pair.Build, 800, core.SchemeGroup, core.Params{G: g, D: 1})
		st := res.Stats
		tg.AddRow(fmt.Sprintf("%d", g), kilo(st.PrefetchFullHidden), kilo(st.PrefetchPartHidden), kilo(st.PrefetchWasted))
	}

	td := &Table{
		ID:       "fig17-pipe",
		Title:    "partition prefetch outcomes vs D (K lines)",
		RowLabel: "D",
		Columns:  []string{"full-hidden", "part-hidden", "wasted"},
	}
	for _, d := range []int{1, 2, 4, 8, 16, 32, 64} {
		m := fresh()
		res := core.PartitionRelation(m, pair.Build, 800, core.SchemePipelined, core.Params{G: 1, D: d})
		st := res.Stats
		td.AddRow(fmt.Sprintf("%d", d), kilo(st.PrefetchFullHidden), kilo(st.PrefetchPartHidden), kilo(st.PrefetchWasted))
	}
	return []*Table{tg, td}
}

// Fig01 reproduces Figure 1: the user-time breakdown of the baseline
// partition phase (800 partitions) and join phase.
func Fig01(sc Scale) *Table {
	t := &Table{
		ID:       "fig01",
		Title:    "baseline GRACE breakdown (% of execution time)",
		RowLabel: "phase",
		Columns:  []string{"busy%", "dcache%", "dtlb%", "other%"},
	}
	pair, fresh := partitionInput(sc, 20, 100, 101)
	m := fresh()
	pres := core.PartitionRelation(m, pair.Build, 800, core.SchemeBaseline, core.DefaultParams())
	addPctRow(t, "partition", pres.Stats)

	spec := sc.joinSpec(100, 2, 100, 102)
	jres, _ := runJoinScheme(sc, spec, core.SchemeBaseline, core.DefaultParams(), sc.Cfg)
	addPctRow(t, "join", jres.Stats())
	t.Note("paper: partition 82%% dcache, join 73%% dcache")
	return t
}

func addPctRow(t *Table, label string, st memsim.Stats) {
	total := float64(st.Total())
	t.AddRow(label,
		100*float64(st.Busy)/total,
		100*float64(st.DCacheStall)/total,
		100*float64(st.TLBStall)/total,
		100*float64(st.OtherStall)/total)
}

func partitionSchemeNames() []string {
	names := make([]string, len(partitionSchemes))
	for i, s := range partitionSchemes {
		names[i] = s.name
	}
	return names
}
