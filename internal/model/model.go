// Package model implements the paper's analytical cost models: the
// sufficient conditions of Theorem 1 (group prefetching) and Theorem 2
// (software-pipelined prefetching) for fully hiding cache miss
// latencies, and the derived optimal parameter choices — the smallest G
// or D satisfying the conditions, which the paper recommends to minimize
// concurrent prefetches and conflict misses (sections 4.2, 5.1).
package model

// Stages describes a prefetched loop: the per-stage compute costs C_0 ..
// C_k between the k dependent memory references of one element, plus the
// memory system's T and Tnext (Table 1).
type Stages struct {
	C     []uint64 // len k+1: C[0] is code 0, C[k] the final stage
	T     uint64   // full latency of a cache miss
	Tnext uint64   // additional latency of a pipelined cache miss
}

// K returns the number of dependent memory references.
func (s Stages) K() int { return len(s.C) - 1 }

// maxU returns the larger of a and b.
func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// GroupHidesAll reports whether group size g satisfies Theorem 1:
//
//	(G-1) * C_0                    >= T
//	(G-1) * max{C_l, Tnext}        >= T   for l = 1..k
func (s Stages) GroupHidesAll(g int) bool {
	if g < 1 || s.K() < 1 {
		return false
	}
	gm := uint64(g - 1)
	if gm*s.C[0] < s.T {
		return false
	}
	for l := 1; l <= s.K(); l++ {
		if gm*maxU(s.C[l], s.Tnext) < s.T {
			return false
		}
	}
	return true
}

// OptimalG returns the smallest group size satisfying Theorem 1, or 0
// when no G can hide everything (C_0 == 0: the first reference of each
// group stays exposed — section 5.4).
func (s Stages) OptimalG() int {
	if s.K() < 1 || s.C[0] == 0 {
		return 0
	}
	// The binding constraint is the smallest of C_0 and max{C_l, Tnext}.
	bind := s.C[0]
	for l := 1; l <= s.K(); l++ {
		if m := maxU(s.C[l], s.Tnext); m < bind {
			bind = m
		}
	}
	g := 1 + int((s.T+bind-1)/bind)
	return g
}

// PipelineHidesAll reports whether prefetch distance d satisfies
// Theorem 2:
//
//	D * (max{C_0+C_k, Tnext} + sum_{l=1..k-1} max{C_l, Tnext}) >= T
func (s Stages) PipelineHidesAll(d int) bool {
	if d < 1 || s.K() < 1 {
		return false
	}
	return uint64(d)*s.pipelineRowLength() >= s.T
}

// pipelineRowLength is the length of one steady-state iteration's path.
func (s Stages) pipelineRowLength() uint64 {
	k := s.K()
	sum := maxU(s.C[0]+s.C[k], s.Tnext)
	for l := 1; l <= k-1; l++ {
		sum += maxU(s.C[l], s.Tnext)
	}
	return sum
}

// OptimalD returns the smallest prefetch distance satisfying Theorem 2.
// A D always exists since Tnext > 0 (section 5.1).
func (s Stages) OptimalD() int {
	row := s.pipelineRowLength()
	if row == 0 {
		return 0
	}
	return int((s.T + row - 1) / row)
}

// GroupTimePerElement estimates the steady-state cycles per element
// under group prefetching with all latencies hidden: the code itself
// plus per-stage bandwidth floors.
func (s Stages) GroupTimePerElement() uint64 {
	total := s.C[0]
	for l := 1; l <= s.K(); l++ {
		total += maxU(s.C[l], s.Tnext)
	}
	return total
}

// BaselineTimePerElement estimates cycles per element without
// prefetching, with every reference a fully exposed miss.
func (s Stages) BaselineTimePerElement() uint64 {
	total := uint64(0)
	for _, c := range s.C {
		total += c
	}
	return total + uint64(s.K())*s.T
}

// PredictedSpeedup is the model's upper-bound speedup of group
// prefetching over the baseline.
func (s Stages) PredictedSpeedup() float64 {
	return float64(s.BaselineTimePerElement()) / float64(s.GroupTimePerElement())
}

// ProbeStages returns the paper's join-phase probe loop (k = 3) with the
// reproduction's cost constants: code 0 is the bucket-number computation
// (integer division), then header visit, cell visit, and key
// compare/output.
func ProbeStages(t, tnext uint64) Stages {
	return Stages{
		C:     []uint64{3 + 25, 3, 2, 4 + 15}, // loop+mod, header, cell, compare+emit
		T:     t,
		Tnext: tnext,
	}
}

// PartitionStages returns the partition-phase loop (k = 1): code 0 is
// hash plus partition-number computation, code 1 the buffer visit and
// tuple copy.
func PartitionStages(t, tnext uint64) Stages {
	return Stages{
		C:     []uint64{3 + 12 + 25, 3 + 15},
		T:     t,
		Tnext: tnext,
	}
}
