package model

import (
	"testing"
	"testing/quick"
)

func probe150() Stages { return ProbeStages(150, 10) }

func TestOptimalGSatisfiesTheorem1(t *testing.T) {
	s := probe150()
	g := s.OptimalG()
	if g == 0 {
		t.Fatal("probe stages should admit a finite G")
	}
	if !s.GroupHidesAll(g) {
		t.Fatalf("OptimalG()=%d does not satisfy Theorem 1", g)
	}
	if g > 1 && s.GroupHidesAll(g-1) {
		t.Fatalf("G=%d satisfies Theorem 1 but OptimalG returned %d", g-1, g)
	}
}

func TestOptimalGNearPaperValue(t *testing.T) {
	// The paper finds G = 19 optimal for probing at T = 150. The binding
	// constraint is Tnext: (G-1)*10 >= 150 -> G = 16; the measured
	// optimum sits slightly above the analytic bound.
	g := probe150().OptimalG()
	if g < 10 || g > 25 {
		t.Fatalf("OptimalG = %d, expected in the neighborhood of the paper's 19", g)
	}
}

func TestOptimalGScalesWithLatency(t *testing.T) {
	g150 := ProbeStages(150, 10).OptimalG()
	g1000 := ProbeStages(1000, 10).OptimalG()
	if g1000 <= g150 {
		t.Fatalf("optimal G must grow with T: %d vs %d (Figure 12's rightward shift)", g150, g1000)
	}
}

func TestOptimalDSatisfiesTheorem2(t *testing.T) {
	s := probe150()
	d := s.OptimalD()
	if d == 0 || !s.PipelineHidesAll(d) {
		t.Fatalf("OptimalD()=%d does not satisfy Theorem 2", d)
	}
	if d > 1 && s.PipelineHidesAll(d-1) {
		t.Fatalf("D=%d already satisfies Theorem 2", d-1)
	}
}

func TestOptimalDNearPaperValue(t *testing.T) {
	// The paper uses D = 1 for probing at T = 150: one iteration's path
	// already exceeds T... in our cost model it is 1 or 2.
	d := probe150().OptimalD()
	if d < 1 || d > 3 {
		t.Fatalf("OptimalD = %d, expected 1..3", d)
	}
}

func TestEmptyCode0CannotFullyHide(t *testing.T) {
	s := Stages{C: []uint64{0, 10, 10}, T: 150, Tnext: 10}
	if s.OptimalG() != 0 {
		t.Fatal("empty code 0 must make OptimalG report impossibility")
	}
	if s.GroupHidesAll(1000) {
		t.Fatal("Theorem 1 cannot hold with C0 = 0")
	}
	// Software pipelining does not share the limitation (section 5.4).
	if s.OptimalD() == 0 || !s.PipelineHidesAll(s.OptimalD()) {
		t.Fatal("software pipelining should still admit a D")
	}
}

func TestPredictedSpeedupInPaperBand(t *testing.T) {
	sp := probe150().PredictedSpeedup()
	if sp < 2.0 || sp > 12 {
		t.Fatalf("model speedup %.1f out of plausible band", sp)
	}
}

func TestQuickTheoremMonotonicity(t *testing.T) {
	// If G satisfies Theorem 1, so does G+1; same for D and Theorem 2.
	f := func(c0, c1, c2 uint8, tn uint8, g uint8) bool {
		s := Stages{
			C:     []uint64{uint64(c0) + 1, uint64(c1) + 1, uint64(c2) + 1},
			T:     150,
			Tnext: uint64(tn) + 1,
		}
		gi := int(g)%64 + 1
		if s.GroupHidesAll(gi) && !s.GroupHidesAll(gi+1) {
			return false
		}
		if s.PipelineHidesAll(gi) && !s.PipelineHidesAll(gi+1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOptimalIsFeasible(t *testing.T) {
	f := func(c0, c1, c2, tn uint8, tRaw uint16) bool {
		s := Stages{
			C:     []uint64{uint64(c0) + 1, uint64(c1), uint64(c2)},
			T:     uint64(tRaw)%2000 + 1,
			Tnext: uint64(tn) + 1,
		}
		g := s.OptimalG()
		d := s.OptimalD()
		return g > 0 && s.GroupHidesAll(g) && d > 0 && s.PipelineHidesAll(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
