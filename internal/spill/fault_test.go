package spill

import (
	"context"
	"errors"
	"os"
	"syscall"
	"testing"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/fault"
)

// writePartition spills n width-byte tuples and finishes the writer.
func writePartition(t *testing.T, m *Manager, n, width int) *Writer {
	t.Helper()
	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(tupleFor(i, width), uint32(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return w
}

// drainPool asserts every pool buffer is back (nothing leaked) and
// returns them.
func drainPool(t *testing.T, m *Manager) {
	t.Helper()
	var drained []pageBuf
	for {
		select {
		case b := <-m.pool:
			drained = append(drained, b)
			continue
		default:
		}
		break
	}
	if want := cap(m.pool); len(drained) != want {
		t.Fatalf("pool holds %d buffers, want %d", len(drained), want)
	}
	for _, b := range drained {
		m.pool <- b
	}
}

func TestCorruptPageDetected(t *testing.T) {
	const pageSize = 512
	m := newTestManager(t, pageSize)
	w := writePartition(t, m, 300, 24)
	if w.NPages() < 3 {
		t.Fatalf("want >= 3 pages, got %d", w.NPages())
	}

	// Flip one byte in the middle of page 1's payload, on disk.
	f, err := os.OpenFile(w.Path(), os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open spill file: %v", err)
	}
	off := int64(pageSize) + int64(pageSize)/2
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	f.Close()

	r := w.OpenReader()
	defer r.Close()
	// Page 0 is intact and must still be delivered.
	pg, ok, err := r.Next()
	if err != nil || !ok {
		t.Fatalf("page 0: Next = (%v, %v)", ok, err)
	}
	m.Release(pg)
	// Page 1 must fail verification with a located, typed error.
	_, ok, err = r.Next()
	if ok || err == nil {
		t.Fatalf("corrupt page delivered: (%v, %v)", ok, err)
	}
	var cpe *CorruptPageError
	if !errors.As(err, &cpe) {
		t.Fatalf("err = %T %v, want *CorruptPageError", err, err)
	}
	if cpe.Page != 1 || cpe.Offset != pageSize || cpe.File != w.Path() {
		t.Fatalf("corruption located at page %d offset %d in %s, want page 1 offset %d in %s",
			cpe.Page, cpe.Offset, cpe.File, pageSize, w.Path())
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("errors.Is(%v, ErrCorrupt) = false", err)
	}
	// The reader is poisoned; the pool must still be whole after Close.
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("Next after corruption = (%v, %v), want done", ok, err)
	}
	r.Close()
	drainPool(t, m)
}

func TestTransientWriteErrorRetried(t *testing.T) {
	defer fault.Reset()
	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindError, Err: syscall.EINTR, Count: 2})
	m := newTestManager(t, 512)
	w := writePartition(t, m, 200, 24)
	if got := fault.Hits(fault.SiteSpillWrite); got != 2 {
		t.Fatalf("write fault fired %d times, want 2", got)
	}
	st := m.Stats()
	if st.WriteRetries < 2 {
		t.Fatalf("WriteRetries = %d, want >= 2", st.WriteRetries)
	}
	// The partition reads back intact after the retries.
	r := w.OpenReader()
	defer r.Close()
	got := 0
	for {
		pg, ok, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		got += pg.NTuples()
		m.Release(pg)
	}
	if got != 200 {
		t.Fatalf("read %d tuples after retried writes, want 200", got)
	}
}

func TestTransientReadErrorRetried(t *testing.T) {
	defer fault.Reset()
	m := newTestManager(t, 512)
	w := writePartition(t, m, 200, 24)
	fault.Enable(fault.SiteSpillRead, fault.Fault{Kind: fault.KindError, Err: syscall.EAGAIN, Count: 2})
	r := w.OpenReader()
	defer r.Close()
	got := 0
	for {
		pg, ok, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		got += pg.NTuples()
		m.Release(pg)
	}
	if got != 200 {
		t.Fatalf("read %d tuples, want 200", got)
	}
	if st := m.Stats(); st.ReadRetries < 2 {
		t.Fatalf("ReadRetries = %d, want >= 2", st.ReadRetries)
	}
}

func TestPermanentWriteErrorSticky(t *testing.T) {
	defer fault.Reset()
	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindError})
	parent := t.TempDir()
	m, err := NewManager(Config{Dir: parent, PageSize: 512, A: arena.New(1 << 20)})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < 200; i++ {
		// Append keeps accepting (the error is reported, not fatal to
		// encoding), but must eventually surface the sticky error.
		w.Append(tupleFor(i, 24), uint32(i))
	}
	err = w.Finish()
	if err == nil {
		t.Fatal("Finish succeeded despite injected permanent write errors")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Finish err = %v, want injected", err)
	}
	if st := m.Stats(); st.WriteRetries != 0 {
		t.Fatalf("permanent error was retried %d times", st.WriteRetries)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	fault.CheckNoFiles(t, parent)
}

// TestPanicMidWriteContained is the crash-safety satellite: a panic
// injected inside the write-behind worker becomes the writer's sticky
// typed error, Finish and Close do not deadlock, and the per-join temp
// dir is removed with no orphans.
func TestPanicMidWriteContained(t *testing.T) {
	defer fault.Reset()
	base := fault.Goroutines()
	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindPanic, Count: 1})
	parent := t.TempDir()
	m, err := NewManager(Config{Dir: parent, PageSize: 512, A: arena.New(1 << 20)})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < 300; i++ {
		w.Append(tupleFor(i, 24), uint32(i))
	}
	err = w.Finish()
	if err == nil {
		t.Fatal("Finish succeeded despite injected worker panic")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Finish err = %v, want injected", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close after contained panic: %v", err)
	}
	fault.CheckNoFiles(t, parent)
	fault.CheckGoroutines(t, base)
}

func TestPanicMidReadContained(t *testing.T) {
	defer fault.Reset()
	m := newTestManager(t, 512)
	w := writePartition(t, m, 300, 24)
	base := fault.Goroutines() // write-behind workers are part of the baseline
	fault.Enable(fault.SiteSpillRead, fault.Fault{Kind: fault.KindPanic, Count: 1})
	r := w.OpenReader()
	_, ok, err := r.Next()
	if ok || err == nil {
		t.Fatalf("Next = (%v, %v), want contained panic error", ok, err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Next err = %v, want injected", err)
	}
	r.Close()
	fault.Reset()
	drainPool(t, m)
	fault.CheckGoroutines(t, base)
}

func TestCreateFailpoint(t *testing.T) {
	defer fault.Reset()
	m := newTestManager(t, 512)
	fault.Enable(fault.SiteSpillCreate, fault.Fault{Kind: fault.KindError})
	if _, err := m.NewWriter(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("NewWriter err = %v, want injected", err)
	}
}

func TestSyncFailpoint(t *testing.T) {
	defer fault.Reset()
	m := newTestManager(t, 512)
	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.Append(tupleFor(0, 24), 0); err != nil {
		t.Fatalf("Append: %v", err)
	}
	fault.Enable(fault.SiteSpillSync, fault.Fault{Kind: fault.KindError})
	if err := w.Finish(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Finish err = %v, want injected", err)
	}
}

func TestRemoveFailpoint(t *testing.T) {
	defer fault.Reset()
	parent := t.TempDir()
	m, err := NewManager(Config{Dir: parent, PageSize: 512, A: arena.New(1 << 20)})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	fault.Enable(fault.SiteSpillRemove, fault.Fault{Kind: fault.KindError})
	if err := m.Close(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Close err = %v, want injected", err)
	}
}

func TestReadDelayChargedToStall(t *testing.T) {
	defer fault.Reset()
	m := newTestManager(t, 512)
	w := writePartition(t, m, 300, 24)
	fault.Enable(fault.SiteSpillRead, fault.Fault{Kind: fault.KindDelay, Delay: 3 * time.Millisecond})
	r := w.OpenReader()
	defer r.Close()
	for {
		pg, ok, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		m.Release(pg)
	}
	if st := m.Stats(); st.ReadStall <= 0 {
		t.Fatalf("injected read delay not charged to ReadStall: %+v", st)
	}
}

func TestCancelledContextStopsSpill(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m, err := NewManager(Config{Dir: t.TempDir(), PageSize: minPageSize, A: arena.New(1 << 20), Ctx: ctx})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()
	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	// Fill past one page so there is something to read back.
	for i := 0; ; i++ {
		if err := w.Append(tupleFor(i, 24), uint32(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if w.NPages() >= 3 {
			break
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	cancel()
	// Writes stop at the next page boundary...
	wErr := error(nil)
	for i := 0; i < 10_000; i++ {
		if wErr = w.Append(tupleFor(i, 24), uint32(i)); wErr != nil {
			break
		}
	}
	if !errors.Is(wErr, context.Canceled) {
		t.Fatalf("Append after cancel = %v, want context.Canceled within one page", wErr)
	}
	// ...and reads stop before the next page.
	r := w.OpenReader()
	defer r.Close()
	if _, ok, err := r.Next(); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = (%v, %v), want context.Canceled", ok, err)
	}
}
