package spill

import (
	"encoding/binary"
	"os"
	"testing"

	"hashjoin/internal/arena"
)

// newTestManager returns a Manager with a small page size (forcing
// multi-page partitions on tiny inputs) backed by a fresh arena.
func newTestManager(t *testing.T, pageSize int) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		Dir:      t.TempDir(),
		PageSize: pageSize,
		A:        arena.New(1 << 20),
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// tupleFor derives a deterministic width-byte tuple for index i.
func tupleFor(i, width int) []byte {
	b := make([]byte, width)
	binary.LittleEndian.PutUint32(b, uint32(i))
	for j := 4; j < width; j++ {
		b[j] = byte(i + j)
	}
	return b
}

func TestWriterReaderRoundTrip(t *testing.T) {
	const (
		pageSize = 512
		width    = 24
		n        = 500 // enough tuples for dozens of pages
	)
	m := newTestManager(t, pageSize)

	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(tupleFor(i, width), uint32(i)*2654435761); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if w.NTuples() != n {
		t.Fatalf("NTuples = %d, want %d", w.NTuples(), n)
	}
	if w.NPages() < 2 {
		t.Fatalf("expected a multi-page partition, got %d pages", w.NPages())
	}

	// Two sequential passes — the chunked join re-reads the probe
	// partition once per build chunk.
	for pass := 0; pass < 2; pass++ {
		r := w.OpenReader()
		got := 0
		for {
			pg, ok, err := r.Next()
			if err != nil {
				t.Fatalf("pass %d: Next: %v", pass, err)
			}
			if !ok {
				break
			}
			v := pg.View()
			for i := 0; i < pg.NTuples(); i++ {
				want := tupleFor(got, width)
				tup := v.Tuple(i)[:width]
				if string(tup) != string(want) {
					t.Fatalf("pass %d: tuple %d mismatch: %x != %x", pass, got, tup, want)
				}
				if code := v.HashCode(i); code != uint32(got)*2654435761 {
					t.Fatalf("pass %d: tuple %d code = %d", pass, got, code)
				}
				got++
			}
			m.Release(pg)
		}
		r.Close()
		if got != n {
			t.Fatalf("pass %d: read %d tuples, want %d", pass, got, n)
		}
	}

	st := m.Stats()
	if st.Partitions != 1 {
		t.Fatalf("Partitions = %d, want 1", st.Partitions)
	}
	if st.PagesWritten != int64(w.NPages()) {
		t.Fatalf("PagesWritten = %d, want %d", st.PagesWritten, w.NPages())
	}
	if st.BytesWritten != int64(w.NPages())*pageSize {
		t.Fatalf("BytesWritten = %d, want %d", st.BytesWritten, w.NPages()*pageSize)
	}
	if st.PagesRead != 2*st.PagesWritten || st.BytesRead != 2*st.BytesWritten {
		t.Fatalf("read stats %d/%d, want double the write stats %d/%d",
			st.PagesRead, st.BytesRead, st.PagesWritten, st.BytesWritten)
	}
}

func TestEmptyPartition(t *testing.T) {
	m := newTestManager(t, 512)
	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if w.NPages() != 0 {
		t.Fatalf("empty partition has %d pages", w.NPages())
	}
	r := w.OpenReader()
	defer r.Close()
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("Next on empty partition = (%v, %v), want done", ok, err)
	}
}

func TestTupleTooLarge(t *testing.T) {
	m := newTestManager(t, minPageSize)
	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	err = w.Append(make([]byte, minPageSize), 1)
	if err == nil {
		t.Fatalf("oversized tuple accepted")
	}
	// The writer stays usable for tuples that do fit.
	if err := w.Append(tupleFor(0, 16), 1); err != nil {
		t.Fatalf("Append after oversize error: %v", err)
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestCloseRemovesSpillArea(t *testing.T) {
	parent := t.TempDir()
	m, err := NewManager(Config{Dir: parent, A: arena.New(1 << 20)})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(tupleFor(i, 32), uint32(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if _, err := os.Stat(m.Dir()); err != nil {
		t.Fatalf("spill dir missing before Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill area not removed: %v", ents)
	}
}

// TestCloseOnPanic is the crash-safety contract: a join panicking
// mid-spill unwinds through a deferred Close, and the temp files are
// gone by the time the panic is recovered.
func TestCloseOnPanic(t *testing.T) {
	parent := t.TempDir()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("expected panic")
			}
		}()
		m, err := NewManager(Config{Dir: parent, A: arena.New(1 << 20)})
		if err != nil {
			t.Fatalf("NewManager: %v", err)
		}
		defer m.Close()
		w, err := m.NewWriter()
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		for i := 0; i < 100; i++ {
			if err := w.Append(tupleFor(i, 64), uint32(i)); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		panic("mid-spill failure")
	}()
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ents) != 0 {
		t.Fatalf("panic left spill files behind: %v", ents)
	}
}

// TestRepeatedRunsNoOrphans creates and closes Managers in a loop,
// checking the parent directory stays clean — the no-orphan guarantee
// across repeated joins.
func TestRepeatedRunsNoOrphans(t *testing.T) {
	parent := t.TempDir()
	a := arena.New(4 << 20)
	for run := 0; run < 5; run++ {
		mark := a.Used()
		m, err := NewManager(Config{Dir: parent, PageSize: 1024, A: a})
		if err != nil {
			t.Fatalf("run %d: NewManager: %v", run, err)
		}
		w, err := m.NewWriter()
		if err != nil {
			t.Fatalf("run %d: NewWriter: %v", run, err)
		}
		for i := 0; i < 200; i++ {
			if err := w.Append(tupleFor(i, 20), uint32(i)); err != nil {
				t.Fatalf("run %d: Append: %v", run, err)
			}
		}
		if err := w.Finish(); err != nil {
			t.Fatalf("run %d: Finish: %v", run, err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("run %d: Close: %v", run, err)
		}
		a.Truncate(mark)
		ents, err := os.ReadDir(parent)
		if err != nil {
			t.Fatalf("run %d: ReadDir: %v", run, err)
		}
		if len(ents) != 0 {
			t.Fatalf("run %d left orphans: %v", run, ents)
		}
	}
}

func TestManyPartitions(t *testing.T) {
	m := newTestManager(t, 512)
	const parts = 8
	writers := make([]*Writer, parts)
	for p := range writers {
		w, err := m.NewWriter()
		if err != nil {
			t.Fatalf("NewWriter(%d): %v", p, err)
		}
		writers[p] = w
		for i := 0; i < 50; i++ {
			if err := w.Append(tupleFor(p*1000+i, 16), uint32(p)); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := w.Finish(); err != nil {
			t.Fatalf("Finish(%d): %v", p, err)
		}
	}
	for p, w := range writers {
		r := w.OpenReader()
		got := 0
		for {
			pg, ok, err := r.Next()
			if err != nil {
				t.Fatalf("partition %d: %v", p, err)
			}
			if !ok {
				break
			}
			v := pg.View()
			for i := 0; i < pg.NTuples(); i++ {
				want := tupleFor(p*1000+got, 16)
				if string(v.Tuple(i)[:16]) != string(want) {
					t.Fatalf("partition %d tuple %d mismatch", p, got)
				}
				got++
			}
			m.Release(pg)
		}
		r.Close()
		if got != 50 {
			t.Fatalf("partition %d: read %d tuples, want 50", p, got)
		}
	}
	if st := m.Stats(); st.Partitions != parts {
		t.Fatalf("Partitions = %d, want %d", st.Partitions, parts)
	}
}

func TestReaderCloseMidStream(t *testing.T) {
	// Abandoning a reader with a read-ahead in flight must return the
	// buffer; a full pool drain afterwards proves nothing leaked.
	m := newTestManager(t, 512)
	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < 300; i++ {
		if err := w.Append(tupleFor(i, 32), uint32(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	r := w.OpenReader()
	pg, ok, err := r.Next()
	if err != nil || !ok {
		t.Fatalf("Next = (%v, %v)", ok, err)
	}
	m.Release(pg)
	r.Close() // in-flight read-ahead buffer must come back

	var drained []pageBuf
	for {
		select {
		case b := <-m.pool:
			drained = append(drained, b)
			continue
		default:
		}
		break
	}
	if want := cap(m.pool); len(drained) != want {
		t.Fatalf("pool holds %d buffers after abandoned reader, want %d", len(drained), want)
	}
	for _, b := range drained {
		m.pool <- b
	}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Fatalf("nil arena accepted")
	}
	if _, err := NewManager(Config{A: arena.New(1 << 20), PageSize: 64}); err == nil {
		t.Fatalf("tiny page size accepted")
	}
	if _, err := NewManager(Config{A: arena.New(1 << 20), PageSize: 1 << 20}); err == nil {
		t.Fatalf("huge page size accepted")
	}
	// Pool allocation failure must not leave a temp dir behind.
	parent := t.TempDir()
	if _, err := NewManager(Config{Dir: parent, A: arena.New(1 << 10)}); err == nil {
		t.Fatalf("undersized arena accepted")
	}
	ents, err := os.ReadDir(parent)
	if err != nil || len(ents) != 0 {
		t.Fatalf("failed NewManager left %v (%v)", ents, err)
	}
}

func TestStallAccounting(t *testing.T) {
	// Sanity only: stalls are monotonic non-negative durations. Forcing a
	// deterministic stall would need fault injection; the overlap claim
	// itself is measured by BenchmarkSpillOverlap.
	m := newTestManager(t, 512)
	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Append(tupleFor(i, 40), uint32(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	st := m.Stats()
	if st.WriteStall < 0 || st.ReadStall < 0 {
		t.Fatalf("negative stall: %+v", st)
	}
}
