// Package spill is the out-of-core tier of the native join's degradation
// ladder: disk-backed GRACE partitions with asynchronous write-behind and
// double-buffered read-ahead — the overlap structure internal/iosim
// models cycle-by-cycle (the paper's Figure 9 claim that partition I/O
// hides behind compute), realized here on real files.
//
// A Manager owns one temporary directory and a fixed pool of reusable
// page-sized buffers allocated from the join's arena. Partition Writers
// encode tuples into internal/storage slotted pages — reusing the
// memoized-hash-code slot layout of section 7.1, so spilled partitions
// carry their hash codes back without recomputation — and hand full
// pages to background writer goroutines (write-behind). Readers stream
// a partition back with one page of read-ahead in flight, so the next
// page's disk latency overlaps the current page's probe work.
//
// Buffers live in the arena rather than on the Go heap for one load-
// bearing reason: the native engine addresses every tuple by arena
// address (Entry.Ref indexes the arena's backing slice), so a tuple read
// back from disk into an arena-backed page is immediately joinable — its
// refs flow through the same emit/sink path as resident tuples, and the
// pool is reclaimed by the run's arena scope like any other scratch.
package spill

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/fault"
)

const (
	// DefaultPageSize is the spill page size. Slotted pages address
	// tuples with u16 offsets, so pages must stay under 64 KiB; 32 KiB
	// amortizes syscall cost while keeping the buffer pool small.
	DefaultPageSize = 32 << 10
	// DefaultWorkers is the write-behind worker count: enough to overlap
	// one partition's writes with the next page's encoding without
	// claiming many buffers.
	DefaultWorkers = 2
	// minPageSize bounds PageSize from below (tests shrink pages to
	// force multi-page partitions).
	minPageSize = 256
	// maxPageSize keeps every slot offset and the free pointer
	// representable as u16.
	maxPageSize = 63 << 10
)

// Config sizes a Manager.
type Config struct {
	// Dir is the parent directory for the spill area; "" means the OS
	// temp directory. The Manager creates (and removes on Close) its own
	// subdirectory inside it.
	Dir string
	// PageSize is the spill page size in bytes; 0 selects
	// DefaultPageSize.
	PageSize int
	// Workers is the write-behind goroutine count; <1 selects
	// DefaultWorkers.
	Workers int
	// PoolPages is the buffer pool size; it is raised to at least what
	// the write and read paths need to make progress.
	PoolPages int
	// A is the arena the buffer pool is allocated from. Required.
	A *arena.Arena
	// Ctx, when non-nil, cancels spilling cooperatively: Writers check it
	// at page boundaries and Readers before each delivered page, so a
	// cancelled join stops within one page of I/O.
	Ctx context.Context
}

// Stats is a snapshot of a Manager's I/O counters.
type Stats struct {
	Partitions   int // partition files created
	PagesWritten int64
	BytesWritten int64
	PagesRead    int64
	BytesRead    int64

	// WriteRetries and ReadRetries count page I/Os that were retried
	// after a transient error (bounded retry with backoff); permanent
	// errors skip retry and fail the join via the sticky first error.
	WriteRetries int64
	ReadRetries  int64

	// WriteStall is time spent waiting for a free pool buffer on the
	// encode path — the time write-behind failed to hide. ReadStall is
	// time spent waiting for an in-flight read — the time read-ahead
	// failed to hide.
	WriteStall time.Duration
	ReadStall  time.Duration
}

// Manager owns a spill area: the temp directory, the buffer pool, and
// the write-behind workers. Close is idempotent and removes every file
// the Manager created; callers defer it on both the normal and the
// panic path, so a crashed join leaves no orphans.
type Manager struct {
	a        *arena.Arena
	dir      string
	pageSize int
	ctx      context.Context // nil: never cancelled

	pool   chan pageBuf
	writeq chan writeReq
	wwg    sync.WaitGroup // write-behind workers
	rwg    sync.WaitGroup // in-flight read-ahead goroutines

	mu     sync.Mutex
	files  []*os.File
	nfiles int
	closed bool

	partitions   atomic.Int64
	pagesWritten atomic.Int64
	bytesWritten atomic.Int64
	pagesRead    atomic.Int64
	bytesRead    atomic.Int64
	writeRetries atomic.Int64
	readRetries  atomic.Int64
	writeStallNs atomic.Int64
	readStallNs  atomic.Int64
}

// writeReq is one full page travelling to a write-behind worker.
type writeReq struct {
	w   *Writer
	idx int // page index within the partition, sealed into the header
	off int64
	buf pageBuf
}

// NewManager creates the spill area and starts the write-behind workers.
// The buffer pool is allocated from cfg.A up front, so a join that
// cannot afford its spill scratch fails here, before any file exists.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.A == nil {
		return nil, fmt.Errorf("spill: Config.A is required")
	}
	pageSize := cfg.PageSize
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < minPageSize || pageSize > maxPageSize {
		return nil, fmt.Errorf("spill: page size %d outside [%d, %d]", pageSize, minPageSize, maxPageSize)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = DefaultWorkers
	}
	// The pool must let the write path (one page being encoded + the
	// write queue + in-flight writes) and the read path (one read-ahead
	// per open reader) all hold a buffer without starving each other.
	poolPages := cfg.PoolPages
	if floor := 3*workers + 4; poolPages < floor {
		poolPages = floor
	}

	dir, err := os.MkdirTemp(cfg.Dir, "hjspill-")
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	m := &Manager{
		a:        cfg.A,
		dir:      dir,
		pageSize: pageSize,
		ctx:      cfg.Ctx,
		pool:     make(chan pageBuf, poolPages),
		writeq:   make(chan writeReq, 2*workers),
	}
	for i := 0; i < poolPages; i++ {
		addr, err := cfg.A.TryAlloc(uint64(pageSize), 64)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		m.pool <- pageBuf{addr: addr, b: cfg.A.Bytes(addr, uint64(pageSize))}
	}
	m.wwg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.writeWorker()
	}
	return m, nil
}

// Dir returns the Manager's temp directory (removed by Close).
func (m *Manager) Dir() string { return m.dir }

// PageSize returns the spill page size in bytes.
func (m *Manager) PageSize() int { return m.pageSize }

// Stats snapshots the I/O counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Partitions:   int(m.partitions.Load()),
		PagesWritten: m.pagesWritten.Load(),
		BytesWritten: m.bytesWritten.Load(),
		PagesRead:    m.pagesRead.Load(),
		BytesRead:    m.bytesRead.Load(),
		WriteRetries: m.writeRetries.Load(),
		ReadRetries:  m.readRetries.Load(),
		WriteStall:   time.Duration(m.writeStallNs.Load()),
		ReadStall:    time.Duration(m.readStallNs.Load()),
	}
}

// Close drains the write-behind queue, waits for in-flight reads,
// closes every partition file, and removes the temp directory. It is
// idempotent; the first error encountered is returned. Writers must not
// be appended to after Close begins (the join's spill path is
// serialized, so the panicking goroutine is the appending one).
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()

	close(m.writeq)
	m.wwg.Wait()
	m.rwg.Wait()

	var first error
	for _, f := range m.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := fault.Hit(fault.SiteSpillRemove); err != nil {
		if first == nil {
			first = fmt.Errorf("spill: removing %s: %w", m.dir, err)
		}
	} else if err := os.RemoveAll(m.dir); err != nil && first == nil {
		first = err
	}
	return first
}

// ctxErr reports the Manager's cancellation state; nil Ctx never
// cancels.
func (m *Manager) ctxErr() error {
	if m.ctx == nil {
		return nil
	}
	return m.ctx.Err()
}

// writeWorker is the write-behind loop: pop a full page, write it at its
// partition offset, return the buffer to the pool.
func (m *Manager) writeWorker() {
	defer m.wwg.Done()
	for req := range m.writeq {
		m.writePage(req)
	}
}

// writePage seals and writes one page. Panics (fault-injected or
// otherwise) are contained into the writer's sticky error so the buffer
// still returns to the pool and pending.Done still runs — a failed write
// must never deadlock Finish or Close.
func (m *Manager) writePage(req writeReq) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := fault.AsInjected(r); ok {
				req.w.setErr(e)
			} else {
				req.w.setErr(fmt.Errorf("spill: write worker panic: %v", r))
			}
		}
		m.release(req.buf)
		req.w.pending.Done()
	}()
	sealPage(req.buf.b, uint32(req.idx))
	err := retryIO(&m.writeRetries, func() error {
		if err := fault.Hit(fault.SiteSpillWrite); err != nil {
			return err
		}
		_, err := req.w.f.WriteAt(req.buf.b, req.off)
		return err
	})
	if err != nil {
		req.w.setErr(err)
		return
	}
	m.pagesWritten.Add(1)
	m.bytesWritten.Add(int64(len(req.buf.b)))
}

// acquire takes a buffer from the pool, charging any wait to stallNs —
// the write path passes the write-stall counter, the read path the
// read-stall counter, so the stats separate "write-behind fell behind"
// from "read-ahead fell behind".
func (m *Manager) acquire(stallNs *atomic.Int64) pageBuf {
	select {
	case b := <-m.pool:
		return b
	default:
	}
	t0 := time.Now()
	b := <-m.pool
	stallNs.Add(int64(time.Since(t0)))
	return b
}

// Release returns a page delivered by a Reader to the buffer pool.
// Every page from Reader.Next must be released exactly once; holding a
// page pins its bytes (a chunk of spilled build tuples stays addressable
// while its hash table is probed).
func (m *Manager) Release(p Page) { m.release(p.buf) }

func (m *Manager) release(b pageBuf) { m.pool <- b }

// newFile creates the next partition file under the spill directory.
func (m *Manager) newFile() (*os.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("spill: manager closed")
	}
	if err := fault.Hit(fault.SiteSpillCreate); err != nil {
		return nil, fmt.Errorf("spill: creating partition: %w", err)
	}
	f, err := os.Create(filepath.Join(m.dir, fmt.Sprintf("part-%04d.spill", m.nfiles)))
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	m.nfiles++
	m.files = append(m.files, f)
	m.partitions.Add(1)
	return f, nil
}
