// Package spill is the out-of-core tier of the native join's degradation
// ladder: disk-backed GRACE partitions with asynchronous write-behind and
// double-buffered read-ahead — the overlap structure internal/iosim
// models cycle-by-cycle (the paper's Figure 9 claim that partition I/O
// hides behind compute), realized here on real files.
//
// A Manager owns a spill area spread over one or more parent directories
// and a fixed pool of reusable page-sized buffers allocated from the
// join's arena. Partition Writers encode tuples into internal/storage
// slotted pages — reusing the memoized-hash-code slot layout of section
// 7.1, so spilled partitions carry their hash codes back without
// recomputation — and hand full pages to background writer goroutines
// (write-behind). Readers stream a partition back with one page of
// read-ahead in flight, so the next page's disk latency overlaps the
// current page's probe work.
//
// The tier is self-healing: I/O errors that indict a directory (ENOSPC,
// EIO, EROFS, ...) mark that directory unhealthy in a process-wide
// registry (see health.go) and surface as a *DirFailedError, so the
// caller can rebuild the partition on the next healthy directory instead
// of failing the query; a corrupt or lost partition file is quarantined
// with Quarantine and rebuilt the same way. Only when every configured
// directory is down does the tier report *SpillUnavailableError.
//
// Buffers live in the arena rather than on the Go heap for one load-
// bearing reason: the native engine addresses every tuple by arena
// address (Entry.Ref indexes the arena's backing slice), so a tuple read
// back from disk into an arena-backed page is immediately joinable — its
// refs flow through the same emit/sink path as resident tuples, and the
// pool is reclaimed by the run's arena scope like any other scratch.
package spill

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/fault"
)

const (
	// DefaultPageSize is the spill page size. Slotted pages address
	// tuples with u16 offsets, so pages must stay under 64 KiB; 32 KiB
	// amortizes syscall cost while keeping the buffer pool small.
	DefaultPageSize = 32 << 10
	// DefaultWorkers is the write-behind worker count: enough to overlap
	// one partition's writes with the next page's encoding without
	// claiming many buffers.
	DefaultWorkers = 2
	// minPageSize bounds PageSize from below (tests shrink pages to
	// force multi-page partitions).
	minPageSize = 256
	// maxPageSize keeps every slot offset and the free pointer
	// representable as u16.
	maxPageSize = 63 << 10
)

// Config sizes a Manager.
type Config struct {
	// Dir is the parent directory spec for the spill area: an ordered,
	// comma-separated list of directories ("" means the OS temp
	// directory). The Manager creates (and removes on Close) its own
	// subdirectory inside each parent it actually uses, preferring
	// earlier entries and failing over to later ones when a directory
	// turns unhealthy mid-join.
	Dir string
	// PageSize is the spill page size in bytes; 0 selects
	// DefaultPageSize.
	PageSize int
	// Workers is the write-behind goroutine count; <1 selects
	// DefaultWorkers.
	Workers int
	// PoolPages is the buffer pool size; it is raised to at least what
	// the write and read paths need to make progress.
	PoolPages int
	// IOAttempts bounds how many times one page I/O is tried before its
	// error is declared permanent; <1 selects DefaultIOAttempts.
	IOAttempts int
	// IOBackoff is the first retry's sleep (each further retry waits 4x
	// longer); <=0 selects DefaultIOBackoff.
	IOBackoff time.Duration
	// A is the arena the buffer pool is allocated from. Required.
	A *arena.Arena
	// Ctx, when non-nil, cancels spilling cooperatively: Writers check it
	// at page boundaries and Readers before each delivered page, so a
	// cancelled join stops within one page of I/O.
	Ctx context.Context
}

// Stats is a snapshot of a Manager's I/O counters.
type Stats struct {
	Partitions   int // partition files created
	PagesWritten int64
	BytesWritten int64
	PagesRead    int64
	BytesRead    int64

	// WriteRetries and ReadRetries count page I/Os that were retried
	// after a transient error (bounded retry with backoff); permanent
	// errors skip retry and fail the join via the sticky first error.
	WriteRetries int64
	ReadRetries  int64

	// Failovers counts directories this Manager declared failed (and
	// marked unhealthy in the process-wide registry) before moving on to
	// the next one. Rebuilds counts partitions whose spill data was
	// rebuilt from the in-memory source after a failure (NoteRebuild).
	// Quarantined counts partition files set aside by Quarantine.
	Failovers   int64
	Rebuilds    int64
	Quarantined int64

	// WriteStall is time spent waiting for a free pool buffer on the
	// encode path — the time write-behind failed to hide. ReadStall is
	// time spent waiting for an in-flight read — the time read-ahead
	// failed to hide.
	WriteStall time.Duration
	ReadStall  time.Duration
}

// Manager owns a spill area: the temp directories, the buffer pool, and
// the write-behind workers. Close is idempotent and removes every file
// the Manager created; callers defer it on both the normal and the
// panic path, so a crashed join leaves no orphans.
type Manager struct {
	a        *arena.Arena
	parents  []string // configured parent directories, in preference order
	subdirs  []string // created per-parent subdirectories; "" until used
	pageSize int
	ctx      context.Context // nil: never cancelled

	ioAttempts int
	ioBackoff  time.Duration

	pool   chan pageBuf
	writeq chan writeReq
	wwg    sync.WaitGroup // write-behind workers
	rwg    sync.WaitGroup // in-flight read-ahead goroutines

	mu     sync.Mutex
	files  []*os.File
	nfiles int
	closed bool

	partitions   atomic.Int64
	pagesWritten atomic.Int64
	bytesWritten atomic.Int64
	pagesRead    atomic.Int64
	bytesRead    atomic.Int64
	writeRetries atomic.Int64
	readRetries  atomic.Int64
	failovers    atomic.Int64
	rebuilds     atomic.Int64
	quarantined  atomic.Int64
	writeStallNs atomic.Int64
	readStallNs  atomic.Int64
}

// writeReq is one full page travelling to a write-behind worker.
type writeReq struct {
	w   *Writer
	idx int // page index within the partition, sealed into the header
	off int64
	buf pageBuf
}

// NewManager creates the spill area and starts the write-behind workers.
// The buffer pool is allocated from cfg.A up front, so a join that
// cannot afford its spill scratch fails here, before any file exists.
// When every configured directory is unhealthy (and fails its revival
// probe) the error is a *SpillUnavailableError.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.A == nil {
		return nil, fmt.Errorf("spill: Config.A is required")
	}
	pageSize := cfg.PageSize
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < minPageSize || pageSize > maxPageSize {
		return nil, fmt.Errorf("spill: page size %d outside [%d, %d]", pageSize, minPageSize, maxPageSize)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = DefaultWorkers
	}
	attempts := cfg.IOAttempts
	if attempts < 1 {
		attempts = DefaultIOAttempts
	}
	backoff := cfg.IOBackoff
	if backoff <= 0 {
		backoff = DefaultIOBackoff
	}
	// The pool must let the write path (one page being encoded + the
	// write queue + in-flight writes) and the read path (one read-ahead
	// per open reader) all hold a buffer without starving each other.
	poolPages := cfg.PoolPages
	if floor := 3*workers + 4; poolPages < floor {
		poolPages = floor
	}

	parents := ParseDirs(cfg.Dir)
	m := &Manager{
		a:          cfg.A,
		parents:    parents,
		subdirs:    make([]string, len(parents)),
		pageSize:   pageSize,
		ctx:        cfg.Ctx,
		ioAttempts: attempts,
		ioBackoff:  backoff,
		pool:       make(chan pageBuf, poolPages),
		writeq:     make(chan writeReq, 2*workers),
	}
	// Create the first usable parent's subdirectory up front: a join
	// whose spill area cannot exist at all should fail before any page
	// is encoded, and with the same typed error a mid-join exhaustion
	// produces.
	if _, err := m.ensureSubdirLocked(); err != nil {
		return nil, err
	}
	for i := 0; i < poolPages; i++ {
		addr, err := cfg.A.TryAlloc(uint64(pageSize), 64)
		if err != nil {
			m.removeSubdirs()
			return nil, err
		}
		m.pool <- pageBuf{addr: addr, b: cfg.A.Bytes(addr, uint64(pageSize))}
	}
	m.wwg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.writeWorker()
	}
	return m, nil
}

// ensureSubdirLocked finds the first healthy parent directory and
// creates this Manager's subdirectory in it (if not already created),
// returning the parent's index. Parents whose subdirectory creation
// fails with a directory-class error are marked unhealthy and skipped —
// that is the create-time half of failover. Callers hold m.mu (or, in
// NewManager, exclusive ownership).
func (m *Manager) ensureSubdirLocked() (int, error) {
	var lastErr error
	for i, parent := range m.parents {
		if !dirHealthy(parent) {
			continue
		}
		if m.subdirs[i] != "" {
			return i, nil
		}
		dir, err := os.MkdirTemp(parent, "hjspill-")
		if err != nil {
			if dirPermanent(err) {
				lastErr = m.dirFailed(i, err)
				continue
			}
			return 0, fmt.Errorf("spill: %w", err)
		}
		m.subdirs[i] = dir
		return i, nil
	}
	return 0, unavailableDirs(m.parents, lastErr)
}

// dirFailed marks a parent directory unhealthy in the process-wide
// registry, counts the failover, and returns the typed wrapper the
// caller hands up so the partition can be rebuilt elsewhere.
func (m *Manager) dirFailed(idx int, cause error) *DirFailedError {
	markDirUnhealthy(m.parents[idx], cause)
	m.failovers.Add(1)
	return &DirFailedError{Dir: m.parents[idx], Cause: cause}
}

// Dir returns the Manager's first created spill subdirectory (removed
// by Close), for diagnostics.
func (m *Manager) Dir() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.subdirs {
		if d != "" {
			return d
		}
	}
	return ""
}

// Dirs returns the configured parent directory list.
func (m *Manager) Dirs() []string { return m.parents }

// PageSize returns the spill page size in bytes.
func (m *Manager) PageSize() int { return m.pageSize }

// NoteRebuild counts one partition rebuilt from its in-memory source
// after a spill failure; the native tier calls it when it re-spills.
func (m *Manager) NoteRebuild() { m.rebuilds.Add(1) }

// Stats snapshots the I/O counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Partitions:   int(m.partitions.Load()),
		PagesWritten: m.pagesWritten.Load(),
		BytesWritten: m.bytesWritten.Load(),
		PagesRead:    m.pagesRead.Load(),
		BytesRead:    m.bytesRead.Load(),
		WriteRetries: m.writeRetries.Load(),
		ReadRetries:  m.readRetries.Load(),
		Failovers:    m.failovers.Load(),
		Rebuilds:     m.rebuilds.Load(),
		Quarantined:  m.quarantined.Load(),
		WriteStall:   time.Duration(m.writeStallNs.Load()),
		ReadStall:    time.Duration(m.readStallNs.Load()),
	}
}

// Close drains the write-behind queue, waits for in-flight reads,
// closes every partition file, and removes the spill subdirectories. It
// is idempotent; the first error encountered is returned — except
// removal failures on directories already marked unhealthy, which are
// expected on dead media and must not fail an otherwise-recovered join.
// Writers must not be appended to after Close begins (the join's spill
// path is serialized, so the panicking goroutine is the appending one).
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()

	close(m.writeq)
	m.wwg.Wait()
	m.rwg.Wait()

	var first error
	for _, f := range m.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := fault.Hit(fault.SiteSpillRemove); err != nil {
		if first == nil {
			first = fmt.Errorf("spill: removing %s: %w", m.Dir(), err)
		}
	} else if err := m.removeSubdirs(); err != nil && first == nil {
		first = err
	}
	return first
}

// removeSubdirs removes every created spill subdirectory, swallowing
// failures on parents the registry already knows are unhealthy.
func (m *Manager) removeSubdirs() error {
	var first error
	for i, dir := range m.subdirs {
		if dir == "" {
			continue
		}
		if err := os.RemoveAll(dir); err != nil {
			if dirHealthy(m.parents[i]) && first == nil {
				first = err
			}
			continue
		}
		m.subdirs[i] = ""
	}
	return first
}

// ctxErr reports the Manager's cancellation state; nil Ctx never
// cancels.
func (m *Manager) ctxErr() error {
	if m.ctx == nil {
		return nil
	}
	return m.ctx.Err()
}

// writeWorker is the write-behind loop: pop a full page, write it at its
// partition offset, return the buffer to the pool.
func (m *Manager) writeWorker() {
	defer m.wwg.Done()
	for req := range m.writeq {
		m.writePage(req)
	}
}

// writePage seals and writes one page. Panics (fault-injected or
// otherwise) are contained into the writer's sticky error so the buffer
// still returns to the pool and pending.Done still runs — a failed write
// must never deadlock Finish or Close. A permanent error that indicts
// the directory (ENOSPC, EIO, ...) marks it unhealthy and becomes a
// *DirFailedError, the caller's signal to rebuild the partition on the
// next healthy directory.
func (m *Manager) writePage(req writeReq) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := fault.AsInjected(r); ok {
				req.w.setErr(e)
			} else {
				req.w.setErr(fmt.Errorf("spill: write worker panic: %v", r))
			}
		}
		m.release(req.buf)
		req.w.pending.Done()
	}()
	sealPage(req.buf.b, uint32(req.idx))
	err := m.retryIO(&m.writeRetries, func() error {
		if err := fault.Hit(fault.SiteSpillWrite); err != nil {
			return err
		}
		_, err := req.w.f.WriteAt(req.buf.b, req.off)
		return err
	})
	if err != nil {
		if dirPermanent(err) {
			req.w.setErr(m.dirFailed(req.w.dirIdx, err))
		} else {
			req.w.setErr(err)
		}
		return
	}
	m.pagesWritten.Add(1)
	m.bytesWritten.Add(int64(len(req.buf.b)))
}

// acquire takes a buffer from the pool, charging any wait to stallNs —
// the write path passes the write-stall counter, the read path the
// read-stall counter, so the stats separate "write-behind fell behind"
// from "read-ahead fell behind".
func (m *Manager) acquire(stallNs *atomic.Int64) pageBuf {
	select {
	case b := <-m.pool:
		return b
	default:
	}
	t0 := time.Now()
	b := <-m.pool
	stallNs.Add(int64(time.Since(t0)))
	return b
}

// Release returns a page delivered by a Reader to the buffer pool.
// Every page from Reader.Next must be released exactly once; holding a
// page pins its bytes (a chunk of spilled build tuples stays addressable
// while its hash table is probed).
func (m *Manager) Release(p Page) { m.release(p.buf) }

func (m *Manager) release(b pageBuf) { m.pool <- b }

// newFile creates the next partition file in the preferred healthy
// spill directory, reporting which parent it landed in.
func (m *Manager) newFile() (*os.File, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, 0, fmt.Errorf("spill: manager closed")
	}
	if err := fault.Hit(fault.SiteSpillCreate); err != nil {
		return nil, 0, fmt.Errorf("spill: creating partition: %w", err)
	}
	for {
		idx, err := m.ensureSubdirLocked()
		if err != nil {
			return nil, 0, err
		}
		f, err := os.Create(filepath.Join(m.subdirs[idx], fmt.Sprintf("part-%04d.spill", m.nfiles)))
		if err != nil {
			if dirPermanent(err) {
				// The subdirectory existed but the create failed at the
				// directory level (disk filled or died since): fail the dir
				// over and retry the loop on the next healthy one —
				// ensureSubdirLocked returns *SpillUnavailableError once
				// every parent is down, which bounds the loop.
				m.dirFailed(idx, err)
				continue
			}
			return nil, 0, fmt.Errorf("spill: %w", err)
		}
		m.nfiles++
		m.files = append(m.files, f)
		m.partitions.Add(1)
		return f, idx, nil
	}
}

// Quarantine sets a failed partition file aside: the file is closed,
// renamed with a ".quarantined" suffix (best effort — the directory may
// be dead), and disowned by the Manager so Close does not double-close
// it. The caller then rebuilds the partition with a fresh Writer; the
// quarantined file stays on disk for post-mortem until the spill
// subdirectory is removed at Close.
func (m *Manager) Quarantine(w *Writer) {
	m.mu.Lock()
	for i, f := range m.files {
		if f == w.f {
			m.files = append(m.files[:i], m.files[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	name := w.f.Name()
	w.f.Close()
	if err := os.Rename(name, name+".quarantined"); err != nil {
		os.Remove(name) // dead dir or vanished file: nothing to keep
	}
	m.quarantined.Add(1)
}
