package spill

import "hashjoin/internal/arena"

// pageBuf is one pool buffer: a page-sized arena region and its byte
// view. The address matters as much as the bytes — tuples decoded from a
// spilled page are handed to the join as arena addresses into this
// region, so they flow through the same emit/sink path as resident
// tuples.
type pageBuf struct {
	addr arena.Addr
	b    []byte
}
