package spill

import (
	"fmt"
	"os"
	"sync"

	"hashjoin/internal/fault"
	"hashjoin/internal/storage"
)

// Writer spills one partition: tuples are encoded into slotted pages in
// a pool buffer, and each full page is enqueued for a write-behind
// worker, so encoding the next page overlaps writing the previous one.
// A Writer is single-goroutine; the Manager's workers do the I/O.
type Writer struct {
	m       *Manager
	f       *os.File
	dirIdx  int // index into m.parents of the directory holding the file
	cur     pageBuf
	page    storage.Page
	hasCur  bool
	npages  int
	ntuples int
	pending sync.WaitGroup // pages enqueued but not yet written

	errMu sync.Mutex
	err   error // first write error, sticky
}

// NewWriter opens a fresh partition file for spilling, in the first
// healthy spill directory.
func (m *Manager) NewWriter() (*Writer, error) {
	f, dirIdx, err := m.newFile()
	if err != nil {
		return nil, err
	}
	return &Writer{m: m, f: f, dirIdx: dirIdx}, nil
}

// Path returns the partition file's path (for error reporting).
func (w *Writer) Path() string { return w.f.Name() }

// Append encodes one tuple with its memoized hash code. A page that
// fills is handed to the write-behind queue and a fresh buffer taken
// from the pool; the only wait on this path is pool pressure (charged
// to WriteStall). Cancellation is checked at page boundaries, so a
// cancelled join stops spilling within one page.
func (w *Writer) Append(tuple []byte, code uint32) error {
	if !w.hasCur {
		if err := w.m.ctxErr(); err != nil {
			return err
		}
		w.newPage()
	}
	if !w.page.Append(tuple, code) {
		if err := w.m.ctxErr(); err != nil {
			return err
		}
		w.flush()
		w.newPage()
		if !w.page.Append(tuple, code) {
			return fmt.Errorf("spill: %d-byte tuple does not fit a %d-byte page",
				len(tuple), w.m.pageSize)
		}
	}
	w.ntuples++
	return w.firstErr()
}

// NTuples returns the number of tuples appended so far.
func (w *Writer) NTuples() int { return w.ntuples }

// NPages returns the number of pages the partition occupies (including
// a partially filled current page).
func (w *Writer) NPages() int {
	if w.hasCur {
		return w.npages + 1
	}
	return w.npages
}

// Finish flushes the partial last page and waits for every enqueued
// page to hit the file, returning the first write error. The partition
// is then ready for OpenReader; the file stays open (and owned by the
// Manager) until Manager.Close.
func (w *Writer) Finish() error {
	if w.hasCur {
		if w.page.NSlots() > 0 {
			w.flush()
		} else {
			w.m.release(w.cur)
			w.hasCur = false
		}
	}
	w.pending.Wait()
	if err := fault.Hit(fault.SiteSpillSync); err != nil {
		w.setErr(fmt.Errorf("spill: finishing %s: %w", w.f.Name(), err))
	}
	return w.firstErr()
}

// newPage takes a pool buffer and initializes a slotted page in its
// payload region, past the integrity header (sealed at write time).
func (w *Writer) newPage() {
	w.cur = w.m.acquire(&w.m.writeStallNs)
	w.page = storage.InitPage(w.m.a, w.cur.addr+HeaderSize,
		w.m.pageSize-HeaderSize, uint32(w.npages))
	w.hasCur = true
}

// flush enqueues the current page for write-behind. Full pages are
// written whole (a partial final page included — its slot count bounds
// the valid region), so reads can fetch fixed-size pages.
func (w *Writer) flush() {
	w.pending.Add(1)
	w.m.writeq <- writeReq{w: w, idx: w.npages, off: int64(w.npages) * int64(w.m.pageSize), buf: w.cur}
	w.npages++
	w.hasCur = false
}

func (w *Writer) setErr(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
}

func (w *Writer) firstErr() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}
