package spill

import (
	"fmt"
	"os"
	"time"

	"hashjoin/internal/fault"
	"hashjoin/internal/storage"
)

// Page is one spilled page delivered by a Reader: a slotted-page view
// over an arena-backed pool buffer. The caller must hand it back with
// Manager.Release exactly once; until then its tuples stay addressable
// by arena address.
type Page struct {
	buf  pageBuf
	view storage.Page
}

// View returns the slotted-page view (arena, address, size).
func (p Page) View() storage.Page { return p.view }

// NTuples returns the number of tuples on the page.
func (p Page) NTuples() int { return p.view.NSlots() }

// readRes is one completed read-ahead.
type readRes struct {
	buf pageBuf
	err error
}

// Reader streams a finished partition back with double buffering: while
// the caller consumes page n, page n+1's read is in flight in a
// background goroutine. Only the wait for an unfinished read is charged
// to ReadStall — that is the latency read-ahead failed to hide.
type Reader struct {
	m      *Manager
	f      *os.File
	dirIdx int // index into m.parents of the directory holding the file
	npages int
	next   int // next page index to deliver
	issued int // next page index to start reading
	ahead  chan readRes
}

// OpenReader starts streaming the partition from the beginning. The
// Writer must be Finished. Multiple sequential read passes over one
// partition are allowed (the chunked join re-reads the probe partition
// once per build chunk); each pass uses its own Reader.
func (w *Writer) OpenReader() *Reader {
	return &Reader{m: w.m, f: w.f, dirIdx: w.dirIdx, npages: w.npages, ahead: make(chan readRes, 1)}
}

// Next delivers the next page, issuing the following page's read before
// returning. ok is false at end of partition. The caller owns the page
// until Manager.Release. Every page is integrity-checked (magic,
// version, index, CRC32C) before its payload is decoded; a failed check
// returns a *CorruptPageError and poisons the reader. Cancellation is
// checked before each delivered page.
func (r *Reader) Next() (Page, bool, error) {
	if r.next >= r.npages {
		return Page{}, false, nil
	}
	if err := r.m.ctxErr(); err != nil {
		return Page{}, false, err
	}
	if r.issued == r.next {
		r.issue()
	}
	var res readRes
	select {
	case res = <-r.ahead:
	default:
		t0 := time.Now()
		res = <-r.ahead
		r.m.readStallNs.Add(int64(time.Since(t0)))
	}
	if res.err != nil {
		r.m.release(res.buf)
		r.next = r.npages // poison: further Next calls return done
		return Page{}, false, res.err
	}
	idx := r.next
	r.next++
	if r.issued < r.npages {
		r.issue()
	}
	if fault.Hit(fault.SiteSpillVerify) != nil {
		// Chaos hook: flip one payload byte so the CRC check below fails
		// exactly as a real on-disk bit flip would.
		res.buf.b[HeaderSize] ^= 0xFF
	}
	if reason := verifyPage(res.buf.b, uint32(idx)); reason != "" {
		return Page{}, false, r.corrupt(res.buf, idx, reason)
	}
	view := storage.Page{A: r.m.a, Addr: res.buf.addr + HeaderSize, Size: r.m.pageSize - HeaderSize}
	if got := view.PageID(); got != uint32(idx) {
		return Page{}, false, r.corrupt(res.buf, idx,
			fmt.Sprintf("payload decoded page id %d (want %d)", got, idx))
	}
	return Page{buf: res.buf, view: view}, true, nil
}

// corrupt releases the failed page's buffer, abandons the already-
// issued read-ahead, poisons the reader, and builds the typed
// corruption error.
func (r *Reader) corrupt(buf pageBuf, idx int, reason string) error {
	r.m.release(buf)
	r.abandon()
	return &CorruptPageError{
		File:   r.f.Name(),
		Page:   idx,
		Offset: int64(idx) * int64(r.m.pageSize),
		Reason: reason,
	}
}

// issue starts the read of page r.issued into a fresh pool buffer. The
// goroutine is tracked by the Manager so Close never races a live read
// into a reclaimed buffer.
func (r *Reader) issue() {
	buf := r.m.acquire(&r.m.readStallNs)
	off := int64(r.issued) * int64(r.m.pageSize)
	r.issued++
	r.m.rwg.Add(1)
	go func() {
		defer r.m.rwg.Done()
		// Contain panics (fault-injected or otherwise) into the result:
		// the buffer must reach the ahead channel either way, or Next and
		// Close would deadlock waiting for it.
		defer func() {
			if rec := recover(); rec != nil {
				err, ok := fault.AsInjected(rec)
				if !ok {
					err = fmt.Errorf("spill: read worker panic: %v", rec)
				}
				r.ahead <- readRes{buf: buf, err: err}
			}
		}()
		err := r.m.retryIO(&r.m.readRetries, func() error {
			if err := fault.Hit(fault.SiteSpillRead); err != nil {
				return err
			}
			_, err := r.f.ReadAt(buf.b, off)
			return err
		})
		if err == nil {
			r.m.pagesRead.Add(1)
			r.m.bytesRead.Add(int64(len(buf.b)))
		} else if dirPermanent(err) {
			err = r.m.dirFailed(r.dirIdx, err)
		}
		r.ahead <- readRes{buf: buf, err: err}
	}()
}

// Close releases the in-flight read-ahead buffer, if any. It does not
// touch the partition file (the Manager owns it) and is required even
// after Next returned done or an error.
func (r *Reader) Close() { r.abandon() }

// abandon drains any in-flight read-ahead back into the pool and
// poisons the reader so further Next calls return done.
func (r *Reader) abandon() {
	if r.issued > r.next && r.issued <= r.npages {
		res := <-r.ahead
		r.m.release(res.buf)
	}
	r.next, r.issued = r.npages, r.npages
}
