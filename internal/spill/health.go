package spill

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Directory health tracking for the self-healing spill tier. A spill
// Manager may be configured with an ordered list of parent directories
// (Config.Dir accepts a comma-separated list); I/O errors that indict
// the *medium* rather than the query — ENOSPC, EIO, EROFS and friends —
// mark the directory unhealthy in a process-wide registry, and the
// Manager fails over to the next healthy directory instead of failing
// the join. Unhealthy directories are re-probed (throttled) with a real
// write/read/remove cycle, so a recovered disk rejoins the rotation
// without a restart.
//
// The registry is process-global on purpose: directory health is a
// property of the host, not of one join, and a long-lived service
// (hjserve) wants every query to benefit from — and contribute to — one
// shared view of which spill volumes work.

// ErrSpillUnavailable is the sentinel every *SpillUnavailableError
// unwraps to: no configured spill directory could accept writes.
var ErrSpillUnavailable = errors.New("spill: no healthy spill directory")

// SpillUnavailableError reports that the out-of-core tier is down: every
// configured directory is unhealthy (or failed over in turn). It is a
// retryable, query-scoped failure — the query sheds, the service keeps
// running, and a later query re-probes the directories.
type SpillUnavailableError struct {
	Dirs  []string // the configured directory list ("" means the OS temp dir)
	Cause error    // the last per-directory failure, when one is known
}

func (e *SpillUnavailableError) Error() string {
	msg := fmt.Sprintf("spill: all %d spill directories unhealthy", len(e.Dirs))
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

func (e *SpillUnavailableError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrSpillUnavailable, e.Cause}
	}
	return []error{ErrSpillUnavailable}
}

// DirFailedError wraps an I/O error that indicted a spill directory
// rather than the query: the directory has been marked unhealthy and
// the partition that hit it can be rebuilt on the next healthy one.
type DirFailedError struct {
	Dir   string // the configured parent directory ("" = OS temp)
	Cause error
}

func (e *DirFailedError) Error() string {
	return fmt.Sprintf("spill: directory %s failed: %v", displayDir(e.Dir), e.Cause)
}

func (e *DirFailedError) Unwrap() error { return e.Cause }

// DirHealth is one directory's entry in the health registry, surfaced
// by Health for /healthz-style reporting.
type DirHealth struct {
	Dir     string // configured parent directory ("" = OS temp)
	Healthy bool
	Cause   string    // why it was marked unhealthy ("" when healthy)
	Since   time.Time // when it was marked unhealthy (zero when healthy)
}

// dirPermanent reports whether an I/O error indicts the directory (its
// filesystem or device) rather than the operation: out of space or
// quota, a read-only or vanished mount, a device-level I/O failure.
// Injected faults and ordinary corruption are not in this class — they
// must fail (or rebuild) the query without poisoning the directory.
func dirPermanent(err error) bool {
	for _, errno := range []syscall.Errno{
		syscall.ENOSPC, syscall.EDQUOT, syscall.EIO, syscall.EROFS,
		syscall.ENODEV, syscall.ENXIO, syscall.ESTALE,
		syscall.ENOENT, syscall.ENOTDIR, syscall.EACCES, syscall.EPERM,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// ParseDirs splits a comma-separated spill-directory spec into the
// ordered directory list, trimming whitespace and dropping empty
// entries. An empty (or all-empty) spec yields [""], the OS temp dir.
func ParseDirs(spec string) []string {
	var dirs []string
	for _, d := range strings.Split(spec, ",") {
		if d = strings.TrimSpace(d); d != "" {
			dirs = append(dirs, d)
		}
	}
	if len(dirs) == 0 {
		return []string{""}
	}
	return dirs
}

// probeThrottle bounds how often one unhealthy directory is re-probed;
// failed media tends to stay failed for a while, and a probe is three
// real syscalls.
const probeThrottle = time.Second

// dirFault is one unhealthy directory's registry entry.
type dirFault struct {
	cause     error
	since     time.Time
	lastProbe time.Time
}

var (
	healthMu  sync.Mutex
	unhealthy = map[string]*dirFault{}
)

// canonDir resolves the registry key for a configured parent directory:
// "" means the OS temp directory, like os.MkdirTemp.
func canonDir(parent string) string {
	if parent == "" {
		return os.TempDir()
	}
	return parent
}

// displayDir renders a configured parent for error messages.
func displayDir(parent string) string {
	if parent == "" {
		return os.TempDir() + " (default)"
	}
	return parent
}

// markDirUnhealthy records a directory failure in the registry. Already-
// unhealthy directories keep their original cause and timestamp. The
// probe clock starts now: the failure itself is fresh evidence, so the
// first revival probe waits out a full throttle interval.
func markDirUnhealthy(parent string, cause error) {
	key := canonDir(parent)
	healthMu.Lock()
	if _, ok := unhealthy[key]; !ok {
		unhealthy[key] = &dirFault{cause: cause, since: time.Now(), lastProbe: time.Now()}
	}
	healthMu.Unlock()
}

// dirHealthy reports whether a directory is currently usable. An
// unhealthy directory is re-probed at most once per probeThrottle; a
// passing probe revives it.
func dirHealthy(parent string) bool {
	key := canonDir(parent)
	healthMu.Lock()
	f, bad := unhealthy[key]
	if !bad {
		healthMu.Unlock()
		return true
	}
	if time.Since(f.lastProbe) < probeThrottle {
		healthMu.Unlock()
		return false
	}
	f.lastProbe = time.Now()
	healthMu.Unlock()

	if probeDir(key) != nil {
		return false
	}
	healthMu.Lock()
	delete(unhealthy, key)
	healthMu.Unlock()
	return true
}

// probeDir checks that a directory actually accepts I/O: create a file,
// write, read back, remove. This is the revival test — registry state
// never flips back to healthy on faith alone.
func probeDir(dir string) error {
	f, err := os.CreateTemp(dir, ".hjspill-probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	defer os.Remove(name)
	if _, err := f.Write([]byte("hjspill-probe")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if _, err := f.ReadAt(make([]byte, 13), 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// AnyHealthy reports whether at least one directory of a comma-
// separated spec is currently usable, probing (throttled) unhealthy
// ones. The native join consults it before committing a pair to the
// out-of-core tier.
func AnyHealthy(spec string) bool {
	for _, d := range ParseDirs(spec) {
		if dirHealthy(d) {
			return true
		}
	}
	return false
}

// Unavailable builds the typed all-directories-down error for a spec.
// When the caller has no cause in hand, the registry supplies the first
// per-directory failure — so the shed error still matches (errors.Is)
// the errno that took the tier down.
func Unavailable(spec string, cause error) *SpillUnavailableError {
	return unavailableDirs(ParseDirs(spec), cause)
}

func unavailableDirs(dirs []string, cause error) *SpillUnavailableError {
	if cause == nil {
		healthMu.Lock()
		for _, d := range dirs {
			if f, bad := unhealthy[canonDir(d)]; bad {
				cause = f.cause
				break
			}
		}
		healthMu.Unlock()
	}
	return &SpillUnavailableError{Dirs: dirs, Cause: cause}
}

// Health snapshots the registry state of every directory in a comma-
// separated spec, in spec order, without probing.
func Health(spec string) []DirHealth {
	dirs := ParseDirs(spec)
	out := make([]DirHealth, 0, len(dirs))
	healthMu.Lock()
	defer healthMu.Unlock()
	for _, d := range dirs {
		h := DirHealth{Dir: d, Healthy: true}
		if f, bad := unhealthy[canonDir(d)]; bad {
			h.Healthy = false
			h.Cause = f.cause.Error()
			h.Since = f.since
		}
		out = append(out, h)
	}
	return out
}

// Revive probes every unhealthy directory of a spec (throttled) and
// returns the refreshed health snapshot — the hook a service's periodic
// reviver calls so recovered disks rejoin the rotation between queries.
func Revive(spec string) []DirHealth {
	for _, d := range ParseDirs(spec) {
		dirHealthy(d)
	}
	return Health(spec)
}

// ResetHealth clears the registry. Tests that poison directories must
// call it (deferred) so later tests see a clean host view.
func ResetHealth() {
	healthMu.Lock()
	unhealthy = map[string]*dirFault{}
	healthMu.Unlock()
}
