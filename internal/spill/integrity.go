package spill

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"
	"syscall"
	"time"

	"hashjoin/internal/storage"
)

// Every spill page carries a 16-byte integrity header ahead of the
// slotted-page payload:
//
//	[0:4)   magic "HJSP"
//	[4:6)   format version
//	[6:8)   reserved (zero)
//	[8:12)  page index within the partition file
//	[12:16) CRC32C (Castagnoli) over the payload
//
// The header is sealed by the write-behind worker just before the page
// hits disk (overlapping the checksum with the next page's encoding) and
// verified by the Reader before the payload is decoded, so a torn write,
// bit flip, or misplaced page surfaces as a typed *CorruptPageError
// instead of garbage join output.
const (
	// HeaderSize is the per-page integrity header, carved out of the
	// page before the slotted payload.
	HeaderSize = 16

	pageMagic   = 0x48_4A_53_50 // "HJSP"
	pageVersion = 1
)

// ErrCorrupt is the sentinel every *CorruptPageError unwraps to.
var ErrCorrupt = errors.New("spill: corrupt page")

// CorruptPageError reports a spill page that failed integrity
// verification: which file, which page, at what byte offset, and why.
type CorruptPageError struct {
	File   string
	Page   int
	Offset int64
	Reason string
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("spill: corrupt page %d at offset %d in %s: %s",
		e.Page, e.Offset, e.File, e.Reason)
}

func (e *CorruptPageError) Unwrap() error { return ErrCorrupt }

// PageCapacity returns how many tuples of the given width fit one spill
// page, net of the integrity header — the number callers must use when
// sizing chunks from page counts.
func PageCapacity(pageSize, tupleSize int) int {
	return storage.CapacityFor(pageSize-HeaderSize, tupleSize)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// sealPage stamps the integrity header onto a fully encoded page buffer.
func sealPage(buf []byte, idx uint32) {
	binary.LittleEndian.PutUint32(buf[0:], pageMagic)
	binary.LittleEndian.PutUint16(buf[4:], pageVersion)
	binary.LittleEndian.PutUint16(buf[6:], 0)
	binary.LittleEndian.PutUint32(buf[8:], idx)
	binary.LittleEndian.PutUint32(buf[12:], crc32.Checksum(buf[HeaderSize:], castagnoli))
}

// verifyPage checks a page buffer read back from disk against the
// expected page index. It returns "" when the page is intact, otherwise
// a human-readable reason for the *CorruptPageError.
func verifyPage(buf []byte, idx uint32) string {
	if got := binary.LittleEndian.Uint32(buf[0:]); got != pageMagic {
		return fmt.Sprintf("bad magic %#08x (want %#08x)", got, uint32(pageMagic))
	}
	if got := binary.LittleEndian.Uint16(buf[4:]); got != pageVersion {
		return fmt.Sprintf("format version %d (want %d)", got, pageVersion)
	}
	if got := binary.LittleEndian.Uint16(buf[6:]); got != 0 {
		return fmt.Sprintf("reserved header bytes %#04x (want zero)", got)
	}
	if got := binary.LittleEndian.Uint32(buf[8:]); got != idx {
		return fmt.Sprintf("page index %d (want %d)", got, idx)
	}
	want := binary.LittleEndian.Uint32(buf[12:])
	if got := crc32.Checksum(buf[HeaderSize:], castagnoli); got != want {
		return fmt.Sprintf("checksum %#08x does not match header %#08x", got, want)
	}
	return ""
}

const (
	// DefaultIOAttempts bounds how many times one page I/O is tried
	// before the error is declared permanent and handed to the
	// sticky-error path (Config.IOAttempts overrides).
	DefaultIOAttempts = 3
	// DefaultIOBackoff is the first retry's sleep; each further retry
	// waits 4x longer (Config.IOBackoff overrides).
	DefaultIOBackoff = 250 * time.Microsecond
)

// isTransient reports whether a page I/O error is worth retrying:
// interrupted or temporarily unavailable syscalls, plus the short-write
// and short-read shapes a loaded filesystem can produce without meaning
// the data is gone. Everything else (EBADF, corruption) is permanent and
// fails the join through the sticky first error — and the directory-
// class errnos (ENOSPC, EIO, EROFS, ...) additionally indict the
// directory via dirPermanent, triggering failover rather than retry.
func isTransient(err error) bool {
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, io.ErrShortWrite) || errors.Is(err, io.ErrUnexpectedEOF)
}

// retryIO runs one page I/O with bounded retry and exponential backoff,
// counting retries into the given stat. Only transient errors are
// retried; the last error is returned when the attempts run out. Bounds
// come from the Manager's Config (IOAttempts/IOBackoff).
func (m *Manager) retryIO(retries *atomic.Int64, op func() error) error {
	backoff := m.ioBackoff
	var err error
	for attempt := 0; attempt < m.ioAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 4
			retries.Add(1)
		}
		if err = op(); err == nil || !isTransient(err) {
			return err
		}
	}
	return err
}
