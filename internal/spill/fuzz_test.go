package spill

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"testing"

	"hashjoin/internal/arena"
)

// FuzzSpillRoundTrip drives a whole partition lifecycle from one fuzzed
// byte string: the input is chopped into tuples whose sizes and contents
// it dictates, spilled through a Writer onto a deliberately tiny page
// size (so a few hundred bytes of input already spans pages), and read
// back through a Reader. Every tuple must come back byte-identical, in
// order, with its hash code.
func FuzzSpillRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(16))
	f.Add([]byte("hello spill"), uint8(4))
	f.Add(bytes.Repeat([]byte{0xab}, 3000), uint8(40))
	f.Add(bytes.Repeat([]byte{0x01, 0x02, 0x03}, 500), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, widthSeed uint8) {
		// Derive a tuple width in [1, 200]; anything bigger than the page
		// payload is rejected by Append, which is its own contract.
		width := int(widthSeed)%200 + 1
		m, err := NewManager(Config{
			Dir:      t.TempDir(),
			PageSize: minPageSize,
			A:        arena.New(1 << 20),
		})
		if err != nil {
			t.Fatalf("NewManager: %v", err)
		}
		defer m.Close()

		w, err := m.NewWriter()
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		var tuples [][]byte
		for off := 0; off+width <= len(data); off += width {
			tup := data[off : off+width]
			code := binary.LittleEndian.Uint32(append(append([]byte{}, tup...), 0, 0, 0, 0))
			if err := w.Append(tup, code); err != nil {
				t.Fatalf("Append(%d bytes): %v", width, err)
			}
			tuples = append(tuples, tup)
		}
		if err := w.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
		if w.NTuples() != len(tuples) {
			t.Fatalf("NTuples = %d, want %d", w.NTuples(), len(tuples))
		}

		r := w.OpenReader()
		defer r.Close()
		got := 0
		for {
			pg, ok, err := r.Next()
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if !ok {
				break
			}
			v := pg.View()
			for i := 0; i < pg.NTuples(); i++ {
				if got >= len(tuples) {
					t.Fatalf("read more tuples than written")
				}
				want := tuples[got]
				tup := v.Tuple(i)
				if len(tup) < width || !bytes.Equal(tup[:width], want) {
					t.Fatalf("tuple %d mismatch: %x != %x", got, tup, want)
				}
				wantCode := binary.LittleEndian.Uint32(append(append([]byte{}, want...), 0, 0, 0, 0))
				if code := v.HashCode(i); code != wantCode {
					t.Fatalf("tuple %d code = %d, want %d", got, code, wantCode)
				}
				got++
			}
			m.Release(pg)
		}
		if got != len(tuples) {
			t.Fatalf("read %d tuples, want %d", got, len(tuples))
		}
	})
}

// FuzzPageCorruption flips one fuzzer-chosen byte anywhere in a spilled
// partition file and asserts the integrity check rejects it: the read
// must fail with a *CorruptPageError naming exactly the page that holds
// the flipped byte, every page before it must decode intact, and no
// page at or after it may ever be delivered (no false accepts).
func FuzzPageCorruption(f *testing.F) {
	f.Add(uint16(300), uint32(0), uint8(0x01))
	f.Add(uint16(50), uint32(700), uint8(0x80))
	f.Add(uint16(1), uint32(20), uint8(0xff))
	f.Fuzz(func(t *testing.T, nTuples uint16, flipOff uint32, xor uint8) {
		if xor == 0 {
			return // not a corruption
		}
		const width = 24
		m, err := NewManager(Config{
			Dir:      t.TempDir(),
			PageSize: minPageSize,
			A:        arena.New(1 << 20),
		})
		if err != nil {
			t.Fatalf("NewManager: %v", err)
		}
		defer m.Close()
		w, err := m.NewWriter()
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		n := int(nTuples)%1000 + 1
		for i := 0; i < n; i++ {
			if err := w.Append(tupleFor(i, width), uint32(i)); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := w.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}

		fileSize := int64(w.NPages()) * int64(minPageSize)
		off := int64(flipOff) % fileSize
		target := int(off / minPageSize)
		fl, err := os.OpenFile(w.Path(), os.O_RDWR, 0)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		b := make([]byte, 1)
		if _, err := fl.ReadAt(b, off); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		b[0] ^= xor
		if _, err := fl.WriteAt(b, off); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		fl.Close()

		r := w.OpenReader()
		defer r.Close()
		page := 0
		for {
			pg, ok, err := r.Next()
			if err != nil {
				var cpe *CorruptPageError
				if !errors.As(err, &cpe) {
					t.Fatalf("page %d: err = %T %v, want *CorruptPageError", page, err, err)
				}
				if cpe.Page != target {
					t.Fatalf("corruption reported at page %d, flipped byte is in page %d", cpe.Page, target)
				}
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("errors.Is(ErrCorrupt) = false for %v", err)
				}
				return
			}
			if !ok {
				t.Fatalf("partition with a flipped byte in page %d read to completion", target)
			}
			if page >= target {
				t.Fatalf("page %d delivered past the corrupted page %d (false accept)", page, target)
			}
			// Intact prefix pages must decode their original tuples.
			v := pg.View()
			for i := 0; i < pg.NTuples(); i++ {
				if v.HashCode(i) >= uint32(n) {
					t.Fatalf("page %d slot %d decoded foreign hash code %d", page, i, v.HashCode(i))
				}
			}
			m.Release(pg)
			page++
		}
	})
}
