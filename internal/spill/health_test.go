package spill

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/fault"
)

// Tests for the self-healing directory tier: spec parsing, the health
// registry, write-failure failover between configured directories,
// quarantine, the all-dirs-down typed shed, and probe-driven revival.

func TestParseDirs(t *testing.T) {
	cases := []struct {
		spec string
		want []string
	}{
		{"", []string{""}},
		{" , ,", []string{""}},
		{"/a", []string{"/a"}},
		{"/a,/b", []string{"/a", "/b"}},
		{" /a , /b ,, /c ", []string{"/a", "/b", "/c"}},
	}
	for _, c := range cases {
		if got := ParseDirs(c.spec); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseDirs(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

// twoDirManager builds a Manager over two fresh temp parents and
// returns it with the parent list.
func twoDirManager(t *testing.T) (*Manager, []string) {
	t.Helper()
	t.Cleanup(ResetHealth)
	dirs := []string{t.TempDir(), t.TempDir()}
	m, err := NewManager(Config{
		Dir:      strings.Join(dirs, ","),
		PageSize: 512,
		A:        arena.New(1 << 20),
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m, dirs
}

// TestWriteDirFailureFailsOver: an EIO surfacing from a page write
// indicts the first directory — the writer gets a typed *DirFailedError
// still matching the errno, the registry marks the dir unhealthy, the
// failover counter ticks, and the next writer lands in the second
// configured directory.
func TestWriteDirFailureFailsOver(t *testing.T) {
	defer fault.Reset()
	m, dirs := twoDirManager(t)

	if got := m.Dirs(); !reflect.DeepEqual(got, dirs) {
		t.Fatalf("Dirs() = %v, want %v", got, dirs)
	}
	if !strings.HasPrefix(m.Dir(), dirs[0]+string(os.PathSeparator)) {
		t.Fatalf("first subdir %q not under first parent %q", m.Dir(), dirs[0])
	}

	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindError, Err: syscall.EIO, Count: 1})
	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < 200; i++ {
		if err := w.Append(tupleFor(i, 24), uint32(i)); err != nil {
			break
		}
	}
	err = w.Finish()
	var dfe *DirFailedError
	if !errors.As(err, &dfe) {
		t.Fatalf("Finish error %T (%v), want *DirFailedError", err, err)
	}
	if dfe.Dir != dirs[0] {
		t.Fatalf("DirFailedError.Dir = %q, want %q", dfe.Dir, dirs[0])
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("DirFailedError lost its errno: %v", err)
	}

	h := Health(strings.Join(dirs, ","))
	if len(h) != 2 || h[0].Healthy || !h[1].Healthy {
		t.Fatalf("health after failure = %+v, want [unhealthy healthy]", h)
	}
	if h[0].Cause == "" || h[0].Since.IsZero() {
		t.Fatalf("unhealthy entry missing cause/since: %+v", h[0])
	}
	if got := m.Stats().Failovers; got != 1 {
		t.Fatalf("Stats().Failovers = %d, want 1", got)
	}

	// The quarantined partition's file is the caller's to disown.
	m.Quarantine(w)
	if got := m.Stats().Quarantined; got != 1 {
		t.Fatalf("Stats().Quarantined = %d, want 1", got)
	}

	// A fresh writer must land under the second parent and round-trip.
	w2, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter after failover: %v", err)
	}
	if !strings.HasPrefix(w2.Path(), dirs[1]+string(os.PathSeparator)) {
		t.Fatalf("failover writer path %q not under %q", w2.Path(), dirs[1])
	}
	for i := 0; i < 200; i++ {
		if err := w2.Append(tupleFor(i, 24), uint32(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := w2.Finish(); err != nil {
		t.Fatalf("Finish after failover: %v", err)
	}
	r := w2.OpenReader()
	defer r.Close()
	n := 0
	for {
		p, ok, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		n += p.NTuples()
		m.Release(p)
	}
	if n != 200 {
		t.Fatalf("read back %d tuples, want 200", n)
	}
}

// TestQuarantineRenames: Quarantine disowns the file so Close does not
// try to remove it, and tags it .quarantined for the operator.
func TestQuarantineRenames(t *testing.T) {
	m := newTestManager(t, 512)
	w := writePartition(t, m, 50, 24)
	path := w.Path()
	m.Quarantine(w)
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("original spill file still present: %v", err)
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close with quarantined file: %v", err)
	}
}

// TestNewManagerAllDirsDown: when every configured parent is unusable,
// NewManager sheds with the typed, retryable *SpillUnavailableError.
func TestNewManagerAllDirsDown(t *testing.T) {
	t.Cleanup(ResetHealth)
	spec := "/nonexistent/hjspill-a,/nonexistent/hjspill-b"
	_, err := NewManager(Config{Dir: spec, PageSize: 512, A: arena.New(1 << 20)})
	var sue *SpillUnavailableError
	if !errors.As(err, &sue) {
		t.Fatalf("NewManager error %T (%v), want *SpillUnavailableError", err, err)
	}
	if !errors.Is(err, ErrSpillUnavailable) {
		t.Fatalf("error does not match ErrSpillUnavailable: %v", err)
	}
	if len(sue.Dirs) != 2 {
		t.Fatalf("SpillUnavailableError.Dirs = %v, want both configured dirs", sue.Dirs)
	}
	if AnyHealthy(spec) {
		t.Fatal("AnyHealthy true for nonexistent dirs after registration")
	}
}

// TestReviveAfterRecovery: an unhealthy directory rejoins the rotation
// once a (backdated, un-throttled) probe passes — and Health alone
// never revives, because it does not probe.
func TestReviveAfterRecovery(t *testing.T) {
	t.Cleanup(ResetHealth)
	dir := t.TempDir()
	markDirUnhealthy(dir, syscall.EIO)

	if h := Health(dir); h[0].Healthy {
		t.Fatal("Health revived a dir without probing")
	}
	// Freshly failed: the throttle suppresses an immediate probe even
	// though the underlying directory would pass one.
	if dirHealthy(dir) {
		t.Fatal("dir revived before the probe throttle elapsed")
	}

	// Backdate the probe clock (same-package access) instead of
	// sleeping out the real throttle.
	healthMu.Lock()
	unhealthy[canonDir(dir)].lastProbe = time.Now().Add(-2 * probeThrottle)
	healthMu.Unlock()

	h := Revive(dir)
	if !h[0].Healthy {
		t.Fatalf("Revive did not restore a healthy dir: %+v", h[0])
	}
	if !AnyHealthy(dir) {
		t.Fatal("AnyHealthy false after revival")
	}
}

// TestReviveStaysDownWhenBroken: a probe against a genuinely broken
// directory keeps it out of the rotation.
func TestReviveStaysDownWhenBroken(t *testing.T) {
	t.Cleanup(ResetHealth)
	dir := filepath.Join(t.TempDir(), "gone")
	markDirUnhealthy(dir, syscall.ENOENT)
	healthMu.Lock()
	unhealthy[canonDir(dir)].lastProbe = time.Now().Add(-2 * probeThrottle)
	healthMu.Unlock()
	if h := Revive(dir); h[0].Healthy {
		t.Fatal("Revive restored a nonexistent dir")
	}
}

// TestInjectedFaultDoesNotPoisonDir: a generic injected write fault
// (no errno) fails the query, not the directory — the registry must
// stay clean so unrelated queries keep their spill tier.
func TestInjectedFaultDoesNotPoisonDir(t *testing.T) {
	defer fault.Reset()
	t.Cleanup(ResetHealth)
	dir := t.TempDir()
	m, err := NewManager(Config{Dir: dir, PageSize: 512, A: arena.New(1 << 20)})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()

	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindError, Count: 1})
	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < 200; i++ {
		if err := w.Append(tupleFor(i, 24), uint32(i)); err != nil {
			break
		}
	}
	err = w.Finish()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v, want injected-fault class", err)
	}
	var dfe *DirFailedError
	if errors.As(err, &dfe) {
		t.Fatalf("generic injected fault classified as directory failure: %v", err)
	}
	if h := Health(dir); !h[0].Healthy {
		t.Fatalf("injected fault poisoned the directory: %+v", h[0])
	}
	if got := m.Stats().Failovers; got != 0 {
		t.Fatalf("Stats().Failovers = %d, want 0", got)
	}
}

// TestConfiguredRetryBudget: Config.IOAttempts/IOBackoff override the
// defaults — with attempts=1 even a transient EINTR is fatal.
func TestConfiguredRetryBudget(t *testing.T) {
	defer fault.Reset()
	t.Cleanup(ResetHealth)
	m, err := NewManager(Config{
		Dir:        t.TempDir(),
		PageSize:   512,
		A:          arena.New(1 << 20),
		IOAttempts: 1,
		IOBackoff:  time.Microsecond,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()

	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindError, Err: syscall.EINTR, Count: 1})
	w, err := m.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < 200; i++ {
		if err := w.Append(tupleFor(i, 24), uint32(i)); err != nil {
			break
		}
	}
	if err := w.Finish(); !errors.Is(err, syscall.EINTR) {
		t.Fatalf("attempts=1 Finish error %v, want the unretried EINTR", err)
	}
	if got := m.Stats().WriteRetries; got != 0 {
		t.Fatalf("WriteRetries = %d, want 0 with a single attempt", got)
	}
}

// TestTransientShortWriteRetried: io.ErrShortWrite now counts as
// transient — a single injected short write is absorbed by the default
// retry budget and the partition still round-trips.
func TestTransientShortWriteRetried(t *testing.T) {
	defer fault.Reset()
	t.Cleanup(ResetHealth)
	m := newTestManager(t, 512)

	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindError, Err: io.ErrShortWrite, Count: 1})
	w := writePartition(t, m, 300, 24)
	if got := m.Stats().WriteRetries; got == 0 {
		t.Fatal("short write was not retried")
	}
	r := w.OpenReader()
	defer r.Close()
	n := 0
	for {
		p, ok, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		n += p.NTuples()
		m.Release(p)
	}
	if n != 300 {
		t.Fatalf("read back %d tuples, want 300", n)
	}
}
