package vmem

import (
	"testing"
	"testing/quick"

	"hashjoin/internal/memsim"
)

func TestPrefetchRangeCoversAllLines(t *testing.T) {
	m := testMem()
	p := m.Alloc(4096, 64)
	lineSize := m.S.Config().LineSize
	const span = 10 * 64
	m.PrefetchRange(p, span)
	st := m.S.Stats()
	want := uint64(span / lineSize)
	if st.PrefetchIssued != want {
		t.Fatalf("PrefetchIssued = %d, want %d", st.PrefetchIssued, want)
	}
	// After the fills complete, reads across the range must not stall.
	m.Compute(m.S.Config().MemLatency * 3)
	before := m.S.Stats()
	m.S.Read(p, span)
	if d := m.S.Stats().Sub(before); d.DCacheStall != 0 {
		t.Fatalf("range read stalled %d cycles after covered prefetch", d.DCacheStall)
	}
}

func TestPrefetchRangeZeroAndNegative(t *testing.T) {
	m := testMem()
	p := m.Alloc(64, 64)
	m.PrefetchRange(p, 0)
	m.PrefetchRange(p, -5)
	if st := m.S.Stats(); st.PrefetchIssued != 0 {
		t.Fatalf("degenerate ranges issued %d prefetches", st.PrefetchIssued)
	}
}

func TestNewSizedIndependentEnvs(t *testing.T) {
	cfg := memsim.SmallConfig()
	m1 := NewSized(1<<20, cfg)
	m2 := NewSized(1<<20, cfg)
	a1 := m1.Alloc(64, 8)
	m1.WriteU64(a1, 42)
	a2 := m2.Alloc(64, 8)
	if m2.A.U64(a2) != 0 {
		t.Fatal("environments share storage")
	}
	if m2.S.Now() == m1.S.Now() && m1.S.Now() == 0 {
		t.Fatal("no time charged for the write")
	}
}

func TestQuickCopyPreservesBytes(t *testing.T) {
	m := NewSized(1<<22, memsim.SmallConfig())
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		src := m.Alloc(uint64(len(data)), 8)
		dst := m.Alloc(uint64(len(data)), 8)
		copy(m.A.Bytes(src, uint64(len(data))), data)
		m.Copy(dst, src, len(data))
		return m.Equal(src, dst, len(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotonic(t *testing.T) {
	m := testMem()
	p := m.Alloc(1<<16, 64)
	last := m.S.Now()
	ops := []func(i int){
		func(i int) { m.ReadU32(p + uint64(i*64)%60000) },
		func(i int) { m.WriteU64(p+uint64(i*128)%60000, uint64(i)) },
		func(i int) { m.Prefetch(p + uint64(i*256)%60000) },
		func(i int) { m.Compute(3) },
	}
	for i := 0; i < 400; i++ {
		ops[i%len(ops)](i)
		if now := m.S.Now(); now < last {
			t.Fatalf("clock moved backwards: %d -> %d", last, now)
		} else {
			last = now
		}
	}
	if got, want := m.S.Stats().Total(), m.S.Now(); got != want {
		t.Fatalf("breakdown (%d) does not account for the clock (%d)", got, want)
	}
}
