package vmem

import (
	"testing"

	"hashjoin/internal/memsim"
)

func testMem() *Mem {
	cfg := memsim.SmallConfig()
	return NewSized(1<<22, cfg)
}

func TestTimedScalarRoundTrip(t *testing.T) {
	m := testMem()
	p := m.Alloc(64, 8)
	m.WriteU32(p, 0xFEEDFACE)
	m.WriteU64(p+8, 0x0123456789ABCDEF)
	m.WriteU16(p+16, 0xBEEF)
	if m.ReadU32(p) != 0xFEEDFACE || m.ReadU64(p+8) != 0x0123456789ABCDEF || m.ReadU16(p+16) != 0xBEEF {
		t.Fatal("round trip failed")
	}
	if m.S.Now() == 0 {
		t.Fatal("accesses charged no simulated time")
	}
}

func TestCopyMovesBytesAndChargesTime(t *testing.T) {
	m := testMem()
	src := m.Alloc(256, 64)
	dst := m.Alloc(256, 64)
	sb := m.A.Bytes(src, 256)
	for i := range sb {
		sb[i] = byte(i)
	}
	before := m.S.Now()
	m.Copy(dst, src, 256)
	if m.S.Now() == before {
		t.Fatal("Copy charged no time")
	}
	db := m.A.Bytes(dst, 256)
	for i := range db {
		if db[i] != byte(i) {
			t.Fatalf("byte %d not copied", i)
		}
	}
}

func TestEqual(t *testing.T) {
	m := testMem()
	a := m.Alloc(16, 8)
	b := m.Alloc(16, 8)
	m.WriteBytes(a, []byte("0123456789abcdef"))
	m.WriteBytes(b, []byte("0123456789abcdef"))
	if !m.Equal(a, b, 16) {
		t.Fatal("identical regions compared unequal")
	}
	m.WriteBytes(b+15, []byte("X"))
	if m.Equal(a, b, 16) {
		t.Fatal("different regions compared equal")
	}
}

func TestPeekChargesNothing(t *testing.T) {
	m := testMem()
	p := m.Alloc(64, 8)
	m.WriteU32(p, 42)
	before := m.S.Now()
	stats := m.S.Stats()
	_ = m.Peek(p, 4)
	if m.S.Now() != before || m.S.Stats() != stats {
		t.Fatal("Peek perturbed the simulation")
	}
}

func TestPrefetchThenReadHidesLatency(t *testing.T) {
	m := testMem()
	p := m.Alloc(4096, 64)
	m.WriteU32(p+1024, 7) // fill happens in background
	target := p + 2048
	m.Prefetch(target)
	m.Compute(m.S.Config().MemLatency * 2)
	before := m.S.Stats()
	m.ReadU32(target)
	d := m.S.Stats().Sub(before)
	if d.DCacheStall != 0 {
		t.Fatalf("covered prefetch still stalled %d cycles", d.DCacheStall)
	}
}

func TestWriteBytesThenReadBytes(t *testing.T) {
	m := testMem()
	p := m.Alloc(100, 8)
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(200 - i)
	}
	m.WriteBytes(p, payload)
	got := m.ReadBytes(p, 100)
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}
