// Package vmem pairs a simulated address space (package arena) with a
// memory-hierarchy simulator (package memsim), giving algorithms typed
// loads and stores that both move real bytes and charge simulated
// cycles. This is the "virtual machine" the join algorithms run on: each
// ReadU32 is one demand load, each Prefetch one prefetch instruction.
package vmem

import (
	"bytes"

	"hashjoin/internal/arena"
	"hashjoin/internal/memsim"
)

// Mem is a timed view over an arena. Create with New.
type Mem struct {
	A *arena.Arena
	S *memsim.Sim
}

// New builds a Mem over the given arena and simulator.
func New(a *arena.Arena, s *memsim.Sim) *Mem { return &Mem{A: a, S: s} }

// NewSized allocates a fresh arena of capacity bytes and a simulator for
// cfg, returning the combined view.
func NewSized(capacity uint64, cfg memsim.Config) *Mem {
	return &Mem{A: arena.New(capacity), S: memsim.NewSim(cfg)}
}

// Alloc reserves size bytes with the given alignment.
func (m *Mem) Alloc(size, align uint64) arena.Addr { return m.A.Alloc(size, align) }

// Compute advances the simulated clock by busy cycles.
func (m *Mem) Compute(cycles uint64) { m.S.Compute(cycles) }

// Prefetch issues a prefetch for the line containing addr.
func (m *Mem) Prefetch(addr arena.Addr) { m.S.Prefetch(addr) }

// PrefetchRange prefetches all lines covering [addr, addr+size).
func (m *Mem) PrefetchRange(addr arena.Addr, size int) { m.S.PrefetchRange(addr, size) }

// ReadU16 performs a timed 2-byte load.
func (m *Mem) ReadU16(addr arena.Addr) uint16 {
	m.S.Read(addr, 2)
	return m.A.U16(addr)
}

// WriteU16 performs a timed 2-byte store.
func (m *Mem) WriteU16(addr arena.Addr, v uint16) {
	m.S.Write(addr, 2)
	m.A.PutU16(addr, v)
}

// ReadU32 performs a timed 4-byte load.
func (m *Mem) ReadU32(addr arena.Addr) uint32 {
	m.S.Read(addr, 4)
	return m.A.U32(addr)
}

// WriteU32 performs a timed 4-byte store.
func (m *Mem) WriteU32(addr arena.Addr, v uint32) {
	m.S.Write(addr, 4)
	m.A.PutU32(addr, v)
}

// ReadU64 performs a timed 8-byte load.
func (m *Mem) ReadU64(addr arena.Addr) uint64 {
	m.S.Read(addr, 8)
	return m.A.U64(addr)
}

// WriteU64 performs a timed 8-byte store.
func (m *Mem) WriteU64(addr arena.Addr, v uint64) {
	m.S.Write(addr, 8)
	m.A.PutU64(addr, v)
}

// ReadBytes performs a timed load of size bytes and returns a slice
// aliasing arena storage. Callers must not retain it across writes.
func (m *Mem) ReadBytes(addr arena.Addr, size int) []byte {
	m.S.Read(addr, size)
	return m.A.Bytes(addr, uint64(size))
}

// WriteBytes performs a timed store of src at addr.
func (m *Mem) WriteBytes(addr arena.Addr, src []byte) {
	m.S.Write(addr, len(src))
	copy(m.A.Bytes(addr, uint64(len(src))), src)
}

// Copy performs a timed memory-to-memory copy of n bytes, charging a load
// of the source and a store of the destination plus per-word move work.
func (m *Mem) Copy(dst, src arena.Addr, n int) {
	m.S.Read(src, n)
	m.S.Write(dst, n)
	m.S.Compute(uint64(n+7) / 8) // one cycle per 8-byte move
	copy(m.A.Bytes(dst, uint64(n)), m.A.Bytes(src, uint64(n)))
}

// Equal performs a timed comparison of n bytes at two addresses.
func (m *Mem) Equal(a, b arena.Addr, n int) bool {
	m.S.Read(a, n)
	m.S.Read(b, n)
	m.S.Compute(uint64(n+7) / 8)
	return bytes.Equal(m.A.Bytes(a, uint64(n)), m.A.Bytes(b, uint64(n)))
}

// Peek reads bytes without charging simulated time. It is intended for
// assertions, result validation, and test harnesses — never for the
// algorithm under measurement.
func (m *Mem) Peek(addr arena.Addr, size int) []byte {
	return m.A.Bytes(addr, uint64(size))
}
