package ops

import (
	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/vmem"
)

// HashJoin is the pipelined, group-prefetched hash join operator. Open
// materializes the build child and constructs the hash table (the
// pipeline-breaking half); Next then pulls probe tuples in batches of G,
// runs one group-prefetched probe pass per batch, and yields the
// concatenated output tuples — pausing at group boundaries exactly as
// section 5.4 describes.
type HashJoin struct {
	m          *vmem.Mem
	buildChild Operator
	probeChild Operator
	buildWidth int
	probeWidth int
	params     core.Params

	prober *core.Prober

	// output ring: concatenated build||probe tuples handed to the parent
	out     []arena.Addr
	pending []Tuple
	next    int
	done    bool

	batch []core.ProbeTuple
}

// NewHashJoin builds a join operator over fixed-width children.
func NewHashJoin(m *vmem.Mem, build, probe Operator, buildWidth, probeWidth int, params core.Params) *HashJoin {
	return &HashJoin{
		m:          m,
		buildChild: build,
		probeChild: probe,
		buildWidth: buildWidth,
		probeWidth: probeWidth,
		params:     params,
	}
}

// Open materializes the build side and builds the table.
func (h *HashJoin) Open() {
	buildRel := Materialize(h.m, h.buildChild, h.buildWidth, 8<<10)
	h.prober = core.NewProber(h.m, buildRel, h.params)
	h.probeChild.Open()
	h.batch = make([]core.ProbeTuple, 0, h.prober.BatchSize())

	// Output slots: one batch can yield several matches per probe; the
	// ring grows on demand in fillBatch.
	h.out = make([]arena.Addr, 0, h.prober.BatchSize()*2)
	h.pending = h.pending[:0]
	h.next = 0
	h.done = false
}

// Next yields the next output tuple, refilling by probing one batch at
// a time.
func (h *HashJoin) Next() (Tuple, bool) {
	for h.next >= len(h.pending) {
		if h.done {
			return Tuple{}, false
		}
		h.fillBatch()
	}
	t := h.pending[h.next]
	h.next++
	return t, true
}

// fillBatch pulls up to G probe tuples and runs one staged probe pass.
func (h *HashJoin) fillBatch() {
	h.pending = h.pending[:0]
	h.next = 0
	h.batch = h.batch[:0]
	for len(h.batch) < h.prober.BatchSize() {
		t, ok := h.probeChild.Next()
		if !ok {
			h.done = true
			break
		}
		h.batch = append(h.batch, core.ProbeTuple{Addr: t.Addr, Len: t.Len, Code: t.Code})
	}
	if len(h.batch) == 0 {
		return
	}
	outWidth := h.buildWidth + h.probeWidth
	slot := 0
	h.prober.ProbeBatch(h.batch, func(build arena.Addr, buildLen int, probe core.ProbeTuple) {
		if slot >= len(h.out) {
			h.out = append(h.out, h.m.Alloc(uint64(outWidth), 8))
		}
		dst := h.out[slot]
		slot++
		h.m.Copy(dst, build, buildLen)
		h.m.Copy(dst+arena.Addr(buildLen), probe.Addr, probe.Len)
		h.pending = append(h.pending, Tuple{Addr: dst, Len: outWidth, Code: probe.Code})
	})
}

// Close implements Operator.
func (h *HashJoin) Close() { h.probeChild.Close() }

// HashAggregate is the group-by operator: a pipeline breaker that drains
// its child, aggregates with the requested scheme, and yields one
// 24-byte tuple per group (u32 key, u64 count, u64 sum at offsets 0, 8,
// 16).
type HashAggregate struct {
	m              *vmem.Mem
	child          Operator
	childWidth     int
	valueOff       int
	expectedGroups int
	scheme         core.Scheme
	params         core.Params

	groups []Tuple
	next   int
}

// AggTupleWidth is the width of HashAggregate's output tuples.
const AggTupleWidth = 24

// NewHashAggregate constructs the operator; valueOff is the byte offset
// of the summed 4-byte value within the child's tuples.
func NewHashAggregate(m *vmem.Mem, child Operator, childWidth, valueOff, expectedGroups int, scheme core.Scheme, params core.Params) *HashAggregate {
	return &HashAggregate{
		m: m, child: child, childWidth: childWidth, valueOff: valueOff,
		expectedGroups: expectedGroups, scheme: scheme, params: params,
	}
}

// Open drains and aggregates.
func (ha *HashAggregate) Open() {
	rel := Materialize(ha.m, ha.child, ha.childWidth, 8<<10)
	res := core.AggregateAt(ha.m, rel, ha.expectedGroups, ha.valueOff, ha.scheme, ha.params)
	ha.groups = ha.groups[:0]
	res.Each(func(key uint32, count, sum uint64) {
		addr := ha.m.Alloc(AggTupleWidth, 8)
		ha.m.S.Write(addr, AggTupleWidth)
		ha.m.A.PutU32(addr, key)
		ha.m.A.PutU64(addr+8, count)
		ha.m.A.PutU64(addr+16, sum)
		ha.groups = append(ha.groups, Tuple{Addr: addr, Len: AggTupleWidth})
	})
	ha.next = 0
}

// Next implements Operator.
func (ha *HashAggregate) Next() (Tuple, bool) {
	if ha.next >= len(ha.groups) {
		return Tuple{}, false
	}
	t := ha.groups[ha.next]
	ha.next++
	return t, true
}

// Close implements Operator.
func (ha *HashAggregate) Close() {}

// Collect drains op, returning all tuples (addresses remain valid only
// for materialized operators; use for sinks and tests).
func Collect(op Operator) []Tuple {
	op.Open()
	defer op.Close()
	var out []Tuple
	for {
		t, ok := op.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// Count drains op and returns the tuple count.
func Count(op Operator) int {
	op.Open()
	defer op.Close()
	n := 0
	for {
		if _, ok := op.Next(); !ok {
			return n
		}
		n++
	}
}
