package ops

import (
	"encoding/binary"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/hash"
	"hashjoin/internal/memsim"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// env builds a fresh simulated memory for operator tests.
func env() *vmem.Mem {
	return vmem.New(arena.New(64<<20), memsim.NewSim(memsim.SmallConfig()))
}

// makeRel fills a relation with sequential keys 1..n and a payload byte
// pattern.
func makeRel(m *vmem.Mem, n, width int) *storage.Relation {
	rel := storage.NewRelation(m.A, storage.KeyPayloadSchema(width), 2048)
	tup := make([]byte, width)
	for i := 1; i <= n; i++ {
		binary.LittleEndian.PutUint32(tup, uint32(i))
		if width > 4 {
			tup[4] = byte(i % 7)
		}
		rel.Append(tup, hash.CodeU32(uint32(i)))
	}
	return rel
}

func TestScanYieldsAllTuples(t *testing.T) {
	m := env()
	rel := makeRel(m, 100, 24)
	got := Collect(NewScan(m, rel))
	if len(got) != 100 {
		t.Fatalf("scan yielded %d tuples, want 100", len(got))
	}
	for i, tp := range got {
		if k := m.A.U32(tp.Addr); k != uint32(i+1) {
			t.Fatalf("tuple %d key %d", i, k)
		}
		if tp.Code != hash.CodeU32(uint32(i+1)) {
			t.Fatalf("tuple %d carries wrong memoized code", i)
		}
	}
}

func TestScanChargesTime(t *testing.T) {
	m := env()
	rel := makeRel(m, 200, 24)
	before := m.S.Now()
	Count(NewScan(m, rel))
	if m.S.Now() == before {
		t.Fatal("scan charged no simulated time")
	}
}

func TestFilterKeyBetween(t *testing.T) {
	m := env()
	rel := makeRel(m, 100, 24)
	n := Count(NewFilter(m, NewScan(m, rel), KeyBetween(10, 29)))
	if n != 20 {
		t.Fatalf("filter passed %d tuples, want 20", n)
	}
}

func TestFilterPayloadByte(t *testing.T) {
	m := env()
	rel := makeRel(m, 70, 24)
	n := Count(NewFilter(m, NewScan(m, rel), PayloadByteEquals(4, 3)))
	if n != 10 { // i%7==3 for 10 of 1..70
		t.Fatalf("filter passed %d tuples, want 10", n)
	}
}

func TestProjectNarrowsTuples(t *testing.T) {
	m := env()
	rel := makeRel(m, 50, 32)
	p := NewProject(m, NewScan(m, rel), 8, 4)
	p.Open()
	for i := 1; ; i++ {
		tp, ok := p.Next()
		if !ok {
			break
		}
		if tp.Len != 8 {
			t.Fatalf("projected tuple %d bytes", tp.Len)
		}
		if m.A.U32(tp.Addr) != uint32(i) {
			t.Fatalf("projection corrupted key at %d", i)
		}
	}
	p.Close()
}

func TestMaterializeRoundTrip(t *testing.T) {
	m := env()
	rel := makeRel(m, 120, 24)
	copyRel := Materialize(m, NewScan(m, rel), 24, 1024)
	if copyRel.NTuples != 120 {
		t.Fatalf("materialized %d tuples", copyRel.NTuples)
	}
	keys := copyRel.Keys()
	for i, k := range keys {
		if k != uint32(i+1) {
			t.Fatalf("materialized key %d = %d", i, k)
		}
	}
}

func TestHashJoinOperator(t *testing.T) {
	m := env()
	build := makeRel(m, 300, 24)
	probe := makeRel(m, 600, 16) // keys 1..600; 1..300 match
	j := NewHashJoin(m, NewScan(m, build), NewScan(m, probe), 24, 16, core.DefaultParams())
	out := Collect(j)
	if len(out) != 300 {
		t.Fatalf("join yielded %d tuples, want 300", len(out))
	}
}

func TestHashJoinOutputContents(t *testing.T) {
	m := env()
	build := makeRel(m, 40, 24)
	probe := makeRel(m, 40, 16)
	j := NewHashJoin(m, NewScan(m, build), NewScan(m, probe), 24, 16, core.Params{G: 8})
	j.Open()
	seen := map[uint32]bool{}
	for {
		tp, ok := j.Next()
		if !ok {
			break
		}
		if tp.Len != 40 {
			t.Fatalf("output width %d, want 40", tp.Len)
		}
		bk := m.A.U32(tp.Addr)
		pk := m.A.U32(tp.Addr + 24)
		if bk != pk {
			t.Fatalf("output joins keys %d and %d", bk, pk)
		}
		seen[bk] = true
	}
	j.Close()
	if len(seen) != 40 {
		t.Fatalf("join produced %d distinct keys, want 40", len(seen))
	}
}

func TestHashJoinBatchesRespectGroupSize(t *testing.T) {
	m := env()
	build := makeRel(m, 10, 16)
	probe := makeRel(m, 100, 16)
	j := NewHashJoin(m, NewScan(m, build), NewScan(m, probe), 16, 16, core.Params{G: 3})
	if got := Count(j); got != 10 {
		t.Fatalf("join with tiny G yielded %d, want 10", got)
	}
}

func TestHashAggregateOperator(t *testing.T) {
	m := env()
	rel := storage.NewRelation(m.A, storage.KeyPayloadSchema(16), 2048)
	tup := make([]byte, 16)
	for i := 0; i < 500; i++ {
		key := uint32(i%50 + 1)
		binary.LittleEndian.PutUint32(tup, key)
		binary.LittleEndian.PutUint32(tup[4:], 2) // value
		rel.Append(tup, hash.CodeU32(key))
	}
	agg := NewHashAggregate(m, NewScan(m, rel), 16, 4, 50, core.SchemeGroup, core.DefaultParams())
	groups := Collect(agg)
	if len(groups) != 50 {
		t.Fatalf("aggregate yielded %d groups, want 50", len(groups))
	}
	for _, g := range groups {
		count := m.A.U64(g.Addr + 8)
		sum := m.A.U64(g.Addr + 16)
		if count != 10 || sum != 20 {
			t.Fatalf("group %d: count=%d sum=%d, want 10/20", m.A.U32(g.Addr), count, sum)
		}
	}
}

// TestPipelineQuery wires a full pipeline: scan -> filter -> join ->
// aggregate, validating the composed result.
func TestPipelineQuery(t *testing.T) {
	m := env()
	build := makeRel(m, 200, 24)
	probe := makeRel(m, 400, 16)
	// keys 1..100 from the build side join probe keys 1..100 (among 400).
	filtered := NewFilter(m, NewScan(m, build), KeyBetween(1, 100))
	join := NewHashJoin(m, filtered, NewScan(m, probe), 24, 16, core.DefaultParams())
	agg := NewHashAggregate(m, join, 40, 4, 100, core.SchemeGroup, core.DefaultParams())
	groups := Collect(agg)
	if len(groups) != 100 {
		t.Fatalf("pipeline produced %d groups, want 100", len(groups))
	}
}

// TestPipelinedJoinMatchesMonolithic cross-checks the operator join
// against core.JoinPair on the same data.
func TestPipelinedJoinMatchesMonolithic(t *testing.T) {
	m1 := env()
	b1 := makeRel(m1, 500, 24)
	p1 := makeRel(m1, 1000, 24)
	opCount := Count(NewHashJoin(m1, NewScan(m1, b1), NewScan(m1, p1), 24, 24, core.DefaultParams()))

	m2 := env()
	b2 := makeRel(m2, 500, 24)
	p2 := makeRel(m2, 1000, 24)
	mono := core.JoinPair(m2, b2, p2, core.SchemeGroup, core.DefaultParams(), 1, false)

	if opCount != mono.NOutput {
		t.Fatalf("operator join found %d matches, monolithic %d", opCount, mono.NOutput)
	}
}
