// Package ops is a small pull-based query-operator layer over the
// simulated memory, demonstrating the paper's section 5.4 point that
// group prefetching's natural group boundaries make the prefetched join
// pipeline-friendly: the HashJoin operator probes in batches of G and
// hands matches to its parent at each boundary, instead of draining the
// whole probe relation.
//
// Operators pull fixed-width tuples (4-byte key first) from their
// children; every data access is timed against the shared vmem.Mem.
package ops

import (
	"fmt"

	"hashjoin/internal/arena"
	"hashjoin/internal/core"
	"hashjoin/internal/hash"
	"hashjoin/internal/storage"
	"hashjoin/internal/vmem"
)

// Tuple is one row flowing through a pipeline: its simulated address,
// width, and the memoized hash code of its join key.
type Tuple struct {
	Addr arena.Addr
	Len  int
	Code uint32
}

// Operator is a pull-based tuple iterator. Open prepares state (and may
// do pipeline-breaking work, like building a hash table); Next returns
// the next tuple until ok is false.
type Operator interface {
	Open()
	Next() (Tuple, bool)
	Close()
}

// Scan reads a relation in storage order.
type Scan struct {
	m   *vmem.Mem
	rel *storage.Relation

	pageIdx int
	slotIdx int
	nslots  int
	page    arena.Addr
}

// NewScan creates a relation scan; all page and slot reads are timed.
func NewScan(m *vmem.Mem, rel *storage.Relation) *Scan {
	return &Scan{m: m, rel: rel, pageIdx: -1}
}

// Open implements Operator.
func (s *Scan) Open() { s.pageIdx = -1; s.slotIdx = 0; s.nslots = 0 }

// Next implements Operator.
func (s *Scan) Next() (Tuple, bool) {
	for s.pageIdx < 0 || s.slotIdx >= s.nslots {
		s.pageIdx++
		if s.pageIdx >= s.rel.NPages() {
			return Tuple{}, false
		}
		s.page = s.rel.Pages[s.pageIdx]
		s.m.PrefetchRange(s.page, s.rel.PageSize)
		s.nslots = int(s.m.ReadU16(storage.NSlotsAddr(s.page)))
		s.slotIdx = 0
	}
	slot := storage.SlotAddr(s.page, s.rel.PageSize, s.slotIdx)
	s.slotIdx++
	s.m.S.Read(slot, storage.SlotSize)
	off := s.m.A.U16(slot + storage.SlotOffOffset)
	length := s.m.A.U16(slot + storage.SlotOffLength)
	code := s.m.A.U32(slot + storage.SlotOffHash)
	return Tuple{Addr: s.page + arena.Addr(off), Len: int(length), Code: code}, true
}

// Close implements Operator.
func (s *Scan) Close() {}

// Filter passes through tuples satisfying a predicate.
type Filter struct {
	m     *vmem.Mem
	child Operator
	pred  Predicate
}

// Predicate tests a tuple; implementations must perform their own timed
// reads of whatever bytes they inspect.
type Predicate func(m *vmem.Mem, t Tuple) bool

// KeyBetween returns a predicate selecting lo <= key <= hi.
func KeyBetween(lo, hi uint32) Predicate {
	return func(m *vmem.Mem, t Tuple) bool {
		k := m.ReadU32(t.Addr)
		m.Compute(core.CostCompare)
		return k >= lo && k <= hi
	}
}

// PayloadByteEquals returns a predicate testing one payload byte.
func PayloadByteEquals(offset int, want byte) Predicate {
	return func(m *vmem.Mem, t Tuple) bool {
		if offset >= t.Len {
			return false
		}
		b := m.ReadBytes(t.Addr+arena.Addr(offset), 1)
		m.Compute(core.CostCompare)
		return b[0] == want
	}
}

// NewFilter wraps child with a predicate.
func NewFilter(m *vmem.Mem, child Operator, pred Predicate) *Filter {
	return &Filter{m: m, child: child, pred: pred}
}

// Open implements Operator.
func (f *Filter) Open() { f.child.Open() }

// Next implements Operator.
func (f *Filter) Next() (Tuple, bool) {
	for {
		t, ok := f.child.Next()
		if !ok {
			return Tuple{}, false
		}
		if f.pred(f.m, t) {
			return t, true
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() { f.child.Close() }

// Project materializes a prefix of each tuple (the projected columns)
// into a ring of scratch slots. Slots recycle after ring-size calls, so
// parents must consume a tuple within that window; when a Project feeds
// a HashJoin's probe side, size the ring above the join's group size G
// (the join holds a batch of child tuples across one probe pass).
type Project struct {
	m     *vmem.Mem
	child Operator
	width int

	ring []arena.Addr
	next int
}

// NewProject projects tuples down to width bytes using a ring of slots.
func NewProject(m *vmem.Mem, child Operator, width, ring int) *Project {
	if width < 4 {
		panic("ops: projection must keep at least the 4-byte key")
	}
	if ring < 2 {
		ring = 2
	}
	p := &Project{m: m, child: child, width: width, ring: make([]arena.Addr, ring)}
	for i := range p.ring {
		p.ring[i] = m.Alloc(uint64(width), 8)
	}
	return p
}

// Open implements Operator.
func (p *Project) Open() { p.child.Open(); p.next = 0 }

// Next implements Operator.
func (p *Project) Next() (Tuple, bool) {
	t, ok := p.child.Next()
	if !ok {
		return Tuple{}, false
	}
	dst := p.ring[p.next]
	p.next = (p.next + 1) % len(p.ring)
	n := p.width
	if t.Len < n {
		n = t.Len
	}
	p.m.Copy(dst, t.Addr, n)
	return Tuple{Addr: dst, Len: p.width, Code: t.Code}, true
}

// Close implements Operator.
func (p *Project) Close() { p.child.Close() }

// Materialize drains an operator into a fresh relation of fixed width
// (timed copies), the pipeline-breaking step used by build sides and
// aggregations.
func Materialize(m *vmem.Mem, op Operator, width, pageSize int) *storage.Relation {
	rel := storage.NewRelation(m.A, storage.KeyPayloadSchema(width), pageSize)
	op.Open()
	defer op.Close()
	buf := make([]byte, width)
	for {
		t, ok := op.Next()
		if !ok {
			return rel
		}
		if t.Len != width {
			panic(fmt.Sprintf("ops: materializing %d-byte tuple into %d-byte relation", t.Len, width))
		}
		src := m.ReadBytes(t.Addr, width)
		copy(buf, src)
		code := t.Code
		if code == 0 {
			code = hash.Code(buf[:4])
		}
		rel.Append(buf, code)
		// Charge the store at the tuple's landing spot (plus its slot).
		last := rel.Page(rel.NPages() - 1)
		addr, n := last.TupleAddr(last.NSlots() - 1)
		m.S.Write(addr, n)
		m.S.Write(storage.SlotAddr(last.Addr, last.Size, last.NSlots()-1), storage.SlotSize)
	}
}
