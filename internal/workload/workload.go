// Package workload generates the synthetic relations of the paper's
// evaluation (section 7.1): build and probe relations sharing a schema
// of a 4-byte join key plus a fixed-length payload, with controllable
// tuple size, matches per build tuple, percentage of matched tuples, and
// key skew. Keys are generated deterministically from a seed so every
// experiment is reproducible.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
	"hashjoin/internal/plan"
	"hashjoin/internal/storage"
)

// Spec describes a join workload. The paper's pivot configuration is
// 100-byte tuples with every build tuple matching two probe tuples.
type Spec struct {
	NBuild    int // number of build tuples
	NProbe    int // number of probe tuples; 0 derives MatchesPerBuild*NBuild
	TupleSize int // bytes per tuple (both relations), >= 8

	// MatchesPerBuild is the number of probe tuples matching each
	// *matched* build tuple (Figure 10b varies this 1..4).
	MatchesPerBuild int

	// PctMatched is the percentage (0..100) of build tuples that have
	// matches (Figure 10c varies this 50..100). Probe tuples beyond the
	// matched ones get keys that match nothing.
	PctMatched int

	// MatchRate, when > 0, fixes the fraction of *probe* tuples that
	// have at least one build match — the probe-side selectivity knob
	// the strategy planner and the semi/anti/outer parity tests sweep.
	// Exactly round(MatchRate*NProbe) probe tuples get keys cycled over
	// the matched build keys; the rest get guaranteed-miss keys.
	// Overrides the MatchesPerBuild-driven probe composition (PctMatched
	// still controls which build tuples are matchable); ignored in Zipf
	// mode, where selectivity follows the rank distribution.
	MatchRate float64

	// Skew, when > 1, repeats some build keys so bucket chains grow,
	// stressing the read-write conflict handling. 1 (or 0) means unique
	// build keys as in the paper's main experiments.
	Skew int

	// ZipfS, when > 0, switches the build relation to Zipf-distributed
	// keys: ranks over a universe of ZipfKeys distinct keys are drawn
	// with probability proportional to 1/rank^ZipfS, so partition
	// footprints follow the hot ranks — the boundary workload for
	// hybrid-join victim selection. Unlike math/rand's Zipf (which
	// requires s > 1), inverse-CDF sampling over the precomputed rank
	// weights supports the whole s > 0 range the skew literature sweeps
	// (0.5 .. 1.5). Probe keys are drawn uniformly over the same
	// universe, keeping the output cardinality linear instead of
	// squaring the hot-rank mass; a rank the build side never drew is a
	// natural miss. MatchesPerBuild, PctMatched, and Skew are ignored in
	// Zipf mode; NProbe defaults to 2*NBuild.
	ZipfS float64
	// ZipfKeys is the distinct-key universe for ZipfS; 0 defaults 256.
	ZipfKeys int

	PageSize int // slotted page size; 0 defaults to 8 KB

	Seed int64
}

// Pivot returns the paper's pivot workload scaled to nBuild build tuples:
// 100-byte tuples, 2 matches per build tuple, 100% matched.
func Pivot(nBuild int, seed int64) Spec {
	return Spec{
		NBuild:          nBuild,
		TupleSize:       100,
		MatchesPerBuild: 2,
		PctMatched:      100,
		Seed:            seed,
	}
}

// normalize fills defaults and validates.
func (s Spec) normalize() Spec {
	if s.PageSize == 0 {
		s.PageSize = 8 << 10
	}
	if s.MatchesPerBuild <= 0 {
		s.MatchesPerBuild = 1
	}
	if s.PctMatched <= 0 {
		s.PctMatched = 100
	}
	if s.PctMatched > 100 {
		s.PctMatched = 100
	}
	if s.Skew < 1 {
		s.Skew = 1
	}
	if s.MatchRate < 0 {
		s.MatchRate = 0
	}
	if s.MatchRate > 1 {
		s.MatchRate = 1
	}
	if s.ZipfS > 0 && s.ZipfKeys <= 0 {
		s.ZipfKeys = 256
	}
	if s.NProbe == 0 {
		if s.ZipfS > 0 {
			s.NProbe = 2 * s.NBuild
		} else {
			s.NProbe = s.NBuild * s.MatchesPerBuild
		}
	}
	if s.TupleSize < 8 {
		panic(fmt.Sprintf("workload: tuple size %d too small", s.TupleSize))
	}
	return s
}

// Pair is a generated build/probe relation pair plus ground truth about
// the expected join result.
type Pair struct {
	Spec  Spec
	Build *storage.Relation
	Probe *storage.Relation

	// ExpectedMatches is the exact number of output tuples an equijoin
	// must produce.
	ExpectedMatches int

	// KeySum is the sum (mod 2^64) over all expected output tuples of
	// the build key, a cheap order-independent result checksum.
	KeySum uint64

	// Per-join-type ground truth, all exact (see Expected):
	// ProbeMatched counts probe tuples with at least one build match;
	// MatchedProbeKeySum and UnmatchedProbeKeySum split the probe-side
	// key sum by that predicate. UnmatchedBuildRows counts build tuples
	// no probe tuple matches, with their key sum in
	// UnmatchedBuildKeySum.
	ProbeMatched         int
	MatchedProbeKeySum   uint64
	UnmatchedProbeKeySum uint64
	UnmatchedBuildRows   int
	UnmatchedBuildKeySum uint64
}

// Expected returns the exact output cardinality and key checksum of the
// pair under join type jt, following the kernels' checksum convention:
// inner/outer outputs sum the build key (0 for a null-padded build
// side, the real key for a null-padded probe side), semi/anti outputs
// sum the probe key — equal to the build key on a match by definition
// of the equi-join.
func (p *Pair) Expected(jt plan.JoinType) (n int, keySum uint64) {
	switch jt {
	case plan.LeftOuter:
		return p.ExpectedMatches + p.Spec.NProbe - p.ProbeMatched, p.KeySum
	case plan.RightOuter:
		return p.ExpectedMatches + p.UnmatchedBuildRows, p.KeySum + p.UnmatchedBuildKeySum
	case plan.LeftSemi:
		return p.ProbeMatched, p.MatchedProbeKeySum
	case plan.LeftAnti:
		return p.Spec.NProbe - p.ProbeMatched, p.UnmatchedProbeKeySum
	}
	return p.ExpectedMatches, p.KeySum
}

// buildKey derives the i-th build key: a bijection of i over 31 bits,
// shifted to even so probe-only keys (odd) never collide with it.
func buildKey(i uint32) uint32 { return (i * 2654435761) << 1 }

// missKey derives a key guaranteed to match no build tuple.
func missKey(i uint32) uint32 { return (i*2654435761)<<1 | 1 }

// Generate materializes the relations into a. The arena must be large
// enough for both relations (roughly (NBuild+NProbe) * (TupleSize +
// slot) * 1.1 bytes).
func Generate(a *arena.Arena, spec Spec) *Pair {
	spec = spec.normalize()
	rng := rand.New(rand.NewSource(spec.Seed))
	schema := storage.KeyPayloadSchema(spec.TupleSize)

	if spec.ZipfS > 0 {
		return generateZipf(a, spec, rng, schema)
	}

	nMatched := spec.NBuild * spec.PctMatched / 100

	// Build relation: keys are a deterministic bijection of the index,
	// possibly with skew (repeated keys). Appended in shuffled order so
	// hash-table insertion order is not correlated with key value.
	build := storage.NewRelation(a, schema, spec.PageSize)
	order := rng.Perm(spec.NBuild)
	tup := make([]byte, spec.TupleSize)
	for _, idx := range order {
		k := buildKey(uint32(idx / spec.Skew))
		fillTuple(tup, k, uint32(idx))
		build.Append(tup, hash.CodeU32(k))
	}

	// Probe relation: the first nMatched build indexes receive
	// MatchesPerBuild probe tuples each; the rest of the probe relation
	// gets guaranteed-miss keys. Shuffled for the same reason.
	probe := storage.NewRelation(a, schema, spec.PageSize)
	probeKeys := make([]uint32, 0, spec.NProbe)
	if spec.MatchRate > 0 {
		// Probe-side selectivity mode: exactly round(MatchRate*NProbe)
		// hits, cycled over the matched build keys so the hit mass
		// spreads evenly instead of saturating the first build tuples.
		nHit := int(math.Round(spec.MatchRate * float64(spec.NProbe)))
		if nMatched == 0 {
			nHit = 0
		}
		for i := 0; i < nHit; i++ {
			probeKeys = append(probeKeys, buildKey(uint32((i%nMatched)/spec.Skew)))
		}
	} else {
		for i := 0; i < nMatched; i++ {
			for j := 0; j < spec.MatchesPerBuild && len(probeKeys) < spec.NProbe; j++ {
				probeKeys = append(probeKeys, buildKey(uint32(i/spec.Skew)))
			}
		}
	}
	for i := 0; len(probeKeys) < spec.NProbe; i++ {
		probeKeys = append(probeKeys, missKey(uint32(i)))
	}
	rng.Shuffle(len(probeKeys), func(i, j int) {
		probeKeys[i], probeKeys[j] = probeKeys[j], probeKeys[i]
	})
	for i, k := range probeKeys {
		fillTuple(tup, k, uint32(i)|0x80000000)
		probe.Append(tup, hash.CodeU32(k))
	}

	// Ground truth. With skew, several build tuples share a key, so each
	// matching probe tuple joins with all of them.
	p := &Pair{Spec: spec, Build: build, Probe: probe}
	buildCount := make(map[uint32]int, spec.NBuild)
	for i := 0; i < spec.NBuild; i++ {
		buildCount[buildKey(uint32(i/spec.Skew))]++
	}
	p.account(buildCount, probeKeys)
	return p
}

// account fills in the inner ground truth and the per-join-type
// counters from the build-key histogram and the probe key list.
func (p *Pair) account(buildCount map[uint32]int, probeKeys []uint32) {
	probeSeen := make(map[uint32]bool, len(probeKeys))
	for _, k := range probeKeys {
		if c := buildCount[k]; c > 0 {
			p.ExpectedMatches += c
			p.KeySum += uint64(k) * uint64(c)
			p.ProbeMatched++
			p.MatchedProbeKeySum += uint64(k)
			probeSeen[k] = true
		} else {
			p.UnmatchedProbeKeySum += uint64(k)
		}
	}
	for k, c := range buildCount {
		if !probeSeen[k] {
			p.UnmatchedBuildRows += c
			p.UnmatchedBuildKeySum += uint64(k) * uint64(c)
		}
	}
}

// zipfSampler draws key ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s by inverse-CDF lookup over the precomputed cumulative
// weights. math/rand's Zipf only supports s > 1; the binary search
// costs O(log n) per draw and handles any s > 0.
type zipfSampler struct {
	cum []float64 // cum[r] = sum of weights of ranks 0..r
}

func newZipfSampler(n int, s float64) *zipfSampler {
	z := &zipfSampler{cum: make([]float64, n)}
	total := 0.0
	for r := 0; r < n; r++ {
		total += math.Pow(float64(r+1), -s)
		z.cum[r] = total
	}
	return z
}

func (z *zipfSampler) rank(rng *rand.Rand) int {
	u := rng.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// generateZipf materializes a Zipf-skewed pair: the build side draws
// key ranks from the 1/rank^s distribution over ZipfKeys distinct keys,
// the probe side uniformly over the same universe. Ground truth is
// exact via the build-side key histogram, as in the uniform generator.
func generateZipf(a *arena.Arena, spec Spec, rng *rand.Rand, schema *storage.Schema) *Pair {
	z := newZipfSampler(spec.ZipfKeys, spec.ZipfS)

	build := storage.NewRelation(a, schema, spec.PageSize)
	buildCount := make(map[uint32]int, spec.ZipfKeys)
	tup := make([]byte, spec.TupleSize)
	for i := 0; i < spec.NBuild; i++ {
		k := buildKey(uint32(z.rank(rng)))
		buildCount[k]++
		fillTuple(tup, k, uint32(i))
		build.Append(tup, hash.CodeU32(k))
	}

	probe := storage.NewRelation(a, schema, spec.PageSize)
	p := &Pair{Spec: spec, Build: build, Probe: probe}
	probeKeys := make([]uint32, 0, spec.NProbe)
	for i := 0; i < spec.NProbe; i++ {
		k := buildKey(uint32(rng.Intn(spec.ZipfKeys)))
		fillTuple(tup, k, uint32(i)|0x80000000)
		probe.Append(tup, hash.CodeU32(k))
		probeKeys = append(probeKeys, k)
	}
	p.account(buildCount, probeKeys)
	return p
}

// fillTuple encodes key at offset 0 and a payload derived from (key,
// salt) after it, so payload corruption is detectable.
func fillTuple(dst []byte, key, salt uint32) {
	binary.LittleEndian.PutUint32(dst, key)
	v := key ^ salt ^ 0x9E3779B9
	for i := 4; i < len(dst); i++ {
		dst[i] = byte(v >> (8 * (uint(i) % 4)))
	}
}

// ArenaBytesFor estimates the arena capacity needed to hold the
// workload's relations plus hash table, partitions, and output, with
// slack for page and allocator overhead.
func ArenaBytesFor(spec Spec) uint64 {
	spec = spec.normalize()
	tuples := uint64(spec.NBuild + spec.NProbe)
	perTuple := uint64(spec.TupleSize + storage.SlotSize)
	raw := tuples * perTuple
	// relations + partitions copy + hash table/cells + output tuples
	// (build+probe width) + page slack.
	nOut := uint64(spec.NBuild * spec.MatchesPerBuild)
	if spec.ZipfS > 0 {
		// Uniform probe over ZipfKeys ranks: ~NProbe*NBuild/ZipfKeys
		// matches in expectation; double it for headroom.
		nOut = 2 * uint64(spec.NProbe) * uint64(spec.NBuild) / uint64(spec.ZipfKeys)
	}
	out := nOut * uint64(2*spec.TupleSize+storage.SlotSize)
	need := raw*3 + out*2 + uint64(spec.NBuild)*uint64(hash.HeaderSize+hash.CellSize)*2 + (64 << 10)
	// Floor generous enough for small-workload tests that also allocate
	// partition buffers and intermediate pages.
	if need < 4<<20 {
		need = 4 << 20
	}
	return need
}
