package workload

import (
	"testing"

	"hashjoin/internal/arena"
)

func gen(t *testing.T, spec Spec) *Pair {
	t.Helper()
	a := arena.New(ArenaBytesFor(spec))
	return Generate(a, spec)
}

func TestPivotCounts(t *testing.T) {
	p := gen(t, Pivot(1000, 1))
	if p.Build.NTuples != 1000 {
		t.Fatalf("build tuples = %d", p.Build.NTuples)
	}
	if p.Probe.NTuples != 2000 {
		t.Fatalf("probe tuples = %d", p.Probe.NTuples)
	}
	if p.ExpectedMatches != 2000 {
		t.Fatalf("expected matches = %d, want 2000", p.ExpectedMatches)
	}
}

func TestPctMatched(t *testing.T) {
	spec := Pivot(1000, 2)
	spec.PctMatched = 50
	p := gen(t, spec)
	// 500 matched build tuples x 2 probes each; probe relation still
	// 2000 tuples, the rest guaranteed misses.
	if p.ExpectedMatches != 1000 {
		t.Fatalf("expected matches = %d, want 1000", p.ExpectedMatches)
	}
	if p.Probe.NTuples != 2000 {
		t.Fatalf("probe tuples = %d, want 2000", p.Probe.NTuples)
	}
}

func TestMatchesPerBuild(t *testing.T) {
	spec := Pivot(500, 3)
	spec.MatchesPerBuild = 4
	p := gen(t, spec)
	if p.Probe.NTuples != 2000 || p.ExpectedMatches != 2000 {
		t.Fatalf("probe=%d matches=%d, want 2000/2000", p.Probe.NTuples, p.ExpectedMatches)
	}
}

func TestGroundTruthAgainstNaiveJoin(t *testing.T) {
	spec := Spec{NBuild: 300, TupleSize: 20, MatchesPerBuild: 2, PctMatched: 70, Seed: 3}
	p := gen(t, spec)
	counts := make(map[uint32]int)
	for _, k := range p.Build.Keys() {
		counts[k]++
	}
	matches := 0
	var keySum uint64
	for _, k := range p.Probe.Keys() {
		if c := counts[k]; c > 0 {
			matches += c
			keySum += uint64(k) * uint64(c)
		}
	}
	if matches != p.ExpectedMatches || keySum != p.KeySum {
		t.Fatalf("naive join found %d/%d, ground truth says %d/%d", matches, keySum, p.ExpectedMatches, p.KeySum)
	}
}

func TestSkewRepeatsKeys(t *testing.T) {
	spec := Pivot(100, 4)
	spec.Skew = 10
	p := gen(t, spec)
	distinct := make(map[uint32]bool)
	for _, k := range p.Build.Keys() {
		distinct[k] = true
	}
	if len(distinct) != 10 {
		t.Fatalf("distinct build keys = %d, want 10", len(distinct))
	}
	// Every probe tuple joins all 10 build copies of its key: 100 build
	// indexes x 2 probes each x 10 copies.
	if p.ExpectedMatches != 2000 {
		t.Fatalf("expected matches = %d, want 2000", p.ExpectedMatches)
	}
}

func TestDeterminism(t *testing.T) {
	p1 := gen(t, Pivot(200, 42))
	p2 := gen(t, Pivot(200, 42))
	k1, k2 := p1.Probe.Keys(), p2.Probe.Keys()
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("same seed produced different workloads at %d", i)
		}
	}
	p3 := gen(t, Pivot(200, 43))
	k3 := p3.Probe.Keys()
	same := true
	for i := range k1 {
		if k1[i] != k3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical probe orders")
	}
}

func TestBuildKeysDistinctWithoutSkew(t *testing.T) {
	p := gen(t, Pivot(5000, 5))
	seen := make(map[uint32]bool, 5000)
	for _, k := range p.Build.Keys() {
		if seen[k] {
			t.Fatalf("duplicate build key %#x without skew", k)
		}
		seen[k] = true
	}
}

func TestMissKeysNeverMatch(t *testing.T) {
	// Build keys are even, miss keys odd: verify disjointness directly.
	for i := uint32(0); i < 1000; i++ {
		if buildKey(i)&1 != 0 {
			t.Fatalf("build key %d odd", i)
		}
		if missKey(i)&1 != 1 {
			t.Fatalf("miss key %d even", i)
		}
	}
}
