package native

import (
	"encoding/binary"
	"sync/atomic"

	"hashjoin/internal/arena"
	"hashjoin/internal/plan"
)

// Join-type matrix support for the native row-table join. The probe
// relation is the join's left input and the build relation its right
// one (see plan.JoinType), so:
//
//   - left outer emits unmatched probe rows with null-padded build
//     columns (the sink receives build == nil),
//   - right outer emits unmatched build rows with null-padded probe
//     columns (the sink receives probeRef == 0 — never a valid arena
//     address, which start at arena.Base),
//   - left semi emits each matched probe row once, probe columns only,
//   - left anti emits each unmatched probe row once, probe columns only.
//
// Two bitmap families make this compose with every tier of the
// degradation ladder:
//
// Build-side bits (right outer). Each probe stream owns a private
// buildMatched bitmap indexed by row-table row index; the shared table
// itself stays immutable, so one BuildSide still serves N concurrent
// probe streams, each with its own bitmap. Bits are set with an atomic
// OR — the row layout's reserved null_map word stays untouched because
// an in-row bit would both mutate the shared table and force atomic
// RMWs on arbitrarily aligned rows. Every build row lands in exactly
// one table (a partition pair, a spill chunk, or the hybrid resident
// prefix), so sweeping each table right after its last probe pass
// covers the build side exactly once.
//
// Probe-side bits (left outer / semi / anti). In-memory tables see the
// whole build side at once, so the chain walk decides matched/unmatched
// per probe row inline and no bitmap is needed. The out-of-core tier
// sees the build side in chunks: a probe row unmatched in one chunk may
// match a later one, so the spill path arms probeMatched — indexed by
// the probe partition's stable stream position — before the first chunk
// and resolves unmatched rows only after the last. The hybrid leaf arms
// the same bitmap before its resident prefix pass; the prefix probes
// the probe entries in the exact order they are later written to disk,
// so the bits carry across the resident/spilled seam unchanged.

// needsProbeBits reports whether the current join type defers
// unmatched-probe decisions to the probeMatched bitmap when the build
// side is only partially visible (spill chunks, hybrid prefix).
func (j *pairJoiner) needsProbeBits() bool {
	switch j.joinType {
	case plan.LeftOuter, plan.LeftSemi, plan.LeftAnti:
		return true
	}
	return false
}

// armProbeBits sizes and clears the deferred probe-side bitmap for n
// probe entries and enters deferred mode.
func (j *pairJoiner) armProbeBits(n int) {
	words := (n + 63) / 64
	if cap(j.probeMatched) < words {
		j.probeMatched = make([]uint64, words)
	} else {
		j.probeMatched = j.probeMatched[:words]
		clear(j.probeMatched)
	}
	j.probeBase = 0
	j.deferProbe = true
}

// probeBit reports the deferred bit of the probe entry st addresses.
func (j *pairJoiner) probeBit(st *probeState) bool {
	i := j.probeBase + int(st.idx)
	return j.probeMatched[i>>6]&(1<<uint(i&63)) != 0
}

// markProbeBit sets the deferred bit of the probe entry st addresses.
func (j *pairJoiner) markProbeBit(st *probeState) {
	i := j.probeBase + int(st.idx)
	j.probeMatched[i>>6] |= 1 << uint(i&63)
}

// armBuildMatched sizes and clears the build-row match bitmap for the
// n rows of the table just built. buildSerial calls it on right-outer
// joins, so every tier that builds a table gets a fresh bitmap.
func (j *pairJoiner) armBuildMatched(n int) {
	words := (n + 63) / 64
	if cap(j.buildMatched) < words {
		j.buildMatched = make([]uint64, words)
	} else {
		j.buildMatched = j.buildMatched[:words]
		clear(j.buildMatched)
	}
}

// markBuildRow atomically sets the match bit of the table row at slab
// offset off. Atomic so the bitmap stays correct even if one bitmap is
// ever shared by concurrent probe loops; per-Prober bitmaps make the
// common case contention-free.
func (j *pairJoiner) markBuildRow(off uint64) {
	i := int((off - rowSlabPad) / uint64(j.t.rowSize))
	w := &j.buildMatched[i>>6]
	mask := uint64(1) << uint(i&63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 || atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// sweepUnmatchedBuild emits every row of the current table whose match
// bit is still clear as a right-outer row: build columns real, probe
// columns null (probeRef 0). Called once per table, after its last
// probe pass.
func (j *pairJoiner) sweepUnmatchedBuild() {
	if j.joinType != plan.RightOuter {
		return
	}
	rows := j.t.rows
	w := uint64(j.width)
	for i := 0; i < j.t.nRows; i++ {
		if atomic.LoadUint64(&j.buildMatched[i>>6])&(1<<uint(i&63)) != 0 {
			continue
		}
		off := j.t.rowOff(i)
		j.nOutput++
		j.keySum += uint64(binary.LittleEndian.Uint32(rows[off+rowKeyOff:]))
		if j.sink != nil {
			j.sink(rows[off+rowHdrSize:off+rowHdrSize+w], 0)
		}
	}
}

// emitUnmatchedPair handles a partition pair with an empty side, which
// the match loops would skip entirely: an empty build side makes every
// probe row unmatched (left outer / anti output), an empty probe side
// makes every build row unmatched (right outer output).
func (j *pairJoiner) emitUnmatchedPair(build, probe []Entry) {
	if len(build) == 0 {
		j.emitAllProbeUnmatched(probe)
		return
	}
	if len(probe) == 0 && j.joinType == plan.RightOuter {
		for i := range build {
			j.emitBuildEntryUnmatched(&build[i])
		}
	}
}

// emitAllProbeUnmatched emits every probe entry as an unmatched row
// under the current join type.
func (j *pairJoiner) emitAllProbeUnmatched(probe []Entry) {
	switch j.joinType {
	case plan.LeftOuter:
		for i := range probe {
			j.nOutput++ // null build key contributes 0 to keySum
			if j.sink != nil {
				j.sink(nil, probe[i].Ref)
			}
		}
	case plan.LeftAnti:
		for i := range probe {
			j.nOutput++
			j.keySum += uint64(probe[i].Key)
			if j.sink != nil {
				j.sink(nil, probe[i].Ref)
			}
		}
	}
}

// emitBuildEntryUnmatched emits one build entry as a right-outer row
// straight from its partition entry, without building a table.
func (j *pairJoiner) emitBuildEntryUnmatched(e *Entry) {
	j.nOutput++
	j.keySum += uint64(e.Key)
	if j.sink != nil {
		base := e.Ref - arena.Base
		j.sink(j.data[base:base+uint64(j.width)], 0)
	}
}

// finishProbeBits resolves the deferred probe-side bitmap against the
// still-resident probe entries — the in-memory twin of the spill path's
// stream sweep, used when the hybrid leaf never reached disk — and
// leaves deferred mode.
func (j *pairJoiner) finishProbeBits(probe []Entry) {
	defer func() { j.deferProbe = false }()
	if j.joinType == plan.LeftSemi {
		return // semi rows were emitted on their first match
	}
	for i := range probe {
		if j.probeMatched[i>>6]&(1<<uint(i&63)) != 0 {
			continue
		}
		switch j.joinType {
		case plan.LeftOuter:
			j.nOutput++
			if j.sink != nil {
				j.sink(nil, probe[i].Ref)
			}
		case plan.LeftAnti:
			j.nOutput++
			j.keySum += uint64(probe[i].Key)
			if j.sink != nil {
				j.sink(nil, probe[i].Ref)
			}
		}
	}
}
