package native

import (
	"sort"

	"hashjoin/internal/plan"
)

// Adaptive hybrid hash join (Config.Hybrid). The classic ladder treats
// every over-budget partition pair as all-or-nothing: it either fits in
// memory or the whole pair recursively re-partitions and, when the skew
// is irreducible, spills in full. On skewed inputs that wastes the
// budget twice — partitions that would have fit still pay the recursion
// walk, and a spilled pair writes even the prefix of its build side the
// budget could have held. The hybrid policy instead measures each
// pair's build footprint after the partition phase and adapts:
//
//   - Pairs that fit MemBudget stay resident and are claimed first, so
//     a mid-join budget shrink (Config.BudgetNow) can still demote the
//     unstarted ones to disk without restarting the query.
//   - Oversized victims are split on an exact hash-code frequency
//     histogram — the frequency-sketch hook; NOCAP-style selection by
//     observed frequency rather than hash bits. Codes whose rows alone
//     exceed the budget are irreducible by construction and go straight
//     to the out-of-core tier, skipping up to maxRepartitionDepth
//     futile radix splits; the cold remainder joins resident when it
//     fits and re-partitions recursively otherwise.
//   - The out-of-core tier itself turns hybrid: the first budget-sized
//     chunk of a spilled build side is joined entirely in memory
//     against the still-resident probe entries, so per spilled pair one
//     build chunk and one full probe pass never touch disk (see
//     joinPairSpillHybrid).
//
// Output parity with the other tiers is exact: every build row lands in
// exactly one resident chunk or spilled sub-pair, probe entries are
// routed by the same 32-bit code equality the chain walk filters on,
// and NOutput/KeySum are commutative sums.

// HybridStats is the per-join pair accounting of the hybrid policy.
type HybridStats struct {
	// ResidentPairs counts partition pairs whose measured footprint fit
	// the effective budget at claim time and joined fully in memory.
	ResidentPairs int
	// SpilledPairs counts partition pairs routed to the victim path —
	// over the effective budget at claim time. (Parts of a victim may
	// still join resident; Result.SpilledPartitions counts the pairs
	// that actually reached the disk tier.)
	SpilledPairs int
	// DemotedPairs counts planned-resident pairs demoted to the victim
	// path because BudgetNow had shrunk below their footprint by claim
	// time; BytesDemoted sums their footprints.
	DemotedPairs int
	BytesDemoted int64
}

// hybridPlan ranks one join's partition pairs by measured build
// footprint. order holds every pair index, planned-resident prefix
// first (ascending footprint, ties by index, so the plan is
// deterministic); foot is indexed by pair, not by rank.
type hybridPlan struct {
	order    []int
	foot     []int
	resident int // planned-resident pairs: order[:resident]
}

// planHybrid measures each pair's build footprint and sorts pair
// indices so that pairs fitting budget come first, smallest first. In
// this engine pairs join one at a time per worker against the shared
// budget, so "the largest prefix that fits" is exactly the set of pairs
// whose individual footprint fits; the overflow suffix is the victim
// set.
func planHybrid(bp *partitions, width, budget int) *hybridPlan {
	n := bp.fanout()
	p := &hybridPlan{
		order: make([]int, n),
		foot:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		p.order[i] = i
		p.foot[i] = pairFootprint(len(bp.part(i)), width)
	}
	sort.SliceStable(p.order, func(a, b int) bool {
		fa, fb := p.foot[p.order[a]], p.foot[p.order[b]]
		if fa != fb {
			return fa < fb
		}
		return p.order[a] < p.order[b]
	})
	for _, i := range p.order {
		if p.foot[i] > budget {
			break
		}
		p.resident++
	}
	return p
}

// effectiveBudget is the budget a pair claim runs under: MemBudget,
// lowered to the pressure signal's current value when one is installed.
// Sampled once per claim, so a pair sees one consistent budget.
func effectiveBudget(cfg Config) int {
	b := cfg.MemBudget
	if cfg.BudgetNow != nil {
		if now := cfg.BudgetNow(); now > 0 && now < b {
			b = now
		}
	}
	return b
}

// joinPairHybrid joins one partition pair under the hybrid policy. A
// pair that fits the budget joins resident, exactly like the classic
// tier. An oversized victim consults the code-frequency histogram: hot
// codes go to the hybrid out-of-core leaf, the cold remainder descends
// the usual recursive ladder (whose irreducible leaves also use the
// hybrid out-of-core join — see joinPairBudget). Without a spill
// coordinator the classic ladder runs unchanged, so NoSpill semantics
// (*BudgetError) are preserved.
func (j *pairJoiner) joinPairHybrid(build, probe []Entry, shift uint, cfg Config) (int, error) {
	// An unavailable spill tier (every directory unhealthy) routes through
	// joinPairBudget too: it degrades to in-memory re-partitioning while
	// hash bits remain and sheds with *SpillUnavailableError after.
	if j.spill == nil || !j.spill.available() ||
		!overBudget(pairFootprint(len(build), j.width), cfg.MemBudget, 1) {
		return j.joinPairBudget(build, probe, shift, cfg, 0)
	}
	hotBuild, coldBuild, hotProbe, coldProbe := j.splitHotCodes(build, probe, cfg.MemBudget)
	if len(hotBuild) == 0 {
		return j.joinPairBudget(build, probe, shift, cfg, 0)
	}
	if err := j.joinPairSpillHybrid(hotBuild, hotProbe, shift, cfg); err != nil {
		return 0, err
	}
	return j.joinPairBudget(coldBuild, coldProbe, shift, cfg, 0)
}

// splitHotCodes partitions a victim pair by observed code frequency:
// build codes whose rows alone exceed budget are hot — irreducible by
// construction, since radix splitting cannot separate equal codes — and
// both sides' entries are routed by exact code membership. The chain
// walk validates on full 32-bit code equality, so a probe entry can
// only match build rows of its own code and the routing loses no
// matches. The histogram is exact (the victim path is already the slow
// path); an approximate sketch could replace it behind this same
// seam.
func (j *pairJoiner) splitHotCodes(build, probe []Entry, budget int) (hotBuild, coldBuild, hotProbe, coldProbe []Entry) {
	if j.codeFreq == nil {
		j.codeFreq = make(map[uint32]int)
	} else {
		clear(j.codeFreq)
	}
	for i := range build {
		j.codeFreq[build[i].Code]++
	}
	// A code is hot when its rows alone overflow the budget:
	// count > budget/unit ⇔ pairFootprint(count, width) > budget.
	threshold := budget / (entrySize + rowHdrSize + j.width + 16)
	hot := make(map[uint32]bool)
	for code, count := range j.codeFreq {
		if count > threshold {
			hot[code] = true
		}
	}
	if len(hot) == 0 {
		return nil, build, nil, probe
	}
	hotBuild = make([]Entry, 0, len(build))
	coldBuild = make([]Entry, 0, len(build))
	for i := range build {
		if hot[build[i].Code] {
			hotBuild = append(hotBuild, build[i])
		} else {
			coldBuild = append(coldBuild, build[i])
		}
	}
	hotProbe = make([]Entry, 0, len(probe))
	coldProbe = make([]Entry, 0, len(probe))
	for i := range probe {
		if hot[probe[i].Code] {
			hotProbe = append(hotProbe, probe[i])
		} else {
			coldProbe = append(coldProbe, probe[i])
		}
	}
	return hotBuild, coldBuild, hotProbe, coldProbe
}

// joinPairSpillHybrid is the hybrid out-of-core leaf: where the classic
// joinPairSpill writes both sides in full and re-reads the probe per
// build chunk, this tier first joins one budget-sized build chunk
// entirely in memory against the probe entries — which are still
// resident at this point — and only then spills the remaining build
// rows plus the probe partition through the classic chunk loop. Per
// spilled pair that saves writing and re-reading one build chunk and
// one full probe pass; when the remainder is empty nothing touches disk
// at all. Strictly less I/O than joinPairSpill on every input.
func (j *pairJoiner) joinPairSpillHybrid(build, probe []Entry, shift uint, cfg Config) error {
	resident := cfg.MemBudget / (entrySize + rowHdrSize + j.width + 16)
	if resident > len(build) {
		resident = len(build)
	}
	// Arm the deferred probe bitmap across the resident/spilled seam:
	// the resident prefix probes the probe entries in slice order, which
	// is exactly the order joinPairSpill later streams them back from
	// disk, so a bit set here carries over and suppresses the same row's
	// unmatched emission (or a semi row's re-emission) on the spilled
	// side. joinPairSpill sees deferProbe already set and skips its own
	// arming, which would clear these bits.
	if j.needsProbeBits() {
		j.armProbeBits(len(probe))
	}
	if resident > 0 {
		j.buildSerial(build[:resident], shift, cfg.Scheme)
		j.probeFor(probe, cfg.Scheme)
		// The resident build chunk's rows live only in this table; sweep
		// its unmatched rows before the spill tier rebuilds over rest.
		if j.joinType == plan.RightOuter {
			j.sweepUnmatchedBuild()
		}
	}
	rest := build[resident:]
	if len(rest) == 0 {
		if j.deferProbe {
			j.finishProbeBits(probe)
		}
		return nil
	}
	return j.joinPairSpill(rest, probe, shift, cfg)
}
