package native

import (
	"encoding/binary"
	"math/bits"

	"hashjoin/internal/arena"
	"hashjoin/internal/storage"
)

// Entry is the native engine's compact tuple descriptor: the hash code
// memoized in the slot (paper section 7.1 — computed once during
// partitioning, reused by the join), the join key, and the address of
// the tuple bytes in the arena. 16 bytes, four per cache line. The key
// is carried inline because the flattening scan reads the tuple
// sequentially anyway; the *build-side* key is still re-read from the
// tuple bytes during the probe's final stage, preserving the paper's
// dependent reference chain (header -> cell -> build tuple).
type Entry struct {
	Code uint32
	Key  uint32
	Ref  uint64 // arena address of the tuple
}

const entrySize = 16

// partitions holds one relation's entries scattered into radix
// partitions: partition p occupies entries[offs[p]:offs[p+1]]. The
// slices are scratch owned by a Joiner and recycled across joins —
// regrowing tens of megabytes of entries per join both churns the GC
// and, on first touch, stalls in the kernel populating fresh pages.
type partitions struct {
	bits    uint // radix bits taken from the low end of the hash code
	offs    []int
	entries []Entry
	cursor  []int // scatter cursors, pass-2 scratch
}

func (p *partitions) fanout() int { return len(p.offs) - 1 }

func (p *partitions) part(i int) []Entry { return p.entries[p.offs[i]:p.offs[i+1]] }

// intsFor returns s resized to n, reusing its backing array when large
// enough. Contents are unspecified; callers overwrite every element.
func intsFor(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// fill flattens rel into entries and scatters them into fanout (a power
// of two) radix partitions on the low bits of the hash code: one
// counting pass over the slot areas, a prefix sum, and one scatter pass
// — the GRACE partition phase on real memory. fanout 1 degenerates to a
// plain flatten. Previous contents of p are discarded; its buffers are
// reused.
func (p *partitions) fill(data []byte, rel *storage.Relation, fanout int) {
	if fanout < 1 {
		fanout = 1
	}
	if fanout&(fanout-1) != 0 {
		panic("native: partition fanout must be a power of two")
	}
	p.bits = uint(bits.TrailingZeros(uint(fanout)))
	mask := uint32(fanout - 1)

	p.offs = intsFor(p.offs, fanout+1)
	if fanout == 1 {
		p.entries = flatten(data, rel, p.entries[:0])
		p.offs[0], p.offs[1] = 0, len(p.entries)
		return
	}

	// Pass 1: histogram of partition sizes from the slot areas alone.
	hist := intsFor(p.cursor, fanout)
	clear(hist)
	eachSlot(data, rel, func(_ uint64, code uint32, _ uint16) {
		hist[code&mask]++
	})

	// Prefix sum -> partition base offsets.
	sum := 0
	for i, h := range hist {
		p.offs[i] = sum
		sum += h
	}
	p.offs[fanout] = sum

	// Pass 2: scatter entries to their partitions. The histogram scratch
	// becomes the cursor array: both hold one int per partition.
	if cap(p.entries) < sum {
		p.entries = make([]Entry, sum)
	} else {
		p.entries = p.entries[:sum]
	}
	p.cursor = hist
	copy(p.cursor, p.offs[:fanout])
	eachSlot(data, rel, func(tuple uint64, code uint32, _ uint16) {
		d := code & mask
		p.entries[p.cursor[d]] = Entry{
			Code: code,
			Key:  binary.LittleEndian.Uint32(data[tuple-arena.Base:]),
			Ref:  tuple,
		}
		p.cursor[d]++
	})
}

// Flatten appends one Entry per tuple of rel, in storage order, reusing
// dst's backing array. It is the entry-construction step of the native
// engine exposed for the batch operator layer, which flattens a
// materialized build side before constructing a Prober over it.
func Flatten(rel *storage.Relation, dst []Entry) []Entry {
	return flatten(rel.Arena().Data(), rel, dst[:0])
}

// flatten appends one Entry per tuple of rel, in storage order.
func flatten(data []byte, rel *storage.Relation, dst []Entry) []Entry {
	eachSlot(data, rel, func(tuple uint64, code uint32, _ uint16) {
		dst = append(dst, Entry{
			Code: code,
			Key:  binary.LittleEndian.Uint32(data[tuple-arena.Base:]),
			Ref:  tuple,
		})
	})
	return dst
}

// eachSlot walks rel's slot areas directly in the arena's backing bytes,
// yielding each tuple's address, memoized hash code, and length. This is
// the native analog of the simulator's cursor, without timing.
func eachSlot(data []byte, rel *storage.Relation, fn func(tuple uint64, code uint32, length uint16)) {
	pageSize := rel.PageSize
	for _, page := range rel.Pages {
		base := page - arena.Base
		n := int(binary.LittleEndian.Uint16(data[base:]))
		slot := base + uint64(pageSize) - storage.SlotSize
		for i := 0; i < n; i++ {
			off := binary.LittleEndian.Uint16(data[slot+storage.SlotOffOffset:])
			length := binary.LittleEndian.Uint16(data[slot+storage.SlotOffLength:])
			code := binary.LittleEndian.Uint32(data[slot+storage.SlotOffHash:])
			fn(page+uint64(off), code, length)
			slot -= storage.SlotSize
		}
	}
}
