package native

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrCancelled is the sentinel every *CancelError unwraps to. A
// cancelled join also unwraps to its context cause, so errors.Is works
// against ErrCancelled, context.Canceled, and context.DeadlineExceeded
// alike.
var ErrCancelled = errors.New("native: join cancelled")

// ErrOverBudget is the sentinel every *BudgetError unwraps to.
var ErrOverBudget = errors.New("native: partition pair over memory budget")

// CancelError reports a join stopped by its context, with the partial
// progress at the stop: how many partition pairs had fully joined, out
// of how many, and the rows those complete pairs produced. Partial
// output is never returned through the Result; the counts exist for
// diagnostics only.
type CancelError struct {
	Cause      error         // the context error (Canceled or DeadlineExceeded)
	PairsDone  int           // partition pairs fully joined before the stop
	PairsTotal int           // partition pairs the join planned
	RowsOut    int           // rows produced by the completed pairs
	Elapsed    time.Duration // join start to stop
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("native: join cancelled after %v (%d/%d partition pairs joined, %d rows discarded): %v",
		e.Elapsed.Round(time.Microsecond), e.PairsDone, e.PairsTotal, e.RowsOut, e.Cause)
}

func (e *CancelError) Unwrap() []error { return []error{ErrCancelled, e.Cause} }

// isCancellation reports whether err is a context stop, directly or
// wrapped (the spill tier returns plain ctx.Err() from page
// boundaries).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// asCancel wraps a cancellation-class error into a *CancelError
// carrying the given progress counts; other errors pass through.
func asCancel(err error, pairsDone, pairsTotal, rowsOut int) error {
	if err == nil || !isCancellation(err) {
		return err
	}
	return &CancelError{Cause: err, PairsDone: pairsDone, PairsTotal: pairsTotal, RowsOut: rowsOut}
}
