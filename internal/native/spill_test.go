package native

import (
	"encoding/binary"
	"os"
	"runtime"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/workload"
)

// mkEntries writes one 8-byte tuple per code into the arena (a unique
// key in the first 4 bytes) and returns join entries over them. Build
// and probe share the tuples, so entry i on one side matches exactly
// entry i on the other: same code, same key.
func mkEntries(t *testing.T, a *arena.Arena, codes []uint32) []Entry {
	t.Helper()
	es := make([]Entry, len(codes))
	for i, c := range codes {
		addr, err := a.TryAlloc(8, 1)
		if err != nil {
			t.Fatalf("TryAlloc: %v", err)
		}
		key := uint32(1000 + i)
		binary.LittleEndian.PutUint32(a.Bytes(addr, 4), key)
		es[i] = Entry{Code: c, Key: key, Ref: addr}
	}
	return es
}

// ladderCodes builds the recursion ladder: nZero entries with hash code
// zero plus one entry per low bit (1<<0 .. 1<<7). Each radix level
// splits off exactly one power-of-two code; the zero-code entries are
// inseparable by any split.
func ladderCodes(nZero int) []uint32 {
	codes := make([]uint32, 0, nZero+8)
	for j := 0; j < 8; j++ {
		codes = append(codes, 1<<uint(j))
	}
	for i := 0; i < nZero; i++ {
		codes = append(codes, 0)
	}
	return codes
}

// TestRecursionDepthBoundary drives joinPairBudget to the exact edge of
// maxRepartitionDepth. With 8 zero-code entries the pair first fits the
// budget at depth exactly 8 and must succeed; with 9 it is still over
// budget there, so the NoSpill path must fail with a depth-8
// *BudgetError while the spill path completes the join out of core.
func TestRecursionDepthBoundary(t *testing.T) {
	budget := pairFootprint(8, 8) // 8 zero-code 8-byte entries fit, 9 do not

	t.Run("depth8-succeeds", func(t *testing.T) {
		a := arena.New(1 << 20)
		es := mkEntries(t, a, ladderCodes(8))
		j := newPairJoiner()
		j.data = a.Data()
		j.width = 8
		cfg := Config{Scheme: Group, MemBudget: budget, NoSpill: true}.normalized()
		j.g, j.d = cfg.G, cfg.D
		depth, err := j.joinPairBudget(es, es, 0, cfg, 0)
		if err != nil {
			t.Fatalf("depth-8 pair failed: %v", err)
		}
		if depth != maxRepartitionDepth {
			t.Fatalf("depth = %d, want %d", depth, maxRepartitionDepth)
		}
		if j.nOutput != len(es) {
			t.Fatalf("NOutput = %d, want %d", j.nOutput, len(es))
		}
	})

	t.Run("depth9-errors-without-spill", func(t *testing.T) {
		a := arena.New(1 << 20)
		es := mkEntries(t, a, ladderCodes(9))
		j := newPairJoiner()
		j.data = a.Data()
		j.width = 8
		cfg := Config{Scheme: Group, MemBudget: budget, NoSpill: true}.normalized()
		j.g, j.d = cfg.G, cfg.D
		_, err := j.joinPairBudget(es, es, 0, cfg, 0)
		be, ok := err.(*BudgetError)
		if !ok {
			t.Fatalf("error %T (%v), want *BudgetError", err, err)
		}
		if be.Depth != maxRepartitionDepth {
			t.Fatalf("BudgetError.Depth = %d, want %d", be.Depth, maxRepartitionDepth)
		}
	})

	t.Run("depth9-spills", func(t *testing.T) {
		a := arena.New(1 << 20)
		es := mkEntries(t, a, ladderCodes(9))
		j := newPairJoiner()
		j.data = a.Data()
		j.width = 8
		cfg := Config{Scheme: Group, MemBudget: budget}.normalized()
		j.g, j.d = cfg.G, cfg.D
		dir := t.TempDir()
		j.spill = &spillState{a: a, dir: dir, workers: 2, buildWidth: 8, probeWidth: 8, budget: budget}
		_, err := j.joinPairBudget(es, es, 0, cfg, 0)
		if err != nil {
			t.Fatalf("spill-tier pair failed: %v", err)
		}
		st, pairs, err := j.spill.finish()
		if err != nil {
			t.Fatalf("finish: %v", err)
		}
		if pairs != 1 || st.BytesWritten == 0 || st.BytesRead == 0 {
			t.Fatalf("spill stats = %+v pairs=%d, want one spilled pair with I/O", st, pairs)
		}
		if j.nOutput != len(es) {
			t.Fatalf("NOutput = %d, want %d", j.nOutput, len(es))
		}
		ents, rerr := os.ReadDir(dir)
		if rerr != nil || len(ents) != 0 {
			t.Fatalf("spill dir not cleaned up: %v %v", ents, rerr)
		}
	})
}

// TestJoinSpillParity runs a join whose single shared key defeats radix
// partitioning entirely, under a budget that forces the out-of-core
// tier, and checks the result tuple-for-tuple against the unbudgeted
// in-memory join for every scheme.
func TestJoinSpillParity(t *testing.T) {
	spec := workload.Spec{NBuild: 2000, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 17, Skew: 2000}
	for _, scheme := range []Scheme{Baseline, Group, Pipelined} {
		t.Run(scheme.String(), func(t *testing.T) {
			a := arena.New(workload.ArenaBytesFor(spec) + 1<<20)
			pair := workload.Generate(a, spec)
			want, err := Join(pair.Build, pair.Probe, Config{Scheme: scheme, Workers: 2})
			if err != nil {
				t.Fatalf("in-memory join: %v", err)
			}

			dir := t.TempDir()
			before := runtime.NumGoroutine()
			got, err := Join(pair.Build, pair.Probe, Config{
				Scheme: scheme, Fanout: 4, MemBudget: 4 << 10, Workers: 4, SpillDir: dir,
			})
			if err != nil {
				t.Fatalf("spill join: %v", err)
			}
			if got.NOutput != want.NOutput || got.KeySum != want.KeySum {
				t.Fatalf("spill join = (%d, %d), in-memory = (%d, %d)",
					got.NOutput, got.KeySum, want.NOutput, want.KeySum)
			}
			if got.SpilledPartitions == 0 || got.SpillBytesWritten == 0 || got.SpillBytesRead == 0 {
				t.Fatalf("budgeted skew join did not spill: %+v", got)
			}
			// The probe partition is re-read once per build chunk; total
			// reads can exceed writes but never fall below them.
			if got.SpillBytesRead < got.SpillBytesWritten {
				t.Fatalf("read %d bytes < wrote %d", got.SpillBytesRead, got.SpillBytesWritten)
			}
			ents, rerr := os.ReadDir(dir)
			if rerr != nil || len(ents) != 0 {
				t.Fatalf("orphaned spill files: %v %v", ents, rerr)
			}
			waitForGoroutines(t, before)
		})
	}
}

// TestJoinSpillRepeatedNoOrphans re-runs a spilling join on one Joiner
// and checks that no temp files accumulate across runs — the Manager is
// created and torn down per Join call.
func TestJoinSpillRepeatedNoOrphans(t *testing.T) {
	spec := workload.Spec{NBuild: 1000, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 5, Skew: 1000}
	a := arena.New(workload.ArenaBytesFor(spec) + 1<<20)
	pair := workload.Generate(a, spec)
	dir := t.TempDir()
	jn := NewJoiner()
	mark := a.Used()
	for i := 0; i < 3; i++ {
		a.Truncate(mark) // reclaim the previous run's buffer pool
		r, err := jn.Join(pair.Build, pair.Probe,
			Config{Scheme: Group, Fanout: 2, MemBudget: 4 << 10, Workers: 2, SpillDir: dir})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if r.SpilledPartitions == 0 {
			t.Fatalf("run %d did not spill", i)
		}
		ents, rerr := os.ReadDir(dir)
		if rerr != nil || len(ents) != 0 {
			t.Fatalf("run %d left files behind: %v %v", i, ents, rerr)
		}
	}
}
